// Package cputopo detects the machine's CPU/NUMA topology from the
// Linux sysfs tree (/sys/devices/system/{cpu,node}), with a portable
// single-node fallback everywhere else. The sinr scheduler uses it to
// order worker CPU pins node-major, so that workers owning neighboring
// receiver blocks land on the same NUMA node and the blocks' cached
// slabs stay in that node's local memory; cmd/benchjson records the
// detected node count as baseline metadata so parallel benchmark
// entries from machines with different topologies are never compared.
//
// Detection is best-effort by design: a missing or partial sysfs tree
// (non-Linux, stripped-down containers, unusual kernels) degrades to
// one node holding CPUs 0..NumCPU-1, never to an error — topology is a
// placement hint, not a correctness input.
package cputopo

import (
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// Topology describes the CPUs visible to the process grouped by NUMA
// node. Nodes are ordered by node id; each node's CPU list is
// ascending. Every topology has at least one node with at least one
// CPU.
type Topology struct {
	// Nodes holds the online CPU ids of each NUMA node.
	Nodes [][]int
}

// NumNodes returns the NUMA node count.
func (t Topology) NumNodes() int { return len(t.Nodes) }

// NumCPUs returns the total CPU count across nodes.
func (t Topology) NumCPUs() int {
	n := 0
	for _, cpus := range t.Nodes {
		n += len(cpus)
	}
	return n
}

// CPUsNodeMajor returns all CPU ids ordered node by node (node 0's
// CPUs ascending, then node 1's, ...). Pinning worker i to entry
// i mod len fills NUMA nodes first: consecutive workers share a node,
// so a scheduler that assigns consecutive block ranges to consecutive
// workers keeps each range's cached state on one node.
func (t Topology) CPUsNodeMajor() []int {
	out := make([]int, 0, t.NumCPUs())
	for _, cpus := range t.Nodes {
		out = append(out, cpus...)
	}
	return out
}

// Detect reads the topology from /sys/devices/system. See DetectAt.
func Detect() Topology { return DetectAt("/sys/devices/system") }

// DetectAt reads the topology from the given sysfs system directory
// (split out so tests can point it at a fixture tree). Any read or
// parse failure falls back to a single node containing CPUs
// 0..runtime.NumCPU()-1.
func DetectAt(sysRoot string) Topology {
	online, err := readCPUList(filepath.Join(sysRoot, "cpu", "online"))
	if err != nil || len(online) == 0 {
		return fallback()
	}
	onlineSet := make(map[int]bool, len(online))
	for _, c := range online {
		onlineSet[c] = true
	}
	entries, err := os.ReadDir(filepath.Join(sysRoot, "node"))
	if err != nil {
		// No NUMA directory (kernel without NUMA, non-Linux): one node.
		return Topology{Nodes: [][]int{online}}
	}
	type node struct {
		id   int
		cpus []int
	}
	var nodes []node
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "node") {
			continue
		}
		id, err := strconv.Atoi(name[len("node"):])
		if err != nil {
			continue
		}
		cpus, err := readCPUList(filepath.Join(sysRoot, "node", name, "cpulist"))
		if err != nil {
			continue
		}
		// Keep only online CPUs; a node may list offline ones.
		kept := cpus[:0]
		for _, c := range cpus {
			if onlineSet[c] {
				kept = append(kept, c)
			}
		}
		if len(kept) > 0 {
			nodes = append(nodes, node{id: id, cpus: kept})
		}
	}
	if len(nodes) == 0 {
		return Topology{Nodes: [][]int{online}}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	t := Topology{Nodes: make([][]int, len(nodes))}
	for i, nd := range nodes {
		t.Nodes[i] = nd.cpus
	}
	return t
}

// fallback is the portable no-sysfs topology: one node, NumCPU CPUs.
func fallback() Topology {
	n := runtime.NumCPU()
	cpus := make([]int, n)
	for i := range cpus {
		cpus[i] = i
	}
	return Topology{Nodes: [][]int{cpus}}
}

// readCPUList reads and parses one sysfs cpulist file.
func readCPUList(path string) ([]int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseCPUList(strings.TrimSpace(string(raw)))
}

// ParseCPUList parses the kernel's cpulist format: comma-separated
// decimal ids and inclusive ranges, e.g. "0-3,8,10-11". The empty
// string is a valid empty list (a memory-only NUMA node has one).
// Returned ids are sorted and deduplicated.
func ParseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, err
			}
			b, err := strconv.Atoi(hi)
			if err != nil {
				return nil, err
			}
			if b < a {
				a, b = b, a
			}
			for c := a; c <= b; c++ {
				out = append(out, c)
			}
		} else {
			c, err := strconv.Atoi(part)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
	}
	slices.Sort(out)
	return slices.Compact(out), nil
}
