// Command broadcast-sim runs one broadcast algorithm on one generated
// network and reports the outcome: rounds, phases, inform-time spread
// and energy (transmission counts).
//
// Usage:
//
//	broadcast-sim -alg nos   -family uniform  -n 96
//	broadcast-sim -alg s     -family path     -n 48
//	broadcast-sim -alg decay -family expchain -n 32 -ratio 0.6
package main

import (
	"flag"
	"fmt"
	"os"

	"sinrcast/internal/baseline"
	"sinrcast/internal/broadcast"
	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
	"sinrcast/internal/stats"
)

func main() {
	var (
		alg     = flag.String("alg", "nos", "nos|s|decay|daum|oracle|tdma")
		family  = flag.String("family", "uniform", "uniform|path|clusters|corridor|expchain")
		n       = flag.Int("n", 96, "number of stations")
		density = flag.Float64("density", 8, "uniform density")
		frac    = flag.Float64("frac", 0.9, "path gap fraction")
		ratio   = flag.Float64("ratio", 0.6, "expchain shrink ratio")
		seed    = flag.Uint64("seed", 1, "seed for generator and protocol")
		source  = flag.Int("source", 0, "source station")
	)
	flag.Parse()

	p := sinr.DefaultParams()
	cfg := netgen.Config{Params: p, Seed: *seed}
	var (
		net *network.Network
		err error
	)
	switch *family {
	case "uniform":
		net, err = netgen.Uniform(cfg, *n, *density)
	case "path":
		net, err = netgen.Path(cfg, *n, *frac)
	case "clusters":
		net, err = netgen.Clusters(cfg, 4, *n/4, 0.08, 0.6)
	case "corridor":
		net, err = netgen.RandomWalkCorridor(cfg, *n, 0.5)
	case "expchain":
		net, err = netgen.ExponentialChain(cfg, *n, 0.5, *ratio)
	default:
		fmt.Fprintf(os.Stderr, "broadcast-sim: unknown family %q\n", *family)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	bcfg := broadcast.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps)
	var res *broadcast.Result
	switch *alg {
	case "nos":
		res, err = broadcast.RunNoS(net, bcfg, *seed, *source, 1)
	case "s":
		res, err = broadcast.RunS(net, bcfg, *seed, *source, 1)
	case "decay":
		res, err = baseline.RunFlood(net, baseline.NewDecay(net.N()), *seed, *source, 0)
	case "daum":
		res, err = baseline.RunFlood(net, baseline.NewDaumStyle(net), *seed, *source, 0)
	case "oracle":
		res, err = baseline.RunFlood(net, baseline.NewDensityOracle(net, 0), *seed, *source, 0)
	case "tdma":
		var pol *baseline.GridTDMA
		pol, err = baseline.NewGridTDMA(net)
		if err == nil {
			res, err = baseline.RunFlood(net, pol, *seed, *source, 0)
		}
	default:
		fmt.Fprintf(os.Stderr, "broadcast-sim: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	d, _ := net.Diameter()
	fmt.Printf("algorithm      %s\n", *alg)
	fmt.Printf("network        %s n=%d D=%d Rs=%.3g\n", *family, net.N(), d, net.Granularity())
	fmt.Printf("all informed   %v\n", res.AllInformed)
	fmt.Printf("rounds         %d\n", res.Rounds)
	if res.Phases > 0 {
		fmt.Printf("phases         %d\n", res.Phases)
	}
	fmt.Printf("transmissions  %d (%.2f per station)\n",
		res.Metrics.Transmissions, float64(res.Metrics.Transmissions)/float64(net.N()))
	fmt.Printf("receptions     %d\n", res.Metrics.Receptions)

	var times []float64
	for _, it := range res.InformTime {
		if it >= 0 {
			times = append(times, float64(it))
		}
	}
	fmt.Printf("inform times   %s\n", stats.FormatSummary(stats.Summarize(times)))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "broadcast-sim: %v\n", err)
	os.Exit(1)
}
