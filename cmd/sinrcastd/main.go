// Command sinrcastd serves the simulation suite over HTTP: submit a
// scenario+protocol (or experiment) job, poll or cancel it, stream
// round-by-round progress as NDJSON, and fetch the result table in any
// stats sink format — byte-identical to the batch CLIs for the same
// configuration. See internal/serve for the API and the warm-engine
// cache that makes repeated studies over one deployment cheap.
//
// Usage:
//
//	sinrcastd                          # listen on :8335
//	sinrcastd -addr 127.0.0.1:9000     # explicit listen address
//	sinrcastd -jobs 4 -queue 128       # 4 concurrent jobs, 128 queued
//	sinrcastd -cache-mb 512            # warm-engine cache budget (0 disables)
//	sinrcastd -journal jobs.ndjson     # crash-safe write-ahead journal
//
// With -journal, every accepted job spec, completed trial, and
// terminal state is logged to an append-only NDJSON file; a restarted
// daemon replays it, rewarming the -rewarm hottest cache keys and
// re-queuing jobs that were in-flight at the crash under their
// original ids, resumed at their completed-trial high-water marks.
// GET /readyz answers 503 while replay runs (and again during drain);
// GET /healthz stays 200 and reports journal degradation.
//
// SIGINT/SIGTERM drain gracefully: in-flight jobs finish (up to
// -drain), queued jobs fail cleanly, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sinrcast/internal/jobs"
	"sinrcast/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8335", "listen address")
		queue         = flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
		njobs         = flag.Int("jobs", 2, "jobs executing concurrently")
		engineWorkers = flag.Int("engine-workers", runtime.GOMAXPROCS(0),
			"total resolver-worker budget shared across running jobs")
		cacheMB = flag.Int("cache-mb", 256, "warm-engine cache budget in MiB (0 disables)")
		every   = flag.Int("progress-every", 256, "default progress-event cadence in rounds (-1 disables)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight jobs")
		journal = flag.String("journal", "", "write-ahead journal path; enables crash-safe restart (empty disables)")
		rewarm  = flag.Int("rewarm", 8, "cache keys rebuilt from the journal on restart (-1 disables)")
	)
	flag.Parse()

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	srv, err := serve.Open(serve.Config{
		Jobs:          jobs.Config{QueueDepth: *queue, Workers: *njobs, EngineWorkers: *engineWorkers},
		CacheBytes:    cacheBytes,
		ProgressEvery: *every,
		JournalPath:   *journal,
		RewarmHot:     *rewarm,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sinrcastd: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "sinrcastd: listening on %s\n", *addr)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "sinrcastd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "sinrcastd: draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the job manager; a
	// request racing the listener close still finds a live manager.
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "sinrcastd: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "sinrcastd: forced drain: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "sinrcastd: stopped")
}
