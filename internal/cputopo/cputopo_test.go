package cputopo

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"", nil, false},
		{"0", []int{0}, false},
		{"0-3", []int{0, 1, 2, 3}, false},
		{"0-1,4-5", []int{0, 1, 4, 5}, false},
		{" 2 , 0 ", []int{0, 2}, false},
		{"3-3", []int{3}, false},
		{"1,1,0-1", []int{0, 1}, false}, // dedup
		{"x", nil, true},
		{"1-y", nil, true},
	}
	for _, c := range cases {
		got, err := ParseCPUList(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseCPUList(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCPUList(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseCPUList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// fixture writes a fake sysfs system tree and returns its root.
func fixture(t *testing.T, online string, nodes map[string]string) string {
	t.Helper()
	root := t.TempDir()
	if online != "" {
		mustWrite(t, filepath.Join(root, "cpu", "online"), online)
	}
	for name, cpulist := range nodes {
		mustWrite(t, filepath.Join(root, "node", name, "cpulist"), cpulist)
	}
	return root
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDetectAtTwoNodes(t *testing.T) {
	root := fixture(t, "0-7", map[string]string{
		"node0": "0-3",
		"node1": "4-7",
	})
	topo := DetectAt(root)
	if topo.NumNodes() != 2 || topo.NumCPUs() != 8 {
		t.Fatalf("got %d nodes / %d cpus, want 2 / 8", topo.NumNodes(), topo.NumCPUs())
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if got := topo.CPUsNodeMajor(); !reflect.DeepEqual(got, want) {
		t.Fatalf("CPUsNodeMajor = %v, want %v", got, want)
	}
}

func TestDetectAtFiltersOfflineAndMemoryOnlyNodes(t *testing.T) {
	root := fixture(t, "0-2,4", map[string]string{
		"node0": "0-2",
		"node1": "3-5", // CPUs 3 and 5 are offline
		"node2": "",    // memory-only node: no CPUs at all
	})
	topo := DetectAt(root)
	if topo.NumNodes() != 2 {
		t.Fatalf("got %d nodes, want 2 (memory-only node dropped)", topo.NumNodes())
	}
	if got, want := topo.CPUsNodeMajor(), []int{0, 1, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("CPUsNodeMajor = %v, want %v", got, want)
	}
}

func TestDetectAtNoNodeDirFallsBackToOneNode(t *testing.T) {
	root := fixture(t, "0-3", nil)
	topo := DetectAt(root)
	if topo.NumNodes() != 1 || topo.NumCPUs() != 4 {
		t.Fatalf("got %d nodes / %d cpus, want 1 / 4", topo.NumNodes(), topo.NumCPUs())
	}
}

func TestDetectAtMissingSysfsFallsBackToNumCPU(t *testing.T) {
	topo := DetectAt(filepath.Join(t.TempDir(), "nonexistent"))
	if topo.NumNodes() != 1 || topo.NumCPUs() < 1 {
		t.Fatalf("fallback topology %d nodes / %d cpus, want 1 node, >=1 cpu",
			topo.NumNodes(), topo.NumCPUs())
	}
}

func TestDetectOnThisMachine(t *testing.T) {
	// Whatever the host looks like, Detect must return a usable
	// topology (the fallback guarantees it).
	topo := Detect()
	if topo.NumNodes() < 1 || topo.NumCPUs() < 1 {
		t.Fatalf("Detect() = %d nodes / %d cpus", topo.NumNodes(), topo.NumCPUs())
	}
	if len(topo.CPUsNodeMajor()) != topo.NumCPUs() {
		t.Fatalf("CPUsNodeMajor length %d != NumCPUs %d", len(topo.CPUsNodeMajor()), topo.NumCPUs())
	}
}
