package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sinrcast/internal/faultinject"
	"sinrcast/internal/jobs"
	"sinrcast/internal/network"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// TestCircuitBreakerLifecycle unit-tests the per-key breaker: three
// consecutive build failures open the circuit (fast 422 path), the TTL
// expiry admits one half-open probe, and a successful build resets the
// key.
func TestCircuitBreakerLifecycle(t *testing.T) {
	c := NewCache(1 << 20)
	c.SetBreaker(3, 50*time.Millisecond)
	boom := errors.New("boom")
	failing := func() (*network.Network, error) { return nil, boom }
	builds := 0
	counting := func() (*network.Network, error) { builds++; return nil, boom }

	for i := 0; i < 3; i++ {
		if _, _, _, err := c.Get("k", failing, nil); !errors.Is(err, boom) {
			t.Fatalf("failure %d: err = %v, want build error", i, err)
		}
	}
	// Open: the builder must not run again.
	_, _, _, err := c.Get("k", counting, nil)
	var open *CircuitOpenError
	if !errors.As(err, &open) {
		t.Fatalf("4th get: err = %v, want CircuitOpenError", err)
	}
	if builds != 0 {
		t.Fatal("open circuit still invoked the builder")
	}
	if err := c.Negative("k"); !errors.As(err, &open) {
		t.Fatal("Negative does not report the open circuit")
	}
	if err := c.Negative("other"); err != nil {
		t.Fatalf("unrelated key affected: %v", err)
	}
	st := c.Stats()
	if st.Trips == 0 || st.FastFails < 2 || st.Negative != 1 {
		t.Fatalf("breaker gauges not counted: %+v", st)
	}

	// Past the TTL: one half-open probe runs the builder; its failure
	// re-opens immediately (no second probe until the next TTL).
	time.Sleep(60 * time.Millisecond)
	if _, _, _, err := c.Get("k", counting, nil); !errors.Is(err, boom) {
		t.Fatalf("half-open probe: err = %v, want build error", err)
	}
	if builds != 1 {
		t.Fatalf("half-open probe ran the builder %d times, want 1", builds)
	}
	if _, _, _, err := c.Get("k", counting, nil); !errors.As(err, &open) {
		t.Fatalf("after failed probe: err = %v, want re-opened circuit", err)
	}

	// A successful build closes the breaker for good.
	time.Sleep(60 * time.Millisecond)
	okBuild := func() (*network.Network, error) {
		spec, err := scenario.Parse("uniform:n=8")
		if err != nil {
			return nil, err
		}
		return scenario.Generate(spec, sinr.DefaultParams(), 1)
	}
	eng := func(n *network.Network) (sim.Resolver, error) { return nopResolver{n: n.N()}, nil }
	if _, _, _, err := c.Get("k", okBuild, eng); err != nil {
		t.Fatalf("successful probe failed: %v", err)
	}
	if err := c.Negative("k"); err != nil {
		t.Fatalf("breaker did not reset after success: %v", err)
	}
}

// nopResolver is the minimal sim.Resolver for cache unit tests.
type nopResolver struct{ n int }

func (r nopResolver) Resolve(tx []int) []sinr.Reception { return nil }
func (r nopResolver) N() int                            { return r.n }

// TestSubmitFastFails422WhenCircuitOpen pins the admission-time
// breaker: once a spec's builds trip the circuit, submitting the same
// spec answers 422 without consuming a queue slot, and a different
// spec is unaffected.
func TestSubmitFastFails422WhenCircuitOpen(t *testing.T) {
	s, ts := testServer(t, Config{})
	s.Cache().SetBreaker(1, time.Minute)
	faultinject.Arm(faultinject.CacheBuild, faultinject.Fault{First: 1, Seed: 2})
	defer faultinject.DisarmAll()

	id := submitJob(t, ts, quickRun)
	if state, _ := waitTerminal(t, ts.URL, id); state != "failed" {
		t.Fatalf("poisoned job state %s, want failed", state)
	}

	before := s.mgr.Stats()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickRun)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("open-circuit submit: status %d, want 422: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "circuit open") {
		t.Fatalf("422 body does not explain the breaker: %s", body)
	}
	if after := s.mgr.Stats(); after.Submitted != before.Submitted {
		t.Fatal("fast-failed submission consumed a queue slot")
	}

	other := quickRun
	other.Seed = 12345
	okID := submitJob(t, ts, other)
	if code, _ := fetchResult(t, ts, okID, "text"); code != http.StatusOK {
		t.Fatal("unrelated spec rejected while circuit open")
	}
}

// TestRetryAfterTracksDrainRate pins the dynamic backpressure hint: a
// server that has observed completions answers 429 with a Retry-After
// derived from the measured drain rate, still within [1, 60].
func TestRetryAfterTracksDrainRate(t *testing.T) {
	release := make(chan struct{})
	s, ts := testServer(t, Config{Jobs: jobs.Config{QueueDepth: 1, Workers: 1}})
	// Prime the drain-rate window: complete a few instant jobs first.
	var primed []string
	for i := 0; i < 3; i++ {
		primed = append(primed, submitJob(t, ts, quickRun))
	}
	for _, id := range primed {
		waitTerminal(t, ts.URL, id)
	}
	if rate := s.mgr.DrainRate(); rate <= 0 {
		t.Fatalf("drain rate not observed: %v", rate)
	}

	// Now wedge the single worker and fill the queue.
	s.runHook = func(id string) { <-release }
	defer close(release)
	submitJob(t, ts, quickRun) // occupies the worker
	submitJob(t, ts, quickRun) // occupies the queue slot
	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickRun)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d: %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
	}
	if secs < 1 || secs > 60 {
		t.Fatalf("Retry-After %d outside [1, 60]", secs)
	}
	want := int(s.mgr.RetryAfter() / time.Second)
	if secs < want-1 || secs > want+1 {
		t.Fatalf("Retry-After %d does not track RetryAfter() = %d", secs, want)
	}
}

// errAfterWriter fails every Write after the first n — the
// disconnected-client stand-in for the stream handler.
type errAfterWriter struct {
	mu     sync.Mutex
	n      int
	writes int
	header http.Header
}

func (w *errAfterWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}
func (w *errAfterWriter) WriteHeader(int) {}
func (w *errAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.writes++
	if w.writes > w.n {
		return 0, fmt.Errorf("write tcp: broken pipe")
	}
	return len(p), nil
}

// TestStreamWriteErrorUnsubscribes pins that a stream whose client
// write fails mid-stream returns instead of spinning on the event log.
func TestStreamWriteErrorUnsubscribes(t *testing.T) {
	s, _ := testServer(t, Config{})
	release := make(chan struct{})
	s.runHook = func(id string) { <-release }
	st, err := s.submit(&quickRun)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the log forever in the background until the handler exits.
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				st.log.append(event{Type: "progress", Job: st.id, Round: intp(i)})
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	defer close(stop)
	defer close(release)

	w := &errAfterWriter{n: 2}
	req := httptest.NewRequest("GET", "/v1/jobs/"+st.id+"/stream", nil)
	req.SetPathValue("id", st.id)
	done := make(chan struct{})
	go func() {
		s.handleStream(w, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handleStream did not return after client write errors")
	}
}

// TestStreamClientDisconnectUnsubscribes pins the context path: a
// client that goes away (context cancellation) releases the stream
// promptly even while events keep flowing and writes keep succeeding.
func TestStreamClientDisconnectUnsubscribes(t *testing.T) {
	s, _ := testServer(t, Config{})
	release := make(chan struct{})
	s.runHook = func(id string) { <-release }
	st, err := s.submit(&quickRun)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				st.log.append(event{Type: "progress", Job: st.id, Round: intp(i)})
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	defer close(stop)
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	w := &errAfterWriter{n: 1 << 30} // writes always succeed
	req := httptest.NewRequest("GET", "/v1/jobs/"+st.id+"/stream", nil).WithContext(ctx)
	req.SetPathValue("id", st.id)
	done := make(chan struct{})
	go func() {
		s.handleStream(w, req)
		close(done)
	}()
	time.Sleep(5 * time.Millisecond) // let it stream a little
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handleStream did not return after the client disconnected")
	}
}

// TestStreamDisconnectOverTCP closes a real HTTP connection mid-stream
// and asserts the server-side handler goroutine exits (observed via
// the per-test server's Close, which blocks on outstanding handlers).
func TestStreamDisconnectOverTCP(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	release := make(chan struct{})
	s.runHook = func(id string) { <-release }
	st, err := s.submit(&JobRequest{Scenario: "uniform:n=32", Protocol: "decay", Seed: 3, Trials: 1, ProgressEvery: 1})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first stream read: %v", err)
	}
	resp.Body.Close() // mid-stream disconnect
	close(release)

	finished := make(chan struct{})
	go func() {
		ts.Close() // blocks until the stream handler returns
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(15 * time.Second):
		t.Fatal("stream handler still running after client disconnect")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

// TestOpenReservesJournaledIDs pins the replay id guard end to end: a
// fresh submission racing background replay must receive an id beyond
// every journaled id, so it can never collide with a Resubmit and hand
// clients polling a journaled id a different job.
func TestOpenReservesJournaledIDs(t *testing.T) {
	path := tempJournal(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalRecord{Op: "accept", ID: "j7", Req: &quickRun})
	j.Append(journalRecord{Op: "done", ID: "j7", State: "done"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	s, ts := journalServer(t, path, Config{})
	// Deliberately no waitReplay first: the reservation must hold even
	// while replay is still running in the background.
	id := submitJob(t, ts, quickRun)
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64)
	if err != nil || n <= 7 {
		t.Fatalf("fresh id %q does not clear the journaled ids (want > j7)", id)
	}
	waitReplay(t, s)
}

// TestReplayOverflowFailsVisibly pins the write-ahead contract under
// queue overflow: when the journal holds more in-flight jobs than the
// new incarnation's queue admits, the overflow is recorded as a failed
// terminal state — queryable under the original id, never a 404 — and
// the loss is durable across a further restart.
func TestReplayOverflowFailsVisibly(t *testing.T) {
	path := tempJournal(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		req := quickRun
		req.Seed = uint64(1000 + i)
		j.Append(journalRecord{Op: "accept", ID: fmt.Sprintf("j%d", i), Req: &req})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Stall every worker dequeue so replay outruns the drain and the
	// 1-deep queue genuinely overflows.
	faultinject.Arm(faultinject.WorkerStall, faultinject.Fault{Every: 1, Seed: 1, Stall: 100 * time.Millisecond})
	defer faultinject.DisarmAll()
	s, ts := journalServer(t, path, Config{Jobs: jobs.Config{QueueDepth: 1, Workers: 1}, RewarmHot: -1})
	waitReplay(t, s)
	faultinject.DisarmAll()

	overflowed := 0
	for i := 1; i <= 8; i++ {
		id := fmt.Sprintf("j%d", i)
		state, jerr := waitTerminal(t, ts.URL, id) // 404 fails here
		if state == string(jobs.StateFailed) {
			if !strings.Contains(jerr, "replay:") {
				t.Fatalf("job %s failed outside replay: %q", id, jerr)
			}
			overflowed++
		}
	}
	if overflowed == 0 {
		t.Fatal("queue never overflowed; the test exercised nothing")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The loss is journaled: a further restart sees every job terminal
	// and replays nothing.
	s2, _ := journalServer(t, path, Config{RewarmHot: -1})
	waitReplay(t, s2)
	if n := s2.mgr.Stats().Submitted; n != 0 {
		t.Fatalf("second restart re-queued %d jobs; overflow loss not durable", n)
	}
}

// TestShutdownDuringReplayLeavesJobsReplayable pins the drain/replay
// interaction: a shutdown that wins the race against replay must not
// fail durably accepted jobs — their accept records stay
// un-terminated so the next incarnation replays them.
func TestShutdownDuringReplayLeavesJobsReplayable(t *testing.T) {
	path := tempJournal(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalRecord{Op: "accept", ID: "j1", Req: &quickRun})
	j.Append(journalRecord{Op: "accept", ID: "j2", Req: &quickRun})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadJournalRecords(path)
	if err != nil {
		t.Fatal(err)
	}

	// Assemble the mid-replay daemon state by hand: draining already
	// set (Shutdown won the race), replay about to run.
	s := New(Config{JournalPath: path, RewarmHot: -1})
	if s.journal, err = OpenJournal(path); err != nil {
		t.Fatal(err)
	}
	s.ready.Store(false)
	s.replayDone = make(chan struct{})
	s.draining.Store(true)
	s.replay(recs, 0)
	if n := s.mgr.Stats().Submitted; n != 0 {
		t.Fatalf("draining replay admitted %d jobs", n)
	}
	if _, err := s.submit(&quickRun); !errors.Is(err, jobs.ErrShutdown) {
		t.Fatalf("submit while draining: err = %v, want ErrShutdown", err)
	}
	if err := s.journal.Close(); err != nil {
		t.Fatal(err)
	}
	after, _, err := ReadJournalRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 2 {
		t.Fatalf("journal grew to %d records; draining replay must append nothing", len(after))
	}
	for _, rec := range after {
		if rec.Op != "accept" {
			t.Fatalf("accept record terminated during draining replay: %+v", rec)
		}
	}
}
