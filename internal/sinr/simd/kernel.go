// Package simd is the path-loss layer of the SINR engines: the
// α-specialized Kernel evaluating d^-α, plus vectorized batch forms of
// the resolve inner loops (far-field frontier replay, near-field
// distance scans, exact-engine row accumulation).
//
// Two tiers of vectorization are provided:
//
//   - Portable batch kernels (FarSum, NearScan, NearScanIndexed,
//     AccumRow): manually 4-wide (8-wide for the division-bound α=2 and
//     α=4 shapes) unrolled pure-Go loops with bounds checks hoisted.
//     They preserve the scalar left-to-right summation order bit-exactly
//     — every term is computed with the identical IEEE operation
//     sequence and folded into the accumulator in the identical order —
//     so callers replacing a plain loop with a batch call observe no
//     value change at all, only speed. The unroll wins come from
//     amortized loop/bounds overhead, the per-element Kernel call and
//     mode switch hoisted out of the loop, and independent
//     divisions/square roots in flight together.
//
//   - An optional AVX2 assembly path (FarSumFast) for the α=2 and α=4
//     far-field replay, compiled on amd64 unless the purego build tag is
//     set, selected at runtime by CPU-feature detection AND an explicit
//     SetUseAsm opt-in. It accumulates in four parallel lanes, so its
//     sums disagree with the scalar order by a few ulps (the terms are
//     all positive, so the disagreement is bounded by ~len·ε with no
//     cancellation); tests pin a measured bound. It is off by default so
//     every engine stays bit-identical to its scalar reference unless a
//     process explicitly trades last-ulp determinism for speed.
package simd

import "math"

// Kernel evaluates the path-loss attenuation d^-α with a strategy
// specialized at construction time for the exponent's arithmetic shape,
// so the per-pair cost in the resolve inner loops is a couple of
// multiplies (plus at most two square roots) instead of a math.Pow call:
//
//	α = 2            1/d²
//	α = 4            1/(d²·d²)
//	even integer α   inverse integer power of d²
//	odd integer α    integer power of d² times one math.Sqrt
//	half-integer α   integer power of d times one extra math.Sqrt
//	anything else    math.Pow (the general fallback)
//
// All strategies agree with math.Pow(d, -α) to within a few ulps; the
// kernel equivalence tests pin this down. The zero value evaluates
// α = 0 (no attenuation); build real kernels with NewKernel.
type Kernel struct {
	alpha float64
	mode  kernelMode
	m     int // integer payload; meaning depends on mode (see NewKernel)
}

type kernelMode uint8

const (
	kernPow     kernelMode = iota // math.Pow fallback; m unused
	kernInvSq                     // α = 2; m unused
	kernInvQuad                   // α = 4; m unused
	kernEven                      // α = 2m
	kernOdd                       // α = 2m+1
	kernHalf                      // α = m + 1/2
)

// kernMaxInt bounds the integer exponents the multiply strategies
// accept; larger exponents fall back to math.Pow, whose cost no longer
// dominates the accumulated rounding of a long multiply chain.
const kernMaxInt = 64

// NewKernel builds the evaluation strategy for exponent alpha. Any
// finite alpha is accepted; only the strategy choice depends on it.
func NewKernel(alpha float64) Kernel {
	k := Kernel{alpha: alpha, mode: kernPow}
	switch {
	case alpha == 2:
		k.mode = kernInvSq
	case alpha == 4:
		k.mode = kernInvQuad
	case alpha == math.Trunc(alpha) && alpha >= 1 && alpha <= kernMaxInt:
		ia := int(alpha)
		if ia%2 == 0 {
			k.mode, k.m = kernEven, ia/2
		} else {
			k.mode, k.m = kernOdd, (ia-1)/2
		}
	case 2*alpha == math.Trunc(2*alpha) && alpha > 0 && alpha <= kernMaxInt:
		k.mode, k.m = kernHalf, int(alpha)
	}
	return k
}

// Alpha returns the exponent the kernel evaluates.
func (k Kernel) Alpha() float64 { return k.alpha }

// ipow returns x^m for m ≥ 0 by binary exponentiation.
func ipow(x float64, m int) float64 {
	r := 1.0
	for m > 0 {
		if m&1 == 1 {
			r *= x
		}
		x *= x
		m >>= 1
	}
	return r
}

// FromDist2 returns d^-α given the squared distance d² — the natural
// input of the Euclidean fast paths, which never form d itself.
// d² = 0 yields +Inf, matching Params.Signal at distance zero.
//
// The two reciprocal shapes are tested inline so the whole call is
// inlinable into resolve loops; the multiply-chain and Pow shapes
// (which call the non-inlinable ipow/math.Pow anyway) sit behind
// fromDist2Slow.
func (k Kernel) FromDist2(d2 float64) float64 {
	if k.mode == kernInvSq {
		return 1 / d2
	}
	if k.mode == kernInvQuad {
		return 1 / (d2 * d2)
	}
	return k.fromDist2Slow(d2)
}

func (k Kernel) fromDist2Slow(d2 float64) float64 {
	switch k.mode {
	case kernEven: // α = 2m: d^-α = (d²)^-m
		return 1 / ipow(d2, k.m)
	case kernOdd: // α = 2m+1: d^-α = ((d²)^m · √d²)^-1
		return 1 / (ipow(d2, k.m) * math.Sqrt(d2))
	case kernHalf: // α = m+1/2: d^-α = (d^m · √d)^-1, d = √d²
		d := math.Sqrt(d2)
		return 1 / (ipow(d, k.m) * math.Sqrt(d))
	default:
		return math.Pow(d2, -k.alpha/2)
	}
}

// FromDist returns d^-α given the plain distance d — the natural input
// of the generic metric path. d = 0 yields +Inf. Split like FromDist2
// so the reciprocal shapes inline.
func (k Kernel) FromDist(d float64) float64 {
	if k.mode == kernInvSq {
		return 1 / (d * d)
	}
	if k.mode == kernInvQuad {
		d2 := d * d
		return 1 / (d2 * d2)
	}
	return k.fromDistSlow(d)
}

func (k Kernel) fromDistSlow(d float64) float64 {
	switch k.mode {
	case kernEven: // α = 2m
		return 1 / ipow(d*d, k.m)
	case kernOdd: // α = 2m+1
		return 1 / (ipow(d*d, k.m) * d)
	case kernHalf: // α = m+1/2
		return 1 / (ipow(d, k.m) * math.Sqrt(d))
	default:
		return math.Pow(d, -k.alpha)
	}
}
