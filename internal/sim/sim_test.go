package sim

import (
	"math"
	"strings"
	"testing"

	"sinrcast/internal/geom"
	"sinrcast/internal/sinr"
)

// beaconProto transmits every round with a fixed payload; used to drive
// the engine deterministically.
type beaconProto struct {
	every   int // transmit when t % every == 0 (0 = never)
	payload int64
	got     []Message
}

func (b *beaconProto) Tick(t int) (bool, Message) {
	if b.every > 0 && t%b.every == 0 {
		return true, Message{Kind: 1, A: b.payload}
	}
	return false, Message{}
}

func (b *beaconProto) Recv(_ int, m Message) { b.got = append(b.got, m) }

func twoStationEngine(t *testing.T, protos []Protocol) *Engine {
	t.Helper()
	phys, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(phys, protos)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineMismatchedProtocols(t *testing.T) {
	phys, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(phys, nil); err == nil {
		t.Fatal("want error for protocol count mismatch")
	}
}

func TestDeliveryAndMetadata(t *testing.T) {
	a := &beaconProto{every: 1, payload: 42}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	if got := e.Step(); got != 1 {
		t.Fatalf("Step receptions = %d, want 1", got)
	}
	if len(b.got) != 1 {
		t.Fatalf("station 1 received %d messages", len(b.got))
	}
	m := b.got[0]
	if m.Src != 0 || m.Round != 0 || m.Kind != 1 || m.A != 42 {
		t.Fatalf("message metadata wrong: %+v", m)
	}
	if len(a.got) != 0 {
		t.Fatal("transmitter must not receive")
	}
}

func TestRoundCounterAdvances(t *testing.T) {
	a := &beaconProto{every: 2, payload: 7}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if e.Round() != 5 {
		t.Fatalf("Round = %d, want 5", e.Round())
	}
	// Transmissions in rounds 0, 2, 4.
	if len(b.got) != 3 {
		t.Fatalf("got %d deliveries, want 3", len(b.got))
	}
	if b.got[1].Round != 2 {
		t.Fatalf("second delivery round = %d, want 2", b.got[1].Round)
	}
}

func TestMetrics(t *testing.T) {
	a := &beaconProto{every: 2, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	e.Run(6, nil)
	m := e.Metrics
	if m.Rounds != 6 {
		t.Fatalf("Rounds = %d", m.Rounds)
	}
	if m.Transmissions != 3 {
		t.Fatalf("Transmissions = %d", m.Transmissions)
	}
	if m.Receptions != 3 {
		t.Fatalf("Receptions = %d", m.Receptions)
	}
	if m.BusyRounds != 3 {
		t.Fatalf("BusyRounds = %d", m.BusyRounds)
	}
}

func TestRunStopCondition(t *testing.T) {
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	rounds, stopped := e.Run(100, func() bool { return len(b.got) >= 3 })
	if !stopped {
		t.Fatal("stop did not fire")
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rounds)
	}
	// Run with nil stop runs exactly maxRounds.
	rounds, stopped = e.Run(4, nil)
	if rounds != 4 || stopped {
		t.Fatalf("nil-stop run = (%d,%v)", rounds, stopped)
	}
}

func TestRunResumesGlobalClock(t *testing.T) {
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	e.Run(3, nil)
	e.Run(2, nil)
	if e.Round() != 5 {
		t.Fatalf("global clock = %d, want 5", e.Round())
	}
	if b.got[4].Round != 4 {
		t.Fatalf("delivery round = %d, want 4", b.got[4].Round)
	}
}

func TestCountingTracer(t *testing.T) {
	a := &beaconProto{every: 2, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	var ct CountingTracer
	e.SetTracer(&ct)
	e.Run(4, nil)
	wantTx := []int{1, 0, 1, 0}
	for i, w := range wantTx {
		if ct.TxPerRound[i] != w {
			t.Fatalf("TxPerRound = %v, want %v", ct.TxPerRound, wantTx)
		}
	}
	if ct.RecPerRound[0] != 1 || ct.RecPerRound[1] != 0 {
		t.Fatalf("RecPerRound = %v", ct.RecPerRound)
	}
}

func TestWriterTracer(t *testing.T) {
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	var sb strings.Builder
	e.SetTracer(&WriterTracer{W: &sb})
	e.Run(2, nil)
	out := sb.String()
	if !strings.Contains(out, "round") || !strings.Contains(out, "1<-0") {
		t.Fatalf("unexpected trace output:\n%s", out)
	}
}

func TestWriterTracerEvery(t *testing.T) {
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	var sb strings.Builder
	e.SetTracer(&WriterTracer{W: &sb, Every: 2})
	e.Run(4, nil)
	if got := strings.Count(sb.String(), "round"); got != 2 {
		t.Fatalf("Every=2 logged %d rounds, want 2", got)
	}
}

func TestMultiTracer(t *testing.T) {
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	var c1, c2 CountingTracer
	e.SetTracer(MultiTracer{&c1, &c2})
	e.Run(3, nil)
	if len(c1.TxPerRound) != 3 || len(c2.TxPerRound) != 3 {
		t.Fatal("MultiTracer did not fan out")
	}
}

// fullOnlyResolver wraps an engine hiding its ResolveFor, to exercise
// the fallback path of the receiver-activity hook.
type fullOnlyResolver struct{ inner *sinr.Engine }

func (f fullOnlyResolver) Resolve(tx []int) []sinr.Reception { return f.inner.Resolve(tx) }
func (f fullOnlyResolver) N() int                            { return f.inner.N() }

func TestSetReceiverActiveSkipsInactive(t *testing.T) {
	// Station 0 beacons every round; stations 1 and 2 listen in range.
	mk := func() ([]*beaconProto, *Engine) {
		phys, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{
			{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: -0.5, Y: 0},
		}), sinr.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		protos := []*beaconProto{{every: 1, payload: 9}, {}, {}}
		e, err := NewEngine(phys, []Protocol{protos[0], protos[1], protos[2]})
		if err != nil {
			t.Fatal(err)
		}
		return protos, e
	}

	protos, e := mk()
	e.SetReceiverActive(2, false)
	e.Run(3, nil)
	if len(protos[1].got) != 3 {
		t.Fatalf("active station received %d messages, want 3", len(protos[1].got))
	}
	if len(protos[2].got) != 0 {
		t.Fatalf("inactive station received %d messages, want 0", len(protos[2].got))
	}
	if e.Metrics.Receptions != 3 {
		t.Fatalf("Receptions = %d, want 3 (active only)", e.Metrics.Receptions)
	}

	// Reactivation restores delivery; deliveries to the active station
	// are identical throughout (the ResolveFor contract).
	e.SetReceiverActive(2, true)
	e.Run(2, nil)
	if len(protos[2].got) != 2 {
		t.Fatalf("reactivated station received %d messages, want 2", len(protos[2].got))
	}

	// Idempotent flips must not corrupt the inactive count.
	e.SetReceiverActive(2, false)
	e.SetReceiverActive(2, false)
	e.SetReceiverActive(2, true)
	e.Run(1, nil)
	if len(protos[2].got) != 3 {
		t.Fatalf("after idempotent flips station 2 got %d, want 3", len(protos[2].got))
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("want panic for out-of-range station")
			}
		}()
		e.SetReceiverActive(99, false)
	}()
}

func TestSetReceiverActiveFallbackWithoutSubsetResolver(t *testing.T) {
	// A resolver without ResolveFor resolves in full; the flag is
	// recorded but receptions still reach "inactive" stations — which is
	// why callers may only deactivate stations whose Recv is a no-op.
	inner, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{
		{X: 0, Y: 0}, {X: 0.5, Y: 0},
	}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e, err := NewEngine(fullOnlyResolver{inner}, []Protocol{a, b})
	if err != nil {
		t.Fatal(err)
	}
	e.SetReceiverActive(1, false)
	e.Run(2, nil)
	if len(b.got) != 2 {
		t.Fatalf("fallback delivered %d messages, want 2 (full resolution)", len(b.got))
	}
}

func TestCollisionNoDelivery(t *testing.T) {
	// Both stations transmit every round: no one ever listens, so no
	// receptions and metrics reflect pure contention.
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{every: 1, payload: 2}
	e := twoStationEngine(t, []Protocol{a, b})
	e.Run(5, nil)
	if e.Metrics.Receptions != 0 {
		t.Fatalf("Receptions = %d, want 0", e.Metrics.Receptions)
	}
	if e.Metrics.Transmissions != 10 {
		t.Fatalf("Transmissions = %d, want 10", e.Metrics.Transmissions)
	}
}

// floodProto is a deterministic flood-like protocol for the delta
// equivalence test: informed stations transmit on a fixed schedule,
// stations become informed on first reception, and the runner
// deactivates informed receivers — so the round loop alternates full
// Resolve and shrinking ResolveFor calls, exactly the shape the hier
// engine's cross-round delta path sees in production.
type floodProto struct {
	id       int
	informed bool
	at       int
	eng      *Engine
}

func (f *floodProto) Tick(t int) (bool, Message) {
	if f.informed && (t+f.id)%5 == 0 {
		return true, Message{Kind: 2, A: int64(f.id)}
	}
	return false, Message{}
}

func (f *floodProto) Recv(t int, _ Message) {
	if !f.informed {
		f.informed = true
		f.at = t
		f.eng.SetReceiverActive(f.id, false)
	}
}

// TestHierDeltaThroughSimEngine runs the full simulation round loop —
// including receiver deactivation, so rounds alternate Resolve and
// ResolveFor on monotonically shrinking subsets — over two hier
// engines, one updating aggregates incrementally across rounds and one
// rebuilding every round, with the physical layer of both wrapped in
// RecordRounds. Inform times, metrics and the recorded round traces
// must match exactly.
func TestHierDeltaThroughSimEngine(t *testing.T) {
	const n = 400
	pts := make([]geom.Point, n)
	// Deterministic spiral blob: dense center, sparse rim — several
	// hops of flood progress within a handful of rounds.
	for i := range pts {
		r := 0.07 * float64(i%200)
		a := 0.7 * float64(i)
		pts[i] = geom.Point{X: r * math.Cos(a), Y: r * math.Sin(a)}
	}
	eu := geom.NewEuclidean(pts)
	run := func(deltaCrossover float64) ([]int, Metrics, *RoundLog) {
		phys, err := sinr.NewHierEngine(eu, sinr.DefaultParams(), sinr.DefaultCellSize, sinr.DefaultNearRadius, sinr.DefaultTheta)
		if err != nil {
			t.Fatal(err)
		}
		phys.SetWorkers(1)
		phys.SetDeltaCrossover(deltaCrossover)
		log := &RoundLog{}
		protos := make([]Protocol, n)
		flood := make([]*floodProto, n)
		for i := range protos {
			flood[i] = &floodProto{id: i, at: -1}
			protos[i] = flood[i]
		}
		e, err := NewEngine(RecordRounds(phys, log), protos)
		if err != nil {
			t.Fatal(err)
		}
		for i := range flood {
			flood[i].eng = e
		}
		flood[0].informed = true
		flood[0].at = 0
		e.SetReceiverActive(0, false)
		e.Run(60, nil)
		at := make([]int, n)
		for i := range flood {
			at[i] = flood[i].at
		}
		return at, e.Metrics, log
	}
	atD, mD, logD := run(sinr.DefaultDeltaCrossover)
	atR, mR, logR := run(0) // rebuild every round
	if mD != mR {
		t.Fatalf("metrics diverge: delta %+v vs rebuild %+v", mD, mR)
	}
	informed := 0
	for i := range atD {
		if atD[i] != atR[i] {
			t.Fatalf("station %d informed at %d (delta) vs %d (rebuild)", i, atD[i], atR[i])
		}
		if atD[i] >= 0 {
			informed++
		}
	}
	if informed < n/4 {
		t.Fatalf("only %d/%d stations informed; flood too inert to exercise the delta path", informed, n)
	}
	if len(logD.Tx) != 60 || len(logR.Tx) != 60 {
		t.Fatalf("recorded %d/%d rounds, want 60", len(logD.Tx), len(logR.Tx))
	}
	sawSubset := false
	for r := range logD.Tx {
		if !equalInts(logD.Tx[r], logR.Tx[r]) || !equalInts(logD.Recv[r], logR.Recv[r]) {
			t.Fatalf("round %d traces diverge", r)
		}
		if logD.Recv[r] != nil {
			sawSubset = true
		}
	}
	if !sawSubset {
		t.Fatal("no subset-resolved rounds recorded; deactivation plumbing broken")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRoundLogKeepsEmptySubset pins the nil-vs-empty distinction: a
// round resolved for zero receivers (every station deactivated) must
// not be recorded as a full resolution — replaying the trace would
// otherwise resolve all n receivers for a round that cost nothing.
func TestRoundLogKeepsEmptySubset(t *testing.T) {
	phys, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	log := &RoundLog{}
	rec := RecordRounds(phys, log).(SubsetResolver)
	rec.ResolveFor([]int{0}, []int{})
	rec.Resolve([]int{0})
	if log.Recv[0] == nil {
		t.Fatal("empty subset recorded as nil (= full resolution)")
	}
	if len(log.Recv[0]) != 0 {
		t.Fatalf("empty subset recorded as %v", log.Recv[0])
	}
	if log.Recv[1] != nil {
		t.Fatalf("full round recorded as subset %v", log.Recv[1])
	}
}
