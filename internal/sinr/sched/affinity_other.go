//go:build !linux

package sched

// pinThread is a no-op off Linux: workers stay thread-locked (see
// workerLoop) but the OS places the threads. Affinity syscalls differ
// per platform and the scheduler's correctness never depends on
// placement, so the portable fallback simply declines.
func pinThread(cpu int) error { return nil }
