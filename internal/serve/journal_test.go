package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"sinrcast/internal/faultinject"
)

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.ndjson")
}

func TestJournalAppendSyncRead(t *testing.T) {
	path := tempJournal(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.AppendSync(journalRecord{Op: "accept", ID: "j1", Req: &quickRun})
	j.Append(journalRecord{Op: "trial", ID: "j1", Trial: 0, Row: []string{"0", "7", "12", "32", "true", "3", "40", "41"}})
	j.Append(journalRecord{Op: "done", ID: "j1", State: "done"})
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	recs, skipped, err := ReadJournalRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d records of a clean journal", skipped)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Op != "accept" || recs[0].Req == nil || recs[0].Req.Scenario != quickRun.Scenario {
		t.Fatalf("accept record did not round-trip: %+v", recs[0])
	}
	if recs[1].Op != "trial" || recs[1].Row[2] != "12" {
		t.Fatalf("trial record did not round-trip: %+v", recs[1])
	}
	if recs[2].Op != "done" || recs[2].State != "done" {
		t.Fatalf("done record did not round-trip: %+v", recs[2])
	}
}

// TestJournalGroupCommit pins the batching: appends inside one
// syncBatch window share a single fsync.
func TestJournalGroupCommit(t *testing.T) {
	j, err := OpenJournal(tempJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 50; i++ {
		j.Append(journalRecord{Op: "trial", ID: "j1", Trial: i})
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Syncs() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Wait out a couple more batch windows: no further appends, so no
	// further syncs should be scheduled beyond the in-flight window.
	time.Sleep(5 * syncBatch)
	if n := j.Syncs(); n == 0 || n > 3 {
		t.Fatalf("50 appends produced %d syncs, want 1..3 (group commit)", n)
	}
}

// TestJournalTornFinalLine pins kill -9 tolerance: a journal whose
// final line was torn mid-write still yields every whole record.
func TestJournalTornFinalLine(t *testing.T) {
	path := tempJournal(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalRecord{Op: "accept", ID: "j1", Req: &quickRun})
	j.Append(journalRecord{Op: "trial", ID: "j1", Trial: 0, Row: []string{"a"}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"trial","id":"j1","tri`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, skipped, err := ReadJournalRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records before the tear, want 2", len(recs))
	}
	if skipped != 1 {
		t.Fatalf("skipped %d, want exactly the torn line", skipped)
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, skipped, err := ReadJournalRecords(filepath.Join(t.TempDir(), "absent.ndjson"))
	if err != nil || len(recs) != 0 || skipped != 0 {
		t.Fatalf("missing journal: recs=%v skipped=%d err=%v, want empty", recs, skipped, err)
	}
}

// TestJournalNilSafe pins that a disabled journal (nil) absorbs the
// whole API: the job path calls these unconditionally.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Append(journalRecord{Op: "trial", ID: "j1"})
	j.AppendSync(journalRecord{Op: "accept", ID: "j1"})
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Syncs() != 0 {
		t.Fatal("nil journal reported syncs")
	}
}

// TestJournalRecoversAfterTransientFault pins the bounded-recovery
// contract: one transient sync failure degrades the journal, the next
// append reopens the file and journaling resumes, and the loss stays
// counted (Dropped) after recovery.
func TestJournalRecoversAfterTransientFault(t *testing.T) {
	path := tempJournal(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.JournalSync, faultinject.Fault{First: 1, Seed: 1})
	defer faultinject.DisarmAll()
	j.AppendSync(journalRecord{Op: "accept", ID: "j1", Req: &quickRun})
	if j.Err() == nil {
		t.Fatal("injected sync fault not reported")
	}

	// The next append reopens the file (the fault was First:1, so the
	// new epoch syncs clean) and later records are durable again.
	j.Append(journalRecord{Op: "accept", ID: "j2", Req: &quickRun})
	j.AppendSync(journalRecord{Op: "done", ID: "j2", State: "done"})
	if err := j.Err(); err != nil {
		t.Fatalf("journal did not recover after reopen: %v", err)
	}
	if j.Reopens() != 1 {
		t.Fatalf("Reopens = %d, want 1", j.Reopens())
	}
	if j.Dropped() == 0 {
		t.Fatal("records lost in the failed epoch not counted")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	recs, _, err := ReadJournalRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, rec := range recs {
		ids = append(ids, rec.ID)
	}
	if len(recs) != 2 || recs[0].ID != "j2" || recs[1].ID != "j2" {
		t.Fatalf("post-recovery journal holds %v, want j2's two records", ids)
	}
}

// TestJournalReopenBudgetExhausts pins the bound on recovery: with
// every sync failing, the journal spends maxJournalReopens reopens and
// then the error is permanently sticky — no panic, no block, every
// record counted dropped.
func TestJournalReopenBudgetExhausts(t *testing.T) {
	j, err := OpenJournal(tempJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	faultinject.Arm(faultinject.JournalSync, faultinject.Fault{First: 1 << 30, Seed: 1})
	defer faultinject.DisarmAll()
	for i := 0; i < 10; i++ {
		j.AppendSync(journalRecord{Op: "trial", ID: "j1", Trial: i})
	}
	if j.Err() == nil {
		t.Fatal("permanent sync failure not sticky")
	}
	if j.Reopens() != maxJournalReopens {
		t.Fatalf("Reopens = %d, want the full budget %d", j.Reopens(), maxJournalReopens)
	}
	if j.Dropped() == 0 {
		t.Fatal("lost records not counted")
	}
}

// TestJournalAppendAfterCloseSurfaced pins that a record appended after
// Close is refused loudly: sticky error, dropped count — never a
// silent write into a buffer no syncer will flush.
func TestJournalAppendAfterCloseSurfaced(t *testing.T) {
	path := tempJournal(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.AppendSync(journalRecord{Op: "accept", ID: "j1", Req: &quickRun})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j.Append(journalRecord{Op: "done", ID: "j1", State: "done"})
	if j.Err() == nil {
		t.Fatal("post-close append left no sticky error")
	}
	if j.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", j.Dropped())
	}
	recs, _, err := ReadJournalRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Op != "accept" {
		t.Fatalf("journal holds %d records, want only the pre-close accept", len(recs))
	}
}
