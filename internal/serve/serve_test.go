package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sinrcast/internal/jobs"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func submitJob(t *testing.T, ts *httptest.Server, req JobRequest) string {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var out struct{ ID string }
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" {
		t.Fatalf("submit returned no id: %s", body)
	}
	return out.ID
}

func fetchResult(t *testing.T, ts *httptest.Server, id, format string) (int, string) {
	t.Helper()
	resp, body := get(t, fmt.Sprintf("%s/v1/jobs/%s/result?format=%s&wait=1", ts.URL, id, format))
	return resp.StatusCode, string(body)
}

var quickRun = JobRequest{Scenario: "uniform:n=32", Protocol: "decay", Seed: 7, Trials: 2}

// TestWarmColdByteIdentical is the cache-correctness gate (run by name
// in CI): the result table of a run job must be byte-identical whether
// the engine came from a cold build, a warm cache clone, or a server
// with the cache disabled — in every sink format.
func TestWarmColdByteIdentical(t *testing.T) {
	_, cached := testServer(t, Config{})
	_, uncached := testServer(t, Config{CacheBytes: -1})

	for _, format := range []string{"text", "csv", "json"} {
		var outputs []string
		// cold (first submit), warm (second, cache hit), uncached.
		for i, ts := range []*httptest.Server{cached, cached, uncached} {
			id := submitJob(t, ts, quickRun)
			code, body := fetchResult(t, ts, id, format)
			if code != http.StatusOK {
				t.Fatalf("%s result %d: status %d, body %s", format, i, code, body)
			}
			outputs = append(outputs, body)
		}
		if outputs[0] != outputs[1] {
			t.Fatalf("%s: cold and warm results differ:\ncold: %q\nwarm: %q", format, outputs[0], outputs[1])
		}
		if outputs[0] != outputs[2] {
			t.Fatalf("%s: cached and uncached results differ:\ncached: %q\nuncached: %q", format, outputs[0], outputs[2])
		}
	}
}

// TestCacheHitCounted pins that the second identical submission is a
// warm hit, observable through /v1/cache.
func TestCacheHitCounted(t *testing.T) {
	s, ts := testServer(t, Config{})
	for i := 0; i < 2; i++ {
		id := submitJob(t, ts, quickRun)
		if code, body := fetchResult(t, ts, id, "text"); code != http.StatusOK {
			t.Fatalf("result %d: %d %s", i, code, body)
		}
	}
	cs := s.Cache().Stats()
	if cs.Misses != 1 || cs.Hits != 1 {
		t.Fatalf("cache stats after two identical jobs: %+v (want 1 miss, 1 hit)", cs)
	}
}

// TestBackpressure429 pins the admission contract on the wire: a full
// queue answers 429 with a Retry-After header, and the daemon recovers
// once the queue drains.
func TestBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	s, ts := testServer(t, Config{Jobs: jobs.Config{Workers: 1, QueueDepth: 1}})
	s.runHook = func(id string) { <-gate }
	defer once.Do(func() { close(gate) })

	running := submitJob(t, ts, quickRun) // occupies the worker
	queued := submitJob(t, ts, quickRun)  // fills the queue
	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickRun)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, body %s (want 429)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	once.Do(func() { close(gate) })
	for _, id := range []string{running, queued} {
		if code, out := fetchResult(t, ts, id, "text"); code != http.StatusOK {
			t.Fatalf("job %s after drain: %d %s", id, code, out)
		}
	}
	// Queue drained: submissions are accepted again.
	submitJob(t, ts, quickRun)
}

// TestCancelQueuedJob cancels a job stuck behind a busy worker and
// observes the canceled state through the status endpoint.
func TestCancelQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	s, ts := testServer(t, Config{Jobs: jobs.Config{Workers: 1, QueueDepth: 4}})
	s.runHook = func(id string) { <-gate }
	defer once.Do(func() { close(gate) })

	submitJob(t, ts, quickRun) // occupies the worker
	queued := submitJob(t, ts, quickRun)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	st, ok := s.state(queued)
	if !ok {
		t.Fatal("state lost")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st.handle.Wait(ctx)
	_, body := get(t, ts.URL+"/v1/jobs/"+queued)
	if !strings.Contains(string(body), `"state":"canceled"`) {
		t.Fatalf("status after cancel: %s", body)
	}
	if code, out := fetchResult(t, ts, queued, "text"); code != http.StatusUnprocessableEntity {
		t.Fatalf("result of canceled job: %d %s (want 422)", code, out)
	}
}

// TestStreamNDJSON pins the event stream: a finished job replays its
// full history — queued/running states, the cache event, the table,
// and the terminal state — one JSON object per line, and the stream
// terminates.
func TestStreamNDJSON(t *testing.T) {
	_, ts := testServer(t, Config{ProgressEvery: 1})
	id := submitJob(t, ts, quickRun)
	if code, body := fetchResult(t, ts, id, "text"); code != http.StatusOK {
		t.Fatalf("result: %d %s", code, body)
	}
	resp, body := get(t, fmt.Sprintf("%s/v1/jobs/%s/stream", ts.URL, id))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var types []string
	for i, line := range lines {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d is not JSON: %q: %v", i, line, err)
		}
		types = append(types, e["type"].(string))
	}
	joined := strings.Join(types, ",")
	for _, want := range []string{"state", "cache", "progress", "table"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("stream missing %q events; got types %v", want, types)
		}
	}
	var last map[string]any
	json.Unmarshal([]byte(lines[len(lines)-1]), &last)
	if last["type"] != "state" || last["state"] != "done" {
		t.Fatalf("stream does not end with the terminal state: %v", last)
	}
}

// TestStreamFollowsLiveJob subscribes before the job runs and sees the
// stream complete — the blocking path through eventLog.next.
func TestStreamFollowsLiveJob(t *testing.T) {
	gate := make(chan struct{})
	s, ts := testServer(t, Config{})
	s.runHook = func(id string) { <-gate }

	id := submitJob(t, ts, quickRun)
	done := make(chan string, 1)
	go func() {
		_, body := get(t, fmt.Sprintf("%s/v1/jobs/%s/stream", ts.URL, id))
		done <- string(body)
	}()
	time.Sleep(50 * time.Millisecond) // let the subscriber attach early
	close(gate)
	select {
	case body := <-done:
		if !strings.Contains(body, `"state":"done"`) {
			t.Fatalf("live stream missing terminal state: %s", body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not terminate")
	}
}

// TestValidationRejects pins the 400 boundary: malformed and
// impossible requests never become jobs.
func TestValidationRejects(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []JobRequest{
		{},                         // neither run nor experiment
		{Scenario: "uniform:n=32"}, // run without protocol
		{Scenario: "nosuch:n=4", Protocol: "decay"},
		{Scenario: "uniform:n=32", Protocol: "nosuch"},
		{Scenario: "uniform:n=32", Protocol: "decay", Engine: "warp"},
		{Scenario: "uniform:n=32", Protocol: "decay", Trials: -1},
		{Experiment: 99},
	}
	for i, req := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d (%+v): status %d, body %s (want 400)", i, req, resp.StatusCode, body)
		}
	}
	// Unknown fields are rejected too — typos must not silently noop.
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"scenario": "uniform:n=32", "protcol": "decay"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d (want 400)", resp.StatusCode)
	}
}

// TestExperimentJob runs the smallest suite runner end to end and
// checks the result renders in every format.
func TestExperimentJob(t *testing.T) {
	_, ts := testServer(t, Config{})
	id := submitJob(t, ts, JobRequest{
		Experiment: 13, Seed: 2014, Trials: 1,
		Scenario: "uniform:n=32", Protocol: "decay",
	})
	for _, format := range []string{"text", "csv", "json"} {
		code, body := fetchResult(t, ts, id, format)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %s", format, code, body)
		}
		if !strings.Contains(body, "decay") {
			t.Fatalf("%s result lacks the protocol row: %s", format, body)
		}
	}
}

// TestServerShutdownDrains is the service-level graceful-shutdown
// test: an in-flight job finishes, a queued one fails with the clean
// shutdown error, and new submissions answer 503.
func TestServerShutdownDrains(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Jobs: jobs.Config{Workers: 1, QueueDepth: 4}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.runHook = func(id string) { <-gate }

	running := submitJob(t, ts, quickRun)
	queued := submitJob(t, ts, quickRun)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	qst, _ := s.state(queued)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := qst.handle.Wait(ctx); err == nil || !strings.Contains(err.Error(), "shutting down") {
		t.Fatalf("queued job error %v, want the shutdown error", err)
	}

	resp, _ := postJSON(t, ts.URL+"/v1/jobs", quickRun)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d (want 503)", resp.StatusCode)
	}

	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	rst, _ := s.state(running)
	if state, err := rst.handle.State(); state != jobs.StateDone || err != nil {
		t.Fatalf("in-flight job after drain: %s %v (want done)", state, err)
	}
}

// TestRPCRoundTrip drives the JSON-RPC transport through submit,
// status, list, cache.stats, cancel, and the error paths.
func TestRPCRoundTrip(t *testing.T) {
	_, ts := testServer(t, Config{})
	call := func(body string) map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+"/rpc", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding RPC response: %v", err)
		}
		return out
	}

	sub := call(`{"jsonrpc":"2.0","id":1,"method":"job.submit","params":{"scenario":"uniform:n=32","protocol":"decay","seed":7}}`)
	if sub["error"] != nil {
		t.Fatalf("job.submit error: %v", sub["error"])
	}
	id := sub["result"].(map[string]any)["id"].(string)

	if code, body := fetchResult(t, ts, id, "text"); code != http.StatusOK {
		t.Fatalf("result: %d %s", code, body)
	}
	st := call(fmt.Sprintf(`{"jsonrpc":"2.0","id":2,"method":"job.status","params":{"id":%q}}`, id))
	if got := st["result"].(map[string]any)["state"]; got != "done" {
		t.Fatalf("job.status state %v, want done", got)
	}
	if l := call(`{"jsonrpc":"2.0","id":3,"method":"job.list"}`); len(l["result"].([]any)) != 1 {
		t.Fatalf("job.list: %v", l["result"])
	}
	cs := call(`{"jsonrpc":"2.0","id":4,"method":"cache.stats"}`)
	if cs["result"].(map[string]any)["cache"] == nil {
		t.Fatalf("cache.stats: %v", cs)
	}

	for body, wantCode := range map[string]float64{
		`{"jsonrpc":"2.0","id":5,"method":"job.status","params":{"id":"nope"}}`:    rpcNotFound,
		`{"jsonrpc":"2.0","id":6,"method":"no.such"}`:                              rpcMethodNotFound,
		`{"jsonrpc":"1.0","id":7,"method":"job.list"}`:                             rpcInvalidRequest,
		`{"jsonrpc":"2.0","id":8,"method":"job.submit","params":{"scenario":"x"}}`: rpcInvalidParams,
		`not json`: rpcParseError,
	} {
		out := call(body)
		e, ok := out["error"].(map[string]any)
		if !ok {
			t.Fatalf("request %s: no error (got %v)", body, out)
		}
		if e["code"].(float64) != wantCode {
			t.Fatalf("request %s: code %v, want %v", body, e["code"], wantCode)
		}
	}
}

// TestHealthz pins the liveness endpoint the CI smoke polls.
func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "true") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
}
