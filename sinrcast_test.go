package sinrcast

import (
	"testing"
)

func TestFacadeBroadcastRoundTrip(t *testing.T) {
	net, err := GenerateUniform(DefaultPhysical(), 48, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(net, Options{Seed: 7, Payload: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("broadcast incomplete after %d rounds", res.Rounds)
	}
	s, err := BroadcastSpontaneous(net, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !s.AllInformed {
		t.Fatal("spontaneous broadcast incomplete")
	}
}

func TestFacadeNewNetwork(t *testing.T) {
	net, err := NewNetwork(DefaultPhysical(), []Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 2 || !net.Connected() {
		t.Fatal("explicit network wrong")
	}
	line, err := NewLineNetwork(DefaultPhysical(), []float64{0, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if line.N() != 3 || !line.Connected() {
		t.Fatal("line network wrong")
	}
}

func TestFacadeColoringAndInvariants(t *testing.T) {
	net, err := GenerateUniform(DefaultPhysical(), 64, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	col, err := Colorize(net, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Colors) != net.N() {
		t.Fatal("coloring size mismatch")
	}
	if m := CheckLemma1(net, col.Colors); m <= 0 || m > 1.5 {
		t.Fatalf("Lemma1 mass = %v", m)
	}
	if m := CheckLemma2(net, col.Colors); m <= 0 {
		t.Fatalf("Lemma2 mass = %v", m)
	}
}

func TestFacadeGenerators(t *testing.T) {
	if _, err := GeneratePath(DefaultPhysical(), 10, 0.9, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateClusters(DefaultPhysical(), 2, 5, 0.1, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	chain, err := GenerateExponentialChain(DefaultPhysical(), 16, 0.5, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Granularity() < 100 {
		t.Fatalf("chain granularity = %v", chain.Granularity())
	}
}

func TestFacadeApps(t *testing.T) {
	net, err := GenerateUniform(DefaultPhysical(), 32, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Wake-up.
	wake := make([]int, net.N())
	for i := range wake {
		wake[i] = -1
	}
	wake[0] = 0
	wres, err := WakeUp(net, 3, WakeupSchedule{WakeAt: wake})
	if err != nil {
		t.Fatal(err)
	}
	if !wres.AllAwake {
		t.Fatal("wakeup incomplete")
	}
	// Consensus.
	msgs := make([]int64, net.N())
	for i := range msgs {
		msgs[i] = int64(3 + i%5)
	}
	cres, err := Consensus(net, 5, 7, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Correct {
		t.Fatalf("consensus wrong: agreed=%v v=%d", cres.Agreed, cres.Values[0])
	}
	// Leader.
	lres, err := ElectLeader(net, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Leader < 0 {
		t.Fatal("no leader")
	}
}

func TestFacadeAlert(t *testing.T) {
	net, err := GenerateUniform(DefaultPhysical(), 32, 8, 19)
	if err != nil {
		t.Fatal(err)
	}
	raised := make([]bool, net.N())
	raised[3] = true
	res, err := Alert(net, 5, raised)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("alert not delivered")
	}
	// Negative case: silent and false everywhere.
	neg, err := Alert(net, 5, make([]bool, net.N()))
	if err != nil {
		t.Fatal(err)
	}
	if !neg.Correct || neg.FloodTransmissions != 0 {
		t.Fatalf("negative alert: correct=%v floodTx=%d", neg.Correct, neg.FloodTransmissions)
	}
}

func TestFacadeProgress(t *testing.T) {
	net, err := GeneratePath(DefaultPhysical(), 16, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(net, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := Progress(net, 0, res.InformTime)
	if err != nil {
		t.Fatal(err)
	}
	if hp.PerHop <= 0 {
		t.Fatalf("per-hop slope = %v", hp.PerHop)
	}
}

func TestFacadeClusteredPath(t *testing.T) {
	net, err := GenerateClusteredPath(DefaultPhysical(), 8, 12, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 20 || !net.Connected() {
		t.Fatal("clustered path wrong")
	}
}

func TestFacadeBaselines(t *testing.T) {
	net, err := GenerateUniform(DefaultPhysical(), 48, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func(*Network, Options) (*BroadcastResult, error){
		"decay":  FloodDecay,
		"daum":   FloodDaumStyle,
		"oracle": FloodDensityOracle,
		"tdma":   FloodGridTDMA,
	} {
		res, err := run(net, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.AllInformed {
			t.Fatalf("%s incomplete after %d rounds", name, res.Rounds)
		}
	}
}

func TestFacadeScenarios(t *testing.T) {
	fams := ScenarioFamilies()
	if len(fams) < 11 {
		t.Fatalf("ScenarioFamilies = %d, want >= 11", len(fams))
	}
	spec, err := ParseSpec("uniform:n=48,density=8")
	if err != nil {
		t.Fatal(err)
	}
	net, err := Generate(spec, DefaultPhysical(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The spec path and the legacy generator must agree exactly.
	legacy, err := GenerateUniform(DefaultPhysical(), 48, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.N(); i++ {
		if net.Space.Position(i) != legacy.Space.Position(i) {
			t.Fatalf("station %d: spec path diverged from GenerateUniform", i)
		}
	}
	if net.Meta["attempts"] < 1 {
		t.Fatalf("generator meta missing: %v", net.Meta)
	}
	if _, err := ParseSpec("uniform:bogus=1"); err == nil {
		t.Fatal("want error for unknown parameter")
	}
	if ScenarioCatalogue() == "" {
		t.Fatal("empty scenario catalogue")
	}
}

func TestFacadeProtocols(t *testing.T) {
	names := ProtocolNames()
	if len(names) < 11 {
		t.Fatalf("ProtocolNames = %d, want >= 11", len(names))
	}
	net, err := GenerateUniform(DefaultPhysical(), 32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseProtocol("nos:source=3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunProtocol(net, spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("nos incomplete after %d rounds", res.Rounds)
	}
	// The registry path and the facade helper must agree exactly.
	direct, err := Broadcast(net, Options{Seed: 7, Source: 3, Payload: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != direct.Rounds || res.Metrics != direct.Metrics {
		t.Fatalf("registry run diverged from Broadcast: %d/%v vs %d/%v",
			res.Rounds, res.Metrics, direct.Rounds, direct.Metrics)
	}
	if _, err := ParseProtocol("nos:bogus=1"); err == nil {
		t.Fatal("want error for unknown parameter")
	}
	if ProtocolCatalogue() == "" {
		t.Fatal("empty protocol catalogue")
	}
}
