package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// runRound executes one round of n chunks with the given owners and
// returns, per chunk, how many times it ran and which worker ran it.
func runRound(t *testing.T, r *Runner, owners []int32) (runs []int32, by []int32) {
	t.Helper()
	n := len(owners)
	runs = make([]int32, n)
	by = make([]int32, n)
	for i := range by {
		by[i] = -1
	}
	r.Run(owners, func(chunk, worker int) {
		atomic.AddInt32(&runs[chunk], 1)
		atomic.StoreInt32(&by[chunk], int32(worker))
	})
	return runs, by
}

func TestEveryChunkRunsExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		r := New(workers, false)
		for round := 0; round < 5; round++ {
			n := 1 + round*13
			owners := make([]int32, n)
			for c := range owners {
				owners[c] = int32(c * workers / n)
			}
			runs, _ := runRound(t, r, owners)
			for c, k := range runs {
				if k != 1 {
					t.Fatalf("workers=%d round=%d: chunk %d ran %d times", workers, round, c, k)
				}
			}
		}
		r.Close()
	}
}

func TestOutOfRangeOwnersFoldIn(t *testing.T) {
	r := New(2, false)
	defer r.Close()
	owners := []int32{0, 1, 7, -3, 100, 2}
	runs, by := runRound(t, r, owners)
	for c, k := range runs {
		if k != 1 {
			t.Fatalf("chunk %d ran %d times", c, k)
		}
		if by[c] < 0 || by[c] >= 2 {
			t.Fatalf("chunk %d ran on worker %d, want [0,2)", c, by[c])
		}
	}
}

func TestFewerChunksThanWorkers(t *testing.T) {
	// A 3-chunk round on a 16-worker runner must wake at most 3 workers
	// (no degenerate empty dispatches) and still run every chunk once.
	r := New(16, false)
	defer r.Close()
	runs, by := runRound(t, r, []int32{9, 12, 15})
	for c, k := range runs {
		if k != 1 {
			t.Fatalf("chunk %d ran %d times", c, k)
		}
		if by[c] >= 3 {
			t.Fatalf("chunk %d ran on worker %d, but only 3 workers may wake", c, by[c])
		}
	}
}

func TestEmptyRoundIsNoOp(t *testing.T) {
	r := New(4, false)
	defer r.Close()
	called := false
	r.Run(nil, func(chunk, worker int) { called = true })
	if called {
		t.Fatal("fn called on an empty round")
	}
}

// TestStealCountGate is the counted, hardware-independent gate on the
// stealing path: worker 0 is held at the round barrier, so its entire
// queue must be stolen by the other workers before the round can
// complete — on any machine, any GOMAXPROCS, any interleaving. If the
// stealing path rots, this round deadlocks (and the test times out)
// or the count comes back short.
func TestStealCountGate(t *testing.T) {
	const chunks = 32
	r := New(4, false)
	defer r.Close()
	release := make(chan struct{})
	r.SetHoldForTest(0, release)
	// Everything is owned by the held worker 0; a separate goroutine
	// releases it only after the steal counter proves the others took
	// over.
	owners := make([]int32, chunks)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r.Steals() == 0 {
			runtime.Gosched()
		}
		close(release)
	}()
	runs, by := runRound(t, r, owners)
	<-done
	r.SetHoldForTest(-1, nil)
	for c, k := range runs {
		if k != 1 {
			t.Fatalf("chunk %d ran %d times", c, k)
		}
	}
	stolen := 0
	for _, w := range by {
		if w != 0 {
			stolen++
		}
	}
	if got := r.Steals(); got < int64(stolen) {
		t.Fatalf("Steals() = %d, but %d chunks ran off-owner", got, stolen)
	}
	if stolen == 0 {
		t.Fatal("no chunk was stolen despite the owner being held")
	}
}

func TestStealsAccumulateAcrossRounds(t *testing.T) {
	r := New(3, false)
	defer r.Close()
	before := r.Steals()
	for round := 0; round < 3; round++ {
		release := make(chan struct{})
		r.SetHoldForTest(0, release)
		go func() {
			for r.Steals() == before {
				runtime.Gosched()
			}
			close(release)
		}()
		owners := make([]int32, 8) // all owned by held worker 0
		runRound(t, r, owners)
		r.SetHoldForTest(-1, nil)
		after := r.Steals()
		if after <= before {
			t.Fatalf("round %d: steal counter did not advance (%d -> %d)", round, before, after)
		}
		before = after
	}
}

func TestPinnedRunnerResolvesRounds(t *testing.T) {
	// Pinning is best-effort and platform-dependent; the contract under
	// test is that a pinned runner behaves identically.
	r := New(2, true)
	defer r.Close()
	if !r.Pinned() {
		t.Fatal("Pinned() = false on a pinned runner")
	}
	owners := []int32{0, 0, 1, 1, 0, 1}
	runs, _ := runRound(t, r, owners)
	for c, k := range runs {
		if k != 1 {
			t.Fatalf("pinned: chunk %d ran %d times", c, k)
		}
	}
}

func TestSerialRunnerInlines(t *testing.T) {
	r := New(1, false)
	defer r.Close()
	var order []int
	r.Run(make([]int32, 5), func(chunk, worker int) {
		if worker != 0 {
			t.Fatalf("serial runner used worker %d", worker)
		}
		order = append(order, chunk)
	})
	for i, c := range order {
		if c != i {
			t.Fatalf("serial chunk order %v, want ascending", order)
		}
	}
	if r.Steals() != 0 {
		t.Fatalf("serial runner stole %d chunks", r.Steals())
	}
}
