// Package leader implements the §5 leader-election protocol: every
// station draws a random ID from {1,…,n³} (unique whp), then the
// network runs consensus on the IDs; the station holding the agreed
// minimum becomes the leader. Time is O(D log² n + log³ n) — the
// consensus time with log X = 3 log n.
package leader

import (
	"errors"
	"fmt"

	"sinrcast/internal/apps/consensus"
	"sinrcast/internal/network"
	"sinrcast/internal/rng"
)

// Result reports a leader-election execution.
type Result struct {
	// Leader is the index of the elected station, or -1 if election
	// failed (no agreement, or the agreed ID matched no station).
	Leader int
	// AgreedID is the ID all stations converged on.
	AgreedID int64
	// IDs are the randomly drawn identifiers.
	IDs []int64
	// Unique reports whether the random IDs were collision-free.
	Unique bool
	// Consensus carries the underlying consensus result.
	Consensus *consensus.Result
}

// Run elects a leader on the network. cfg.X is overridden to n³ as the
// protocol prescribes; IDs are drawn from seed.
func Run(net *network.Network, cfg consensus.Config, seed uint64) (*Result, error) {
	n := net.N()
	if n < 1 {
		return nil, errors.New("leader: empty network")
	}
	x := int64(n) * int64(n) * int64(n)
	cfg.X = x
	r := rng.New(seed)
	ids := make([]int64, n)
	seen := make(map[int64]bool, n)
	unique := true
	for i := range ids {
		ids[i] = 1 + r.Int63()%x
		if seen[ids[i]] {
			unique = false
		}
		seen[ids[i]] = true
	}
	cres, err := consensus.Run(net, cfg, seed+1, ids)
	if err != nil {
		return nil, fmt.Errorf("leader: %w", err)
	}
	res := &Result{
		Leader:    -1,
		IDs:       ids,
		Unique:    unique,
		Consensus: cres,
	}
	if !cres.Agreed {
		return res, nil
	}
	res.AgreedID = cres.Values[0]
	for i, id := range ids {
		if id == res.AgreedID {
			res.Leader = i
			break
		}
	}
	return res, nil
}
