// Quickstart: generate a network, broadcast a message with both of the
// paper's algorithms, and inspect the coloring invariants.
package main

import (
	"fmt"
	"log"

	"sinrcast"
)

func main() {
	// A uniform deployment of 96 stations, ~8 per communication ball.
	net, err := sinrcast.GenerateUniform(sinrcast.DefaultPhysical(), 96, 8, 42)
	if err != nil {
		log.Fatal(err)
	}
	d, _ := net.Diameter()
	fmt.Printf("network: n=%d, diameter=%d, max degree=%d, granularity=%.1f\n",
		net.N(), d, net.MaxDegree(), net.Granularity())

	// Theorem 1: non-spontaneous wake-up — only the source is awake;
	// everyone else sleeps until first reception. O(D log² n).
	nos, err := sinrcast.Broadcast(net, sinrcast.Options{Seed: 7, Payload: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NoSBroadcast: informed=%v rounds=%d phases=%d\n",
		nos.AllInformed, nos.Rounds, nos.Phases)

	// Theorem 2: spontaneous wake-up — all stations precompute the
	// coloring backbone together. O(D log n + log² n).
	s, err := sinrcast.BroadcastSpontaneous(net, sinrcast.Options{Seed: 7, Payload: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SBroadcast:   informed=%v rounds=%d\n", s.AllInformed, s.Rounds)

	// The §3 coloring and its invariants (Lemma 1 and Lemma 2).
	col, err := sinrcast.Colorize(net, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coloring: %d rounds, Lemma1 max ball mass=%.3f, Lemma2 min best mass=%.4f\n",
		col.Rounds,
		sinrcast.CheckLemma1(net, col.Colors),
		sinrcast.CheckLemma2(net, col.Colors))
}
