package broadcast

import (
	"fmt"

	"sinrcast/internal/coloring"
	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// nosStation is the per-station NoSBroadcast state machine (§4.1).
//
// Global time is divided into phases of cfg.PhaseLen() rounds. A station
// is active in a phase iff it was informed before the phase started.
// Part 1 of a phase re-runs StabilizeProbability on the active set;
// part 2 transmits the message with the Fact 11 probability derived from
// the fresh color. Sleeping stations listen; any reception informs them
// (every message carries the payload), and they join at the next phase
// boundary — exactly the paper's synchronization-by-round-counter.
type nosStation struct {
	cfg     *Config
	machine *coloring.Machine
	rnd     *rng.Source
	payload int64
	// phaseLen and colorLen cache cfg.PhaseLen() and
	// cfg.Coloring.TotalRounds(): both are schedule constants, and
	// recomputing their ~half-dozen transcendental calls in every one
	// of n Ticks per round dominates million-station rounds.
	phaseLen int
	colorLen int

	informed   bool
	informedAt int
	// wakeAt is the round of a spontaneous (adversarial) wake-up, or -1.
	// Used by the wake-up application (§5); plain broadcast sets -1.
	wakeAt int
	active bool // participating in the current phase
	txProb float64
}

var _ sim.Protocol = (*nosStation)(nil)

func newNOSStation(cfg *Config, rnd *rng.Source, payload int64, isSource bool) (*nosStation, error) {
	m, err := coloring.NewMachine(cfg.Coloring, rnd.Split(1))
	if err != nil {
		return nil, err
	}
	s := &nosStation{
		cfg:        cfg,
		machine:    m,
		rnd:        rnd,
		payload:    payload,
		phaseLen:   cfg.PhaseLen(),
		colorLen:   cfg.Coloring.TotalRounds(),
		informedAt: -1,
		wakeAt:     -1,
	}
	if isSource {
		s.informed = true
		s.informedAt = 0
	}
	return s, nil
}

// Tick implements sim.Protocol.
func (s *nosStation) Tick(t int) (bool, sim.Message) {
	if !s.informed && s.wakeAt >= 0 && t >= s.wakeAt {
		s.informed = true
		s.informedAt = t
	}
	r := t % s.phaseLen
	if r == 0 {
		// Phase boundary: snapshot participation and restart coloring.
		s.active = s.informed
		s.machine.Reset()
		s.txProb = 0
	}
	if !s.active {
		return false, sim.Message{}
	}
	colorLen := s.colorLen
	if r < colorLen {
		if s.machine.Tick(r) {
			return true, sim.Message{Kind: KindColoring, A: s.payload}
		}
		return false, sim.Message{}
	}
	if r == colorLen {
		// Part 1 just ended: fix the color and the Fact 11 probability.
		s.machine.Finish()
		s.txProb = s.cfg.TxProb(s.machine.Color())
	}
	if s.rnd.Bernoulli(s.txProb) {
		return true, sim.Message{Kind: KindData, A: s.payload}
	}
	return false, sim.Message{}
}

var _ sim.Sleeper = (*nosStation)(nil)

// TickWake implements sim.Sleeper: Tick plus the next round this
// station's Tick is not a provable no-op.
func (s *nosStation) TickWake(t int) (bool, sim.Message, int) {
	transmit, msg := s.Tick(t)
	return transmit, msg, s.nextWake(t)
}

// nextWake derives the sleep window from the post-Tick state. The
// no-op guarantees: an uninformed station's ticks change nothing (the
// boundary Reset is an identity on a pristine machine) until its
// spontaneous wake round, if any; an informed-but-inactive station does
// nothing before the next phase boundary; an active station that quit
// the coloring draws nothing until part 2 opens at colorLen. Everything
// else — colorers, part-2 transmitters — draws randomness every round
// and must tick every round.
func (s *nosStation) nextWake(t int) int {
	if !s.informed {
		if s.wakeAt > t {
			return s.wakeAt
		}
		return sim.NeverWake
	}
	r := t % s.phaseLen
	phaseStart := t - r
	if !s.active {
		return phaseStart + s.phaseLen
	}
	if r < s.colorLen && s.machine.Done() {
		return phaseStart + s.colorLen
	}
	return t + 1
}

// Recv implements sim.Protocol.
func (s *nosStation) Recv(t int, msg sim.Message) {
	if !s.informed {
		s.informed = true
		s.informedAt = t
	}
	if s.active {
		if r := t % s.phaseLen; r < s.colorLen {
			s.machine.OnRecv(r)
		}
	}
	_ = msg
}

// RunNoS executes NoSBroadcast from the given source station and returns
// the measured result. payload is the broadcast message content.
func RunNoS(net *network.Network, cfg Config, seed uint64, source int, payload int64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := net.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("broadcast: source %d out of range [0,%d)", source, n)
	}
	if cfg.Coloring.N != n {
		return nil, fmt.Errorf("broadcast: config sized for %d stations, network has %d", cfg.Coloring.N, n)
	}
	phys, err := cfg.channel(net)
	if err != nil {
		return nil, err
	}
	root := rng.New(seed)
	stations := make([]*nosStation, n)
	protos := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		st, err := newNOSStation(&cfg, root.Split(uint64(i)), payload, i == source)
		if err != nil {
			return nil, err
		}
		stations[i] = st
		protos[i] = st
	}
	eng, err := sim.NewEngine(phys, protos)
	if err != nil {
		return nil, err
	}

	remaining := n - 1
	budget := defaultBudget(cfg, net)
	lastInformRound := 0
	eng.SetTracer(tracerFunc(func(t int, _ []int, rec []sinr.Reception) {
		for _, rc := range rec {
			if stations[rc.Receiver].informedAt == t {
				remaining--
				lastInformRound = t + 1
			}
		}
	}))
	eng.Run(budget, func() bool { return remaining == 0 })

	res := &Result{
		AllInformed: remaining == 0,
		InformTime:  make([]int, n),
		Metrics:     eng.Metrics,
	}
	if res.AllInformed {
		res.Rounds = lastInformRound
	} else {
		res.Rounds = eng.Metrics.Rounds
	}
	res.Phases = (res.Rounds + cfg.PhaseLen() - 1) / cfg.PhaseLen()
	for i, st := range stations {
		res.InformTime[i] = st.informedAt
	}
	return res, nil
}

// tracerFunc adapts a function to sim.Tracer.
type tracerFunc func(t int, tx []int, rec []sinr.Reception)

func (f tracerFunc) OnRound(t int, tx []int, rec []sinr.Reception) { f(t, tx, rec) }
