package broadcast

import (
	"reflect"
	"testing"

	"sinrcast/internal/network"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// fullOnlyChannel hides the engine's ResolveFor, so sim.Engine's
// receiver-activity hook must fall back to full resolution — the
// wrapper-channel shape (e.g. a fading layer that only implements
// Resolve) exercised at the protocol level rather than with bare
// beacons.
type fullOnlyChannel struct{ inner sim.Resolver }

func (f fullOnlyChannel) Resolve(tx []int) []sinr.Reception { return f.inner.Resolve(tx) }
func (f fullOnlyChannel) N() int                            { return f.inner.N() }

// TestRunSSubsetFallback pins that a broadcast whose runner deactivates
// informed receivers (RunS) produces the same outcome when its channel
// lacks SubsetResolver: deactivated stations' Recv is a no-op, so the
// fallback's extra deliveries cannot change any state machine. Inform
// times, round counts and completion must be identical; only the
// reception count may grow (full resolution still delivers to stations
// the subset path skips).
func TestRunSSubsetFallback(t *testing.T) {
	net := genUniform(t, 48, 8, 9)
	run := func(wrap bool) *Result {
		cfg := cfgFor(net)
		if wrap {
			cfg.Channel = func(nw *network.Network) (sim.Resolver, error) {
				e, err := sinr.NewEngine(nw.Space, nw.Params)
				if err != nil {
					return nil, err
				}
				return fullOnlyChannel{e}, nil
			}
		}
		res, err := RunS(net, cfg, 13, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	direct, wrapped := run(false), run(true)
	if !reflect.DeepEqual(direct.InformTime, wrapped.InformTime) {
		t.Errorf("inform times diverge without SubsetResolver:\ndirect  %v\nwrapped %v",
			direct.InformTime, wrapped.InformTime)
	}
	if direct.Rounds != wrapped.Rounds || direct.AllInformed != wrapped.AllInformed {
		t.Errorf("completion diverges: direct (%d, %v) vs wrapped (%d, %v)",
			direct.Rounds, direct.AllInformed, wrapped.Rounds, wrapped.AllInformed)
	}
	if wrapped.Metrics.Receptions < direct.Metrics.Receptions {
		t.Errorf("fallback delivered fewer receptions (%d) than the subset path (%d)",
			wrapped.Metrics.Receptions, direct.Metrics.Receptions)
	}
	if direct.Metrics.Transmissions != wrapped.Metrics.Transmissions {
		t.Errorf("transmissions diverge: %d vs %d",
			direct.Metrics.Transmissions, wrapped.Metrics.Transmissions)
	}
}
