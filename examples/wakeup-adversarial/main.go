// Wakeup-adversarial: the §5 ad hoc wake-up problem. An adversary wakes
// three stations at staggered, misaligned rounds; the protocol must wake
// the whole network within O(D log² n) of the first spontaneous wake-up.
package main

import (
	"fmt"
	"log"
	"math"

	"sinrcast"
)

func main() {
	net, err := sinrcast.GenerateUniform(sinrcast.DefaultPhysical(), 64, 8, 21)
	if err != nil {
		log.Fatal(err)
	}
	d, _ := net.Diameter()

	wake := make([]int, net.N())
	for i := range wake {
		wake[i] = -1
	}
	// The adversary wakes three stations at awkward offsets.
	wake[0] = 137
	wake[net.N()/3] = 461
	wake[2*net.N()/3] = 900

	res, err := sinrcast.WakeUp(net, 7, sinrcast.WakeupSchedule{WakeAt: wake})
	if err != nil {
		log.Fatal(err)
	}
	lg := math.Log2(float64(net.N()))
	fmt.Printf("network: n=%d D=%d\n", net.N(), d)
	fmt.Printf("adversarial wakes at rounds 137, 461, 900\n")
	fmt.Printf("all awake: %v, span since first wake: %d rounds\n", res.AllAwake, res.Span)
	fmt.Printf("normalized span/(D·lg²n) = %.2f\n", float64(res.Span)/(float64(d)*lg*lg))
}
