// Package rng provides a small, fast, deterministic pseudo-random number
// generator with splittable per-station streams.
//
// All randomized protocols in this repository draw exclusively from rng so
// that a simulation run is reproducible bit-for-bit from its seed. The
// generator is SplitMix64 for stream derivation and xoshiro256** for the
// stream itself; both are well studied, allocation free, and need only the
// standard library.
package rng

import "math/bits"

// Source is a deterministic random stream. The zero value is NOT valid;
// construct with New or Split so the internal state is properly seeded.
type Source struct {
	s0, s1, s2, s3 uint64
	// id identifies the stream independent of how many values were
	// drawn, so Split(k) is stable across the stream's lifetime.
	id uint64
}

// splitMix64 advances x and returns the next SplitMix64 output.
// It is used to expand seeds into full generator state.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive mixes a sequence of values into a single stream seed by
// chaining SplitMix64. It is the canonical way to derive the seed of a
// nested unit of work — e.g. Derive(seed, experiment, dataPoint, trial)
// — so that the derived stream depends on every coordinate and two
// distinct coordinate tuples collide only with ~2^-64 probability
// (unlike additive schemes such as seed+trial*k, which alias across
// neighboring data points).
func Derive(parts ...uint64) uint64 {
	h := uint64(0x6a09e667f3bcc909) // frac(sqrt 2), an arbitrary non-zero init
	for _, p := range parts {
		x := h ^ p
		h = splitMix64(&x)
	}
	return h
}

// New returns a Source seeded from seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed resets the source to the stream identified by seed.
func (s *Source) Reseed(seed uint64) {
	s.id = seed
	x := seed
	s.s0 = splitMix64(&x)
	s.s1 = splitMix64(&x)
	s.s2 = splitMix64(&x)
	s.s3 = splitMix64(&x)
	// xoshiro state must not be all zero; SplitMix64 outputs make this
	// astronomically unlikely, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
}

// Split derives an independent child stream identified by id. The parent
// stream is not advanced, so Split(i) is stable regardless of draw order.
func (s *Source) Split(id uint64) *Source {
	// Mix the parent identity with the child id through SplitMix64.
	x := s.id ^ bits.RotateLeft64(id, 32) ^ (id * 0x9e3779b97f4a7c15)
	return New(splitMix64(&x))
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p. Values of p outside [0,1]
// are clamped.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := s.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := -uint64(n) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal variate (polar Marsaglia method).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			// ln(q) via math is fine; avoid importing math in hot paths
			// elsewhere, but here clarity wins.
			return u * sqrtMinus2LogOverQ(q)
		}
	}
}

// sqrtMinus2LogOverQ computes sqrt(-2 ln q / q) used by the polar method.
func sqrtMinus2LogOverQ(q float64) float64 {
	return sqrt(-2 * log(q) / q)
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -log(u)
		}
	}
}
