// Package prof centralizes the pprof wiring of the CLIs so perf work
// never hand-rolls it: one call registers -cpuprofile/-memprofile
// flags, one call starts collection, and the returned stop function
// finishes both profiles. Typical use:
//
//	profiles := prof.AddFlags(flag.CommandLine)
//	flag.Parse()
//	stop, err := profiles.Start()
//	if err != nil { ... exit 2 ... }
//	defer stop()
//
// Profiles are written on the normal return path; error paths that
// os.Exit lose them, which is fine — a run that died is profiled with
// the debugger, not pprof.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config holds the profile destinations parsed from the flags.
type Config struct {
	cpuPath string
	memPath string
}

// AddFlags registers -cpuprofile and -memprofile on fs (call before
// fs.Parse). Empty values — the default — disable profiling entirely.
func AddFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.cpuPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.memPath, "memprofile", "", "write a heap profile to this file on exit")
	return c
}

// Start begins CPU profiling if requested and returns the function
// that finishes both profiles: it stops the CPU profile and writes the
// heap profile (after a GC, so the snapshot shows live memory, not
// garbage). stop is never nil and is safe to call exactly once.
func (c *Config) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if c.cpuPath != "" {
		cpuFile, err = os.Create(c.cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	memPath := c.memPath
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
