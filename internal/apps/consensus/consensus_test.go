package consensus

import (
	"testing"

	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
)

func genNet(t testing.TB, n int, seed uint64) *network.Network {
	t.Helper()
	net, err := netgen.Uniform(netgen.Config{Params: sinr.DefaultParams(), Seed: seed}, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func cfgFor(net *network.Network, x int64) Config {
	return DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps, x)
}

func TestConfigValidate(t *testing.T) {
	net := genNet(t, 16, 1)
	ok := cfgFor(net, 15)
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"valid", func(c *Config) {}, false},
		{"negative X", func(c *Config) { c.X = -1 }, true},
		{"negative window", func(c *Config) { c.WindowRounds = -1 }, true},
		{"no window sizing", func(c *Config) { c.WindowFactor = 0 }, true},
		{"explicit window ok", func(c *Config) { c.WindowRounds = 100; c.WindowFactor = 0 }, false},
		{"bad cprob", func(c *Config) { c.CProb = 0 }, true},
		{"bad maxtx", func(c *Config) { c.MaxTxProb = 2 }, true},
		{"bad coloring", func(c *Config) { c.Coloring.CPrime = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := ok
			tt.mutate(&c)
			if err := c.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestBits(t *testing.T) {
	net := genNet(t, 16, 1)
	tests := []struct {
		x    int64
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {255, 8}, {256, 9},
	}
	for _, tt := range tests {
		c := cfgFor(net, tt.x)
		if got := c.Bits(); got != tt.want {
			t.Fatalf("Bits(X=%d) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestConsensusAgreesOnMinimum(t *testing.T) {
	net := genNet(t, 32, 3)
	cfg := cfgFor(net, 15)
	msgs := make([]int64, net.N())
	for i := range msgs {
		msgs[i] = int64(5 + i%9) // min = 5
	}
	res, err := Run(net, cfg, 7, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreed {
		t.Fatalf("no agreement: %v", res.Values[:8])
	}
	if !res.Correct {
		t.Fatalf("agreed on %d, want 5", res.Values[0])
	}
}

func TestConsensusAllZero(t *testing.T) {
	net := genNet(t, 24, 5)
	cfg := cfgFor(net, 7)
	msgs := make([]int64, net.N())
	res, err := Run(net, cfg, 9, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct || res.Values[0] != 0 {
		t.Fatalf("all-zero consensus: agreed=%v value=%d", res.Agreed, res.Values[0])
	}
}

func TestConsensusAllMax(t *testing.T) {
	// All-ones value: every window is silent, everyone appends 1.
	net := genNet(t, 24, 6)
	cfg := cfgFor(net, 7)
	msgs := make([]int64, net.N())
	for i := range msgs {
		msgs[i] = 7
	}
	res, err := Run(net, cfg, 9, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct || res.Values[0] != 7 {
		t.Fatalf("all-max consensus: agreed=%v value=%d", res.Agreed, res.Values[0])
	}
}

func TestConsensusSingleHolderOfMinimum(t *testing.T) {
	// Exactly one station holds the minimum: the hardest dissemination
	// case (a single initiator per 0-window).
	net := genNet(t, 32, 7)
	cfg := cfgFor(net, 31)
	msgs := make([]int64, net.N())
	for i := range msgs {
		msgs[i] = 31
	}
	msgs[net.N()-1] = 2
	res, err := Run(net, cfg, 11, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("agreed=%v values[0]=%d, want 2", res.Agreed, res.Values[0])
	}
}

func TestConsensusRoundsScaleWithBits(t *testing.T) {
	net := genNet(t, 24, 9)
	short := cfgFor(net, 1)
	long := cfgFor(net, 255)
	msgs := make([]int64, net.N())
	a, err := Run(net, short, 3, msgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, long, 3, msgs)
	if err != nil {
		t.Fatal(err)
	}
	// 8 windows vs 1 window over the same backbone.
	if b.Rounds <= a.Rounds {
		t.Fatalf("rounds did not grow with bits: %d vs %d", a.Rounds, b.Rounds)
	}
}

func TestConsensusErrors(t *testing.T) {
	net := genNet(t, 16, 11)
	cfg := cfgFor(net, 7)
	if _, err := Run(net, cfg, 1, make([]int64, 3)); err == nil {
		t.Fatal("want error for wrong message count")
	}
	bad := make([]int64, net.N())
	bad[0] = 99 // above X
	if _, err := Run(net, cfg, 1, bad); err == nil {
		t.Fatal("want error for out-of-domain message")
	}
	neg := make([]int64, net.N())
	neg[0] = -1
	if _, err := Run(net, cfg, 1, neg); err == nil {
		t.Fatal("want error for negative message")
	}
	wrongN := DefaultConfig(net.N()+1, 2, net.Params.Eps, 7)
	if _, err := Run(net, wrongN, 1, make([]int64, net.N())); err == nil {
		t.Fatal("want error for config size mismatch")
	}
}

func TestConsensusDeterministic(t *testing.T) {
	net := genNet(t, 24, 13)
	cfg := cfgFor(net, 15)
	msgs := make([]int64, net.N())
	for i := range msgs {
		msgs[i] = int64(i % 16)
	}
	a, err := Run(net, cfg, 5, msgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, cfg, 5, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("nondeterministic at station %d", i)
		}
	}
}
