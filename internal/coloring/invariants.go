package coloring

import (
	"math"
	"sort"

	"sinrcast/internal/network"
)

// Lemma1Stat reports the heaviest same-color unit ball of a coloring:
// the quantity Lemma 1 bounds by C1.
type Lemma1Stat struct {
	// MaxMass is max over stations v and colors p of
	// Σ_{w ∈ B(v,1), color(w)=p} color(w).
	MaxMass float64
	// Station and Color identify the maximizing ball.
	Station int
	Color   float64
}

// CheckLemma1 measures the Lemma 1 invariant over balls centered at
// stations (every violating ball contains a station whose centered ball
// has at least mass/2^γ of it, so station-centered balls are the right
// discrete proxy).
func CheckLemma1(net *network.Network, colors []float64) Lemma1Stat {
	n := net.N()
	var best Lemma1Stat
	mass := map[float64]float64{}
	for v := 0; v < n; v++ {
		clear(mass)
		for w := 0; w < n; w++ {
			if net.Space.Dist(v, w) <= 1 {
				mass[colors[w]] += colors[w]
			}
		}
		for c, m := range mass {
			if m > best.MaxMass {
				best = Lemma1Stat{MaxMass: m, Station: v, Color: c}
			}
		}
	}
	return best
}

// Lemma2Stat reports the weakest station of a coloring: the quantity
// Lemma 2 bounds from below by C2.
type Lemma2Stat struct {
	// MinBestMass is min over stations v of max over colors p of
	// Σ_{w ∈ B(v, ε/2), color(w)=p} color(w).
	MinBestMass float64
	// Station is the minimizing station; BestColor its best color.
	Station   int
	BestColor float64
}

// CheckLemma2 measures the Lemma 2 invariant: every station must have
// some color with constant probability mass inside its ε/2-ball (which
// always includes the station itself).
func CheckLemma2(net *network.Network, colors []float64) Lemma2Stat {
	n := net.N()
	radius := net.Params.Eps / 2
	best := Lemma2Stat{MinBestMass: math.Inf(1), Station: -1}
	mass := map[float64]float64{}
	for v := 0; v < n; v++ {
		clear(mass)
		for w := 0; w < n; w++ {
			if net.Space.Dist(v, w) <= radius {
				mass[colors[w]] += colors[w]
			}
		}
		vBest, vColor := 0.0, 0.0
		for c, m := range mass {
			if m > vBest {
				vBest, vColor = m, c
			}
		}
		if vBest < best.MinBestMass {
			best = Lemma2Stat{MinBestMass: vBest, Station: v, BestColor: vColor}
		}
	}
	return best
}

// Palette returns the distinct colors of a coloring in increasing order.
func Palette(colors []float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, c := range colors {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Float64s(out)
	return out
}

// TotalMassPerBall returns, for each station v, the all-colors mass
// Σ_{w ∈ B(v,1)} color(w): the interference budget the broadcast part
// relies on (per-color Lemma 1 times the palette size bounds it).
func TotalMassPerBall(net *network.Network, colors []float64) []float64 {
	n := net.N()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		for w := 0; w < n; w++ {
			if net.Space.Dist(v, w) <= 1 {
				out[v] += colors[w]
			}
		}
	}
	return out
}
