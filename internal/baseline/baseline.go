// Package baseline implements the comparison broadcast algorithms of
// the paper's related-work landscape (§1.2), all running under the same
// SINR physical engine as the paper's algorithms:
//
//   - Decay: the classic radio-network Decay protocol (Bar-Yehuda et
//     al.) ported to SINR — informed stations sweep probabilities
//     2^-1..2^-L with L = Θ(log n). Geometry-oblivious.
//   - DaumStyle: the granularity-sensitive strategy of Daum et al. [5]:
//     the probability sweep must span Θ(log n + α·log Rs) levels because
//     without geometry knowledge the right contention scale may sit at
//     any of the Θ(log Rs) distance scales; runtime therefore grows
//     with log Rs — the dependence the paper's algorithms remove.
//   - DensityOracle: a genie-aided local-broadcast flood ([11]-style):
//     every informed station knows the number of informed stations
//     within distance 1 and transmits with probability ~1/density.
//   - GridTDMA: a GPS-style baseline ([14]): stations know their
//     positions, the plane is cut into cells scheduled in a fixed TDMA
//     pattern, and cell-mates coordinate perfectly. This is exactly the
//     knowledge the paper's algorithms do away with.
//
// Oracle knowledge is deliberate (DESIGN.md substitutions 3-4): these
// baselines bound what position/density knowledge buys.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"sinrcast/internal/broadcast"
	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// Policy decides per-round transmission probabilities for a flooding
// protocol: every informed station consults its policy each round.
type Policy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Prepare is called once per round, before TxProb, with the current
	// informed flags. Oracle policies recompute their state here;
	// distributed policies ignore it.
	Prepare(t int, informed []bool)
	// TxProb returns the transmission probability of station i in round
	// t, given i was informed in round at.
	TxProb(i, t, at int) float64
}

// RunFlood floods a message from source under the given policy and
// returns a broadcast.Result. budget 0 derives a generous default from
// the network diameter and n. The physical layer is the exact SINR
// engine; RunFloodOn accepts an explicit one.
func RunFlood(net *network.Network, pol Policy, seed uint64, source, budget int) (*broadcast.Result, error) {
	return RunFloodOn(net, pol, seed, source, budget, nil)
}

// RunFloodOn is RunFlood with an explicit physical layer (nil selects
// the exact engine). A flood's semantics make reception relevant only
// to uninformed stations — an informed station's reception changes
// nothing — so when the engine supports subset resolution
// (sim.SubsetResolver) each round resolves only the uninformed
// receivers: inform times, round counts and completion are identical to
// the full resolution, and late rounds stop paying O(n) for stations
// whose state is settled. (Metrics.Receptions counts the receptions
// actually resolved, i.e. those at uninformed stations.)
func RunFloodOn(net *network.Network, pol Policy, seed uint64, source, budget int, phys sim.Resolver) (*broadcast.Result, error) {
	n := net.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("baseline: source %d out of range [0,%d)", source, n)
	}
	if budget < 0 {
		return nil, errors.New("baseline: negative budget")
	}
	if budget == 0 {
		d, _ := net.DiameterApprox()
		lg := math.Log2(float64(n)) + 1
		budget = int(float64(2*d+10) * lg * lg * 40)
	}
	if phys == nil {
		eng, err := sinr.NewEngine(net.Space, net.Params)
		if err != nil {
			return nil, err
		}
		phys = eng
	} else if phys.N() != n {
		return nil, fmt.Errorf("baseline: engine has %d stations, network has %d", phys.N(), n)
	}
	subset, _ := phys.(sim.SubsetResolver)
	root := rng.New(seed)
	rnds := make([]*rng.Source, n)
	for i := range rnds {
		rnds[i] = root.Split(uint64(i))
	}
	informed := make([]bool, n)
	informedAt := make([]int, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	informed[source] = true
	informedAt[source] = 0

	res := &broadcast.Result{InformTime: informedAt}
	count := 1
	tx := make([]int, 0, n)
	// infList is the ascending list of informed stations: only they draw
	// and transmit, so the per-round tick cost is O(informed), not O(n).
	// The reference loop scanned all n and short-circuited on the
	// informed flag; iterating the list makes the identical TxProb and
	// Bernoulli calls in the identical (ascending) order.
	infList := make([]int, 1, n)
	infList[0] = source
	var newInf []int
	var listeners []int
	listenersStale := true
	lastInform := 0
	var metrics sim.Metrics
	for t := 0; t < budget && count < n; t++ {
		pol.Prepare(t, informed)
		tx = tx[:0]
		for _, i := range infList {
			if rnds[i].Bernoulli(pol.TxProb(i, t, informedAt[i])) {
				tx = append(tx, i)
			}
		}
		var rec []sinr.Reception
		if subset != nil {
			if listenersStale {
				listeners = listeners[:0]
				for i := 0; i < n; i++ {
					if !informed[i] {
						listeners = append(listeners, i)
					}
				}
				listenersStale = false
			}
			rec = subset.ResolveFor(tx, listeners)
		} else {
			rec = phys.Resolve(tx)
		}
		newInf = newInf[:0]
		for _, rc := range rec {
			if !informed[rc.Receiver] {
				informed[rc.Receiver] = true
				informedAt[rc.Receiver] = t
				newInf = append(newInf, rc.Receiver)
				count++
				lastInform = t + 1
				listenersStale = true
			}
		}
		if len(newInf) > 0 {
			// Receptions arrive in ascending receiver order; merge them
			// into the (ascending, disjoint) informed list from the back.
			oldLen := len(infList)
			infList = infList[:oldLen+len(newInf)]
			oi, ni := oldLen-1, len(newInf)-1
			for k := len(infList) - 1; ni >= 0; k-- {
				if oi >= 0 && infList[oi] > newInf[ni] {
					infList[k] = infList[oi]
					oi--
				} else {
					infList[k] = newInf[ni]
					ni--
				}
			}
		}
		metrics.Rounds++
		metrics.Transmissions += int64(len(tx))
		metrics.Receptions += int64(len(rec))
		if len(tx) > 0 {
			metrics.BusyRounds++
		}
	}
	res.AllInformed = count == n
	res.Metrics = metrics
	if res.AllInformed {
		res.Rounds = lastInform
	} else {
		res.Rounds = metrics.Rounds
	}
	return res, nil
}

// Decay is the classic probability-sweep policy: in the k-th round since
// being informed, transmit with probability 2^-(1 + k mod L) where
// L = ceil(log2 n) + 1.
type Decay struct {
	L int
}

var _ Policy = (*Decay)(nil)

// NewDecay sizes the sweep for n stations.
func NewDecay(n int) *Decay {
	l := int(math.Ceil(math.Log2(float64(n)))) + 1
	if l < 2 {
		l = 2
	}
	return &Decay{L: l}
}

// Name implements Policy.
func (d *Decay) Name() string { return "decay" }

// Prepare implements Policy (no oracle state).
func (d *Decay) Prepare(int, []bool) {}

// TxProb implements Policy.
func (d *Decay) TxProb(_, t, at int) float64 {
	k := (t - at) % d.L
	return math.Pow(2, -float64(1+k))
}

// DaumStyle sweeps Θ(log n + α·log Rs) probability levels, modelling the
// granularity dependence of [5]: with no geometry knowledge the sweep
// must cover every distance scale of the network.
type DaumStyle struct {
	L int
}

var _ Policy = (*DaumStyle)(nil)

// NewDaumStyle sizes the sweep from the network's measured granularity
// Rs and path-loss α: L = ceil(log2 n) + ceil(α·log2 Rs) + 1.
func NewDaumStyle(net *network.Network) *DaumStyle {
	n := float64(net.N())
	rs := net.Granularity()
	if rs < 2 {
		rs = 2
	}
	l := int(math.Ceil(math.Log2(n))) + int(math.Ceil(net.Params.Alpha*math.Log2(rs))) + 1
	return &DaumStyle{L: l}
}

// Name implements Policy.
func (d *DaumStyle) Name() string { return "daum-style" }

// Prepare implements Policy (no oracle state).
func (d *DaumStyle) Prepare(int, []bool) {}

// TxProb implements Policy.
func (d *DaumStyle) TxProb(_, t, at int) float64 {
	k := (t - at) % d.L
	return math.Pow(2, -float64(1+k))
}

// DensityOracle transmits with probability c/(number of informed
// stations within distance 1), recomputed every round — an idealized
// local-broadcast flood with perfect density knowledge.
type DensityOracle struct {
	net  *network.Network
	C    float64
	dens []int
}

var _ Policy = (*DensityOracle)(nil)

// NewDensityOracle builds the oracle policy; c is the aggressiveness
// constant (0 picks 0.5).
func NewDensityOracle(net *network.Network, c float64) *DensityOracle {
	if c <= 0 {
		c = 0.5
	}
	return &DensityOracle{net: net, C: c, dens: make([]int, net.N())}
}

// Name implements Policy.
func (o *DensityOracle) Name() string { return "density-oracle" }

// Prepare implements Policy: recount informed stations per unit ball.
func (o *DensityOracle) Prepare(_ int, informed []bool) {
	n := o.net.N()
	for i := 0; i < n; i++ {
		o.dens[i] = 0
	}
	for i := 0; i < n; i++ {
		if !informed[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if informed[j] && o.net.Space.Dist(i, j) <= 1 {
				o.dens[i]++
			}
		}
	}
}

// TxProb implements Policy.
func (o *DensityOracle) TxProb(i, _, _ int) float64 {
	d := o.dens[i]
	if d < 1 {
		d = 1
	}
	p := o.C / float64(d)
	if p > 1 {
		return 1
	}
	return p
}

// GridTDMA is the GPS baseline: the plane is cut into square cells of
// side (1-ε)/√8 so that same-slot transmitters across the schedule
// period are far apart; cells are scheduled round-robin with period K²
// (K chosen so simultaneously scheduled cells are ≥ 2 apart), and
// within a cell exactly one informed station (the lowest-indexed,
// standing in for perfect local coordination) transmits.
type GridTDMA struct {
	net    *network.Network
	cell   []int64 // packed cell coordinates per station
	slot   []int   // schedule slot per station
	period int
	// leader[s] is the designated transmitter of station s's cell in
	// the current round, or -1.
	leader map[int64]int32
}

var _ Policy = (*GridTDMA)(nil)

// NewGridTDMA builds the TDMA baseline for a Euclidean network.
func NewGridTDMA(net *network.Network) (*GridTDMA, error) {
	side := net.Params.CommRadius() / math.Sqrt(8)
	// K·side >= 2 + comm radius keeps co-slot interferers far away.
	k := int(math.Ceil((2 + net.Params.CommRadius()) / side))
	g := &GridTDMA{
		net:    net,
		cell:   make([]int64, net.N()),
		slot:   make([]int, net.N()),
		period: k * k,
		leader: make(map[int64]int32),
	}
	for i := 0; i < net.N(); i++ {
		p := net.Space.Position(i)
		cx := int64(math.Floor(p.X / side))
		cy := int64(math.Floor(p.Y / side))
		g.cell[i] = cx<<32 | (cy & 0xffffffff)
		sx := int(((cx % int64(k)) + int64(k)) % int64(k))
		sy := int(((cy % int64(k)) + int64(k)) % int64(k))
		g.slot[i] = sx*k + sy
	}
	return g, nil
}

// Name implements Policy.
func (g *GridTDMA) Name() string { return "grid-tdma" }

// Period returns the TDMA schedule period (number of slots).
func (g *GridTDMA) Period() int { return g.period }

// Prepare implements Policy: elect the informed leader of every cell
// whose slot is due this round.
func (g *GridTDMA) Prepare(t int, informed []bool) {
	clear(g.leader)
	due := t % g.period
	for i := 0; i < g.net.N(); i++ {
		if !informed[i] || g.slot[i] != due {
			continue
		}
		if _, ok := g.leader[g.cell[i]]; !ok {
			g.leader[g.cell[i]] = int32(i)
		}
	}
}

// TxProb implements Policy: the elected leader transmits with
// certainty; everyone else is silent.
func (g *GridTDMA) TxProb(i, t, _ int) float64 {
	if due := t % g.period; g.slot[i] != due {
		return 0
	}
	if l, ok := g.leader[g.cell[i]]; ok && int(l) == i {
		return 1
	}
	return 0
}
