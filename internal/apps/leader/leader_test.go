package leader

import (
	"testing"

	"sinrcast/internal/apps/consensus"
	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
)

func genNet(t testing.TB, n int, seed uint64) *network.Network {
	t.Helper()
	net, err := netgen.Uniform(netgen.Config{Params: sinr.DefaultParams(), Seed: seed}, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestLeaderElection(t *testing.T) {
	net := genNet(t, 24, 3)
	cfg := consensus.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps, 1)
	res, err := Run(net, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Skip("rare ID collision for this seed; choose another seed")
	}
	if res.Leader < 0 {
		t.Fatalf("no leader elected (agreed=%v)", res.Consensus.Agreed)
	}
	// The leader holds the minimum ID.
	min := res.IDs[0]
	for _, id := range res.IDs[1:] {
		if id < min {
			min = id
		}
	}
	if res.IDs[res.Leader] != min {
		t.Fatalf("leader %d has ID %d, min is %d", res.Leader, res.IDs[res.Leader], min)
	}
	if res.AgreedID != min {
		t.Fatalf("agreed ID %d != min %d", res.AgreedID, min)
	}
}

func TestLeaderDeterministic(t *testing.T) {
	net := genNet(t, 16, 5)
	cfg := consensus.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps, 1)
	a, err := Run(net, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Leader != b.Leader || a.AgreedID != b.AgreedID {
		t.Fatalf("nondeterministic election: %d/%d vs %d/%d", a.Leader, a.AgreedID, b.Leader, b.AgreedID)
	}
}

func TestLeaderIDsInRange(t *testing.T) {
	net := genNet(t, 16, 7)
	cfg := consensus.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps, 1)
	res, err := Run(net, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	x := int64(net.N()) * int64(net.N()) * int64(net.N())
	for i, id := range res.IDs {
		if id < 1 || id > x {
			t.Fatalf("station %d ID %d outside [1,%d]", i, id, x)
		}
	}
}
