package sinr

import (
	"fmt"
	"runtime"
	"testing"

	"sinrcast/internal/rng"
)

// stealEngines builds one engine of every parallel shape over the
// scene: exact, grid, hier with the frontier memo, hier without.
func stealEngines(t *testing.T, seed uint64, n int, side float64) map[string]func() Resolver {
	t.Helper()
	scene := randomScene(seed, n, side)
	return map[string]func() Resolver{
		"exact": func() Resolver {
			e, err := NewEngine(scene, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		"grid": func() Resolver {
			g, err := NewGridEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"hier": func() Resolver {
			h, err := NewHierEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
			if err != nil {
				t.Fatal(err)
			}
			return h
		},
		"hier-nomemo": func() Resolver {
			h, err := NewHierEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
			if err != nil {
				t.Fatal(err)
			}
			h.SetFrontierMemo(false)
			return h
		},
	}
}

// TestStealStormByteIdentical runs every engine with one receiver per
// chunk — hundreds of chunks per round, so every round is a steal
// storm in which idle workers continuously raid each other's queues —
// and requires the output to stay byte-identical to the serial engine
// on Resolve and ResolveFor alike.
func TestStealStormByteIdentical(t *testing.T) {
	const n = 600
	for name, build := range stealEngines(t, 42, n, 35) {
		for _, workers := range []int{2, 3, 8} {
			serial := build()
			serial.SetWorkers(1)
			par := build()
			ForceParallelForTest(par, workers)
			SetChunkTargetForTest(par, 1)
			r := rng.New(uint64(workers) * 17)
			for round := 0; round < 8; round++ {
				tx := randomTxSet(r, n, 0.15)
				label := fmt.Sprintf("%s w=%d round=%d", name, workers, round)
				want := append([]Reception(nil), serial.Resolve(tx)...)
				diffReceptions(t, label, want, par.Resolve(tx))
				sub := randomTxSet(r, n, 0.3) // ascending subset, reuse the generator
				want = append(want[:0], serial.ResolveFor(tx, sub)...)
				diffReceptions(t, label+" subset", want, par.ResolveFor(tx, sub))
			}
		}
	}
}

// TestWorkerCountChangesMidSequence drives the hier engine through a
// round sequence that exercises the delta aggregation and epoch caches
// — overlapping transmitter sets, exact repeats, subset rounds — while
// reconfiguring the runner between rounds (worker counts up and down,
// serial interludes, pinning toggles). Every round must stay
// byte-identical to a serial engine replaying the same sequence:
// runner rebuilds must neither corrupt nor drop the cross-round caches.
func TestWorkerCountChangesMidSequence(t *testing.T) {
	const n = 700
	scene := randomScene(9, n, 30)
	serial, err := NewHierEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	serial.SetWorkers(1)
	par, err := NewHierEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	par.minParallelN = 0

	r := rng.New(1234)
	tx := randomTxSet(r, n, 0.2)
	schedule := []struct {
		workers int
		pinned  bool
	}{
		{2, false}, {2, false}, {4, false}, {1, false}, {4, true},
		{3, true}, {3, false}, {1, false}, {2, false}, {8, false},
	}
	for round, cfg := range schedule {
		par.SetWorkers(cfg.workers)
		par.SetPinned(cfg.pinned)
		switch round % 4 {
		case 1:
			// Exact repeat: the zero-churn epoch-cache replay path.
		case 2:
			// Small churn: flip a few stations in or out (delta path).
			in := make([]bool, n)
			for _, s := range tx {
				in[s] = true
			}
			tx = tx[:0]
			for i := 0; i < n; i++ {
				if in[i] != r.Bernoulli(0.02) {
					tx = append(tx, i)
				}
			}
		default:
			tx = randomTxSet(r, n, 0.2)
		}
		label := fmt.Sprintf("round=%d w=%d pinned=%v", round, cfg.workers, cfg.pinned)
		want := append([]Reception(nil), serial.Resolve(tx)...)
		diffReceptions(t, label, want, par.Resolve(tx))
		if round%3 == 0 {
			sub := randomTxSet(r, n, 0.4)
			want = append(want[:0], serial.ResolveFor(tx, sub)...)
			diffReceptions(t, label+" subset", want, par.ResolveFor(tx, sub))
		}
	}
}

// TestHierImbalanceStealGate is the engine-level counted steal gate:
// one worker of a two-worker hier engine is held at the round barrier,
// so the round can only complete if the other worker steals the held
// worker's block chunks. Hardware-independent — the hold forces the
// imbalance regardless of machine speed or GOMAXPROCS — and the output
// must remain byte-identical to the serial engine.
func TestHierImbalanceStealGate(t *testing.T) {
	const n = 800
	scene := randomScene(5, n, 35)
	serial, err := NewHierEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	serial.SetWorkers(1)
	par, err := NewHierEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	ForceParallelForTest(par, 2)

	r := rng.New(77)
	tx := randomTxSet(r, n, 0.25)
	// First round builds the runner (and warms the caches on both sides).
	diffReceptions(t, "warmup", append([]Reception(nil), serial.Resolve(tx)...), par.Resolve(tx))

	before := StealsForTest(par)
	release := make(chan struct{})
	HoldWorkerForTest(par, 0, release)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for StealsForTest(par) == before {
			runtime.Gosched()
		}
		close(release)
	}()
	tx2 := randomTxSet(r, n, 0.25)
	want := append([]Reception(nil), serial.Resolve(tx2)...)
	got := par.Resolve(tx2)
	<-done
	HoldWorkerForTest(par, -1, nil)
	diffReceptions(t, "held round", want, got)
	if stolen := StealsForTest(par) - before; stolen <= 0 {
		t.Fatalf("held worker 0, but steal counter did not advance (%d)", stolen)
	}
}
