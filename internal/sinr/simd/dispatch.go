package simd

import "sync/atomic"

// useAsm gates the assembly tier at runtime. It is process-global and
// off by default: the portable batch kernels are bit-identical to the
// scalar loops, while the asm lanes reorder the summation, so turning
// asm on is an explicit per-process choice (benchmarks, bulk sweeps)
// rather than something CPU detection silently flips.
var useAsm atomic.Bool

// AsmAvailable reports whether an assembly kernel tier exists in this
// build and the CPU supports it (amd64 with AVX2, not built with the
// purego tag).
func AsmAvailable() bool { return hasAsm }

// SetUseAsm requests the assembly tier for the kernels that have one
// (currently the α=2 and α=4 far-field replay via FarSumFast). It
// reports whether the request took effect: enabling returns false and
// stays off when AsmAvailable is false. Safe for concurrent use.
func SetUseAsm(on bool) bool {
	if on && !hasAsm {
		useAsm.Store(false)
		return false
	}
	useAsm.Store(on)
	return true
}

// UsingAsm reports whether FarSumFast currently dispatches to assembly
// for the shapes that have an assembly kernel.
func UsingAsm() bool { return useAsm.Load() }

// FarSumFast is FarSum with the assembly tier allowed: when asm is
// compiled in, the CPU supports it, and SetUseAsm(true) was called, the
// α=2 and α=4 shapes run the AVX2 kernel (4 parallel accumulator
// lanes, deterministic in-order lane reduce — a fixed summation order,
// just not the scalar one). Every other configuration falls through to
// the bit-exact portable FarSum.
func (k Kernel) FarSumFast(upx, upy float64, x, y, p []float64) float64 {
	if useAsm.Load() {
		switch k.mode {
		case kernInvSq:
			return asmFarSumInvSq(upx, upy, x, y, p)
		case kernInvQuad:
			return asmFarSumInvQuad(upx, upy, x, y, p)
		}
	}
	return k.FarSum(upx, upy, x, y, p)
}
