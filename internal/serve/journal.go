package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sinrcast/internal/faultinject"
)

// Journal is the daemon's append-only NDJSON write-ahead log: one
// record per accepted job spec, per completed trial, and per terminal
// state. A restarted daemon replays it to rewarm the hottest
// warm-engine cache keys and to re-queue (and trial-level resume) jobs
// that were in-flight at the crash — see (*Server).replay.
//
// Durability model: records are buffered and fsynced in batches by a
// background syncer (group commit), so the crash-loss window is one
// batch interval (syncBatch) of the *most recent* records — never a
// torn prefix. Accept records ride AppendSync, which forces the batch
// out before the admission response leaves the daemon. Reading
// tolerates a torn final line (the kill -9 case): parseable records up
// to the tear are replayed, the tear itself is skipped and counted.
//
// A journal failure (disk full, injected fault) is sticky and
// non-fatal: the daemon keeps serving, later appends are dropped, and
// Err surfaces the degradation through /healthz.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	err   error
	dirty bool

	kick chan struct{}
	quit chan struct{}
	done chan struct{}

	closeOnce sync.Once
	appends   atomic.Int64
	syncs     atomic.Int64
}

// syncBatch is the group-commit window: appends within one window
// share one flush+fsync.
const syncBatch = 10 * time.Millisecond

// journalRecord is one NDJSON line. Op selects the shape:
//
//	accept  {id, req}            job admitted (the write-ahead record)
//	trial   {id, trial, row}     run job: one completed trial's table row
//	etrial  {id, exp, point, trial, data}
//	                             experiment job: one completed trial's
//	                             gob-encoded result (exp.TrialCheckpoint)
//	done    {id, state, error}   terminal state
type journalRecord struct {
	Op    string      `json:"op"`
	ID    string      `json:"id"`
	Req   *JobRequest `json:"req,omitempty"`
	Trial int         `json:"trial,omitempty"`
	Row   []string    `json:"row,omitempty"`
	Exp   uint64      `json:"exp,omitempty"`
	Point uint64      `json:"point,omitempty"`
	Data  []byte      `json:"data,omitempty"`
	State string      `json:"state,omitempty"`
	Error string      `json:"error,omitempty"`
}

// OpenJournal opens (or creates) the journal at path in append mode
// and starts the batch syncer.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		f:    f,
		w:    bufio.NewWriter(f),
		kick: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go j.syncLoop()
	return j, nil
}

// Append buffers one record for the next batched fsync. Safe on a nil
// journal (journaling disabled) — it is the universal hook in the job
// path. Errors are sticky: after the first failed write or sync the
// journal drops records and reports through Err.
func (j *Journal) Append(rec journalRecord) {
	if j == nil {
		return
	}
	if err := faultinject.Fire(faultinject.JournalAppend); err != nil {
		j.fail(err)
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		j.fail(err)
		return
	}
	j.mu.Lock()
	if j.err == nil {
		if _, werr := j.w.Write(append(b, '\n')); werr != nil {
			j.err = werr
		} else {
			j.dirty = true
			j.appends.Add(1)
		}
	}
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
}

// AppendSync appends and forces the current batch to disk before
// returning — the accept-record path, where the write-ahead contract
// wants durability before the admission response.
func (j *Journal) AppendSync(rec journalRecord) {
	if j == nil {
		return
	}
	j.Append(rec)
	j.Sync()
}

func (j *Journal) fail(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

// Sync flushes buffered records and fsyncs the file now.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.err != nil {
		return j.err
	}
	if !j.dirty {
		return nil
	}
	if err := faultinject.Fire(faultinject.JournalSync); err != nil {
		j.err = err
		return err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
		return err
	}
	j.dirty = false
	j.syncs.Add(1)
	return nil
}

// syncLoop is the group-commit goroutine: a kick opens a syncBatch
// window, every append inside it shares the one fsync at its close.
func (j *Journal) syncLoop() {
	defer close(j.done)
	for {
		select {
		case <-j.quit:
			j.Sync()
			return
		case <-j.kick:
			t := time.NewTimer(syncBatch)
			select {
			case <-t.C:
			case <-j.quit:
				t.Stop()
				j.Sync()
				return
			}
			j.Sync()
		}
	}
}

// Err returns the sticky journal error, nil while healthy.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Syncs returns how many batched fsyncs have run (tests, stats).
func (j *Journal) Syncs() int64 {
	if j == nil {
		return 0
	}
	return j.syncs.Load()
}

// Close stops the syncer, flushes the tail, and closes the file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.closeOnce.Do(func() {
		close(j.quit)
		<-j.done
		j.mu.Lock()
		if cerr := j.f.Close(); cerr != nil && j.err == nil {
			j.err = cerr
		}
		j.mu.Unlock()
	})
	return j.Err()
}

// ReadJournalRecords reads every parseable record of the journal at
// path, in order, skipping unparseable lines (a kill -9 can tear the
// final line mid-write) and returning how many were skipped. A missing
// file is an empty journal, not an error.
func ReadJournalRecords(path string) (recs []journalRecord, skipped int, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	for _, line := range bytes.Split(b, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil || rec.Op == "" || rec.ID == "" {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, skipped, nil
}
