package serve

import (
	"encoding/json"
	"sync"

	"sinrcast/internal/stats"
)

// event is one NDJSON line of a job's stream. The zero fields of the
// unused kind are omitted, so each line carries only its own shape:
//
//	{"type":"state","job":"j1","state":"running"}
//	{"type":"cache","job":"j1","hit":true,"key":"uniform:n=64|engine=exact,..."}
//	{"type":"progress","job":"j1","trial":0,"round":256,"tx":12,"rec":31}
//	{"type":"table","job":"j1","table":{"title":...,"headers":[...],"rows":[[...]]}}
type event struct {
	Type  string       `json:"type"`
	Job   string       `json:"job,omitempty"`
	State string       `json:"state,omitempty"`
	Error string       `json:"error,omitempty"`
	Hit   *bool        `json:"hit,omitempty"`
	Key   string       `json:"key,omitempty"`
	Trial *int         `json:"trial,omitempty"`
	Round *int         `json:"round,omitempty"`
	Tx    *int         `json:"tx,omitempty"`
	Rec   *int         `json:"rec,omitempty"`
	Table *stats.Table `json:"table,omitempty"`
}

func intp(v int) *int    { return &v }
func boolp(v bool) *bool { return &v }

// eventLog is an append-only, multi-reader event buffer: the job
// runner appends, any number of stream handlers replay from an offset
// and block for more. Waking is a closed-channel broadcast — every
// append (and the final close) closes the current wake channel and
// installs a fresh one, so late subscribers always see history first
// and never miss a wake.
type eventLog struct {
	mu     sync.Mutex
	lines  [][]byte
	closed bool
	wake   chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append marshals and appends one event. Marshal errors cannot happen
// for the event struct (plain fields only) and are dropped by design.
func (l *eventLog) append(e event) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.mu.Lock()
	if !l.closed {
		l.lines = append(l.lines, b)
		close(l.wake)
		l.wake = make(chan struct{})
	}
	l.mu.Unlock()
}

// close marks the stream complete and wakes all readers.
func (l *eventLog) close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.wake)
	}
	l.mu.Unlock()
}

// next returns the lines from offset on, whether the log is complete,
// and a channel that closes on the next append/close. When it returns
// no new lines and closed == false, wait on the channel.
func (l *eventLog) next(offset int) (lines [][]byte, closed bool, wake <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset < len(l.lines) {
		lines = l.lines[offset:]
	}
	return lines, l.closed, l.wake
}
