// Round-sequence equivalence: the frontier-memoized, delta-updated
// HierEngine must be bit-identical, round for round, to (a) the
// unmemoized full-rebuild reference path, (b) a freshly constructed
// engine resolving only that round (no carried state), and (c) its own
// sharded resolution — across topology families, path-loss exponents,
// realistic transmitter churn, and interleaved ResolveFor subsets.
// This is the property that makes the memo and the delta pure
// optimizations: no observable effect, ever.
package sinr_test

import (
	"fmt"
	"testing"

	"sinrcast/internal/geom"
	"sinrcast/internal/rng"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sinr"
)

// seqScene builds one registry topology and returns its Euclidean
// geometry.
func seqScene(t *testing.T, spec string, seed uint64) *geom.Euclidean {
	t.Helper()
	sp, err := scenario.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	net, err := scenario.Generate(sp, sinr.DefaultParams(), seed)
	if err != nil {
		t.Fatal(err)
	}
	eu, ok := net.Space.(*geom.Euclidean)
	if !ok {
		t.Fatalf("scenario %q built %T, want Euclidean", spec, net.Space)
	}
	return eu
}

// evolveTx mutates a sorted transmitter set with roughly the given
// churn fraction (drop existing members, wake new ones), returning a
// sorted set — the shape protocol round loops feed the delta path.
func evolveTx(r *rng.Source, n int, cur []int, churn, density float64) []int {
	keep := map[int]bool{}
	for _, t := range cur {
		if !r.Bernoulli(churn) {
			keep[t] = true
		}
	}
	adds := int(churn*float64(len(cur))) + 1
	for i := 0; i < adds*3 && adds > 0; i++ {
		c := int(r.Uint64() % uint64(n))
		if !keep[c] {
			keep[c] = true
			adds--
		}
	}
	if len(keep) == 0 {
		keep[int(r.Uint64()%uint64(n))] = true
	}
	_ = density
	out := make([]int, 0, len(keep))
	for i := 0; i < n; i++ {
		if keep[i] {
			out = append(out, i)
		}
	}
	return out
}

func sortedSubset(r *rng.Source, n int, p float64) []int {
	var s []int
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			s = append(s, i)
		}
	}
	return s
}

func diffRec(t *testing.T, label string, want, got []sinr.Reception) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d receptions", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: reception %d: %+v vs %+v", label, i, want[i], got[i])
		}
	}
}

func TestRoundSequenceEquivalence(t *testing.T) {
	families := []struct{ name, spec string }{
		{"uniform", "uniform:n=640,density=8"},
		{"starclusters", "starclusters:arms=4,m=60,hops=40"},
		{"gridholes", "gridholes:n=640,spacing=0.45"},
	}
	alphas := []float64{2, 2.5, 4}
	seqs, rounds := 6, 10 // 6 seqs × 9 combos = 54 sequences
	if testing.Short() {
		seqs = 2
	}
	for _, fam := range families {
		for _, alpha := range alphas {
			t.Run(fmt.Sprintf("%s/alpha=%g", fam.name, alpha), func(t *testing.T) {
				eu := seqScene(t, fam.spec, 20140+uint64(alpha*10))
				n := eu.Len()
				p := sinr.DefaultParams()
				mk := func() *sinr.HierEngine {
					h, err := sinr.NewHierEngine(eu, p, sinr.DefaultCellSize, sinr.DefaultNearRadius, sinr.DefaultTheta)
					if err != nil {
						t.Fatal(err)
					}
					sinr.SetAlphaForTest(h, alpha)
					h.SetWorkers(1)
					return h
				}
				memo := mk() // memo + delta on: the production path
				par := mk()  // same, sharded
				sinr.ForceParallelForTest(par, 3)
				oracle := mk() // reference: per-receiver descent, rebuild every round
				oracle.SetFrontierMemo(false)
				oracle.SetDeltaCrossover(0)
				r := rng.New(uint64(len(fam.name))*1000 + uint64(alpha*4))
				for seq := 0; seq < seqs; seq++ {
					var tx []int
					for round := 0; round < rounds; round++ {
						churn := []float64{0.05, 0.25, 0.6}[round%3]
						tx = evolveTx(r, n, tx, churn, 0.05)
						label := fmt.Sprintf("%s/a=%g seq=%d round=%d", fam.name, alpha, seq, round)
						fresh := mk() // no carried state at all
						switch round % 4 {
						case 3: // subset round: small or large alternating
							pr := 0.04
							if seq%2 == 1 {
								pr = 0.5
							}
							sub := sortedSubset(r, n, pr)
							if len(sub) == 0 {
								continue
							}
							want := append([]sinr.Reception(nil), oracle.ResolveFor(tx, sub)...)
							diffRec(t, label+" memoFor", want, memo.ResolveFor(tx, sub))
							diffRec(t, label+" parFor", want, par.ResolveFor(tx, sub))
							diffRec(t, label+" freshFor", want, fresh.ResolveFor(tx, sub))
						default:
							want := append([]sinr.Reception(nil), oracle.Resolve(tx)...)
							diffRec(t, label+" memo", want, memo.Resolve(tx))
							diffRec(t, label+" par", want, par.Resolve(tx))
							diffRec(t, label+" fresh", want, fresh.Resolve(tx))
						}
					}
				}
			})
		}
	}
}

// TestDeltaMatchesRebuildLongRun drives one engine through a long
// low-churn sequence — the regime where the delta path stays active
// for many consecutive rounds and compaction of the live/hot lists
// kicks in — against a rebuild-every-round twin.
func TestDeltaMatchesRebuildLongRun(t *testing.T) {
	eu := seqScene(t, "uniform:n=900,density=8", 7)
	n := eu.Len()
	p := sinr.DefaultParams()
	delta, err := sinr.NewHierEngine(eu, p, sinr.DefaultCellSize, sinr.DefaultNearRadius, sinr.DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	rebuild, err := sinr.NewHierEngine(eu, p, sinr.DefaultCellSize, sinr.DefaultNearRadius, sinr.DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	delta.SetWorkers(1)
	rebuild.SetWorkers(1)
	rebuild.SetDeltaCrossover(0)
	r := rng.New(99)
	rounds := 300
	if testing.Short() {
		rounds = 60
	}
	var tx []int
	for round := 0; round < rounds; round++ {
		tx = evolveTx(r, n, tx, 0.08, 0.05)
		want := append([]sinr.Reception(nil), rebuild.Resolve(tx)...)
		diffRec(t, fmt.Sprintf("round %d", round), want, delta.Resolve(tx))
	}
}

// TestUnsortedRoundsFallBack pins the safety fallback: rounds whose
// transmitter slice is not strictly increasing cannot take the delta
// path, but must still resolve identically to a fresh engine.
func TestUnsortedRoundsFallBack(t *testing.T) {
	eu := seqScene(t, "uniform:n=400,density=8", 11)
	p := sinr.DefaultParams()
	h, err := sinr.NewHierEngine(eu, p, sinr.DefaultCellSize, sinr.DefaultNearRadius, sinr.DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	h.SetWorkers(1)
	seqsets := [][]int{
		{5, 3, 250, 9},   // unsorted
		{5, 3, 250, 9},   // identical unsorted (still no delta)
		{3, 5, 9, 250},   // same set, sorted
		{3, 5, 9, 251},   // small sorted delta
		{251, 9, 5, 3},   // reversed again
		{2, 4, 6, 8, 10}, // disjoint sorted
		{2, 4, 6, 8, 10}, // identical (pure delta no-op)
		{1, 1, 7},        // duplicates: not strictly increasing
		{0, 7, 399},      // sorted again
	}
	for i, tx := range seqsets {
		fresh, err := sinr.NewHierEngine(eu, p, sinr.DefaultCellSize, sinr.DefaultNearRadius, sinr.DefaultTheta)
		if err != nil {
			t.Fatal(err)
		}
		fresh.SetWorkers(1)
		want := append([]sinr.Reception(nil), fresh.Resolve(tx)...)
		diffRec(t, fmt.Sprintf("set %d", i), want, h.Resolve(tx))
	}
}
