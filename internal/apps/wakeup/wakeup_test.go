package wakeup

import (
	"testing"

	"sinrcast/internal/broadcast"
	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
)

func genNet(t testing.TB, n int, seed uint64) *network.Network {
	t.Helper()
	net, err := netgen.Uniform(netgen.Config{Params: sinr.DefaultParams(), Seed: seed}, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func cfgFor(net *network.Network) broadcast.Config {
	return broadcast.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps)
}

func TestScheduleValidate(t *testing.T) {
	tests := []struct {
		name    string
		wake    []int
		n       int
		wantErr bool
	}{
		{"ok single", []int{0, -1, -1}, 3, false},
		{"ok multiple", []int{5, -1, 3}, 3, false},
		{"wrong length", []int{0}, 3, true},
		{"invalid entry", []int{-2, 0, 0}, 3, true},
		{"nobody wakes", []int{-1, -1, -1}, 3, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Schedule{WakeAt: tt.wake}.Validate(tt.n)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestFirstWake(t *testing.T) {
	s := Schedule{WakeAt: []int{-1, 7, 3, -1, 12}}
	if got := s.FirstWake(); got != 3 {
		t.Fatalf("FirstWake = %d, want 3", got)
	}
	if got := (Schedule{WakeAt: []int{-1}}).FirstWake(); got != -1 {
		t.Fatalf("FirstWake empty = %d", got)
	}
}

func TestSingleSpontaneousWake(t *testing.T) {
	net := genNet(t, 48, 3)
	wake := make([]int, net.N())
	for i := range wake {
		wake[i] = -1
	}
	wake[0] = 0
	res, err := Run(net, cfgFor(net), 7, Schedule{WakeAt: wake})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake {
		t.Fatalf("not all awake, span %d", res.Span)
	}
	if res.AwakeTime[0] != 0 {
		t.Fatalf("spontaneous station woke at %d", res.AwakeTime[0])
	}
	if res.Span <= 0 {
		t.Fatalf("span = %d", res.Span)
	}
}

func TestStaggeredAdversarialWakes(t *testing.T) {
	net := genNet(t, 48, 5)
	cfg := cfgFor(net)
	wake := make([]int, net.N())
	for i := range wake {
		wake[i] = -1
	}
	// Three staggered spontaneous wake-ups, the first mid-phase.
	wake[0] = cfg.PhaseLen() / 2
	wake[10] = cfg.PhaseLen()
	wake[20] = 2 * cfg.PhaseLen()
	res, err := Run(net, cfg, 11, Schedule{WakeAt: wake})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake {
		t.Fatalf("not all awake, span %d", res.Span)
	}
	// No station can be awake before the first spontaneous wake.
	first := Schedule{WakeAt: wake}.FirstWake()
	for i, at := range res.AwakeTime {
		if at < first {
			t.Fatalf("station %d awake at %d before first wake %d", i, at, first)
		}
	}
}

func TestLateWakeStillWorks(t *testing.T) {
	// A spontaneous wake far into the timeline: span must still be
	// bounded (time counted from the wake, not absolute).
	net := genNet(t, 32, 9)
	cfg := cfgFor(net)
	wake := make([]int, net.N())
	for i := range wake {
		wake[i] = -1
	}
	wake[5] = 3 * cfg.PhaseLen()
	res, err := Run(net, cfg, 13, Schedule{WakeAt: wake})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake {
		t.Fatalf("not all awake, span %d", res.Span)
	}
	baseline := make([]int, net.N())
	for i := range baseline {
		baseline[i] = -1
	}
	baseline[5] = 0
	res0, err := Run(net, cfg, 13, Schedule{WakeAt: baseline})
	if err != nil {
		t.Fatal(err)
	}
	if !res0.AllAwake {
		t.Fatal("baseline wake incomplete")
	}
	// The late wake costs at most ~2 extra phases relative to waking at
	// round 0 (phase alignment slack).
	if res.Span > res0.Span+2*cfg.PhaseLen() {
		t.Fatalf("late-wake span %d far exceeds baseline %d", res.Span, res0.Span)
	}
}

func TestRunRejectsBadSchedule(t *testing.T) {
	net := genNet(t, 16, 1)
	if _, err := Run(net, cfgFor(net), 1, Schedule{WakeAt: []int{0}}); err == nil {
		t.Fatal("want error for truncated schedule")
	}
}

func TestEveryoneWakesSimultaneously(t *testing.T) {
	net := genNet(t, 32, 15)
	wake := make([]int, net.N())
	res, err := Run(net, cfgFor(net), 3, Schedule{WakeAt: wake})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake {
		t.Fatal("all-spontaneous run incomplete")
	}
	if res.Span != 1 {
		t.Fatalf("span = %d, want 1 (everyone awake in round 0)", res.Span)
	}
}
