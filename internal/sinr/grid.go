package sinr

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
)

// GridEngine resolves rounds approximately for Euclidean networks: the
// plane is bucketed into cells of side cellSize; interference from cells
// farther than nearRadius is approximated by the cell's aggregate power
// placed at its center. Near-field interference (and the decoding
// candidate) stay exact, so approximation error only perturbs the far
// tail, which decays as d^-α with α > 2.
//
// Use for large-n scaling benches; the exact Engine remains the default
// everywhere correctness matters. TestGridEngineAgreement measures the
// disagreement rate against the exact engine.
type GridEngine struct {
	params   Params
	pts      []geom.Point
	cellSize float64
	nearR2   float64

	cols, rows int
	minX, minY float64
	cellOf     []int32 // station -> cell
	cellStart  []int32 // CSR index of stations per cell
	cellItems  []int32 // station ids sorted by cell
	cellCenter []geom.Point

	// per-round scratch
	cellPower []float64
	txInCell  [][]int32
	isTx      []bool
	liveCells []int32
}

// NewGridEngine builds a grid engine over Euclidean points. cellSize is
// the bucket side; nearRadius is the exact-summation radius (transmitters
// within nearRadius of a receiver are summed exactly).
func NewGridEngine(eu *geom.Euclidean, p Params, cellSize, nearRadius float64) (*GridEngine, error) {
	if err := p.Validate(eu.Growth()); err != nil {
		return nil, err
	}
	if cellSize <= 0 || nearRadius <= 0 {
		return nil, fmt.Errorf("sinr: cellSize %v and nearRadius %v must be positive", cellSize, nearRadius)
	}
	pts := eu.Pts
	n := len(pts)
	if n == 0 {
		return nil, fmt.Errorf("sinr: empty point set")
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, q := range pts {
		minX = math.Min(minX, q.X)
		minY = math.Min(minY, q.Y)
		maxX = math.Max(maxX, q.X)
		maxY = math.Max(maxY, q.Y)
	}
	cols := int((maxX-minX)/cellSize) + 1
	rows := int((maxY-minY)/cellSize) + 1
	g := &GridEngine{
		params:   p,
		pts:      pts,
		cellSize: cellSize,
		nearR2:   nearRadius * nearRadius,
		cols:     cols, rows: rows,
		minX: minX, minY: minY,
		cellOf:    make([]int32, n),
		cellPower: make([]float64, cols*rows),
		txInCell:  make([][]int32, cols*rows),
		isTx:      make([]bool, n),
	}
	counts := make([]int32, cols*rows+1)
	for i, q := range pts {
		c := g.cellIndex(q)
		g.cellOf[i] = int32(c)
		counts[c+1]++
	}
	for c := 1; c <= cols*rows; c++ {
		counts[c] += counts[c-1]
	}
	g.cellStart = counts
	g.cellItems = make([]int32, n)
	fill := make([]int32, cols*rows)
	for i := range pts {
		c := g.cellOf[i]
		g.cellItems[g.cellStart[c]+fill[c]] = int32(i)
		fill[c]++
	}
	g.cellCenter = make([]geom.Point, cols*rows)
	for c := range g.cellCenter {
		cx := c % cols
		cy := c / cols
		g.cellCenter[c] = geom.Point{
			X: minX + (float64(cx)+0.5)*cellSize,
			Y: minY + (float64(cy)+0.5)*cellSize,
		}
	}
	return g, nil
}

func (g *GridEngine) cellIndex(q geom.Point) int {
	cx := int((q.X - g.minX) / g.cellSize)
	cy := int((q.Y - g.minY) / g.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// N returns the number of stations.
func (g *GridEngine) N() int { return len(g.pts) }

// Params returns the physical parameters.
func (g *GridEngine) Params() Params { return g.params }

// Resolve computes receptions for one round (see Engine.Resolve for
// semantics). Far-field interference is approximated per cell.
func (g *GridEngine) Resolve(tx []int) []Reception {
	if len(tx) == 0 {
		return nil
	}
	p := g.params
	pw := p.Power()
	alphaHalf := p.Alpha / 2

	// Aggregate transmitters by cell.
	for _, t := range tx {
		g.isTx[t] = true
		c := g.cellOf[t]
		if g.cellPower[c] == 0 && len(g.txInCell[c]) == 0 {
			g.liveCells = append(g.liveCells, c)
		}
		g.cellPower[c] += pw
		g.txInCell[c] = append(g.txInCell[c], int32(t))
	}

	var out []Reception
	// The exact near region must cover all cells intersecting the
	// nearRadius ball; padding by one cell diagonal is enough.
	nearCells := int(math.Ceil(math.Sqrt(g.nearR2)/g.cellSize)) + 1

	for u := range g.pts {
		if g.isTx[u] {
			continue
		}
		up := g.pts[u]
		ucx := int((up.X - g.minX) / g.cellSize)
		ucy := int((up.Y - g.minY) / g.cellSize)
		total := 0.0
		bestD2 := math.Inf(1)
		best := int32(-1)
		// Far field: aggregate cell powers.
		for _, c := range g.liveCells {
			cx := int(c) % g.cols
			cy := int(c) / g.cols
			if abs(cx-ucx) <= nearCells && abs(cy-ucy) <= nearCells {
				continue // handled exactly below
			}
			ctr := g.cellCenter[c]
			dx, dy := up.X-ctr.X, up.Y-ctr.Y
			d2 := dx*dx + dy*dy
			total += g.cellPower[c] * math.Pow(d2, -alphaHalf)
		}
		// Near field: exact per-transmitter sums.
		for cy := ucy - nearCells; cy <= ucy+nearCells; cy++ {
			if cy < 0 || cy >= g.rows {
				continue
			}
			for cx := ucx - nearCells; cx <= ucx+nearCells; cx++ {
				if cx < 0 || cx >= g.cols {
					continue
				}
				c := cy*g.cols + cx
				for _, t := range g.txInCell[c] {
					tp := g.pts[t]
					dx, dy := up.X-tp.X, up.Y-tp.Y
					d2 := dx*dx + dy*dy
					total += pw * math.Pow(d2, -alphaHalf)
					if d2 < bestD2 {
						bestD2 = d2
						best = t
					}
				}
			}
		}
		if best < 0 || bestD2 > 1 {
			continue
		}
		s := pw * math.Pow(bestD2, -alphaHalf)
		intf := total - s
		if intf < 0 {
			intf = 0
		}
		if p.Decodes(s, intf) {
			out = append(out, Reception{Receiver: u, Transmitter: int(best)})
		}
	}

	// Reset scratch.
	for _, c := range g.liveCells {
		g.cellPower[c] = 0
		g.txInCell[c] = g.txInCell[c][:0]
	}
	g.liveCells = g.liveCells[:0]
	for _, t := range tx {
		g.isTx[t] = false
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
