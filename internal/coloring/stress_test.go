package coloring

import (
	"testing"

	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
)

// TestStressDense verifies that in genuinely dense deployments the
// switch-off mechanism engages and keeps Lemma 1 bounded while Lemma 2
// retains a constant fraction of 2·pmax.
func TestStressDense(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	cfg := netgen.Config{Params: sinr.DefaultParams(), Seed: 5}
	dense, err := netgen.Uniform(cfg, 384, 60)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := netgen.ExponentialChain(cfg, 192, 0.5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for name, net := range map[string]*network.Network{
		"dense384": dense,
		"chain192": chain,
	} {
		par := DefaultParams(net.N(), net.Space.Growth(), net.Params.Eps)
		res, err := Run(net, par, 11)
		if err != nil {
			t.Fatal(err)
		}
		l1 := CheckLemma1(net, res.Colors)
		l2 := CheckLemma2(net, res.Colors)
		quit := 0
		for _, ph := range res.QuitPhase {
			if ph >= 0 {
				quit++
			}
		}
		t.Logf("%-9s n=%d rounds=%d quits=%d L1max=%.3f L2min=%.5f (2pmax=%.5f)",
			name, net.N(), res.Rounds, quit, l1.MaxMass, l2.MinBestMass, par.FinalColor())
		if l1.MaxMass > 1.0 {
			t.Errorf("%s: Lemma 1 mass %.3f exceeds 1.0", name, l1.MaxMass)
		}
		if l2.MinBestMass < par.FinalColor()/8 {
			t.Errorf("%s: Lemma 2 mass %.5f below 2pmax/8", name, l2.MinBestMass)
		}
	}
}
