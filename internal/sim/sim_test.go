package sim

import (
	"strings"
	"testing"

	"sinrcast/internal/geom"
	"sinrcast/internal/sinr"
)

// beaconProto transmits every round with a fixed payload; used to drive
// the engine deterministically.
type beaconProto struct {
	every   int // transmit when t % every == 0 (0 = never)
	payload int64
	got     []Message
}

func (b *beaconProto) Tick(t int) (bool, Message) {
	if b.every > 0 && t%b.every == 0 {
		return true, Message{Kind: 1, A: b.payload}
	}
	return false, Message{}
}

func (b *beaconProto) Recv(_ int, m Message) { b.got = append(b.got, m) }

func twoStationEngine(t *testing.T, protos []Protocol) *Engine {
	t.Helper()
	phys, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(phys, protos)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineMismatchedProtocols(t *testing.T) {
	phys, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(phys, nil); err == nil {
		t.Fatal("want error for protocol count mismatch")
	}
}

func TestDeliveryAndMetadata(t *testing.T) {
	a := &beaconProto{every: 1, payload: 42}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	if got := e.Step(); got != 1 {
		t.Fatalf("Step receptions = %d, want 1", got)
	}
	if len(b.got) != 1 {
		t.Fatalf("station 1 received %d messages", len(b.got))
	}
	m := b.got[0]
	if m.Src != 0 || m.Round != 0 || m.Kind != 1 || m.A != 42 {
		t.Fatalf("message metadata wrong: %+v", m)
	}
	if len(a.got) != 0 {
		t.Fatal("transmitter must not receive")
	}
}

func TestRoundCounterAdvances(t *testing.T) {
	a := &beaconProto{every: 2, payload: 7}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if e.Round() != 5 {
		t.Fatalf("Round = %d, want 5", e.Round())
	}
	// Transmissions in rounds 0, 2, 4.
	if len(b.got) != 3 {
		t.Fatalf("got %d deliveries, want 3", len(b.got))
	}
	if b.got[1].Round != 2 {
		t.Fatalf("second delivery round = %d, want 2", b.got[1].Round)
	}
}

func TestMetrics(t *testing.T) {
	a := &beaconProto{every: 2, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	e.Run(6, nil)
	m := e.Metrics
	if m.Rounds != 6 {
		t.Fatalf("Rounds = %d", m.Rounds)
	}
	if m.Transmissions != 3 {
		t.Fatalf("Transmissions = %d", m.Transmissions)
	}
	if m.Receptions != 3 {
		t.Fatalf("Receptions = %d", m.Receptions)
	}
	if m.BusyRounds != 3 {
		t.Fatalf("BusyRounds = %d", m.BusyRounds)
	}
}

func TestRunStopCondition(t *testing.T) {
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	rounds, stopped := e.Run(100, func() bool { return len(b.got) >= 3 })
	if !stopped {
		t.Fatal("stop did not fire")
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rounds)
	}
	// Run with nil stop runs exactly maxRounds.
	rounds, stopped = e.Run(4, nil)
	if rounds != 4 || stopped {
		t.Fatalf("nil-stop run = (%d,%v)", rounds, stopped)
	}
}

func TestRunResumesGlobalClock(t *testing.T) {
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	e.Run(3, nil)
	e.Run(2, nil)
	if e.Round() != 5 {
		t.Fatalf("global clock = %d, want 5", e.Round())
	}
	if b.got[4].Round != 4 {
		t.Fatalf("delivery round = %d, want 4", b.got[4].Round)
	}
}

func TestCountingTracer(t *testing.T) {
	a := &beaconProto{every: 2, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	var ct CountingTracer
	e.SetTracer(&ct)
	e.Run(4, nil)
	wantTx := []int{1, 0, 1, 0}
	for i, w := range wantTx {
		if ct.TxPerRound[i] != w {
			t.Fatalf("TxPerRound = %v, want %v", ct.TxPerRound, wantTx)
		}
	}
	if ct.RecPerRound[0] != 1 || ct.RecPerRound[1] != 0 {
		t.Fatalf("RecPerRound = %v", ct.RecPerRound)
	}
}

func TestWriterTracer(t *testing.T) {
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	var sb strings.Builder
	e.SetTracer(&WriterTracer{W: &sb})
	e.Run(2, nil)
	out := sb.String()
	if !strings.Contains(out, "round") || !strings.Contains(out, "1<-0") {
		t.Fatalf("unexpected trace output:\n%s", out)
	}
}

func TestWriterTracerEvery(t *testing.T) {
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	var sb strings.Builder
	e.SetTracer(&WriterTracer{W: &sb, Every: 2})
	e.Run(4, nil)
	if got := strings.Count(sb.String(), "round"); got != 2 {
		t.Fatalf("Every=2 logged %d rounds, want 2", got)
	}
}

func TestMultiTracer(t *testing.T) {
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e := twoStationEngine(t, []Protocol{a, b})
	var c1, c2 CountingTracer
	e.SetTracer(MultiTracer{&c1, &c2})
	e.Run(3, nil)
	if len(c1.TxPerRound) != 3 || len(c2.TxPerRound) != 3 {
		t.Fatal("MultiTracer did not fan out")
	}
}

// fullOnlyResolver wraps an engine hiding its ResolveFor, to exercise
// the fallback path of the receiver-activity hook.
type fullOnlyResolver struct{ inner *sinr.Engine }

func (f fullOnlyResolver) Resolve(tx []int) []sinr.Reception { return f.inner.Resolve(tx) }
func (f fullOnlyResolver) N() int                            { return f.inner.N() }

func TestSetReceiverActiveSkipsInactive(t *testing.T) {
	// Station 0 beacons every round; stations 1 and 2 listen in range.
	mk := func() ([]*beaconProto, *Engine) {
		phys, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{
			{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: -0.5, Y: 0},
		}), sinr.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		protos := []*beaconProto{{every: 1, payload: 9}, {}, {}}
		e, err := NewEngine(phys, []Protocol{protos[0], protos[1], protos[2]})
		if err != nil {
			t.Fatal(err)
		}
		return protos, e
	}

	protos, e := mk()
	e.SetReceiverActive(2, false)
	e.Run(3, nil)
	if len(protos[1].got) != 3 {
		t.Fatalf("active station received %d messages, want 3", len(protos[1].got))
	}
	if len(protos[2].got) != 0 {
		t.Fatalf("inactive station received %d messages, want 0", len(protos[2].got))
	}
	if e.Metrics.Receptions != 3 {
		t.Fatalf("Receptions = %d, want 3 (active only)", e.Metrics.Receptions)
	}

	// Reactivation restores delivery; deliveries to the active station
	// are identical throughout (the ResolveFor contract).
	e.SetReceiverActive(2, true)
	e.Run(2, nil)
	if len(protos[2].got) != 2 {
		t.Fatalf("reactivated station received %d messages, want 2", len(protos[2].got))
	}

	// Idempotent flips must not corrupt the inactive count.
	e.SetReceiverActive(2, false)
	e.SetReceiverActive(2, false)
	e.SetReceiverActive(2, true)
	e.Run(1, nil)
	if len(protos[2].got) != 3 {
		t.Fatalf("after idempotent flips station 2 got %d, want 3", len(protos[2].got))
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("want panic for out-of-range station")
			}
		}()
		e.SetReceiverActive(99, false)
	}()
}

func TestSetReceiverActiveFallbackWithoutSubsetResolver(t *testing.T) {
	// A resolver without ResolveFor resolves in full; the flag is
	// recorded but receptions still reach "inactive" stations — which is
	// why callers may only deactivate stations whose Recv is a no-op.
	inner, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{
		{X: 0, Y: 0}, {X: 0.5, Y: 0},
	}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{}
	e, err := NewEngine(fullOnlyResolver{inner}, []Protocol{a, b})
	if err != nil {
		t.Fatal(err)
	}
	e.SetReceiverActive(1, false)
	e.Run(2, nil)
	if len(b.got) != 2 {
		t.Fatalf("fallback delivered %d messages, want 2 (full resolution)", len(b.got))
	}
}

func TestCollisionNoDelivery(t *testing.T) {
	// Both stations transmit every round: no one ever listens, so no
	// receptions and metrics reflect pure contention.
	a := &beaconProto{every: 1, payload: 1}
	b := &beaconProto{every: 1, payload: 2}
	e := twoStationEngine(t, []Protocol{a, b})
	e.Run(5, nil)
	if e.Metrics.Receptions != 0 {
		t.Fatalf("Receptions = %d, want 0", e.Metrics.Receptions)
	}
	if e.Metrics.Transmissions != 10 {
		t.Fatalf("Transmissions = %d, want 10", e.Metrics.Transmissions)
	}
}
