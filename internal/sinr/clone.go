package sinr

// Engine cloning: every engine in this package splits into an immutable
// topology half (positions, kernels, cell CSR, block structure — see
// engineTopo, gridTopo, hierTopo) and a mutable per-run half (scratch,
// pyramid aggregates, caches, runner). Clone shares the former and
// allocates the latter, so getting a second engine over the same
// deployment costs allocations only — no bounding-box scan, no cell
// assignment, no CSR counting sorts. Experiment drivers use this to pay
// one topology construction per data point instead of one per trial;
// see internal/exp's engine pool.

// CloneResolver clones r when it is one of this package's engines,
// sharing its immutable topology. It returns (nil, false) for anything
// else — in particular the wrapper channels (FadingEngine,
// WeakDeviceEngine), which own RNG or filter state that must stay
// per-trial, and foreign resolvers this package knows nothing about.
// Callers fall back to a fresh construction in that case.
func CloneResolver(r any) (Resolver, bool) {
	switch e := r.(type) {
	case *Engine:
		return e.Clone(), true
	case *GridEngine:
		return e.Clone(), true
	case *HierEngine:
		return e.Clone(), true
	}
	return nil, false
}

// Cloneable reports whether CloneResolver would succeed on r, without
// paying for the clone.
func Cloneable(r any) bool {
	switch r.(type) {
	case *Engine, *GridEngine, *HierEngine:
		return true
	}
	return false
}
