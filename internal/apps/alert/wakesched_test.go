package alert

import (
	"reflect"
	"testing"

	"sinrcast/internal/sim"
)

// TestAlertWakeSchedulingByteIdentical covers both alert cases under
// the wake-scheduling contract. The negative case is the extreme one:
// with nobody alerted, the whole flood window runs without a single
// Tick — and must still produce the identical (all-silent) Result.
func TestAlertWakeSchedulingByteIdentical(t *testing.T) {
	net := genNet(t, 32, 6)
	for _, tc := range []struct {
		name   string
		raised func(i int) bool
	}{
		{"positive", func(i int) bool { return i == 5 }},
		{"negative", func(int) bool { return false }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raised := make([]bool, net.N())
			for i := range raised {
				raised[i] = tc.raised(i)
			}
			run := func() *Result {
				res, err := Run(net, cfgFor(net), 13, raised)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			prev := sim.SetWakeSchedulingDefault(false)
			ref := run()
			sim.SetWakeSchedulingDefault(true)
			sched := run()
			sim.SetWakeSchedulingDefault(prev)
			if !reflect.DeepEqual(ref, sched) {
				t.Fatalf("alert diverges under wake scheduling:\nref   %+v\nsched %+v", ref, sched)
			}
		})
	}
}
