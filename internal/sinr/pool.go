package sinr

import (
	"runtime"

	"sinrcast/internal/sinr/sched"
)

// parallelCrossover is the default receiver count below which Resolve
// stays serial even when workers are available: a round costs
// O(n·|tx|) float ops, and below ~1k receivers the few microseconds of
// chunk dispatch outweigh the parallel win. Engines expose the knob via
// their minParallelN field so tests can force the parallel path on
// tiny instances.
const parallelCrossover = 1024

// defaultChunkReceivers is the target receiver count per work chunk on
// the range and list paths. Chunks are the unit of stealing: small
// enough that several per worker exist (imbalance can rebalance),
// large enough that the per-chunk claim CAS and output slot are noise
// against the receiver math. The hier engine's block path ignores this
// and chunks at its natural 16×16-cell receiver-block granularity.
const defaultChunkReceivers = 1024

// resolveWorkers normalizes a Workers setting: values ≤ 0 select
// runtime.GOMAXPROCS(0).
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// chunkSlot is one chunk's private output buffer. The trailing pad
// keeps neighboring slice headers on distinct cache lines: two workers
// appending to adjacent chunks would otherwise false-share the line
// holding both headers and ping it between cores on every append.
type chunkSlot struct {
	out []Reception
	_   [40]byte // slice header (24 B on 64-bit) padded to a 64 B line
}

// chunkRunner owns the parallel-resolve machinery shared by the
// engines: the lazy sched.Runner (worker goroutines, owner-affine
// queues, stealing, optional pinning), its GC teardown registration,
// and the per-chunk output slots that make the ordered merge
// deterministic. hiWater remembers the largest per-chunk reception
// count ever merged, so fresh slots — whether from a bigger round or
// a rebuilt runner — are presized instead of rediscovering the round's
// decode volume through repeated append growth.
//
// Unlike the old one-shard-per-worker pool, slots are keyed by chunk,
// not by worker: a runner rebuild (worker-count or pinning change)
// keeps every slot, so mid-sequence reconfiguration never reallocates
// or invalidates output buffers.
type chunkRunner struct {
	run     *sched.Runner
	cleanup runtime.Cleanup
	slots   []chunkSlot
	owners  []int32
	nChunks int
	hiWater int
	// chunkTarget overrides defaultChunkReceivers when positive; tests
	// set it to 1 to force a steal storm (every receiver its own chunk).
	chunkTarget int
}

// ensureRunner (re)builds r's scheduler for the given worker count and
// pinning mode. owner is the engine whose unreachability tears the
// runner down; between rounds the runner holds no reference back to it
// (sched.Runner.Run clears fn), so the cleanup can actually fire.
// Replacing an existing runner stops its cleanup before closing it, so
// the workers are never closed twice.
func ensureRunner[T any](r *chunkRunner, owner *T, workers int, pinned bool) {
	if r.run != nil && r.run.Workers() == workers && r.run.Pinned() == pinned {
		return
	}
	if r.run != nil {
		r.cleanup.Stop()
		r.run.Close()
	}
	r.run = sched.New(workers, pinned)
	r.cleanup = runtime.AddCleanup(owner, func(s *sched.Runner) { s.Close() }, r.run)
}

// chunkCount cuts n items into chunks: ~chunkTarget items each, at
// least a few per worker so stealing has granularity to work with, and
// never more chunks than items — a round with more workers than
// receivers wakes only as many workers as there are chunks instead of
// dispatching degenerate empty ranges.
func (r *chunkRunner) chunkCount(n, workers int) int {
	target := r.chunkTarget
	if target <= 0 {
		target = defaultChunkReceivers
	}
	c := (n + target - 1) / target
	if c < workers*4 {
		c = workers * 4
	}
	if c > n {
		c = n
	}
	return c
}

// prepare sizes the owner array and output slots for an nChunks-chunk
// round. New slots are presized to the high-water reception count.
func (r *chunkRunner) prepare(nChunks int) {
	r.nChunks = nChunks
	if cap(r.owners) < nChunks {
		r.owners = make([]int32, nChunks)
	}
	r.owners = r.owners[:nChunks]
	if len(r.slots) < nChunks {
		grown := make([]chunkSlot, nChunks)
		copy(grown, r.slots)
		if r.hiWater > 0 {
			for i := len(r.slots); i < nChunks; i++ {
				grown[i].out = make([]Reception, 0, r.hiWater)
			}
		}
		r.slots = grown
	}
}

// chunkRange returns the half-open item range of one chunk over n
// items for the current round's chunk count.
func (r *chunkRunner) chunkRange(chunk, n int) (lo, hi int) {
	return chunk * n / r.nChunks, (chunk + 1) * n / r.nChunks
}

// merge returns out (reused) with the per-chunk receptions appended in
// chunk — that is, ascending item — order. Chunk outputs are written
// by exactly one worker each and the merge order is fixed, so the
// result is byte-identical to serial resolution regardless of which
// worker ran which chunk.
func (r *chunkRunner) merge(out []Reception) []Reception {
	out = out[:0]
	for i := 0; i < r.nChunks; i++ {
		s := r.slots[i].out
		out = append(out, s...)
		if len(s) > r.hiWater {
			r.hiWater = len(s)
		}
	}
	return out
}

// runRange chunks n items into contiguous ranges with proportional
// contiguous owners (chunk c → worker c·W/chunks — stable across
// rounds for fixed n, so each worker keeps revisiting the same
// receiver ranges), executes fn for every chunk, and merges.
func (r *chunkRunner) runRange(n, workers int, fn func(chunk, worker int), out []Reception) []Reception {
	r.prepare(r.chunkCount(n, workers))
	for c := 0; c < r.nChunks; c++ {
		r.owners[c] = int32(c * workers / r.nChunks)
	}
	r.run.Run(r.owners, fn)
	return r.merge(out)
}

// runOwned executes a round whose chunk count and owners the caller
// prepared directly (r.prepare + r.owners), then merges. The hier
// engine uses it for the block path, where chunks are receiver blocks
// and owners derive from stable block ids.
func (r *chunkRunner) runOwned(fn func(chunk, worker int), out []Reception) []Reception {
	r.run.Run(r.owners, fn)
	return r.merge(out)
}
