// Package sim runs synchronous-round simulations of distributed wireless
// protocols under the SINR model (§1.1): in each round every station
// either transmits or listens, the physical engine resolves receptions,
// and messages are delivered. Stations interact with the world only
// through the Protocol interface — they never see the network, other
// stations' state, or positions, which keeps the "ad hoc, no GPS,
// no carrier sensing" contract of the paper honest by construction.
package sim

import (
	"fmt"

	"sinrcast/internal/sinr"
)

// Message is what a station puts on the air. The paper allows the
// broadcast message plus O(log n) extra bits (§1.1); Kind/A/B are that
// O(log n) annotation, and Round carries the global round counter used
// to synchronize non-spontaneously woken stations.
type Message struct {
	// Src is the transmitting station (filled by the engine).
	Src int
	// Round is the global round number at transmission (filled by the
	// engine; protocols read it to synchronize).
	Round int
	// Kind tags the protocol-level message type.
	Kind uint8
	// A and B are protocol-defined payload fields.
	A, B int64
}

// Protocol is the behavior of a single station. Implementations must
// only use their own local state: the engine calls Tick exactly once per
// round per station and Recv for each successful reception.
type Protocol interface {
	// Tick returns the station's action in round t: whether to transmit
	// and, if so, the message. A sleeping station returns (false, _).
	Tick(t int) (transmit bool, msg Message)
	// Recv delivers a successfully decoded message in round t. Recv is
	// called after all Tick calls of round t. A station never receives
	// in a round in which it transmitted.
	Recv(t int, msg Message)
}

// Resolver is the physical layer. *sinr.Engine and *sinr.GridEngine
// both implement it.
type Resolver interface {
	Resolve(tx []int) []sinr.Reception
	N() int
}

var (
	_ Resolver = (*sinr.Engine)(nil)
	_ Resolver = (*sinr.GridEngine)(nil)
)

// Tracer observes rounds; used by tests, stats and the CLIs.
type Tracer interface {
	// OnRound is called at the end of each round with the transmitter
	// set and the receptions. Slices are engine-owned: copy to retain.
	OnRound(t int, tx []int, rec []sinr.Reception)
}

// Metrics accumulates counters over a run.
type Metrics struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Transmissions counts station-rounds spent transmitting.
	Transmissions int64
	// Receptions counts successful deliveries.
	Receptions int64
	// BusyRounds counts rounds with at least one transmitter.
	BusyRounds int
}

// Engine drives one simulation.
type Engine struct {
	phys   Resolver
	protos []Protocol
	tracer Tracer
	msgs   []Message // per-station scratch of this round's messages
	txIDs  []int
	// Metrics of the run so far.
	Metrics Metrics
	// round is the global clock; persists across Run calls so phased
	// protocols can be driven in segments.
	round int
}

// NewEngine pairs a physical resolver with one Protocol per station.
func NewEngine(phys Resolver, protos []Protocol) (*Engine, error) {
	if phys.N() != len(protos) {
		return nil, fmt.Errorf("sim: %d stations but %d protocols", phys.N(), len(protos))
	}
	return &Engine{
		phys:   phys,
		protos: protos,
		msgs:   make([]Message, len(protos)),
		txIDs:  make([]int, 0, len(protos)),
	}, nil
}

// SetTracer installs an observer (nil disables tracing).
func (e *Engine) SetTracer(tr Tracer) { e.tracer = tr }

// Round returns the current global round number (the next round to run).
func (e *Engine) Round() int { return e.round }

// Step executes exactly one round and returns the number of successful
// receptions.
func (e *Engine) Step() int {
	t := e.round
	e.txIDs = e.txIDs[:0]
	for i, p := range e.protos {
		transmit, msg := p.Tick(t)
		if transmit {
			msg.Src = i
			msg.Round = t
			e.msgs[i] = msg
			e.txIDs = append(e.txIDs, i)
		}
	}
	rec := e.phys.Resolve(e.txIDs)
	for _, r := range rec {
		e.protos[r.Receiver].Recv(t, e.msgs[r.Transmitter])
	}
	if e.tracer != nil {
		e.tracer.OnRound(t, e.txIDs, rec)
	}
	e.Metrics.Rounds++
	e.Metrics.Transmissions += int64(len(e.txIDs))
	e.Metrics.Receptions += int64(len(rec))
	if len(e.txIDs) > 0 {
		e.Metrics.BusyRounds++
	}
	e.round++
	return len(rec)
}

// Run executes rounds until stop returns true (checked before each
// round) or maxRounds rounds have run in this call. It returns the
// number of rounds executed by this call and whether stop fired.
func (e *Engine) Run(maxRounds int, stop func() bool) (rounds int, stopped bool) {
	for rounds < maxRounds {
		if stop != nil && stop() {
			return rounds, true
		}
		e.Step()
		rounds++
	}
	return rounds, stop != nil && stop()
}
