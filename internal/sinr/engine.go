package sinr

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
)

// Reception describes the outcome at one receiver in one round.
type Reception struct {
	// Receiver is the station index hearing the message.
	Receiver int
	// Transmitter is the station index whose message was decoded.
	Transmitter int
}

// Engine resolves rounds of the SINR model exactly: for every listening
// station it sums interference over all transmitters and applies Eq. (1).
// With uniform power the strongest (closest) transmitter is the only
// decoding candidate, so at most one message is delivered per receiver
// per round.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	params Params
	space  geom.Space
	// pts is a fast-path cache of planar positions when the space is
	// Euclidean; nil otherwise.
	pts []geom.Point
	// scratch buffers reused across rounds to stay allocation free.
	sig  []float64 // total received power per station
	best []int32   // index of closest transmitter per station
	bd2  []float64 // squared (Euclidean) or plain distance to best
	isTx []bool
}

// NewEngine builds an engine for the given space and parameters.
func NewEngine(s geom.Space, p Params) (*Engine, error) {
	if err := p.Validate(s.Growth()); err != nil {
		return nil, err
	}
	n := s.Len()
	e := &Engine{
		params: p,
		space:  s,
		sig:    make([]float64, n),
		best:   make([]int32, n),
		bd2:    make([]float64, n),
		isTx:   make([]bool, n),
	}
	if eu, ok := s.(*geom.Euclidean); ok {
		e.pts = eu.Pts
	}
	return e, nil
}

// Params returns the physical parameters the engine was built with.
func (e *Engine) Params() Params { return e.params }

// N returns the number of stations.
func (e *Engine) N() int { return e.space.Len() }

// Resolve computes all successful receptions for one round in which
// exactly the stations listed in tx transmit. The returned slice is
// owned by the engine and valid until the next Resolve call.
//
// Semantics follow §1.1: a transmitting station cannot receive; a
// station decodes its closest transmitter iff the SINR threshold holds.
func (e *Engine) Resolve(tx []int) []Reception {
	if len(tx) == 0 {
		return nil
	}
	n := e.space.Len()
	for _, t := range tx {
		if t < 0 || t >= n {
			panic(fmt.Sprintf("sinr: transmitter %d out of range [0,%d)", t, n))
		}
		e.isTx[t] = true
	}
	var out []Reception
	if e.pts != nil {
		out = e.resolveEuclidean(tx)
	} else {
		out = e.resolveGeneric(tx)
	}
	for _, t := range tx {
		e.isTx[t] = false
	}
	return out
}

// resolveEuclidean is the hot path: flat slices, squared distances, no
// interface calls in the inner loop.
func (e *Engine) resolveEuclidean(tx []int) []Reception {
	n := len(e.pts)
	p := e.params
	alphaHalf := p.Alpha / 2
	pw := p.Power()
	// maxRange2: beyond distance 1 no signal can be decoded even with
	// zero interference, so receivers farther than 1 from their closest
	// transmitter are skipped outright.
	const maxRange2 = 1.0

	for u := 0; u < n; u++ {
		e.sig[u] = 0
		e.best[u] = -1
		e.bd2[u] = math.Inf(1)
	}
	for _, t := range tx {
		tp := e.pts[t]
		for u := 0; u < n; u++ {
			if e.isTx[u] {
				continue
			}
			dx := e.pts[u].X - tp.X
			dy := e.pts[u].Y - tp.Y
			d2 := dx*dx + dy*dy
			// Power with exponent on squared distance: d^-α = (d²)^(-α/2).
			e.sig[u] += pw * math.Pow(d2, -alphaHalf)
			if d2 < e.bd2[u] {
				e.bd2[u] = d2
				e.best[u] = int32(t)
			}
		}
	}
	recv := make([]Reception, 0, 8)
	for u := 0; u < n; u++ {
		if e.isTx[u] || e.best[u] < 0 || e.bd2[u] > maxRange2 {
			continue
		}
		s := pw * math.Pow(e.bd2[u], -alphaHalf)
		intf := e.sig[u] - s
		if intf < 0 {
			intf = 0
		}
		if p.Decodes(s, intf) {
			recv = append(recv, Reception{Receiver: u, Transmitter: int(e.best[u])})
		}
	}
	return recv
}

// resolveGeneric handles arbitrary metric spaces through the interface.
func (e *Engine) resolveGeneric(tx []int) []Reception {
	n := e.space.Len()
	p := e.params
	for u := 0; u < n; u++ {
		e.sig[u] = 0
		e.best[u] = -1
		e.bd2[u] = math.Inf(1)
	}
	for _, t := range tx {
		for u := 0; u < n; u++ {
			if e.isTx[u] {
				continue
			}
			d := e.space.Dist(t, u)
			e.sig[u] += p.Signal(d)
			if d < e.bd2[u] {
				e.bd2[u] = d
				e.best[u] = int32(t)
			}
		}
	}
	recv := make([]Reception, 0, 8)
	for u := 0; u < n; u++ {
		if e.isTx[u] || e.best[u] < 0 || e.bd2[u] > 1 {
			continue
		}
		s := p.Signal(e.bd2[u])
		intf := e.sig[u] - s
		if intf < 0 {
			intf = 0
		}
		if p.Decodes(s, intf) {
			recv = append(recv, Reception{Receiver: u, Transmitter: int(e.best[u])})
		}
	}
	return recv
}

// InterferenceAt returns the total received power at station u from all
// stations in tx (excluding u itself if present). Used by invariant
// checks and tests; not on the hot path.
func (e *Engine) InterferenceAt(u int, tx []int) float64 {
	total := 0.0
	for _, t := range tx {
		if t == u {
			continue
		}
		total += e.params.Signal(e.space.Dist(t, u))
	}
	return total
}

// SINRAt returns the SINR of transmitter v at receiver u against the set
// tx (v need not be a member of tx; it is excluded from interference).
func (e *Engine) SINRAt(v, u int, tx []int) float64 {
	sig := e.params.Signal(e.space.Dist(v, u))
	intf := 0.0
	for _, t := range tx {
		if t == v || t == u {
			continue
		}
		intf += e.params.Signal(e.space.Dist(t, u))
	}
	return sig / (e.params.Noise + intf)
}
