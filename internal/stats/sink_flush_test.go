package stats

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// flushCounter records how many times Flush was called and what had
// been written by then — the observable a streaming HTTP client cares
// about: bytes must be pushed per table, not pooled until Close.
type flushCounter struct {
	buf     bytes.Buffer
	flushes int
	flushed []string // buffer contents at each flush
}

func (f *flushCounter) Write(p []byte) (int, error) { return f.buf.Write(p) }

func (f *flushCounter) Flush() error {
	f.flushes++
	f.flushed = append(f.flushed, f.buf.String())
	return nil
}

// errlessFlusher is the http.Flusher shape: Flush without an error.
type errlessFlusher struct {
	bytes.Buffer
	flushes int
}

func (f *errlessFlusher) Flush() { f.flushes++ }

func flushTable(i int) *Table {
	t := NewTable("t", "a", "b")
	t.AddRow(i, i*2)
	return t
}

// TestSinkFlushPerEmit is the Flusher contract test: every format must
// flush its writer at least once per Emit, with the emitted table's
// bytes already written, and flush trailing syntax on Close.
func TestSinkFlushPerEmit(t *testing.T) {
	for _, format := range SinkFormats() {
		t.Run(format, func(t *testing.T) {
			w := &flushCounter{}
			s, err := NewSink(format, w)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				before := w.flushes
				if err := s.Emit(flushTable(i)); err != nil {
					t.Fatalf("Emit %d: %v", i, err)
				}
				if w.flushes <= before {
					t.Fatalf("Emit %d did not flush (%d flushes before, %d after)", i, before, w.flushes)
				}
				// The emitted table must be visible at flush time, not
				// only after Close: its last row is in the flushed bytes.
				last := w.flushed[len(w.flushed)-1]
				if !strings.Contains(last, flushTable(i).Rows[0][0]) {
					t.Fatalf("Emit %d flushed before writing the table; flushed so far: %q", i, last)
				}
			}
			closeBefore := w.flushes
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if w.flushes <= closeBefore {
				t.Fatalf("Close did not flush trailing syntax")
			}
		})
	}
}

// TestSinkFlushErrlessWriter covers the http.Flusher shape (Flush
// without an error return): it must be invoked too.
func TestSinkFlushErrlessWriter(t *testing.T) {
	for _, format := range SinkFormats() {
		w := &errlessFlusher{}
		s, err := NewSink(format, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Emit(flushTable(0)); err != nil {
			t.Fatal(err)
		}
		if w.flushes == 0 {
			t.Fatalf("%s: error-less Flush() not called on Emit", format)
		}
	}
}

// failingFlusher fails every Flush; the sink must surface the error.
type failingFlusher struct{ bytes.Buffer }

var errFlush = errors.New("flush failed")

func (f *failingFlusher) Flush() error { return errFlush }

func TestSinkFlushErrorSurfaces(t *testing.T) {
	for _, format := range SinkFormats() {
		s, err := NewSink(format, &failingFlusher{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Emit(flushTable(0)); !errors.Is(err, errFlush) {
			t.Fatalf("%s: Emit error = %v, want %v", format, err, errFlush)
		}
	}
}

// TestSinkCloseErrorSurfaces extends the contract to Close: trailing
// syntax (or the final flush) failing must propagate, not vanish —
// sinrcastd counts these as render errors and a silent nil would
// report a truncated body as success.
func TestSinkCloseErrorSurfaces(t *testing.T) {
	for _, format := range SinkFormats() {
		s, err := NewSink(format, &failingFlusher{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); !errors.Is(err, errFlush) {
			t.Fatalf("%s: Close error = %v, want %v", format, err, errFlush)
		}
	}
}

// failAfterWriter errors on every Write past a byte budget — a client
// connection dying mid-body.
type failAfterWriter struct {
	budget int
	wrote  int
}

var errWrite = errors.New("write failed")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.wrote+len(p) > w.budget {
		return 0, errWrite
	}
	w.wrote += len(p)
	return len(p), nil
}

// TestSinkWriteErrorSurfaces is the write half of the error contract:
// a failing underlying Write must surface through Emit in every
// format, including the csv.Writer's internal buffering.
func TestSinkWriteErrorSurfaces(t *testing.T) {
	for _, format := range SinkFormats() {
		s, err := NewSink(format, &failAfterWriter{budget: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Emit(flushTable(0)); !errors.Is(err, errWrite) {
			t.Fatalf("%s: Emit over a failing writer = %v, want %v", format, err, errWrite)
		}
	}
}

// TestSinkPlainWriterUnchanged pins that writers without a Flush
// method keep working and keep their historical bytes.
func TestSinkPlainWriterUnchanged(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewSink("text", &buf)
	if err != nil {
		t.Fatal(err)
	}
	tb := flushTable(1)
	if err := s.Emit(tb); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), tb.String()+"\n"; got != want {
		t.Fatalf("text sink output changed: got %q want %q", got, want)
	}
}
