// Package broadcast implements the paper's two broadcast algorithms
// (§4): NoSBroadcast for the non-spontaneous wake-up model (Theorem 1,
// O(D·log² n) rounds) and SBroadcast for the spontaneous model
// (Theorem 2, O(D·log n + log² n) rounds). Both build on the coloring of
// §3: colors double as transmission probabilities in the dissemination
// part, scaled by Θ(cε / log n) exactly as in Fact 11.
package broadcast

import (
	"errors"
	"fmt"
	"math"

	"sinrcast/internal/coloring"
	"sinrcast/internal/network"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// Message kinds used by the broadcast protocols. Every message — also
// the coloring-phase ones — carries the source payload, so any
// successful reception informs the receiver (§4.1: a node participates
// in a phase if it knows the message at the phase start).
const (
	// KindColoring tags StabilizeProbability traffic.
	KindColoring uint8 = 1
	// KindData tags dissemination traffic.
	KindData uint8 = 2
)

// Config parametrizes both broadcast algorithms.
type Config struct {
	// Coloring is the StabilizeProbability schedule (§3).
	Coloring coloring.Params
	// TxRounds sizes the dissemination part: NoSBroadcast part 2 lasts
	// ceil(TxRounds·lg² n) rounds per phase.
	TxRounds float64
	// CProb is the dissemination probability divisor: an informed
	// station of color p transmits with probability
	// min(MaxTxProb, p·cε/(CProb·lg n)) per round (Fact 11's schedule).
	CProb float64
	// MaxTxProb caps per-round transmission probability.
	MaxTxProb float64
	// MaxRounds bounds the simulation; 0 picks a generous default from
	// the network diameter.
	MaxRounds int
	// Channel optionally overrides the physical layer (e.g. a fading or
	// weak-device engine for model-robustness experiments). nil uses
	// the exact SINR engine, which is the paper's model.
	Channel func(net *network.Network) (sim.Resolver, error)
}

// DefaultConfig returns a calibrated configuration for a network of n
// stations in a metric of growth degree gamma with connectivity eps.
func DefaultConfig(n int, gamma, eps float64) Config {
	return Config{
		Coloring:  coloring.DefaultParams(n, gamma, eps),
		TxRounds:  2,
		CProb:     6,
		MaxTxProb: 0.9,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	var errs []error
	if err := c.Coloring.Validate(); err != nil {
		errs = append(errs, err)
	}
	if c.TxRounds <= 0 {
		errs = append(errs, fmt.Errorf("broadcast: TxRounds %v must be > 0", c.TxRounds))
	}
	if c.CProb <= 0 {
		errs = append(errs, fmt.Errorf("broadcast: CProb %v must be > 0", c.CProb))
	}
	if c.MaxTxProb <= 0 || c.MaxTxProb > 1 {
		errs = append(errs, fmt.Errorf("broadcast: MaxTxProb %v must be in (0,1]", c.MaxTxProb))
	}
	if c.MaxRounds < 0 {
		errs = append(errs, fmt.Errorf("broadcast: MaxRounds %v must be >= 0", c.MaxRounds))
	}
	return errors.Join(errs...)
}

// lg returns log2(N) clamped below at 1.
func (c Config) lg() float64 {
	l := math.Log2(float64(c.Coloring.N))
	if l < 1 {
		l = 1
	}
	return l
}

// TxLen returns the dissemination-part length in rounds: Θ(log² n).
func (c Config) TxLen() int { return int(math.Ceil(c.TxRounds * c.lg() * c.lg())) }

// PhaseLen returns the NoSBroadcast phase length: coloring + part 2.
func (c Config) PhaseLen() int { return c.Coloring.TotalRounds() + c.TxLen() }

// TxProb converts a color into the dissemination transmission
// probability of Fact 11: p·cε/(CProb·lg n), capped at MaxTxProb.
func (c Config) TxProb(color float64) float64 {
	p := color * c.Coloring.CEps / (c.CProb * c.lg())
	if p > c.MaxTxProb {
		p = c.MaxTxProb
	}
	return p
}

// Result reports a broadcast execution.
type Result struct {
	// Rounds is the round count until the last station was informed
	// (or the budget if not all were informed).
	Rounds int
	// AllInformed reports whether every station got the message.
	AllInformed bool
	// InformTime[i] is the round in which station i first knew the
	// message (0 for the source), or -1 if never.
	InformTime []int
	// Phases is the number of NoSBroadcast phases that ran (0 for
	// algorithms without phases).
	Phases int
	// Metrics are the simulation counters for the whole run.
	Metrics sim.Metrics
}

// Budget returns the round budget RunNoS, RunS and RunNoSMulti will
// simulate at most: cfg.MaxRounds when set, else the generous
// diameter-derived default. Exposed so callers (the protocol registry,
// tests) can scale or bound the budget without re-deriving it.
func Budget(cfg Config, net *network.Network) int { return defaultBudget(cfg, net) }

// defaultBudget returns a generous round budget when cfg.MaxRounds is 0:
// proportional to the (approximate) diameter plus slack phases.
func defaultBudget(cfg Config, net *network.Network) int {
	if cfg.MaxRounds > 0 {
		return cfg.MaxRounds
	}
	d, _ := net.DiameterApprox()
	return cfg.PhaseLen() * (2*d + 10)
}

// channel builds the physical layer: cfg.Channel if set, else the exact
// SINR engine.
func (c Config) channel(net *network.Network) (sim.Resolver, error) {
	if c.Channel != nil {
		return c.Channel(net)
	}
	return sinr.NewEngine(net.Space, net.Params)
}
