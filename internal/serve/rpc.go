package serve

import (
	"encoding/json"
	"net/http"

	"sinrcast/internal/jobs"
)

// JSON-RPC 2.0 transport over POST /rpc — the programmatic twin of the
// REST routes for clients that prefer a single endpoint. Single
// requests only (no batches); notifications (absent id) get no
// response body.
//
// Methods:
//
//	job.submit   params: JobRequest          → {"id","state"}
//	job.status   params: {"id":"j1"}        → statusJSON
//	job.cancel   params: {"id":"j1"}        → statusJSON
//	job.list     params: none                → [statusJSON]
//	cache.stats  params: none                → {"cache","jobs"}
//
// Errors use the spec codes (-32700 parse, -32600 invalid request,
// -32601 method not found, -32602 invalid params) plus two server
// codes: -32001 queue full (backpressure — retry) and -32002 job not
// found.
const (
	rpcParseError     = -32700
	rpcInvalidRequest = -32600
	rpcMethodNotFound = -32601
	rpcInvalidParams  = -32602
	rpcQueueFull      = -32001
	rpcNotFound       = -32002
	rpcInternal       = -32000
)

type rpcRequest struct {
	Version string          `json:"jsonrpc"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params,omitempty"`
	ID      json.RawMessage `json:"id,omitempty"`
}

type rpcError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

type rpcResponse struct {
	Version string          `json:"jsonrpc"`
	Result  any             `json:"result,omitempty"`
	Error   *rpcError       `json:"error,omitempty"`
	ID      json.RawMessage `json:"id"`
}

func (s *Server) handleRPC(w http.ResponseWriter, r *http.Request) {
	var req rpcRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		writeRPC(w, rpcResponse{Version: "2.0", ID: nil,
			Error: &rpcError{Code: rpcParseError, Message: "parse error: " + err.Error()}})
		return
	}
	if req.Version != "2.0" || req.Method == "" {
		writeRPC(w, rpcResponse{Version: "2.0", ID: req.ID,
			Error: &rpcError{Code: rpcInvalidRequest, Message: `invalid request (need "jsonrpc":"2.0" and a method)`}})
		return
	}
	result, rerr := s.dispatchRPC(req.Method, req.Params)
	if req.ID == nil {
		w.WriteHeader(http.StatusNoContent) // notification
		return
	}
	resp := rpcResponse{Version: "2.0", ID: req.ID}
	if rerr != nil {
		resp.Error = rerr
	} else {
		resp.Result = result
	}
	writeRPC(w, resp)
}

func writeRPC(w http.ResponseWriter, resp rpcResponse) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

type rpcJobRef struct {
	ID string `json:"id"`
}

func (s *Server) dispatchRPC(method string, params json.RawMessage) (any, *rpcError) {
	switch method {
	case "job.submit":
		var jr JobRequest
		if err := unmarshalParams(params, &jr); err != nil {
			return nil, &rpcError{Code: rpcInvalidParams, Message: err.Error()}
		}
		st, err := s.submit(&jr)
		switch {
		case err == nil:
			state, _ := st.handle.State()
			return map[string]any{"id": st.id, "state": string(state)}, nil
		case isBadRequest(err):
			return nil, &rpcError{Code: rpcInvalidParams, Message: err.Error()}
		case err == jobs.ErrQueueFull:
			return nil, &rpcError{Code: rpcQueueFull, Message: err.Error()}
		default:
			return nil, &rpcError{Code: rpcInternal, Message: err.Error()}
		}
	case "job.status", "job.cancel":
		var ref rpcJobRef
		if err := unmarshalParams(params, &ref); err != nil || ref.ID == "" {
			return nil, &rpcError{Code: rpcInvalidParams, Message: `params must be {"id":"..."}`}
		}
		st, ok := s.state(ref.ID)
		if !ok {
			return nil, &rpcError{Code: rpcNotFound, Message: "no job " + ref.ID}
		}
		if method == "job.cancel" {
			st.handle.Cancel()
		}
		return s.status(st), nil
	case "job.list":
		out := []statusJSON{}
		for _, h := range s.mgr.Jobs() {
			if st, ok := s.state(h.ID()); ok {
				out = append(out, s.status(st))
			}
		}
		return out, nil
	case "cache.stats":
		return map[string]any{"cache": s.cache.Stats(), "jobs": s.mgr.Stats()}, nil
	default:
		return nil, &rpcError{Code: rpcMethodNotFound, Message: "unknown method " + method}
	}
}

func unmarshalParams(params json.RawMessage, v any) error {
	if len(params) == 0 {
		return nil
	}
	return json.Unmarshal(params, v)
}
