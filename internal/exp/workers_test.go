package exp

import (
	"testing"

	"sinrcast/internal/stats"
)

// TestTablesIdenticalAcrossWorkers pins the determinism contract of
// trial concurrency: every experiment table must render bit-identically
// whether trials run serially or on many goroutines, because trial
// seeds depend only on (Seed, experiment, data point, trial).
func TestTablesIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runners := []struct {
		name string
		run  func(Config) (*stats.Table, error)
	}{
		{"E1", E1NoSBroadcastVsD},
		{"E3", E3Lemma1},
		{"E9", E9SuccessProbability},
		{"E11", E11ColoringAblation},
	}
	for _, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			cfg := smallCfg()
			cfg.Trials = 2
			if r.name == "E9" || r.name == "E11" {
				cfg.Trials = 1
			}
			serial := cfg
			serial.Workers = 1
			parallel := cfg
			parallel.Workers = 4
			a, err := r.run(serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := r.run(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatalf("table differs across Workers:\nserial:\n%s\nparallel:\n%s", a, b)
			}
		})
	}
}

func TestWorkersHelper(t *testing.T) {
	if (Config{Workers: 3}).workers() != 3 {
		t.Fatal("explicit Workers not honored")
	}
	if (Config{}).workers() < 1 {
		t.Fatal("default workers must be >= 1")
	}
	if (Config{Workers: -2}).workers() < 1 {
		t.Fatal("negative Workers must fall back to GOMAXPROCS")
	}
}

func TestTrialSeedsDistinct(t *testing.T) {
	c := Config{Seed: 2014}
	seen := map[uint64][3]uint64{}
	for exp := uint64(1); exp <= 11; exp++ {
		for point := uint64(0); point < 40; point++ {
			for trial := 0; trial < 10; trial++ {
				s := c.trialSeed(exp, point, trial)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v -> %d", exp, point, trial, prev, s)
				}
				seen[s] = [3]uint64{exp, point, uint64(trial)}
			}
		}
	}
}
