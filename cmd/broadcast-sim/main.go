// Command broadcast-sim runs one broadcast algorithm on one generated
// network and reports the outcome: rounds, phases, inform-time spread
// and energy (transmission counts). The network comes from a scenario
// spec (see -list for the family catalogue).
//
// Usage:
//
//	broadcast-sim -alg nos   -scenario uniform:n=96
//	broadcast-sim -alg s     -scenario path:n=48
//	broadcast-sim -alg decay -scenario expchain:n=32,ratio=0.6
//	broadcast-sim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"sinrcast/internal/baseline"
	"sinrcast/internal/broadcast"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sinr"
	"sinrcast/internal/stats"
)

func main() {
	var (
		alg    = flag.String("alg", "nos", "nos|s|decay|daum|oracle|tdma")
		spec   = flag.String("scenario", "uniform:n=96", "scenario spec: family[:name=value,...]; see -list")
		seed   = flag.Uint64("seed", 1, "seed for generator and protocol")
		source = flag.Int("source", 0, "source station")
		list   = flag.Bool("list", false, "list registered families with their parameters and exit")
	)
	flag.Parse()

	if *list {
		fmt.Print(scenario.Describe())
		return
	}

	sp, err := scenario.Parse(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "broadcast-sim: %v\n", err)
		os.Exit(2)
	}
	net, err := scenario.Generate(sp, sinr.DefaultParams(), *seed)
	if err != nil {
		fatal(err)
	}
	if *source < 0 || *source >= net.N() {
		fmt.Fprintf(os.Stderr, "broadcast-sim: source %d outside [0,%d)\n", *source, net.N())
		os.Exit(2)
	}

	bcfg := broadcast.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps)
	var res *broadcast.Result
	switch *alg {
	case "nos":
		res, err = broadcast.RunNoS(net, bcfg, *seed, *source, 1)
	case "s":
		res, err = broadcast.RunS(net, bcfg, *seed, *source, 1)
	case "decay":
		res, err = baseline.RunFlood(net, baseline.NewDecay(net.N()), *seed, *source, 0)
	case "daum":
		res, err = baseline.RunFlood(net, baseline.NewDaumStyle(net), *seed, *source, 0)
	case "oracle":
		res, err = baseline.RunFlood(net, baseline.NewDensityOracle(net, 0), *seed, *source, 0)
	case "tdma":
		var pol *baseline.GridTDMA
		pol, err = baseline.NewGridTDMA(net)
		if err == nil {
			res, err = baseline.RunFlood(net, pol, *seed, *source, 0)
		}
	default:
		fmt.Fprintf(os.Stderr, "broadcast-sim: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	d, _ := net.Diameter()
	fmt.Printf("algorithm      %s\n", *alg)
	fmt.Printf("network        %s n=%d D=%d Rs=%.3g\n", sp.String(), net.N(), d, net.Granularity())
	fmt.Printf("all informed   %v\n", res.AllInformed)
	fmt.Printf("rounds         %d\n", res.Rounds)
	if res.Phases > 0 {
		fmt.Printf("phases         %d\n", res.Phases)
	}
	fmt.Printf("transmissions  %d (%.2f per station)\n",
		res.Metrics.Transmissions, float64(res.Metrics.Transmissions)/float64(net.N()))
	fmt.Printf("receptions     %d\n", res.Metrics.Receptions)

	var times []float64
	for _, it := range res.InformTime {
		if it >= 0 {
			times = append(times, float64(it))
		}
	}
	fmt.Printf("inform times   %s\n", stats.FormatSummary(stats.Summarize(times)))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "broadcast-sim: %v\n", err)
	os.Exit(1)
}
