package sinr

import (
	"fmt"
	"math"
	"testing"

	"sinrcast/internal/geom"
	"sinrcast/internal/rng"
)

// receptionMap indexes receptions by receiver.
func receptionMap(rec []Reception) map[int]int {
	m := make(map[int]int, len(rec))
	for _, r := range rec {
		m[r.Receiver] = r.Transmitter
	}
	return m
}

// disagreementRate runs trials rounds on exact vs approx and returns
// (approx-vs-exact disagreements)/(exact receptions).
func disagreementRate(t *testing.T, exact, approx interface {
	Resolve(tx []int) []Reception
}, n int, r *rng.Source, trials int, p float64) float64 {
	t.Helper()
	total, differ := 0, 0
	for trial := 0; trial < trials; trial++ {
		var tx []int
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				tx = append(tx, i)
			}
		}
		am := receptionMap(exact.Resolve(tx))
		bm := receptionMap(approx.Resolve(tx))
		total += len(am)
		for k, v := range am {
			if got, ok := bm[k]; !ok || got != v {
				differ++
			}
		}
		for k := range bm {
			if _, ok := am[k]; !ok {
				differ++
			}
		}
	}
	if total == 0 {
		t.Fatal("no receptions at all; agreement test is vacuous")
	}
	return float64(differ) / float64(total)
}

// TestHierEngineAgreement pins the tentpole accuracy contract: across
// path-loss exponents and deployment shapes, the hierarchical engine's
// disagreement rate against the exact Engine is no worse than the grid
// engine's at the same cell geometry (the center-of-mass pyramid can
// only refine the fixed-center cell approximation), and both stay small
// in absolute terms.
func TestHierEngineAgreement(t *testing.T) {
	type family struct {
		name string
		pts  func(r *rng.Source, n int) []geom.Point
	}
	families := []family{
		{"uniform", func(r *rng.Source, n int) []geom.Point {
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{X: r.Range(0, 14), Y: r.Range(0, 14)}
			}
			return pts
		}},
		{"clustered", func(r *rng.Source, n int) []geom.Point {
			pts := make([]geom.Point, n)
			for i := range pts {
				cx, cy := float64(i%4)*5, float64((i/4)%3)*5
				pts[i] = geom.Point{X: cx + r.Range(0, 1.2), Y: cy + r.Range(0, 1.2)}
			}
			return pts
		}},
		{"strip", func(r *rng.Source, n int) []geom.Point {
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{X: r.Range(0, 60), Y: r.Range(0, 1.5)}
			}
			return pts
		}},
	}
	for _, alpha := range []float64{2, 2.5, 4} {
		for _, f := range families {
			t.Run(fmt.Sprintf("alpha=%g/%s", alpha, f.name), func(t *testing.T) {
				const n = 400
				r := rng.New(uint64(41*alpha) + uint64(len(f.name)))
				eu := geom.NewEuclidean(f.pts(r, n))
				p := DefaultParams()
				exact, err := NewEngine(eu, p)
				if err != nil {
					t.Fatal(err)
				}
				grid, err := NewGridEngine(eu, p, DefaultCellSize, DefaultNearRadius)
				if err != nil {
					t.Fatal(err)
				}
				hier, err := NewHierEngine(eu, p, DefaultCellSize, DefaultNearRadius, DefaultTheta)
				if err != nil {
					t.Fatal(err)
				}
				// α=2 is bench-only on the plane (it fails Validate);
				// swap it in after construction like the benches do.
				setBenchAlpha(&exact.params, &exact.kern, alpha)
				setBenchAlpha(&grid.params, &grid.kern, alpha)
				setBenchAlpha(&hier.params, &hier.kern, alpha)

				rGrid := disagreementRate(t, exact, grid, n, rng.New(7), 60, 0.05)
				rHier := disagreementRate(t, exact, hier, n, rng.New(7), 60, 0.05)
				t.Logf("disagreement vs exact: grid=%.4f hier=%.4f", rGrid, rHier)
				if rHier > rGrid+1e-9 {
					t.Errorf("hier disagreement %.4f exceeds grid's %.4f", rHier, rGrid)
				}
				if rHier > 0.02 {
					t.Errorf("hier disagreement %.4f above the 2%% ceiling", rHier)
				}
			})
		}
	}
}

// TestHierMatchesGridSemantics checks the structural contracts shared
// with the other engines: no transmitter receives, empty rounds resolve
// to nothing, out-of-range transmitters panic, and scratch state does
// not leak between rounds.
func TestHierEngineBasics(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 5, Y: 0}, {X: 5.5, Y: 0}}
	h, err := NewHierEngine(geom.NewEuclidean(pts), DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 4 {
		t.Fatalf("N = %d", h.N())
	}
	if rec := h.Resolve(nil); rec != nil {
		t.Fatalf("Resolve(nil) = %v", rec)
	}
	r1 := h.Resolve([]int{0})
	if len(r1) != 1 || r1[0].Receiver != 1 || r1[0].Transmitter != 0 {
		t.Fatalf("round 1: %+v", r1)
	}
	r2 := h.Resolve([]int{2})
	if len(r2) != 1 || r2[0].Receiver != 3 || r2[0].Transmitter != 2 {
		t.Fatalf("round 2 leaked state: %+v", r2)
	}
	for _, rec := range h.Resolve([]int{0, 1}) {
		if rec.Receiver == 0 || rec.Receiver == 1 {
			t.Fatalf("transmitter received: %+v", rec)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("want panic on out-of-range transmitter")
			}
		}()
		h.Resolve([]int{9})
	}()
}

func TestHierEngineRejectsBadArgs(t *testing.T) {
	eu := geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}})
	p := DefaultParams()
	if _, err := NewHierEngine(eu, p, 0, 1.5, 0.5); err == nil {
		t.Fatal("want error for zero cell size")
	}
	if _, err := NewHierEngine(eu, p, 0.5, 0.5, 0.5); err == nil {
		t.Fatal("want error for nearRadius below the communication range")
	}
	if _, err := NewHierEngine(eu, p, 0.5, 1.5, 0); err == nil {
		t.Fatal("want error for zero theta")
	}
	if _, err := NewHierEngine(eu, p, 0.5, 1.5, 1.5); err == nil {
		t.Fatal("want error for theta above 1")
	}
	if _, err := NewHierEngine(geom.NewEuclidean(nil), p, 0.5, 1.5, 0.5); err == nil {
		t.Fatal("want error for empty point set")
	}
}

// TestCellBudgetRejectsSparseBoundingBox pins the constructor
// validation both grid-backed engines share: a pathological bounding
// box (two stations astronomically far apart) must error out instead of
// allocating gigabytes of empty cells.
func TestCellBudgetRejectsSparseBoundingBox(t *testing.T) {
	eu := geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1e9, Y: 1e9}})
	p := DefaultParams()
	if _, err := NewGridEngine(eu, p, 0.5, 1.5); err == nil {
		t.Fatal("grid: want cell-budget error for a 1e9-unit bounding box")
	}
	if _, err := NewHierEngine(eu, p, 0.5, 1.5, 0.5); err == nil {
		t.Fatal("hier: want cell-budget error for a 1e9-unit bounding box")
	}
	// A large but density-proportionate deployment must still build.
	r := rng.New(5)
	pts := make([]geom.Point, 4096)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, 40), Y: r.Range(0, 40)}
	}
	if _, err := NewGridEngine(geom.NewEuclidean(pts), p, 0.5, 1.5); err != nil {
		t.Fatalf("grid: legitimate deployment rejected: %v", err)
	}
}

// TestParallelHierResolveMatchesSerial pins the cross-worker
// bit-determinism contract for the hierarchical engine.
func TestParallelHierResolveMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 3, 7} {
		n := 500
		scene := randomScene(uint64(workers)*19+2, n, 10)
		serial, err := NewHierEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
		if err != nil {
			t.Fatal(err)
		}
		serial.SetWorkers(1)
		par, err := NewHierEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
		if err != nil {
			t.Fatal(err)
		}
		par.SetWorkers(workers)
		par.minParallelN = 0
		r := rng.New(uint64(workers) * 31)
		for round := 0; round < 20; round++ {
			tx := randomTxSet(r, n, 0.1)
			want := append([]Reception(nil), serial.Resolve(tx)...)
			got := par.Resolve(tx)
			diffReceptions(t, fmt.Sprintf("hier w=%d round=%d", workers, round), want, got)
		}
	}
}

func TestAutoEngineChoice(t *testing.T) {
	p := DefaultParams()
	mkEu := func(n int) geom.Space {
		pts := make([]geom.Point, n)
		r := rng.New(uint64(n))
		side := math.Sqrt(float64(n))
		for i := range pts {
			pts[i] = geom.Point{X: r.Range(0, side), Y: r.Range(0, side)}
		}
		return geom.NewEuclidean(pts)
	}
	tests := []struct {
		name string
		s    geom.Space
		p    Params
		acc  Accuracy
		want EngineKind
	}{
		{"small euclidean", mkEu(256), p, AccuracyBalanced, KindExact},
		{"mid euclidean", mkEu(8192), p, AccuracyBalanced, KindGrid},
		{"large euclidean", mkEu(40000), p, AccuracyBalanced, KindHier},
		{"fast mid", mkEu(8192), p, AccuracyFast, KindHier},
		{"exact accuracy", mkEu(40000), p, AccuracyExact, KindExact},
		{"line metric", geom.NewLine(make([]float64, 9000)), p, AccuracyBalanced, KindExact},
		{"alpha near growth", mkEu(40000), Params{Alpha: 2.2, Beta: 1.5, Noise: 1, Eps: 1. / 3}, AccuracyBalanced, KindExact},
	}
	for _, tt := range tests {
		if got := Choose(tt.s, tt.p, tt.acc); got != tt.want {
			t.Errorf("%s: Choose = %q, want %q", tt.name, got, tt.want)
		}
	}
	// AutoEngine must build what Choose says and satisfy Resolver.
	r, err := AutoEngine(mkEu(256), p, AccuracyBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*Engine); !ok {
		t.Fatalf("AutoEngine built %T, want *Engine", r)
	}
	if _, err := NewNamedEngine("bogus", mkEu(16), p); err == nil {
		t.Fatal("want error for unknown engine name")
	}
	for _, name := range []string{"exact", "grid", "hier", "auto"} {
		if _, err := NewNamedEngine(name, mkEu(4096), p); err != nil {
			t.Fatalf("NewNamedEngine(%q): %v", name, err)
		}
	}
	if _, err := NewNamedEngine("hier", geom.NewLine([]float64{0, 1}), p); err == nil {
		t.Fatal("want error for hier on a non-Euclidean space")
	}
}

// TestNamedEngineFitsSparseBoundingBox pins the adaptive cell sizing of
// the named/auto construction path: a legitimate sparse deployment with
// a huge bounding box (a long relay chain) must build — with coarser
// cells — where the default cell size would blow the cell budget, and
// must still resolve rounds consistently with ResolveFor.
func TestNamedEngineFitsSparseBoundingBox(t *testing.T) {
	// 2000 stations strung along a 1200-unit line: 0.5-unit cells would
	// need 2400×~3 columns... with a second arm, millions of cells.
	n := 2000
	pts := make([]geom.Point, n)
	r := rng.New(11)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 0.6, Y: r.Range(0, 600)}
	}
	eu := geom.NewEuclidean(pts)
	p := DefaultParams()
	if _, err := NewHierEngine(eu, p, DefaultCellSize, DefaultNearRadius, DefaultTheta); err == nil {
		t.Fatal("explicit default-cell hier should exceed the cell budget on this box")
	}
	for _, name := range []string{"grid", "hier"} {
		eng, err := NewNamedEngine(name, eu, p)
		if err != nil {
			t.Fatalf("NewNamedEngine(%q) on sparse box: %v", name, err)
		}
		tx := benchSubset(n, 50)
		full := append([]Reception(nil), eng.Resolve(tx)...)
		subset := benchSubset(n, 3)
		got := eng.ResolveFor(tx, subset)
		want := filterReceptions(full, subset)
		if len(got) != len(want) {
			t.Fatalf("%s: ResolveFor %d vs filtered %d", name, len(got), len(want))
		}
	}
}

// benchSubset returns every strideth station index.
func benchSubset(n, stride int) []int {
	var s []int
	for i := 0; i < n; i += stride {
		s = append(s, i)
	}
	return s
}
