package sim

import (
	"fmt"
	"io"

	"sinrcast/internal/sinr"
)

// CountingTracer records per-round transmitter and reception counts.
type CountingTracer struct {
	TxPerRound  []int
	RecPerRound []int
}

var _ Tracer = (*CountingTracer)(nil)

// OnRound implements Tracer.
func (c *CountingTracer) OnRound(_ int, tx []int, rec []sinr.Reception) {
	c.TxPerRound = append(c.TxPerRound, len(tx))
	c.RecPerRound = append(c.RecPerRound, len(rec))
}

// WriterTracer streams a human-readable round log, for debugging and the
// CLIs' -v mode.
type WriterTracer struct {
	W io.Writer
	// Every limits output to rounds divisible by Every (0 = every round).
	Every int
}

var _ Tracer = (*WriterTracer)(nil)

// OnRound implements Tracer.
func (w *WriterTracer) OnRound(t int, tx []int, rec []sinr.Reception) {
	if w.Every > 1 && t%w.Every != 0 {
		return
	}
	fmt.Fprintf(w.W, "round %6d: %3d tx, %3d rx", t, len(tx), len(rec))
	if len(rec) > 0 && len(rec) <= 8 {
		fmt.Fprint(w.W, " [")
		for i, r := range rec {
			if i > 0 {
				fmt.Fprint(w.W, " ")
			}
			fmt.Fprintf(w.W, "%d<-%d", r.Receiver, r.Transmitter)
		}
		fmt.Fprint(w.W, "]")
	}
	fmt.Fprintln(w.W)
}

// MultiTracer fans out to several tracers.
type MultiTracer []Tracer

var _ Tracer = (MultiTracer)(nil)

// OnRound implements Tracer.
func (m MultiTracer) OnRound(t int, tx []int, rec []sinr.Reception) {
	for _, tr := range m {
		tr.OnRound(t, tx, rec)
	}
}
