// Package consensus implements the §5 consensus protocol: every station
// holds a message in {0,…,X}; all stations must agree on the
// lexicographically (numerically) smallest one. The protocol first
// establishes the backbone coloring (one StabilizeProbability execution,
// as in the paper's "wake-up with established coloring"), then reveals
// the minimum bit by bit, most significant first: in window i, stations
// whose message extends the agreed prefix with a 0-bit initiate a
// bounded flood; hearing the window's token means bit 0, silence means
// bit 1. Time is O(window·log X) = O((D log n + log² n)·log X).
package consensus

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"sinrcast/internal/coloring"
	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// KindToken tags window-flood messages; A carries the window index so
// stale tokens never leak across windows.
const KindToken uint8 = 3

// Config parametrizes the consensus protocol.
type Config struct {
	// Coloring is the backbone StabilizeProbability schedule.
	Coloring coloring.Params
	// X bounds the message domain {0..X}.
	X int64
	// WindowRounds is the per-bit flood window length; 0 derives
	// WindowFactor·(D+4)·lg n + 2·lg² n from the network.
	WindowRounds int
	// WindowFactor scales the derived window (default 60).
	WindowFactor float64
	// CProb and MaxTxProb shape the per-round flood probability
	// p·cε/(CProb·lg n) as in broadcast.Config.
	CProb     float64
	MaxTxProb float64
	// Channel optionally overrides the physical layer (engine
	// selection for large-n runs). nil uses the exact SINR engine,
	// which is the paper's model.
	Channel func(net *network.Network) (sim.Resolver, error)
}

// DefaultConfig returns a calibrated consensus configuration.
func DefaultConfig(n int, gamma, eps float64, x int64) Config {
	return Config{
		Coloring:     coloring.DefaultParams(n, gamma, eps),
		X:            x,
		WindowFactor: 60,
		CProb:        6,
		MaxTxProb:    0.9,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	var errs []error
	if err := c.Coloring.Validate(); err != nil {
		errs = append(errs, err)
	}
	if c.X < 0 {
		errs = append(errs, fmt.Errorf("consensus: X = %d must be >= 0", c.X))
	}
	if c.WindowRounds < 0 {
		errs = append(errs, fmt.Errorf("consensus: WindowRounds = %d must be >= 0", c.WindowRounds))
	}
	if c.WindowRounds == 0 && c.WindowFactor <= 0 {
		errs = append(errs, fmt.Errorf("consensus: WindowFactor = %v must be > 0", c.WindowFactor))
	}
	if c.CProb <= 0 || c.MaxTxProb <= 0 || c.MaxTxProb > 1 {
		errs = append(errs, fmt.Errorf("consensus: bad flood probabilities (CProb=%v, MaxTxProb=%v)", c.CProb, c.MaxTxProb))
	}
	return errors.Join(errs...)
}

// Bits returns the number of bit windows: ⌈log2(X+1)⌉ (at least 1).
func (c Config) Bits() int {
	if c.X <= 0 {
		return 1
	}
	return bits.Len64(uint64(c.X))
}

// lg returns log2 n clamped at 1.
func (c Config) lg() float64 {
	l := math.Log2(float64(c.Coloring.N))
	if l < 1 {
		l = 1
	}
	return l
}

// window returns the per-bit window length for a network of diameter d.
func (c Config) window(d int) int {
	if c.WindowRounds > 0 {
		return c.WindowRounds
	}
	lg := c.lg()
	return int(math.Ceil(c.WindowFactor*float64(d+4)*lg + 2*lg*lg))
}

// station is the per-station consensus state machine.
type station struct {
	cfg     *Config
	machine *coloring.Machine
	rnd     *rng.Source
	msg     int64

	txProb float64 // backbone flood probability, fixed after coloring
	window int

	prefix   int64 // agreed bits so far (most significant first)
	nbits    int   // number of agreed bits
	hasToken bool  // heard/initiated the current window's token
}

var _ sim.Protocol = (*station)(nil)

// initiates reports whether the station's message extends the agreed
// prefix with a 0 at the current bit (bit index counts from the top).
func (s *station) initiates(bitIdx, totalBits int) bool {
	shift := uint(totalBits - bitIdx - 1)
	if s.msg>>(shift+1) != s.prefix {
		return false
	}
	return (s.msg>>shift)&1 == 0
}

// Tick implements sim.Protocol.
func (s *station) Tick(t int) (bool, sim.Message) {
	colorLen := s.cfg.Coloring.TotalRounds()
	if t < colorLen {
		if s.machine.Tick(t) {
			return true, sim.Message{Kind: coloring.KindColoring}
		}
		return false, sim.Message{}
	}
	if t == colorLen {
		s.machine.Finish()
		s.txProb = s.machine.Color() * s.cfg.Coloring.CEps / (s.cfg.CProb * s.cfg.lg())
		if s.txProb > s.cfg.MaxTxProb {
			s.txProb = s.cfg.MaxTxProb
		}
	}
	total := s.cfg.Bits()
	w := t - colorLen
	bitIdx := w / s.window
	if bitIdx >= total {
		return false, sim.Message{} // protocol over
	}
	if w%s.window == 0 {
		// Window start: close the previous window, decide its bit.
		if bitIdx > 0 {
			s.closeWindow()
		}
		s.hasToken = s.initiates(bitIdx, total)
	}
	if s.hasToken && s.rnd.Bernoulli(s.txProb) {
		return true, sim.Message{Kind: KindToken, A: int64(bitIdx)}
	}
	return false, sim.Message{}
}

var _ sim.Sleeper = (*station)(nil)

// TickWake implements sim.Sleeper.
func (s *station) TickWake(t int) (bool, sim.Message, int) {
	transmit, msg := s.Tick(t)
	return transmit, msg, s.nextWake(t)
}

// nextWake derives the sleep window from the post-Tick state: a colorer
// that quit sleeps to the backbone boundary (everyone must tick there
// to fix its flood probability), a station without the current window's
// token draws nothing until the next window opens (closeWindow runs on
// that tick), and a station past the last window is done for good —
// the final closeWindow happens in finalize, not in a Tick.
func (s *station) nextWake(t int) int {
	colorLen := s.cfg.Coloring.TotalRounds()
	if t < colorLen {
		if s.machine.Done() {
			return colorLen
		}
		return t + 1
	}
	total := s.cfg.Bits()
	bitIdx := (t - colorLen) / s.window
	if bitIdx >= total {
		return sim.NeverWake
	}
	if s.hasToken {
		return t + 1
	}
	if bitIdx+1 >= total {
		return sim.NeverWake
	}
	return colorLen + (bitIdx+1)*s.window
}

// closeWindow folds the finished window's outcome into the prefix.
func (s *station) closeWindow() {
	bit := int64(1)
	if s.hasToken {
		bit = 0
	}
	s.prefix = s.prefix<<1 | bit
	s.nbits++
	s.hasToken = false
}

// Recv implements sim.Protocol.
func (s *station) Recv(t int, msg sim.Message) {
	colorLen := s.cfg.Coloring.TotalRounds()
	if t < colorLen {
		s.machine.OnRecv(t)
		return
	}
	if msg.Kind != KindToken {
		return
	}
	bitIdx := (t - colorLen) / s.window
	if int64(bitIdx) == msg.A {
		s.hasToken = true
	}
}

// finalize closes the last window (the engine stops before another
// window-start Tick would).
func (s *station) finalize() {
	if s.nbits < s.cfg.Bits() {
		s.closeWindow()
	}
}

// Result reports a consensus execution.
type Result struct {
	// Values[i] is station i's decided value.
	Values []int64
	// Agreed reports whether all stations decided the same value.
	Agreed bool
	// Correct reports whether the common value equals the true minimum
	// (implies Agreed).
	Correct bool
	// Rounds is the total protocol length (coloring + all windows).
	Rounds int
	// Metrics are the simulation counters.
	Metrics sim.Metrics
}

// channelFor builds the physical layer: cfg.Channel if set, else the
// exact SINR engine.
func channelFor(cfg Config, net *network.Network) (sim.Resolver, error) {
	if cfg.Channel != nil {
		return cfg.Channel(net)
	}
	return sinr.NewEngine(net.Space, net.Params)
}

// Run executes consensus over the stations' messages msgs (one per
// station, each in {0..cfg.X}).
func Run(net *network.Network, cfg Config, seed uint64, msgs []int64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := net.N()
	if len(msgs) != n {
		return nil, fmt.Errorf("consensus: %d messages for %d stations", len(msgs), n)
	}
	if cfg.Coloring.N != n {
		return nil, fmt.Errorf("consensus: config sized for %d stations, network has %d", cfg.Coloring.N, n)
	}
	for i, m := range msgs {
		if m < 0 || m > cfg.X {
			return nil, fmt.Errorf("consensus: message %d of station %d outside [0,%d]", m, i, cfg.X)
		}
	}
	d, connected := net.DiameterApprox()
	if !connected {
		return nil, errors.New("consensus: network not connected")
	}
	phys, err := channelFor(cfg, net)
	if err != nil {
		return nil, err
	}
	root := rng.New(seed)
	window := cfg.window(d)
	stations := make([]*station, n)
	protos := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		m, err := coloring.NewMachine(cfg.Coloring, root.Split(uint64(i)).Split(1))
		if err != nil {
			return nil, err
		}
		st := &station{
			cfg:     &cfg,
			machine: m,
			rnd:     root.Split(uint64(i)),
			msg:     msgs[i],
			window:  window,
		}
		stations[i] = st
		protos[i] = st
	}
	eng, err := sim.NewEngine(phys, protos)
	if err != nil {
		return nil, err
	}
	total := cfg.Coloring.TotalRounds() + cfg.Bits()*window
	eng.Run(total, nil)

	res := &Result{
		Values:  make([]int64, n),
		Rounds:  total,
		Metrics: eng.Metrics,
	}
	min := msgs[0]
	for _, m := range msgs[1:] {
		if m < min {
			min = m
		}
	}
	res.Agreed = true
	for i, st := range stations {
		st.finalize()
		res.Values[i] = st.prefix
		if st.prefix != stations[0].prefix {
			res.Agreed = false
		}
	}
	res.Correct = res.Agreed && stations[0].prefix == min
	return res, nil
}
