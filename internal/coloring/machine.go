package coloring

import (
	"fmt"

	"sinrcast/internal/rng"
)

// Machine executes one station's StabilizeProbability schedule
// (Algorithm 1). It is driven by local round numbers 0..TotalRounds()-1:
// call Tick(r) once per round in order to learn whether to transmit, and
// OnRecv(r) for every message decoded in round r. After the last round
// call Finish; Color is then final.
//
// Machine is embeddable: broadcast protocols run one Machine per phase
// and translate global rounds to local ones.
type Machine struct {
	par Params
	rnd *rng.Source

	quit  bool
	color float64
	pv    float64

	// segment bookkeeping
	synced  int // first local round not yet incorporated into state
	dtPass  bool
	dtCount int
	poCount int
	streak  int // consecutive DT∧PO passes within the current phase
}

// NewMachine builds a station machine. The rng source must be private to
// the station (use Source.Split with the station id).
func NewMachine(par Params, rnd *rng.Source) (*Machine, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	return &Machine{par: par, rnd: rnd, pv: par.PStart()}, nil
}

// Params returns the schedule parameters.
func (m *Machine) Params() Params { return m.par }

// Reset returns the machine to its initial state (used by phased
// broadcast protocols that re-run the coloring each phase).
func (m *Machine) Reset() {
	m.quit = false
	m.color = 0
	m.pv = m.par.PStart()
	m.synced = 0
	m.dtPass = false
	m.dtCount = 0
	m.poCount = 0
	m.streak = 0
}

// segment identifies where local round r falls in the schedule.
type segment struct {
	phase int
	iter  int
	inPO  bool
}

func (m *Machine) segmentOf(r int) segment {
	pl := m.par.PhaseLen()
	il := m.par.DTLen() + m.par.POLen()
	with := r % pl
	return segment{
		phase: r / pl,
		iter:  with / il,
		inPO:  with%il >= m.par.DTLen(),
	}
}

// sync finalizes all segments that ended strictly before local round r.
// Receptions of round x are delivered after Tick(x), so finalization
// happens lazily on the first Tick (or Finish) past the boundary.
func (m *Machine) sync(r int) {
	if m.quit {
		m.synced = r
		return
	}
	if r > m.par.TotalRounds() {
		r = m.par.TotalRounds()
	}
	for m.synced < r {
		cur := m.segmentOf(m.synced)
		// Advance to the end of the current half-segment (or to r).
		next := m.halfSegmentEnd(m.synced)
		if next > r {
			// Boundary not reached yet: nothing to finalize.
			m.synced = r
			return
		}
		m.synced = next
		if !cur.inPO {
			m.dtPass = m.dtCount >= m.par.DTNeed()
			m.dtCount = 0
			continue
		}
		// Playoff just ended: Algorithm 1 lines 5-6, amplified by the
		// Confirm consecutive-pass requirement (see Params.Confirm).
		if m.dtPass && m.poCount >= m.par.PONeed() {
			m.streak++
			if m.streak >= m.par.Confirm {
				m.quit = true
				m.color = m.pv
				m.poCount = 0
				return
			}
		} else {
			m.streak = 0
		}
		m.poCount = 0
		// End of a full phase: double pv (Algorithm 1 line 7) and reset
		// the confirmation streak.
		if cur.iter == m.par.CPrime-1 && m.segmentOf(m.synced).phase != cur.phase {
			m.pv *= 2
			m.streak = 0
		}
	}
}

// halfSegmentEnd returns the first round after the DT or PO half-segment
// containing r.
func (m *Machine) halfSegmentEnd(r int) int {
	pl := m.par.PhaseLen()
	il := m.par.DTLen() + m.par.POLen()
	base := (r / pl) * pl
	with := r % pl
	iterBase := base + (with/il)*il
	if with%il < m.par.DTLen() {
		return iterBase + m.par.DTLen()
	}
	return iterBase + il
}

// Tick reports whether the station transmits in local round r. Rounds at
// or past TotalRounds, and rounds after quitting, never transmit.
func (m *Machine) Tick(r int) bool {
	if r < m.synced {
		panic(fmt.Sprintf("coloring: Tick(%d) after round %d was synced", r, m.synced))
	}
	m.sync(r)
	if m.quit || r >= m.par.TotalRounds() {
		return false
	}
	p := m.pv
	if m.segmentOf(r).inPO {
		p *= m.par.CEps
		if p > 1 {
			p = 1
		}
	}
	return m.rnd.Bernoulli(p)
}

// OnRecv records a successful reception in local round r. Receptions
// outside the schedule or after quitting are ignored.
func (m *Machine) OnRecv(r int) {
	if m.quit || r >= m.par.TotalRounds() || r < 0 {
		return
	}
	if m.segmentOf(r).inPO {
		m.poCount++
	} else {
		m.dtCount++
	}
}

// Finish finalizes the schedule; stations that never switched off get
// the final color 2·pmax (Algorithm 1 line 8).
func (m *Machine) Finish() {
	m.sync(m.par.TotalRounds())
	if !m.quit {
		m.quit = true
		m.color = m.par.FinalColor()
	}
}

// Done reports whether the station has a final color (quit or finished).
func (m *Machine) Done() bool { return m.quit }

// Color returns the assigned color; zero until the station quits or
// Finish is called.
func (m *Machine) Color() float64 { return m.color }

// CurrentP returns the station's current doubling probability (pv);
// after quitting it returns the final color.
func (m *Machine) CurrentP() float64 {
	if m.quit {
		return m.color
	}
	return m.pv
}
