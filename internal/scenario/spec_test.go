package scenario

import (
	"errors"
	"math"
	"strings"
	"testing"

	"sinrcast/internal/sinr"
)

// TestSpecStringGolden pins the canonical compact form: parameters
// sorted by name, shortest float rendering, family alone when no
// parameters are set.
func TestSpecStringGolden(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		want string
	}{
		{Spec{Family: "uniform"}, "uniform"},
		{Spec{Family: "uniform", Params: map[string]float64{"n": 256, "density": 8}}, "uniform:density=8,n=256"},
		{Spec{Family: "expchain", Params: map[string]float64{"ratio": 0.6, "n": 32, "first": 0.5}}, "expchain:first=0.5,n=32,ratio=0.6"},
		{Spec{Family: "clusters", Params: map[string]float64{"k": 4, "m": 24, "radius": 0.08, "gap": 0.6}}, "clusters:gap=0.6,k=4,m=24,radius=0.08"},
	} {
		if got := tc.spec.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// TestParseRoundTrip checks Parse(s).String() == canonical form for
// spaced, reordered and bare inputs.
func TestParseRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"uniform", "uniform"},
		{"uniform:n=256,density=8", "uniform:density=8,n=256"},
		{" uniform:n=256 , density=8 ", "uniform:density=8,n=256"},
		{"grid:spacing=0.25,n=49", "grid:n=49,spacing=0.25"},
		{"annulus:thickness=0.3", "annulus:thickness=0.3"},
		{"starclusters:arms=7,hops=2", "starclusters:arms=7,hops=2"},
	} {
		sp, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := sp.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		again, err := Parse(sp.String())
		if err != nil {
			t.Errorf("reparse %q: %v", sp.String(), err)
			continue
		}
		if again.String() != tc.want {
			t.Errorf("reparse drifted: %q -> %q", tc.want, again.String())
		}
	}
}

// TestParseErrors checks the error surface of the compact form.
func TestParseErrors(t *testing.T) {
	for _, tc := range []struct {
		in      string
		wantSub string
	}{
		{"", "empty spec"},
		{"nosuchfamily", "unknown family"},
		{"nosuchfamily:n=4", "unknown family"},
		{"uniform:", "empty parameter list"},
		{"uniform:n", "malformed parameter"},
		{"uniform:n=", "malformed parameter"},
		{"uniform:=8", "malformed parameter"},
		{"uniform:bogus=1", "no parameter \"bogus\""},
		{"uniform:n=abc", "not a number"},
		{"uniform:n=4,n=5", "given twice"},
	} {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", tc.in, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.in, err, tc.wantSub)
		}
	}
}

// TestGenerateValidation checks range, integrality and unknown-name
// rejection for programmatically built specs.
func TestGenerateValidation(t *testing.T) {
	phys := sinr.DefaultParams()
	for _, tc := range []struct {
		spec    Spec
		wantSub string
	}{
		{Spec{Family: "nope"}, "unknown family"},
		{Spec{Family: "uniform", Params: map[string]float64{"bogus": 1}}, "no parameter"},
		{Spec{Family: "uniform", Params: map[string]float64{"n": 0}}, "outside"},
		{Spec{Family: "uniform", Params: map[string]float64{"n": 2.5}}, "must be an integer"},
		{Spec{Family: "path", Params: map[string]float64{"frac": 1.5}}, "outside"},
		{Spec{Family: "path", Params: map[string]float64{"n": 4, "frac": 0}}, "must be in (0,1]"},
		{Spec{Family: "grid", Params: map[string]float64{"spacing": 10}}, "spacing"},
		{Spec{Family: "expchain", Params: map[string]float64{"first": 5}}, "first gap"},
		{Spec{Family: "clusters", Params: map[string]float64{"radius": 0.5}}, "radius"},
		{Spec{Family: "annulus", Params: map[string]float64{"thickness": 1.99, "density": 0}}, "density"},
		{Spec{Family: "dumbbell", Params: map[string]float64{"n": 2}}, "too small"},
		{Spec{Family: "starclusters", Params: map[string]float64{"radius": 0.5}}, "radius"},
		{Spec{Family: "uniform", Params: map[string]float64{"n": 1e300}}, "exceeds the size limit"},
		{Spec{Family: "uniform", Params: map[string]float64{"density": math.Inf(1)}}, "outside"},
		{Spec{Family: "gridholes", Params: map[string]float64{"hole": 1e6}}, "too large"},
	} {
		_, err := Generate(tc.spec, phys, 1)
		if err == nil {
			t.Errorf("Generate(%v): want error containing %q, got nil", tc.spec, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Generate(%v) error = %q, want substring %q", tc.spec, err, tc.wantSub)
		}
	}
	// Defaults alone must build every family.
	if _, err := Generate(Spec{Family: "uniform"}, phys, 1); err != nil {
		t.Errorf("defaults-only uniform: %v", err)
	}
}

// TestDescribeListsEverything checks the -list catalogue names every
// family and every parameter.
func TestDescribeListsEverything(t *testing.T) {
	desc := Describe()
	for _, f := range Families() {
		if !strings.Contains(desc, f.Name+" — ") {
			t.Errorf("catalogue missing family %q", f.Name)
		}
		for _, p := range f.Params {
			if !strings.Contains(desc, p.Doc) {
				t.Errorf("catalogue missing doc for %s.%s", f.Name, p.Name)
			}
		}
	}
}

// TestBuilderSpecErrors pins the typed classification of builder-time
// failures: physics-dependent parameter rejections (values that pass
// the static bounds but cannot describe a deployment) carry *SpecError
// so CLIs exit 2 (usage), while exhausted connectivity retries stay
// plain runtime errors. This mirrors protocol.SpecError.
func TestBuilderSpecErrors(t *testing.T) {
	phys := sinr.DefaultParams()
	usage := []Spec{
		// dumbbell blob radius beyond the comm radius (static Max is inf).
		{Family: "dumbbell", Params: map[string]float64{"radius": 5}},
		// dumbbell too small for its own bridge relays.
		{Family: "dumbbell", Params: map[string]float64{"n": 3, "bridge": 20}},
		// lattice spacing beyond the comm radius disconnects the grid.
		{Family: "grid", Params: map[string]float64{"spacing": 2}},
		// hole larger than the carved lattice.
		{Family: "gridholes", Params: map[string]float64{"n": 16, "hole": 8}},
		// starclusters blob beyond commRadius/2.
		{Family: "starclusters", Params: map[string]float64{"radius": 0.5}},
		// gradient ramp below 1 is checked in the builder.
		{Family: "expchain", Params: map[string]float64{"first": 3}},
	}
	for _, sp := range usage {
		_, err := Generate(sp, phys, 1)
		if err == nil {
			t.Errorf("Generate(%v): want error", sp)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("Generate(%v) error %v is not a *SpecError", sp, err)
		}
	}

	// Statically invalid values never reach the builder and stay plain
	// (registry-level) errors, not SpecErrors.
	_, err := Generate(Spec{Family: "uniform", Params: map[string]float64{"n": -1}}, phys, 1)
	if err == nil {
		t.Fatal("want error for n=-1")
	}
	var se *SpecError
	if errors.As(err, &se) {
		t.Errorf("static range violation classified as SpecError: %v", err)
	}
}
