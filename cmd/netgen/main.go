// Command netgen generates a network from a scenario spec and prints
// its statistics: station count, edges, degree spread, diameter,
// granularity Rs, generator meta (retry attempts etc.), and
// (optionally) an ASCII sketch of the layout.
//
// Usage:
//
//	netgen -scenario uniform:n=128,density=8 -seed 1
//	netgen -scenario expchain:n=32,ratio=0.6 -sketch
//	netgen -scenario clusters:k=4,m=32,radius=0.05,gap=0.5
//	netgen -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"sinrcast/internal/network"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sinr"
)

func main() {
	var (
		spec   = flag.String("scenario", "uniform", "scenario spec: family[:name=value,...]; see -list")
		seed   = flag.Uint64("seed", 1, "generator seed")
		sketch = flag.Bool("sketch", false, "print an ASCII layout sketch")
		list   = flag.Bool("list", false, "list registered families with their parameters and exit")
	)
	flag.Parse()

	if *list {
		fmt.Print(scenario.Describe())
		return
	}

	sp, err := scenario.Parse(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netgen: %v\n", err)
		os.Exit(2)
	}
	p := sinr.DefaultParams()
	net, err := scenario.Generate(sp, p, *seed)
	if err != nil {
		// Physics-dependent parameter rejections are usage errors (exit
		// 2) like statically invalid specs; only genuine generation
		// failures (exhausted connectivity retries) are runtime (exit 1).
		var se *scenario.SpecError
		if errors.As(err, &se) {
			fmt.Fprintf(os.Stderr, "netgen: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "netgen: %v\n", err)
		os.Exit(1)
	}

	d, connected := net.Diameter()
	minDeg, sumDeg := net.N(), 0
	for i := 0; i < net.N(); i++ {
		deg := net.Degree(i)
		sumDeg += deg
		if deg < minDeg {
			minDeg = deg
		}
	}
	fmt.Printf("scenario      %s\n", sp.String())
	fmt.Printf("stations      %d\n", net.N())
	fmt.Printf("edges         %d\n", net.EdgeCount())
	fmt.Printf("degree        min=%d mean=%.1f max=%d\n", minDeg, float64(sumDeg)/float64(net.N()), net.MaxDegree())
	fmt.Printf("connected     %v\n", connected)
	fmt.Printf("diameter      %d\n", d)
	rs := net.Granularity()
	fmt.Printf("granularity   Rs=%.4g (log2=%.1f)\n", rs, math.Log2(rs))
	if len(net.Meta) > 0 {
		keys := make([]string, 0, len(net.Meta))
		for k := range net.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%.4g", k, net.Meta[k])
		}
		fmt.Printf("meta          %s\n", strings.Join(parts, " "))
	}
	fmt.Printf("phys          alpha=%.1f beta=%.1f N=%.1f eps=%.3f commRadius=%.3f\n",
		p.Alpha, p.Beta, p.Noise, p.Eps, p.CommRadius())

	if *sketch {
		fmt.Println()
		printSketch(net, 64, 20)
	}
}

// printSketch draws station positions on a character grid.
func printSketch(net *network.Network, w, h int) {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i := 0; i < net.N(); i++ {
		q := net.Space.Position(i)
		minX, maxX = math.Min(minX, q.X), math.Max(maxX, q.X)
		minY, maxY = math.Min(minY, q.Y), math.Max(maxY, q.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", w))
	}
	for i := 0; i < net.N(); i++ {
		q := net.Space.Position(i)
		x := int((q.X - minX) / (maxX - minX) * float64(w-1))
		y := int((q.Y - minY) / (maxY - minY) * float64(h-1))
		grid[y][x] = '*'
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
