//go:build !amd64 || purego

package simd

// No assembly tier in this build: SetUseAsm(true) is refused and
// FarSumFast always takes the portable path. The stubs below keep the
// dispatch code compiling; they are unreachable because useAsm can
// never be true here.
const hasAsm = false

func asmFarSumInvSq(upx, upy float64, x, y, p []float64) float64 {
	return farSumInvSq(upx, upy, x, y, p)
}

func asmFarSumInvQuad(upx, upy float64, x, y, p []float64) float64 {
	return farSumInvQuad(upx, upy, x, y, p)
}
