// Package netgen keeps the original function-per-family generator
// surface as thin wrappers over the internal/scenario registry, which
// now owns all topology construction. Existing callers and tests keep
// working unchanged; new code (and new families) should use
// scenario.Spec / scenario.Generate directly.
//
// Every generator returns a connected network or an error; generators
// that sample randomly retry with densified parameters until the
// communication graph is connected, recording the attempt count and
// the final geometry in Network.Meta.
package netgen

import (
	"sinrcast/internal/network"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sinr"
)

// Config carries the shared knobs of all generators.
type Config struct {
	// Params are the physical parameters (notably ε, which fixes the
	// communication radius 1-ε).
	Params sinr.Params
	// Seed drives all sampling.
	Seed uint64
}

// gen builds the named family with explicit parameter overrides.
func (c Config) gen(family string, params map[string]float64) (*network.Network, error) {
	return scenario.Generate(scenario.Spec{Family: family, Params: params}, c.Params, c.Seed)
}

// Uniform places n stations uniformly in a side×side square, retrying
// with a smaller side (denser network) until connected. The initial side
// targets the requested mean density (stations per unit ball); the side
// actually used and the attempt count are reported in Network.Meta.
func Uniform(cfg Config, n int, density float64) (*network.Network, error) {
	if density <= 0 {
		density = 6
	}
	return cfg.gen("uniform", map[string]float64{"n": float64(n), "density": density})
}

// Grid places stations on a √n×√n lattice with the given spacing
// (must be ≤ comm radius for connectivity).
func Grid(cfg Config, n int, spacing float64) (*network.Network, error) {
	return cfg.gen("grid", map[string]float64{"n": float64(n), "spacing": spacing})
}

// Path places n stations on a line with uniform gap = fraction·commRadius,
// giving a path-like communication graph with diameter ~n·fraction.
func Path(cfg Config, n int, fraction float64) (*network.Network, error) {
	return cfg.gen("path", map[string]float64{"n": float64(n), "frac": fraction})
}

// ExponentialChain builds the paper's footnote-2 worst case: stations on
// a line with dist(x_i, x_{i+1}) = ratio^i · first. Granularity grows as
// ratio^n while the whole chain fits inside one communication ball, so
// D = O(1) but geometry-sensitive algorithms degrade.
//
// ratio must be in (0,1); first is the first gap (≤ comm radius).
func ExponentialChain(cfg Config, n int, first, ratio float64) (*network.Network, error) {
	return cfg.gen("expchain", map[string]float64{"n": float64(n), "first": first, "ratio": ratio})
}

// Clusters places k dense clusters of m stations each (n = k·m) along a
// line of loosely connected hubs: inside a cluster stations pack within
// clusterRadius; consecutive clusters sit bridgeGap apart (must be ≤ comm
// radius for connectivity). This is the paper's motivating "non-uniform
// density" scenario: per-ball densities differ by orders of magnitude.
func Clusters(cfg Config, k, m int, clusterRadius, bridgeGap float64) (*network.Network, error) {
	return cfg.gen("clusters", map[string]float64{
		"k": float64(k), "m": float64(m), "radius": clusterRadius, "gap": bridgeGap,
	})
}

// Gaussian places n stations in a 2D gaussian blob with the given
// standard deviation, retrying with smaller sigma until connected; the
// sigma actually used and the attempt count are reported in Network.Meta.
func Gaussian(cfg Config, n int, sigma float64) (*network.Network, error) {
	return cfg.gen("gaussian", map[string]float64{"n": float64(n), "sigma": sigma})
}

// ClusteredPath builds the E6 experiment topology: a path of pathLen
// stations spaced 0.9·commRadius apart (fixing the diameter), with an
// exponential cluster of clusterSize stations attached at station 0 —
// consecutive cluster gaps shrink by ratio, so granularity Rs grows as
// ratio^-clusterSize while D stays ~pathLen. This isolates granularity
// from diameter: geometry-sensitive algorithms slow down along Rs,
// geometry-oblivious ones stay flat.
func ClusteredPath(cfg Config, pathLen, clusterSize int, ratio float64) (*network.Network, error) {
	return cfg.gen("clusteredpath", map[string]float64{
		"pathlen": float64(pathLen), "cluster": float64(clusterSize), "ratio": ratio,
	})
}

// RandomWalkCorridor grows a connected "snake" deployment: each next
// station is placed a uniform step (within comm radius) from the
// previous one, producing large-diameter meandering networks.
func RandomWalkCorridor(cfg Config, n int, step float64) (*network.Network, error) {
	return cfg.gen("corridor", map[string]float64{"n": float64(n), "step": step})
}
