package sinrcast

import (
	"sinrcast/internal/apps/alert"
	"sinrcast/internal/apps/consensus"
	"sinrcast/internal/apps/leader"
	"sinrcast/internal/apps/wakeup"
	"sinrcast/internal/baseline"
	"sinrcast/internal/broadcast"
	"sinrcast/internal/coloring"
	"sinrcast/internal/geom"
	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/protocol"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sinr"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Physical holds the SINR model parameters (α, β, N, ε).
	Physical = sinr.Params
	// Point is a planar position.
	Point = geom.Point
	// Space is a finite bounded-growth metric space.
	Space = geom.Space
	// Network is a deployment plus its communication graph.
	Network = network.Network
	// BroadcastConfig tunes the paper's broadcast algorithms.
	BroadcastConfig = broadcast.Config
	// BroadcastResult reports a broadcast/flood execution.
	BroadcastResult = broadcast.Result
	// ColoringParams tunes StabilizeProbability (§3, Algorithm 1).
	ColoringParams = coloring.Params
	// ColoringResult is a computed coloring.
	ColoringResult = coloring.Result
	// WakeupSchedule is the adversary's spontaneous wake-up times.
	WakeupSchedule = wakeup.Schedule
	// WakeupResult reports a wake-up execution (§5).
	WakeupResult = wakeup.Result
	// ConsensusConfig tunes the §5 consensus protocol.
	ConsensusConfig = consensus.Config
	// ConsensusResult reports a consensus execution.
	ConsensusResult = consensus.Result
	// LeaderResult reports a leader election.
	LeaderResult = leader.Result
	// AlertResult reports an alert-protocol execution (§1.3).
	AlertResult = alert.Result
	// HopProgress summarizes a broadcast's sweep through BFS layers.
	HopProgress = broadcast.HopProgress
	// FloodPolicy is a pluggable baseline transmission policy.
	FloodPolicy = baseline.Policy
	// Spec is a declarative scenario: a registered topology family
	// plus parameter overrides, parseable from the compact form
	// "uniform:n=256,density=8" (see ParseSpec, Generate).
	Spec = scenario.Spec
	// ProtocolSpec is a declarative algorithm selection: a registered
	// protocol plus parameter overrides, parseable from the compact
	// form "nos:budgetmul=2,source=5" (see ParseProtocol, RunProtocol).
	ProtocolSpec = protocol.Spec
)

// DefaultPhysical returns the calibrated SINR parameters used across
// tests and experiments: α=3, β=1.5, N=1, ε=1/3.
func DefaultPhysical() Physical { return sinr.DefaultParams() }

// Options carries the common execution knobs of the high-level helpers.
type Options struct {
	// Seed drives all protocol randomness (0 is a valid seed).
	Seed uint64
	// Source is the broadcasting station (default 0).
	Source int
	// Payload is the broadcast message content.
	Payload int64
	// MaxRounds optionally overrides the simulation budget.
	MaxRounds int
}

// ParseSpec reads the compact scenario form "family" or
// "family:name=value,...". ScenarioCatalogue lists what is available.
func ParseSpec(s string) (Spec, error) { return scenario.Parse(s) }

// Generate builds the network described by a scenario spec: defaults
// fill omitted parameters, and the result is deterministic in
// (spec, p, seed) — same inputs, byte-identical positions.
func Generate(spec Spec, p Physical, seed uint64) (*Network, error) {
	return scenario.Generate(spec, p, seed)
}

// ScenarioFamilies returns the sorted names of every registered
// topology family.
func ScenarioFamilies() []string { return scenario.Names() }

// ScenarioCatalogue renders the registered families with their
// parameter docs — the text behind the CLIs' -list flag.
func ScenarioCatalogue() string { return scenario.Describe() }

// ParseProtocol reads the compact protocol form "name" or
// "name:param=value,...". ProtocolCatalogue lists what is available.
func ParseProtocol(s string) (ProtocolSpec, error) { return protocol.Parse(s) }

// RunProtocol executes a registered protocol on the network: defaults
// fill omitted parameters, and the execution is deterministic in
// (net, spec, seed). The paper's broadcast algorithms and the baseline
// floods report broadcast completion; the §5 applications report their
// own completion measure with AllInformed meaning "completed
// correctly".
func RunProtocol(net *Network, spec ProtocolSpec, seed uint64) (*BroadcastResult, error) {
	return protocol.Run(net, spec, seed)
}

// RunProtocolOn is RunProtocol with a named physical engine: "exact"
// (the paper's model — what RunProtocol uses), "grid", "hier" (the
// hierarchical far-field engine for very large networks), or "auto"
// (exact below a few thousand stations, grid at mid scale, hier
// beyond). Approximate engines keep near-field interference and the
// decoding candidate exact and aggregate only the far tail; see the
// engine-selection notes in the README for the accuracy/speed
// trade-offs.
func RunProtocolOn(net *Network, spec ProtocolSpec, seed uint64, engine string) (*BroadcastResult, error) {
	ch, err := protocol.NamedChannel(engine)
	if err != nil {
		return nil, err
	}
	return protocol.RunOn(net, spec, seed, ch)
}

// ProtocolNames returns the sorted names of every registered protocol.
func ProtocolNames() []string { return protocol.Names() }

// ProtocolCatalogue renders the registered protocols with their
// parameter docs — the protocol half of the CLIs' -list output.
func ProtocolCatalogue() string { return protocol.Describe() }

// NewNetwork builds a network over explicit planar positions.
func NewNetwork(p Physical, pts []Point) (*Network, error) {
	return network.New(geom.NewEuclidean(pts), p)
}

// NewLineNetwork builds a network over explicit line coordinates (the
// metric the paper's exponential-chain lower-bound examples live in).
func NewLineNetwork(p Physical, coords []float64) (*Network, error) {
	return network.New(geom.NewLine(coords), p)
}

// GenerateUniform places n stations uniformly at the given mean density
// (stations per communication ball), retrying until connected.
func GenerateUniform(p Physical, n int, density float64, seed uint64) (*Network, error) {
	return netgen.Uniform(netgen.Config{Params: p, Seed: seed}, n, density)
}

// GeneratePath places n stations on a line at fraction·commRadius gaps.
func GeneratePath(p Physical, n int, fraction float64, seed uint64) (*Network, error) {
	return netgen.Path(netgen.Config{Params: p, Seed: seed}, n, fraction)
}

// GenerateClusters places k clusters of m stations bridged in a row.
func GenerateClusters(p Physical, k, m int, clusterRadius, bridgeGap float64, seed uint64) (*Network, error) {
	return netgen.Clusters(netgen.Config{Params: p, Seed: seed}, k, m, clusterRadius, bridgeGap)
}

// GenerateExponentialChain builds the paper's footnote-2 worst case:
// consecutive gaps shrink geometrically, granularity Rs = ratio^-n.
func GenerateExponentialChain(p Physical, n int, first, ratio float64, seed uint64) (*Network, error) {
	return netgen.ExponentialChain(netgen.Config{Params: p, Seed: seed}, n, first, ratio)
}

// GenerateClusteredPath builds a fixed-diameter path with an exponential
// cluster at station 0: the ratio controls granularity Rs while D stays
// constant — the topology of the geometry-impact experiment (E6).
func GenerateClusteredPath(p Physical, pathLen, clusterSize int, ratio float64) (*Network, error) {
	return netgen.ClusteredPath(netgen.Config{Params: p}, pathLen, clusterSize, ratio)
}

// DefaultBroadcastConfig returns the calibrated broadcast configuration
// for a network.
func DefaultBroadcastConfig(net *Network) BroadcastConfig {
	return broadcast.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps)
}

// Broadcast runs NoSBroadcast (§4.1, Theorem 1): only the source is
// active initially; everyone else wakes on first reception.
func Broadcast(net *Network, o Options) (*BroadcastResult, error) {
	cfg := DefaultBroadcastConfig(net)
	cfg.MaxRounds = o.MaxRounds
	return broadcast.RunNoS(net, cfg, o.Seed, o.Source, o.Payload)
}

// BroadcastSpontaneous runs SBroadcast (§4.2, Theorem 2): all stations
// start simultaneously and precompute the coloring backbone.
func BroadcastSpontaneous(net *Network, o Options) (*BroadcastResult, error) {
	cfg := DefaultBroadcastConfig(net)
	cfg.MaxRounds = o.MaxRounds
	return broadcast.RunS(net, cfg, o.Seed, o.Source, o.Payload)
}

// BroadcastWith runs NoSBroadcast under an explicit configuration.
func BroadcastWith(net *Network, cfg BroadcastConfig, o Options) (*BroadcastResult, error) {
	return broadcast.RunNoS(net, cfg, o.Seed, o.Source, o.Payload)
}

// Colorize runs StabilizeProbability (§3) over all stations and returns
// the coloring.
func Colorize(net *Network, seed uint64) (*ColoringResult, error) {
	par := coloring.DefaultParams(net.N(), net.Space.Growth(), net.Params.Eps)
	return coloring.Run(net, par, seed)
}

// CheckLemma1 returns the heaviest same-color unit-ball mass of a
// coloring — the quantity Lemma 1 bounds by a constant.
func CheckLemma1(net *Network, colors []float64) float64 {
	return coloring.CheckLemma1(net, colors).MaxMass
}

// CheckLemma2 returns the weakest station's best-color ε/2-ball mass —
// the quantity Lemma 2 bounds from below by a constant.
func CheckLemma2(net *Network, colors []float64) float64 {
	return coloring.CheckLemma2(net, colors).MinBestMass
}

// WakeUp runs the §5 ad hoc wake-up protocol under an adversarial
// schedule of spontaneous wake-ups.
func WakeUp(net *Network, seed uint64, sched WakeupSchedule) (*WakeupResult, error) {
	return wakeup.Run(net, DefaultBroadcastConfig(net), seed, sched)
}

// Consensus agrees on the minimum of the stations' messages (§5).
// msgs[i] ∈ {0..x}.
func Consensus(net *Network, seed uint64, x int64, msgs []int64) (*ConsensusResult, error) {
	cfg := consensus.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps, x)
	return consensus.Run(net, cfg, seed, msgs)
}

// ElectLeader elects a unique leader whp via consensus on random IDs
// from {1..n³} (§5).
func ElectLeader(net *Network, seed uint64) (*LeaderResult, error) {
	cfg := consensus.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps, 1)
	return leader.Run(net, cfg, seed)
}

// Alert runs the §1.3 alert protocol: raised[i] marks stations where
// the adversary raises an alert; by the protocol deadline every station
// outputs whether any alert was raised, with the negative case staying
// completely silent.
func Alert(net *Network, seed uint64, raised []bool) (*AlertResult, error) {
	cfg := alert.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps)
	return alert.Run(net, cfg, seed, raised)
}

// Progress computes per-hop inform-time statistics of a completed
// broadcast — the sweep profile of the message through the network.
func Progress(net *Network, source int, informTime []int) (*HopProgress, error) {
	return broadcast.Progress(net, source, informTime)
}

// FloodDecay runs the classic Decay baseline.
func FloodDecay(net *Network, o Options) (*BroadcastResult, error) {
	return baseline.RunFlood(net, baseline.NewDecay(net.N()), o.Seed, o.Source, o.MaxRounds)
}

// FloodDaumStyle runs the granularity-sensitive baseline modelled on
// Daum et al. [5]; its probability sweep spans Θ(log n + α log Rs)
// levels.
func FloodDaumStyle(net *Network, o Options) (*BroadcastResult, error) {
	return baseline.RunFlood(net, baseline.NewDaumStyle(net), o.Seed, o.Source, o.MaxRounds)
}

// FloodDensityOracle runs the genie-aided local-broadcast baseline.
func FloodDensityOracle(net *Network, o Options) (*BroadcastResult, error) {
	return baseline.RunFlood(net, baseline.NewDensityOracle(net, 0), o.Seed, o.Source, o.MaxRounds)
}

// FloodGridTDMA runs the GPS grid-TDMA baseline (stations know their
// positions — precisely the assumption the paper removes).
func FloodGridTDMA(net *Network, o Options) (*BroadcastResult, error) {
	pol, err := baseline.NewGridTDMA(net)
	if err != nil {
		return nil, err
	}
	return baseline.RunFlood(net, pol, o.Seed, o.Source, o.MaxRounds)
}
