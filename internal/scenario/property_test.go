package scenario

import (
	"math"
	"testing"

	"sinrcast/internal/geom"
	"sinrcast/internal/sinr"
)

// TestEveryFamilyProperties is the registry-wide invariant check: for
// every registered family, a small instance must be connected, its
// space a valid metric (checked exhaustively on non-Euclidean spaces),
// its Spec round-trippable through the string form, and its layout
// byte-identical across regenerations of the same (Spec, Seed).
func TestEveryFamilyProperties(t *testing.T) {
	// 32 keeps CheckMetric (O(n³)) cheap while giving every sampling
	// family real randomness (starclusters needs m ≥ 2 per cluster).
	const (
		targetN = 32
		seed    = 5
	)
	phys := sinr.DefaultParams()
	fams := Families()
	if len(fams) < 11 {
		t.Fatalf("registry has %d families, want >= 11", len(fams))
	}
	for _, f := range fams {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			spec := f.SpecForN(targetN)
			if spec.Family != f.Name {
				t.Fatalf("SpecForN family = %q", spec.Family)
			}
			round, err := Parse(spec.String())
			if err != nil {
				t.Fatalf("Parse(%q): %v", spec.String(), err)
			}
			if round.String() != spec.String() {
				t.Fatalf("spec round trip: %q -> %q", spec.String(), round.String())
			}

			net, err := Generate(spec, phys, seed)
			if err != nil {
				t.Fatalf("Generate(%q): %v", spec.String(), err)
			}
			if net.N() < 2 {
				t.Fatalf("tiny network: n=%d", net.N())
			}
			if !net.Connected() {
				t.Fatalf("%q not connected (n=%d)", spec.String(), net.N())
			}
			if _, euclidean := net.Space.(*geom.Euclidean); !euclidean {
				if err := geom.CheckMetric(net.Space); err != nil {
					t.Fatalf("metric violation: %v", err)
				}
			}

			again, err := Generate(spec, phys, seed)
			if err != nil {
				t.Fatalf("regenerate: %v", err)
			}
			if again.N() != net.N() {
				t.Fatalf("nondeterministic size: %d vs %d", net.N(), again.N())
			}
			for i := 0; i < net.N(); i++ {
				a, b := net.Space.Position(i), again.Space.Position(i)
				if math.Float64bits(a.X) != math.Float64bits(b.X) ||
					math.Float64bits(a.Y) != math.Float64bits(b.Y) {
					t.Fatalf("station %d position differs between identical (Spec, Seed): %v vs %v", i, a, b)
				}
			}

			other, err := Generate(spec, phys, seed+1)
			if err != nil {
				t.Fatalf("reseed: %v", err)
			}
			identical := other.N() == net.N()
			if identical {
				for i := 0; i < net.N(); i++ {
					if net.Space.Position(i) != other.Space.Position(i) {
						identical = false
						break
					}
				}
			}
			if identical && familySamples(f) {
				t.Fatalf("%q: different seeds produced identical layouts", f.Name)
			}
		})
	}
}

// familySamples reports whether a family draws randomness at all;
// deterministic lattices are legitimately seed-independent.
func familySamples(f *Family) bool {
	switch f.Name {
	case "grid", "path", "expchain", "clusteredpath", "gridholes":
		return false
	}
	return true
}

// TestSpecForNMatchesTarget checks that matched-n sizing lands close
// to the target for every family (within a factor of two — carved
// grids and arm arithmetic round).
func TestSpecForNMatchesTarget(t *testing.T) {
	phys := sinr.DefaultParams()
	for _, target := range []int{24, 64} {
		for _, f := range Families() {
			net, err := Generate(f.SpecForN(target), phys, 7)
			if err != nil {
				t.Fatalf("%s n=%d: %v", f.Name, target, err)
			}
			if net.N() < target/2 || net.N() > target*2 {
				t.Errorf("%s: SpecForN(%d) built n=%d, outside [%d, %d]",
					f.Name, target, net.N(), target/2, target*2)
			}
		}
	}
}

// TestRetryMetaReported pins the satellite contract: densifying
// generators must report their attempt count and final geometry
// instead of silently retrying.
func TestRetryMetaReported(t *testing.T) {
	phys := sinr.DefaultParams()
	for _, tc := range []struct {
		spec string
		key  string
	}{
		{"uniform:n=40", "side"},
		{"gaussian:n=40", "sigma"},
		{"annulus:n=40", "meanradius"},
		{"dumbbell:n=40", "radius"},
		{"gradient:n=40", "length"},
	} {
		spec, err := Parse(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		net, err := Generate(spec, phys, 11)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if net.Meta["attempts"] < 1 {
			t.Errorf("%s: attempts = %v, want >= 1", tc.spec, net.Meta["attempts"])
		}
		if v, ok := net.Meta[tc.key]; !ok || v <= 0 {
			t.Errorf("%s: meta %q = %v, want positive", tc.spec, tc.key, v)
		}
	}
	// Deterministic families leave Meta nil.
	spec, _ := Parse("grid:n=16")
	net, err := Generate(spec, phys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.Meta != nil {
		t.Errorf("grid reported meta %v, want none", net.Meta)
	}
}
