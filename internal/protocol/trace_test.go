package protocol

import (
	"testing"

	"sinrcast/internal/scenario"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// TestTracedChannelRecordsRounds pins the trace contract: a traced run
// records exactly one entry per physical-layer round (Tx always, Recv
// for subset-resolved rounds), identically across repeat runs, for
// both a nil (default exact) channel and an explicit engine channel.
func TestTracedChannelRecordsRounds(t *testing.T) {
	net, err := scenario.Generate(
		scenario.Spec{Family: "uniform", Params: map[string]float64{"n": 64, "density": 8}},
		sinr.DefaultParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Parse("decay:budget=40")
	if err != nil {
		t.Fatal(err)
	}
	run := func(base Channel) *sim.RoundLog {
		log := &sim.RoundLog{}
		res, err := RunOn(net, spec, 5, TracedChannel(base, log))
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.Rounds != len(log.Tx) || len(log.Tx) != len(log.Recv) {
			t.Fatalf("recorded %d tx / %d recv rounds, metrics say %d",
				len(log.Tx), len(log.Recv), res.Metrics.Rounds)
		}
		return log
	}
	hier, err := NamedChannel("hier")
	if err != nil {
		t.Fatal(err)
	}
	a := run(nil)
	b := run(nil)
	if len(a.Tx) == 0 {
		t.Fatal("no rounds recorded")
	}
	for r := range a.Tx {
		if len(a.Tx[r]) != len(b.Tx[r]) {
			t.Fatalf("round %d: repeat runs diverge (%d vs %d tx)", r, len(a.Tx[r]), len(b.Tx[r]))
		}
		for i := 1; i < len(a.Tx[r]); i++ {
			if a.Tx[r][i] <= a.Tx[r][i-1] {
				t.Fatalf("round %d: recorded tx not strictly increasing", r)
			}
		}
	}
	// Flood runners resolve shrinking uninformed subsets: the trace
	// must capture them.
	sawSubset := false
	for _, recv := range a.Recv {
		if recv != nil {
			sawSubset = true
		}
	}
	if !sawSubset {
		t.Fatal("decay flood recorded no subset-resolved rounds")
	}
	if hlog := run(hier); len(hlog.Tx) == 0 {
		t.Fatal("hier-channel run recorded no rounds")
	}
}
