package exp

import (
	"bytes"
	"sync"
	"testing"

	"sinrcast/internal/broadcast"
	"sinrcast/internal/stats"
)

// memCheckpoint is an in-memory TrialCheckpoint for tests.
type memCheckpoint struct {
	mu     sync.Mutex
	data   map[[3]uint64][]byte
	loads  int
	stores int
	hits   int
}

func newMemCheckpoint() *memCheckpoint {
	return &memCheckpoint{data: make(map[[3]uint64][]byte)}
}

func (m *memCheckpoint) key(expID, point uint64, trial int) [3]uint64 {
	return [3]uint64{expID, point, uint64(trial)}
}

func (m *memCheckpoint) Load(expID, point uint64, trial int) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.loads++
	d, ok := m.data[m.key(expID, point, trial)]
	if ok {
		m.hits++
	}
	return d, ok
}

func (m *memCheckpoint) Store(expID, point uint64, trial int, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stores++
	m.data[m.key(expID, point, trial)] = data
}

func renderTable(t *testing.T, tb *stats.Table) string {
	t.Helper()
	var buf bytes.Buffer
	sink, err := stats.NewSink("csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Emit(tb); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCheckpointResumeByteIdentical is the exp-level resume contract:
// a run restored from a partially-populated checkpoint renders the
// same bytes as an uninterrupted run, and the checkpointed trials are
// not recomputed.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	base := Config{Seed: 5, Trials: 4, Scale: 0.1, Workers: 1, Scenario: "uniform:n=24", Protocol: "decay"}

	plain, err := E13ProtocolMatrix(base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderTable(t, plain)

	// First pass fills the checkpoint; its table must already match
	// (storing must not perturb results).
	cp := newMemCheckpoint()
	withCP := base
	withCP.Checkpoint = cp
	first, err := E13ProtocolMatrix(withCP)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderTable(t, first); got != want {
		t.Fatalf("checkpointed run differs from plain run:\ngot:  %q\nwant: %q", got, want)
	}
	if cp.stores == 0 {
		t.Fatal("no trials were checkpointed")
	}

	// Drop every second entry — the crash left a partial checkpoint —
	// and rerun: restored trials load, dropped ones recompute, bytes
	// must not move.
	i := 0
	for k := range cp.data {
		if i%2 == 0 {
			delete(cp.data, k)
		}
		i++
	}
	kept := len(cp.data)
	cp.loads, cp.hits, cp.stores = 0, 0, 0
	resumed, err := E13ProtocolMatrix(withCP)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderTable(t, resumed); got != want {
		t.Fatalf("resumed run differs from plain run:\ngot:  %q\nwant: %q", got, want)
	}
	if cp.hits != kept {
		t.Fatalf("restored %d trials, want %d (the kept checkpoint entries)", cp.hits, kept)
	}
	if cp.stores == 0 {
		t.Fatal("recomputed trials were not re-checkpointed")
	}
}

// TestCheckpointParallelWorkersIdentical pins that checkpointing under
// concurrent trials neither races nor changes bytes.
func TestCheckpointParallelWorkersIdentical(t *testing.T) {
	base := Config{Seed: 7, Trials: 6, Scale: 0.1, Workers: 1, Scenario: "uniform:n=24", Protocol: "decay"}
	plain, err := E13ProtocolMatrix(base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderTable(t, plain)

	par := base
	par.Workers = 4
	par.Checkpoint = newMemCheckpoint()
	got, err := E13ProtocolMatrix(par)
	if err != nil {
		t.Fatal(err)
	}
	if g := renderTable(t, got); g != want {
		t.Fatalf("parallel checkpointed run differs:\ngot:  %q\nwant: %q", g, want)
	}
}

// TestEncodeTrialRoundTripGuard pins the fidelity guard: exported
// result types round-trip and are checkpointed; types gob silently
// truncates (unexported fields) are rejected so they will always be
// recomputed rather than resumed wrong.
func TestEncodeTrialRoundTripGuard(t *testing.T) {
	res := &broadcast.Result{Rounds: 12, AllInformed: true, InformTime: []int{0, 3, 5}, Phases: 2}
	data, ok := encodeTrial(res)
	if !ok {
		t.Fatal("*broadcast.Result should round-trip")
	}
	back, ok := decodeTrial[*broadcast.Result](data)
	if !ok {
		t.Fatal("decode failed")
	}
	if back.Rounds != 12 || !back.AllInformed || len(back.InformTime) != 3 || back.Phases != 2 {
		t.Fatalf("decoded result mangled: %+v", back)
	}

	if _, ok := encodeTrial(true); !ok {
		t.Fatal("bool trials should round-trip")
	}
	if _, ok := encodeTrial(3.25); !ok {
		t.Fatal("float64 trials should round-trip")
	}

	// E10's invariants and E14's scalingRun carry only unexported
	// fields; gob silently drops those, so the guard must refuse to
	// checkpoint such shapes (they are recomputed on resume).
	type invariants struct{ l1, l2 float64 }
	if _, ok := encodeTrial(invariants{l1: 0.5, l2: 0.25}); ok {
		t.Fatal("unexported-field struct must fail the round-trip guard")
	}

	// A corrupt record recomputes instead of failing.
	if _, ok := decodeTrial[*broadcast.Result]([]byte("garbage")); ok {
		t.Fatal("garbage decoded")
	}
}
