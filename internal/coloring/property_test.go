package coloring

import (
	"testing"
	"testing/quick"

	"sinrcast/internal/rng"
)

func TestPropertyMachineColorAlwaysInPalette(t *testing.T) {
	// Under arbitrary reception patterns the machine terminates with a
	// palette color and never transmits after quitting.
	par := testParams()
	valid := map[float64]bool{par.FinalColor(): true}
	for ph := 0; ph < par.Phases(); ph++ {
		valid[par.ColorOfPhase(ph)] = true
	}
	if err := quick.Check(func(seed uint64, pattern uint64) bool {
		m, err := NewMachine(par, rng.New(seed))
		if err != nil {
			return false
		}
		for r := 0; r < par.TotalRounds(); r++ {
			tx := m.Tick(r)
			if m.Done() && tx {
				return false
			}
			// Pseudo-random reception pattern derived from the bits.
			if !m.Done() && !tx && (pattern>>(uint(r)%64))&1 == 1 {
				m.OnRecv(r)
			}
		}
		m.Finish()
		return m.Done() && valid[m.Color()]
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMachineMonotonePV(t *testing.T) {
	// CurrentP never decreases while active and never exceeds 2·pmax.
	par := testParams()
	if err := quick.Check(func(seed uint64) bool {
		m, err := NewMachine(par, rng.New(seed))
		if err != nil {
			return false
		}
		prev := 0.0
		for r := 0; r < par.TotalRounds(); r++ {
			m.Tick(r)
			p := m.CurrentP()
			if p < prev-1e-15 || p > par.FinalColor()+1e-15 {
				return false
			}
			prev = p
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDefaultParamsAlwaysValid(t *testing.T) {
	if err := quick.Check(func(nRaw uint16, eps8 uint8) bool {
		n := int(nRaw)%5000 + 2
		eps := 0.05 + float64(eps8%90)/100 // in [0.05, 0.95)
		p := DefaultParams(n, 2, eps)
		return p.Validate() == nil
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScheduleCoversAllSegments(t *testing.T) {
	// Every (phase, iter, half) triple appears exactly DTLen or POLen
	// times in the schedule.
	par := testParams()
	m, err := NewMachine(par, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[segment]int{}
	for r := 0; r < par.TotalRounds(); r++ {
		counts[m.segmentOf(r)]++
	}
	wantSegments := par.Phases() * par.CPrime * 2
	if len(counts) != wantSegments {
		t.Fatalf("distinct segments = %d, want %d", len(counts), wantSegments)
	}
	for seg, c := range counts {
		want := par.DTLen()
		if seg.inPO {
			want = par.POLen()
		}
		if c != want {
			t.Fatalf("segment %+v has %d rounds, want %d", seg, c, want)
		}
	}
}
