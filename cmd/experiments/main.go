// Command experiments regenerates every table of EXPERIMENTS.md: the
// measured reproduction of each quantitative claim in the paper
// (E1–E11), the registry-driven sweeps — the cross-family sweep (E12)
// and the protocol×scenario matrix (E13) — and the large-n engine
// scaling study E14 (the only experiment the -engine flag applies to;
// E1–E13 always run the paper's exact engine). Tables stream to a
// pluggable sink: aligned text (default), CSV, or JSON.
//
// Usage:
//
//	experiments                    # full suite (E14's 10⁶ points dominate)
//	experiments -scale 0.5         # half-size networks
//	experiments -only 6            # a single experiment
//	experiments -format json       # machine-readable output
//	experiments -only 12 -scenario annulus:n=96
//	experiments -only 13 -alg nos:budgetmul=2 -scenario uniform:n=48
//	experiments -only 14 -scale 0.01 -engine auto -trials 2
//	experiments -only 14 -cpuprofile e14.pprof   # profile a run (internal/prof)
//	experiments -list              # protocol and scenario catalogues
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"sinrcast/internal/exp"
	"sinrcast/internal/prof"
	"sinrcast/internal/protocol"
	"sinrcast/internal/scenario"
	"sinrcast/internal/stats"
)

func main() {
	profiles := prof.AddFlags(flag.CommandLine)
	var (
		seed    = flag.Uint64("seed", 2014, "experiment seed")
		trials  = flag.Int("trials", 5, "trials per data point")
		scale   = flag.Float64("scale", 1, "network size multiplier")
		only    = flag.Int("only", 0, "run a single experiment (1-14), 0 = all")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0),
			"concurrent trials per data point (tables are identical for any value)")
		format = flag.String("format", "text", "output format: text|csv|json")
		spec   = flag.String("scenario", "",
			"restrict E12/E13 to one scenario spec (default: every registered family)")
		alg = flag.String("alg", "",
			"restrict E13 to one protocol spec (default: every registered protocol)")
		engine = flag.String("engine", "auto",
			"physical engine for E14: exact|grid|hier|auto (E1-E13 always use the exact engine)")
		list = flag.Bool("list", false, "list registered protocols and scenario families and exit")
	)
	flag.Parse()

	stopProf, err := profiles.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
	}()

	if *list {
		fmt.Print("protocols (-alg)\n\n")
		fmt.Print(protocol.Describe())
		fmt.Print("\nscenario families (-scenario)\n\n")
		fmt.Print(scenario.Describe())
		return
	}

	// Validate restriction specs up front: a typo must fail fast with a
	// usage exit, not abort E12/E13 after minutes of earlier experiments.
	if *spec != "" {
		sp, err := scenario.Parse(*spec)
		if err == nil {
			err = scenario.Validate(sp)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
	}
	if *alg != "" {
		ps, err := protocol.Parse(*alg)
		if err == nil {
			err = protocol.Validate(ps)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
	}

	if _, err := protocol.NamedChannel(*engine); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	cfg := exp.Config{Seed: *seed, Trials: *trials, Scale: *scale, Workers: *workers,
		Scenario: *spec, Protocol: *alg, Engine: *engine}
	runners := map[int]struct {
		name string
		run  func(exp.Config) (*stats.Table, error)
	}{
		1:  {"E1", exp.E1NoSBroadcastVsD},
		2:  {"E2", exp.E2SBroadcastScaling},
		3:  {"E3", exp.E3Lemma1},
		4:  {"E4", exp.E4Lemma2},
		5:  {"E5", exp.E5ColoringRounds},
		6:  {"E6", exp.E6GeometryImpact},
		7:  {"E7", exp.E7BaselineComparison},
		8:  {"E8", exp.E8Applications},
		9:  {"E9", exp.E9SuccessProbability},
		10: {"E10", exp.E10ModelRobustness},
		11: {"E11", exp.E11ColoringAblation},
		12: {"E12", exp.E12CrossFamilySweep},
		13: {"E13", exp.E13ProtocolMatrix},
		14: {"E14", exp.E14LargeNScaling},
	}
	ids := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
	if *only != 0 {
		if _, ok := runners[*only]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: no experiment %d\n", *only)
			os.Exit(2)
		}
		ids = []int{*only}
	}
	sink, err := stats.NewSink(*format, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	for _, id := range ids {
		r := runners[id]
		tb, err := r.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", r.name, err)
			os.Exit(1)
		}
		if err := sink.Emit(tb); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: emitting %s: %v\n", r.name, err)
			os.Exit(1)
		}
	}
	if err := sink.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
