package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestDisabledByDefault(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := AddFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestBadPathFailsFast(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := AddFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "x.out")}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Start(); err == nil {
		t.Fatal("want error for unwritable cpu profile path")
	}
}
