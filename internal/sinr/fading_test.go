package sinr

import (
	"testing"

	"sinrcast/internal/geom"
)

func TestFadingEngineSingleLink(t *testing.T) {
	// A close link succeeds most rounds under fading; a link at the
	// deterministic range boundary succeeds only sometimes (the fading
	// coefficient must exceed 1).
	eu := geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.2, Y: 0}})
	e, err := NewFadingEngine(eu, DefaultParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 2 {
		t.Fatalf("N = %d", e.N())
	}
	succ := 0
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		if len(e.Resolve([]int{0})) == 1 {
			succ++
		}
	}
	rate := float64(succ) / rounds
	// Signal at 0.2 is 125x the threshold: P(exp >= 1/125) ~ 0.992.
	if rate < 0.9 {
		t.Fatalf("close-link fading success rate = %v, want > 0.9", rate)
	}
}

func TestFadingEngineBoundaryLink(t *testing.T) {
	eu := geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1.0, Y: 0}})
	e, err := NewFadingEngine(eu, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	succ := 0
	const rounds = 5000
	for i := 0; i < rounds; i++ {
		if len(e.Resolve([]int{0})) == 1 {
			succ++
		}
	}
	rate := float64(succ) / rounds
	// At distance 1 the mean SNR equals the threshold: success iff the
	// exponential coefficient >= 1, so the rate should be ~e^-1.
	if rate < 0.25 || rate > 0.5 {
		t.Fatalf("boundary-link fading rate = %v, want ~0.37", rate)
	}
}

func TestFadingEngineTransmitterCannotReceive(t *testing.T) {
	eu := geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.2, Y: 0}})
	e, err := NewFadingEngine(eu, DefaultParams(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		for _, r := range e.Resolve([]int{0, 1}) {
			t.Fatalf("reception between two transmitters: %+v", r)
		}
	}
}

func TestFadingEngineEmptyAndErrors(t *testing.T) {
	eu := geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}})
	e, err := NewFadingEngine(eu, DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec := e.Resolve(nil); rec != nil {
		t.Fatal("Resolve(nil) should be nil")
	}
	bad := DefaultParams()
	bad.Noise = 0
	if _, err := NewFadingEngine(eu, bad, 1); err == nil {
		t.Fatal("want error for invalid params")
	}
}

func TestFadingDeterministicInSeed(t *testing.T) {
	eu := geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.8, Y: 0}, {X: 1.6, Y: 0}})
	a, err := NewFadingEngine(eu, DefaultParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFadingEngine(eu, DefaultParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		ra := a.Resolve([]int{0})
		rb := b.Resolve([]int{0})
		if len(ra) != len(rb) {
			t.Fatalf("fading nondeterministic at round %d", i)
		}
	}
}

func TestWeakDeviceEngineFiltersLongLinks(t *testing.T) {
	p := DefaultParams()
	// Distance 0.8 > commRadius (2/3): plain engine decodes, weak
	// device drops.
	eu := geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.8, Y: 0}})
	plain, err := NewEngine(eu, p)
	if err != nil {
		t.Fatal(err)
	}
	if rec := plain.Resolve([]int{0}); len(rec) != 1 {
		t.Fatal("plain engine should decode at 0.8")
	}
	weak, err := NewWeakDeviceEngine(eu, p, p.CommRadius())
	if err != nil {
		t.Fatal(err)
	}
	if weak.N() != 2 {
		t.Fatalf("N = %d", weak.N())
	}
	if rec := weak.Resolve([]int{0}); len(rec) != 0 {
		t.Fatalf("weak device decoded beyond cutoff: %+v", rec)
	}
}

func TestWeakDeviceEngineKeepsShortLinks(t *testing.T) {
	p := DefaultParams()
	eu := geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}})
	weak, err := NewWeakDeviceEngine(eu, p, p.CommRadius())
	if err != nil {
		t.Fatal(err)
	}
	if rec := weak.Resolve([]int{0}); len(rec) != 1 {
		t.Fatalf("weak device dropped an in-range link: %+v", rec)
	}
}

func TestWeakDeviceEngineRejectsBadCutoff(t *testing.T) {
	eu := geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}})
	if _, err := NewWeakDeviceEngine(eu, DefaultParams(), 0); err == nil {
		t.Fatal("want error for zero cutoff")
	}
}
