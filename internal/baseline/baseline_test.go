package baseline

import (
	"math"
	"testing"

	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
)

func genUniform(t testing.TB, n int, density float64, seed uint64) *network.Network {
	t.Helper()
	net, err := netgen.Uniform(netgen.Config{Params: sinr.DefaultParams(), Seed: seed}, n, density)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestDecayLevels(t *testing.T) {
	d := NewDecay(256)
	if d.L != 9 {
		t.Fatalf("L = %d, want 9", d.L)
	}
	if NewDecay(1).L < 2 {
		t.Fatal("L floor violated")
	}
	// The sweep starts at 1/2 and halves each round.
	if p := d.TxProb(0, 10, 10); p != 0.5 {
		t.Fatalf("first level = %v", p)
	}
	if p := d.TxProb(0, 11, 10); p != 0.25 {
		t.Fatalf("second level = %v", p)
	}
	// Wraps after L rounds.
	if p := d.TxProb(0, 10+d.L, 10); p != 0.5 {
		t.Fatalf("wrap level = %v", p)
	}
	if d.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestDaumStyleLevelsGrowWithGranularity(t *testing.T) {
	cfg := netgen.Config{Params: sinr.DefaultParams(), Seed: 1}
	smooth, err := netgen.Path(cfg, 32, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	rough, err := netgen.ExponentialChain(cfg, 32, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ls := NewDaumStyle(smooth).L
	lr := NewDaumStyle(rough).L
	if lr <= ls {
		t.Fatalf("levels should grow with Rs: smooth=%d rough=%d", ls, lr)
	}
	// Exponential chain with ratio 1/2 and 32 stations: Rs ~ 2^30, so
	// levels ~ alpha*30 + log n.
	if lr < 60 {
		t.Fatalf("rough levels = %d, want >= 60", lr)
	}
}

func TestRunFloodDecayUniform(t *testing.T) {
	net := genUniform(t, 64, 8, 3)
	res, err := RunFlood(net, NewDecay(net.N()), 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("decay flood incomplete after %d rounds", res.Rounds)
	}
	if res.InformTime[0] != 0 {
		t.Fatal("source inform time wrong")
	}
}

func TestRunFloodDensityOracle(t *testing.T) {
	net := genUniform(t, 64, 8, 4)
	res, err := RunFlood(net, NewDensityOracle(net, 0), 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("oracle flood incomplete after %d rounds", res.Rounds)
	}
}

func TestRunFloodGridTDMA(t *testing.T) {
	net := genUniform(t, 64, 8, 5)
	g, err := NewGridTDMA(net)
	if err != nil {
		t.Fatal(err)
	}
	if g.Period() < 4 {
		t.Fatalf("period = %d, want >= 4", g.Period())
	}
	res, err := RunFlood(net, g, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("tdma flood incomplete after %d rounds", res.Rounds)
	}
}

func TestGridTDMAOneTransmitterPerCell(t *testing.T) {
	net := genUniform(t, 64, 8, 6)
	g, err := NewGridTDMA(net)
	if err != nil {
		t.Fatal(err)
	}
	informed := make([]bool, net.N())
	for i := range informed {
		informed[i] = true
	}
	for tr := 0; tr < g.Period(); tr++ {
		g.Prepare(tr, informed)
		perCell := map[int64]int{}
		for i := 0; i < net.N(); i++ {
			if g.TxProb(i, tr, 0) == 1 {
				perCell[g.cell[i]]++
			}
		}
		for c, cnt := range perCell {
			if cnt != 1 {
				t.Fatalf("cell %d has %d transmitters in slot %d", c, cnt, tr)
			}
		}
	}
}

func TestDensityOraclePrepare(t *testing.T) {
	net := genUniform(t, 32, 8, 7)
	o := NewDensityOracle(net, 0.5)
	informed := make([]bool, net.N())
	informed[0] = true
	o.Prepare(0, informed)
	// Only station 0 informed: its density is 1, others 0.
	if p := o.TxProb(0, 0, 0); p != 0.5 {
		t.Fatalf("lone station prob = %v, want 0.5", p)
	}
	// Probability never exceeds 1 even with C > density.
	o2 := NewDensityOracle(net, 10)
	o2.Prepare(0, informed)
	if p := o2.TxProb(0, 0, 0); p != 1 {
		t.Fatalf("capped prob = %v", p)
	}
}

func TestRunFloodErrors(t *testing.T) {
	net := genUniform(t, 16, 8, 8)
	if _, err := RunFlood(net, NewDecay(16), 1, -1, 0); err == nil {
		t.Fatal("want error for bad source")
	}
	if _, err := RunFlood(net, NewDecay(16), 1, 0, -5); err == nil {
		t.Fatal("want error for negative budget")
	}
}

func TestRunFloodBudgetStops(t *testing.T) {
	net := genUniform(t, 64, 8, 9)
	res, err := RunFlood(net, NewDecay(net.N()), 1, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllInformed {
		t.Fatal("64 stations cannot be informed in 3 rounds")
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
}

func TestRunFloodDeterministic(t *testing.T) {
	net := genUniform(t, 48, 8, 10)
	a, err := RunFlood(net, NewDecay(net.N()), 77, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFlood(net, NewDecay(net.N()), 77, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("nondeterministic: %d vs %d", a.Rounds, b.Rounds)
	}
}

func TestDaumSlowerOnRoughNetwork(t *testing.T) {
	// E6 shape in miniature: on an exponential chain the Daum-style
	// sweep pays for its extra levels relative to plain decay sized for
	// the same n.
	cfg := netgen.Config{Params: sinr.DefaultParams(), Seed: 2}
	chain, err := netgen.ExponentialChain(cfg, 24, 0.5, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	daum, err := RunFlood(chain, NewDaumStyle(chain), 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !daum.AllInformed {
		t.Fatalf("daum incomplete after %d rounds", daum.Rounds)
	}
	dec, err := RunFlood(chain, NewDecay(chain.N()), 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.AllInformed {
		t.Fatalf("decay incomplete after %d rounds", dec.Rounds)
	}
	if daum.Rounds <= dec.Rounds {
		t.Logf("note: daum=%d decay=%d (levels daum=%d decay=%d)",
			daum.Rounds, dec.Rounds, NewDaumStyle(chain).L, NewDecay(chain.N()).L)
	}
	lvl := NewDaumStyle(chain).L
	if lvl < int(3*math.Log2(1000)) {
		t.Fatalf("expected many levels on rough chain, got %d", lvl)
	}
}
