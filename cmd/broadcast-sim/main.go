// Command broadcast-sim runs one registered protocol on one generated
// network and reports the outcome: rounds, phases, inform-time spread
// and energy (transmission counts). Both axes are declarative specs
// backed by registries — the protocol comes from internal/protocol
// (-alg), the network from internal/scenario (-scenario) — and -list
// prints both catalogues.
//
// Usage:
//
//	broadcast-sim -alg nos                -scenario uniform:n=96
//	broadcast-sim -alg s:source=5         -scenario path:n=48
//	broadcast-sim -alg decay              -scenario expchain:n=32,ratio=0.6
//	broadcast-sim -alg wakeup:wakers=4    -scenario clusters:k=3,m=16
//	broadcast-sim -alg nos:budgetmul=2    -scenario dumbbell:n=96
//	broadcast-sim -alg decay -engine hier -scenario uniform:n=100000,density=16
//	broadcast-sim -list
//
// The -engine flag selects the physical layer for any protocol:
// "exact" (the paper's model and the default), the approximate "grid"
// or "hier" engines, or "auto" (exact below a few thousand stations,
// grid at mid scale, the hierarchical far field beyond — see the
// engine-selection notes in the repository README). -cpuprofile and
// -memprofile write pprof profiles of the run (internal/prof).
//
// Exit codes: 2 for usage errors — malformed or unknown specs,
// out-of-range values against declared bounds, protocol parameters
// that mismatch the generated network (source ≥ n), and scenario
// parameters whose physics-dependent bounds the builder rejects
// (dumbbell radius beyond the comm radius); 1 for runtime failures
// (e.g. a densifying generator exhausting its connectivity retries).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"sinrcast/internal/prof"
	"sinrcast/internal/protocol"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sinr"
	"sinrcast/internal/stats"
)

// Exit codes of the unified error path: every failure goes through
// die, usage errors with exitUsage, runtime failures with exitRun.
const (
	exitRun   = 1
	exitUsage = 2
)

// die prints one formatted error line and exits with the given code —
// the single error exit of the command.
func die(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "broadcast-sim: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	profiles := prof.AddFlags(flag.CommandLine)
	var (
		alg    = flag.String("alg", "nos", "protocol spec: name[:param=value,...]; see -list")
		spec   = flag.String("scenario", "uniform:n=96", "scenario spec: family[:name=value,...]; see -list")
		seed   = flag.Uint64("seed", 1, "seed for generator and protocol")
		engine = flag.String("engine", "exact", "physical engine: exact|grid|hier|auto")
		list   = flag.Bool("list", false, "list registered protocols and scenario families with their parameters and exit")
	)
	flag.Parse()

	stopProf, err := profiles.Start()
	if err != nil {
		die(exitUsage, "%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "broadcast-sim: %v\n", err)
		}
	}()

	if *list {
		fmt.Print("protocols (-alg)\n\n")
		fmt.Print(protocol.Describe())
		fmt.Print("\nscenario families (-scenario)\n\n")
		fmt.Print(scenario.Describe())
		return
	}

	ps, err := protocol.Parse(*alg)
	if err != nil {
		die(exitUsage, "%v", err)
	}
	if err := protocol.Validate(ps); err != nil {
		die(exitUsage, "%v", err)
	}
	sp, err := scenario.Parse(*spec)
	if err != nil {
		die(exitUsage, "%v", err)
	}
	if err := scenario.Validate(sp); err != nil {
		die(exitUsage, "%v", err)
	}
	channel, err := protocol.NamedChannel(*engine)
	if err != nil {
		die(exitUsage, "%v", err)
	}
	net, err := scenario.Generate(sp, sinr.DefaultParams(), *seed)
	if err != nil {
		// Physics-dependent parameter rejections from the builder are
		// usage errors; exhausted connectivity retries are runtime.
		var se *scenario.SpecError
		if errors.As(err, &se) {
			die(exitUsage, "%v", err)
		}
		die(exitRun, "%v", err)
	}
	res, err := protocol.RunOn(net, ps, *seed, channel)
	if err != nil {
		// Spec-vs-network mismatches (source ≥ n, too many wakers) are
		// usage errors like any other bad spec.
		var se *protocol.SpecError
		if errors.As(err, &se) {
			die(exitUsage, "%v", err)
		}
		die(exitRun, "%v", err)
	}

	d, _ := net.Diameter()
	fmt.Printf("algorithm      %s\n", ps.String())
	fmt.Printf("network        %s n=%d D=%d Rs=%.3g\n", sp.String(), net.N(), d, net.Granularity())
	// The canonical physics key: paste it (with -scenario/-alg/-seed)
	// to reproduce this run; it is also the engine-cache address the
	// sinrcastd service shares warmed engines under.
	fmt.Printf("physics        %s\n", sinr.EngineKey(*engine, net.Params))
	fmt.Printf("all informed   %v\n", res.AllInformed)
	fmt.Printf("rounds         %d\n", res.Rounds)
	if res.Phases > 0 {
		fmt.Printf("phases         %d\n", res.Phases)
	}
	fmt.Printf("transmissions  %d (%.2f per station)\n",
		res.Metrics.Transmissions, float64(res.Metrics.Transmissions)/float64(net.N()))
	fmt.Printf("receptions     %d\n", res.Metrics.Receptions)

	if res.InformTime != nil {
		var times []float64
		for _, it := range res.InformTime {
			if it >= 0 {
				times = append(times, float64(it))
			}
		}
		fmt.Printf("inform times   %s\n", stats.FormatSummary(stats.Summarize(times)))
	}
}
