package sim

import (
	"fmt"
	"io"

	"sinrcast/internal/sinr"
)

// CountingTracer records per-round transmitter and reception counts.
type CountingTracer struct {
	TxPerRound  []int
	RecPerRound []int
}

var _ Tracer = (*CountingTracer)(nil)

// OnRound implements Tracer.
func (c *CountingTracer) OnRound(_ int, tx []int, rec []sinr.Reception) {
	c.TxPerRound = append(c.TxPerRound, len(tx))
	c.RecPerRound = append(c.RecPerRound, len(rec))
}

// WriterTracer streams a human-readable round log, for debugging and the
// CLIs' -v mode.
type WriterTracer struct {
	W io.Writer
	// Every limits output to rounds divisible by Every (0 = every round).
	Every int
}

var _ Tracer = (*WriterTracer)(nil)

// OnRound implements Tracer.
func (w *WriterTracer) OnRound(t int, tx []int, rec []sinr.Reception) {
	if w.Every > 1 && t%w.Every != 0 {
		return
	}
	fmt.Fprintf(w.W, "round %6d: %3d tx, %3d rx", t, len(tx), len(rec))
	if len(rec) > 0 && len(rec) <= 8 {
		fmt.Fprint(w.W, " [")
		for i, r := range rec {
			if i > 0 {
				fmt.Fprint(w.W, " ")
			}
			fmt.Fprintf(w.W, "%d<-%d", r.Receiver, r.Transmitter)
		}
		fmt.Fprint(w.W, "]")
	}
	fmt.Fprintln(w.W)
}

// MultiTracer fans out to several tracers.
type MultiTracer []Tracer

var _ Tracer = (MultiTracer)(nil)

// OnRound implements Tracer.
func (m MultiTracer) OnRound(t int, tx []int, rec []sinr.Reception) {
	for _, tr := range m {
		tr.OnRound(t, tx, rec)
	}
}

// RoundLog records the physical-layer rounds of a run: per resolved
// round the transmitter set and, for subset rounds, the receiver
// subset (nil for full resolution). Captured traces replay protocol-
// realistic transmitter churn against an engine without re-running the
// protocol — the cross-round benchmarks and the delta-path regression
// gate are built on it.
type RoundLog struct {
	Tx   [][]int
	Recv [][]int
}

func (l *RoundLog) record(tx, recv []int) {
	l.Tx = append(l.Tx, append([]int(nil), tx...))
	if recv == nil {
		l.Recv = append(l.Recv, nil)
	} else {
		// Keep an empty subset distinguishable from nil (= full
		// resolution): a round resolved for zero receivers is near
		// free and must replay that way.
		l.Recv = append(l.Recv, append(make([]int, 0, len(recv)), recv...))
	}
}

// RecordRounds wraps phys so every Resolve/ResolveFor call of a run
// appends its round to log. The wrapper preserves the subset-
// resolution capability: if phys implements SubsetResolver the result
// does too, so runners keep their active-receiver optimizations while
// being traced.
func RecordRounds(phys Resolver, log *RoundLog) Resolver {
	if sub, ok := phys.(SubsetResolver); ok {
		return &recordingSubsetResolver{recordingResolver{phys, log}, sub}
	}
	return &recordingResolver{phys, log}
}

type recordingResolver struct {
	inner Resolver
	log   *RoundLog
}

func (r *recordingResolver) Resolve(tx []int) []sinr.Reception {
	r.log.record(tx, nil)
	return r.inner.Resolve(tx)
}

func (r *recordingResolver) N() int { return r.inner.N() }

type recordingSubsetResolver struct {
	recordingResolver
	sub SubsetResolver
}

func (r *recordingSubsetResolver) ResolveFor(tx []int, receivers []int) []sinr.Reception {
	r.log.record(tx, receivers)
	return r.sub.ResolveFor(tx, receivers)
}

// ObserveRounds wraps phys so fn observes every resolved round: it is
// called after each Resolve/ResolveFor with the 0-based round index
// (counted per wrapper), the transmitter count, and the reception
// count. Like RecordRounds, the wrapper preserves the subset-
// resolution capability. The serve layer streams job progress through
// it and aborts canceled jobs from inside fn — a panic out of fn
// unwinds through the wrapper untouched, so a caller can recover its
// own sentinel above the run.
func ObserveRounds(phys Resolver, fn func(round, tx, rec int)) Resolver {
	if sub, ok := phys.(SubsetResolver); ok {
		return &observedSubsetResolver{observedResolver{inner: phys, fn: fn}, sub}
	}
	return &observedResolver{inner: phys, fn: fn}
}

type observedResolver struct {
	inner Resolver
	fn    func(round, tx, rec int)
	round int
}

func (o *observedResolver) Resolve(tx []int) []sinr.Reception {
	rec := o.inner.Resolve(tx)
	r := o.round
	o.round++
	o.fn(r, len(tx), len(rec))
	return rec
}

func (o *observedResolver) N() int { return o.inner.N() }

type observedSubsetResolver struct {
	observedResolver
	sub SubsetResolver
}

func (o *observedSubsetResolver) ResolveFor(tx []int, receivers []int) []sinr.Reception {
	rec := o.sub.ResolveFor(tx, receivers)
	r := o.round
	o.round++
	o.fn(r, len(tx), len(rec))
	return rec
}
