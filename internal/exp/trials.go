package exp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sinrcast/internal/rng"
)

// Trial concurrency and deterministic seeding.
//
// Every repetition ("trial") of an experiment data point is an
// independent unit of work: it builds its own SINR engine, protocols
// and RNG streams, and only reads the immutable *network.Network it is
// given. Trials therefore run concurrently on up to Config.Workers
// goroutines. Determinism is preserved by construction: a trial's seed
// is a pure function of (Config.Seed, experiment id, data-point id,
// trial index) — never of scheduling — and results are collected into
// a slice indexed by trial, so every table is bit-identical for
// Workers=1 and Workers=N. TestTablesIdenticalAcrossWorkers pins this
// down.

// workers resolves Config.Workers: values ≤ 0 select GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// trialSeed derives the RNG seed of one trial from its experiment
// coordinates. expID is the experiment number (1–13); point enumerates
// the data points of the experiment (and, where several algorithms
// share a data point, the algorithm slot — see each runner; the
// registry sweeps E12/E13 key points by family/protocol name hashes).
func (c Config) trialSeed(expID, point uint64, trial int) uint64 {
	return rng.Derive(c.Seed, expID, point, uint64(trial))
}

// runNTrials executes fn once per trial index 0..n-1, concurrently up
// to cfg.workers(), and returns the results in trial order. fn receives
// the trial's derived seed and must not touch shared mutable state
// (construct engines, policies and RNGs inside fn). If any trial fails,
// the error of the lowest-indexed failing trial is returned —
// deterministic regardless of which goroutine hit it first.
func runNTrials[T any](cfg Config, n int, expID, point uint64, fn func(seed uint64) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for tr := 0; tr < n; tr++ {
			out[tr], errs[tr] = runOneTrial(cfg, expID, point, tr, fn)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for i := 0; i < w; i++ {
			go func() {
				defer wg.Done()
				for {
					tr := int(next.Add(1)) - 1
					if tr >= n {
						return
					}
					out[tr], errs[tr] = runOneTrial(cfg, expID, point, tr, fn)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// runTrials is runNTrials over the configured cfg.trials() count.
func runTrials[T any](cfg Config, expID, point uint64, fn func(seed uint64) (T, error)) ([]T, error) {
	return runNTrials(cfg, cfg.trials(), expID, point, fn)
}
