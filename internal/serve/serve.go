// Package serve is the sinrcastd control plane: simulation as a
// service over the same registries the CLIs use. Clients submit a
// scenario spec, a protocol spec (or an experiment-suite selection),
// physics overrides, and a seed; the daemon answers job handles that
// can be polled, canceled, streamed round-by-round as NDJSON, and
// rendered as the text/CSV/JSON tables of stats.NewSink — byte-
// identical to the batch CLIs for the same configuration.
//
// Two layers do the heavy lifting. internal/jobs bounds admission: a
// fixed-depth queue that rejects with 429 + Retry-After when full, a
// fixed worker pool, per-job cancellation, and a graceful drain on
// shutdown. The warm-engine Cache content-addresses deployments by
// (scenario spec, engine+physics key, seed): a miss generates the
// topology and constructs the engine once; every request — including
// the missing one — receives a ~sub-microsecond clone sharing the
// immutable topology slabs, so repeated studies over one deployment
// pay generation and construction exactly once.
//
// Crash safety is opt-in via Config.JournalPath (Open instead of New):
// an append-only NDJSON write-ahead journal records every accepted job
// spec — fsynced before the admission response — plus per-trial rows,
// experiment-trial checkpoints, and terminal states, with group-commit
// batching the fsyncs. Restart replay drops completed jobs, rebuilds
// the hottest cache keys so early submissions hit warm, and re-queues
// in-flight jobs under their original ids, resuming from the journaled
// trial high-water mark; because per-trial seeds derive from (seed,
// trial), resumed tables are byte-identical to uninterrupted runs.
// Journal failures degrade /healthz but never fail jobs: a bounded
// reopen path recovers from transient errors, and records lost in the
// meantime stay counted (journal_dropped). /readyz answers 503 during
// replay and drain; a per-key circuit
// breaker fast-fails (422) submissions whose cache key keeps failing
// to build; and the 429 Retry-After hint tracks the measured drain
// rate. The chaos suite exercises all of it through the deterministic
// fault points of internal/faultinject.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sinrcast/internal/faultinject"
	"sinrcast/internal/jobs"
	"sinrcast/internal/stats"
)

// Config sizes a Server. The zero value is serviceable: jobs.Config
// defaults, a DefaultCacheBytes cache, progress every 256 rounds, no
// journal.
type Config struct {
	// Jobs configures the admission queue and worker pool.
	Jobs jobs.Config
	// CacheBytes is the warm-engine cache budget: 0 selects
	// DefaultCacheBytes, negative disables caching.
	CacheBytes int64
	// ProgressEvery is the default progress-event cadence in resolved
	// rounds for run jobs that do not set their own (0 selects 256,
	// negative disables progress events).
	ProgressEvery int
	// JournalPath, when set, enables the crash-safety journal: accepted
	// job specs, completed trials, and terminal states are logged to
	// this NDJSON file, and Open replays it on restart. Empty disables
	// journaling (New never journals).
	JournalPath string
	// RewarmHot caps how many of the journal's hottest cache keys are
	// rebuilt during replay (0 selects 8, negative disables rewarming).
	RewarmHot int
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = 256
	}
	if c.RewarmHot == 0 {
		c.RewarmHot = 8
	}
	return c
}

// jobState pairs a jobs.Handle with the serve-side artifacts: the
// original request, the event log feeding /stream, and the result
// table.
type jobState struct {
	id     string
	req    *JobRequest
	handle *jobs.Handle
	log    *eventLog

	// Resume state, populated only by journal replay: the contiguous
	// prefix of completed run-job trial rows, and the checkpointed
	// experiment trial results keyed by (expID, point, trial). Both are
	// read-only once the job starts.
	resumeRows   [][]string
	resumeTrials map[trialKey][]byte

	mu    sync.Mutex
	table *stats.Table
}

// trialKey addresses one checkpointed experiment trial.
type trialKey struct {
	exp, point uint64
	trial      int
}

func (st *jobState) setTable(t *stats.Table) {
	st.mu.Lock()
	st.table = t
	st.mu.Unlock()
	st.log.append(event{Type: "table", Job: st.id, Table: t})
}

func (st *jobState) getTable() *stats.Table {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.table
}

// Server is the daemon state: manager, cache, journal, and the job
// registry.
type Server struct {
	cfg   Config
	mgr   *jobs.Manager
	cache *Cache

	// journal is nil unless the server was built by Open with a
	// JournalPath; every method on it is nil-safe.
	journal *Journal

	// ready is false while journal replay runs and flips true when the
	// daemon can serve results consistently; draining flips true when
	// Shutdown begins. /readyz reports 200 only for ready && !draining.
	ready         atomic.Bool
	draining      atomic.Bool
	replayDone    chan struct{}
	replaySkipped atomic.Int64

	// renderErrs counts result renderings whose sink reported a write
	// or flush error after the status line was already committed — the
	// only remaining way to surface a mid-body failure.
	renderErrs atomic.Int64

	// admitMu fences admission against Shutdown: admit holds the read
	// lock from the draining check through watcher registration and the
	// accept-record append, and Shutdown takes the write lock after
	// flipping draining — so no watchers.Add can race watchers.Wait and
	// no accept record can land after the journal closes.
	admitMu sync.RWMutex

	// watchers tracks the per-job terminal-state goroutines so Shutdown
	// can wait for the last "done" journal record before closing the
	// journal.
	watchers sync.WaitGroup

	mu     sync.Mutex
	states map[string]*jobState

	// runHook, when set by tests, runs at the start of every job body
	// with the job id; it lets tests gate job execution
	// deterministically (backpressure, cancellation, shutdown).
	runHook func(id string)
}

// New builds a Server with its own jobs.Manager and warm-engine cache,
// without journaling or replay. Use Open for a crash-safe daemon.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	done := make(chan struct{})
	close(done)
	s := &Server{
		cfg:        cfg,
		mgr:        jobs.New(cfg.Jobs),
		cache:      NewCache(cfg.CacheBytes),
		states:     make(map[string]*jobState),
		replayDone: done,
	}
	s.ready.Store(true)
	return s
}

// Open builds a Server and, when cfg.JournalPath is set, recovers the
// previous incarnation's state from the journal before the new one is
// ready: the hottest cache keys are rebuilt and every job that was
// accepted but not terminal at the crash is re-queued under its
// original id, resuming at its completed-trial high-water mark. Replay
// runs in the background — the HTTP listener can come up immediately —
// and /readyz answers 503 until it finishes.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if s.cfg.JournalPath == "" {
		return s, nil
	}
	recs, skipped, err := ReadJournalRecords(s.cfg.JournalPath)
	if err != nil {
		return nil, fmt.Errorf("serve: reading journal: %w", err)
	}
	// Reserve every journaled id before any traffic can reach Submit:
	// replay runs in the background while handleSubmit keeps accepting,
	// and a fresh id colliding with an in-flight journaled id would make
	// its Resubmit fail — and hand clients polling the original id a
	// different job.
	s.mgr.ReserveThrough(maxJournalID(recs))
	j, err := OpenJournal(s.cfg.JournalPath)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	s.journal = j
	s.ready.Store(false)
	s.replayDone = make(chan struct{})
	go s.replay(recs, skipped)
	return s, nil
}

// ReplayDone returns a channel closed once journal replay has finished
// (immediately for servers without a journal). Tests and orchestration
// wait on it; clients should poll /readyz.
func (s *Server) ReplayDone() <-chan struct{} { return s.replayDone }

// Cache exposes the warm-engine cache (benchmarks and tests).
func (s *Server) Cache() *Cache { return s.cache }

// Journal exposes the write-ahead journal; nil without one (tests).
func (s *Server) Journal() *Journal { return s.journal }

// Shutdown drains the daemon: /readyz starts failing, submissions are
// rejected, queued jobs fail cleanly, in-flight jobs finish (or are
// force-canceled when ctx expires), their terminal states are
// journaled, and the journal is flushed and closed. See
// jobs.Manager.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Replay observes draining and winds down promptly, leaving
	// not-yet-re-queued jobs for the next incarnation; waiting for it
	// here means every job replay did re-queue is inside the manager —
	// and its journal records appended — before the drain and the
	// journal close below.
	select {
	case <-s.replayDone:
	case <-ctx.Done():
	}
	// Barrier: an admission that passed the draining check holds the
	// read lock until its watcher is registered and its accept record
	// appended, so past this point no watchers.Add races watchers.Wait
	// and no accept record chases a closed journal.
	s.admitMu.Lock()
	s.admitMu.Unlock()
	err := s.mgr.Shutdown(ctx)
	s.watchers.Wait()
	// A journal failure is a recorded degradation (Err, /healthz), not
	// a shutdown failure: the drain completed either way.
	s.journal.Close()
	return err
}

// Handler returns the HTTP API:
//
//	GET    /healthz              liveness (+ journal degradation report)
//	GET    /readyz               readiness: 503 during replay and drain
//	POST   /v1/jobs              submit a JobRequest → 202 {id, state}
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/jobs/{id}/stream  NDJSON event stream (replays history)
//	GET    /v1/jobs/{id}/result  result table; ?format=text|csv|json, ?wait=1
//	GET    /v1/cache             cache + queue statistics
//	POST   /rpc                  JSON-RPC 2.0 (job.submit/status/cancel/list, cache.stats)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/cache", s.handleCacheStats)
	mux.HandleFunc("POST /rpc", s.handleRPC)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}

// handleHealthz is liveness plus the degradation report: a daemon with
// a sticky journal error or sink render failures is alive (200) but
// says so, so operators see a crash-safety gap before the next crash.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"ok": true}
	if jerr := s.journal.Err(); jerr != nil {
		body["journal_error"] = jerr.Error()
		body["degraded"] = true
	}
	if n := s.journal.Dropped(); n > 0 {
		// Records lost to a journal failure stay visible even after a
		// reopen recovers the file: the crash-safety gap is permanent
		// for those jobs.
		body["journal_dropped"] = n
		body["degraded"] = true
	}
	if n := s.renderErrs.Load(); n > 0 {
		body["render_errors"] = n
	}
	if n := s.replaySkipped.Load(); n > 0 {
		body["replay_skipped"] = n
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz gates load balancing: 503 while journal replay is still
// rebuilding state and again once Shutdown starts draining. Liveness
// (/healthz) stays 200 through both.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := s.ready.Load() && !s.draining.Load()
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"ready":    ready,
		"replayed": s.ready.Load(),
		"draining": s.draining.Load(),
	})
}

// submit validates and admits a request, returning the job state or an
// admission error. Both transports (REST and RPC) route through it.
func (s *Server) submit(req *JobRequest) (*jobState, error) {
	return s.admit(req, "", nil, nil)
}

// admit is submit plus the replay entry point: a non-empty id re-queues
// a journaled job under its original id with its resume state.
func (s *Server) admit(req *JobRequest, id string, resumeRows [][]string, resumeTrials map[trialKey][]byte) (*jobState, error) {
	if err := req.validate(); err != nil {
		return nil, &badRequestError{err}
	}
	// A key whose builds keep failing fast-fails here, at admission —
	// the job would only rediscover the open circuit at run time, after
	// occupying a queue slot.
	if key, ok := req.runCacheKey(); ok {
		if err := s.cache.Negative(key); err != nil {
			return nil, err
		}
	}
	// The admission section pairs a draining check with admitMu's read
	// lock (see Shutdown): every admission either completes before the
	// drain starts or is rejected here.
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return nil, jobs.ErrShutdown
	}
	st := &jobState{req: req, log: newEventLog(), resumeRows: resumeRows, resumeTrials: resumeTrials}
	// st.id and st.handle are assigned only after Submit returns, but a
	// worker may pick the job up immediately; ready gates the closure so
	// it never observes them half-initialized (and so the "queued" event
	// always precedes "running" in the log).
	ready := make(chan struct{})
	run := func(ctx context.Context, engineWorkers int) error {
		<-ready
		if s.runHook != nil {
			s.runHook(st.id)
		}
		st.log.append(event{Type: "state", Job: st.id, State: string(jobs.StateRunning)})
		var err error
		if req.isExperiment() {
			err = s.runExperiment(ctx, st, engineWorkers)
		} else {
			err = s.runSim(ctx, st, engineWorkers)
		}
		return err
	}
	var h *jobs.Handle
	var err error
	if id == "" {
		h, err = s.mgr.Submit(req.name(), run)
	} else {
		h, err = s.mgr.Resubmit(id, req.name(), run)
	}
	if err != nil {
		return nil, err
	}
	st.id = h.ID()
	st.handle = h
	s.mu.Lock()
	s.states[st.id] = st
	s.pruneLocked()
	s.mu.Unlock()
	// Write-ahead: the accept record is durable before the admission
	// response leaves the daemon, so a crash after this point can never
	// lose the job.
	s.journal.AppendSync(journalRecord{Op: "accept", ID: st.id, Req: req})
	st.log.append(event{Type: "state", Job: st.id, State: string(jobs.StateQueued)})
	close(ready)
	// Close the event stream with the terminal state once the job
	// finishes, whatever path it took, and journal that state so a
	// restart knows the job needs no replay.
	s.watchers.Add(1)
	go func() {
		defer s.watchers.Done()
		<-h.Done()
		state, jerr := h.State()
		e := event{Type: "state", Job: st.id, State: string(state)}
		rec := journalRecord{Op: "done", ID: st.id, State: string(state)}
		if jerr != nil {
			e.Error = jerr.Error()
			rec.Error = jerr.Error()
		}
		st.log.append(e)
		st.log.close()
		s.journal.Append(rec)
	}()
	return st, nil
}

// replayedJob folds one job's journal records.
type replayedJob struct {
	id      string
	req     *JobRequest
	rows    map[int][]string
	etrials map[trialKey][]byte
	done    bool
}

// replay rebuilds daemon state from the previous incarnation's journal
// records: the hottest cache keys are rebuilt (most-referenced first,
// ties to the most recently journaled), then every job that was
// accepted but never reached a terminal state is re-queued under its
// original id with its completed-trial high-water mark. Runs in the
// background; /readyz flips to 200 once it returns.
func (s *Server) replay(recs []journalRecord, skipped int) {
	defer func() {
		s.replaySkipped.Store(int64(skipped))
		s.ready.Store(true)
		close(s.replayDone)
	}()
	byID := make(map[string]*replayedJob)
	var order []string
	type heat struct {
		req   *JobRequest
		count int
		last  int
	}
	keys := make(map[string]*heat)
	for i, rec := range recs {
		rj := byID[rec.ID]
		if rj == nil {
			rj = &replayedJob{id: rec.ID}
			byID[rec.ID] = rj
			order = append(order, rec.ID)
		}
		switch rec.Op {
		case "accept":
			if rec.Req != nil {
				rj.req = rec.Req
				if key, ok := rec.Req.runCacheKey(); ok {
					h := keys[key]
					if h == nil {
						h = &heat{req: rec.Req}
						keys[key] = h
					}
					h.count++
					h.last = i
				}
			}
		case "trial":
			if rj.rows == nil {
				rj.rows = make(map[int][]string)
			}
			rj.rows[rec.Trial] = rec.Row
		case "etrial":
			if rj.etrials == nil {
				rj.etrials = make(map[trialKey][]byte)
			}
			rj.etrials[trialKey{rec.Exp, rec.Point, rec.Trial}] = rec.Data
		case "done":
			rj.done = true
		}
	}

	if s.cfg.RewarmHot > 0 {
		type ranked struct {
			key string
			h   *heat
		}
		var hot []ranked
		for k, h := range keys {
			hot = append(hot, ranked{k, h})
		}
		sort.Slice(hot, func(a, b int) bool {
			if hot[a].h.count != hot[b].h.count {
				return hot[a].h.count > hot[b].h.count
			}
			if hot[a].h.last != hot[b].h.last {
				return hot[a].h.last > hot[b].h.last
			}
			return hot[a].key < hot[b].key
		})
		if len(hot) > s.cfg.RewarmHot {
			hot = hot[:s.cfg.RewarmHot]
		}
		for _, r := range hot {
			if s.draining.Load() {
				break
			}
			s.rewarm(r.h.req)
		}
	}

	for _, id := range order {
		rj := byID[id]
		if rj.done || rj.req == nil {
			continue
		}
		if s.draining.Load() {
			// Shutdown mid-replay: leave the remaining accept records
			// un-terminated so the next incarnation replays them.
			return
		}
		if _, err := s.admit(rj.req, rj.id, contiguousRows(rj.rows), rj.etrials); err != nil {
			if errors.Is(err, jobs.ErrShutdown) {
				return // as above: the job stays replayable
			}
			s.failReplayed(rj, err)
		}
	}
}

// failReplayed records a durably accepted job that could not be
// re-queued (queue overflow, a spec the new binary rejects): the loss
// is journaled as the terminal state so the next restart skips it, and
// a pre-failed handle is registered so clients polling the original id
// see "failed" — never a 404 for a job the daemon acknowledged.
func (s *Server) failReplayed(rj *replayedJob, cause error) {
	ferr := fmt.Errorf("replay: %w", cause)
	if h, err := s.mgr.RegisterFailed(rj.id, rj.req.name(), ferr); err == nil {
		st := &jobState{id: rj.id, req: rj.req, handle: h, log: newEventLog()}
		st.log.append(event{Type: "state", Job: rj.id, State: string(jobs.StateFailed), Error: ferr.Error()})
		st.log.close()
		s.mu.Lock()
		s.states[rj.id] = st
		s.pruneLocked()
		s.mu.Unlock()
	}
	s.journal.Append(journalRecord{Op: "done", ID: rj.id,
		State: string(jobs.StateFailed), Error: ferr.Error()})
}

// maxJournalID returns the highest numeric job id ("jN") among recs —
// the floor Open reserves in the manager before accepting traffic.
func maxJournalID(recs []journalRecord) int64 {
	var max int64
	for _, rec := range recs {
		if n, err := strconv.ParseInt(strings.TrimPrefix(rec.ID, "j"), 10, 64); err == nil && n > max {
			max = n
		}
	}
	return max
}

// contiguousRows returns the longest 0-based contiguous prefix of
// journaled trial rows — the resume high-water mark. Rows past a gap
// cannot be placed positionally and are recomputed instead.
func contiguousRows(rows map[int][]string) [][]string {
	var out [][]string
	for t := 0; ; t++ {
		row, ok := rows[t]
		if !ok {
			return out
		}
		out = append(out, row)
	}
}

// maxStates mirrors the jobs layer's retention bound for the
// serve-side artifacts (event logs, tables).
const maxStates = 4096

func (s *Server) pruneLocked() {
	if len(s.states) <= maxStates {
		return
	}
	for id, st := range s.states {
		if len(s.states) <= maxStates {
			break
		}
		if state, _ := st.handle.State(); state.Terminal() {
			if _, known := s.mgr.Get(id); !known {
				delete(s.states, id)
			}
		}
	}
}

type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	st, err := s.submit(&req)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	state, _ := st.handle.State()
	writeJSON(w, http.StatusAccepted, map[string]any{"id": st.id, "state": string(state)})
}

func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var open *CircuitOpenError
	switch {
	case isBadRequest(err):
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.As(err, &open):
		// The key's builds keep failing; retrying the identical spec
		// before the breaker's TTL would only rediscover the failure.
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	case err == jobs.ErrQueueFull:
		// Backpressure, not failure: the hint is computed from the
		// observed queue drain rate, so a client backing off by it
		// should find a slot on the first retry.
		w.Header().Set("Retry-After", strconv.Itoa(int(s.mgr.RetryAfter()/time.Second)))
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case err == jobs.ErrShutdown:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func isBadRequest(err error) bool {
	var bad *badRequestError
	return errors.As(err, &bad)
}

// statusJSON is the wire form of one job's status.
type statusJSON struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	Result   bool   `json:"result"`
}

func (s *Server) status(st *jobState) statusJSON {
	state, err := st.handle.State()
	created, started, finished := st.handle.Times()
	out := statusJSON{
		ID:      st.id,
		Name:    st.handle.Name(),
		State:   string(state),
		Created: created.UTC().Format(time.RFC3339Nano),
		Result:  st.getTable() != nil,
	}
	if err != nil {
		out.Error = err.Error()
	}
	if !started.IsZero() {
		out.Started = started.UTC().Format(time.RFC3339Nano)
	}
	if !finished.IsZero() {
		out.Finished = finished.UTC().Format(time.RFC3339Nano)
	}
	return out
}

func (s *Server) state(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	return st, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var out []statusJSON
	for _, h := range s.mgr.Jobs() {
		if st, ok := s.state(h.ID()); ok {
			out = append(out, s.status(st))
		}
	}
	if out == nil {
		out = []statusJSON{}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.state(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(st))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.state(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	st.handle.Cancel()
	writeJSON(w, http.StatusOK, s.status(st))
}

// handleStream replays the job's event log as NDJSON and follows it
// until the job reaches a terminal state or the client goes away. Each
// line is flushed immediately — this is the live progress feed.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	st, ok := s.state(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	offset := 0
	for {
		lines, closed, wake := st.log.next(offset)
		for _, line := range lines {
			// A departed client must release the stream promptly even
			// when the log keeps producing: writes to a closed
			// connection can report success into kernel buffers for a
			// while, so the context — cancelled the moment the
			// connection drops — is checked per line, not just between
			// batches.
			if ctx.Err() != nil {
				return
			}
			// line is shared by every stream of this job; appending the
			// newline in place would race on the slice's spare capacity.
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
		}
		offset += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return
		}
	}
}

// handleResult renders the job's result table through stats.NewSink —
// the same renderer as the batch CLIs, so the bytes are directly
// comparable. ?wait=1 blocks until the job finishes; otherwise a job
// without a table yet answers 409.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, ok := s.state(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	valid := false
	for _, f := range stats.SinkFormats() {
		if f == format {
			valid = true
		}
	}
	if !valid {
		writeError(w, http.StatusBadRequest, "unknown format %q (want one of %v)", format, stats.SinkFormats())
		return
	}
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		if err := st.handle.Wait(r.Context()); err != nil && r.Context().Err() != nil {
			return // client went away
		}
	}
	state, jerr := st.handle.State()
	if jerr != nil {
		writeError(w, http.StatusUnprocessableEntity, "job %s %s: %v", st.id, state, jerr)
		return
	}
	tb := st.getTable()
	if tb == nil {
		writeError(w, http.StatusConflict, "job %s is %s; no result yet (use ?wait=1)", st.id, state)
		return
	}
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
	case "json":
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	sink, err := stats.NewSink(format, &sinkWriter{w: w})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// The status line is already committed, so a mid-body write or
	// flush failure cannot change the response code — it is counted
	// and surfaced through /healthz instead of being swallowed.
	werr := sink.Emit(tb)
	if werr == nil {
		werr = sink.Close()
	}
	if werr != nil {
		s.renderErrs.Add(1)
	}
}

// sinkWriter is the result-body writer handed to stats.NewSink: it
// carries the sink-flush fault point so the chaos suite can fail a
// rendering mid-body and assert the failure is surfaced, not
// swallowed.
type sinkWriter struct{ w http.ResponseWriter }

func (sw *sinkWriter) Write(p []byte) (int, error) {
	if err := faultinject.Fire(faultinject.SinkFlush); err != nil {
		return 0, err
	}
	return sw.w.Write(p)
}

// RenderErrors returns how many result renderings failed mid-body
// (tests, /healthz).
func (s *Server) RenderErrors() int64 { return s.renderErrs.Load() }

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"cache": s.cache.Stats(),
		"jobs":  s.mgr.Stats(),
	})
}
