package sinr

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
)

// maxCellBlowup bounds how many grid cells an engine may allocate
// relative to the station count. A legitimate deployment has cell
// counts within a small factor of n (cells are sized near the
// communication radius); a pathological bounding box — two stations a
// million units apart with a 0.5-unit cell — would otherwise allocate
// gigabytes of empty cells before the first round runs.
const maxCellBlowup = 64

// cellBudget is the maximum cell count gridDims accepts for n
// stations; fitCellSize coarsens the auto-engine cell size against the
// same bound, so the two can never disagree.
func cellBudget(n int) float64 { return maxCellBlowup*float64(n) + 1024 }

// gridDims computes the cell-grid geometry shared by GridEngine and
// HierEngine: the bounding box of the points and the column/row counts
// at the given cell size. It rejects empty point sets, non-finite
// coordinates and cell counts beyond cellBudget — the cheap validation
// that keeps sparse-bounding-box pathologies from turning into huge
// allocations.
func gridDims(pts []geom.Point, cellSize float64) (cols, rows int, minX, minY float64, err error) {
	if len(pts) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("sinr: empty point set")
	}
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, q := range pts {
		minX = math.Min(minX, q.X)
		minY = math.Min(minY, q.Y)
		maxX = math.Max(maxX, q.X)
		maxY = math.Max(maxY, q.Y)
	}
	if math.IsInf(minX, 0) || math.IsInf(minY, 0) || math.IsInf(maxX, 0) || math.IsInf(maxY, 0) ||
		math.IsNaN(minX) || math.IsNaN(minY) || math.IsNaN(maxX) || math.IsNaN(maxY) {
		return 0, 0, 0, 0, fmt.Errorf("sinr: non-finite station coordinates")
	}
	// Validate the cell count in float space before any int conversion:
	// a huge span divided by a small cell would overflow int (and the
	// allocation below) long before it described a real deployment.
	fcols := math.Floor((maxX-minX)/cellSize) + 1
	frows := math.Floor((maxY-minY)/cellSize) + 1
	if fcols*frows > cellBudget(len(pts)) {
		return 0, 0, 0, 0, fmt.Errorf(
			"sinr: %.0f×%.0f cells of size %v for %d stations (bounding box %.4g×%.4g) exceeds the %d×n cell budget; increase cellSize or use the exact engine",
			fcols, frows, cellSize, len(pts), maxX-minX, maxY-minY, maxCellBlowup)
	}
	return int(fcols), int(frows), minX, minY, nil
}

// GridEngine resolves rounds approximately for Euclidean networks: the
// plane is bucketed into cells of side cellSize; interference from cells
// farther than nearRadius is approximated by the cell's aggregate power
// placed at its center. Near-field interference (and the decoding
// candidate) stay exact, so approximation error only perturbs the far
// tail, which decays as d^-α with α > 2.
//
// Like Engine, path loss goes through the specialized Kernel and the
// per-receiver loop splits into chunks run by the work-stealing runner
// on large networks, with byte-identical output for every worker count
// and steal interleaving. A
// GridEngine is not safe for concurrent use by multiple goroutines;
// Clone gives each goroutine its own engine over the shared topology.
//
// The per-receiver far-field cost is O(liveCells): every cell holding a
// transmitter is visited per receiver. HierEngine replaces that scan
// with an O(log cells) pyramid descent — prefer it beyond ~32k
// stations (see AutoEngine). The exact Engine remains the default
// everywhere correctness matters; TestGridEngineAgreement measures the
// disagreement rate against it.
type GridEngine struct {
	*gridTopo

	workers      int
	minParallelN int
	pinned       bool
	par          chunkRunner
	chunkFn      func(chunk, worker int)
	chunkForFn   func(chunk, worker int)

	// per-round scratch
	cellPower []float64
	txInCell  [][]int32
	isTx      []bool
	liveCells []int32
	curRecv   []int // receiver subset of the ResolveFor round being chunked
	out       []Reception
}

// gridTopo is the immutable half of a GridEngine: parameters, position
// slabs and the cell geometry (station→cell map, per-cell CSR, cell
// centers), all fixed at construction. Clones share one gridTopo and
// allocate only the mutable per-round state.
type gridTopo struct {
	params Params
	kern   Kernel
	pts    []geom.Point
	// ptsX/ptsY are structure-of-arrays coordinate slabs of pts; the
	// near-field inner loop streams them without loading Point structs.
	ptsX     []float64
	ptsY     []float64
	cellSize float64
	nearR2   float64
	// nearCells is the near-field box radius in cells: the exact region
	// must cover all cells intersecting the nearRadius ball, and padding
	// by one cell diagonal is enough. Fixed at construction (it depends
	// only on nearRadius and cellSize).
	nearCells int

	cols, rows int
	minX, minY float64
	cellOf     []int32 // station -> cell
	cellStart  []int32 // CSR index of stations per cell
	cellItems  []int32 // station ids sorted by cell
	cellCenter []geom.Point
}

// NewGridEngine builds a grid engine over Euclidean points. cellSize is
// the bucket side; nearRadius is the exact-summation radius
// (transmitters within nearRadius of a receiver are summed exactly)
// and must be ≥ 1, the normalized communication range: the decoding
// candidate is searched only inside the near box, so a smaller radius
// would silently drop decodable receptions rather than approximate
// them. Grids whose bounding box would need more than maxCellBlowup×n
// cells are rejected.
func NewGridEngine(eu *geom.Euclidean, p Params, cellSize, nearRadius float64) (*GridEngine, error) {
	if err := p.Validate(eu.Growth()); err != nil {
		return nil, err
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("sinr: cellSize %v must be positive", cellSize)
	}
	if nearRadius < 1 {
		return nil, fmt.Errorf("sinr: nearRadius %v must be >= 1 (the normalized communication range)", nearRadius)
	}
	pts := eu.Pts
	n := len(pts)
	cols, rows, minX, minY, err := gridDims(pts, cellSize)
	if err != nil {
		return nil, err
	}
	tp := &gridTopo{
		params:    p,
		kern:      NewKernel(p.Alpha),
		pts:       pts,
		cellSize:  cellSize,
		nearR2:    nearRadius * nearRadius,
		nearCells: int(math.Ceil(nearRadius/cellSize)) + 1,
		cols:      cols, rows: rows,
		minX: minX, minY: minY,
		cellOf: make([]int32, n),
	}
	tp.ptsX = make([]float64, n)
	tp.ptsY = make([]float64, n)
	counts := make([]int32, cols*rows+1)
	for i, q := range pts {
		tp.ptsX[i], tp.ptsY[i] = q.X, q.Y
		c := tp.cellIndex(q)
		tp.cellOf[i] = int32(c)
		counts[c+1]++
	}
	for c := 1; c <= cols*rows; c++ {
		counts[c] += counts[c-1]
	}
	tp.cellStart = counts
	tp.cellItems = make([]int32, n)
	fill := make([]int32, cols*rows)
	for i := range pts {
		c := tp.cellOf[i]
		tp.cellItems[tp.cellStart[c]+fill[c]] = int32(i)
		fill[c]++
	}
	tp.cellCenter = make([]geom.Point, cols*rows)
	for c := range tp.cellCenter {
		cx := c % cols
		cy := c / cols
		tp.cellCenter[c] = geom.Point{
			X: minX + (float64(cx)+0.5)*cellSize,
			Y: minY + (float64(cy)+0.5)*cellSize,
		}
	}
	return gridFromTopo(tp), nil
}

// gridFromTopo builds the mutable per-round half over a topology;
// NewGridEngine and Clone both go through it. The per-round arrays
// are allocated lazily on first resolve (see ensureRunState), which
// keeps cloning down to pointer copies.
func gridFromTopo(tp *gridTopo) *GridEngine {
	return &GridEngine{
		gridTopo:     tp,
		workers:      resolveWorkers(0),
		minParallelN: parallelCrossover,
	}
}

// ensureRunState allocates the per-round arrays on first use. The
// grid always has at least one cell, so cellPower doubles as the
// "already allocated" sentinel.
func (g *GridEngine) ensureRunState() {
	if g.cellPower != nil {
		return
	}
	g.cellPower = make([]float64, g.cols*g.rows)
	g.txInCell = make([][]int32, g.cols*g.rows)
	g.isTx = make([]bool, len(g.pts))
}

// Clone returns an independent engine sharing this engine's immutable
// topology (positions, cell CSR, cell centers) with fresh per-round
// state. The clone resolves byte-identically to a freshly constructed
// engine; separate clones may run concurrently. Tuning (workers,
// pinning, parallel crossover) is copied.
func (g *GridEngine) Clone() *GridEngine {
	c := gridFromTopo(g.gridTopo)
	c.workers, c.minParallelN, c.pinned = g.workers, g.minParallelN, g.pinned
	return c
}

func (g *gridTopo) cellIndex(q geom.Point) int {
	cx := int((q.X - g.minX) / g.cellSize)
	cy := int((q.Y - g.minY) / g.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// N returns the number of stations.
func (g *GridEngine) N() int { return len(g.pts) }

// Params returns the physical parameters.
func (g *GridEngine) Params() Params { return g.params }

// SetWorkers sets how many goroutines Resolve may use; w ≤ 0 selects
// runtime.GOMAXPROCS(0). Output is byte-identical for every count.
func (g *GridEngine) SetWorkers(w int) { g.workers = resolveWorkers(w) }

// SetPinned opts the worker runner into core placement (see
// Engine.SetPinned); applied when the runner is next (re)built.
func (g *GridEngine) SetPinned(on bool) { g.pinned = on }

// aggregate buckets the round's transmitters by cell (serial: O(|tx|)).
func (g *GridEngine) aggregate(tx []int) {
	pw := g.params.Power()
	for _, t := range tx {
		g.isTx[t] = true
		c := g.cellOf[t]
		if g.cellPower[c] == 0 && len(g.txInCell[c]) == 0 {
			g.liveCells = append(g.liveCells, c)
		}
		g.cellPower[c] += pw
		g.txInCell[c] = append(g.txInCell[c], int32(t))
	}
}

// reset clears the per-round transmitter aggregation.
func (g *GridEngine) reset(tx []int) {
	for _, c := range g.liveCells {
		g.cellPower[c] = 0
		g.txInCell[c] = g.txInCell[c][:0]
	}
	g.liveCells = g.liveCells[:0]
	for _, t := range tx {
		g.isTx[t] = false
	}
}

// Resolve computes receptions for one round (see Engine.Resolve for
// semantics). Far-field interference is approximated per cell. The
// returned slice is owned by the engine and valid until the next
// Resolve call.
func (g *GridEngine) Resolve(tx []int) []Reception {
	if len(tx) == 0 {
		return nil
	}
	g.ensureRunState()
	g.aggregate(tx)

	n := len(g.pts)
	if g.workers > 1 && n >= g.minParallelN {
		g.resolveParallel()
	} else {
		g.out = g.collectRange(0, n, g.out[:0])
	}

	g.reset(tx)
	return g.out
}

// ResolveFor computes the receptions of one round restricted to the
// given receivers: the result is byte-identical to Resolve(tx) filtered
// to receivers in the subset. receivers must be strictly increasing
// station indices; the slice is only read. Like Resolve, the returned
// slice is engine-owned and the subset loop runs chunked on the
// parallel runner when the subset is large enough.
func (g *GridEngine) ResolveFor(tx []int, receivers []int) []Reception {
	if len(tx) == 0 || len(receivers) == 0 {
		return nil
	}
	g.ensureRunState()
	checkReceivers(receivers, len(g.pts))
	g.aggregate(tx)

	if g.workers > 1 && len(receivers) >= g.minParallelN {
		ensureRunner(&g.par, g, g.workers, g.pinned)
		if g.chunkForFn == nil {
			g.chunkForFn = g.runChunkFor
		}
		g.curRecv = receivers
		g.out = g.par.runRange(len(receivers), g.workers, g.chunkForFn, g.out)
		g.curRecv = nil
	} else {
		g.out = g.collectList(receivers, g.out[:0])
	}

	g.reset(tx)
	return g.out
}

// resolveParallel chunks the receiver loop across the work-stealing
// runner. After aggregation all per-cell state is read-only, so chunks
// only write their own output slots; concatenating them in chunk order
// reproduces the serial receiver order exactly.
func (g *GridEngine) resolveParallel() {
	ensureRunner(&g.par, g, g.workers, g.pinned)
	if g.chunkFn == nil {
		g.chunkFn = g.runChunk
	}
	g.out = g.par.runRange(len(g.pts), g.workers, g.chunkFn, g.out)
}

// runChunk collects one contiguous receiver range.
func (g *GridEngine) runChunk(chunk, worker int) {
	lo, hi := g.par.chunkRange(chunk, len(g.pts))
	g.par.slots[chunk].out = g.collectRange(lo, hi, g.par.slots[chunk].out[:0])
}

// runChunkFor collects one contiguous slice of the subset.
func (g *GridEngine) runChunkFor(chunk, worker int) {
	lo, hi := g.par.chunkRange(chunk, len(g.curRecv))
	g.par.slots[chunk].out = g.collectList(g.curRecv[lo:hi], g.par.slots[chunk].out[:0])
}

// collectRange resolves receivers in [lo,hi), appending receptions to
// dst. It only reads shared state.
func (g *GridEngine) collectRange(lo, hi int, dst []Reception) []Reception {
	for u := lo; u < hi; u++ {
		dst = g.collectOne(u, dst)
	}
	return dst
}

// collectList resolves exactly the listed receivers in order.
func (g *GridEngine) collectList(receivers []int, dst []Reception) []Reception {
	for _, u := range receivers {
		dst = g.collectOne(u, dst)
	}
	return dst
}

// collectOne resolves receiver u, appending its reception (if any) to
// dst. It only reads shared state, so chunks may run it concurrently.
// The receiver's cell coordinates come from the precomputed cellOf
// table — no per-receiver float divisions.
func (g *GridEngine) collectOne(u int, dst []Reception) []Reception {
	if g.isTx[u] {
		return dst
	}
	p := g.params
	pw := p.Power()
	kern := g.kern
	nearCells := g.nearCells
	up := g.pts[u]
	uc := int(g.cellOf[u])
	ucx := uc % g.cols
	ucy := uc / g.cols
	total := 0.0
	bestD2 := math.Inf(1)
	best := int32(-1)
	// Far field: aggregate cell powers.
	for _, c := range g.liveCells {
		cx := int(c) % g.cols
		cy := int(c) / g.cols
		if abs(cx-ucx) <= nearCells && abs(cy-ucy) <= nearCells {
			continue // handled exactly below
		}
		ctr := g.cellCenter[c]
		dx, dy := up.X-ctr.X, up.Y-ctr.Y
		d2 := dx*dx + dy*dy
		total += g.cellPower[c] * kern.FromDist2(d2)
	}
	// Near field: exact per-transmitter sums, one NearScanIndexed batch
	// call per cell list. The running (total, bestD2) thread through the
	// calls in cell-scan order, so the accumulation is bit-identical to
	// the plain nested loop.
	for cy := ucy - nearCells; cy <= ucy+nearCells; cy++ {
		if cy < 0 || cy >= g.rows {
			continue
		}
		for cx := ucx - nearCells; cx <= ucx+nearCells; cx++ {
			if cx < 0 || cx >= g.cols {
				continue
			}
			c := cy*g.cols + cx
			var bid int32
			total, bid, bestD2 = kern.NearScanIndexed(pw, up.X, up.Y, g.txInCell[c], g.ptsX, g.ptsY, total, bestD2)
			if bid >= 0 {
				best = bid
			}
		}
	}
	if best < 0 || bestD2 > 1 {
		return dst
	}
	s := pw * kern.FromDist2(bestD2)
	intf := total - s
	if intf < 0 {
		intf = 0
	}
	if p.Decodes(s, intf) {
		dst = append(dst, Reception{Receiver: u, Transmitter: int(best)})
	}
	return dst
}

// checkReceivers validates a ResolveFor subset: indices must be inside
// [0,n) and strictly increasing (which also rules out duplicates). The
// ordering requirement is what makes ResolveFor output byte-identical
// to a filtered Resolve.
func checkReceivers(receivers []int, n int) {
	prev := -1
	for _, u := range receivers {
		if u < 0 || u >= n {
			panic(fmt.Sprintf("sinr: receiver %d out of range [0,%d)", u, n))
		}
		if u <= prev {
			panic(fmt.Sprintf("sinr: receivers not strictly increasing at %d (after %d)", u, prev))
		}
		prev = u
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
