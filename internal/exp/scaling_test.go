package exp

import (
	"fmt"
	"testing"
)

// TestE14Shape runs the scaling experiment at toy sizes and checks its
// structure: one row per (size, family, algorithm), the resolved engine
// kind in the engine column, and a sane informed percentage.
func TestE14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	cfg := Config{Seed: 2014, Trials: 1, Scale: 0.001, Engine: "auto"}
	tb, err := E14LargeNScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("E14 rows = %d, want 12 (3 sizes × 2 families × 2 algorithms)", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if eng := row[2]; eng != "exact" && eng != "grid" && eng != "hier" {
			t.Errorf("engine column = %v", eng)
		}
		var informed float64
		if _, err := fmt.Sscanf(row[5], "%f", &informed); err != nil || informed < 0 || informed > 100 {
			t.Errorf("informed%% column = %v", row[5])
		}
	}
}

// TestE14DeterministicColumnsAcrossWorkers pins that every column
// except the wall-clock throughput is bit-identical for any Workers
// value (rounds/s measures the machine and is excluded by design).
func TestE14DeterministicColumnsAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	run := func(workers int) [][]string {
		cfg := Config{Seed: 7, Trials: 2, Scale: 0.001, Engine: "auto", Workers: workers}
		tb, err := E14LargeNScaling(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for col := 0; col < 7; col++ { // all but rounds/s
			if a[i][col] != b[i][col] {
				t.Errorf("row %d col %d differs across workers: %v vs %v", i, col, a[i][col], b[i][col])
			}
		}
	}
}

// TestE14RejectsBadEngine pins the usage-error path.
func TestE14RejectsBadEngine(t *testing.T) {
	cfg := Config{Seed: 1, Trials: 1, Scale: 0.001, Engine: "warp"}
	if _, err := E14LargeNScaling(cfg); err == nil {
		t.Fatal("want error for unknown engine")
	}
}

// TestScalingSpecShapes checks the family sizing helpers stay close to
// the target n and inside declared parameter ranges.
func TestScalingSpecShapes(t *testing.T) {
	for _, n := range []int{48, 1000, 10000, 1000000} {
		sp := scalingSpec("starclusters", n)
		m, hops := sp.Params["m"], sp.Params["hops"]
		if m < 2 || m > 2000 {
			t.Errorf("n=%d: m=%v outside [2,2000]", n, m)
		}
		built := 6*m + 5*hops
		if built < 0.5*float64(n) || built > 1.5*float64(n)+60 {
			t.Errorf("n=%d: starclusters sizes to %v stations", n, built)
		}
		usp := scalingSpec("uniform", n)
		if usp.Params["n"] != float64(n) || usp.Params["density"] < 3 {
			t.Errorf("n=%d: uniform spec %v", n, usp.Params)
		}
	}
}
