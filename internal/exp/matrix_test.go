package exp

import (
	"testing"

	"sinrcast/internal/protocol"
	"sinrcast/internal/scenario"
)

// TestE13CoversMatrix checks the matrix's defining property: one row
// per registered family, one column per registered protocol, without
// the experiment code naming any of them.
func TestE13CoversMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	cfg := smallCfg()
	cfg.Trials = 1
	tb, err := E13ProtocolMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fams := scenario.Names()
	if len(tb.Rows) != len(fams) {
		t.Fatalf("E13 rows = %d, registered families = %d", len(tb.Rows), len(fams))
	}
	for i, name := range fams {
		if tb.Rows[i][0] != name {
			t.Errorf("row %d family = %q, want %q", i, tb.Rows[i][0], name)
		}
	}
	protos := protocol.Names()
	if len(tb.Headers) != 3+len(protos) {
		t.Fatalf("E13 columns = %d, want 3 + %d protocols", len(tb.Headers), len(protos))
	}
	for i, name := range protos {
		if tb.Headers[3+i] != name {
			t.Errorf("column %d protocol = %q, want %q", 3+i, tb.Headers[3+i], name)
		}
	}
}

// TestE13Restriction checks Config.Scenario and Config.Protocol narrow
// the matrix to explicit specs on either axis.
func TestE13Restriction(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	cfg := smallCfg()
	cfg.Trials = 1
	cfg.Scenario = "grid:n=16,spacing=0.5"
	cfg.Protocol = "decay:budget=2000"
	tb, err := E13ProtocolMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || tb.Rows[0][0] != "grid" || tb.Rows[0][1] != "16" {
		t.Fatalf("restricted matrix rows = %v", tb.Rows)
	}
	if len(tb.Headers) != 4 || tb.Headers[3] != "decay:budget=2000" {
		t.Fatalf("restricted matrix headers = %v", tb.Headers)
	}
	cfg.Protocol = "decay:bogus=1"
	if _, err := E13ProtocolMatrix(cfg); err == nil {
		t.Fatal("want error for invalid Config.Protocol")
	}
}

// TestE13IdenticalAcrossWorkers extends the trial-concurrency
// determinism contract to the protocol registry: a one-family slice of
// the matrix (all protocols) must render bit-identically for serial
// and concurrent trials.
func TestE13IdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	cfg := smallCfg()
	cfg.Trials = 2
	cfg.Scenario = "uniform:n=20"
	serial := cfg
	serial.Workers = 1
	concurrent := cfg
	concurrent.Workers = 4
	a, err := E13ProtocolMatrix(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := E13ProtocolMatrix(concurrent)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("E13 differs across Workers:\nserial:\n%s\nconcurrent:\n%s", a, b)
	}
}
