package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sinrcast/internal/faultinject"
)

// Journal is the daemon's append-only NDJSON write-ahead log: one
// record per accepted job spec, per completed trial, and per terminal
// state. A restarted daemon replays it to rewarm the hottest
// warm-engine cache keys and to re-queue (and trial-level resume) jobs
// that were in-flight at the crash — see (*Server).replay.
//
// Durability model: records are buffered and fsynced in batches by a
// background syncer (group commit), so the crash-loss window is one
// batch interval (syncBatch) of the *most recent* records — never a
// torn prefix. Accept records ride AppendSync, which forces the batch
// out before the admission response leaves the daemon. Reading
// tolerates a torn final line (the kill -9 case): parseable records up
// to the tear are replayed, the tear itself is skipped and counted.
//
// A journal failure (disk full, injected fault) is non-fatal: the
// daemon keeps serving and Err surfaces the degradation through
// /healthz. Recovery is bounded: the next append after a failure
// reopens the file (up to maxJournalReopens times for the life of the
// process) and journaling resumes; records lost in the failed epoch
// are counted by Dropped and stay visible on /healthz even after
// recovery. Once the reopen budget is spent — or after Close — the
// error is permanently sticky and every further record is counted
// dropped.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer
	err     error
	dirty   bool
	closed  bool
	pending int64 // records buffered since the last successful sync
	reopens int

	kick chan struct{}
	quit chan struct{}
	done chan struct{}

	closeOnce sync.Once
	appends   atomic.Int64
	syncs     atomic.Int64
	dropped   atomic.Int64
}

// syncBatch is the group-commit window: appends within one window
// share one flush+fsync.
const syncBatch = 10 * time.Millisecond

// maxJournalReopens bounds how many times a failed journal file is
// reopened before the error becomes permanently sticky.
const maxJournalReopens = 3

// errJournalClosed marks records appended after Close — lost by
// definition, so the loss is surfaced rather than silently buffered.
var errJournalClosed = errors.New("serve: journal closed")

// journalRecord is one NDJSON line. Op selects the shape:
//
//	accept  {id, req}            job admitted (the write-ahead record)
//	trial   {id, trial, row}     run job: one completed trial's table row
//	etrial  {id, exp, point, trial, data}
//	                             experiment job: one completed trial's
//	                             gob-encoded result (exp.TrialCheckpoint)
//	done    {id, state, error}   terminal state
type journalRecord struct {
	Op    string      `json:"op"`
	ID    string      `json:"id"`
	Req   *JobRequest `json:"req,omitempty"`
	Trial int         `json:"trial,omitempty"`
	Row   []string    `json:"row,omitempty"`
	Exp   uint64      `json:"exp,omitempty"`
	Point uint64      `json:"point,omitempty"`
	Data  []byte      `json:"data,omitempty"`
	State string      `json:"state,omitempty"`
	Error string      `json:"error,omitempty"`
}

// OpenJournal opens (or creates) the journal at path in append mode
// and starts the batch syncer.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		path: path,
		f:    f,
		w:    bufio.NewWriter(f),
		kick: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go j.syncLoop()
	return j, nil
}

// Append buffers one record for the next batched fsync. Safe on a nil
// journal (journaling disabled) — it is the universal hook in the job
// path. A failed write or sync makes later appends attempt a bounded
// reopen of the file; records lost before recovery (and every record
// once the budget is spent, or after Close) are counted by Dropped.
func (j *Journal) Append(rec journalRecord) {
	if j == nil {
		return
	}
	if err := faultinject.Fire(faultinject.JournalAppend); err != nil {
		j.fail(err)
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		j.fail(err)
		return
	}
	j.mu.Lock()
	if j.closed {
		if j.err == nil {
			j.err = errJournalClosed
		}
		j.dropped.Add(1)
		j.mu.Unlock()
		return
	}
	if j.err != nil {
		j.reopenLocked()
	}
	if j.err != nil {
		j.dropped.Add(1)
		j.mu.Unlock()
		return
	}
	if _, werr := j.w.Write(append(b, '\n')); werr != nil {
		j.err = werr
		j.dropped.Add(1)
	} else {
		j.dirty = true
		j.pending++
		j.appends.Add(1)
	}
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
}

// reopenLocked is the bounded recovery path: the buffered tail of the
// failed epoch is counted lost and discarded (its bytes may already be
// partially on disk — a fresh writer must not replay them), the file
// is reopened in append mode, and a newline terminates any torn line
// the failure left mid-file (the reader skips blank lines).
func (j *Journal) reopenLocked() {
	if j.reopens >= maxJournalReopens {
		return
	}
	j.reopens++
	j.dropped.Add(j.pending)
	j.pending = 0
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.err = err
		return
	}
	old := j.f
	j.f = f
	j.w = bufio.NewWriter(f)
	j.w.WriteByte('\n')
	j.dirty = true
	j.err = nil
	old.Close()
}

// AppendSync appends and forces the current batch to disk before
// returning — the accept-record path, where the write-ahead contract
// wants durability before the admission response.
func (j *Journal) AppendSync(rec journalRecord) {
	if j == nil {
		return
	}
	j.Append(rec)
	j.Sync()
}

// fail records one record lost before it reached the buffer.
func (j *Journal) fail(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.dropped.Add(1)
	j.mu.Unlock()
}

// Sync flushes buffered records and fsyncs the file now.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	// errJournalClosed does not block the final flush: Close sets the
	// flag before the syncer drains the tail, and the tail holds only
	// records accepted while the journal was still open.
	if j.err != nil && !errors.Is(j.err, errJournalClosed) {
		return j.err
	}
	if !j.dirty {
		return j.err
	}
	if err := faultinject.Fire(faultinject.JournalSync); err != nil {
		j.err = err
		return err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
		return err
	}
	j.dirty = false
	j.pending = 0
	j.syncs.Add(1)
	return j.err
}

// syncLoop is the group-commit goroutine: a kick opens a syncBatch
// window, every append inside it shares the one fsync at its close.
func (j *Journal) syncLoop() {
	defer close(j.done)
	for {
		select {
		case <-j.quit:
			j.Sync()
			return
		case <-j.kick:
			t := time.NewTimer(syncBatch)
			select {
			case <-t.C:
			case <-j.quit:
				t.Stop()
				j.Sync()
				return
			}
			j.Sync()
		}
	}
}

// Err returns the current journal error, nil while healthy. It clears
// when a reopen recovers the file (Dropped still counts the loss) and
// is permanently sticky once the reopen budget is spent or Close ran.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Syncs returns how many batched fsyncs have run (tests, stats).
func (j *Journal) Syncs() int64 {
	if j == nil {
		return 0
	}
	return j.syncs.Load()
}

// Dropped returns how many records were lost to journal failures or
// post-Close appends — the degradation gauge behind /healthz's
// journal_dropped, which outlives a successful reopen.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	return j.dropped.Load()
}

// Reopens returns how many recovery reopens have been spent (of
// maxJournalReopens).
func (j *Journal) Reopens() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reopens
}

// Close stops the syncer, flushes the tail, and closes the file. New
// appends are refused — and counted dropped, with a sticky error —
// from the moment Close begins, so a record that races Close is
// surfaced instead of vanishing into a buffer no syncer will flush.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.closeOnce.Do(func() {
		j.mu.Lock()
		j.closed = true
		j.mu.Unlock()
		close(j.quit)
		<-j.done
		j.mu.Lock()
		if j.err != nil && j.pending > 0 {
			j.dropped.Add(j.pending)
			j.pending = 0
		}
		if cerr := j.f.Close(); cerr != nil && j.err == nil {
			j.err = cerr
		}
		j.mu.Unlock()
	})
	return j.Err()
}

// ReadJournalRecords reads every parseable record of the journal at
// path, in order, skipping unparseable lines (a kill -9 can tear the
// final line mid-write) and returning how many were skipped. A missing
// file is an empty journal, not an error.
func ReadJournalRecords(path string) (recs []journalRecord, skipped int, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	for _, line := range bytes.Split(b, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil || rec.Op == "" || rec.ID == "" {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, skipped, nil
}
