package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: sinrcast/internal/sinr
cpu: AMD EPYC 7B13
BenchmarkResolve/n=1k,alpha=2/serial-8         	     100	  11003613 ns/op	    2048 B/op	       3 allocs/op
BenchmarkResolve/n=1k,alpha=2/parallel-8
BenchmarkResolve/n=1k,alpha=2/parallel-8       	     301	   3989120 ns/op
PASS
ok  	sinrcast/internal/sinr	2.153s
pkg: sinrcast
BenchmarkE13ProtocolMatrix/scale=0.5-8         	       1	1882340115 ns/op
PASS
ok  	sinrcast	1.901s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("context = %q/%q/%q", rep.Goos, rep.Goarch, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkResolve/n=1k,alpha=2/serial-8" || b.Pkg != "sinrcast/internal/sinr" {
		t.Fatalf("first bench = %q in %q", b.Name, b.Pkg)
	}
	if b.Iterations != 100 || b.Metrics["ns/op"] != 11003613 || b.Metrics["B/op"] != 2048 || b.Metrics["allocs/op"] != 3 {
		t.Fatalf("first bench parsed as %+v", b)
	}
	// The bare pre-announcement line is skipped; the result line that
	// follows it is kept.
	if rep.Benchmarks[1].Iterations != 301 {
		t.Fatalf("second bench = %+v", rep.Benchmarks[1])
	}
	// Package blocks switch with pkg: headers.
	if rep.Benchmarks[2].Pkg != "sinrcast" {
		t.Fatalf("third bench pkg = %q", rep.Benchmarks[2].Pkg)
	}
}

func TestParseBenchRejectsFailure(t *testing.T) {
	for _, in := range []string{
		"--- FAIL: TestSomething (0.1s)\nFAIL\n",
		"FAIL\tsinrcast/internal/sinr\t1.2s\n",
		"BenchmarkBroken-8 notanumber 12 ns/op\n",
		"BenchmarkOdd-8 10 12 ns/op trailing\n",
	} {
		if _, err := parseBench(strings.NewReader(in)); err == nil {
			t.Errorf("parseBench(%q): want error, got nil", in)
		}
	}
}

func TestAllSingleIteration(t *testing.T) {
	one := Benchmark{Name: "a", Iterations: 1, Metrics: map[string]float64{"ns/op": 5}}
	three := Benchmark{Name: "b", Iterations: 3, Metrics: map[string]float64{"ns/op": 5}}
	tests := []struct {
		name string
		rep  Report
		want bool
	}{
		{"empty", Report{}, false},
		{"all 1x", Report{Benchmarks: []Benchmark{one, one}}, true},
		{"mixed", Report{Benchmarks: []Benchmark{one, three}}, false},
		{"all multi", Report{Benchmarks: []Benchmark{three}}, false},
	}
	for _, tt := range tests {
		if got := allSingleIteration(&tt.rep); got != tt.want {
			t.Errorf("%s: allSingleIteration = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestCompare(t *testing.T) {
	mk := func(name string, ns float64) Benchmark {
		return Benchmark{Name: name, Iterations: 3, Metrics: map[string]float64{"ns/round": ns}}
	}
	base := &Report{Benchmarks: []Benchmark{mk("BenchmarkResolve/n=16384/alpha=2/serial", 1000), mk("BenchmarkOther", 50)}}

	// Within tolerance: pass.
	fresh := &Report{Benchmarks: []Benchmark{mk("BenchmarkResolve/n=16384/alpha=2/serial", 1100)}}
	var sb strings.Builder
	checked, regressions := compare(fresh, base, nil, "ns/round", 0.15, &sb)
	if checked != 1 || regressions != 0 {
		t.Fatalf("within tolerance: checked=%d regressions=%d\n%s", checked, regressions, sb.String())
	}

	// Beyond tolerance: regression.
	fresh = &Report{Benchmarks: []Benchmark{mk("BenchmarkResolve/n=16384/alpha=2/serial", 1200)}}
	if _, regressions = compare(fresh, base, nil, "ns/round", 0.15, &strings.Builder{}); regressions != 1 {
		t.Fatalf("beyond tolerance: regressions=%d, want 1", regressions)
	}

	// Filter restricts the comparison; unmatched baselines don't count.
	fresh = &Report{Benchmarks: []Benchmark{
		mk("BenchmarkResolve/n=16384/alpha=2/serial", 1000),
		mk("BenchmarkOther", 500), // 10x worse but filtered out
	}}
	re := regexp.MustCompile(`BenchmarkResolve/n=16384`)
	checked, regressions = compare(fresh, base, re, "ns/round", 0.15, &strings.Builder{})
	if checked != 1 || regressions != 0 {
		t.Fatalf("filtered: checked=%d regressions=%d", checked, regressions)
	}

	// A fresh bench absent from the baseline is skipped, not an error.
	fresh = &Report{Benchmarks: []Benchmark{mk("BenchmarkBrandNew", 10)}}
	if checked, _ = compare(fresh, base, nil, "ns/round", 0.15, &strings.Builder{}); checked != 0 {
		t.Fatalf("unknown bench: checked=%d, want 0", checked)
	}

	// The -GOMAXPROCS suffix is ignored when matching: a baseline
	// recorded on one core count gates runs on any other.
	fresh = &Report{Benchmarks: []Benchmark{mk("BenchmarkResolve/n=16384/alpha=2/serial-8", 1100)}}
	checked, regressions = compare(fresh, base, nil, "ns/round", 0.15, &strings.Builder{})
	if checked != 1 || regressions != 0 {
		t.Fatalf("proc suffix: checked=%d regressions=%d, want 1/0", checked, regressions)
	}
	baseSuffixed := &Report{Benchmarks: []Benchmark{mk("BenchmarkResolve/n=16384/alpha=2/serial-16", 1000)}}
	fresh = &Report{Benchmarks: []Benchmark{mk("BenchmarkResolve/n=16384/alpha=2/serial", 1300)}}
	if _, regressions = compare(fresh, baseSuffixed, nil, "ns/round", 0.15, &strings.Builder{}); regressions != 1 {
		t.Fatalf("proc suffix on baseline: regressions=%d, want 1", regressions)
	}
}

func TestCompareTopologySkip(t *testing.T) {
	mk := func(name string, ns float64) Benchmark {
		return Benchmark{Name: name, Iterations: 3, Metrics: map[string]float64{"ns/round": ns}}
	}
	benches := []Benchmark{
		mk("BenchmarkHierResolve/n=65536/alpha=2.5/serial", 1000),
		mk("BenchmarkHierResolve/n=65536/alpha=2.5/parallel-8", 400),
		mk("BenchmarkParallelScaling/n=65536/alpha=2.5/workers=4", 300),
	}
	base := &Report{NumCPU: 8, Gomaxprocs: 8, NUMANodes: 2, Benchmarks: benches}

	// Same topology: parallel entries are gated like any other (the 10x
	// slowdowns regress).
	fresh := &Report{NumCPU: 8, Gomaxprocs: 8, NUMANodes: 2, Benchmarks: []Benchmark{
		mk("BenchmarkHierResolve/n=65536/alpha=2.5/parallel-8", 4000),
		mk("BenchmarkParallelScaling/n=65536/alpha=2.5/workers=4", 3000),
	}}
	checked, regressions := compare(fresh, base, nil, "ns/round", 0.15, &strings.Builder{})
	if checked != 2 || regressions != 2 {
		t.Fatalf("same topology: checked=%d regressions=%d, want 2/2", checked, regressions)
	}

	// Different topology: parallel entries are skipped, serial entries
	// still gate.
	fresh = &Report{NumCPU: 2, Gomaxprocs: 2, NUMANodes: 1, Benchmarks: []Benchmark{
		mk("BenchmarkHierResolve/n=65536/alpha=2.5/serial", 1100),
		mk("BenchmarkHierResolve/n=65536/alpha=2.5/parallel-2", 4000),
		mk("BenchmarkParallelScaling/n=65536/alpha=2.5/workers=4", 3000),
	}}
	var sb strings.Builder
	checked, regressions = compare(fresh, base, nil, "ns/round", 0.15, &sb)
	if checked != 1 || regressions != 0 {
		t.Fatalf("cross topology: checked=%d regressions=%d, want 1/0\n%s", checked, regressions, sb.String())
	}
	if !strings.Contains(sb.String(), "skip") {
		t.Fatalf("cross topology: no skip notice emitted:\n%s", sb.String())
	}

	// A baseline predating the topology fields gates everything.
	legacy := &Report{Benchmarks: benches}
	fresh = &Report{NumCPU: 2, Gomaxprocs: 2, NUMANodes: 1, Benchmarks: []Benchmark{
		mk("BenchmarkHierResolve/n=65536/alpha=2.5/parallel-2", 410),
	}}
	if checked, _ = compare(fresh, legacy, nil, "ns/round", 0.15, &strings.Builder{}); checked != 1 {
		t.Fatalf("legacy baseline: checked=%d, want 1", checked)
	}
}

func TestParseBenchEmptyInput(t *testing.T) {
	rep, err := parseBench(strings.NewReader("PASS\nok \tx\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %v, want none", rep.Benchmarks)
	}
}
