// Package wakeup implements the ad-hoc wake-up problem of §5: an
// adversary wakes some stations spontaneously at arbitrary rounds; every
// awake station propagates a wake-up signal; the protocol's running time
// is measured from the first spontaneous wake-up until all stations are
// awake. The paper's solution reuses the non-spontaneous broadcast
// machinery with every spontaneously woken station acting as a source,
// joining the phased schedule at the next phase boundary (the paper
// aligns to multiples of the full broadcast time T; phase boundaries are
// the finer-grained alignment the same round-counter synchronization
// supports, and preserve the 2T bound).
package wakeup

import (
	"errors"
	"fmt"

	"sinrcast/internal/broadcast"
	"sinrcast/internal/network"
)

// Schedule is the adversary's choice: WakeAt[i] is the round station i
// wakes spontaneously, or -1 if it is only woken by the protocol.
type Schedule struct {
	WakeAt []int
}

// Validate checks the schedule against a network of n stations.
func (s Schedule) Validate(n int) error {
	if len(s.WakeAt) != n {
		return fmt.Errorf("wakeup: schedule has %d entries for %d stations", len(s.WakeAt), n)
	}
	any := false
	for i, w := range s.WakeAt {
		if w < -1 {
			return fmt.Errorf("wakeup: WakeAt[%d] = %d invalid", i, w)
		}
		if w >= 0 {
			any = true
		}
	}
	if !any {
		return errors.New("wakeup: nobody wakes spontaneously")
	}
	return nil
}

// FirstWake returns the earliest spontaneous wake round.
func (s Schedule) FirstWake() int {
	first := -1
	for _, w := range s.WakeAt {
		if w >= 0 && (first < 0 || w < first) {
			first = w
		}
	}
	return first
}

// Result reports a wake-up execution.
type Result struct {
	// Span is the number of rounds from the first spontaneous wake-up
	// until the last station woke (the §5 running-time measure).
	Span int
	// AllAwake reports whether every station woke within the budget.
	AllAwake bool
	// AwakeTime[i] is the absolute round station i woke, or -1.
	AwakeTime []int
	// Broadcast carries the underlying multi-source run.
	Broadcast *broadcast.Result
}

// Run executes the wake-up protocol under the adversarial schedule.
func Run(net *network.Network, cfg broadcast.Config, seed uint64, sched Schedule) (*Result, error) {
	if err := sched.Validate(net.N()); err != nil {
		return nil, err
	}
	br, err := broadcast.RunNoSMulti(net, cfg, seed, sched.WakeAt, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{
		AllAwake:  br.AllInformed,
		AwakeTime: br.InformTime,
		Broadcast: br,
	}
	first := sched.FirstWake()
	if br.AllInformed {
		last := 0
		for _, at := range br.InformTime {
			if at > last {
				last = at
			}
		}
		res.Span = last - first + 1
	} else {
		res.Span = br.Rounds - first
	}
	return res, nil
}
