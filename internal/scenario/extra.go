package scenario

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
	"sinrcast/internal/network"
)

// This file registers the families that exist only in the registry
// (no netgen wrapper): geometries probing the density/percolation and
// clustering regimes of the related work — annulus rings, dumbbells
// with a thin bridge, perforated grids, density-gradient strips, and
// stars of clusters.

func init() {
	Register(Family{
		Name: "annulus",
		Doc:  "n stations area-uniform in a ring sized for the target density; shrinks the ring until connected",
		Params: []Param{
			nParam(128),
			{Name: "density", Doc: "target stations per communication ball", Default: 8, Min: 0, Max: inf},
			{Name: "thickness", Doc: "ring width as a fraction of its mean radius, in (0,2)", Default: 0.5, Min: 0, Max: 2},
		},
		Build: buildAnnulus,
	})
	Register(Family{
		Name: "dumbbell",
		Doc:  "two uniform-disc blobs joined by a thin single-station-wide bridge; shrinks the blobs until connected",
		Params: []Param{
			nParam(96),
			{Name: "radius", Doc: "blob radius (≤ comm radius)", Default: 0.3, Min: 0, Max: inf},
			{Name: "bridge", Doc: "center-to-center bridge length in comm radii", Default: 3, Min: 0, Max: inf},
		},
		Build: buildDumbbell,
	})
	Register(Family{
		Name: "gridholes",
		Doc:  "lattice with a periodic pattern of square holes (~25% carved); stays connected by construction",
		Params: []Param{
			{Name: "n", Doc: "approximate station count after carving", Default: 128, Min: 1, Max: inf, Int: true},
			{Name: "spacing", Doc: "lattice spacing (≤ comm radius)", Default: 0.3, Min: 0, Max: inf},
			{Name: "hole", Doc: "hole side length in cells", Default: 2, Min: 1, Max: inf, Int: true},
		},
		Build: buildGridHoles,
	})
	Register(Family{
		Name: "gradient",
		Doc:  "strip one comm-radius tall whose station density ramps linearly along its length; shrinks until connected",
		Params: []Param{
			nParam(128),
			{Name: "density", Doc: "mean stations per communication ball", Default: 8, Min: 0, Max: inf},
			{Name: "grad", Doc: "density ratio between the dense and sparse ends (≥1)", Default: 8, Min: 1, Max: inf},
		},
		Build: buildGradient,
	})
	Register(Family{
		Name: "starclusters",
		Doc:  "hub cluster with radial arms, each a relay chain ending in its own cluster; connected by construction",
		Params: []Param{
			{Name: "arms", Doc: "number of radial arms", Default: 5, Min: 1, Max: inf, Int: true},
			{Name: "m", Doc: "stations per cluster (hub and arm ends)", Default: 12, Min: 1, Max: inf, Int: true},
			{Name: "hops", Doc: "relay stations per arm", Default: 3, Min: 0, Max: inf, Int: true},
			{Name: "radius", Doc: "cluster radius (≤ commRadius/2)", Default: 0.1, Min: 0, Max: inf},
		},
		ForN: func(n int) map[string]float64 {
			// n = m·(arms+1) + arms·hops with arms=5, hops=3.
			m := (n - 5*3) / (5 + 1)
			if m < 1 {
				m = 1
			}
			return map[string]float64{"arms": 5, "m": float64(m), "hops": 3}
		},
		Build: buildStarClusters,
	})
}

func buildAnnulus(b Build) (*network.Network, error) {
	n, density, t := b.Int("n"), b.Float("density"), b.Float("thickness")
	if density <= 0 {
		return nil, specErrorf("scenario: annulus: density %v must be positive", density)
	}
	if t <= 0 || t >= 2 {
		return nil, specErrorf("scenario: annulus: thickness %v must be in (0,2)", t)
	}
	r := b.Rng()
	rad := b.Phys.CommRadius()
	// Ring area matching the density target: area = n·π·rad²/density;
	// with inner/outer radii Rm(1∓t/2) the area is 2π·t·Rm².
	area := float64(n) * math.Pi * rad * rad / density
	mean := math.Sqrt(area / (2 * math.Pi * t))
	for attempt := 0; attempt < maxAttempts; attempt++ {
		in, out := mean*(1-t/2), mean*(1+t/2)
		in2, out2 := in*in, out*out
		pts := make([]geom.Point, n)
		for i := range pts {
			ang := r.Range(0, 2*math.Pi)
			// Area-uniform radial coordinate: r² uniform in [in², out²].
			radial := math.Sqrt(in2 + r.Float64()*(out2-in2))
			pts[i] = geom.Point{X: radial * math.Cos(ang), Y: radial * math.Sin(ang)}
		}
		net, err := network.New(geom.NewEuclidean(pts), b.Phys)
		if err != nil {
			return nil, err
		}
		if net.Connected() {
			net.Meta = map[string]float64{"attempts": float64(attempt + 1), "meanradius": mean}
			return net, nil
		}
		mean *= 0.92 // densify and retry
	}
	return nil, fmt.Errorf("scenario: annulus: no connected deployment after %d attempts (n=%d, final mean radius=%.4g)",
		maxAttempts, n, mean)
}

func buildDumbbell(b Build) (*network.Network, error) {
	n, radius, bridge := b.Int("n"), b.Float("radius"), b.Float("bridge")
	rc := b.Phys.CommRadius()
	if radius <= 0 || radius > rc {
		return nil, specErrorf("scenario: dumbbell: radius %v must be in (0, %v]", radius, rc)
	}
	if bridge <= 0 {
		return nil, specErrorf("scenario: dumbbell: bridge %v must be positive", bridge)
	}
	bridgeLen := bridge * rc
	// Interior relay stations spaced ≤ 0.9·rc keep the bridge connected.
	hops := int(math.Ceil(bridgeLen/(0.9*rc))) - 1
	if hops < 0 {
		hops = 0
	}
	if n < hops+2 {
		return nil, specErrorf("scenario: dumbbell: n=%d too small for a bridge of %d relays plus two blobs", n, hops)
	}
	blob := n - hops
	left, right := blob/2, blob-blob/2
	r := b.Rng()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		pts := make([]geom.Point, 0, n)
		pts = discCluster(r, pts, 0, 0, radius, left)
		pts = discCluster(r, pts, bridgeLen, 0, radius, right)
		for h := 1; h <= hops; h++ {
			pts = append(pts, geom.Point{X: bridgeLen * float64(h) / float64(hops+1), Y: 0})
		}
		net, err := network.New(geom.NewEuclidean(pts), b.Phys)
		if err != nil {
			return nil, err
		}
		if net.Connected() {
			net.Meta = map[string]float64{"attempts": float64(attempt + 1), "radius": radius}
			return net, nil
		}
		radius *= 0.9 // densify the blobs and retry
	}
	return nil, fmt.Errorf("scenario: dumbbell: no connected deployment after %d attempts (n=%d, final radius=%.4g)",
		maxAttempts, n, radius)
}

func buildGridHoles(b Build) (*network.Network, error) {
	n, spacing, hole := b.Int("n"), b.Float("spacing"), b.Int("hole")
	if spacing <= 0 || spacing > b.Phys.CommRadius() {
		return nil, specErrorf("scenario: gridholes: spacing %v must be in (0, %v]", spacing, b.Phys.CommRadius())
	}
	// Holes are h×h blocks tiled with period 2h: cells with both
	// coordinates mod 2h below h are carved, removing 1/4 of the
	// lattice. Rows and columns with index mod 2h ≥ h stay complete, so
	// the remainder is connected whenever spacing ≤ comm radius.
	cols := int(math.Ceil(math.Sqrt(float64(n) / 0.75)))
	if cols < 2*hole {
		return nil, specErrorf("scenario: gridholes: hole=%d too large for n=%d (the %d×%d lattice needs ≥ %d columns)",
			hole, n, cols, cols, 2*hole)
	}
	pts := make([]geom.Point, 0, n)
	for y := 0; y < cols; y++ {
		for x := 0; x < cols; x++ {
			if x%(2*hole) < hole && y%(2*hole) < hole {
				continue
			}
			pts = append(pts, geom.Point{X: float64(x) * spacing, Y: float64(y) * spacing})
		}
	}
	net, err := network.New(geom.NewEuclidean(pts), b.Phys)
	if err != nil {
		return nil, err
	}
	if !net.Connected() {
		return nil, fmt.Errorf("scenario: gridholes: carved lattice disconnected (cols=%d, hole=%d)", cols, hole)
	}
	return net, nil
}

func buildGradient(b Build) (*network.Network, error) {
	n, density, grad := b.Int("n"), b.Float("density"), b.Float("grad")
	if density <= 0 {
		return nil, specErrorf("scenario: gradient: density %v must be positive", density)
	}
	if grad < 1 {
		return nil, specErrorf("scenario: gradient: grad %v must be ≥ 1", grad)
	}
	r := b.Rng()
	rc := b.Phys.CommRadius()
	height := rc
	length := float64(n) * math.Pi * rc * rc / (density * height)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		pts := make([]geom.Point, n)
		for i := range pts {
			// Longitudinal coordinate with density ∝ 1+(grad-1)·t: invert
			// the quadratic CDF (t + (grad-1)·t²/2) / (1 + (grad-1)/2).
			u := r.Float64()
			t := u
			if grad > 1 {
				g := grad - 1
				t = (math.Sqrt(1+2*g*u*(1+g/2)) - 1) / g
			}
			pts[i] = geom.Point{X: t * length, Y: r.Range(0, height)}
		}
		net, err := network.New(geom.NewEuclidean(pts), b.Phys)
		if err != nil {
			return nil, err
		}
		if net.Connected() {
			net.Meta = map[string]float64{"attempts": float64(attempt + 1), "length": length}
			return net, nil
		}
		length *= 0.92 // densify and retry
	}
	return nil, fmt.Errorf("scenario: gradient: no connected deployment after %d attempts (n=%d, final length=%.4g)",
		maxAttempts, n, length)
}

func buildStarClusters(b Build) (*network.Network, error) {
	arms, m, hops, radius := b.Int("arms"), b.Int("m"), b.Int("hops"), b.Float("radius")
	rc := b.Phys.CommRadius()
	if radius <= 0 || radius > rc/2 {
		return nil, specErrorf("scenario: starclusters: radius %v must be in (0, %v]", radius, rc/2)
	}
	r := b.Rng()
	// Every cluster anchors its first station exactly at its center, so
	// cluster members (within radius ≤ rc/2 of the center) and the
	// relay chains (spaced 0.9·rc) are connected by construction.
	pts := make([]geom.Point, 0, m*(arms+1)+arms*hops)
	pts = discCluster(r, pts, 0, 0, radius, m)
	step := 0.9 * rc
	for a := 0; a < arms; a++ {
		ang := 2 * math.Pi * float64(a) / float64(arms)
		dx, dy := math.Cos(ang), math.Sin(ang)
		for h := 1; h <= hops; h++ {
			pts = append(pts, geom.Point{X: float64(h) * step * dx, Y: float64(h) * step * dy})
		}
		end := float64(hops+1) * step
		pts = discCluster(r, pts, end*dx, end*dy, radius, m)
	}
	net, err := network.New(geom.NewEuclidean(pts), b.Phys)
	if err != nil {
		return nil, err
	}
	if !net.Connected() {
		return nil, fmt.Errorf("scenario: starclusters: star disconnected (arms=%d, hops=%d)", arms, hops)
	}
	return net, nil
}
