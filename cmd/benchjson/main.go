// Command benchjson converts `go test -bench` output into JSON, so
// benchmark trajectories can be committed and diffed machine-readably
// (BENCH_protocols.json at the repository root is generated this way):
//
//	go test -run '^$' -bench Resolve -benchtime 1x ./internal/sinr | benchjson
//	(go test -run '^$' -bench Resolve -benchtime 1x ./internal/sinr
//	 go test -run '^$' -bench E13 -benchtime 1x .) | benchjson > BENCH_protocols.json
//
// It parses the standard bench line format — name, iteration count,
// then value/unit metric pairs (including custom b.ReportMetric units)
// — plus the goos/goarch/pkg/cpu context headers. Multiple package
// blocks concatenate naturally; each benchmark records the package it
// came from. A FAIL line in the input is a hard error (exit 1), so a
// broken bench cannot serialize as an empty success.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-bench path and the
	// -P GOMAXPROCS suffix, e.g. "BenchmarkResolve/n=1024/parallel-8".
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (from the "pkg:" header).
	Pkg string `json:"pkg,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported pair (ns/op, B/op,
	// allocs/op, and any custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the JSON document: the shared context headers plus every
// benchmark in input order.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseBench reads `go test -bench` text and returns the report. It
// tolerates unknown chatter lines (PASS, ok, test logs) but rejects
// FAIL and malformed benchmark lines.
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case line == "FAIL" || strings.HasPrefix(line, "FAIL\t") || strings.HasPrefix(line, "--- FAIL"):
			return nil, fmt.Errorf("benchjson: input contains a test failure: %q", line)
		case strings.HasPrefix(line, "Benchmark"):
			if len(strings.Fields(line)) == 1 {
				// The bare-name pre-announcement go test prints before
				// a benchmark's own output; the result line follows.
				continue
			}
			b, err := parseLine(line, pkg)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one "BenchmarkName  N  v unit  v unit ..." line.
func parseLine(line, pkg string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("benchjson: malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchjson: bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: fields[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("benchjson: odd metric fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchjson: bad metric value in %q: %v", line, err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}

func main() {
	rep, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
