package network

import (
	"testing"
	"testing/quick"

	"sinrcast/internal/geom"
	"sinrcast/internal/rng"
	"sinrcast/internal/sinr"
)

func randomNet(t testing.TB, seed uint64, n int, side float64) *Network {
	t.Helper()
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, side), Y: r.Range(0, side)}
	}
	net, err := New(geom.NewEuclidean(pts), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestPropertyBFSEdgesDifferByAtMostOne(t *testing.T) {
	// For every edge (u,v), |dist(u)-dist(v)| <= 1 for any BFS source.
	if err := quick.Check(func(seed uint16) bool {
		net := randomNet(t, uint64(seed)+3, 24, 3)
		dist := net.BFS(0)
		for u := 0; u < net.N(); u++ {
			for _, v := range net.Adj[u] {
				du, dv := dist[u], dist[int(v)]
				if du < 0 || dv < 0 {
					if du >= 0 || dv >= 0 {
						return false // connected to a reached vertex but unreached
					}
					continue
				}
				if du-dv > 1 || dv-du > 1 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDiameterBounds(t *testing.T) {
	// ecc(0) <= D <= 2·ecc(0) for connected graphs; DiameterApprox in
	// [D/2, D].
	if err := quick.Check(func(seed uint16) bool {
		net := randomNet(t, uint64(seed)+17, 20, 2)
		if !net.Connected() {
			return true // skip
		}
		ecc, _ := net.Eccentricity(0)
		d, _ := net.Diameter()
		if d < ecc || d > 2*ecc {
			return false
		}
		ad, _ := net.DiameterApprox()
		return ad >= d/2 && ad <= d
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyShortestPathMatchesBFS(t *testing.T) {
	if err := quick.Check(func(seed uint16, dstRaw uint8) bool {
		net := randomNet(t, uint64(seed)+29, 18, 2.5)
		dst := int(dstRaw) % net.N()
		dist := net.BFS(0)
		sp := net.ShortestPath(0, dst)
		if dist[dst] < 0 {
			return sp == nil
		}
		if len(sp) != dist[dst]+1 {
			return false
		}
		if sp[0] != 0 || sp[len(sp)-1] != dst {
			return false
		}
		// Consecutive path nodes must be communication-graph neighbors.
		for i := 1; i < len(sp); i++ {
			found := false
			for _, w := range net.Adj[sp[i-1]] {
				if int(w) == sp[i] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGranularityAtLeastOne(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		net := randomNet(t, uint64(seed)+43, 15, 3)
		return net.Granularity() >= 1
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyComponentCountConsistent(t *testing.T) {
	// Connected() iff ComponentCount() == 1.
	if err := quick.Check(func(seed uint16) bool {
		net := randomNet(t, uint64(seed)+53, 16, 4)
		return net.Connected() == (net.ComponentCount() == 1)
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
