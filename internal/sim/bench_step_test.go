package sim

import (
	"testing"

	"sinrcast/internal/sinr"
)

// nullSubsetResolver is a physical layer that never delivers and never
// allocates, so the steady-state Step benchmark isolates the sim-layer
// cost: calendar pops, sleeper merging, scheduling.
type nullSubsetResolver struct{ n int }

func (r nullSubsetResolver) N() int                                     { return r.n }
func (r nullSubsetResolver) Resolve(tx []int) []sinr.Reception          { return nil }
func (r nullSubsetResolver) ResolveFor(tx, recv []int) []sinr.Reception { return nil }

// periodicSleeper transmits once per period on its own offset and
// sleeps the rest — the densest calendar traffic shape (every wake is
// rescheduled every period).
type periodicSleeper struct{ id, period int }

func (p *periodicSleeper) Tick(t int) (bool, Message) {
	if t%p.period == p.id%p.period {
		return true, Message{Kind: 1, A: int64(p.id)}
	}
	return false, Message{}
}

func (p *periodicSleeper) Recv(int, Message) {}

func (p *periodicSleeper) TickWake(t int) (bool, Message, int) {
	transmit, msg := p.Tick(t)
	off := p.id % p.period
	d := (off - (t+1)%p.period + p.period) % p.period
	return transmit, msg, t + 1 + d
}

// BenchmarkStepWakeScheduled measures the steady-state cost of one
// wake-scheduled round: n sleepers waking every period rounds, so each
// Step pops, sorts and reschedules n/period calendar entries. After
// the warm-up has grown the calendar ring and the bucket capacities,
// Step must run allocation-free — CI gates on the reported
// 0 allocs/op.
func BenchmarkStepWakeScheduled(b *testing.B) {
	const n, period = 65536, 512
	protos := make([]Protocol, n)
	for i := 0; i < n; i++ {
		protos[i] = &periodicSleeper{id: i, period: period}
	}
	prev := SetWakeSchedulingDefault(true)
	defer SetWakeSchedulingDefault(prev)
	e, err := NewEngine(nullSubsetResolver{n}, protos)
	if err != nil {
		b.Fatal(err)
	}
	e.Run(2*period, nil) // reach steady state: ring grown, buckets at capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
