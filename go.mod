module sinrcast

go 1.24
