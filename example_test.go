package sinrcast_test

import (
	"fmt"
	"log"

	"sinrcast"
)

// The core workflow: generate, broadcast, inspect.
func Example() {
	net, err := sinrcast.GeneratePath(sinrcast.DefaultPhysical(), 12, 0.9, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sinrcast.Broadcast(net, sinrcast.Options{Seed: 7, Payload: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("informed:", res.AllInformed)
	fmt.Println("source inform time:", res.InformTime[0])
	// Output:
	// informed: true
	// source inform time: 0
}

// Colorings can be audited against the paper's lemmas.
func ExampleColorize() {
	net, err := sinrcast.GeneratePath(sinrcast.DefaultPhysical(), 16, 0.9, 1)
	if err != nil {
		log.Fatal(err)
	}
	col, err := sinrcast.Colorize(net, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stations colored:", len(col.Colors))
	fmt.Println("Lemma 1 holds:", sinrcast.CheckLemma1(net, col.Colors) <= 1.0)
	fmt.Println("Lemma 2 holds:", sinrcast.CheckLemma2(net, col.Colors) > 0)
	// Output:
	// stations colored: 16
	// Lemma 1 holds: true
	// Lemma 2 holds: true
}

// The alert protocol's negative case stays silent.
func ExampleAlert() {
	net, err := sinrcast.GeneratePath(sinrcast.DefaultPhysical(), 10, 0.9, 1)
	if err != nil {
		log.Fatal(err)
	}
	nobody := make([]bool, net.N())
	res, err := sinrcast.Alert(net, 5, nobody)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correct:", res.Correct)
	fmt.Println("flood transmissions:", res.FloodTransmissions)
	// Output:
	// correct: true
	// flood transmissions: 0
}

// Consensus agrees on the minimum of all stations' values.
func ExampleConsensus() {
	net, err := sinrcast.GenerateUniform(sinrcast.DefaultPhysical(), 24, 8, 9)
	if err != nil {
		log.Fatal(err)
	}
	msgs := make([]int64, net.N())
	for i := range msgs {
		msgs[i] = int64(10 + i%7)
	}
	res, err := sinrcast.Consensus(net, 5, 31, msgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("agreed:", res.Agreed)
	fmt.Println("value:", res.Values[0])
	// Output:
	// agreed: true
	// value: 10
}
