package sinr

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
)

// Resolver is the full physical-layer capability set every engine in
// this package implements: whole-round resolution, subset resolution
// (byte-identical to a filtered Resolve — see each engine's ResolveFor),
// and parallel-runtime control. It is what AutoEngine returns;
// sim.Engine accepts any Resolver (its own interface is a subset of
// this one).
type Resolver interface {
	// Resolve computes all receptions of one round.
	Resolve(tx []int) []Reception
	// ResolveFor computes the receptions of the strictly increasing
	// receiver subset, byte-identical to a filtered Resolve.
	ResolveFor(tx []int, receivers []int) []Reception
	// N returns the number of stations.
	N() int
	// Params returns the physical parameters.
	Params() Params
	// SetWorkers bounds round-chunking concurrency (≤ 0 = GOMAXPROCS).
	SetWorkers(w int)
	// SetPinned toggles best-effort OS-thread/CPU pinning of the
	// parallel workers. Output is byte-identical either way.
	SetPinned(on bool)
}

var (
	_ Resolver = (*Engine)(nil)
	_ Resolver = (*GridEngine)(nil)
	_ Resolver = (*HierEngine)(nil)
)

// ResolverFor is the subset-resolution capability alone, for callers
// that hold an engine behind a narrower interface and want to
// type-assert just this.
type ResolverFor interface {
	ResolveFor(tx []int, receivers []int) []Reception
}

// Accuracy is the error budget AutoEngine may trade for speed.
type Accuracy int

const (
	// AccuracyExact always selects the exact Engine.
	AccuracyExact Accuracy = iota
	// AccuracyBalanced keeps the exact engine up to a few thousand
	// stations and approximates beyond — the default for large-n
	// experiments.
	AccuracyBalanced
	// AccuracyFast approximates aggressively (thresholds one octave
	// lower); for throughput studies where the far-field tail is noise.
	AccuracyFast
)

// EngineKind names an engine implementation.
type EngineKind string

const (
	KindExact EngineKind = "exact"
	KindGrid  EngineKind = "grid"
	KindHier  EngineKind = "hier"
)

// Choose returns the engine kind AutoEngine builds for the given space,
// parameters and accuracy. The policy is driven by n and α:
//
//   - non-Euclidean spaces and AccuracyExact always resolve exactly
//     (the approximate engines need planar cell geometry);
//   - α close to the growth degree keeps the exact engine too — the
//     far-field interference sum barely converges there, so aggregation
//     error is not dominated by the tail;
//   - otherwise small n stays exact (the exact engine is fast enough
//     and is the paper's model), mid n takes the grid, and large n the
//     hierarchy, whose descent cost is logarithmic in the cell count
//     and amortized across the receivers of a block (shared frontier)
//     and across consecutive rounds (delta aggregation) — see the
//     HierEngine cost model. The thresholds predate that amortization
//     and are deliberately kept: E14's engine column is part of its
//     committed output, and the exact engine remains the reference
//     wherever it is affordable.
func Choose(s geom.Space, p Params, acc Accuracy) EngineKind {
	if _, ok := s.(*geom.Euclidean); !ok || acc == AccuracyExact {
		return KindExact
	}
	if p.Alpha <= s.Growth()+0.5 {
		return KindExact
	}
	gridMin, hierMin := 4096, 32768
	if acc == AccuracyFast {
		gridMin, hierMin = 512, 8192
	}
	switch n := s.Len(); {
	case n < gridMin:
		return KindExact
	case n < hierMin:
		return KindGrid
	default:
		return KindHier
	}
}

// AutoEngine builds the engine Choose selects, with the package default
// geometry (DefaultCellSize, DefaultNearRadius, DefaultTheta) for the
// approximate kinds.
func AutoEngine(s geom.Space, p Params, acc Accuracy) (Resolver, error) {
	return build(Choose(s, p, acc), s, p)
}

// NewNamedEngine builds an engine by name: "exact", "grid", "hier", or
// "auto" (= AutoEngine at AccuracyBalanced). It is the single mapping
// behind every -engine CLI flag. "grid" and "hier" require a Euclidean
// space; "auto" falls back to exact on any other metric.
func NewNamedEngine(name string, s geom.Space, p Params) (Resolver, error) {
	switch name {
	case "auto":
		return AutoEngine(s, p, AccuracyBalanced)
	case string(KindExact), string(KindGrid), string(KindHier):
		return build(EngineKind(name), s, p)
	default:
		return nil, fmt.Errorf("sinr: unknown engine %q (want exact, grid, hier or auto)", name)
	}
}

// build constructs one concrete engine kind. The approximate kinds use
// the default geometry with the cell size scaled up (power-of-two
// steps) until the grid fits the cell budget — a sparse deployment
// with a huge bounding box (long relay arms, corridor chains) is a
// legitimate input here, not the pathology the budget guards against;
// the explicit constructors still take their cellSize literally.
func build(kind EngineKind, s geom.Space, p Params) (Resolver, error) {
	switch kind {
	case KindExact:
		return NewEngine(s, p)
	case KindGrid, KindHier:
		eu, ok := s.(*geom.Euclidean)
		if !ok {
			return nil, fmt.Errorf("sinr: the %s engine needs a Euclidean space (got %T); use the exact engine", kind, s)
		}
		cell := fitCellSize(eu.Pts)
		if kind == KindGrid {
			return NewGridEngine(eu, p, cell, DefaultNearRadius)
		}
		return NewHierEngine(eu, p, cell, DefaultNearRadius, DefaultTheta)
	default:
		return nil, fmt.Errorf("sinr: unknown engine kind %q", kind)
	}
}

// fitCellSize returns DefaultCellSize doubled until the deployment's
// bounding box fits the gridDims cell budget (same arithmetic, so the
// constructors are guaranteed to accept the result). Coarser cells
// trade a little far-field accuracy in sparse regions for not
// allocating millions of empty buckets.
func fitCellSize(pts []geom.Point) float64 {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, q := range pts {
		minX = math.Min(minX, q.X)
		minY = math.Min(minY, q.Y)
		maxX = math.Max(maxX, q.X)
		maxY = math.Max(maxY, q.Y)
	}
	limit := cellBudget(len(pts))
	cell := DefaultCellSize
	for i := 0; i < 64; i++ {
		cols := math.Floor((maxX-minX)/cell) + 1
		rows := math.Floor((maxY-minY)/cell) + 1
		if cols*rows <= limit {
			break
		}
		cell *= 2
	}
	return cell
}
