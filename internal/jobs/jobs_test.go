package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSubmitRunWait(t *testing.T) {
	m := New(Config{Workers: 2, QueueDepth: 4})
	defer m.Shutdown(context.Background())
	var gotWorkers int
	h, err := m.Submit("t", func(ctx context.Context, w int) error {
		gotWorkers = w
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	if s, _ := h.State(); s != StateDone {
		t.Fatalf("state %s, want done", s)
	}
	if gotWorkers != m.Config().EngineWorkersPerJob() {
		t.Fatalf("engine workers %d, want %d", gotWorkers, m.Config().EngineWorkersPerJob())
	}
	if st := m.Stats(); st.Submitted != 1 || st.Completed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEngineWorkerBudgetSplit(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{Workers: 4, EngineWorkers: 8}, 2},
		{Config{Workers: 4, EngineWorkers: 3}, 1}, // floor at 1
		{Config{Workers: 1, EngineWorkers: 16}, 16},
	}
	for _, c := range cases {
		if got := c.cfg.EngineWorkersPerJob(); got != c.want {
			t.Errorf("%+v: per-job share %d, want %d", c.cfg, got, c.want)
		}
	}
}

// gatedJob blocks until released, recording that it started.
type gatedJob struct {
	started chan struct{}
	release chan struct{}
}

func newGatedJob() *gatedJob {
	return &gatedJob{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedJob) run(ctx context.Context, _ int) error {
	close(g.started)
	select {
	case <-g.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TestQueueFullBackpressure pins the admission contract: with one busy
// worker and a depth-2 queue, the fourth submission is rejected
// immediately with ErrQueueFull — never blocked, never buffered.
func TestQueueFullBackpressure(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 2})
	defer m.Shutdown(context.Background())
	g := newGatedJob()
	running, err := m.Submit("running", g.run)
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	for i := 0; i < 2; i++ {
		if _, err := m.Submit("queued", func(ctx context.Context, _ int) error { return nil }); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	if _, err := m.Submit("overflow", func(ctx context.Context, _ int) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if st := m.Stats(); st.Rejected != 1 || st.Queued != 2 {
		t.Fatalf("stats %+v", st)
	}
	close(g.release)
	if err := running.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
}

func TestCancelQueuedNeverRuns(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	defer m.Shutdown(context.Background())
	g := newGatedJob()
	if _, err := m.Submit("running", g.run); err != nil {
		t.Fatal(err)
	}
	<-g.started
	var ran atomic.Bool
	h, err := m.Submit("queued", func(ctx context.Context, _ int) error {
		ran.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(h.ID()) {
		t.Fatal("Cancel returned false for a known job")
	}
	if err := h.Wait(waitCtx(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait: %v, want context.Canceled", err)
	}
	if s, _ := h.State(); s != StateCanceled {
		t.Fatalf("state %s, want canceled", s)
	}
	close(g.release)
	// Drain the worker past the cancelled entry; it must skip it.
	h2, err := m.Submit("after", func(ctx context.Context, _ int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	if ran.Load() {
		t.Fatal("cancelled queued job ran")
	}
}

func TestCancelRunning(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	defer m.Shutdown(context.Background())
	g := newGatedJob()
	h, err := m.Submit("running", g.run)
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	h.Cancel()
	if err := h.Wait(waitCtx(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait: %v, want context.Canceled", err)
	}
	if s, _ := h.State(); s != StateCanceled {
		t.Fatalf("state %s, want canceled", s)
	}
}

// TestGracefulShutdown is the drain contract: in-flight jobs complete,
// queued jobs fail with ErrShutdown without ever running, and new
// submissions are rejected.
func TestGracefulShutdown(t *testing.T) {
	m := New(Config{Workers: 2, QueueDepth: 8})
	g1, g2 := newGatedJob(), newGatedJob()
	r1, err := m.Submit("run1", g1.run)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Submit("run2", g2.run)
	if err != nil {
		t.Fatal(err)
	}
	<-g1.started
	<-g2.started
	var ran atomic.Int32
	var queued []*Handle
	for i := 0; i < 4; i++ {
		h, err := m.Submit(fmt.Sprintf("q%d", i), func(ctx context.Context, _ int) error {
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, h)
	}

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- m.Shutdown(context.Background()) }()

	// Queued jobs fail with the clean shutdown error before the
	// in-flight jobs have even finished.
	for i, h := range queued {
		if err := h.Wait(waitCtx(t)); !errors.Is(err, ErrShutdown) {
			t.Fatalf("queued job %d: err %v, want ErrShutdown", i, err)
		}
		if s, _ := h.State(); s != StateFailed {
			t.Fatalf("queued job %d: state %s, want failed", i, s)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("%d queued jobs ran during shutdown", ran.Load())
	}

	// New submissions are rejected while draining.
	if _, err := m.Submit("late", func(ctx context.Context, _ int) error { return nil }); !errors.Is(err, ErrShutdown) {
		t.Fatalf("late submit: err %v, want ErrShutdown", err)
	}

	// In-flight jobs drain to completion.
	close(g1.release)
	close(g2.release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	for i, h := range []*Handle{r1, r2} {
		if s, _ := h.State(); s != StateDone {
			t.Fatalf("in-flight job %d: state %s, want done", i, s)
		}
	}
}

// TestShutdownDeadlineForcesCancel: when the drain context expires,
// running jobs are cancelled through their own contexts and Shutdown
// still waits for them to unwind.
func TestShutdownDeadlineForcesCancel(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 2})
	g := newGatedJob()
	h, err := m.Submit("stuck", g.run)
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown returned %v, want DeadlineExceeded", err)
	}
	if s, _ := h.State(); s != StateCanceled {
		t.Fatalf("stuck job state %s, want canceled", s)
	}
}

func TestPanicIsolation(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	defer m.Shutdown(context.Background())
	h, err := m.Submit("boom", func(ctx context.Context, _ int) error { panic("boom") })
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(waitCtx(t)); err == nil {
		t.Fatal("panicking job reported success")
	}
	if s, _ := h.State(); s != StateFailed {
		t.Fatalf("state %s, want failed", s)
	}
	// The worker survived; the next job runs.
	h2, err := m.Submit("after", func(ctx context.Context, _ int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSubmitWaitCancel hammers the manager from many
// goroutines — the race detector's food (the CI race job covers this
// package).
func TestConcurrentSubmitWaitCancel(t *testing.T) {
	m := New(Config{Workers: 4, QueueDepth: 256, EngineWorkers: 4})
	defer m.Shutdown(context.Background())
	var wg sync.WaitGroup
	var completed atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				h, err := m.Submit("w", func(ctx context.Context, _ int) error { return nil })
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if g%2 == 0 {
					h.Cancel() // may race completion; both outcomes fine
				}
				h.Wait(waitCtx(t))
				completed.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if completed.Load() == 0 {
		t.Fatal("no jobs completed")
	}
	if _, ok := m.Get("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

// TestReserveThrough pins the replay id guard: after ReserveThrough(n)
// no fresh Submit assigns an id at or below jn, and lower reservations
// never move the counter backwards.
func TestReserveThrough(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	defer m.Shutdown(context.Background())
	m.ReserveThrough(41)
	h, err := m.Submit("a", func(ctx context.Context, _ int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != "j42" {
		t.Fatalf("id after ReserveThrough(41) = %s, want j42", h.ID())
	}
	m.ReserveThrough(3)
	h2, err := m.Submit("b", func(ctx context.Context, _ int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if h2.ID() != "j43" {
		t.Fatalf("id after lower reservation = %s, want j43", h2.ID())
	}
}

// TestRegisterFailed pins the replay-overflow terminal record: the
// handle is immediately terminal with the given cause, queryable by
// id, occupies no queue slot, reserves its id, and keeps the
// Submitted == Completed drain invariant.
func TestRegisterFailed(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	cause := errors.New("replay: queue full")
	h, err := m.RegisterFailed("j9", "lost", cause)
	if err != nil {
		t.Fatal(err)
	}
	if s, herr := h.State(); s != StateFailed || !errors.Is(herr, cause) {
		t.Fatalf("state %s err %v, want failed with the cause", s, herr)
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("Done channel not closed for a pre-failed handle")
	}
	if err := h.Wait(waitCtx(t)); !errors.Is(err, cause) {
		t.Fatalf("Wait = %v, want the cause", err)
	}
	if got, ok := m.Get("j9"); !ok || got != h {
		t.Fatal("registered handle not queryable by id")
	}
	if _, err := m.RegisterFailed("j9", "dup", cause); err == nil {
		t.Fatal("duplicate id accepted")
	}
	h2, err := m.Submit("next", func(ctx context.Context, _ int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if h2.ID() != "j10" {
		t.Fatalf("fresh id %s did not clear the registered id, want j10", h2.ID())
	}
	if err := m.Shutdown(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Submitted != st.Completed {
		t.Fatalf("Submitted %d != Completed %d after drain", st.Submitted, st.Completed)
	}
}
