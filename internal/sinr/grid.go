package sinr

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
)

// GridEngine resolves rounds approximately for Euclidean networks: the
// plane is bucketed into cells of side cellSize; interference from cells
// farther than nearRadius is approximated by the cell's aggregate power
// placed at its center. Near-field interference (and the decoding
// candidate) stay exact, so approximation error only perturbs the far
// tail, which decays as d^-α with α > 2.
//
// Like Engine, path loss goes through the specialized Kernel and the
// per-receiver loop is sharded across the reusable worker pool on large
// networks, with byte-identical output for every worker count. A
// GridEngine is not safe for concurrent use by multiple goroutines.
//
// Use for large-n scaling benches; the exact Engine remains the default
// everywhere correctness matters. TestGridEngineAgreement measures the
// disagreement rate against the exact engine.
type GridEngine struct {
	params   Params
	kern     Kernel
	pts      []geom.Point
	cellSize float64
	nearR2   float64

	cols, rows int
	minX, minY float64
	cellOf     []int32 // station -> cell
	cellStart  []int32 // CSR index of stations per cell
	cellItems  []int32 // station ids sorted by cell
	cellCenter []geom.Point

	workers      int
	minParallelN int
	par          shardRunner
	shardFn      func(shard int)

	// per-round scratch
	cellPower []float64
	txInCell  [][]int32
	isTx      []bool
	liveCells []int32
	nearCells int
	out       []Reception
}

// NewGridEngine builds a grid engine over Euclidean points. cellSize is
// the bucket side; nearRadius is the exact-summation radius (transmitters
// within nearRadius of a receiver are summed exactly).
func NewGridEngine(eu *geom.Euclidean, p Params, cellSize, nearRadius float64) (*GridEngine, error) {
	if err := p.Validate(eu.Growth()); err != nil {
		return nil, err
	}
	if cellSize <= 0 || nearRadius <= 0 {
		return nil, fmt.Errorf("sinr: cellSize %v and nearRadius %v must be positive", cellSize, nearRadius)
	}
	pts := eu.Pts
	n := len(pts)
	if n == 0 {
		return nil, fmt.Errorf("sinr: empty point set")
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, q := range pts {
		minX = math.Min(minX, q.X)
		minY = math.Min(minY, q.Y)
		maxX = math.Max(maxX, q.X)
		maxY = math.Max(maxY, q.Y)
	}
	cols := int((maxX-minX)/cellSize) + 1
	rows := int((maxY-minY)/cellSize) + 1
	g := &GridEngine{
		params:   p,
		kern:     NewKernel(p.Alpha),
		pts:      pts,
		cellSize: cellSize,
		nearR2:   nearRadius * nearRadius,
		cols:     cols, rows: rows,
		minX: minX, minY: minY,
		workers:      resolveWorkers(0),
		minParallelN: parallelCrossover,
		cellOf:       make([]int32, n),
		cellPower:    make([]float64, cols*rows),
		txInCell:     make([][]int32, cols*rows),
		isTx:         make([]bool, n),
	}
	counts := make([]int32, cols*rows+1)
	for i, q := range pts {
		c := g.cellIndex(q)
		g.cellOf[i] = int32(c)
		counts[c+1]++
	}
	for c := 1; c <= cols*rows; c++ {
		counts[c] += counts[c-1]
	}
	g.cellStart = counts
	g.cellItems = make([]int32, n)
	fill := make([]int32, cols*rows)
	for i := range pts {
		c := g.cellOf[i]
		g.cellItems[g.cellStart[c]+fill[c]] = int32(i)
		fill[c]++
	}
	g.cellCenter = make([]geom.Point, cols*rows)
	for c := range g.cellCenter {
		cx := c % cols
		cy := c / cols
		g.cellCenter[c] = geom.Point{
			X: minX + (float64(cx)+0.5)*cellSize,
			Y: minY + (float64(cy)+0.5)*cellSize,
		}
	}
	return g, nil
}

func (g *GridEngine) cellIndex(q geom.Point) int {
	cx := int((q.X - g.minX) / g.cellSize)
	cy := int((q.Y - g.minY) / g.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// N returns the number of stations.
func (g *GridEngine) N() int { return len(g.pts) }

// Params returns the physical parameters.
func (g *GridEngine) Params() Params { return g.params }

// SetWorkers sets how many goroutines Resolve may use; w ≤ 0 selects
// runtime.GOMAXPROCS(0). Output is byte-identical for every count.
func (g *GridEngine) SetWorkers(w int) { g.workers = resolveWorkers(w) }

// Resolve computes receptions for one round (see Engine.Resolve for
// semantics). Far-field interference is approximated per cell. The
// returned slice is owned by the engine and valid until the next
// Resolve call.
func (g *GridEngine) Resolve(tx []int) []Reception {
	if len(tx) == 0 {
		return nil
	}
	pw := g.params.Power()

	// Aggregate transmitters by cell (serial: it is O(|tx|)).
	for _, t := range tx {
		g.isTx[t] = true
		c := g.cellOf[t]
		if g.cellPower[c] == 0 && len(g.txInCell[c]) == 0 {
			g.liveCells = append(g.liveCells, c)
		}
		g.cellPower[c] += pw
		g.txInCell[c] = append(g.txInCell[c], int32(t))
	}
	// The exact near region must cover all cells intersecting the
	// nearRadius ball; padding by one cell diagonal is enough.
	g.nearCells = int(math.Ceil(math.Sqrt(g.nearR2)/g.cellSize)) + 1

	n := len(g.pts)
	if g.workers > 1 && n >= g.minParallelN {
		g.resolveParallel()
	} else {
		g.out = g.collectRange(0, n, g.out[:0])
	}

	// Reset scratch.
	for _, c := range g.liveCells {
		g.cellPower[c] = 0
		g.txInCell[c] = g.txInCell[c][:0]
	}
	g.liveCells = g.liveCells[:0]
	for _, t := range tx {
		g.isTx[t] = false
	}
	return g.out
}

// resolveParallel shards the receiver loop. After aggregation all
// per-cell state is read-only, so shards only write their own output
// buffers; concatenating them in shard order reproduces the serial
// receiver order exactly.
func (g *GridEngine) resolveParallel() {
	ensureRunner(&g.par, g, g.workers)
	if g.shardFn == nil {
		g.shardFn = g.runShard
	}
	g.out = g.par.runAndMerge(g.shardFn, g.out)
}

// runShard collects the shard-th contiguous receiver range.
func (g *GridEngine) runShard(shard int) {
	lo, hi := g.par.shardRange(shard, len(g.pts))
	g.par.shardOut[shard] = g.collectRange(lo, hi, g.par.shardOut[shard][:0])
}

// collectRange resolves receivers in [lo,hi), appending receptions to
// dst. It only reads shared state.
func (g *GridEngine) collectRange(lo, hi int, dst []Reception) []Reception {
	p := g.params
	pw := p.Power()
	kern := g.kern
	nearCells := g.nearCells
	for u := lo; u < hi; u++ {
		if g.isTx[u] {
			continue
		}
		up := g.pts[u]
		ucx := int((up.X - g.minX) / g.cellSize)
		ucy := int((up.Y - g.minY) / g.cellSize)
		total := 0.0
		bestD2 := math.Inf(1)
		best := int32(-1)
		// Far field: aggregate cell powers.
		for _, c := range g.liveCells {
			cx := int(c) % g.cols
			cy := int(c) / g.cols
			if abs(cx-ucx) <= nearCells && abs(cy-ucy) <= nearCells {
				continue // handled exactly below
			}
			ctr := g.cellCenter[c]
			dx, dy := up.X-ctr.X, up.Y-ctr.Y
			d2 := dx*dx + dy*dy
			total += g.cellPower[c] * kern.FromDist2(d2)
		}
		// Near field: exact per-transmitter sums.
		for cy := ucy - nearCells; cy <= ucy+nearCells; cy++ {
			if cy < 0 || cy >= g.rows {
				continue
			}
			for cx := ucx - nearCells; cx <= ucx+nearCells; cx++ {
				if cx < 0 || cx >= g.cols {
					continue
				}
				c := cy*g.cols + cx
				for _, t := range g.txInCell[c] {
					tp := g.pts[t]
					dx, dy := up.X-tp.X, up.Y-tp.Y
					d2 := dx*dx + dy*dy
					total += pw * kern.FromDist2(d2)
					if d2 < bestD2 {
						bestD2 = d2
						best = t
					}
				}
			}
		}
		if best < 0 || bestD2 > 1 {
			continue
		}
		s := pw * kern.FromDist2(bestD2)
		intf := total - s
		if intf < 0 {
			intf = 0
		}
		if p.Decodes(s, intf) {
			dst = append(dst, Reception{Receiver: u, Transmitter: int(best)})
		}
	}
	return dst
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
