package sinr

import (
	"fmt"
	"runtime"
	"testing"

	"sinrcast/internal/geom"
	"sinrcast/internal/rng"
)

// forceParallel drops the crossover so tiny test instances exercise the
// parallel path.
func forceParallel(e *Engine, workers int) {
	e.SetWorkers(workers)
	e.minParallelN = 0
}

func randomTxSet(r *rng.Source, n int, p float64) []int {
	var tx []int
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			tx = append(tx, i)
		}
	}
	return tx
}

func diffReceptions(t *testing.T, label string, want, got []Reception) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d receptions serial vs %d parallel", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: reception %d: serial %+v vs parallel %+v", label, i, want[i], got[i])
		}
	}
}

func TestParallelResolveMatchesSerialEuclidean(t *testing.T) {
	for _, n := range []int{16, 97, 512} {
		for _, workers := range []int{2, 3, 7} {
			scene := randomScene(uint64(n*workers)+5, n, 6)
			serial, err := NewEngine(scene, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			serial.SetWorkers(1)
			par, err := NewEngine(scene, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			forceParallel(par, workers)
			r := rng.New(uint64(n) + uint64(workers)*1000)
			for round := 0; round < 25; round++ {
				tx := randomTxSet(r, n, 0.2)
				want := append([]Reception(nil), serial.Resolve(tx)...)
				got := par.Resolve(tx)
				diffReceptions(t, fmt.Sprintf("n=%d w=%d round=%d", n, workers, round), want, got)
			}
		}
	}
}

func TestParallelResolveMatchesSerialGeneric(t *testing.T) {
	// The Line space takes the generic (interface-dispatched) path.
	n := 200
	coords := make([]float64, n)
	r := rng.New(99)
	for i := range coords {
		coords[i] = r.Range(0, 40)
	}
	li := geom.NewLine(coords)
	p := DefaultParams()
	serial, err := NewEngine(li, p)
	if err != nil {
		t.Fatal(err)
	}
	serial.SetWorkers(1)
	par, err := NewEngine(li, p)
	if err != nil {
		t.Fatal(err)
	}
	forceParallel(par, 4)
	for round := 0; round < 25; round++ {
		tx := randomTxSet(r, n, 0.15)
		want := append([]Reception(nil), serial.Resolve(tx)...)
		got := par.Resolve(tx)
		diffReceptions(t, fmt.Sprintf("generic round=%d", round), want, got)
	}
}

func TestParallelGridResolveMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 5} {
		n := 400
		scene := randomScene(uint64(workers)*13+1, n, 8)
		serial, err := NewGridEngine(scene, DefaultParams(), 0.5, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		serial.SetWorkers(1)
		par, err := NewGridEngine(scene, DefaultParams(), 0.5, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		par.SetWorkers(workers)
		par.minParallelN = 0
		r := rng.New(uint64(workers) * 7)
		for round := 0; round < 15; round++ {
			tx := randomTxSet(r, n, 0.1)
			want := append([]Reception(nil), serial.Resolve(tx)...)
			got := par.Resolve(tx)
			diffReceptions(t, fmt.Sprintf("grid w=%d round=%d", workers, round), want, got)
		}
	}
}

func TestPoolReplacementSurvivesGC(t *testing.T) {
	// Regression: replacing the pool via SetWorkers used to leave the
	// old pool's GC cleanup registered, double-closing its channel and
	// panicking the cleanup goroutine once the engine was collected.
	func() {
		scene := randomScene(3, 64, 4)
		e, err := NewEngine(scene, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		forceParallel(e, 2)
		e.Resolve([]int{0, 5})
		e.SetWorkers(3) // triggers pool replacement on the next round
		e.Resolve([]int{0, 5})
	}()
	// Collect the dropped engine; a stale cleanup would panic here.
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
}

func TestSetWorkersReconfiguresPool(t *testing.T) {
	// Changing the worker count mid-life must rebuild the pool and keep
	// results identical.
	n := 300
	scene := randomScene(7, n, 6)
	serial, err := NewEngine(scene, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	serial.SetWorkers(1)
	par, err := NewEngine(scene, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	par.minParallelN = 0
	r := rng.New(123)
	for round, w := range []int{2, 4, 2, 3, 1, 5} {
		par.SetWorkers(w)
		tx := randomTxSet(r, n, 0.25)
		want := append([]Reception(nil), serial.Resolve(tx)...)
		got := par.Resolve(tx)
		diffReceptions(t, fmt.Sprintf("reconfig round=%d w=%d", round, w), want, got)
	}
}
