package sinr

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"testing"

	"sinrcast/internal/geom"
)

// benchTx picks every strideth station as a transmitter.
func benchTx(n, stride int) []int {
	var tx []int
	for i := 0; i < n; i += stride {
		tx = append(tx, i)
	}
	return tx
}

// benchScene keeps the historical 20×20 arena for the small sizes and
// switches to constant-density scaling beyond 16k stations: the side
// grows with √n so the per-ball station density stays at the
// experiment-realistic ~8 of the n=1024 scene. Million-station
// deployments model growing coverage areas, not ever-denser ones —
// which is exactly the regime the hierarchical far field targets.
func benchScene(seed uint64, n int) *geom.Euclidean {
	side := 20.0
	if n > 16384 {
		side = 20 * math.Sqrt(float64(n)/1024)
	}
	return randomScene(seed, n, side)
}

// setBenchAlpha swaps the path-loss exponent after construction,
// covering one kernel strategy per value: α=2 (reciprocal), α=2.5
// (half-integer: sqrt + multiplies), α=4 (squared reciprocal). α=2
// would fail Validate on the plane (it needs α > γ = 2; the
// interference sum diverges), but only the kernel's arithmetic cost is
// being measured here, so the bench sets the exponent directly.
func setBenchAlpha(params *Params, kern *Kernel, alpha float64) {
	params.Alpha = alpha
	*kern = NewKernel(alpha)
}

// BenchmarkResolve measures one exact-engine round at production-ish
// network sizes across kernel variants, serial vs parallel.
func BenchmarkResolve(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		scene := randomScene(uint64(n), n, 20)
		tx := benchTx(n, 64)
		for _, alpha := range []float64{2, 2.5, 4} {
			for _, mode := range []string{"serial", "parallel"} {
				b.Run(fmt.Sprintf("n=%d/alpha=%g/%s", n, alpha, mode), func(b *testing.B) {
					e, err := NewEngine(scene, DefaultParams())
					if err != nil {
						b.Fatal(err)
					}
					setBenchAlpha(&e.params, &e.kern, alpha)
					if mode == "serial" {
						e.SetWorkers(1)
					} else {
						e.SetWorkers(0) // GOMAXPROCS
						e.minParallelN = 0
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						e.Resolve(tx)
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/round")
				})
			}
		}
	}
}

// BenchmarkGridResolve measures the approximate engine on the same
// sweep plus one constant-density large size; the grid's per-round
// cost is O(liveCells + nearBox) per receiver, so the n=65536 entry is
// the direct speed comparison point against BenchmarkHierResolve at
// the same scene, transmitter set and cell geometry.
func BenchmarkGridResolve(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384, 65536} {
		scene := benchScene(uint64(n)+1, n)
		tx := benchTx(n, 64)
		for _, alpha := range []float64{2, 2.5, 4} {
			for _, mode := range []string{"serial", "parallel"} {
				b.Run(fmt.Sprintf("n=%d/alpha=%g/%s", n, alpha, mode), func(b *testing.B) {
					g, err := NewGridEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius)
					if err != nil {
						b.Fatal(err)
					}
					setBenchAlpha(&g.params, &g.kern, alpha)
					if mode == "serial" {
						g.SetWorkers(1)
					} else {
						g.SetWorkers(0)
						g.minParallelN = 0
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						g.Resolve(tx)
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/round")
				})
			}
		}
	}
}

// BenchmarkHierResolve measures the hierarchical engine up to a million
// stations. Scenes and transmitter sets match BenchmarkGridResolve at
// shared sizes (same seed, same constant-density scaling, same cell
// geometry), so the two benches compare engines, not workloads. The
// n=65536 entry is the acceptance point: it must be ≥5× faster than
// BenchmarkGridResolve/n=65536 at matched accuracy.
func BenchmarkHierResolve(b *testing.B) {
	for _, n := range []int{16384, 65536, 262144, 1048576} {
		scene := benchScene(uint64(n)+1, n)
		tx := benchTx(n, 64)
		for _, alpha := range []float64{2, 2.5, 4} {
			for _, mode := range []string{"serial", "parallel"} {
				b.Run(fmt.Sprintf("n=%d/alpha=%g/%s", n, alpha, mode), func(b *testing.B) {
					h, err := NewHierEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
					if err != nil {
						b.Fatal(err)
					}
					setBenchAlpha(&h.params, &h.kern, alpha)
					if mode == "serial" {
						h.SetWorkers(1)
					} else {
						h.SetWorkers(0)
						h.minParallelN = 0
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						h.Resolve(tx)
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/round")
				})
			}
		}
	}
}

// BenchmarkParallelScaling sweeps the worker count on the hierarchical
// engine at the large sizes — the speedup curve of the work-stealing
// runner. Two disjoint transmitter sets alternate per iteration so the
// cross-round epoch cache cannot collapse the rounds into replays:
// every measured round pays real aggregation and descent work. One
// warm-up round per set runs before the timer, so the loop measures
// the steady state (which must not allocate — the allocs/op column is
// CI-gated).
func BenchmarkParallelScaling(b *testing.B) {
	workerSet := []int{1, 2, 4, 8}
	if p := runtime.GOMAXPROCS(0); !slices.Contains(workerSet, p) {
		workerSet = append(workerSet, p)
	}
	for _, n := range []int{65536, 262144} {
		scene := benchScene(uint64(n)+1, n)
		txA := benchTx(n, 64)
		txB := make([]int, 0, len(txA))
		for i := 32; i < n; i += 64 {
			txB = append(txB, i)
		}
		for _, alpha := range []float64{2, 2.5, 4} {
			for _, workers := range workerSet {
				b.Run(fmt.Sprintf("n=%d/alpha=%g/workers=%d", n, alpha, workers), func(b *testing.B) {
					h, err := NewHierEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
					if err != nil {
						b.Fatal(err)
					}
					setBenchAlpha(&h.params, &h.kern, alpha)
					h.SetWorkers(workers)
					h.minParallelN = 0
					h.Resolve(txA)
					h.Resolve(txB)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if i%2 == 0 {
							h.Resolve(txA)
						} else {
							h.Resolve(txB)
						}
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/round")
				})
			}
		}
	}
}

// BenchmarkResolveFor measures subset resolution: the active-receiver
// path protocols use once informed/quiescent stations stop listening.
// The subset is every 8th station — a late-broadcast-round shape where
// 7/8 of the network no longer needs resolving.
func BenchmarkResolveFor(b *testing.B) {
	type mk struct {
		name  string
		sizes []int
		build func(scene *geom.Euclidean) (subsetResolver, error)
	}
	engines := []mk{
		{"exact", []int{16384}, func(s *geom.Euclidean) (subsetResolver, error) {
			return NewEngine(s, DefaultParams())
		}},
		{"grid", []int{65536}, func(s *geom.Euclidean) (subsetResolver, error) {
			return NewGridEngine(s, DefaultParams(), DefaultCellSize, DefaultNearRadius)
		}},
		{"hier", []int{65536, 1048576}, func(s *geom.Euclidean) (subsetResolver, error) {
			return NewHierEngine(s, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
		}},
	}
	for _, e := range engines {
		for _, n := range e.sizes {
			scene := benchScene(uint64(n)+1, n)
			tx := benchTx(n, 64)
			subset := benchTx(n, 8)
			b.Run(fmt.Sprintf("engine=%s/n=%d/frac=0.125", e.name, n), func(b *testing.B) {
				eng, err := e.build(scene)
				if err != nil {
					b.Fatal(err)
				}
				eng.SetWorkers(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.ResolveFor(tx, subset)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/round")
			})
		}
	}
}
