package stats

import (
	"fmt"
	"io"
)

// Sink consumes a stream of experiment tables and renders them to an
// underlying writer as they arrive. Close flushes trailing syntax (the
// JSON sink's closing bracket); it does not close the writer.
type Sink interface {
	Emit(*Table) error
	Close() error
}

// NewSink returns the sink for a format name: "text" (or "") renders
// aligned tables separated by blank lines, "csv" emits one CSV block
// per table, "json" streams one JSON array of table objects
// (decodable with DecodeTables).
func NewSink(format string, w io.Writer) (Sink, error) {
	switch format {
	case "", "text":
		return &textSink{w: w}, nil
	case "csv":
		return &csvSink{w: w}, nil
	case "json":
		return &jsonSink{w: w}, nil
	default:
		return nil, fmt.Errorf("stats: unknown sink format %q (want text, csv, or json)", format)
	}
}

// textSink reproduces the historical fmt.Println(t.String()) output
// byte for byte: the aligned table, then one separating blank line.
type textSink struct{ w io.Writer }

func (s *textSink) Emit(t *Table) error {
	_, err := io.WriteString(s.w, t.String()+"\n")
	return err
}

func (s *textSink) Close() error { return nil }

type csvSink struct {
	w     io.Writer
	wrote bool
}

func (s *csvSink) Emit(t *Table) error {
	if s.wrote {
		// Blank line between tables; encoding/csv readers skip it.
		if _, err := io.WriteString(s.w, "\n"); err != nil {
			return err
		}
	}
	s.wrote = true
	return t.WriteCSV(s.w)
}

func (s *csvSink) Close() error { return nil }

type jsonSink struct {
	w     io.Writer
	wrote bool
}

func (s *jsonSink) Emit(t *Table) error {
	sep := "[\n"
	if s.wrote {
		sep = ",\n"
	}
	s.wrote = true
	if _, err := io.WriteString(s.w, sep); err != nil {
		return err
	}
	return t.WriteJSON(s.w)
}

func (s *jsonSink) Close() error {
	out := "]\n"
	if !s.wrote {
		out = "[]\n"
	}
	_, err := io.WriteString(s.w, out)
	return err
}
