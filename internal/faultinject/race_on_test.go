//go:build race

package faultinject

const raceEnabled = true
