package sim

import (
	"reflect"
	"testing"

	"sinrcast/internal/sinr"
)

// chainResolver is a deterministic fake physical layer: the lowest
// transmitter's message is heard by the next two higher-indexed
// non-transmitting stations (receptions in ascending receiver order).
// It implements only Resolver — no SubsetResolver — so these tests also
// cover the engine's wrapper-channel path.
type chainResolver struct{ n int }

func (c *chainResolver) N() int { return c.n }

func (c *chainResolver) Resolve(tx []int) []sinr.Reception {
	if len(tx) == 0 {
		return nil
	}
	src := tx[0]
	isTx := make(map[int]bool, len(tx))
	for _, i := range tx {
		isTx[i] = true
	}
	var rec []sinr.Reception
	for d := 1; d <= c.n && len(rec) < 2; d++ {
		r := src + d
		if r >= c.n {
			break
		}
		if !isTx[r] {
			rec = append(rec, sinr.Reception{Receiver: r, Transmitter: src})
		}
	}
	return rec
}

// scripted is a Sleeper whose transmissions are a pure function of the
// round and of the receptions seen so far, so skipped ticks provably
// change nothing: it transmits at rounds t < cutoff where
// (31·t+7·id)%mod == 0 and at every round in extras (appended by Recv).
// nextWake honors the Sleeper contract exactly — it scans forward to
// the next planned round and returns NeverWake only when none remains
// (past cutoff with no pending extras), exercising reception re-wakes.
type scripted struct {
	id, mod, cutoff int
	extras          map[int]bool
	maxExtra        int
	got             []Message
}

func newScripted(id, mod, cutoff int) *scripted {
	return &scripted{id: id, mod: mod, cutoff: cutoff, extras: map[int]bool{}}
}

func (s *scripted) planned(t int) bool {
	return (t < s.cutoff && (31*t+7*s.id)%s.mod == 0) || s.extras[t]
}

func (s *scripted) Tick(t int) (bool, Message) {
	if s.planned(t) {
		return true, Message{Kind: 1, A: int64(s.id), B: int64(t)}
	}
	return false, Message{}
}

func (s *scripted) TickWake(t int) (bool, Message, int) {
	transmit, msg := s.Tick(t)
	limit := s.cutoff
	if s.maxExtra > limit {
		limit = s.maxExtra
	}
	for u := t + 1; u <= limit; u++ {
		if s.planned(u) {
			return transmit, msg, u
		}
	}
	return transmit, msg, NeverWake
}

func (s *scripted) Recv(t int, msg Message) {
	s.got = append(s.got, msg)
	// A reception schedules a reply two rounds out: state change
	// mid-sleep, which the engine's re-wake must surface.
	s.extras[t+2] = true
	if t+2 > s.maxExtra {
		s.maxExtra = t + 2
	}
}

// plain is scripted without the Sleeper capability (mixed populations).
type plain struct{ *scripted }

func (p plain) Tick(t int) (bool, Message) { return p.scripted.Tick(t) }
func (p plain) Recv(t int, msg Message)    { p.scripted.Recv(t, msg) }

// runScripted drives rounds rounds of a scripted population and returns
// the per-round transmitter counts, reception counts and every
// station's received messages.
func runScripted(t *testing.T, n, rounds int, wakeSched bool, build func(i int) Protocol) ([]int, []int, [][]Message, Metrics) {
	t.Helper()
	protos := make([]Protocol, n)
	scripts := make([]*scripted, n)
	for i := range protos {
		protos[i] = build(i)
		switch p := protos[i].(type) {
		case *scripted:
			scripts[i] = p
		case plain:
			scripts[i] = p.scripted
		}
	}
	e, err := NewEngine(&chainResolver{n: n}, protos)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWakeScheduling(wakeSched)
	ct := &CountingTracer{}
	e.SetTracer(ct)
	for r := 0; r < rounds; r++ {
		e.Step()
	}
	got := make([][]Message, n)
	for i, s := range scripts {
		got[i] = s.got
	}
	return ct.TxPerRound, ct.RecPerRound, got, e.Metrics
}

// TestWakeSchedulingMatchesReference pins the tentpole contract: the
// calendar-queue loop is byte-identical to ticking every station, for
// sleeper-only and mixed populations, including NeverWake stations that
// are re-woken by receptions and wake hints far enough out to grow the
// calendar ring.
func TestWakeSchedulingMatchesReference(t *testing.T) {
	cases := []struct {
		name  string
		build func(i int) Protocol
	}{
		{"all sleepers", func(i int) Protocol { return newScripted(i, 5+i%7, 400) }},
		{"mixed", func(i int) Protocol {
			if i%3 == 0 {
				return plain{newScripted(i, 5+i%7, 400)}
			}
			return newScripted(i, 5+i%7, 400)
		}},
		{"early cutoff, NeverWake + recv re-wakes", func(i int) Protocol { return newScripted(i, 3+i%4, 6) }},
		{"sparse plans grow the ring", func(i int) Protocol { return newScripted(i, 149+17*i, 400) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			txRef, recRef, gotRef, mRef := runScripted(t, 24, 400, false, tc.build)
			txSch, recSch, gotSch, mSch := runScripted(t, 24, 400, true, tc.build)
			if !reflect.DeepEqual(txRef, txSch) {
				t.Fatalf("per-round tx counts diverge:\nref %v\nsch %v", txRef, txSch)
			}
			if !reflect.DeepEqual(recRef, recSch) {
				t.Fatalf("per-round reception counts diverge")
			}
			if !reflect.DeepEqual(gotRef, gotSch) {
				t.Fatalf("delivered messages diverge")
			}
			if mRef != mSch {
				t.Fatalf("metrics diverge: ref %+v sch %+v", mRef, mSch)
			}
		})
	}
}

// TestWakeSchedulingToggleMidRun flips the scheduler on and off during a
// run; every segment must continue the same execution.
func TestWakeSchedulingToggleMidRun(t *testing.T) {
	build := func(i int) Protocol { return newScripted(i, 5+i%7, 300) }
	txRef, _, gotRef, _ := runScripted(t, 16, 300, false, build)

	protos := make([]Protocol, 16)
	scripts := make([]*scripted, 16)
	for i := range protos {
		s := newScripted(i, 5+i%7, 300)
		protos[i] = s
		scripts[i] = s
	}
	e, err := NewEngine(&chainResolver{n: 16}, protos)
	if err != nil {
		t.Fatal(err)
	}
	ct := &CountingTracer{}
	e.SetTracer(ct)
	for r := 0; r < 300; r++ {
		// Toggle at awkward, non-aligned points.
		e.SetWakeScheduling(r%17 < 9)
		e.Step()
	}
	if !reflect.DeepEqual(ct.TxPerRound, txRef) {
		t.Fatalf("toggled run diverges from reference")
	}
	for i, s := range scripts {
		if !reflect.DeepEqual(s.got, gotRef[i]) {
			t.Fatalf("station %d deliveries diverge under toggling", i)
		}
	}
}

// neverTicked fails the test if the engine ticks it after its quit
// round — the direct check that sleeping stations are really skipped.
type neverTicked struct {
	t      *testing.T
	quitAt int
	ticked int
}

func (s *neverTicked) Tick(t int) (bool, Message) {
	s.ticked++
	if t > s.quitAt {
		s.t.Fatalf("station ticked at round %d after quitting at %d", t, s.quitAt)
	}
	return false, Message{}
}

func (s *neverTicked) TickWake(t int) (bool, Message, int) {
	transmit, msg := s.Tick(t)
	if t >= s.quitAt {
		return transmit, msg, NeverWake
	}
	return transmit, msg, t + 1
}

func (s *neverTicked) Recv(int, Message) {}

// TestWakeSchedulingSkipsSleepers verifies ticks are actually skipped
// (the perf point of the tentpole), not just order-preserved.
func TestWakeSchedulingSkipsSleepers(t *testing.T) {
	n := 8
	protos := make([]Protocol, n)
	stations := make([]*neverTicked, n)
	for i := range protos {
		st := &neverTicked{t: t, quitAt: 4}
		stations[i] = st
		protos[i] = st
	}
	e, err := NewEngine(&chainResolver{n: n}, protos)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWakeScheduling(true)
	for r := 0; r < 100; r++ {
		e.Step()
	}
	for i, st := range stations {
		if st.ticked != 5 {
			t.Fatalf("station %d ticked %d times, want 5 (rounds 0..4)", i, st.ticked)
		}
	}
}

// countingStop pins the Run satellite fix: a side-effecting stop
// closure must be evaluated exactly once per round, not an extra time
// after the budget is exhausted.
func TestRunEvaluatesStopOncePerRound(t *testing.T) {
	protos := []Protocol{newScripted(0, 3, 100), newScripted(1, 4, 100)}
	e, err := NewEngine(&chainResolver{n: 2}, protos)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	rounds, stopped := e.Run(7, func() bool {
		calls++
		return false
	})
	if rounds != 7 || stopped {
		t.Fatalf("Run = (%d, %v), want (7, false)", rounds, stopped)
	}
	if calls != 7 {
		t.Fatalf("stop evaluated %d times, want exactly 7 (once per round)", calls)
	}

	// A countdown closure must stop the run without being re-polled.
	calls = 0
	rounds, stopped = e.Run(10, func() bool {
		calls++
		return calls > 3
	})
	if rounds != 3 || !stopped {
		t.Fatalf("Run = (%d, %v), want (3, true)", rounds, stopped)
	}
	if calls != 4 {
		t.Fatalf("stop evaluated %d times, want 4", calls)
	}
}
