package coloring

import (
	"testing"

	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
)

// calibrationNets returns the network families the defaults must handle.
func calibrationNets(t testing.TB, seed uint64) map[string]*network.Network {
	t.Helper()
	cfg := netgen.Config{Params: sinr.DefaultParams(), Seed: seed}
	nets := map[string]*network.Network{}
	var err error
	if nets["uniform-sparse"], err = netgen.Uniform(cfg, 128, 6); err != nil {
		t.Fatal(err)
	}
	if nets["uniform-dense"], err = netgen.Uniform(cfg, 256, 24); err != nil {
		t.Fatal(err)
	}
	if nets["clusters"], err = netgen.Clusters(cfg, 4, 24, 0.08, 0.6); err != nil {
		t.Fatal(err)
	}
	if nets["path"], err = netgen.Path(cfg, 48, 0.9); err != nil {
		t.Fatal(err)
	}
	if nets["expchain"], err = netgen.ExponentialChain(cfg, 48, 0.5, 0.75); err != nil {
		t.Fatal(err)
	}
	return nets
}

// TestCalibrationReport prints the invariant landscape; run with -v to
// inspect. It asserts only sanity (colors assigned, palette small).
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short")
	}
	for name, net := range calibrationNets(t, 42) {
		par := DefaultParams(net.N(), net.Space.Growth(), net.Params.Eps)
		res, err := Run(net, par, 7)
		if err != nil {
			t.Fatal(err)
		}
		l1 := CheckLemma1(net, res.Colors)
		l2 := CheckLemma2(net, res.Colors)
		pal := Palette(res.Colors)
		quit := 0
		for _, ph := range res.QuitPhase {
			if ph >= 0 {
				quit++
			}
		}
		t.Logf("%-14s n=%3d rounds=%5d colors=%2d quitEarly=%3d  L1max=%.4f (C1=%.3f)  L2min=%.5f (2pmax=%.5f)",
			name, net.N(), res.Rounds, len(pal), quit, l1.MaxMass, par.C1, l2.MinBestMass, par.FinalColor())
		if len(pal) == 0 || len(pal) > par.NumColors() {
			t.Fatalf("%s: palette size %d out of range [1,%d]", name, len(pal), par.NumColors())
		}
	}
}
