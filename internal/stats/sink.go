package stats

import (
	"fmt"
	"io"
)

// Sink consumes a stream of experiment tables and renders them to an
// underlying writer as they arrive. Close flushes trailing syntax (the
// JSON sink's closing bracket); it does not close the writer.
//
// Streaming contract: every sink returned by NewSink forwards a flush
// to its writer after each successful Emit and on Close — when the
// writer buffers (bufio.Writer, an HTTP response), each table reaches
// the consumer as soon as it is emitted instead of pooling until the
// stream ends. Writers advertise the capability by implementing
// Flusher (or the error-less Flush() of http.Flusher adapters); plain
// writers are unaffected. The contract is pinned by the flush test in
// sink_flush_test.go.
type Sink interface {
	Emit(*Table) error
	Close() error
}

// Flusher is the flush capability a Sink forwards to after each Emit.
// bufio.Writer satisfies it directly; HTTP handlers wrap
// http.ResponseWriter so Flush pushes bytes to the client.
type Flusher interface {
	Flush() error
}

// flush pushes buffered bytes through w when it can: the error-
// returning Flusher form first, then the error-less form used by
// http.Flusher adapters. Writers without either are already
// unbuffered from the sink's point of view.
func flush(w io.Writer) error {
	switch f := w.(type) {
	case Flusher:
		return f.Flush()
	case interface{ Flush() }:
		f.Flush()
	}
	return nil
}

// NewSink returns the sink for a format name: "text" (or "") renders
// aligned tables separated by blank lines, "csv" emits one CSV block
// per table, "json" streams one JSON array of table objects
// (decodable with DecodeTables).
func NewSink(format string, w io.Writer) (Sink, error) {
	switch format {
	case "", "text":
		return &textSink{w: w}, nil
	case "csv":
		return &csvSink{w: w}, nil
	case "json":
		return &jsonSink{w: w}, nil
	default:
		return nil, fmt.Errorf("stats: unknown sink format %q (want text, csv, or json)", format)
	}
}

// SinkFormats lists the formats NewSink accepts, for CLIs and services
// that validate a format parameter up front.
func SinkFormats() []string { return []string{"text", "csv", "json"} }

// textSink reproduces the historical fmt.Println(t.String()) output
// byte for byte: the aligned table, then one separating blank line.
type textSink struct{ w io.Writer }

func (s *textSink) Emit(t *Table) error {
	if _, err := io.WriteString(s.w, t.String()+"\n"); err != nil {
		return err
	}
	return flush(s.w)
}

func (s *textSink) Close() error { return flush(s.w) }

type csvSink struct {
	w     io.Writer
	wrote bool
}

func (s *csvSink) Emit(t *Table) error {
	if s.wrote {
		// Blank line between tables; encoding/csv readers skip it.
		if _, err := io.WriteString(s.w, "\n"); err != nil {
			return err
		}
	}
	s.wrote = true
	if err := t.WriteCSV(s.w); err != nil {
		return err
	}
	return flush(s.w)
}

func (s *csvSink) Close() error { return flush(s.w) }

type jsonSink struct {
	w     io.Writer
	wrote bool
}

func (s *jsonSink) Emit(t *Table) error {
	sep := "[\n"
	if s.wrote {
		sep = ",\n"
	}
	s.wrote = true
	if _, err := io.WriteString(s.w, sep); err != nil {
		return err
	}
	if err := t.WriteJSON(s.w); err != nil {
		return err
	}
	return flush(s.w)
}

func (s *jsonSink) Close() error {
	out := "]\n"
	if !s.wrote {
		out = "[]\n"
	}
	if _, err := io.WriteString(s.w, out); err != nil {
		return err
	}
	return flush(s.w)
}
