package consensus

import (
	"reflect"
	"testing"

	"sinrcast/internal/sim"
)

// TestConsensusWakeSchedulingByteIdentical pins the §5-app side of the
// wake-scheduling contract: windowed silence (stations without the
// current window's token sleep to the next window start) and the
// coloring-quit gap produce a Result identical to the tick-everyone
// reference.
func TestConsensusWakeSchedulingByteIdentical(t *testing.T) {
	net := genNet(t, 32, 4)
	msgs := make([]int64, net.N())
	for i := range msgs {
		msgs[i] = int64((i*37 + 11) % 16)
	}
	run := func() *Result {
		res, err := Run(net, cfgFor(net, 15), 9, msgs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	prev := sim.SetWakeSchedulingDefault(false)
	ref := run()
	sim.SetWakeSchedulingDefault(true)
	sched := run()
	sim.SetWakeSchedulingDefault(prev)
	if !reflect.DeepEqual(ref, sched) {
		t.Fatalf("consensus diverges under wake scheduling:\nref   %+v\nsched %+v", ref, sched)
	}
}
