package exp

import (
	"fmt"
	"hash/fnv"

	"sinrcast/internal/broadcast"
	"sinrcast/internal/protocol"
	"sinrcast/internal/scenario"
	"sinrcast/internal/stats"
)

// E13ProtocolMatrix is the paper's central comparison as a full matrix:
// every registered protocol runs on every registered scenario family at
// matched n, one row per family, one column per protocol, each cell the
// median round count over Config.Trials (with the usual fail
// annotations). Coverage grows automatically on both axes — a
// protocol.Register or scenario.Register call adds a column or a row
// with no experiment code change. Config.Scenario and Config.Protocol
// optionally restrict either axis to one explicit spec.
//
// "Rounds" means each protocol's own completion measure (broadcast
// completion, wake-up span, the consensus/leader/alert schedule
// length), so cells compare like with like only within a column; the
// matrix's value is how each column moves across geometries.
func E13ProtocolMatrix(cfg Config) (*stats.Table, error) {
	n := cfg.scaled(32, 16)
	scenSpecs, err := cfg.scenarioSpecs(n)
	if err != nil {
		return nil, fmt.Errorf("E13: %w", err)
	}
	protoSpecs, err := cfg.protocolSpecs()
	if err != nil {
		return nil, fmt.Errorf("E13: %w", err)
	}
	headers := []string{"family", "n", "D"}
	for _, ps := range protoSpecs {
		headers = append(headers, ps.String())
	}
	t := stats.NewTable(
		fmt.Sprintf("E13: protocol×scenario matrix, %d protocols × %d families, median rounds, target n=%d",
			len(protoSpecs), len(scenSpecs), n),
		headers...)
	for _, sp := range scenSpecs {
		net, err := scenario.Generate(sp, physParams(), cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("E13 %s: %w", sp.Family, err)
		}
		d, _ := net.Diameter()
		row := []any{sp.Family, net.N(), d}
		for _, ps := range protoSpecs {
			ps := ps
			// Data points are keyed by (family, protocol) name so every
			// cell's trial series is stable as either axis grows.
			med, fails, err := medianRounds(cfg, 13, matrixKey(sp.Family, ps.Name),
				func(seed uint64) (*broadcast.Result, error) {
					return protocol.Run(net, ps, seed)
				})
			switch {
			case err != nil:
				row = append(row, "fail")
			case fails > 0:
				row = append(row, fmt.Sprintf("%.0f(%d!)", med, fails))
			default:
				row = append(row, fmt.Sprintf("%.0f", med))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// protocolSpecs returns the protocol axis of E13: the single parsed
// Config.Protocol spec when set, else every registered protocol at its
// defaults.
func (c Config) protocolSpecs() ([]protocol.Spec, error) {
	if c.Protocol != "" {
		ps, err := protocol.Parse(c.Protocol)
		if err != nil {
			return nil, err
		}
		// Parse defers range checks to Run; validate here so a bad
		// -alg spec errors out instead of rendering every cell "fail".
		if err := protocol.Validate(ps); err != nil {
			return nil, err
		}
		return []protocol.Spec{ps}, nil
	}
	var specs []protocol.Spec
	for _, p := range protocol.Protocols() {
		specs = append(specs, protocol.Spec{Name: p.Name})
	}
	return specs, nil
}

// matrixKey maps a (family, protocol) cell to a stable data-point key.
// The NUL separator keeps concatenation unambiguous; keys are
// independent of either registry's size or order.
func matrixKey(family, proto string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(family))
	h.Write([]byte{0})
	h.Write([]byte(proto))
	return h.Sum64()
}
