package netgen

import (
	"math"
	"testing"

	"sinrcast/internal/sinr"
)

func cfg(seed uint64) Config {
	return Config{Params: sinr.DefaultParams(), Seed: seed}
}

func TestUniformConnected(t *testing.T) {
	for _, n := range []int{10, 50, 200} {
		net, err := Uniform(cfg(uint64(n)), n, 8)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if net.N() != n {
			t.Fatalf("n=%d: got %d stations", n, net.N())
		}
		if !net.Connected() {
			t.Fatalf("n=%d: not connected", n)
		}
	}
}

func TestUniformDeterministicInSeed(t *testing.T) {
	a, err := Uniform(cfg(7), 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Uniform(cfg(7), 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		if a.Space.Position(i) != b.Space.Position(i) {
			t.Fatalf("station %d position differs between identical seeds", i)
		}
	}
	c, err := Uniform(cfg(8), 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.N(); i++ {
		if a.Space.Position(i) != c.Space.Position(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical layouts")
	}
}

func TestUniformRejectsBadN(t *testing.T) {
	if _, err := Uniform(cfg(1), 0, 8); err == nil {
		t.Fatal("want error for n=0")
	}
}

func TestGrid(t *testing.T) {
	net, err := Grid(cfg(1), 49, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 49 || !net.Connected() {
		t.Fatalf("grid: n=%d connected=%v", net.N(), net.Connected())
	}
	// 7x7 lattice with spacing 0.3 and radius 2/3: neighbors up to 2
	// cells away horizontally (0.6 < 2/3), so degree exceeds 4.
	if net.MaxDegree() <= 4 {
		t.Fatalf("grid MaxDegree = %d, expected dense adjacency", net.MaxDegree())
	}
	if _, err := Grid(cfg(1), 9, 0); err == nil {
		t.Fatal("want error for zero spacing")
	}
	if _, err := Grid(cfg(1), 9, 10); err == nil {
		t.Fatal("want error for spacing beyond comm radius")
	}
}

func TestPathDiameterScales(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		net, err := Path(cfg(1), n, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		d, conn := net.Diameter()
		if !conn {
			t.Fatalf("n=%d: disconnected", n)
		}
		if d != n-1 {
			t.Fatalf("n=%d: diameter %d, want %d", n, d, n-1)
		}
	}
	if _, err := Path(cfg(1), 5, 0); err == nil {
		t.Fatal("want error for zero fraction")
	}
	if _, err := Path(cfg(1), 5, 1.5); err == nil {
		t.Fatal("want error for fraction > 1")
	}
}

func TestExponentialChain(t *testing.T) {
	net, err := ExponentialChain(cfg(1), 16, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Connected() {
		t.Fatal("chain disconnected")
	}
	rs := net.Granularity()
	if rs < 1000 {
		t.Fatalf("granularity = %v, want exponential growth", rs)
	}
	// The whole tail fits in one ball: diameter stays small.
	d, _ := net.Diameter()
	if d > 3 {
		t.Fatalf("chain diameter = %d, want <= 3", d)
	}
	if _, err := ExponentialChain(cfg(1), 4, 0.5, 1.5); err == nil {
		t.Fatal("want error for ratio >= 1")
	}
	if _, err := ExponentialChain(cfg(1), 4, 5, 0.5); err == nil {
		t.Fatal("want error for first gap beyond comm radius")
	}
}

func TestExponentialChainGranularityControl(t *testing.T) {
	// Granularity should grow with n for fixed ratio.
	prev := 0.0
	for _, n := range []int{6, 10, 14} {
		net, err := ExponentialChain(cfg(1), n, 0.5, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		rs := net.Granularity()
		if rs <= prev {
			t.Fatalf("granularity not increasing: %v after %v", rs, prev)
		}
		prev = rs
	}
}

func TestClusteredPath(t *testing.T) {
	net, err := ClusteredPath(cfg(1), 10, 16, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 26 || !net.Connected() {
		t.Fatalf("clustered path: n=%d connected=%v", net.N(), net.Connected())
	}
	// Diameter is set by the path, independent of the cluster ratio.
	dA, _ := net.Diameter()
	netB, err := ClusteredPath(cfg(1), 10, 16, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	dB, _ := netB.Diameter()
	if dA != dB {
		t.Fatalf("diameter changed with ratio: %d vs %d", dA, dB)
	}
	// Granularity grows as the ratio shrinks.
	if netB.Granularity() <= net.Granularity() {
		t.Fatalf("granularity not increasing: %v vs %v", netB.Granularity(), net.Granularity())
	}
	if _, err := ClusteredPath(cfg(1), 1, 4, 0.5); err == nil {
		t.Fatal("want error for short path")
	}
	if _, err := ClusteredPath(cfg(1), 4, 0, 0.5); err == nil {
		t.Fatal("want error for empty cluster")
	}
	if _, err := ClusteredPath(cfg(1), 4, 4, 1.0); err == nil {
		t.Fatal("want error for ratio 1")
	}
}

func TestClusters(t *testing.T) {
	net, err := Clusters(cfg(3), 4, 20, 0.1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 80 {
		t.Fatalf("N = %d, want 80", net.N())
	}
	if !net.Connected() {
		t.Fatal("clusters disconnected")
	}
	// Density contrast: max degree (inside a cluster) far exceeds the
	// minimum (hub-to-hub only stations do not exist here, but degree
	// spread should still be wide).
	if net.MaxDegree() < 19 {
		t.Fatalf("MaxDegree = %d, want >= cluster size-1", net.MaxDegree())
	}
	if _, err := Clusters(cfg(1), 0, 5, 0.1, 0.5); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, err := Clusters(cfg(1), 2, 5, 0.5, 0.5); err == nil {
		t.Fatal("want error for oversized clusterRadius")
	}
	if _, err := Clusters(cfg(1), 2, 5, 0.1, 2); err == nil {
		t.Fatal("want error for oversized bridgeGap")
	}
}

func TestGaussian(t *testing.T) {
	net, err := Gaussian(cfg(9), 100, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 100 || !net.Connected() {
		t.Fatalf("gaussian: n=%d connected=%v", net.N(), net.Connected())
	}
	if _, err := Gaussian(cfg(1), 10, 0); err == nil {
		t.Fatal("want error for sigma=0")
	}
}

func TestRandomWalkCorridor(t *testing.T) {
	net, err := RandomWalkCorridor(cfg(11), 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Connected() {
		t.Fatal("corridor disconnected")
	}
	d, _ := net.Diameter()
	if d < 5 {
		t.Fatalf("corridor diameter = %d, want a stretched network", d)
	}
	if _, err := RandomWalkCorridor(cfg(1), 5, 0); err == nil {
		t.Fatal("want error for zero step")
	}
}

func TestUniformDensityTargeting(t *testing.T) {
	net, err := Uniform(cfg(13), 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Mean degree should be within a factor ~3 of the requested density.
	total := 0
	for i := 0; i < net.N(); i++ {
		total += net.Degree(i)
	}
	mean := float64(total) / float64(net.N())
	if mean < 3 || mean > 40 {
		t.Fatalf("mean degree %v wildly off the requested density 10", mean)
	}
	if math.IsNaN(mean) {
		t.Fatal("mean is NaN")
	}
}
