package coloring

import (
	"fmt"

	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// KindColoring tags messages sent by the coloring protocol.
const KindColoring uint8 = 1

// stationProto adapts a Machine to sim.Protocol for standalone runs.
type stationProto struct {
	m *Machine
}

var _ sim.Protocol = (*stationProto)(nil)

func (s *stationProto) Tick(t int) (bool, sim.Message) {
	if s.m.Tick(t) {
		return true, sim.Message{Kind: KindColoring}
	}
	return false, sim.Message{}
}

func (s *stationProto) Recv(t int, _ sim.Message) { s.m.OnRecv(t) }

// Result is the outcome of a standalone StabilizeProbability execution.
type Result struct {
	// Colors[i] is station i's assigned probability.
	Colors []float64
	// QuitPhase[i] is the doubling phase in which station i switched
	// off, or -1 if it survived to the final color.
	QuitPhase []int
	// Rounds is the schedule length that was executed.
	Rounds int
	// Metrics are the run's simulation counters.
	Metrics sim.Metrics
}

// Run executes StabilizeProbability on every station of the network and
// returns the resulting coloring. Participation of a subset (as in the
// phased broadcast) is handled by the broadcast package, not here.
func Run(net *network.Network, par Params, seed uint64) (*Result, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	phys, err := sinr.NewEngine(net.Space, net.Params)
	if err != nil {
		return nil, err
	}
	n := net.N()
	root := rng.New(seed)
	protos := make([]sim.Protocol, n)
	machines := make([]*Machine, n)
	for i := 0; i < n; i++ {
		m, err := NewMachine(par, root.Split(uint64(i)))
		if err != nil {
			return nil, fmt.Errorf("station %d: %w", i, err)
		}
		machines[i] = m
		protos[i] = &stationProto{m: m}
	}
	eng, err := sim.NewEngine(phys, protos)
	if err != nil {
		return nil, err
	}
	total := par.TotalRounds()
	eng.Run(total, nil)

	res := &Result{
		Colors:    make([]float64, n),
		QuitPhase: make([]int, n),
		Rounds:    total,
		Metrics:   eng.Metrics,
	}
	for i, m := range machines {
		m.Finish()
		res.Colors[i] = m.Color()
		res.QuitPhase[i] = -1
		for ph := 0; ph < par.Phases(); ph++ {
			if m.Color() == par.ColorOfPhase(ph) {
				res.QuitPhase[i] = ph
				break
			}
		}
	}
	return res, nil
}
