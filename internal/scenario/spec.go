package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
)

// maxIntParam caps integer parameters (station counts, cluster
// counts, …): large enough for any real deployment, small enough that
// int conversion and slice allocation stay well-defined.
const maxIntParam = 1e9

// Spec is a declarative scenario: a family name plus parameter
// overrides. The zero value of Params means "all defaults". A Spec,
// the physical parameters, and a seed fully determine the generated
// network (see Generate).
type Spec struct {
	Family string
	Params map[string]float64
}

// String renders the canonical compact form "family:k=v,k=v" with
// parameters sorted by name; Parse(s.String()) reproduces s exactly.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Family
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(s.Family)
	for i, k := range keys {
		if i == 0 {
			sb.WriteByte(':')
		} else {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(formatValue(s.Params[k]))
	}
	return sb.String()
}

// formatValue renders a parameter value in the shortest form that
// round-trips through strconv.ParseFloat.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Parse reads the compact spec form "family" or
// "family:name=value,name=value". The family must be registered and
// every parameter declared by it; values must parse as numbers.
// (Range and integrality are checked by Generate, so specs built
// programmatically get the same validation.)
func Parse(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("scenario: empty spec (want \"family\" or \"family:name=value,...\")")
	}
	name, rest, hasParams := strings.Cut(s, ":")
	f, ok := Lookup(name)
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown family %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	spec := Spec{Family: name}
	if !hasParams {
		return spec, nil
	}
	if strings.TrimSpace(rest) == "" {
		return Spec{}, fmt.Errorf("scenario: %s: empty parameter list after ':'", name)
	}
	spec.Params = map[string]float64{}
	for _, pair := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(pair, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return Spec{}, fmt.Errorf("scenario: %s: malformed parameter %q (want name=value)", name, pair)
		}
		p, declared := f.param(key)
		if !declared {
			return Spec{}, fmt.Errorf("scenario: family %s has no parameter %q (has: %s)",
				name, key, strings.Join(paramNames(f), ", "))
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("scenario: %s: parameter %s=%q is not a number", name, p.Name, val)
		}
		if _, dup := spec.Params[key]; dup {
			return Spec{}, fmt.Errorf("scenario: %s: parameter %q given twice", name, key)
		}
		spec.Params[key] = v
	}
	return spec, nil
}

func paramNames(f *Family) []string {
	out := make([]string, len(f.Params))
	for i, p := range f.Params {
		out[i] = p.Name
	}
	return out
}

// resolve fills defaults and checks ranges, integrality and the size
// limit for every override, returning the full parameter map.
func resolve(f *Family, spec Spec) (map[string]float64, error) {
	resolved := make(map[string]float64, len(f.Params))
	for _, p := range f.Params {
		resolved[p.Name] = p.Default
	}
	for name, v := range spec.Params {
		p, declared := f.param(name)
		if !declared {
			return nil, fmt.Errorf("scenario: family %s has no parameter %q (has: %s)",
				f.Name, name, strings.Join(paramNames(f), ", "))
		}
		if v < p.Min || v > p.Max || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("scenario: %s: parameter %s=%s outside [%s, %s]",
				f.Name, p.Name, formatValue(v), formatValue(p.Min), formatValue(p.Max))
		}
		if p.Int {
			if v != math.Trunc(v) {
				return nil, fmt.Errorf("scenario: %s: parameter %s=%s must be an integer",
					f.Name, p.Name, formatValue(v))
			}
			// Bound sizes before int conversion: huge values would
			// overflow int or hang allocation, not build a network.
			if math.Abs(v) > maxIntParam {
				return nil, fmt.Errorf("scenario: %s: parameter %s=%s exceeds the size limit %s",
					f.Name, p.Name, formatValue(v), formatValue(maxIntParam))
			}
		}
		resolved[name] = v
	}
	return resolved, nil
}

// SpecError marks a spec-vs-physics mismatch detected inside a
// builder: the parameters are statically valid (Validate passes) but
// their combination cannot describe a deployment — a dumbbell blob
// radius beyond the communication radius, a lattice spacing that
// disconnects the grid, a hole larger than the lattice. CLIs classify
// it as a usage error (exit 2), not a runtime failure; genuine runtime
// failures (a densifying generator exhausting its connectivity-retry
// budget) stay plain errors. This mirrors protocol.SpecError on the
// algorithm axis.
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return e.msg }

// specErrorf builds a SpecError; used by builders for their
// physics-dependent parameter checks.
func specErrorf(format string, args ...any) error {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

// Validate checks a spec against the registry without building it:
// the family must exist and every override must be declared, in
// range, and integral where required. (Builders may still reject
// physics-dependent combinations at Generate time.) CLIs use it to
// classify bad specs as usage errors.
func Validate(spec Spec) error {
	f, ok := Lookup(spec.Family)
	if !ok {
		return fmt.Errorf("scenario: unknown family %q (known: %s)", spec.Family, strings.Join(Names(), ", "))
	}
	_, err := resolve(f, spec)
	return err
}

// Generate builds the network described by spec under the given
// physical parameters and seed. Defaults fill omitted parameters;
// unknown names, out-of-range values, and fractional values for
// integer parameters are rejected.
func Generate(spec Spec, phys sinr.Params, seed uint64) (*network.Network, error) {
	f, ok := Lookup(spec.Family)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown family %q (known: %s)", spec.Family, strings.Join(Names(), ", "))
	}
	resolved, err := resolve(f, spec)
	if err != nil {
		return nil, err
	}
	return f.Build(Build{Phys: phys, Seed: seed, params: resolved})
}
