package sinr

import (
	"fmt"
	"testing"
)

// benchTx picks every strideth station as a transmitter.
func benchTx(n, stride int) []int {
	var tx []int
	for i := 0; i < n; i += stride {
		tx = append(tx, i)
	}
	return tx
}

// setBenchAlpha swaps the path-loss exponent after construction,
// covering one kernel strategy per value: α=2 (reciprocal), α=2.5
// (half-integer: sqrt + multiplies), α=4 (squared reciprocal). α=2
// would fail Validate on the plane (it needs α > γ = 2; the
// interference sum diverges), but only the kernel's arithmetic cost is
// being measured here, so the bench sets the exponent directly.
func setBenchAlpha(params *Params, kern *Kernel, alpha float64) {
	params.Alpha = alpha
	*kern = NewKernel(alpha)
}

// BenchmarkResolve measures one exact-engine round at production-ish
// network sizes across kernel variants, serial vs sharded.
func BenchmarkResolve(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		scene := randomScene(uint64(n), n, 20)
		tx := benchTx(n, 64)
		for _, alpha := range []float64{2, 2.5, 4} {
			for _, mode := range []string{"serial", "parallel"} {
				b.Run(fmt.Sprintf("n=%d/alpha=%g/%s", n, alpha, mode), func(b *testing.B) {
					e, err := NewEngine(scene, DefaultParams())
					if err != nil {
						b.Fatal(err)
					}
					setBenchAlpha(&e.params, &e.kern, alpha)
					if mode == "serial" {
						e.SetWorkers(1)
					} else {
						e.SetWorkers(0) // GOMAXPROCS
						e.minParallelN = 0
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						e.Resolve(tx)
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/round")
				})
			}
		}
	}
}

// BenchmarkGridResolve measures the approximate engine on the same
// sweep; the grid's per-round cost is dominated by the near-field scan.
func BenchmarkGridResolve(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		scene := randomScene(uint64(n)+1, n, 20)
		tx := benchTx(n, 64)
		for _, alpha := range []float64{2, 2.5, 4} {
			for _, mode := range []string{"serial", "parallel"} {
				b.Run(fmt.Sprintf("n=%d/alpha=%g/%s", n, alpha, mode), func(b *testing.B) {
					g, err := NewGridEngine(scene, DefaultParams(), 0.5, 1.5)
					if err != nil {
						b.Fatal(err)
					}
					setBenchAlpha(&g.params, &g.kern, alpha)
					if mode == "serial" {
						g.SetWorkers(1)
					} else {
						g.SetWorkers(0)
						g.minParallelN = 0
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						g.Resolve(tx)
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/round")
				})
			}
		}
	}
}
