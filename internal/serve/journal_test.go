package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"sinrcast/internal/faultinject"
)

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.ndjson")
}

func TestJournalAppendSyncRead(t *testing.T) {
	path := tempJournal(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.AppendSync(journalRecord{Op: "accept", ID: "j1", Req: &quickRun})
	j.Append(journalRecord{Op: "trial", ID: "j1", Trial: 0, Row: []string{"0", "7", "12", "32", "true", "3", "40", "41"}})
	j.Append(journalRecord{Op: "done", ID: "j1", State: "done"})
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	recs, skipped, err := ReadJournalRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d records of a clean journal", skipped)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Op != "accept" || recs[0].Req == nil || recs[0].Req.Scenario != quickRun.Scenario {
		t.Fatalf("accept record did not round-trip: %+v", recs[0])
	}
	if recs[1].Op != "trial" || recs[1].Row[2] != "12" {
		t.Fatalf("trial record did not round-trip: %+v", recs[1])
	}
	if recs[2].Op != "done" || recs[2].State != "done" {
		t.Fatalf("done record did not round-trip: %+v", recs[2])
	}
}

// TestJournalGroupCommit pins the batching: appends inside one
// syncBatch window share a single fsync.
func TestJournalGroupCommit(t *testing.T) {
	j, err := OpenJournal(tempJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 50; i++ {
		j.Append(journalRecord{Op: "trial", ID: "j1", Trial: i})
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Syncs() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Wait out a couple more batch windows: no further appends, so no
	// further syncs should be scheduled beyond the in-flight window.
	time.Sleep(5 * syncBatch)
	if n := j.Syncs(); n == 0 || n > 3 {
		t.Fatalf("50 appends produced %d syncs, want 1..3 (group commit)", n)
	}
}

// TestJournalTornFinalLine pins kill -9 tolerance: a journal whose
// final line was torn mid-write still yields every whole record.
func TestJournalTornFinalLine(t *testing.T) {
	path := tempJournal(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalRecord{Op: "accept", ID: "j1", Req: &quickRun})
	j.Append(journalRecord{Op: "trial", ID: "j1", Trial: 0, Row: []string{"a"}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"trial","id":"j1","tri`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, skipped, err := ReadJournalRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records before the tear, want 2", len(recs))
	}
	if skipped != 1 {
		t.Fatalf("skipped %d, want exactly the torn line", skipped)
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, skipped, err := ReadJournalRecords(filepath.Join(t.TempDir(), "absent.ndjson"))
	if err != nil || len(recs) != 0 || skipped != 0 {
		t.Fatalf("missing journal: recs=%v skipped=%d err=%v, want empty", recs, skipped, err)
	}
}

// TestJournalNilSafe pins that a disabled journal (nil) absorbs the
// whole API: the job path calls these unconditionally.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Append(journalRecord{Op: "trial", ID: "j1"})
	j.AppendSync(journalRecord{Op: "accept", ID: "j1"})
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Syncs() != 0 {
		t.Fatal("nil journal reported syncs")
	}
}

// TestJournalStickyError pins the degradation contract: an injected
// sync failure makes the journal report unhealthy without panicking or
// blocking later appends.
func TestJournalStickyError(t *testing.T) {
	j, err := OpenJournal(tempJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	faultinject.Arm(faultinject.JournalSync, faultinject.Fault{First: 1, Seed: 1})
	defer faultinject.DisarmAll()
	j.AppendSync(journalRecord{Op: "accept", ID: "j1", Req: &quickRun})
	if j.Err() == nil {
		t.Fatal("injected sync fault did not stick")
	}
	// Later traffic must not panic or block.
	j.Append(journalRecord{Op: "done", ID: "j1", State: "done"})
	if err := j.Sync(); err == nil {
		t.Fatal("sticky error cleared itself")
	}
}
