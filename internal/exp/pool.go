package exp

import (
	"sync"
	"sync/atomic"

	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// enginePooling gates trial engine reuse across the experiment
// drivers. On (the default), T trials over one network pay for one
// topology construction; off, every trial builds its engine from
// scratch — the reference path the identity tests pin the pooled one
// against, mirroring sim.SetWakeSchedulingDefault and the sinr
// toggles.
var enginePooling atomic.Bool

func init() { enginePooling.Store(true) }

// SetEnginePooling toggles trial engine pooling and returns the
// previous setting. Results are byte-identical either way: pooled
// engines are sinr engines, whose Resolve output depends only on the
// topology and the round's transmitter set, never on prior rounds
// (the purity contract pinned by the clone and round-sequence
// property tests).
func SetEnginePooling(on bool) bool { return enginePooling.Swap(on) }

// enginePool hands each trial a physical engine over one shared
// network. The first build that yields a cloneable sinr engine is
// kept as a pristine prototype — never handed out, so it is never
// mutated — and later trials get clones sharing its topology slabs,
// or recycled engines returned by put. Non-cloneable resolvers
// (fading and other wrapper channels with per-trial state) fall back
// to a fresh build every time. Safe for concurrent use by the
// runNTrials workers; each engine is owned by one trial between get
// and put.
type enginePool struct {
	build func() (sim.Resolver, error)

	mu     sync.Mutex
	proto  sim.Resolver
	free   []sim.Resolver
	builds int // fresh constructions, for tests
}

func newEnginePool(build func() (sim.Resolver, error)) *enginePool {
	return &enginePool{build: build}
}

func (p *enginePool) get() (sim.Resolver, error) {
	if !enginePooling.Load() {
		p.mu.Lock()
		p.builds++
		p.mu.Unlock()
		return p.build()
	}
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return r, nil
	}
	if p.proto != nil {
		r, _ := sinr.CloneResolver(p.proto)
		p.mu.Unlock()
		return r, nil
	}
	p.builds++
	p.mu.Unlock()
	r, err := p.build()
	if err != nil {
		return nil, err
	}
	if sinr.Cloneable(r) {
		p.mu.Lock()
		if p.proto == nil {
			// Keep the pristine original as the prototype and hand out
			// a clone. Two racing first builds both reach here; the
			// loser just returns its fresh engine directly.
			p.proto = r
			c, _ := sinr.CloneResolver(r)
			p.mu.Unlock()
			return c, nil
		}
		p.mu.Unlock()
	}
	return r, nil
}

// put returns an engine to the pool for the next trial. Only
// cloneable sinr engines are recycled — their used state resolves
// identically to a fresh engine's — anything else is dropped.
func (p *enginePool) put(r sim.Resolver) {
	if r == nil || !enginePooling.Load() || !sinr.Cloneable(r) {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, r)
	p.mu.Unlock()
}
