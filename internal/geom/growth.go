package geom

import "math"

// BallPoints returns the indices of all points within distance r of
// point i (inclusive), including i itself. It is the discrete ball
// B(v, r) of the paper.
func BallPoints(s Space, i int, r float64) []int {
	var out []int
	for j := 0; j < s.Len(); j++ {
		if s.Dist(i, j) <= r {
			out = append(out, j)
		}
	}
	return out
}

// BallCount returns |B(i, r)| without allocating.
func BallCount(s Space, i int, r float64) int {
	c := 0
	for j := 0; j < s.Len(); j++ {
		if s.Dist(i, j) <= r {
			c++
		}
	}
	return c
}

// CoverNumber estimates χ(a, b): the number of balls of radius b needed
// to cover the points of a ball of radius a centered at i, computed by a
// greedy farthest-point cover over the discrete point set. Greedy gives a
// cover within the metric's packing bounds, which is what the paper's
// O(c^γ) accounting needs.
func CoverNumber(s Space, i int, a, b float64) int {
	ball := BallPoints(s, i, a)
	covered := make([]bool, len(ball))
	count := 0
	for {
		// Pick the first uncovered point as a new center.
		center := -1
		for k, c := range covered {
			if !c {
				center = k
				break
			}
		}
		if center < 0 {
			return count
		}
		count++
		for k := range ball {
			if !covered[k] && s.Dist(ball[center], ball[k]) <= b {
				covered[k] = true
			}
		}
	}
}

// GrowthWitness measures the empirical growth exponent of the space at
// point i: the largest χ(c·d, d) seen over the provided scale pairs,
// normalized by c^γ. Values near or below 1 are consistent with the
// declared growth degree (the paper normalizes the hidden constant to 1,
// §2; we only use this diagnostic in tests, so a small slack is fine).
func GrowthWitness(s Space, i int, d float64, cs []int) float64 {
	worst := 0.0
	for _, c := range cs {
		if c < 1 {
			continue
		}
		chi := float64(CoverNumber(s, i, float64(c)*d, d))
		norm := chi / math.Pow(float64(c), s.Growth())
		if norm > worst {
			worst = norm
		}
	}
	return worst
}

// PackingNumber returns the size of a greedy maximal b-separated subset
// of the ball B(i, a): a lower bound on how many disjoint b/2-balls fit.
func PackingNumber(s Space, i int, a, b float64) int {
	ball := BallPoints(s, i, a)
	var centers []int
	for _, p := range ball {
		ok := true
		for _, c := range centers {
			if s.Dist(p, c) < b {
				ok = false
				break
			}
		}
		if ok {
			centers = append(centers, p)
		}
	}
	return len(centers)
}

// MinPairwiseDist returns the smallest nonzero pairwise distance in the
// space, and the involved pair. Returns (0, -1, -1) for fewer than two
// points.
func MinPairwiseDist(s Space) (d float64, i, j int) {
	n := s.Len()
	if n < 2 {
		return 0, -1, -1
	}
	d = math.Inf(1)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if dd := s.Dist(a, b); dd < d {
				d, i, j = dd, a, b
			}
		}
	}
	return d, i, j
}
