package sim

import (
	"testing"

	"sinrcast/internal/geom"
	"sinrcast/internal/sinr"
)

// TestObserveRoundsCountsAndPassesThrough pins the ObserveRounds
// contract: fn sees every Resolve/ResolveFor in call order with the
// transmitter and reception counts, receptions pass through
// unmodified, and the subset capability is preserved.
func TestObserveRoundsCountsAndPassesThrough(t *testing.T) {
	phys, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{
		{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 1.0, Y: 0},
	}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	type seen struct{ round, tx, rec int }
	var got []seen
	obs := ObserveRounds(phys, func(round, tx, rec int) {
		got = append(got, seen{round, tx, rec})
	})
	sub, ok := obs.(SubsetResolver)
	if !ok {
		t.Fatal("ObserveRounds dropped the SubsetResolver capability")
	}
	if obs.N() != 3 {
		t.Fatalf("N() = %d, want 3", obs.N())
	}

	r0 := obs.Resolve([]int{0})
	r1 := sub.ResolveFor([]int{0}, []int{1})
	r2 := obs.Resolve([]int{0, 2})

	want := []seen{
		{0, 1, len(r0)},
		{1, 1, len(r1)},
		{2, 2, len(r2)},
	}
	if len(got) != len(want) {
		t.Fatalf("observed %d rounds, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d observed as %+v, want %+v", i, got[i], want[i])
		}
	}

	// Pass-through: the wrapper must not change physics. Same call on
	// the bare engine gives identical receptions.
	fresh := phys.Resolve([]int{0})
	if len(fresh) != len(r0) {
		t.Fatalf("wrapper changed resolution: %d vs %d receptions", len(r0), len(fresh))
	}
	for i := range fresh {
		if fresh[i] != r0[i] {
			t.Fatalf("reception %d differs: %+v vs %+v", i, r0[i], fresh[i])
		}
	}
}

// TestObserveRoundsFullOnly covers a Resolve-only physical layer: the
// wrapper must not advertise ResolveFor it cannot forward.
func TestObserveRoundsFullOnly(t *testing.T) {
	inner, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	obs := ObserveRounds(fullOnlyResolver{inner}, func(round, tx, rec int) { calls++ })
	if _, ok := obs.(SubsetResolver); ok {
		t.Fatal("wrapper advertises ResolveFor over a Resolve-only layer")
	}
	obs.Resolve([]int{0})
	if calls != 1 {
		t.Fatalf("observer called %d times, want 1", calls)
	}
}

// TestObserveRoundsPanicUnwinds pins the cancellation idiom the serve
// layer uses: a panic raised inside fn unwinds through the wrapper to
// the caller, who recovers its own sentinel.
func TestObserveRoundsPanicUnwinds(t *testing.T) {
	phys, err := sinr.NewEngine(geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	type sentinel struct{}
	obs := ObserveRounds(phys, func(round, tx, rec int) { panic(sentinel{}) })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not unwind")
		} else if _, ok := r.(sentinel); !ok {
			t.Fatalf("recovered %v, want the sentinel", r)
		}
	}()
	obs.Resolve([]int{0})
}
