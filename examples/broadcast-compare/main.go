// Broadcast-compare: race every algorithm in the repository on one
// clustered network — the paper's motivating non-uniform-density
// scenario, where per-ball densities differ by orders of magnitude.
package main

import (
	"fmt"
	"log"

	"sinrcast"
)

func main() {
	// Four dense clusters of 24 stations bridged in a row.
	net, err := sinrcast.GenerateClusters(sinrcast.DefaultPhysical(), 4, 24, 0.08, 0.6, 5)
	if err != nil {
		log.Fatal(err)
	}
	d, _ := net.Diameter()
	fmt.Printf("clustered network: n=%d, D=%d, degree max=%d\n\n", net.N(), d, net.MaxDegree())

	type algo struct {
		name string
		run  func(*sinrcast.Network, sinrcast.Options) (*sinrcast.BroadcastResult, error)
	}
	algos := []algo{
		{"NoSBroadcast (Thm 1)", sinrcast.Broadcast},
		{"SBroadcast   (Thm 2)", sinrcast.BroadcastSpontaneous},
		{"Decay (radio-net classic)", sinrcast.FloodDecay},
		{"Daum-style (granularity sweep)", sinrcast.FloodDaumStyle},
		{"Density oracle (genie)", sinrcast.FloodDensityOracle},
		{"Grid TDMA (GPS genie)", sinrcast.FloodGridTDMA},
	}
	fmt.Printf("%-32s %8s %10s %14s\n", "algorithm", "rounds", "informed", "transmissions")
	for _, a := range algos {
		res, err := a.run(net, sinrcast.Options{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %8d %10v %14d\n", a.name, res.Rounds, res.AllInformed, res.Metrics.Transmissions)
	}
}
