// Package sim runs synchronous-round simulations of distributed wireless
// protocols under the SINR model (§1.1): in each round every station
// either transmits or listens, the physical engine resolves receptions,
// and messages are delivered. Stations interact with the world only
// through the Protocol interface — they never see the network, other
// stations' state, or positions, which keeps the "ad hoc, no GPS,
// no carrier sensing" contract of the paper honest by construction.
package sim

import (
	"fmt"

	"sinrcast/internal/sinr"
)

// Message is what a station puts on the air. The paper allows the
// broadcast message plus O(log n) extra bits (§1.1); Kind/A/B are that
// O(log n) annotation, and Round carries the global round counter used
// to synchronize non-spontaneously woken stations.
type Message struct {
	// Src is the transmitting station (filled by the engine).
	Src int
	// Round is the global round number at transmission (filled by the
	// engine; protocols read it to synchronize).
	Round int
	// Kind tags the protocol-level message type.
	Kind uint8
	// A and B are protocol-defined payload fields.
	A, B int64
}

// Protocol is the behavior of a single station. Implementations must
// only use their own local state: the engine calls Tick exactly once per
// round per station and Recv for each successful reception.
type Protocol interface {
	// Tick returns the station's action in round t: whether to transmit
	// and, if so, the message. A sleeping station returns (false, _).
	Tick(t int) (transmit bool, msg Message)
	// Recv delivers a successfully decoded message in round t. Recv is
	// called after all Tick calls of round t. A station never receives
	// in a round in which it transmitted.
	Recv(t int, msg Message)
}

// Resolver is the physical layer. *sinr.Engine, *sinr.GridEngine and
// *sinr.HierEngine all implement it (and SubsetResolver below).
type Resolver interface {
	Resolve(tx []int) []sinr.Reception
	N() int
}

// SubsetResolver is the optional physical-layer capability behind the
// engine's receiver-activity hook: resolving a round for an explicit
// receiver subset, byte-identical to a filtered full Resolve. All sinr
// engines implement it; wrapper channels (e.g. the fading engine, whose
// per-link randomness is drawn in full-network order) may not, in which
// case the engine transparently falls back to full resolution.
type SubsetResolver interface {
	Resolver
	ResolveFor(tx []int, receivers []int) []sinr.Reception
}

var (
	_ SubsetResolver = (*sinr.Engine)(nil)
	_ SubsetResolver = (*sinr.GridEngine)(nil)
	_ SubsetResolver = (*sinr.HierEngine)(nil)
)

// Tracer observes rounds; used by tests, stats and the CLIs.
type Tracer interface {
	// OnRound is called at the end of each round with the transmitter
	// set and the receptions. Slices are engine-owned: copy to retain.
	OnRound(t int, tx []int, rec []sinr.Reception)
}

// Metrics accumulates counters over a run.
type Metrics struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Transmissions counts station-rounds spent transmitting.
	Transmissions int64
	// Receptions counts successful deliveries.
	Receptions int64
	// BusyRounds counts rounds with at least one transmitter.
	BusyRounds int
}

// Engine drives one simulation.
type Engine struct {
	phys   Resolver
	subset SubsetResolver // phys when it supports ResolveFor, else nil
	protos []Protocol
	tracer Tracer
	msgs   []Message // per-station scratch of this round's messages
	txIDs  []int

	// Receiver-activity tracking (see SetReceiverActive): inactive
	// stations are excluded from reception resolution when the physical
	// layer supports subsets. activeRecv is rebuilt lazily when dirty.
	inactive    []bool
	inactiveN   int
	activeRecv  []int
	activeDirty bool

	// Metrics of the run so far.
	Metrics Metrics
	// round is the global clock; persists across Run calls so phased
	// protocols can be driven in segments.
	round int
}

// NewEngine pairs a physical resolver with one Protocol per station.
func NewEngine(phys Resolver, protos []Protocol) (*Engine, error) {
	if phys.N() != len(protos) {
		return nil, fmt.Errorf("sim: %d stations but %d protocols", phys.N(), len(protos))
	}
	subset, _ := phys.(SubsetResolver)
	return &Engine{
		phys:   phys,
		subset: subset,
		protos: protos,
		msgs:   make([]Message, len(protos)),
		txIDs:  make([]int, 0, len(protos)),
	}, nil
}

// SetReceiverActive marks whether station i still needs receptions
// resolved. Runners flip a station inactive once its state can no
// longer change by receiving — an informed flood station, an SBroadcast
// station past the coloring whose Recv is a no-op once informed — so
// late rounds stop paying O(n) interference work for receivers whose
// outcome is already settled.
//
// The contract is strict: receptions delivered to the remaining active
// stations are byte-identical to a full resolution (ResolveFor
// guarantees it); an inactive station simply hears nothing, and its
// Tick keeps running, so it may still transmit. Metrics.Receptions
// consequently counts only receptions at active stations. When the
// physical layer does not implement SubsetResolver the flag is recorded
// but every round resolves in full (receptions at inactive stations are
// then still delivered — callers must only deactivate stations whose
// Recv is a no-op, which makes the two paths behaviorally identical).
func (e *Engine) SetReceiverActive(i int, active bool) {
	if i < 0 || i >= len(e.protos) {
		panic(fmt.Sprintf("sim: station %d out of range [0,%d)", i, len(e.protos)))
	}
	if e.inactive == nil {
		if active {
			return
		}
		e.inactive = make([]bool, len(e.protos))
	}
	if e.inactive[i] == !active {
		return
	}
	e.inactive[i] = !active
	if active {
		e.inactiveN--
	} else {
		e.inactiveN++
	}
	e.activeDirty = true
}

// activeReceivers returns the sorted active-station list, rebuilding it
// only after SetReceiverActive changed something.
func (e *Engine) activeReceivers() []int {
	if e.activeDirty {
		e.activeRecv = e.activeRecv[:0]
		for i, off := range e.inactive {
			if !off {
				e.activeRecv = append(e.activeRecv, i)
			}
		}
		e.activeDirty = false
	}
	return e.activeRecv
}

// SetTracer installs an observer (nil disables tracing).
func (e *Engine) SetTracer(tr Tracer) { e.tracer = tr }

// Round returns the current global round number (the next round to run).
func (e *Engine) Round() int { return e.round }

// Step executes exactly one round and returns the number of successful
// receptions. The transmitter set handed to the physical layer is in
// ascending station order (stations tick in index order), and the
// active-receiver subset is ascending too — the shape sinr.HierEngine's
// cross-round delta path detects and exploits; protocol round loops get
// incremental far-field aggregation without doing anything.
func (e *Engine) Step() int {
	t := e.round
	e.txIDs = e.txIDs[:0]
	for i, p := range e.protos {
		transmit, msg := p.Tick(t)
		if transmit {
			msg.Src = i
			msg.Round = t
			e.msgs[i] = msg
			e.txIDs = append(e.txIDs, i)
		}
	}
	var rec []sinr.Reception
	if e.subset != nil && e.inactiveN > 0 {
		rec = e.subset.ResolveFor(e.txIDs, e.activeReceivers())
	} else {
		rec = e.phys.Resolve(e.txIDs)
	}
	for _, r := range rec {
		e.protos[r.Receiver].Recv(t, e.msgs[r.Transmitter])
	}
	if e.tracer != nil {
		e.tracer.OnRound(t, e.txIDs, rec)
	}
	e.Metrics.Rounds++
	e.Metrics.Transmissions += int64(len(e.txIDs))
	e.Metrics.Receptions += int64(len(rec))
	if len(e.txIDs) > 0 {
		e.Metrics.BusyRounds++
	}
	e.round++
	return len(rec)
}

// Run executes rounds until stop returns true (checked before each
// round) or maxRounds rounds have run in this call. It returns the
// number of rounds executed by this call and whether stop fired.
func (e *Engine) Run(maxRounds int, stop func() bool) (rounds int, stopped bool) {
	for rounds < maxRounds {
		if stop != nil && stop() {
			return rounds, true
		}
		e.Step()
		rounds++
	}
	return rounds, stop != nil && stop()
}
