package broadcast

import (
	"fmt"

	"sinrcast/internal/coloring"
	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// sbStation is the per-station SBroadcast state machine (§4.2).
//
// With spontaneous wake-up all stations run StabilizeProbability once,
// together, as a preprocessing step (the "communication backbone").
// Right after it the source transmits deterministically in a silent
// round, and from then on every informed station transmits with its
// Fact 11 probability each round, so the message advances one hop per
// O(log n) rounds in expectation: O(D·log n + log² n) in total.
type sbStation struct {
	cfg     *Config
	machine *coloring.Machine
	rnd     *rng.Source
	payload int64
	source  bool
	// colorLen caches cfg.Coloring.TotalRounds(), a schedule constant
	// recomputed in every Tick otherwise (see nosStation).
	colorLen int

	informed   bool
	informedAt int
	txProb     float64
}

var _ sim.Protocol = (*sbStation)(nil)

// Tick implements sim.Protocol.
func (s *sbStation) Tick(t int) (bool, sim.Message) {
	colorLen := s.colorLen
	switch {
	case t < colorLen:
		if s.machine.Tick(t) {
			return true, sim.Message{Kind: KindColoring, A: s.payload}
		}
		return false, sim.Message{}
	case t == colorLen:
		// The dedicated source round: everyone else stays silent (the
		// schedule is known to all in the spontaneous model).
		s.machine.Finish()
		s.txProb = s.cfg.TxProb(s.machine.Color())
		if s.source {
			return true, sim.Message{Kind: KindData, A: s.payload}
		}
		return false, sim.Message{}
	default:
		if s.informed && s.rnd.Bernoulli(s.txProb) {
			return true, sim.Message{Kind: KindData, A: s.payload}
		}
		return false, sim.Message{}
	}
}

var _ sim.Sleeper = (*sbStation)(nil)

// TickWake implements sim.Sleeper.
func (s *sbStation) TickWake(t int) (bool, sim.Message, int) {
	transmit, msg := s.Tick(t)
	return transmit, msg, s.nextWake(t)
}

// nextWake derives the sleep window from the post-Tick state: a colorer
// that quit draws nothing until the dedicated source round at colorLen
// (where everyone must tick to fix its Fact 11 probability), and past
// the coloring an uninformed station draws nothing until a reception
// informs it. Informed stations gamble every round.
func (s *sbStation) nextWake(t int) int {
	if t < s.colorLen {
		if s.machine.Done() {
			return s.colorLen
		}
		return t + 1
	}
	if s.informed {
		return t + 1
	}
	return sim.NeverWake
}

// Recv implements sim.Protocol.
func (s *sbStation) Recv(t int, msg sim.Message) {
	colorLen := s.colorLen
	if t < colorLen {
		s.machine.OnRecv(t)
		return
	}
	// Dissemination traffic informs; coloring is already over.
	if msg.Kind == KindData && !s.informed {
		s.informed = true
		s.informedAt = t
	}
}

// RunS executes SBroadcast from the given source and returns the result.
// The preprocessing coloring rounds are included in Result.Rounds, as in
// Theorem 2's O(D log n + log² n) accounting.
func RunS(net *network.Network, cfg Config, seed uint64, source int, payload int64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := net.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("broadcast: source %d out of range [0,%d)", source, n)
	}
	if cfg.Coloring.N != n {
		return nil, fmt.Errorf("broadcast: config sized for %d stations, network has %d", cfg.Coloring.N, n)
	}
	phys, err := cfg.channel(net)
	if err != nil {
		return nil, err
	}
	root := rng.New(seed)
	stations := make([]*sbStation, n)
	protos := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		m, err := coloring.NewMachine(cfg.Coloring, root.Split(uint64(i)).Split(1))
		if err != nil {
			return nil, err
		}
		st := &sbStation{
			cfg:        &cfg,
			machine:    m,
			rnd:        root.Split(uint64(i)),
			payload:    payload,
			source:     i == source,
			colorLen:   cfg.Coloring.TotalRounds(),
			informedAt: -1,
		}
		if st.source {
			st.informed = true
			st.informedAt = 0
		}
		stations[i] = st
		protos[i] = st
	}
	eng, err := sim.NewEngine(phys, protos)
	if err != nil {
		return nil, err
	}

	remaining := n - 1
	lastInformRound := 0
	eng.SetTracer(tracerFunc(func(t int, _ []int, rec []sinr.Reception) {
		for _, rc := range rec {
			if stations[rc.Receiver].informedAt == t {
				remaining--
				lastInformRound = t + 1
				// Past the coloring, an informed station's Recv is a
				// no-op: drop it from reception resolution (the paper's
				// state machine is unchanged — this only skips physical
				// work whose outcome cannot matter).
				eng.SetReceiverActive(rc.Receiver, false)
			}
		}
	}))
	// Segment the run at the coloring boundary: during part 1 every
	// station needs its coloring feedback, so all receivers stay active;
	// from the dedicated source round on, informed stations are
	// quiescent receivers and are deactivated as they are informed.
	budget := defaultBudget(cfg, net)
	stop := func() bool { return remaining == 0 }
	colorLen := cfg.Coloring.TotalRounds()
	pre := colorLen
	if pre > budget {
		pre = budget
	}
	eng.Run(pre, stop)
	if eng.Round() >= colorLen {
		eng.SetReceiverActive(source, false)
	}
	eng.Run(budget-pre, stop)

	res := &Result{
		AllInformed: remaining == 0,
		InformTime:  make([]int, n),
		Metrics:     eng.Metrics,
	}
	if res.AllInformed {
		res.Rounds = lastInformRound
	} else {
		res.Rounds = eng.Metrics.Rounds
	}
	for i, st := range stations {
		res.InformTime[i] = st.informedAt
	}
	return res, nil
}
