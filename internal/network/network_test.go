package network

import (
	"math"
	"testing"

	"sinrcast/internal/geom"
	"sinrcast/internal/rng"
	"sinrcast/internal/sinr"
)

// lineNet builds a path network with k stations spaced just inside the
// comm radius, so the communication graph is a path.
func lineNet(t *testing.T, k int) *Network {
	t.Helper()
	p := sinr.DefaultParams()
	gap := p.CommRadius() * 0.99
	coords := make([]float64, k)
	for i := range coords {
		coords[i] = float64(i) * gap
	}
	net, err := New(geom.NewLine(coords), p)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(geom.NewEuclidean(nil), sinr.DefaultParams()); err == nil {
		t.Fatal("want error for empty set")
	}
	bad := sinr.DefaultParams()
	bad.Alpha = 1 // below plane growth
	if _, err := New(geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}}), bad); err == nil {
		t.Fatal("want error for invalid params")
	}
}

func TestPathGraphStructure(t *testing.T) {
	net := lineNet(t, 5)
	if net.N() != 5 {
		t.Fatalf("N = %d", net.N())
	}
	if net.EdgeCount() != 4 {
		t.Fatalf("EdgeCount = %d, want 4", net.EdgeCount())
	}
	if net.Degree(0) != 1 || net.Degree(2) != 2 || net.Degree(4) != 1 {
		t.Fatalf("degrees wrong: %d %d %d", net.Degree(0), net.Degree(2), net.Degree(4))
	}
	if net.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", net.MaxDegree())
	}
	if !net.Connected() {
		t.Fatal("path should be connected")
	}
	d, conn := net.Diameter()
	if !conn || d != 4 {
		t.Fatalf("Diameter = %d (conn=%v), want 4", d, conn)
	}
}

func TestDisconnected(t *testing.T) {
	p := sinr.DefaultParams()
	net, err := New(geom.NewLine([]float64{0, 10}), p)
	if err != nil {
		t.Fatal(err)
	}
	if net.Connected() {
		t.Fatal("should be disconnected")
	}
	if net.ComponentCount() != 2 {
		t.Fatalf("ComponentCount = %d", net.ComponentCount())
	}
	if _, conn := net.Diameter(); conn {
		t.Fatal("Diameter should report disconnected")
	}
	if sp := net.ShortestPath(0, 1); sp != nil {
		t.Fatalf("ShortestPath across components = %v", sp)
	}
}

func TestBFS(t *testing.T) {
	net := lineNet(t, 6)
	dist := net.BFS(2)
	want := []int{2, 1, 0, 1, 2, 3}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("BFS dist = %v, want %v", dist, want)
		}
	}
}

func TestShortestPath(t *testing.T) {
	net := lineNet(t, 5)
	sp := net.ShortestPath(0, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(sp) != len(want) {
		t.Fatalf("path = %v", sp)
	}
	for i := range want {
		if sp[i] != want[i] {
			t.Fatalf("path = %v, want %v", sp, want)
		}
	}
	if sp := net.ShortestPath(3, 3); len(sp) != 1 || sp[0] != 3 {
		t.Fatalf("self path = %v", sp)
	}
}

func TestEuclideanGridBucketsMatchBruteForce(t *testing.T) {
	// Random cloud: grid-bucketed adjacency must equal the O(n²) scan.
	r := rng.New(5)
	n := 300
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, 8), Y: r.Range(0, 8)}
	}
	p := sinr.DefaultParams()
	fast, err := New(geom.NewEuclidean(pts), p)
	if err != nil {
		t.Fatal(err)
	}
	radius := p.CommRadius()
	for i := 0; i < n; i++ {
		want := map[int32]bool{}
		for j := 0; j < n; j++ {
			if i != j && pts[i].Dist(pts[j]) <= radius {
				want[int32(j)] = true
			}
		}
		if len(want) != len(fast.Adj[i]) {
			t.Fatalf("station %d: grid degree %d, brute force %d", i, len(fast.Adj[i]), len(want))
		}
		for _, j := range fast.Adj[i] {
			if !want[j] {
				t.Fatalf("station %d: spurious edge to %d", i, j)
			}
		}
	}
}

func TestGranularity(t *testing.T) {
	p := sinr.DefaultParams()
	// Edges of length 0.1 and 0.5 -> Rs = 5.
	net, err := New(geom.NewLine([]float64{0, 0.1, 0.6}), p)
	if err != nil {
		t.Fatal(err)
	}
	if rs := net.Granularity(); math.Abs(rs-6) > 1e-9 {
		// Edges: (0,1)=0.1, (1,2)=0.5, (0,2)=0.6 <= 2/3 also an edge.
		t.Fatalf("Granularity = %v, want 6", rs)
	}
	// Single station: no edges.
	net1, err := New(geom.NewLine([]float64{0}), p)
	if err != nil {
		t.Fatal(err)
	}
	if rs := net1.Granularity(); rs != 1 {
		t.Fatalf("Granularity singleton = %v", rs)
	}
}

func TestExponentialChainGranularity(t *testing.T) {
	// The paper's footnote-2 network: dist(x_i, x_{i+1}) = 1/2^i.
	// Granularity grows exponentially with n.
	k := 12
	coords := make([]float64, k)
	pos := 0.0
	for i := 1; i < k; i++ {
		pos += math.Pow(2, -float64(i))
		coords[i] = pos
	}
	net, err := New(geom.NewLine(coords), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !net.Connected() {
		t.Fatal("chain should be connected")
	}
	if rs := net.Granularity(); rs < math.Pow(2, float64(k-3)) {
		t.Fatalf("Granularity = %v, want exponential in n", rs)
	}
}

func TestDiameterApprox(t *testing.T) {
	net := lineNet(t, 20)
	d, conn := net.DiameterApprox()
	if !conn {
		t.Fatal("approx reported disconnected on a path")
	}
	exact, _ := net.Diameter()
	if d < exact/2 || d > exact {
		t.Fatalf("DiameterApprox = %d, exact %d", d, exact)
	}
	// Double sweep is exact on paths (trees).
	if d != exact {
		t.Fatalf("double sweep should be exact on a path: %d vs %d", d, exact)
	}
}

func TestEccentricity(t *testing.T) {
	net := lineNet(t, 7)
	ecc, conn := net.Eccentricity(3)
	if !conn || ecc != 3 {
		t.Fatalf("Eccentricity(3) = %d conn=%v", ecc, conn)
	}
	ecc, conn = net.Eccentricity(0)
	if !conn || ecc != 6 {
		t.Fatalf("Eccentricity(0) = %d conn=%v", ecc, conn)
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	r := rng.New(21)
	pts := make([]geom.Point, 150)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, 5), Y: r.Range(0, 5)}
	}
	net, err := New(geom.NewEuclidean(pts), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	adjSet := make([]map[int32]bool, net.N())
	for i := range adjSet {
		adjSet[i] = map[int32]bool{}
		for _, j := range net.Adj[i] {
			if int(j) == i {
				t.Fatalf("self-loop at %d", i)
			}
			adjSet[i][j] = true
		}
	}
	for i := range adjSet {
		for j := range adjSet[i] {
			if !adjSet[j][int32(i)] {
				t.Fatalf("edge (%d,%d) not symmetric", i, j)
			}
		}
	}
}
