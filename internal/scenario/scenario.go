// Package scenario is the registry of topology families: named,
// self-describing network generators that build deterministic
// deployments from a declarative Spec (family name + parameter map,
// parseable from the compact string form "uniform:n=256,density=8").
//
// Every family declares its typed parameters (name, default, range,
// doc), so command-line tools list the full catalogue with -list and
// experiments can sweep *every* registered family without naming any
// of them (exp.E12CrossFamilySweep). internal/netgen keeps its
// function-per-family surface as thin wrappers over this registry.
//
// Registering a family makes it visible everywhere at once: the three
// CLIs (netgen, broadcast-sim, experiments), the cross-family sweep,
// the registry-wide property tests, and the public sinrcast.Generate.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sinr"
)

// Param describes one parameter of a topology family.
type Param struct {
	// Name is the key used in Spec.Params and the compact string form.
	Name string
	// Doc is a one-line description shown by -list.
	Doc string
	// Default is the value used when a Spec omits the parameter.
	Default float64
	// Min and Max bound the accepted values (inclusive). Builders may
	// apply stricter, physics-dependent checks (e.g. spacing ≤ comm
	// radius) that static bounds cannot express.
	Min, Max float64
	// Int marks integer-valued parameters (station counts etc.).
	Int bool
}

// Build carries the resolved inputs of one generation: physical
// parameters, seed, and the family's parameter values with defaults
// filled in and ranges checked.
type Build struct {
	// Phys are the physical parameters (notably ε, which fixes the
	// communication radius 1-ε).
	Phys sinr.Params
	// Seed drives all sampling.
	Seed uint64

	params map[string]float64
}

// Float returns the resolved value of a declared parameter. It panics
// on undeclared names: that is a bug in the family definition, not a
// user error (user input is validated before Build is constructed).
func (b Build) Float(name string) float64 {
	v, ok := b.params[name]
	if !ok {
		panic(fmt.Sprintf("scenario: builder read undeclared parameter %q", name))
	}
	return v
}

// Int returns a declared integer parameter.
func (b Build) Int(name string) int { return int(b.Float(name)) }

// Rng returns a fresh deterministic stream seeded from Build.Seed.
func (b Build) Rng() *rng.Source { return rng.New(b.Seed) }

// Family is one registered topology generator.
type Family struct {
	// Name identifies the family in Spec strings; lowercase.
	Name string
	// Doc is a one-line description shown by -list.
	Doc string
	// Params declares the accepted parameters in display order.
	Params []Param
	// ForN returns parameter overrides sizing the family to ≈n
	// stations, for cross-family sweeps at matched n. When nil,
	// SpecForN sets the parameter literally named "n" if one exists.
	ForN func(n int) map[string]float64
	// Build generates the deployment. It must be deterministic in
	// (Build.Phys, Build.Seed, params): same inputs, byte-identical
	// positions.
	Build func(b Build) (*network.Network, error)
}

// param looks up a declared parameter by name.
func (f *Family) param(name string) (Param, bool) {
	for _, p := range f.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// SpecForN returns a Spec sizing the family to approximately n
// stations (exactly n for most families).
func (f *Family) SpecForN(n int) Spec {
	if f.ForN != nil {
		return Spec{Family: f.Name, Params: f.ForN(n)}
	}
	if _, ok := f.param("n"); ok {
		return Spec{Family: f.Name, Params: map[string]float64{"n": float64(n)}}
	}
	return Spec{Family: f.Name}
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Family{}
)

// Register adds a family to the registry. It panics on an empty or
// duplicate name, a missing Build function, or a Param whose default
// violates its own bounds — all programming errors caught at init.
func Register(f Family) {
	if f.Name == "" {
		panic("scenario: Register with empty family name")
	}
	if f.Build == nil {
		panic(fmt.Sprintf("scenario: family %q has no Build function", f.Name))
	}
	seen := map[string]bool{}
	for _, p := range f.Params {
		if p.Name == "" || seen[p.Name] {
			panic(fmt.Sprintf("scenario: family %q declares empty or duplicate parameter %q", f.Name, p.Name))
		}
		seen[p.Name] = true
		if p.Default < p.Min || p.Default > p.Max {
			panic(fmt.Sprintf("scenario: family %q parameter %q default %v outside [%v, %v]",
				f.Name, p.Name, p.Default, p.Min, p.Max))
		}
		if p.Int && p.Default != math.Trunc(p.Default) {
			panic(fmt.Sprintf("scenario: family %q integer parameter %q has fractional default %v",
				f.Name, p.Name, p.Default))
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[f.Name]; dup {
		panic(fmt.Sprintf("scenario: family %q registered twice", f.Name))
	}
	cp := f
	registry[f.Name] = &cp
}

// Lookup returns the named family.
func Lookup(name string) (*Family, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// Families returns every registered family sorted by name.
func Families() []*Family {
	regMu.RLock()
	out := make([]*Family, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted names of all registered families.
func Names() []string {
	fams := Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}

// Describe renders the catalogue of registered families with their
// parameter docs — the text behind every CLI's -list flag.
func Describe() string {
	var sb strings.Builder
	for _, f := range Families() {
		fmt.Fprintf(&sb, "%s — %s\n", f.Name, f.Doc)
		width := 0
		for _, p := range f.Params {
			if len(p.Name) > width {
				width = len(p.Name)
			}
		}
		for _, p := range f.Params {
			def := formatValue(p.Default)
			kind := ""
			if p.Int {
				kind = ", int"
			}
			fmt.Fprintf(&sb, "    %-*s  %s (default %s%s)\n", width, p.Name, p.Doc, def, kind)
		}
	}
	return sb.String()
}
