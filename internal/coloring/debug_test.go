package coloring

import (
	"testing"

	"sinrcast/internal/netgen"
	"sinrcast/internal/sinr"
)

// TestQuitPhaseHistogram is a diagnostic: -v prints when stations quit.
func TestQuitPhaseHistogram(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	cfg := netgen.Config{Params: sinr.DefaultParams(), Seed: 42}
	net, err := netgen.Uniform(cfg, 128, 6)
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultParams(net.N(), net.Space.Growth(), net.Params.Eps)
	t.Logf("phases=%d dtLen=%d dtNeed=%d poLen=%d poNeed=%d pstart=%.5f pmax=%.5f ceps=%.0f",
		par.Phases(), par.DTLen(), par.DTNeed(), par.POLen(), par.PONeed(), par.PStart(), par.PMax, par.CEps)
	res, err := Run(net, par, 7)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]int, par.Phases()+1)
	for _, ph := range res.QuitPhase {
		if ph < 0 {
			hist[par.Phases()]++
		} else {
			hist[ph]++
		}
	}
	t.Logf("quit-phase histogram (last bucket = survived to 2pmax): %v", hist)
	l2 := CheckLemma2(net, res.Colors)
	t.Logf("weakest station %d: bestColor=%.5f mass=%.5f  degree(comm)=%d",
		l2.Station, l2.BestColor, l2.MinBestMass, net.Degree(l2.Station))
}
