// Package sched is the locality-aware parallel runtime under the sinr
// engines: a reusable set of worker goroutines executing block-
// granularity work chunks with owner affinity and work stealing.
//
// The previous runtime cut every round into exactly one contiguous
// shard per worker. That made rounds stall on the slowest shard — the
// hier engine's ArgMin rejection makes cold receiver blocks finish
// almost for free while decode-heavy blocks dominate, so equal-sized
// shards are wildly unequal in work — and it let the Go scheduler
// migrate shards across cores between rounds, scattering the per-block
// slab caches a stable placement would keep hot. This runtime fixes
// both:
//
//   - Affinity: every chunk names a preferred owner worker. The owner
//     assignment is the caller's (the engines derive it from stable
//     block ids), so the same receiver blocks land on the same worker
//     round after round and their cached frontier/near slabs and
//     far-sum entries stay in that worker's core-local cache.
//
//   - Stealing: a worker that drains its own queue takes whole chunks
//     from the tail of other workers' queues, so imbalanced rounds
//     finish at the speed of the aggregate, not of the slowest owner.
//
//   - Determinism: the runtime never decides *what* a chunk computes
//     or *where* its output goes — callers give every chunk its own
//     output slot and merge slots in chunk order after the round.
//     Each chunk is claimed by exactly one worker (a CAS per chunk),
//     and a chunk's work is a pure function of shared read-only round
//     state, so the merged output is byte-identical for every worker
//     count, every steal interleaving, and pinning on or off.
//
// Opt-in placement (New's pinned flag) locks each worker goroutine to
// an OS thread and — on Linux — sets per-thread CPU affinity with
// sched_setaffinity, assigning workers to CPUs in NUMA-node-major
// order (internal/cputopo), so consecutive workers share a node and
// contiguous block ranges stay on the socket that owns their memory.
// Everywhere else pinning degrades to LockOSThread alone.
//
// A Runner is owned by one engine and Run is never called
// concurrently on the same Runner. Steady-state rounds do not
// allocate: queue and claim arrays grow to a high-water mark and are
// reused.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sinrcast/internal/cputopo"
)

// Runner executes rounds of chunks on a fixed set of worker
// goroutines. Create with New, release with Close.
type Runner struct {
	workers int
	pinned  bool
	cpus    []int // pin targets in node-major order; nil when unpinned

	wake []chan struct{} // one per worker: fixed goroutine identity
	wg   sync.WaitGroup

	// Round state: written by Run before the wake sends, read-only by
	// workers during the round (the channel send/receive pair orders
	// the writes), except claimed/steals which are atomic.
	fn      func(chunk, worker int)
	ew      int // effective workers woken this round
	qIdx    []int32
	qStart  []int32 // CSR: worker w owns qIdx[qStart[w]:qStart[w+1]]
	qFill   []int32
	claimed []uint32

	steals atomic.Int64

	// Test hook: worker holdWorker blocks on holdCh at the start of
	// each round, forcing its queue to be stolen (see SetHoldForTest).
	holdWorker int
	holdCh     <-chan struct{}
}

// New starts a runner with the given worker count (≥ 1). With pinned
// set, each worker goroutine locks its OS thread and pins itself to
// one CPU, workers assigned to CPUs node-major (worker 0 → first CPU
// of node 0, ...). Pinning is best-effort: on non-Linux platforms, or
// when sched_setaffinity fails, workers stay thread-locked but
// unpinned.
func New(workers int, pinned bool) *Runner {
	if workers < 1 {
		workers = 1
	}
	r := &Runner{
		workers:    workers,
		pinned:     pinned,
		qStart:     make([]int32, workers+1),
		qFill:      make([]int32, workers),
		holdWorker: -1,
	}
	if pinned {
		r.cpus = cputopo.Detect().CPUsNodeMajor()
	}
	r.wake = make([]chan struct{}, workers)
	for i := 0; i < workers; i++ {
		r.wake[i] = make(chan struct{}, 1)
		go r.workerLoop(i)
	}
	return r
}

// Workers returns the worker count the runner was built with.
func (r *Runner) Workers() int { return r.workers }

// Pinned reports whether the runner was built with placement on.
func (r *Runner) Pinned() bool { return r.pinned }

// Steals returns the cumulative number of chunks executed by a worker
// other than their owner. Purely diagnostic — stealing never affects
// output — but the counted CI gate reads it to prove the stealing
// path stays alive.
func (r *Runner) Steals() int64 { return r.steals.Load() }

// Close terminates the worker goroutines. The runner must be idle (no
// Run in flight). Exactly one of two paths calls it per runner: the
// owning engine's GC cleanup, or the engine replacing the runner after
// a configuration change (which stops the cleanup first).
func (r *Runner) Close() {
	for _, ch := range r.wake {
		close(ch)
	}
}

// SetHoldForTest stalls the given worker at the start of every
// subsequent round until release is closed (worker < 0 clears the
// hook). Tests use it to make stealing deterministic: with worker w
// held, every chunk owned by w must be stolen by the others before
// the round can complete, on any hardware and any Go scheduler
// interleaving. Must only be called between rounds.
func (r *Runner) SetHoldForTest(worker int, release <-chan struct{}) {
	r.holdWorker = worker
	r.holdCh = release
}

// Run executes fn(c, w) exactly once for every chunk c in
// [0, len(owners)), where w is the worker that actually ran the chunk.
// owners[c] names chunk c's preferred worker; values outside the woken
// range are folded back in. Run returns when every chunk has finished.
// fn must only write chunk-private state (plus worker-private scratch
// indexed by w); shared round inputs must be read-only for the
// duration.
func (r *Runner) Run(owners []int32, fn func(chunk, worker int)) {
	n := len(owners)
	if n == 0 {
		return
	}
	if r.workers == 1 {
		// Inline: no goroutine handoff, same chunk order.
		for c := 0; c < n; c++ {
			fn(c, 0)
		}
		return
	}
	// Never wake more workers than there are chunks: a tiny round on a
	// wide runner would otherwise pay wakeups for workers with nothing
	// to do (the old runtime's degenerate empty shards).
	ew := min(r.workers, n)

	// Build the per-worker CSR queues (counting sort, reused buffers).
	if cap(r.qIdx) < n {
		r.qIdx = make([]int32, n)
		r.claimed = make([]uint32, n)
	}
	r.qIdx = r.qIdx[:n]
	r.claimed = r.claimed[:n]
	clear(r.claimed)
	qs := r.qStart[:ew+1]
	clear(qs)
	for _, w := range owners {
		q := int(w)
		if q >= ew || q < 0 {
			q %= ew
			if q < 0 {
				q += ew
			}
		}
		qs[q+1]++
	}
	for w := 1; w <= ew; w++ {
		qs[w] += qs[w-1]
	}
	fill := r.qFill[:ew]
	clear(fill)
	for c, w := range owners {
		q := int(w)
		if q >= ew || q < 0 {
			q %= ew
			if q < 0 {
				q += ew
			}
		}
		r.qIdx[qs[q]+fill[q]] = int32(c)
		fill[q]++
	}

	r.fn = fn
	r.ew = ew
	r.wg.Add(ew)
	for w := 0; w < ew; w++ {
		r.wake[w] <- struct{}{}
	}
	r.wg.Wait()
	r.fn = nil
}

// workerLoop is one worker goroutine: pin once, then serve rounds
// until the wake channel closes. A goroutine's worker id is fixed for
// its lifetime, which is what makes owner affinity mean something — a
// block's owner is always the same goroutine, and with pinning on,
// the same OS thread on the same CPU.
func (r *Runner) workerLoop(id int) {
	if r.pinned {
		runtime.LockOSThread()
		if len(r.cpus) > 0 {
			// Best-effort: a failed pin leaves the worker thread-locked
			// but floating, which is still deterministic.
			_ = pinThread(r.cpus[id%len(r.cpus)])
		}
	}
	for range r.wake[id] {
		r.round(id)
		r.wg.Done()
	}
}

// round is one worker's share of a Run: drain the own queue front to
// back, then steal from the tails of the other queues until a full
// sweep finds every chunk claimed.
func (r *Runner) round(id int) {
	if id == r.holdWorker && r.holdCh != nil {
		<-r.holdCh
	}
	fn := r.fn
	for _, c := range r.qIdx[r.qStart[id]:r.qStart[id+1]] {
		if r.claim(c) {
			fn(int(c), id)
		}
	}
	ew := r.ew
	if ew <= 1 {
		return
	}
	for {
		stole := false
		for k := 1; k < ew; k++ {
			v := id + k
			if v >= ew {
				v -= ew
			}
			q := r.qIdx[r.qStart[v]:r.qStart[v+1]]
			for i := len(q) - 1; i >= 0; i-- {
				if c := q[i]; r.claim(c) {
					r.steals.Add(1)
					fn(int(c), id)
					stole = true
					break
				}
			}
		}
		if !stole {
			// Every chunk is claimed; whoever claimed one finishes it
			// before their own wg.Done, so exiting now is safe.
			return
		}
	}
}

// claim takes chunk c if unclaimed. At most one worker wins the CAS,
// so every chunk executes exactly once per round.
func (r *Runner) claim(c int32) bool {
	return atomic.CompareAndSwapUint32(&r.claimed[c], 0, 1)
}
