package sinr

import (
	"fmt"
	"strconv"
	"strings"
)

// Canonical parameter keys. A Params value renders to exactly one
// string and parses back bit-exactly, so physical configurations can
// be compared, logged, and used as cache-key components: the serve
// layer's content-addressed engine cache is keyed by
// (scenario spec, EngineKey, seed), and the CLIs print the key so a
// run's physics can be quoted verbatim in a reproduction.

// Key renders the canonical compact form
// "alpha=A,beta=B,noise=N,eps=E" with each value formatted in the
// shortest representation that round-trips through strconv.ParseFloat.
// ParseParamsKey(p.Key()) reproduces p bit-exactly.
func (p Params) Key() string {
	var sb strings.Builder
	sb.WriteString("alpha=")
	sb.WriteString(formatKeyValue(p.Alpha))
	sb.WriteString(",beta=")
	sb.WriteString(formatKeyValue(p.Beta))
	sb.WriteString(",noise=")
	sb.WriteString(formatKeyValue(p.Noise))
	sb.WriteString(",eps=")
	sb.WriteString(formatKeyValue(p.Eps))
	return sb.String()
}

// EngineKey prefixes the canonical parameter key with an engine name:
// "engine=hier,alpha=A,beta=B,noise=N,eps=E". Together with a scenario
// spec and a seed it content-addresses a warmed engine: same key, same
// topology slabs, byte-identical Resolve output.
func EngineKey(engine string, p Params) string {
	return "engine=" + engine + "," + p.Key()
}

func formatKeyValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseParamsKey reads the canonical form produced by Params.Key. All
// four fields must be present exactly once; unknown fields and
// malformed numbers are rejected. The parse is the exact inverse of
// Key (float values round-trip bit-exactly), pinned by the round-trip
// test.
func ParseParamsKey(s string) (Params, error) {
	var p Params
	seen := map[string]bool{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(pair, "=")
		name, val = strings.TrimSpace(name), strings.TrimSpace(val)
		if !ok || name == "" || val == "" {
			return Params{}, fmt.Errorf("sinr: malformed params key field %q (want name=value)", pair)
		}
		if seen[name] {
			return Params{}, fmt.Errorf("sinr: params key field %q given twice", name)
		}
		seen[name] = true
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Params{}, fmt.Errorf("sinr: params key field %s=%q is not a number", name, val)
		}
		switch name {
		case "alpha":
			p.Alpha = v
		case "beta":
			p.Beta = v
		case "noise":
			p.Noise = v
		case "eps":
			p.Eps = v
		default:
			return Params{}, fmt.Errorf("sinr: unknown params key field %q (want alpha, beta, noise, eps)", name)
		}
	}
	for _, name := range []string{"alpha", "beta", "noise", "eps"} {
		if !seen[name] {
			return Params{}, fmt.Errorf("sinr: params key %q is missing field %q", s, name)
		}
	}
	return p, nil
}

// ParseEngineKey reads the form produced by EngineKey: the leading
// "engine=name" field followed by the canonical parameter key.
func ParseEngineKey(s string) (engine string, p Params, err error) {
	head, rest, ok := strings.Cut(s, ",")
	name, val, okHead := strings.Cut(head, "=")
	if !ok || !okHead || strings.TrimSpace(name) != "engine" || strings.TrimSpace(val) == "" {
		return "", Params{}, fmt.Errorf("sinr: engine key %q must start with \"engine=name,\"", s)
	}
	p, err = ParseParamsKey(rest)
	if err != nil {
		return "", Params{}, err
	}
	return strings.TrimSpace(val), p, nil
}
