package protocol

import (
	"math"

	"sinrcast/internal/apps/alert"
	"sinrcast/internal/apps/consensus"
	"sinrcast/internal/apps/leader"
	"sinrcast/internal/apps/wakeup"
	"sinrcast/internal/baseline"
	"sinrcast/internal/broadcast"
	"sinrcast/internal/network"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// The built-in protocols: the paper's broadcast algorithms (§4), the
// multi-source wake-up engine, the four baseline flood policies, and
// the §5 applications through the result adapter. All of them wrap the
// original entry points — broadcast.RunNoS/RunS/RunNoSMulti,
// baseline.RunFlood, apps/{wakeup,consensus,leader,alert}.Run — which
// stay the canonical implementations.

// sourceParam declares the broadcasting-station index shared by all
// single-source protocols.
func sourceParam() Param {
	return Param{Name: "source", Doc: "broadcasting station index", Default: 0, Min: 0, Max: maxIntParam, Int: true}
}

// source resolves and checks the source parameter against the network
// — the spec-vs-network half of validation that static bounds cannot
// express.
func source(net *network.Network, b Build) (int, error) {
	s := b.Int("source")
	if s >= net.N() {
		return 0, specErrorf("protocol: source=%d outside [0,%d)", s, net.N())
	}
	return s, nil
}

// tuningParams declares the knobs shared by the coloring-backbone
// broadcast protocols (mapped onto broadcast.Config). Defaults are
// read from broadcast.DefaultConfig — the canonical calibration — so
// a registry run with no overrides can never drift from the direct
// entry points if that calibration is ever retuned. (TxRounds, CProb
// and MaxTxProb do not depend on the n/gamma/eps arguments.)
func tuningParams() []Param {
	def := broadcast.DefaultConfig(16, 2, sinr.DefaultParams().Eps)
	return []Param{
		{Name: "txrounds", Doc: "dissemination-part length multiplier (×lg² n rounds)", Default: def.TxRounds, Min: 0.1, Max: 64},
		{Name: "cprob", Doc: "Fact 11 transmission-probability divisor", Default: def.CProb, Min: 0.1, Max: 1e6},
		{Name: "maxtxprob", Doc: "per-round transmission probability cap", Default: def.MaxTxProb, Min: 1e-6, Max: 1},
		{Name: "gamma", Doc: "growth degree for calibration (0 = the network's own)", Default: 0, Min: 0, Max: 16},
		{Name: "budgetmul", Doc: "round-budget multiplier over the derived default", Default: 1, Min: 0.01, Max: 1000},
	}
}

// budgetParam declares the explicit round budget of the flood
// baselines (RunFlood's budget argument).
func budgetParam() Param {
	return Param{Name: "budget", Doc: "round budget (0 = derived default)", Default: 0, Min: 0, Max: maxIntParam, Int: true}
}

// bcastConfig maps the tuning parameters onto a calibrated
// broadcast.Config for the network, threading the run's channel.
func bcastConfig(net *network.Network, b Build) broadcast.Config {
	gamma := b.Float("gamma")
	if gamma <= 0 {
		gamma = net.Space.Growth()
	}
	cfg := broadcast.DefaultConfig(net.N(), gamma, net.Params.Eps)
	cfg.TxRounds = b.Float("txrounds")
	cfg.CProb = b.Float("cprob")
	cfg.MaxTxProb = b.Float("maxtxprob")
	cfg.Channel = b.Channel()
	if m := b.Float("budgetmul"); m != 1 {
		cfg.MaxRounds = int(math.Ceil(m * float64(broadcast.Budget(cfg, net))))
	}
	return cfg
}

// floodPhys builds the flood baselines' physical layer from the run's
// channel (nil = RunFloodOn's default exact engine).
func floodPhys(net *network.Network, b Build) (sim.Resolver, error) {
	if ch := b.Channel(); ch != nil {
		return ch(net)
	}
	return nil, nil
}

// spread returns k station indices spread evenly over [0, n): the
// deterministic placement used by the multi-source protocols.
func spread(n, k int) []int {
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i * n / k
	}
	return out
}

func init() {
	Register(Protocol{
		Name:   "nos",
		Doc:    "NoSBroadcast (§4.1, Thm 1): non-spontaneous wake-up, phased coloring+dissemination, O(D·lg² n)",
		Params: append([]Param{sourceParam()}, tuningParams()...),
		Run: func(net *network.Network, b Build) (*broadcast.Result, error) {
			src, err := source(net, b)
			if err != nil {
				return nil, err
			}
			return broadcast.RunNoS(net, bcastConfig(net, b), b.Seed, src, 1)
		},
	})

	Register(Protocol{
		Name:   "s",
		Doc:    "SBroadcast (§4.2, Thm 2): spontaneous wake-up, one shared coloring backbone, O(D·lg n + lg² n)",
		Params: append([]Param{sourceParam()}, tuningParams()...),
		Run: func(net *network.Network, b Build) (*broadcast.Result, error) {
			src, err := source(net, b)
			if err != nil {
				return nil, err
			}
			return broadcast.RunS(net, bcastConfig(net, b), b.Seed, src, 1)
		},
	})

	Register(Protocol{
		Name: "nosmulti",
		Doc:  "multi-source NoSBroadcast: k evenly spread stations hold the message at round 0",
		Params: append([]Param{
			{Name: "sources", Doc: "number of initially informed stations", Default: 2, Min: 1, Max: maxIntParam, Int: true},
		}, tuningParams()...),
		Run: func(net *network.Network, b Build) (*broadcast.Result, error) {
			k := b.Int("sources")
			if k > net.N() {
				return nil, specErrorf("protocol: nosmulti sources=%d exceeds n=%d", k, net.N())
			}
			wakeAt := make([]int, net.N())
			for i := range wakeAt {
				wakeAt[i] = -1
			}
			for _, s := range spread(net.N(), k) {
				wakeAt[s] = 0
			}
			return broadcast.RunNoSMulti(net, bcastConfig(net, b), b.Seed, wakeAt, 1)
		},
	})

	Register(Protocol{
		Name: "wakeup",
		Doc:  "ad hoc wake-up (§5): staggered adversarial wake-ups, rounds = span from first wake-up to all awake",
		Params: append([]Param{
			{Name: "wakers", Doc: "number of spontaneously woken stations", Default: 3, Min: 1, Max: maxIntParam, Int: true},
			{Name: "stagger", Doc: "wake-up spacing in phase lengths (waker k wakes at k·stagger·phase)", Default: 0.5, Min: 0, Max: 100},
		}, tuningParams()...),
		Run: func(net *network.Network, b Build) (*broadcast.Result, error) {
			cfg := bcastConfig(net, b)
			k := b.Int("wakers")
			if k > net.N() {
				return nil, specErrorf("protocol: wakeup wakers=%d exceeds n=%d", k, net.N())
			}
			wakeAt := make([]int, net.N())
			for i := range wakeAt {
				wakeAt[i] = -1
			}
			step := b.Float("stagger") * float64(cfg.PhaseLen())
			for i, s := range spread(net.N(), k) {
				wakeAt[s] = int(float64(i) * step)
			}
			res, err := wakeup.Run(net, cfg, b.Seed, wakeup.Schedule{WakeAt: wakeAt})
			if err != nil {
				return nil, err
			}
			return &broadcast.Result{
				Rounds:      res.Span,
				AllInformed: res.AllAwake,
				InformTime:  res.AwakeTime,
				Phases:      res.Broadcast.Phases,
				Metrics:     res.Broadcast.Metrics,
			}, nil
		},
	})

	Register(Protocol{
		Name:   "decay",
		Doc:    "Decay flood (Bar-Yehuda et al.): probability sweep 2^-1..2^-L, L = Θ(lg n), geometry-oblivious",
		Params: []Param{sourceParam(), budgetParam()},
		Run: func(net *network.Network, b Build) (*broadcast.Result, error) {
			src, err := source(net, b)
			if err != nil {
				return nil, err
			}
			phys, err := floodPhys(net, b)
			if err != nil {
				return nil, err
			}
			return baseline.RunFloodOn(net, baseline.NewDecay(net.N()), b.Seed, src, b.Int("budget"), phys)
		},
	})

	Register(Protocol{
		Name:   "daum",
		Doc:    "Daum-style flood [5]: sweep spans Θ(lg n + α·lg Rs) levels — the granularity dependence the paper removes",
		Params: []Param{sourceParam(), budgetParam()},
		Run: func(net *network.Network, b Build) (*broadcast.Result, error) {
			src, err := source(net, b)
			if err != nil {
				return nil, err
			}
			phys, err := floodPhys(net, b)
			if err != nil {
				return nil, err
			}
			return baseline.RunFloodOn(net, baseline.NewDaumStyle(net), b.Seed, src, b.Int("budget"), phys)
		},
	})

	Register(Protocol{
		Name: "oracle",
		Doc:  "density-oracle flood ([11]-style): genie-aided, transmit with ~c/(informed stations within distance 1)",
		Params: []Param{sourceParam(), budgetParam(),
			{Name: "c", Doc: "aggressiveness constant (0 = the policy's default)", Default: 0, Min: 0, Max: 1e6},
		},
		Run: func(net *network.Network, b Build) (*broadcast.Result, error) {
			src, err := source(net, b)
			if err != nil {
				return nil, err
			}
			phys, err := floodPhys(net, b)
			if err != nil {
				return nil, err
			}
			return baseline.RunFloodOn(net, baseline.NewDensityOracle(net, b.Float("c")), b.Seed, src, b.Int("budget"), phys)
		},
	})

	Register(Protocol{
		Name:   "tdma",
		Doc:    "grid-TDMA flood ([14]-style): GPS cells scheduled round-robin, perfect in-cell coordination",
		Params: []Param{sourceParam(), budgetParam()},
		Run: func(net *network.Network, b Build) (*broadcast.Result, error) {
			src, err := source(net, b)
			if err != nil {
				return nil, err
			}
			pol, err := baseline.NewGridTDMA(net)
			if err != nil {
				return nil, err
			}
			phys, err := floodPhys(net, b)
			if err != nil {
				return nil, err
			}
			return baseline.RunFloodOn(net, pol, b.Seed, src, b.Int("budget"), phys)
		},
	})

	Register(Protocol{
		Name: "consensus",
		Doc:  "consensus (§5): agree on the minimum of per-station messages in {0..x}; rounds = full schedule, informed = correct",
		// The windowfactor default is read from consensus.DefaultConfig
		// — the canonical calibration — for the same no-drift reason as
		// tuningParams.
		Params: []Param{
			{Name: "x", Doc: "message-domain bound (messages are (37i+100) mod (x+1))", Default: 255, Min: 1, Max: maxIntParam, Int: true},
			{Name: "windowfactor", Doc: "per-bit flood-window scale",
				Default: consensus.DefaultConfig(16, 2, sinr.DefaultParams().Eps, 1).WindowFactor, Min: 1, Max: 1e4},
		},
		Run: func(net *network.Network, b Build) (*broadcast.Result, error) {
			x := int64(b.Int("x"))
			cfg := consensus.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps, x)
			cfg.WindowFactor = b.Float("windowfactor")
			cfg.Channel = b.Channel()
			msgs := make([]int64, net.N())
			for i := range msgs {
				msgs[i] = int64(i*37+100) % (x + 1)
			}
			res, err := consensus.Run(net, cfg, b.Seed, msgs)
			if err != nil {
				return nil, err
			}
			return &broadcast.Result{
				Rounds:      res.Rounds,
				AllInformed: res.Correct,
				Metrics:     res.Metrics,
			}, nil
		},
	})

	Register(Protocol{
		Name: "leader",
		Doc:  "leader election (§5): consensus on random IDs from {1..n³}; informed = unique leader elected",
		Run: func(net *network.Network, b Build) (*broadcast.Result, error) {
			cfg := consensus.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps, 1)
			cfg.Channel = b.Channel()
			res, err := leader.Run(net, cfg, b.Seed)
			if err != nil {
				return nil, err
			}
			return &broadcast.Result{
				Rounds:      res.Consensus.Rounds,
				AllInformed: res.Leader >= 0 && res.Consensus.Correct,
				Metrics:     res.Consensus.Metrics,
			}, nil
		},
	})

	Register(Protocol{
		Name: "alert",
		Doc:  "alert protocol (§1.3): k stations raise an alert (0 = negative case, must stay silent); informed = all verdicts correct",
		Params: []Param{
			{Name: "raised", Doc: "number of stations at which the alert is raised", Default: 1, Min: 0, Max: maxIntParam, Int: true},
		},
		Run: func(net *network.Network, b Build) (*broadcast.Result, error) {
			k := b.Int("raised")
			if k > net.N() {
				return nil, specErrorf("protocol: alert raised=%d exceeds n=%d", k, net.N())
			}
			cfg := alert.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps)
			cfg.Channel = b.Channel()
			raised := make([]bool, net.N())
			for _, s := range spread(net.N(), k) {
				raised[s] = true
			}
			res, err := alert.Run(net, cfg, b.Seed, raised)
			if err != nil {
				return nil, err
			}
			return &broadcast.Result{
				Rounds:      res.Rounds,
				AllInformed: res.Correct,
				Metrics:     res.Metrics,
			}, nil
		},
	})
}
