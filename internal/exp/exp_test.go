package exp

import (
	"strings"
	"testing"
)

// smallCfg shrinks everything for unit-test latency.
func smallCfg() Config { return Config{Seed: 2014, Trials: 2, Scale: 0.5} }

func TestConfigHelpers(t *testing.T) {
	c := Config{}
	if c.trials() != 1 {
		t.Fatalf("trials floor = %d", c.trials())
	}
	if c.scaled(100, 10) != 100 {
		t.Fatalf("scaled with zero Scale should default to 1×")
	}
	c = Config{Scale: 0.1}
	if c.scaled(100, 32) != 32 {
		t.Fatalf("scaled floor = %d", c.scaled(100, 32))
	}
	if DefaultConfig().Trials < 1 {
		t.Fatal("default trials")
	}
}

func TestE1(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tb, err := E1NoSBroadcastVsD(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("E1 rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "Theorem 1") {
		t.Fatal("missing title")
	}
}

func TestE2(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tb, err := E2SBroadcastScaling(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("E2 rows = %d", len(tb.Rows))
	}
}

func TestE3E4(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	cfg := smallCfg()
	cfg.Trials = 1
	t3, err := E3Lemma1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t3.Rows {
		if row[3] != "true" {
			t.Errorf("E3 bound violated: %v", row)
		}
	}
	t4, err := E4Lemma2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t4.Rows {
		if row[3] != "true" {
			t.Errorf("E4 bound violated: %v", row)
		}
	}
}

func TestE5(t *testing.T) {
	tb, err := E5ColoringRounds(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("E5 rows = %d", len(tb.Rows))
	}
}

func TestE8(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tb, err := E8Applications(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[2] != "true" {
			t.Errorf("application incorrect: %v", row)
		}
	}
}
