package sinr

import (
	"fmt"
	"testing"

	"sinrcast/internal/geom"
	"sinrcast/internal/rng"
)

// subsetResolver is the test-side view of the three engines.
type subsetResolver interface {
	Resolve(tx []int) []Reception
	ResolveFor(tx []int, receivers []int) []Reception
	SetWorkers(w int)
}

// testEngines builds all three engines over one scene.
func testEngines(t *testing.T, scene *geom.Euclidean) map[string]subsetResolver {
	t.Helper()
	p := DefaultParams()
	exact, err := NewEngine(scene, p)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewGridEngine(scene, p, DefaultCellSize, DefaultNearRadius)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := NewHierEngine(scene, p, DefaultCellSize, DefaultNearRadius, DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]subsetResolver{"exact": exact, "grid": grid, "hier": hier}
}

// randomSubset returns a sorted subset of [0,n) including each station
// with probability p.
func randomSubset(r *rng.Source, n int, p float64) []int {
	var s []int
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			s = append(s, i)
		}
	}
	return s
}

// filterReceptions keeps receptions whose receiver is in the subset.
func filterReceptions(rec []Reception, subset []int) []Reception {
	in := map[int]bool{}
	for _, u := range subset {
		in[u] = true
	}
	var out []Reception
	for _, r := range rec {
		if in[r.Receiver] {
			out = append(out, r)
		}
	}
	return out
}

// TestResolveForSubsetConsistency pins the ResolveFor contract on every
// engine: ResolveFor(tx, S) must equal filter(Resolve(tx), S) exactly —
// same receptions, same order — for random transmitter sets and random
// subsets, including subsets containing transmitters, the empty subset
// and the full range.
func TestResolveForSubsetConsistency(t *testing.T) {
	const n = 300
	scene := randomScene(77, n, 9)
	for name, eng := range testEngines(t, scene) {
		t.Run(name, func(t *testing.T) {
			eng.SetWorkers(1)
			r := rng.New(1234)
			for round := 0; round < 40; round++ {
				tx := randomTxSet(r, n, 0.1)
				subset := randomSubset(r, n, 0.3)
				switch round {
				case 0:
					subset = nil
				case 1:
					subset = make([]int, n)
					for i := range subset {
						subset[i] = i
					}
				}
				full := append([]Reception(nil), eng.Resolve(tx)...)
				want := filterReceptions(full, subset)
				got := eng.ResolveFor(tx, subset)
				if len(want) != len(got) {
					t.Fatalf("round %d: %d filtered vs %d subset receptions", round, len(want), len(got))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("round %d: reception %d: filtered %+v vs subset %+v", round, i, want[i], got[i])
					}
				}
			}
		})
	}
}

// TestResolveForGenericSpace covers the exact engine's non-Euclidean
// subset path (interface-dispatched distances).
func TestResolveForGenericSpace(t *testing.T) {
	n := 150
	coords := make([]float64, n)
	r := rng.New(3)
	for i := range coords {
		coords[i] = r.Range(0, 30)
	}
	e, err := NewEngine(geom.NewLine(coords), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkers(1)
	for round := 0; round < 25; round++ {
		tx := randomTxSet(r, n, 0.15)
		subset := randomSubset(r, n, 0.4)
		want := filterReceptions(append([]Reception(nil), e.Resolve(tx)...), subset)
		got := e.ResolveFor(tx, subset)
		if len(want) != len(got) {
			t.Fatalf("round %d: %d vs %d receptions", round, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("round %d: %+v vs %+v", round, want[i], got[i])
			}
		}
	}
}

// TestResolveForIdenticalAcrossWorkers pins cross-worker
// bit-determinism of the subset path on every engine: for any worker
// count, ResolveFor output must be byte-identical to the serial run.
func TestResolveForIdenticalAcrossWorkers(t *testing.T) {
	const n = 400
	scene := randomScene(55, n, 10)
	serialEngines := testEngines(t, scene)
	for _, workers := range []int{2, 5} {
		parEngines := testEngines(t, scene)
		for name, par := range parEngines {
			serial := serialEngines[name]
			serial.SetWorkers(1)
			par.SetWorkers(workers)
			switch e := par.(type) {
			case *Engine:
				e.minParallelN = 0
			case *GridEngine:
				e.minParallelN = 0
			case *HierEngine:
				e.minParallelN = 0
			}
			r := rng.New(uint64(workers) * 101)
			for round := 0; round < 15; round++ {
				tx := randomTxSet(r, n, 0.12)
				subset := randomSubset(r, n, 0.5)
				want := append([]Reception(nil), serial.ResolveFor(tx, subset)...)
				got := par.ResolveFor(tx, subset)
				diffReceptions(t, fmt.Sprintf("%s w=%d round=%d", name, workers, round), want, got)
			}
		}
	}
}

// TestResolveForRejectsBadSubsets pins the subset validation: indices
// out of range or not strictly increasing must panic like a bad
// transmitter does.
func TestResolveForRejectsBadSubsets(t *testing.T) {
	scene := randomScene(9, 32, 4)
	e, err := NewEngine(scene, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{{-1, 2}, {5, 99}, {3, 3}, {4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("want panic for subset %v", bad)
				}
			}()
			e.ResolveFor([]int{0}, bad)
		}()
	}
}
