package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"sinrcast/internal/network"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// BenchmarkServeThroughput gates the daemon's perf core. The setup
// half isolates what the warm-engine cache saves per job: mode=cold is
// the full deployment cost (scenario generation + engine
// construction), mode=warm a cache hit (LRU touch + engine clone over
// the shared topology). CI holds warm to ≥5× cheaper than cold and
// compares cold against the committed baseline. The jobs half measures
// end-to-end submissions through the HTTP transport in jobs/s —
// serialization, admission, execution, result rendering — at both
// cache temperatures.
func BenchmarkServeThroughput(b *testing.B) {
	b.Run("setup/n=4096", func(b *testing.B) {
		const n, seed = 4096, 11
		spec := scenario.Spec{Family: "uniform", Params: map[string]float64{"n": float64(n)}}
		phys := sinr.DefaultParams()
		buildNet := func() (*network.Network, error) {
			return scenario.Generate(spec, phys, seed)
		}
		buildEngine := func(net *network.Network) (sim.Resolver, error) {
			return sinr.NewNamedEngine("grid", net.Space, net.Params)
		}
		key := cacheKey(spec, "grid", phys, seed)

		b.Run("mode=cold", func(b *testing.B) {
			cache := NewCache(-1) // disabled: every Get pays the full build
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, eng, _, err := cache.Get(key, buildNet, buildEngine)
				if err != nil {
					b.Fatal(err)
				}
				if eng == nil {
					b.Fatal("no engine")
				}
			}
		})
		b.Run("mode=warm", func(b *testing.B) {
			cache := NewCache(DefaultCacheBytes)
			if _, _, _, err := cache.Get(key, buildNet, buildEngine); err != nil {
				b.Fatal(err) // prewarm
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, eng, hit, err := cache.Get(key, buildNet, buildEngine)
				if err != nil {
					b.Fatal(err)
				}
				if !hit || eng == nil {
					b.Fatal("prewarmed key missed")
				}
			}
		})
	})

	b.Run("jobs/n=256", func(b *testing.B) {
		// Both modes run the identical job (same seed, same topology,
		// same protocol run) so the only difference is cache
		// temperature: cold disables the cache and pays generation +
		// construction per job, warm clones the prewarmed prototype.
		runJobs := func(b *testing.B, cacheBytes int64) {
			s := New(Config{ProgressEvery: -1, CacheBytes: cacheBytes})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := benchSubmit(b, ts, JobRequest{
					Scenario: "uniform:n=256", Protocol: "decay", Seed: 7, Trials: 1,
				})
				resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result?format=csv&wait=1", ts.URL, id))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("result: status %d", resp.StatusCode)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		}
		b.Run("mode=cold", func(b *testing.B) { runJobs(b, -1) })
		b.Run("mode=warm", func(b *testing.B) { runJobs(b, DefaultCacheBytes) })
	})
}

func benchSubmit(b *testing.B, ts *httptest.Server, req JobRequest) string {
	b.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit: status %d", resp.StatusCode)
	}
	var out struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	return out.ID
}
