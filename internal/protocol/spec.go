package protocol

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"sinrcast/internal/broadcast"
	"sinrcast/internal/network"
)

// maxIntParam caps integer parameters (station indices, waker counts,
// message-domain bounds, …): large enough for any real run, small
// enough that int conversion stays well-defined.
const maxIntParam = 1e9

// Spec is a declarative protocol selection: a registered protocol name
// plus parameter overrides. The zero value of Params means "all
// defaults". A Spec, a network, and a seed fully determine the
// execution (see Run).
type Spec struct {
	Name   string
	Params map[string]float64
}

// String renders the canonical compact form "name:k=v,k=v" with
// parameters sorted by name; Parse(s.String()) reproduces s exactly.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			sb.WriteByte(':')
		} else {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(formatValue(s.Params[k]))
	}
	return sb.String()
}

// formatValue renders a parameter value in the shortest form that
// round-trips through strconv.ParseFloat.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Parse reads the compact spec form "name" or
// "name:param=value,param=value". The protocol must be registered and
// every parameter declared by it; values must parse as numbers. (Range
// and integrality are checked by Run, so specs built programmatically
// get the same validation.)
func Parse(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("protocol: empty spec (want \"name\" or \"name:param=value,...\")")
	}
	name, rest, hasParams := strings.Cut(s, ":")
	p, ok := Lookup(name)
	if !ok {
		return Spec{}, fmt.Errorf("protocol: unknown protocol %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	spec := Spec{Name: name}
	if !hasParams {
		return spec, nil
	}
	if strings.TrimSpace(rest) == "" {
		return Spec{}, fmt.Errorf("protocol: %s: empty parameter list after ':'", name)
	}
	spec.Params = map[string]float64{}
	for _, pair := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(pair, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return Spec{}, fmt.Errorf("protocol: %s: malformed parameter %q (want param=value)", name, pair)
		}
		q, declared := p.param(key)
		if !declared {
			return Spec{}, fmt.Errorf("protocol: %s has no parameter %q (has: %s)",
				name, key, strings.Join(paramNames(p), ", "))
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("protocol: %s: parameter %s=%q is not a number", name, q.Name, val)
		}
		if _, dup := spec.Params[key]; dup {
			return Spec{}, fmt.Errorf("protocol: %s: parameter %q given twice", name, key)
		}
		spec.Params[key] = v
	}
	return spec, nil
}

func paramNames(p *Protocol) []string {
	out := make([]string, len(p.Params))
	for i, q := range p.Params {
		out[i] = q.Name
	}
	return out
}

// resolve fills defaults and checks ranges, integrality and the size
// limit for every override, returning the full parameter map.
func resolve(p *Protocol, spec Spec) (map[string]float64, error) {
	resolved := make(map[string]float64, len(p.Params))
	for _, q := range p.Params {
		resolved[q.Name] = q.Default
	}
	for name, v := range spec.Params {
		q, declared := p.param(name)
		if !declared {
			return nil, fmt.Errorf("protocol: %s has no parameter %q (has: %s)",
				p.Name, name, strings.Join(paramNames(p), ", "))
		}
		if v < q.Min || v > q.Max || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("protocol: %s: parameter %s=%s outside [%s, %s]",
				p.Name, q.Name, formatValue(v), formatValue(q.Min), formatValue(q.Max))
		}
		if q.Int {
			if v != math.Trunc(v) {
				return nil, fmt.Errorf("protocol: %s: parameter %s=%s must be an integer",
					p.Name, q.Name, formatValue(v))
			}
			// Bound values before int conversion: huge values would
			// overflow int, not configure a run.
			if math.Abs(v) > maxIntParam {
				return nil, fmt.Errorf("protocol: %s: parameter %s=%s exceeds the size limit %s",
					p.Name, q.Name, formatValue(v), formatValue(maxIntParam))
			}
		}
		resolved[name] = v
	}
	return resolved, nil
}

// SpecError marks a spec-vs-network mismatch: the parameters are
// statically valid (Validate passes) but disagree with the concrete
// network — a source index or waker count beyond n. CLIs classify it
// as a usage error (exit 2), not a runtime failure.
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return e.msg }

// specErrorf builds a SpecError; used by runners for their
// network-dependent parameter checks.
func specErrorf(format string, args ...any) error {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

// Validate checks a spec against the registry without running it:
// the protocol must exist and every override must be declared,
// in range, and integral where required. CLIs use it to classify
// bad specs as usage errors before any network is built.
func Validate(spec Spec) error {
	p, ok := Lookup(spec.Name)
	if !ok {
		return fmt.Errorf("protocol: unknown protocol %q (known: %s)", spec.Name, strings.Join(Names(), ", "))
	}
	_, err := resolve(p, spec)
	return err
}

// Run executes the protocol described by spec on the network under the
// given seed. Defaults fill omitted parameters; unknown names,
// out-of-range values, and fractional values for integer parameters
// are rejected. The execution is deterministic in (net, spec, seed).
// The physical layer is each protocol's default — the exact SINR
// engine, the paper's model; RunOn selects a different one.
func Run(net *network.Network, spec Spec, seed uint64) (*broadcast.Result, error) {
	return RunOn(net, spec, seed, nil)
}

// RunOn is Run with an explicit physical-layer factory. Every runner
// threads it into its underlying entry point (broadcast.Config.Channel,
// baseline.RunFloodOn, the app configs), so one -engine flag selects
// the engine for any registered protocol. nil keeps the default exact
// engine. Approximate engines (grid/hier/auto on large n) change
// physics slightly — results are deterministic but not comparable
// bit-for-bit with exact-engine runs.
func RunOn(net *network.Network, spec Spec, seed uint64, ch Channel) (*broadcast.Result, error) {
	p, ok := Lookup(spec.Name)
	if !ok {
		return nil, fmt.Errorf("protocol: unknown protocol %q (known: %s)", spec.Name, strings.Join(Names(), ", "))
	}
	resolved, err := resolve(p, spec)
	if err != nil {
		return nil, err
	}
	return p.Run(net, Build{Seed: seed, params: resolved, channel: ch})
}
