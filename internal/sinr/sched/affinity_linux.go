//go:build linux

package sched

import (
	"syscall"
	"unsafe"
)

// pinThread restricts the calling OS thread to the given CPU via
// sched_setaffinity(2) (tid 0 = the calling thread). The caller must
// have locked the goroutine to its thread first. The raw syscall
// avoids a dependency on golang.org/x/sys; the mask covers 1024 CPUs,
// matching the kernel's default CONFIG_NR_CPUS ceiling.
func pinThread(cpu int) error {
	var mask [16]uint64 // 1024-bit CPU set
	if cpu < 0 || cpu >= len(mask)*64 {
		return syscall.EINVAL
	}
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	_, _, errno := syscall.RawSyscall(
		syscall.SYS_SCHED_SETAFFINITY,
		0,
		uintptr(unsafe.Sizeof(mask)),
		uintptr(unsafe.Pointer(&mask[0])),
	)
	if errno != 0 {
		return errno
	}
	return nil
}
