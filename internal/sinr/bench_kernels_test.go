package sinr

import (
	"fmt"
	"testing"

	"sinrcast/internal/rng"
	"sinrcast/internal/sinr/simd"
)

// benchSlabs builds synthetic far-field slabs shaped like a real
// frontier: receiver at the origin, nodes spread over an annulus
// outside the near field with power spanning a few octaves.
func benchSlabs(seed uint64, n int) (x, y, p []float64) {
	r := rng.New(seed)
	x = make([]float64, n)
	y = make([]float64, n)
	p = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Range(2, 120)
		if r.Bernoulli(0.5) {
			x[i] = -x[i]
		}
		y[i] = r.Range(2, 120)
		if r.Bernoulli(0.5) {
			y[i] = -y[i]
		}
		p[i] = r.Range(1, 16)
	}
	return
}

// benchSink keeps the kernels' results observable so the compiler
// cannot elide the loops under measurement.
var benchSink float64

// BenchmarkFrontierReplay isolates the far-field replay kernel — the
// Σ p·d^-α multiply-add stream resolveReceiver runs per receiver —
// across frontier sizes, path-loss exponents, and the three
// implementation tiers: the plain scalar loop (the SetVectorized(false)
// reference), the portable unrolled batch kernel, and the opt-in AVX2
// assembly where the build and CPU provide it.
func BenchmarkFrontierReplay(b *testing.B) {
	for _, size := range []int{64, 512, 4096} {
		x, y, p := benchSlabs(uint64(size), size)
		for _, alpha := range []float64{2, 2.5, 4} {
			k := NewKernel(alpha)
			b.Run(fmt.Sprintf("len=%d/alpha=%g/scalar", size, alpha), func(b *testing.B) {
				acc := 0.0
				for i := 0; i < b.N; i++ {
					sum := 0.0
					for j := range x {
						dx, dy := 0.25-x[j], -0.5-y[j]
						sum += p[j] * k.FromDist2(dx*dx+dy*dy)
					}
					acc += sum
				}
				benchSink = acc
			})
			b.Run(fmt.Sprintf("len=%d/alpha=%g/portable", size, alpha), func(b *testing.B) {
				acc := 0.0
				for i := 0; i < b.N; i++ {
					acc += k.FarSum(0.25, -0.5, x, y, p)
				}
				benchSink = acc
			})
			if (alpha == 2 || alpha == 4) && simd.AsmAvailable() {
				b.Run(fmt.Sprintf("len=%d/alpha=%g/asm", size, alpha), func(b *testing.B) {
					simd.SetUseAsm(true)
					defer simd.SetUseAsm(false)
					acc := 0.0
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						acc += k.FarSumFast(0.25, -0.5, x, y, p)
					}
					benchSink = acc
				})
			}
		}
	}
}

// BenchmarkGatherNear isolates the near-field distance scan — the exact
// per-transmitter sum plus argmin election over a block's gathered near
// slab — across slab sizes and exponents, scalar loop vs the batch
// NearScan kernel.
func BenchmarkGatherNear(b *testing.B) {
	for _, size := range []int{16, 64, 256} {
		x, y, _ := benchSlabs(uint64(size)*7+1, size)
		for _, alpha := range []float64{2, 2.5, 4} {
			k := NewKernel(alpha)
			const pw = 1.0
			b.Run(fmt.Sprintf("len=%d/alpha=%g/scalar", size, alpha), func(b *testing.B) {
				acc := 0.0
				for i := 0; i < b.N; i++ {
					total, bestD2 := 0.0, 1e18
					best := -1
					for j := range x {
						dx, dy := 0.25-x[j], -0.5-y[j]
						d2 := dx*dx + dy*dy
						total += pw * k.FromDist2(d2)
						if d2 < bestD2 {
							bestD2, best = d2, j
						}
					}
					acc += total + float64(best)
				}
				benchSink = acc
			})
			b.Run(fmt.Sprintf("len=%d/alpha=%g/batch", size, alpha), func(b *testing.B) {
				acc := 0.0
				for i := 0; i < b.N; i++ {
					total, best, _ := k.NearScan(pw, 0.25, -0.5, x, y, 0, 1e18)
					acc += total + float64(best)
				}
				benchSink = acc
			})
		}
	}
}
