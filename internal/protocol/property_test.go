package protocol

import (
	"reflect"
	"sync"
	"testing"

	"sinrcast/internal/broadcast"
	"sinrcast/internal/network"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sinr"
)

// TestEveryProtocolOnEveryFamily is the registry-wide matrix invariant
// check: every registered protocol must run on a small instance of
// every registered scenario family, terminate within its budget,
// report internally consistent Result.Metrics, and be bit-deterministic
// — the same (net, spec, seed) must produce a deeply equal Result when
// re-run, including when the re-runs race each other on many
// goroutines (protocol runs share no mutable state). Both axes grow
// automatically: registering a protocol or a family extends this test
// with no edits here.
func TestEveryProtocolOnEveryFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix")
	}
	const (
		targetN = 16
		seed    = 3
	)
	phys := sinr.DefaultParams()
	protos := Protocols()
	if len(protos) < 11 {
		t.Fatalf("registry has %d protocols, want >= 11", len(protos))
	}

	type cell struct {
		family string
		proto  string
		net    *network.Network
		first  *broadcast.Result
	}
	var cells []*cell
	for _, f := range scenario.Families() {
		net, err := scenario.Generate(f.SpecForN(targetN), phys, seed)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for _, p := range protos {
			cells = append(cells, &cell{family: f.Name, proto: p.Name, net: net})
		}
	}

	// Serial pass: run every cell once and check the result invariants.
	for _, c := range cells {
		res, err := Run(c.net, Spec{Name: c.proto}, seed)
		if err != nil {
			t.Fatalf("%s on %s: %v", c.proto, c.family, err)
		}
		c.first = res
		checkResult(t, c.proto, c.family, c.net, res)
	}

	// Concurrent pass: re-run all cells racing on goroutines; every
	// Result must be deeply equal to its serial twin.
	second := make([]*broadcast.Result, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c *cell) {
			defer wg.Done()
			second[i], errs[i] = Run(c.net, Spec{Name: c.proto}, seed)
		}(i, c)
	}
	wg.Wait()
	for i, c := range cells {
		if errs[i] != nil {
			t.Fatalf("%s on %s (concurrent): %v", c.proto, c.family, errs[i])
		}
		if !reflect.DeepEqual(c.first, second[i]) {
			t.Errorf("%s on %s: result differs between serial and concurrent runs", c.proto, c.family)
		}
	}
}

// checkResult asserts the cross-protocol Result contract: the run
// terminated (a bounded, positive number of simulated rounds), the
// reported completion round sits inside the simulated range, counters
// are mutually consistent, and inform times (when reported) are
// plausible rounds.
func checkResult(t *testing.T, proto, family string, net *network.Network, res *broadcast.Result) {
	t.Helper()
	if res == nil {
		t.Fatalf("%s on %s: nil result", proto, family)
	}
	m := res.Metrics
	if m.Rounds <= 0 {
		t.Errorf("%s on %s: simulated %d rounds, want > 0", proto, family, m.Rounds)
	}
	if res.Rounds < 0 || res.Rounds > m.Rounds {
		t.Errorf("%s on %s: Rounds = %d outside [0, %d simulated]", proto, family, res.Rounds, m.Rounds)
	}
	if m.BusyRounds < 0 || m.BusyRounds > m.Rounds {
		t.Errorf("%s on %s: BusyRounds = %d outside [0, %d]", proto, family, m.BusyRounds, m.Rounds)
	}
	if m.Transmissions < int64(m.BusyRounds) {
		t.Errorf("%s on %s: %d transmissions < %d busy rounds", proto, family, m.Transmissions, m.BusyRounds)
	}
	if m.Transmissions > int64(m.Rounds)*int64(net.N()) {
		t.Errorf("%s on %s: %d transmissions exceed rounds×n", proto, family, m.Transmissions)
	}
	if m.Receptions < 0 || m.Receptions > int64(m.Rounds)*int64(net.N()) {
		t.Errorf("%s on %s: %d receptions outside [0, rounds×n]", proto, family, m.Receptions)
	}
	if res.InformTime != nil {
		if len(res.InformTime) != net.N() {
			t.Fatalf("%s on %s: %d inform times for %d stations", proto, family, len(res.InformTime), net.N())
		}
		for i, it := range res.InformTime {
			if it < -1 || it > m.Rounds {
				t.Errorf("%s on %s: InformTime[%d] = %d outside [-1, %d]", proto, family, i, it, m.Rounds)
			}
			if res.AllInformed && it < 0 {
				t.Errorf("%s on %s: AllInformed but station %d never informed", proto, family, i)
			}
		}
	}
}

// TestRunConcurrencySmoke is the always-on slice of the matrix
// concurrency property (the full matrix skips under -short, so the
// -race CI job relies on this): a handful of cheap protocols race on
// one shared network, two goroutines per protocol, and each pair must
// produce deeply equal results.
func TestRunConcurrencySmoke(t *testing.T) {
	net, err := scenario.Generate(scenario.Spec{Family: "grid", Params: map[string]float64{"n": 16, "spacing": 0.5}},
		sinr.DefaultParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	protos := []string{"nos", "s", "decay", "daum", "oracle", "tdma", "alert"}
	results := make([][2]*broadcast.Result, len(protos))
	errs := make([][2]error, len(protos))
	var wg sync.WaitGroup
	for i, name := range protos {
		for rep := 0; rep < 2; rep++ {
			wg.Add(1)
			go func(i, rep int, name string) {
				defer wg.Done()
				results[i][rep], errs[i][rep] = Run(net, Spec{Name: name}, 5)
			}(i, rep, name)
		}
	}
	wg.Wait()
	for i, name := range protos {
		if errs[i][0] != nil || errs[i][1] != nil {
			t.Fatalf("%s: %v / %v", name, errs[i][0], errs[i][1])
		}
		if !reflect.DeepEqual(results[i][0], results[i][1]) {
			t.Errorf("%s: concurrent runs diverged", name)
		}
	}
}

// TestBudgetHonored pins "terminates within its budget": an explicit
// round budget must cap the simulated rounds for the broadcast
// protocols (budgetmul) and the flood baselines (budget).
func TestBudgetHonored(t *testing.T) {
	net, err := scenario.Generate(scenario.Spec{Family: "path", Params: map[string]float64{"n": 24, "frac": 0.9}},
		sinr.DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately starved budget: the run must stop there, informed
	// or not.
	res, err := Run(net, Spec{Name: "decay", Params: map[string]float64{"budget": 7}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds > 7 {
		t.Errorf("decay simulated %d rounds under budget 7", res.Metrics.Rounds)
	}
	res, err = Run(net, Spec{Name: "nos", Params: map[string]float64{"budgetmul": 0.01}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := broadcast.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps)
	full := broadcast.Budget(cfg, net)
	if res.Metrics.Rounds >= full {
		t.Errorf("nos with budgetmul=0.01 simulated %d rounds, full budget is %d", res.Metrics.Rounds, full)
	}
}
