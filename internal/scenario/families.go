package scenario

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
	"sinrcast/internal/network"
	"sinrcast/internal/rng"
)

// This file registers the original netgen families. The sampling code
// is moved verbatim from internal/netgen so that networks are
// byte-identical to the pre-registry generators for the same
// (Params, Seed) — the experiment tables E1–E11 pin this down.

const maxAttempts = 40 // connectivity-retry budget of densifying generators

var inf = math.Inf(1)

func nParam(def int) Param {
	return Param{Name: "n", Doc: "station count", Default: float64(def), Min: 1, Max: inf, Int: true}
}

func init() {
	Register(Family{
		Name: "uniform",
		Doc:  "n stations uniform in a square sized for the target mean density; densifies until connected",
		Params: []Param{
			nParam(128),
			{Name: "density", Doc: "target stations per communication ball", Default: 8, Min: 0, Max: inf},
		},
		Build: buildUniform,
	})
	Register(Family{
		Name: "grid",
		Doc:  "√n×√n lattice at fixed spacing (must be ≤ comm radius)",
		Params: []Param{
			nParam(128),
			{Name: "spacing", Doc: "lattice spacing", Default: 0.3, Min: 0, Max: inf},
		},
		Build: buildGrid,
	})
	Register(Family{
		Name: "path",
		Doc:  "n stations on a line at uniform gap frac·commRadius; diameter ~n·frac",
		Params: []Param{
			nParam(64),
			{Name: "frac", Doc: "gap as fraction of comm radius", Default: 0.9, Min: 0, Max: 1},
		},
		Build: buildPath,
	})
	Register(Family{
		Name: "expchain",
		Doc:  "footnote-2 worst case: line gaps shrink by ratio each hop, granularity Rs = ratio^-n at D=O(1)",
		Params: []Param{
			nParam(32),
			{Name: "first", Doc: "first gap (≤ comm radius)", Default: 0.5, Min: 0, Max: inf},
			{Name: "ratio", Doc: "gap shrink ratio in (0,1)", Default: 0.6, Min: 0, Max: 1},
		},
		Build: buildExpChain,
	})
	Register(Family{
		Name: "clusters",
		Doc:  "k dense clusters of m stations bridged along a line; per-ball densities differ by orders of magnitude",
		Params: []Param{
			{Name: "k", Doc: "cluster count", Default: 4, Min: 1, Max: inf, Int: true},
			{Name: "m", Doc: "stations per cluster", Default: 24, Min: 1, Max: inf, Int: true},
			{Name: "radius", Doc: "cluster radius (≤ commRadius/2)", Default: 0.08, Min: 0, Max: inf},
			{Name: "gap", Doc: "hub-to-hub bridge gap (≤ comm radius)", Default: 0.6, Min: 0, Max: inf},
		},
		ForN: func(n int) map[string]float64 {
			m := n / 4
			if m < 1 {
				m = 1
			}
			return map[string]float64{"k": 4, "m": float64(m)}
		},
		Build: buildClusters,
	})
	Register(Family{
		Name: "gaussian",
		Doc:  "n stations in a 2D gaussian blob; shrinks sigma until connected",
		Params: []Param{
			nParam(128),
			{Name: "sigma", Doc: "standard deviation", Default: 1.5, Min: 0, Max: inf},
		},
		Build: buildGaussian,
	})
	Register(Family{
		Name: "corridor",
		Doc:  "random-walk snake: each station a uniform step from the previous, large meandering diameter",
		Params: []Param{
			nParam(96),
			{Name: "step", Doc: "walk step (≤ comm radius)", Default: 0.5, Min: 0, Max: inf},
		},
		Build: buildCorridor,
	})
	Register(Family{
		Name: "clusteredpath",
		Doc:  "fixed-diameter path with an exponential cluster at one end: ratio controls Rs while D stays put (E6)",
		Params: []Param{
			{Name: "pathlen", Doc: "path station count (fixes D)", Default: 12, Min: 2, Max: inf, Int: true},
			{Name: "cluster", Doc: "exponential-cluster station count", Default: 20, Min: 1, Max: inf, Int: true},
			{Name: "ratio", Doc: "cluster gap shrink ratio in (0,1)", Default: 0.6, Min: 0, Max: 1},
		},
		ForN: func(n int) map[string]float64 {
			pathLen := n * 12 / 32
			if pathLen < 2 {
				pathLen = 2
			}
			cluster := n - pathLen
			if cluster < 1 {
				cluster = 1
			}
			return map[string]float64{"pathlen": float64(pathLen), "cluster": float64(cluster)}
		},
		Build: buildClusteredPath,
	})
}

func buildUniform(b Build) (*network.Network, error) {
	n, density := b.Int("n"), b.Float("density")
	if density <= 0 {
		density = 6
	}
	r := b.Rng()
	// side chosen so that n stations give ~density stations per ball of
	// comm radius: n·π·rad² / side² = density.
	rad := b.Phys.CommRadius()
	side := math.Sqrt(float64(n) * math.Pi * rad * rad / density)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: r.Range(0, side), Y: r.Range(0, side)}
		}
		net, err := network.New(geom.NewEuclidean(pts), b.Phys)
		if err != nil {
			return nil, err
		}
		if net.Connected() {
			net.Meta = map[string]float64{"attempts": float64(attempt + 1), "side": side}
			return net, nil
		}
		side *= 0.92 // densify and retry
	}
	return nil, fmt.Errorf("scenario: uniform: no connected deployment after %d attempts (n=%d, final side=%.4g)",
		maxAttempts, n, side)
}

func buildGrid(b Build) (*network.Network, error) {
	n, spacing := b.Int("n"), b.Float("spacing")
	if spacing <= 0 || spacing > b.Phys.CommRadius() {
		return nil, specErrorf("scenario: grid: spacing %v must be in (0, %v]", spacing, b.Phys.CommRadius())
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, geom.Point{
			X: float64(i%cols) * spacing,
			Y: float64(i/cols) * spacing,
		})
	}
	return network.New(geom.NewEuclidean(pts), b.Phys)
}

func buildPath(b Build) (*network.Network, error) {
	n, fraction := b.Int("n"), b.Float("frac")
	if fraction <= 0 || fraction > 1 {
		return nil, specErrorf("scenario: path: fraction %v must be in (0,1]", fraction)
	}
	gap := b.Phys.CommRadius() * fraction
	coords := make([]float64, n)
	for i := range coords {
		coords[i] = float64(i) * gap
	}
	return network.New(geom.NewLine(coords), b.Phys)
}

func buildExpChain(b Build) (*network.Network, error) {
	n, first, ratio := b.Int("n"), b.Float("first"), b.Float("ratio")
	if ratio <= 0 || ratio >= 1 {
		return nil, specErrorf("scenario: expchain: ratio %v must be in (0,1)", ratio)
	}
	if first <= 0 || first > b.Phys.CommRadius() {
		return nil, specErrorf("scenario: expchain: first gap %v must be in (0, %v]", first, b.Phys.CommRadius())
	}
	coords := make([]float64, n)
	gap := first
	for i := 1; i < n; i++ {
		coords[i] = coords[i-1] + gap
		gap *= ratio
		// Clamp to avoid denormal-gap pathologies in float math while
		// preserving exponential granularity.
		if gap < 1e-12 {
			gap = 1e-12
		}
	}
	return network.New(geom.NewLine(coords), b.Phys)
}

func buildClusters(b Build) (*network.Network, error) {
	k, m := b.Int("k"), b.Int("m")
	clusterRadius, bridgeGap := b.Float("radius"), b.Float("gap")
	if clusterRadius <= 0 || clusterRadius > b.Phys.CommRadius()/2 {
		return nil, specErrorf("scenario: clusters: radius %v out of range (0, %v]", clusterRadius, b.Phys.CommRadius()/2)
	}
	if bridgeGap <= 0 || bridgeGap > b.Phys.CommRadius() {
		return nil, specErrorf("scenario: clusters: gap %v out of range (0, %v]", bridgeGap, b.Phys.CommRadius())
	}
	r := b.Rng()
	pts := make([]geom.Point, 0, k*m)
	for c := 0; c < k; c++ {
		// First station of each cluster sits exactly at the hub so
		// consecutive hubs are adjacent.
		pts = discCluster(r, pts, float64(c)*bridgeGap, 0, clusterRadius, m)
	}
	return network.New(geom.NewEuclidean(pts), b.Phys)
}

// discCluster appends a cluster of count stations anchored at (cx,cy):
// the first exactly at the center (so bridges and relay chains stay
// connected through it), the rest area-uniform within radius. Shared
// by the clusters, dumbbell and starclusters builders so their
// sampling schemes cannot drift apart.
func discCluster(r *rng.Source, pts []geom.Point, cx, cy, radius float64, count int) []geom.Point {
	pts = append(pts, geom.Point{X: cx, Y: cy})
	for s := 1; s < count; s++ {
		ang := r.Range(0, 2*math.Pi)
		rad := radius * math.Sqrt(r.Float64())
		pts = append(pts, geom.Point{X: cx + rad*math.Cos(ang), Y: cy + rad*math.Sin(ang)})
	}
	return pts
}

func buildGaussian(b Build) (*network.Network, error) {
	n, sigma := b.Int("n"), b.Float("sigma")
	if sigma <= 0 {
		return nil, specErrorf("scenario: gaussian: sigma %v must be positive", sigma)
	}
	r := b.Rng()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: sigma * r.NormFloat64(), Y: sigma * r.NormFloat64()}
		}
		net, err := network.New(geom.NewEuclidean(pts), b.Phys)
		if err != nil {
			return nil, err
		}
		if net.Connected() {
			net.Meta = map[string]float64{"attempts": float64(attempt + 1), "sigma": sigma}
			return net, nil
		}
		sigma *= 0.9
	}
	return nil, fmt.Errorf("scenario: gaussian: no connected deployment after %d attempts (n=%d, final sigma=%.4g)",
		maxAttempts, n, sigma)
}

func buildCorridor(b Build) (*network.Network, error) {
	n, step := b.Int("n"), b.Float("step")
	if step <= 0 || step > b.Phys.CommRadius() {
		return nil, specErrorf("scenario: corridor: step %v out of (0, comm radius]", step)
	}
	r := b.Rng()
	pts := make([]geom.Point, n)
	heading := 0.0
	for i := 1; i < n; i++ {
		heading += r.Range(-0.5, 0.5)
		pts[i] = geom.Point{
			X: pts[i-1].X + step*math.Cos(heading),
			Y: pts[i-1].Y + step*math.Sin(heading),
		}
	}
	return network.New(geom.NewEuclidean(pts), b.Phys)
}

func buildClusteredPath(b Build) (*network.Network, error) {
	pathLen, clusterSize, ratio := b.Int("pathlen"), b.Int("cluster"), b.Float("ratio")
	if ratio <= 0 || ratio >= 1 {
		return nil, specErrorf("scenario: clusteredpath: ratio %v must be in (0,1)", ratio)
	}
	gap := b.Phys.CommRadius() * 0.9
	coords := make([]float64, 0, pathLen+clusterSize)
	for i := 0; i < pathLen; i++ {
		coords = append(coords, float64(i)*gap)
	}
	// The cluster hangs off station 0 toward negative coordinates, well
	// within one communication ball.
	cgap := b.Phys.CommRadius() / 8
	pos := 0.0
	for i := 0; i < clusterSize; i++ {
		pos -= cgap
		coords = append(coords, pos)
		cgap *= ratio
		if cgap < 1e-12 {
			cgap = 1e-12
		}
	}
	return network.New(geom.NewLine(coords), b.Phys)
}
