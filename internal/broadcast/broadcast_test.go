package broadcast

import (
	"testing"

	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
)

func genUniform(t testing.TB, n int, density float64, seed uint64) *network.Network {
	t.Helper()
	net, err := netgen.Uniform(netgen.Config{Params: sinr.DefaultParams(), Seed: seed}, n, density)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func genPath(t testing.TB, n int, seed uint64) *network.Network {
	t.Helper()
	net, err := netgen.Path(netgen.Config{Params: sinr.DefaultParams(), Seed: seed}, n, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func cfgFor(net *network.Network) Config {
	return DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps)
}

func TestConfigValidate(t *testing.T) {
	net := genPath(t, 8, 1)
	ok := cfgFor(net)
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"valid", func(c *Config) {}, false},
		{"zero TxRounds", func(c *Config) { c.TxRounds = 0 }, true},
		{"zero CProb", func(c *Config) { c.CProb = 0 }, true},
		{"bad MaxTxProb", func(c *Config) { c.MaxTxProb = 1.5 }, true},
		{"negative MaxRounds", func(c *Config) { c.MaxRounds = -1 }, true},
		{"invalid coloring", func(c *Config) { c.Coloring.CPrime = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := ok
			tt.mutate(&c)
			if err := c.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTxProbMonotoneAndCapped(t *testing.T) {
	net := genPath(t, 16, 1)
	cfg := cfgFor(net)
	lo := cfg.TxProb(cfg.Coloring.PStart())
	hi := cfg.TxProb(cfg.Coloring.FinalColor())
	if lo <= 0 || hi <= lo {
		t.Fatalf("TxProb not monotone: lo=%v hi=%v", lo, hi)
	}
	if got := cfg.TxProb(1e9); got != cfg.MaxTxProb {
		t.Fatalf("TxProb not capped: %v", got)
	}
}

func TestRunNoSSmallUniform(t *testing.T) {
	net := genUniform(t, 64, 8, 2)
	res, err := RunNoS(net, cfgFor(net), 3, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("not all informed after %d rounds", res.Rounds)
	}
	if res.InformTime[0] != 0 {
		t.Fatalf("source inform time = %d", res.InformTime[0])
	}
	for i, it := range res.InformTime {
		if it < 0 {
			t.Fatalf("station %d never informed but AllInformed=true", i)
		}
	}
	if res.Phases < 1 {
		t.Fatalf("Phases = %d", res.Phases)
	}
}

func TestRunNoSPath(t *testing.T) {
	net := genPath(t, 24, 3)
	res, err := RunNoS(net, cfgFor(net), 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("path broadcast incomplete after %d rounds", res.Rounds)
	}
	// Monotonicity along the path: station k can only be informed after
	// some station within distance <= comm radius was. Weak sanity: the
	// far end is informed last or near-last.
	far := res.InformTime[net.N()-1]
	for i := 1; i < net.N()-1; i++ {
		if res.InformTime[i] > far+cfgFor(net).PhaseLen() {
			t.Fatalf("station %d informed after the path end by more than a phase", i)
		}
	}
}

func TestRunNoSErrors(t *testing.T) {
	net := genPath(t, 8, 1)
	cfg := cfgFor(net)
	if _, err := RunNoS(net, cfg, 1, -1, 0); err == nil {
		t.Fatal("want error for negative source")
	}
	if _, err := RunNoS(net, cfg, 1, 100, 0); err == nil {
		t.Fatal("want error for out-of-range source")
	}
	bad := cfg
	bad.TxRounds = 0
	if _, err := RunNoS(net, bad, 1, 0, 0); err == nil {
		t.Fatal("want error for invalid config")
	}
	wrongN := DefaultConfig(net.N()+5, 2, net.Params.Eps)
	if _, err := RunNoS(net, wrongN, 1, 0, 0); err == nil {
		t.Fatal("want error for config/network size mismatch")
	}
}

func TestRunSSmallUniform(t *testing.T) {
	net := genUniform(t, 64, 8, 7)
	res, err := RunS(net, cfgFor(net), 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("not all informed after %d rounds", res.Rounds)
	}
	// The dedicated source round happens right after the coloring:
	// every other station is informed strictly after it.
	colorLen := cfgFor(net).Coloring.TotalRounds()
	for i, it := range res.InformTime {
		if i == 0 {
			continue
		}
		if it < colorLen {
			t.Fatalf("station %d informed during coloring (%d < %d)", i, it, colorLen)
		}
	}
}

func TestRunSPathFasterThanNoS(t *testing.T) {
	// Theorem 1 vs Theorem 2: on a path (large D), SBroadcast's
	// O(D log n + log² n) must beat NoSBroadcast's O(D log² n).
	net := genPath(t, 32, 11)
	cfg := cfgFor(net)
	nos, err := RunNoS(net, cfg, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunS(net, cfg, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !nos.AllInformed || !s.AllInformed {
		t.Fatalf("incomplete: nos=%v s=%v", nos.AllInformed, s.AllInformed)
	}
	if s.Rounds >= nos.Rounds {
		t.Fatalf("SBroadcast (%d) not faster than NoSBroadcast (%d) on a path", s.Rounds, nos.Rounds)
	}
}

func TestRunSErrors(t *testing.T) {
	net := genPath(t, 8, 1)
	cfg := cfgFor(net)
	if _, err := RunS(net, cfg, 1, 99, 0); err == nil {
		t.Fatal("want error for bad source")
	}
	wrongN := DefaultConfig(net.N()+5, 2, net.Params.Eps)
	if _, err := RunS(net, wrongN, 1, 0, 0); err == nil {
		t.Fatal("want error for size mismatch")
	}
}

func TestBroadcastDeterministicInSeed(t *testing.T) {
	net := genUniform(t, 48, 8, 13)
	cfg := cfgFor(net)
	a, err := RunNoS(net, cfg, 21, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNoS(net, cfg, 21, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds differ between identical seeds: %d vs %d", a.Rounds, b.Rounds)
	}
	for i := range a.InformTime {
		if a.InformTime[i] != b.InformTime[i] {
			t.Fatalf("inform times differ at station %d", i)
		}
	}
}

func TestBroadcastFromEveryCorner(t *testing.T) {
	// Broadcast must succeed regardless of source position.
	net := genUniform(t, 48, 8, 17)
	cfg := cfgFor(net)
	for _, src := range []int{0, net.N() / 2, net.N() - 1} {
		res, err := RunS(net, cfg, 3, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			t.Fatalf("source %d: incomplete after %d rounds", src, res.Rounds)
		}
		if res.InformTime[src] != 0 {
			t.Fatalf("source %d: inform time %d", src, res.InformTime[src])
		}
	}
}

func TestRunNoSExponentialChain(t *testing.T) {
	// The headline case: granularity-exponential network. The algorithm
	// must complete without any dependence on Rs.
	net, err := netgen.ExponentialChain(netgen.Config{Params: sinr.DefaultParams(), Seed: 1}, 32, 0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNoS(net, cfgFor(net), 9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("chain broadcast incomplete after %d rounds", res.Rounds)
	}
}

func TestBudgetRespected(t *testing.T) {
	// With an absurdly small budget the run must stop and report
	// failure rather than loop.
	net := genPath(t, 24, 3)
	cfg := cfgFor(net)
	cfg.MaxRounds = 10
	res, err := RunNoS(net, cfg, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllInformed {
		t.Fatal("cannot inform a 24-path in 10 rounds")
	}
	if res.Rounds > 10 {
		t.Fatalf("budget exceeded: %d", res.Rounds)
	}
}
