package sinrcast

// Benchmark harness: one benchmark per experiment of EXPERIMENTS.md
// (E1–E9), each regenerating its table at bench scale. Run the full-size
// suite with cmd/experiments; these benches are the CI-friendly version:
//
//	go test -bench=. -benchmem
//
// Each bench reports rounds/op-style wall time of one full experiment
// table plus custom metrics where meaningful.

import (
	"fmt"
	"runtime"
	"testing"

	"sinrcast/internal/exp"
)

// benchCfg shrinks the experiment sizes for benchmark latency. Trials
// run on every available core (Workers=GOMAXPROCS); tables — and hence
// measured medians — are identical to a Workers=1 run, only wall clock
// changes. Four trials per data point give the concurrent harness
// headroom to spread across cores; pass -cpu 1 to time the serial
// baseline.
func benchCfg() exp.Config {
	return exp.Config{Seed: 2014, Trials: 4, Scale: 0.5, Workers: runtime.GOMAXPROCS(0)}
}

func benchTable(b *testing.B, run func(exp.Config) (interface{ String() string }, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tb.String())
		}
	}
}

func BenchmarkE1NoSBroadcastVsD(b *testing.B) {
	benchTable(b, func(c exp.Config) (interface{ String() string }, error) {
		return exp.E1NoSBroadcastVsD(c)
	})
}

func BenchmarkE2SBroadcastScaling(b *testing.B) {
	benchTable(b, func(c exp.Config) (interface{ String() string }, error) {
		return exp.E2SBroadcastScaling(c)
	})
}

func BenchmarkE3Lemma1Invariant(b *testing.B) {
	benchTable(b, func(c exp.Config) (interface{ String() string }, error) {
		return exp.E3Lemma1(c)
	})
}

func BenchmarkE4Lemma2Invariant(b *testing.B) {
	benchTable(b, func(c exp.Config) (interface{ String() string }, error) {
		return exp.E4Lemma2(c)
	})
}

func BenchmarkE5ColoringRounds(b *testing.B) {
	benchTable(b, func(c exp.Config) (interface{ String() string }, error) {
		return exp.E5ColoringRounds(c)
	})
}

func BenchmarkE6GeometryImpact(b *testing.B) {
	benchTable(b, func(c exp.Config) (interface{ String() string }, error) {
		return exp.E6GeometryImpact(c)
	})
}

func BenchmarkE7BaselineComparison(b *testing.B) {
	benchTable(b, func(c exp.Config) (interface{ String() string }, error) {
		return exp.E7BaselineComparison(c)
	})
}

func BenchmarkE8Applications(b *testing.B) {
	benchTable(b, func(c exp.Config) (interface{ String() string }, error) {
		return exp.E8Applications(c)
	})
}

func BenchmarkE9SuccessProbability(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 1 // E9 multiplies trials by 10 internally
	for i := 0; i < b.N; i++ {
		tb, err := exp.E9SuccessProbability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tb.String())
		}
	}
}

func BenchmarkE10ModelRobustness(b *testing.B) {
	benchTable(b, func(c exp.Config) (interface{ String() string }, error) {
		return exp.E10ModelRobustness(c)
	})
}

func BenchmarkE11ColoringAblation(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		tb, err := exp.E11ColoringAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tb.String())
		}
	}
}

// BenchmarkE13ProtocolMatrix regenerates the protocol×scenario matrix
// at two smoke sizes (target n=16 and n=32, one trial per cell). The
// machine-readable trajectory of this bench plus the sinr Resolve
// benches is committed as BENCH_protocols.json (see cmd/benchjson).
func BenchmarkE13ProtocolMatrix(b *testing.B) {
	for _, scale := range []float64{0.5, 1} {
		b.Run(fmt.Sprintf("scale=%g", scale), func(b *testing.B) {
			cfg := benchCfg()
			cfg.Trials = 1
			cfg.Scale = scale
			for i := 0; i < b.N; i++ {
				tb, err := exp.E13ProtocolMatrix(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 && testing.Verbose() {
					b.Log("\n" + tb.String())
				}
			}
		})
	}
}

// Micro-benchmarks of the building blocks.

func BenchmarkBroadcastNoSUniform96(b *testing.B) {
	net, err := GenerateUniform(DefaultPhysical(), 96, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Broadcast(net, Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllInformed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkBroadcastSUniform96(b *testing.B) {
	net, err := GenerateUniform(DefaultPhysical(), 96, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := BroadcastSpontaneous(net, Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllInformed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkColoringUniform128(b *testing.B) {
	net, err := GenerateUniform(DefaultPhysical(), 128, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Colorize(net, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
