package broadcast

import (
	"strings"
	"testing"

	"sinrcast/internal/network"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

func TestProgressOnPath(t *testing.T) {
	net := genPath(t, 24, 3)
	cfg := cfgFor(net)
	res, err := RunNoS(net, cfg, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatal("incomplete")
	}
	hp, err := Progress(net, 0, res.InformTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(hp.Layer) != 24 {
		t.Fatalf("layers = %d, want 24", len(hp.Layer))
	}
	if hp.Layer[0].N != 1 || hp.Layer[0].Median != 0 {
		t.Fatalf("source layer = %+v", hp.Layer[0])
	}
	// Phased protocol: monotone up to one phase length.
	if !hp.MonotoneWithin(float64(cfg.PhaseLen())) {
		t.Fatalf("hop progress not monotone within a phase:\n%s", hp)
	}
	if hp.PerHop <= 0 {
		t.Fatalf("per-hop slope = %v", hp.PerHop)
	}
	if !strings.Contains(hp.String(), "rounds/hop") {
		t.Fatal("String() missing slope")
	}
}

func TestProgressErrors(t *testing.T) {
	net := genPath(t, 8, 1)
	if _, err := Progress(net, -1, make([]int, 8)); err == nil {
		t.Fatal("want error for bad source")
	}
	if _, err := Progress(net, 0, make([]int, 3)); err == nil {
		t.Fatal("want error for truncated inform times")
	}
}

func TestProgressSkipsUninformed(t *testing.T) {
	net := genPath(t, 6, 1)
	it := []int{0, 5, -1, 9, -1, 12}
	hp, err := Progress(net, 0, it)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Layer[2].N != 0 || hp.Layer[4].N != 0 {
		t.Fatal("uninformed stations should be skipped")
	}
	if hp.Layer[3].N != 1 {
		t.Fatalf("layer 3 = %+v", hp.Layer[3])
	}
}

func TestMonotoneWithinDetectsViolation(t *testing.T) {
	// A 3-path with inverted inform times: hop 1 informed after hop 2.
	net := genPath(t, 3, 1)
	hpReal, err := Progress(net, 0, []int{0, 100, 50})
	if err != nil {
		t.Fatal(err)
	}
	if hpReal.MonotoneWithin(10) {
		t.Fatal("violation of 50 rounds not detected with slack 10")
	}
	if !hpReal.MonotoneWithin(60) {
		t.Fatal("slack 60 should accept")
	}
}

func TestChannelOverrideIsUsed(t *testing.T) {
	// A channel that never delivers: broadcast must fail.
	net := genPath(t, 6, 1)
	cfg := cfgFor(net)
	cfg.MaxRounds = 500
	cfg.Channel = func(n *network.Network) (sim.Resolver, error) {
		return deadChannel{n: n.N()}, nil
	}
	res, err := RunNoS(net, cfg, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllInformed {
		t.Fatal("dead channel delivered messages")
	}
}

// deadChannel drops everything.
type deadChannel struct{ n int }

func (d deadChannel) Resolve([]int) []sinr.Reception { return nil }
func (d deadChannel) N() int                         { return d.n }

func TestChannelFadingCompletes(t *testing.T) {
	net := genUniform(t, 48, 8, 5)
	cfg := cfgFor(net)
	cfg.Channel = func(n *network.Network) (sim.Resolver, error) {
		return sinr.NewFadingEngine(n.Space, n.Params, 123)
	}
	res, err := RunS(net, cfg, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("fading broadcast incomplete after %d rounds", res.Rounds)
	}
}
