package exp

import (
	"testing"

	"sinrcast/internal/network"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

func poolTestNet(t *testing.T) *network.Network {
	t.Helper()
	spec := scenario.Spec{Family: "uniform", Params: map[string]float64{"n": 64, "density": 8}}
	net, err := scenario.Generate(spec, physParams(), 99)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestEnginePoolReuses pins the amortization: one network's trials
// share one topology construction. The first get builds (and keeps
// the pristine prototype), a returned engine is recycled before
// anything is built or cloned, and a get with an empty free list
// clones the prototype instead of rebuilding.
func TestEnginePoolReuses(t *testing.T) {
	net := poolTestNet(t)
	prev := SetEnginePooling(true)
	defer SetEnginePooling(prev)
	pool := newEnginePool(func() (sim.Resolver, error) {
		return sinr.NewNamedEngine("hier", net.Space, net.Params)
	})
	a, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	if pool.builds != 1 {
		t.Fatalf("builds after first get = %d, want 1", pool.builds)
	}
	if a == pool.proto {
		t.Fatal("pool handed out its pristine prototype")
	}
	b, err := pool.get() // free list empty: must clone, not rebuild
	if err != nil {
		t.Fatal(err)
	}
	if pool.builds != 1 {
		t.Fatalf("builds after second get = %d, want 1 (clone expected)", pool.builds)
	}
	if a == b {
		t.Fatal("pool handed the same engine to two concurrent trials")
	}
	pool.put(a)
	c, err := pool.get() // must recycle a
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("pool did not recycle the returned engine")
	}
	if pool.builds != 1 {
		t.Fatalf("builds after recycle = %d, want 1", pool.builds)
	}
	_ = b
}

// TestEnginePoolDisabled pins the reference path: with pooling off
// every get is a fresh construction and put drops the engine.
func TestEnginePoolDisabled(t *testing.T) {
	net := poolTestNet(t)
	prev := SetEnginePooling(false)
	defer SetEnginePooling(prev)
	pool := newEnginePool(func() (sim.Resolver, error) {
		return sinr.NewEngine(net.Space, net.Params)
	})
	a, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	pool.put(a)
	b, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("disabled pool recycled an engine")
	}
	if pool.builds != 2 {
		t.Fatalf("builds = %d, want 2", pool.builds)
	}
}

// TestEnginePoolNotCloneable pins the wrapper-channel fallback: a
// non-cloneable resolver is never pooled, so every trial gets a fresh
// one (per-trial RNG state stays per-trial).
func TestEnginePoolNotCloneable(t *testing.T) {
	net := poolTestNet(t)
	prev := SetEnginePooling(true)
	defer SetEnginePooling(prev)
	pool := newEnginePool(func() (sim.Resolver, error) {
		return sinr.NewFadingEngine(net.Space, net.Params, 5)
	})
	a, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	pool.put(a)
	b, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pool recycled a fading engine (per-trial RNG must not be shared)")
	}
	if pool.builds != 2 {
		t.Fatalf("builds = %d, want 2", pool.builds)
	}
}

// TestE14PoolingIdentity pins the acceptance contract end to end: the
// deterministic E14 columns are byte-identical with engine pooling on
// and off (rounds/s, the wall-clock column, is excluded by design).
func TestE14PoolingIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	run := func(pooling bool) [][]string {
		prev := SetEnginePooling(pooling)
		defer SetEnginePooling(prev)
		cfg := Config{Seed: 7, Trials: 2, Scale: 0.001, Engine: "auto", Workers: 2}
		tb, err := E14LargeNScaling(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows
	}
	a, b := run(true), run(false)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for col := 0; col < 7; col++ { // all but rounds/s
			if a[i][col] != b[i][col] {
				t.Errorf("row %d col %d differs with pooling: %v vs %v", i, col, a[i][col], b[i][col])
			}
		}
	}
}
