package sinr

import (
	"testing"
	"testing/quick"

	"sinrcast/internal/geom"
	"sinrcast/internal/rng"
)

// randomScene builds a reproducible random Euclidean deployment.
func randomScene(seed uint64, n int, side float64) *geom.Euclidean {
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, side), Y: r.Range(0, side)}
	}
	return geom.NewEuclidean(pts)
}

func TestPropertySingleTxReceptionIffInRange(t *testing.T) {
	// With exactly one transmitter, reception happens exactly for
	// stations within distance 1 (noise-only range).
	if err := quick.Check(func(seed uint16) bool {
		eu := randomScene(uint64(seed)+1, 12, 3)
		e, err := NewEngine(eu, DefaultParams())
		if err != nil {
			return false
		}
		rec := e.Resolve([]int{0})
		got := map[int]bool{}
		for _, r := range rec {
			if r.Transmitter != 0 {
				return false
			}
			got[r.Receiver] = true
		}
		for u := 1; u < eu.Len(); u++ {
			want := eu.Dist(0, u) <= 1
			if got[u] != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReceiversAreNeverTransmitters(t *testing.T) {
	if err := quick.Check(func(seed uint16, mask uint16) bool {
		eu := randomScene(uint64(seed)+7, 14, 2)
		e, err := NewEngine(eu, DefaultParams())
		if err != nil {
			return false
		}
		var tx []int
		isTx := map[int]bool{}
		for i := 0; i < 14; i++ {
			if mask&(1<<uint(i%16)) != 0 && len(tx) < 10 {
				tx = append(tx, i)
				isTx[i] = true
			}
		}
		for _, r := range e.Resolve(tx) {
			if isTx[r.Receiver] {
				return false
			}
			if !isTx[r.Transmitter] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAtMostOneReceptionPerReceiver(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		eu := randomScene(uint64(seed)+13, 20, 2)
		e, err := NewEngine(eu, DefaultParams())
		if err != nil {
			return false
		}
		r := rng.New(uint64(seed))
		var tx []int
		for i := 0; i < 20; i++ {
			if r.Bernoulli(0.3) {
				tx = append(tx, i)
			}
		}
		seen := map[int]bool{}
		for _, rc := range e.Resolve(tx) {
			if seen[rc.Receiver] {
				return false
			}
			seen[rc.Receiver] = true
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddingInterfererNeverHelpsPair(t *testing.T) {
	// For a fixed (tx, rx) pair, SINRAt is monotonically non-increasing
	// as transmitters are added.
	if err := quick.Check(func(seed uint16) bool {
		eu := randomScene(uint64(seed)+29, 10, 2)
		e, err := NewEngine(eu, DefaultParams())
		if err != nil {
			return false
		}
		base := e.SINRAt(0, 1, []int{0})
		withOne := e.SINRAt(0, 1, []int{0, 2})
		withTwo := e.SINRAt(0, 1, []int{0, 2, 3})
		return withOne <= base+1e-12 && withTwo <= withOne+1e-12
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDecodedIsClosestTransmitter(t *testing.T) {
	// Uniform power: if a reception happens, its transmitter is the
	// closest one to the receiver.
	if err := quick.Check(func(seed uint16) bool {
		eu := randomScene(uint64(seed)+37, 16, 2.5)
		e, err := NewEngine(eu, DefaultParams())
		if err != nil {
			return false
		}
		r := rng.New(uint64(seed) + 1)
		var tx []int
		for i := 0; i < 16; i++ {
			if r.Bernoulli(0.25) {
				tx = append(tx, i)
			}
		}
		for _, rc := range e.Resolve(tx) {
			d := eu.Dist(rc.Transmitter, rc.Receiver)
			for _, other := range tx {
				if eu.Dist(other, rc.Receiver) < d-1e-12 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWeakDeviceSubsetOfExact(t *testing.T) {
	// The weak-device engine's receptions are always a subset of the
	// exact engine's.
	if err := quick.Check(func(seed uint16) bool {
		eu := randomScene(uint64(seed)+41, 14, 2)
		p := DefaultParams()
		exact, err := NewEngine(eu, p)
		if err != nil {
			return false
		}
		weak, err := NewWeakDeviceEngine(eu, p, p.CommRadius())
		if err != nil {
			return false
		}
		r := rng.New(uint64(seed) + 2)
		var tx []int
		for i := 0; i < 14; i++ {
			if r.Bernoulli(0.3) {
				tx = append(tx, i)
			}
		}
		full := map[Reception]bool{}
		for _, rc := range exact.Resolve(tx) {
			full[rc] = true
		}
		for _, rc := range weak.Resolve(tx) {
			if !full[rc] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
