package sinr

import (
	"runtime"
	"sync"
)

// parallelCrossover is the default receiver count below which Resolve
// stays serial even when workers are available: a round costs
// O(n·|tx|) float ops, and below ~1k receivers the few microseconds of
// shard dispatch outweigh the parallel win. Engines expose the knob via
// their minParallelN field so tests can force the parallel path on
// tiny instances.
const parallelCrossover = 1024

// workerPool is a reusable set of goroutines that execute receiver
// shards. A pool is created lazily by an engine on its first parallel
// round and reused for every round after, so steady-state rounds do not
// allocate or spawn. Pools are engine-private: run is never called
// concurrently on the same pool.
//
// The worker goroutines exit when the pool's job channel is closed; the
// owning engine arranges that via runtime.AddCleanup, so dropping the
// engine cannot leak goroutines. Between rounds the pool holds no
// reference to the engine (run clears fn), which is what lets the
// engine become unreachable in the first place.
type workerPool struct {
	workers int
	jobs    chan int
	wg      sync.WaitGroup
	fn      func(shard int)
}

// newWorkerPool starts workers goroutines ready to execute shards.
func newWorkerPool(workers int) *workerPool {
	p := &workerPool{workers: workers, jobs: make(chan int, workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for shard := range p.jobs {
				p.fn(shard)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes fn(0) … fn(shards-1) on the pool and waits for all of
// them. The channel send/receive pair orders the p.fn write before any
// worker reads it, and every worker's read is ordered before wg.Wait
// returns, so clearing fn afterwards is race-free.
func (p *workerPool) run(shards int, fn func(shard int)) {
	p.fn = fn
	p.wg.Add(shards)
	for s := 0; s < shards; s++ {
		p.jobs <- s
	}
	p.wg.Wait()
	p.fn = nil
}

// close terminates the worker goroutines. Exactly one of two paths
// calls it per pool: the registered GC cleanup, or ensureRunner when
// replacing the pool after a worker-count change (which stops the
// cleanup first, so the two paths never both fire).
func (p *workerPool) close() { close(p.jobs) }

// resolveWorkers normalizes a Workers setting: values ≤ 0 select
// runtime.GOMAXPROCS(0).
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// shardRunner owns the parallel-resolve machinery shared by the
// engines: the lazy worker pool, its GC teardown registration, and the
// per-shard reception buffers that make the ordered merge
// deterministic. hiWater remembers the largest per-shard reception
// count ever merged, so rebuilding the pool (a worker-count change)
// presizes the fresh buffers instead of rediscovering the round's
// decode volume through repeated append growth.
type shardRunner struct {
	pool     *workerPool
	cleanup  runtime.Cleanup
	shardOut [][]Reception
	hiWater  int
}

// ensureRunner (re)builds r's pool for the given worker count. owner is
// the engine whose unreachability tears the pool down; between rounds
// the pool holds no reference back to it (workerPool.run clears fn), so
// the cleanup can actually fire. Replacing an existing pool stops its
// cleanup before closing it, so the channel is never closed twice.
func ensureRunner[T any](r *shardRunner, owner *T, workers int) {
	if r.pool != nil && r.pool.workers == workers {
		return
	}
	if r.pool != nil {
		r.cleanup.Stop()
		r.pool.close()
	}
	r.pool = newWorkerPool(workers)
	r.cleanup = runtime.AddCleanup(owner, func(p *workerPool) { p.close() }, r.pool)
	r.shardOut = make([][]Reception, workers)
	if r.hiWater > 0 {
		for i := range r.shardOut {
			r.shardOut[i] = make([]Reception, 0, r.hiWater)
		}
	}
}

// shardRange returns the half-open receiver range of one shard over n
// receivers.
func (r *shardRunner) shardRange(shard, n int) (lo, hi int) {
	w := r.pool.workers
	return shard * n / w, (shard + 1) * n / w
}

// runAndMerge executes fn for every shard on the pool, then returns out
// (reused) with the per-shard receptions appended in shard — that is,
// ascending receiver — order, reproducing the serial result exactly.
func (r *shardRunner) runAndMerge(fn func(shard int), out []Reception) []Reception {
	r.pool.run(r.pool.workers, fn)
	out = out[:0]
	for _, shard := range r.shardOut {
		out = append(out, shard...)
		if len(shard) > r.hiWater {
			r.hiWater = len(shard)
		}
	}
	return out
}
