package sinr

import (
	"fmt"
	"math"
	"slices"

	"sinrcast/internal/geom"
	"sinrcast/internal/sinr/simd"
)

// Default geometry of the approximate engines: half-comm-radius cells,
// a near field covering one-and-a-half communication radii (so every
// decodable transmitter is summed exactly), and a Barnes–Hut style
// opening threshold of one node diameter per two distances. These are
// the values AutoEngine and the CLIs use; constructors accept explicit
// overrides.
const (
	// DefaultCellSize is the base-grid bucket side.
	DefaultCellSize = 0.5
	// DefaultNearRadius is the exact-summation radius.
	DefaultNearRadius = 1.5
	// DefaultTheta is the HierEngine well-separatedness threshold θ: a
	// pyramid node's aggregate is accepted when diameter/distance ≤ θ.
	// Smaller is more accurate and slower; 0.5 keeps the measured
	// disagreement against the exact Engine below GridEngine's (see
	// TestHierEngineAgreement).
	DefaultTheta = 0.5
	// DefaultDeltaCrossover is the churn fraction above which a round
	// abandons the incremental cross-round update and rebuilds its
	// transmitter aggregation from scratch: with Δ = |departed| +
	// |arrived| between consecutive rounds, the delta path runs while
	// Δ ≤ crossover·(|prev| + |cur|). At 0.5 the delta path covers up
	// to ~50% transmitter churn, where incremental ancestor recomputes
	// and a full rebuild cost about the same (see the cost model in the
	// package docs and BenchmarkHierResolveRounds).
	DefaultDeltaCrossover = 0.5
	// frontierBlock is the side, in cells, of the receiver blocks that
	// share one far-field frontier and one near-field gather. One cell
	// holds too few receivers to amortize a descent; a 16×16 block
	// shares it across two orders of magnitude more receivers, and the
	// frontier growth from the conservative θ test (measured from the
	// block rectangle's nearest point) is more than paid for by
	// replacing per-receiver tree walks with flat slab replays —
	// measured on BenchmarkHierResolve/n=65536, block sides 4/8/16
	// give 1.6×/2.8×/3.8× over the per-receiver descent, with
	// diminishing returns (and a near box growing quadratically)
	// beyond.
	frontierBlock = 16
)

// pyrLevel is one level of the far-field pyramid. Level 0 is the base
// cell grid; level ℓ+1 aggregates 2×2 blocks of level ℓ. Per node the
// level stores the aggregate transmit power and the power-weighted
// coordinate sums, so a node's center of mass is (px/pow, py/pow).
// Zero power marks a dead node. live lists the nodes touched since the
// last full reset (it may carry stale dead entries between delta
// rounds; liveCount tracks the true live population and triggers
// compaction); stamp/gen dedup node visits without O(cells) clears.
type pyrLevel struct {
	cols, rows int
	pow        []float64
	px, py     []float64
	live       []int32
	liveCount  int
	stamp      []uint32
	// diam2 is the squared node diagonal (the well-separatedness
	// numerator): (side·√2)² for nodes of side cellSize·2^ℓ.
	diam2 float64
}

// pyrNode addresses one pyramid node during descent.
type pyrNode struct {
	lv  int32
	idx int32
}

// blockSlabs holds the replayable per-block slabs of the memoized
// receiver loop: the accepted-node frontier in descent order (center-of-
// mass coordinates and aggregate power, replayed as flat multiply-adds)
// and the near-field gather (transmitter ids and coordinates in scan
// order over the block's union near box). Buffers are reused via [:0]
// truncation, so a rebuilt block reallocates only past its high-water
// mark.
type blockSlabs struct {
	evX, evY, evP []float64
	nearID        []int32
	nearX, nearY  []float64
}

// blockCacheEntry is one slot of the cross-round per-block slab cache:
// the slabs plus the aggregation epoch they were built at. Both slabs
// depend only on the transmitter aggregation state (cell lists and
// pyramid aggregates) and static block geometry, so while the epoch
// matches they replay bit-identically without re-gathering or re-
// descending.
type blockCacheEntry struct {
	blockSlabs
	epoch uint32
}

// hierChunk is the per-worker scratch of the frontier-memoized
// receiver loop: private slabs for the receiver-partitioned list path,
// where two workers may visit the same block concurrently and
// therefore cannot share the per-block cache. cachedBlock/cachedEpoch
// key the lazy reuse: consecutive receivers in one block — across
// rounds, while the aggregation is unchanged — replay the same slabs.
// The trailing pad keeps adjacent workers' scratch on distinct cache
// lines (the slab headers are rewritten on every block miss).
type hierChunk struct {
	blockSlabs
	cachedBlock int32
	cachedEpoch uint32
	_           [64]byte
}

// HierEngine resolves rounds approximately for Euclidean networks with
// a hierarchical far field: transmitters are bucketed into grid cells
// (exactly like GridEngine), the cells are stacked into a power-of-two
// pyramid whose nodes aggregate their children's transmit power at the
// children's center of mass, and receivers consume the pyramid through
// a Barnes–Hut descent. A node's aggregate is accepted when it is well
// separated from the receiver (node diameter / distance ≤ θ) and does
// not touch the receiver's near-field box; otherwise the descent
// recurses into its 2×2 children. Leaves inside the near box stay
// exact per-transmitter, so decoding candidates are untouched —
// approximation error only perturbs the far interference tail, and the
// center-of-mass placement cancels the first-order term of that error.
//
// Three amortizations keep the hot path cheap:
//
//   - Across receivers (frontier memoization): the descent runs once
//     per occupied block of frontierBlock×frontierBlock cells,
//     classifying each node against the whole block rectangle —
//     accepted only when θ holds at the rectangle's nearest point (so
//     it holds for every receiver in the block), descended otherwise —
//     and the near field is gathered once over the block's union near
//     box, which every receiver sums exactly. The resulting
//     accepted-node frontier is a flat structure-of-arrays slab every
//     receiver in the block replays as pure multiply-adds; tree
//     walking, extent arithmetic and the center-of-mass divisions are
//     paid once per block instead of once per receiver. Both the
//     conservative θ test and the enlarged exact region are strictly
//     finer approximations than the per-receiver descent's, so the
//     error can only shrink (TestHierEngineAgreement still bounds it
//     by GridEngine's; measured, it drops by an order of magnitude).
//
//   - Across rounds (delta aggregation): aggregates persist between
//     Resolve calls. When consecutive rounds' (sorted) transmitter
//     sets differ by a small delta, only the dirty cells and their
//     O(Δ·log cells) ancestor chains are recomputed — canonically,
//     child-order sums, so incremental state is bit-identical to a
//     from-scratch build — and the block-granularity hot table updates
//     by counting. Beyond SetDeltaCrossover churn the round rebuilds
//     from scratch.
//
//   - Across rounds, receiver side (epoch caching): every delta or
//     rebuild that changes anything bumps an aggregation epoch, and
//     both the per-block slabs (near gather + frontier) and each
//     receiver's far-field sum are cached under the epoch that built
//     them. Rounds whose transmitter set did not change replay cached
//     slabs and far sums verbatim — bit-identical by construction —
//     so their cost collapses to the near-field rejection scans and
//     the decode tests.
//
// Like the other engines, path loss goes through the specialized
// Kernel, large rounds split into chunks executed by the work-stealing
// runner with byte-identical output for every worker count and steal
// interleaving, and ResolveFor restricts a round to a receiver subset.
// A HierEngine is not safe for concurrent use by multiple goroutines;
// Clone gives each goroutine its own engine over the shared topology.
type HierEngine struct {
	*hierTopo

	// blockStamp dedups per-round block visits.
	blockStamp []uint32
	levels     []pyrLevel

	workers      int
	minParallelN int
	pinned       bool
	par          chunkRunner
	// Cached chunk closures for the four parallel dispatch shapes
	// (allocated once so steady-state rounds stay alloc-free).
	blockFn   func(chunk, worker int)
	rangeFn   func(chunk, worker int)
	listFn    func(chunk, worker int)
	descentFn func(chunk, worker int)

	// Tuning knobs (see SetFrontierMemo / SetDeltaCrossover /
	// SetVectorized).
	memo           bool
	vec            bool
	deltaCrossover float64

	// Cross-round transmitter aggregation state. Unlike the other
	// engines this is NOT scratch: it persists between rounds so the
	// delta path can update it incrementally.
	txInCell [][]int32
	// hotCnt[b] counts live cells whose near box intersects receiver
	// block b: a station in a block with count 0 has no transmitter
	// within the near radius (every cell of the block is cold) and is
	// rejected without any work. Block granularity keeps bumpHot at a
	// handful of counter updates per live-cell transition instead of
	// (2·nearCells+1)² per-cell ones. hotList holds blocks that have
	// been hot since the last reset (stale entries are filtered on
	// use); hotBumps/hotTransitions count counter updates and bumpHot
	// calls for the hardware-independent cost gate.
	hotCnt         []int32
	hotList        []int32
	hotCount       int
	hotBumps       int64
	hotTransitions int64
	isTx           []bool
	prevTx         []int
	// prevSorted records whether prevTx was strictly increasing — the
	// precondition for the sorted-merge delta diff and for per-cell
	// transmitter lists being in ascending (= canonical) order.
	prevSorted bool
	haveRound  bool
	gen        uint32
	// aggEpoch numbers distinct transmitter-aggregation states: bumped
	// by every fresh build and by every delta application that touched
	// anything. Per-block slabs are pure functions of the aggregation
	// state, so a blockCache entry stamped with the current epoch
	// replays bit-identically — zero-churn rounds skip every gather and
	// descent.
	aggEpoch uint32

	// Delta scratch, reused across rounds.
	gone       []bool
	departed   []int
	arrived    []int
	dirtyCells []int32
	dirtyOrd   []int32
	dirtyGen   []uint32
	arrivalBuf [][]int32
	mergeBuf   []int32
	dirtyNodes [2][]int32

	// Per-round receiver-side scratch. curRecv/curMask carry the active
	// ResolveFor subset into the chunk closures for the duration of one
	// parallel round.
	workList []int32
	curRecv  []int
	curMask  []bool
	recvMask []bool
	chunks   []hierChunk
	// blockCache persists each block's slabs across rounds, stamped
	// with the aggregation epoch that built them. The whole-round path
	// makes each work-list block its own chunk, claimed by exactly one
	// worker, so each entry is written by at most one goroutine per
	// round; the runner's round barrier orders cross-round handoffs.
	blockCache []blockCacheEntry
	// farCache/farEpoch memoize each receiver's far-field replay: the
	// frontier sum is a pure function of (receiver position, aggregation
	// epoch), so a receiver whose stamp matches the current epoch reuses
	// the stored value — bit-identical by construction — instead of
	// replaying the slabs. Receivers are partitioned across chunks in
	// every parallel mode (a receiver's block lives in exactly one
	// chunk), so each entry has one writer per round.
	farCache []float64
	farEpoch []uint32
	out      []Reception
}

// hierTopo is the immutable half of a HierEngine: parameters, position
// slabs, the cell geometry and the receiver-block CSR, all fixed at
// construction. The pyramid's aggregates are per-run state and live in
// the engine (their shape is rebuilt from cols/rows/cellSize); clones
// share one hierTopo and allocate only the mutable half.
type hierTopo struct {
	params   Params
	kern     Kernel
	pts      []geom.Point
	ptsX     []float64 // structure-of-arrays slabs of pts
	ptsY     []float64
	cellSize float64
	nearR2   float64
	theta2   float64
	// nearCells is the near-field box radius in cells (see GridEngine).
	nearCells int

	cols, rows int
	minX, minY float64
	// rectPad expands block rectangles during the shared descent so
	// floating-point rounding in cell assignment can never place a
	// boundary receiver outside its block's rectangle (padding only
	// moves borderline nodes from accepted to descended — the safe
	// direction).
	rectPad float64
	cellOf  []int32
	// Receiver blocks: the plane is cut into frontierBlock-sized
	// squares of cells; bcols×brows of them. blockItems[blockStart[b]:
	// blockStart[b+1]] are block b's stations in ascending index order
	// (a static CSR) — the memoized receiver loop walks blocks, not
	// indices, so receivers of one block are resolved back to back
	// against the block's shared slabs.
	bcols, brows int
	blockStart   []int32
	blockItems   []int32
}

// NewHierEngine builds a hierarchical engine over Euclidean points.
// cellSize is the base bucket side; nearRadius is the exact-summation
// radius and must be ≥ 1 (the normalized communication range — the
// candidate search only looks inside the near box, so the box must
// cover every decodable transmitter); theta is the well-separatedness
// threshold in (0, 1]. Grids beyond maxCellBlowup×n cells are rejected.
func NewHierEngine(eu *geom.Euclidean, p Params, cellSize, nearRadius, theta float64) (*HierEngine, error) {
	if err := p.Validate(eu.Growth()); err != nil {
		return nil, err
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("sinr: cellSize %v must be positive", cellSize)
	}
	if nearRadius < 1 {
		return nil, fmt.Errorf("sinr: nearRadius %v must be >= 1 (the normalized communication range)", nearRadius)
	}
	if theta <= 0 || theta > 1 {
		return nil, fmt.Errorf("sinr: theta %v must be in (0, 1]", theta)
	}
	pts := eu.Pts
	n := len(pts)
	cols, rows, minX, minY, err := gridDims(pts, cellSize)
	if err != nil {
		return nil, err
	}
	tp := &hierTopo{
		params:    p,
		kern:      NewKernel(p.Alpha),
		pts:       pts,
		ptsX:      make([]float64, n),
		ptsY:      make([]float64, n),
		cellSize:  cellSize,
		nearR2:    nearRadius * nearRadius,
		theta2:    theta * theta,
		nearCells: int(math.Ceil(nearRadius/cellSize)) + 1,
		cols:      cols, rows: rows,
		minX: minX, minY: minY,
		cellOf: make([]int32, n),
	}
	span := math.Abs(minX) + math.Abs(minY) + (float64(cols)+float64(rows))*cellSize
	tp.rectPad = 1e-12 * (span + 1)
	for i, q := range pts {
		tp.ptsX[i], tp.ptsY[i] = q.X, q.Y
		tp.cellOf[i] = int32(tp.cellIndex(q))
	}
	// Static station CSR by receiver block (counting sort).
	tp.bcols = (cols + frontierBlock - 1) / frontierBlock
	tp.brows = (rows + frontierBlock - 1) / frontierBlock
	nBlocks := tp.bcols * tp.brows
	counts := make([]int32, nBlocks+1)
	for _, c := range tp.cellOf {
		counts[tp.blockOfCell(c)+1]++
	}
	for b := 1; b <= nBlocks; b++ {
		counts[b] += counts[b-1]
	}
	tp.blockStart = counts
	tp.blockItems = make([]int32, n)
	fill := make([]int32, nBlocks)
	for i := range pts {
		b := tp.blockOfCell(tp.cellOf[i])
		tp.blockItems[tp.blockStart[b]+fill[b]] = int32(i)
		fill[b]++
	}
	return hierFromTopo(tp), nil
}

// hierFromTopo builds the mutable per-run half of a hierarchical
// engine over an already-built topology. The run-state arrays (pyramid
// aggregates, per-block and per-receiver caches, delta scratch) are
// not allocated here but lazily by ensureRunState on the first
// resolve: they scale with the cell grid, and deferring them keeps
// cloning a large engine down to pointer copies. NewHierEngine and
// Clone both go through here, so a clone starts in exactly the state
// a fresh construction would.
func hierFromTopo(tp *hierTopo) *HierEngine {
	return &HierEngine{
		hierTopo:       tp,
		workers:        resolveWorkers(0),
		minParallelN:   parallelCrossover,
		memo:           true,
		deltaCrossover: DefaultDeltaCrossover,
		vec:            true,
		aggEpoch:       1,
	}
}

// ensureRunState allocates the per-run arrays on first use. The
// pyramid always has at least one level, so h.levels doubles as the
// "already allocated" sentinel.
func (h *HierEngine) ensureRunState() {
	if h.levels != nil {
		return
	}
	n := len(h.pts)
	nBlocks := h.bcols * h.brows
	h.blockStamp = make([]uint32, nBlocks)
	h.hotCnt = make([]int32, nBlocks)
	h.blockCache = make([]blockCacheEntry, nBlocks)
	h.farCache = make([]float64, n)
	h.farEpoch = make([]uint32, n)
	h.txInCell = make([][]int32, h.cols*h.rows)
	h.isTx = make([]bool, n)
	h.gone = make([]bool, n)
	h.dirtyOrd = make([]int32, h.cols*h.rows)
	h.dirtyGen = make([]uint32, h.cols*h.rows)
	// Stack levels until a single node covers the whole grid.
	lc, lr := h.cols, h.rows
	side := h.cellSize
	for {
		h.levels = append(h.levels, pyrLevel{
			cols: lc, rows: lr,
			pow:   make([]float64, lc*lr),
			px:    make([]float64, lc*lr),
			py:    make([]float64, lc*lr),
			stamp: make([]uint32, lc*lr),
			diam2: 2 * side * side,
		})
		if lc == 1 && lr == 1 {
			break
		}
		lc = (lc + 1) / 2
		lr = (lr + 1) / 2
		side *= 2
	}
}

// Clone returns an independent engine sharing this engine's immutable
// topology (positions, cell geometry, block CSR) with a fresh pyramid,
// caches and scratch. The clone resolves byte-identically to a freshly
// constructed engine — it inherits none of the original's cross-round
// aggregation state — and separate clones may run concurrently. Tuning
// (workers, pinning, crossover, memo/vectorization/delta toggles) is
// copied.
func (h *HierEngine) Clone() *HierEngine {
	c := hierFromTopo(h.hierTopo)
	c.workers, c.minParallelN, c.pinned = h.workers, h.minParallelN, h.pinned
	c.memo, c.vec, c.deltaCrossover = h.memo, h.vec, h.deltaCrossover
	return c
}

// blockOfCell maps a base cell to its receiver block.
func (h *hierTopo) blockOfCell(c int32) int32 {
	cx, cy := int(c)%h.cols, int(c)/h.cols
	return int32(cy/frontierBlock*h.bcols + cx/frontierBlock)
}

// blockCellRange returns block b's base-cell extent [x0,x1]×[y0,y1].
func (h *hierTopo) blockCellRange(b int32) (x0, y0, x1, y1 int) {
	bx, by := int(b)%h.bcols, int(b)/h.bcols
	x0, y0 = bx*frontierBlock, by*frontierBlock
	x1 = min(x0+frontierBlock-1, h.cols-1)
	y1 = min(y0+frontierBlock-1, h.rows-1)
	return
}

func (h *hierTopo) cellIndex(q geom.Point) int {
	cx := int((q.X - h.minX) / h.cellSize)
	cy := int((q.Y - h.minY) / h.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= h.cols {
		cx = h.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= h.rows {
		cy = h.rows - 1
	}
	return cy*h.cols + cx
}

// N returns the number of stations.
func (h *HierEngine) N() int { return len(h.pts) }

// Params returns the physical parameters.
func (h *HierEngine) Params() Params { return h.params }

// Levels returns the pyramid height (for tests and diagnostics).
func (h *HierEngine) Levels() int {
	h.ensureRunState()
	return len(h.levels)
}

// SetWorkers sets how many goroutines Resolve may use; w ≤ 0 selects
// runtime.GOMAXPROCS(0). Output is byte-identical for every count.
func (h *HierEngine) SetWorkers(w int) { h.workers = resolveWorkers(w) }

// SetPinned toggles OS-thread pinning of the parallel workers (off by
// default): each worker goroutine locks to an OS thread bound to one
// CPU, assigned NUMA-node-first. Best-effort — a no-op where the
// platform offers no affinity API — and output is byte-identical
// either way.
func (h *HierEngine) SetPinned(on bool) { h.pinned = on }

// SetFrontierMemo toggles the shared per-cell frontier (on by
// default). Off, every receiver descends the pyramid from the root on
// its own — the slower reference path, bit-identical to the memoized
// one; the equivalence property tests pin the two against each other,
// and turning the memo off is the first debugging step when a hier
// result looks suspect.
func (h *HierEngine) SetFrontierMemo(on bool) { h.memo = on }

// SetVectorized toggles the batch replay kernels of the memoized
// receiver loop (on by default): the near-field scan and far-field
// frontier replay run through the unrolled simd batch kernels instead
// of plain element loops. The portable kernels preserve the scalar
// summation order bit-exactly, so this toggle — mirroring
// SetFrontierMemo — never changes results; it exists as the reference
// path for the vectorization property tests and for debugging. (The
// opt-in assembly tier, simd.SetUseAsm, is only consulted while
// vectorization is on.)
func (h *HierEngine) SetVectorized(on bool) { h.vec = on }

// SetDeltaCrossover sets the churn fraction up to which consecutive
// rounds update transmitter aggregates incrementally instead of
// rebuilding (see DefaultDeltaCrossover); f ≤ 0 disables the delta
// path entirely, forcing a full rebuild every round — the debugging
// reference, bit-identical to the incremental path.
func (h *HierEngine) SetDeltaCrossover(f float64) {
	h.deltaCrossover = f
}

// --- Round aggregation (fresh, delta, reset) ---------------------------

// recomputeCell recomputes cell c's level-0 aggregate from its
// transmitter list, in list order. With a sorted transmitter round the
// list is ascending, so the sums are canonical: a delta-maintained list
// accumulates bit-identically to a from-scratch bucketing.
func (h *HierEngine) recomputeCell(c int32) {
	pw := h.params.Power()
	l0 := &h.levels[0]
	pow, px, py := 0.0, 0.0, 0.0
	for _, t := range h.txInCell[c] {
		pow += pw
		px += pw * h.ptsX[t]
		py += pw * h.ptsY[t]
	}
	l0.pow[c] = pow
	l0.px[c] = px
	l0.py[c] = py
}

// recomputeNode recomputes one upper-level node from its ≤4 children in
// fixed child order (dead children contribute exact zeros), so the
// value depends only on the children's aggregates — never on the order
// rounds or deltas touched them.
func (h *HierEngine) recomputeNode(lv int, idx int32) {
	cur := &h.levels[lv]
	child := &h.levels[lv-1]
	nx, ny := int(idx)%cur.cols, int(idx)/cur.cols
	cx0, cy0 := nx*2, ny*2
	pow, px, py := 0.0, 0.0, 0.0
	for dy := 0; dy < 2; dy++ {
		cy := cy0 + dy
		if cy >= child.rows {
			continue
		}
		for dx := 0; dx < 2; dx++ {
			cx := cx0 + dx
			if cx >= child.cols {
				continue
			}
			ci := cy*child.cols + cx
			pow += child.pow[ci]
			px += child.px[ci]
			py += child.py[ci]
		}
	}
	cur.pow[idx] = pow
	cur.px[idx] = px
	cur.py[idx] = py
}

// bumpHot adds d (±1) to the hot count of every receiver block whose
// cell extent the near box of live cell c touches, tracking first-hot
// transitions. Working at block granularity costs at most
// (⌈(2·nearCells+1)/frontierBlock⌉+1)² counter updates per transition —
// ≤ 4 with the default geometry, versus the 81 per-cell bumps the same
// near box used to pay — which is what keeps the delta path cheap under
// churn. The coarsening is output-neutral: a station is now rejected
// only when its whole block is cold, and a station in a cold cell of a
// hot block still finds no transmitter within the communication range
// during its near scan, so it decodes nothing either way.
func (h *HierEngine) bumpHot(c int32, d int32) {
	h.hotTransitions++
	nc := h.nearCells
	ccx, ccy := int(c)%h.cols, int(c)/h.cols
	y0, y1 := max(ccy-nc, 0), min(ccy+nc, h.rows-1)
	x0, x1 := max(ccx-nc, 0), min(ccx+nc, h.cols-1)
	bx0, bx1 := x0/frontierBlock, x1/frontierBlock
	by0, by1 := y0/frontierBlock, y1/frontierBlock
	for by := by0; by <= by1; by++ {
		row := by * h.bcols
		for bx := bx0; bx <= bx1; bx++ {
			i := row + bx
			h.hotBumps++
			was := h.hotCnt[i]
			h.hotCnt[i] = was + d
			if d > 0 && was == 0 {
				h.hotList = append(h.hotList, int32(i))
				h.hotCount++
			} else if d < 0 && was == 1 {
				h.hotCount--
			}
		}
	}
}

// aggregateFresh builds the full aggregation state of a round from
// scratch: bucket transmitters into cells, compute canonical per-cell
// and per-node sums bottom-up over live nodes only, and count hot
// cells. Cost O(|tx| + live·(log cells + nearBox²)).
func (h *HierEngine) aggregateFresh(tx []int) {
	l0 := &h.levels[0]
	for _, t := range tx {
		h.isTx[t] = true
		c := h.cellOf[t]
		if len(h.txInCell[c]) == 0 {
			l0.live = append(l0.live, c)
		}
		h.txInCell[c] = append(h.txInCell[c], int32(t))
	}
	for _, c := range l0.live {
		h.recomputeCell(c)
	}
	l0.liveCount = len(l0.live)
	for lv := 0; lv+1 < len(h.levels); lv++ {
		cur, par := &h.levels[lv], &h.levels[lv+1]
		h.gen++
		for _, c := range cur.live {
			ncx, ncy := int(c)%cur.cols/2, int(c)/cur.cols/2
			pc := int32(ncy*par.cols + ncx)
			if par.stamp[pc] != h.gen {
				par.stamp[pc] = h.gen
				par.live = append(par.live, pc)
			}
		}
		for _, pc := range par.live {
			h.recomputeNode(lv+1, pc)
		}
		par.liveCount = len(par.live)
	}
	for _, c := range l0.live {
		h.bumpHot(c, +1)
	}
	h.aggEpoch++
	h.haveRound = true
}

// resetRound clears all aggregation state in O(touched nodes), leaving
// the engine as if no round had run.
func (h *HierEngine) resetRound() {
	for _, c := range h.levels[0].live {
		h.txInCell[c] = h.txInCell[c][:0]
	}
	for lv := range h.levels {
		l := &h.levels[lv]
		for _, c := range l.live {
			l.pow[c] = 0
			l.px[c] = 0
			l.py[c] = 0
		}
		l.live = l.live[:0]
		l.liveCount = 0
	}
	for _, c := range h.hotList {
		h.hotCnt[c] = 0
	}
	h.hotList = h.hotList[:0]
	h.hotCount = 0
	for _, t := range h.prevTx {
		h.isTx[t] = false
	}
	h.haveRound = false
}

// diffSorted fills h.departed (in prev, not in cur) and h.arrived (in
// cur, not in prev) from the two strictly increasing rounds.
func (h *HierEngine) diffSorted(prev, cur []int) {
	h.departed = h.departed[:0]
	h.arrived = h.arrived[:0]
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch {
		case prev[i] == cur[j]:
			i++
			j++
		case prev[i] < cur[j]:
			h.departed = append(h.departed, prev[i])
			i++
		default:
			h.arrived = append(h.arrived, cur[j])
			j++
		}
	}
	h.departed = append(h.departed, prev[i:]...)
	h.arrived = append(h.arrived, cur[j:]...)
}

// dirtyCell registers base cell c in the round's dirty set, returning
// its ordinal (with an empty arrival bucket ready).
func (h *HierEngine) dirtyCell(c int32) int32 {
	if h.dirtyGen[c] == h.gen {
		return h.dirtyOrd[c]
	}
	ord := int32(len(h.dirtyCells))
	h.dirtyGen[c] = h.gen
	h.dirtyOrd[c] = ord
	h.dirtyCells = append(h.dirtyCells, c)
	if int(ord) < len(h.arrivalBuf) {
		h.arrivalBuf[ord] = h.arrivalBuf[ord][:0]
	} else {
		h.arrivalBuf = append(h.arrivalBuf, nil)
	}
	return ord
}

// applyDelta updates the persisted aggregation incrementally from the
// departed/arrived diff: dirty cells rebuild their (ascending)
// transmitter lists by a filter-merge and recompute canonically, hot
// counts adjust only around liveness transitions, and each dirty
// ancestor chain recomputes from its children — bit-identical to a
// fresh build, in O(Δ·(cellPop + log cells + transitions·nearBox²)).
func (h *HierEngine) applyDelta() {
	if len(h.departed)+len(h.arrived) == 0 {
		return // identical round: aggregation (and epoch) unchanged
	}
	h.aggEpoch++
	l0 := &h.levels[0]
	h.gen++
	h.dirtyCells = h.dirtyCells[:0]
	for _, t := range h.departed {
		h.isTx[t] = false
		h.gone[t] = true
		h.dirtyCell(h.cellOf[t])
	}
	for _, t := range h.arrived {
		h.isTx[t] = true
		ord := h.dirtyCell(h.cellOf[t])
		h.arrivalBuf[ord] = append(h.arrivalBuf[ord], int32(t))
	}
	for ord, c := range h.dirtyCells {
		wasLive := len(h.txInCell[c]) > 0
		h.mergeCellList(c, h.arrivalBuf[ord])
		h.recomputeCell(c)
		nowLive := len(h.txInCell[c]) > 0
		if nowLive != wasLive {
			if nowLive {
				l0.live = append(l0.live, c)
				l0.liveCount++
				h.bumpHot(c, +1)
			} else {
				l0.liveCount--
				h.bumpHot(c, -1)
			}
		}
	}
	for _, t := range h.departed {
		h.gone[t] = false
	}
	// Propagate dirty ancestor chains, one dedup context per level.
	cur := h.dirtyCells
	for lv := 0; lv+1 < len(h.levels); lv++ {
		clv, par := &h.levels[lv], &h.levels[lv+1]
		h.gen++
		next := h.dirtyNodes[lv%2][:0]
		for _, c := range cur {
			ncx, ncy := int(c)%clv.cols/2, int(c)/clv.cols/2
			pc := int32(ncy*par.cols + ncx)
			if par.stamp[pc] != h.gen {
				par.stamp[pc] = h.gen
				next = append(next, pc)
			}
		}
		for _, pc := range next {
			was := par.pow[pc] != 0
			h.recomputeNode(lv+1, pc)
			if now := par.pow[pc] != 0; now != was {
				if now {
					par.live = append(par.live, pc)
					par.liveCount++
				} else {
					par.liveCount--
				}
			}
		}
		h.dirtyNodes[lv%2] = next
		cur = next
	}
}

// mergeCellList rebuilds cell c's transmitter list: survivors of the
// old list (ascending) merged with the cell's arrivals (ascending),
// preserving the canonical ascending order a fresh sorted-round
// bucketing would produce.
func (h *HierEngine) mergeCellList(c int32, arrived []int32) {
	old := h.txInCell[c]
	h.mergeBuf = h.mergeBuf[:0]
	i, j := 0, 0
	for i < len(old) {
		t := old[i]
		if h.gone[t] {
			i++
			continue
		}
		for j < len(arrived) && arrived[j] < t {
			h.mergeBuf = append(h.mergeBuf, arrived[j])
			j++
		}
		h.mergeBuf = append(h.mergeBuf, t)
		i++
	}
	h.mergeBuf = append(h.mergeBuf, arrived[j:]...)
	h.txInCell[c] = append(old[:0], h.mergeBuf...)
}

// compactLists drops stale dead entries (and duplicates) that long
// delta streaks accumulate in the live and hot lists, whenever a list
// outgrows twice its live population.
func (h *HierEngine) compactLists() {
	for lv := range h.levels {
		l := &h.levels[lv]
		if len(l.live) <= 2*l.liveCount+16 {
			continue
		}
		h.gen++
		keep := l.live[:0]
		for _, c := range l.live {
			if l.pow[c] != 0 && l.stamp[c] != h.gen {
				l.stamp[c] = h.gen
				keep = append(keep, c)
			}
		}
		l.live = keep
	}
	if len(h.hotList) > 2*h.hotCount+16 {
		h.gen++
		keep := h.hotList[:0]
		for _, b := range h.hotList {
			if h.hotCnt[b] > 0 && h.blockStamp[b] != h.gen {
				h.blockStamp[b] = h.gen
				keep = append(keep, b)
			}
		}
		h.hotList = keep
	}
}

// prepareRound brings the aggregation state up to date for round tx:
// the delta path when the previous and current rounds are both sorted
// and the churn is below the crossover, a reset + fresh build
// otherwise. Either way the resulting state is bit-identical.
func (h *HierEngine) prepareRound(tx []int) {
	// Generation counters wrap after ~10⁸ rounds; clear every stamp
	// array then so a stale stamp can never collide with a fresh
	// generation.
	if h.gen > math.MaxUint32-64 || h.aggEpoch > math.MaxUint32-2 {
		for lv := range h.levels {
			clear(h.levels[lv].stamp)
		}
		clear(h.blockStamp)
		clear(h.dirtyGen)
		clear(h.farEpoch)
		for i := range h.blockCache {
			h.blockCache[i].epoch = 0
		}
		h.gen, h.aggEpoch = 0, 1
		for i := range h.chunks {
			h.chunks[i].cachedBlock = -1
		}
	}
	sorted := isStrictlyIncreasing(tx)
	if h.haveRound && h.prevSorted && sorted && h.deltaCrossover > 0 {
		h.diffSorted(h.prevTx, tx)
		churn := len(h.departed) + len(h.arrived)
		if float64(churn) <= h.deltaCrossover*float64(len(h.prevTx)+len(tx)) {
			h.compactLists()
			h.applyDelta()
			h.recordPrev(tx, sorted)
			return
		}
	}
	if h.haveRound {
		h.resetRound()
	}
	h.aggregateFresh(tx)
	h.recordPrev(tx, sorted)
}

func (h *HierEngine) recordPrev(tx []int, sorted bool) {
	h.prevTx = append(h.prevTx[:0], tx...)
	h.prevSorted = sorted
}

func isStrictlyIncreasing(tx []int) bool {
	for i := 1; i < len(tx); i++ {
		if tx[i] <= tx[i-1] {
			return false
		}
	}
	return true
}

// --- Resolution --------------------------------------------------------

func (h *HierEngine) checkTx(tx []int) {
	for _, t := range tx {
		if t < 0 || t >= len(h.pts) {
			panic(fmt.Sprintf("sinr: transmitter %d out of range [0,%d)", t, len(h.pts)))
		}
	}
}

// buildWorkList collects the round's occupied hot blocks — the only
// blocks whose stations can decode anything. The hot list is already
// block-granular, so this is a filter pass (drop gone-cold and
// unoccupied blocks, dedup stale duplicates), not a projection from
// cells.
func (h *HierEngine) buildWorkList() {
	h.workList = h.workList[:0]
	h.gen++
	for _, b := range h.hotList {
		if h.hotCnt[b] == 0 {
			continue
		}
		if h.blockStart[b+1] > h.blockStart[b] && h.blockStamp[b] != h.gen {
			h.blockStamp[b] = h.gen
			h.workList = append(h.workList, b)
		}
	}
}

func (h *HierEngine) ensureChunks(n int) {
	for len(h.chunks) < n {
		h.chunks = append(h.chunks, hierChunk{cachedBlock: -1})
	}
}

// Resolve computes receptions for one round (see Engine.Resolve for
// semantics). The returned slice is owned by the engine and valid
// until the next Resolve call. Aggregation state persists across calls
// so consecutive rounds with overlapping transmitter sets resolve
// incrementally; results are bit-identical to a fresh engine's.
func (h *HierEngine) Resolve(tx []int) []Reception {
	if len(tx) == 0 {
		return nil
	}
	h.ensureRunState()
	h.checkTx(tx)
	h.prepareRound(tx)

	n := len(h.pts)
	if !h.memo {
		if h.workers > 1 && n >= h.minParallelN {
			ensureRunner(&h.par, h, h.workers, h.pinned)
			if h.rangeFn == nil {
				h.rangeFn = h.runChunkRange
			}
			h.out = h.par.runRange(n, h.workers, h.rangeFn, h.out)
		} else {
			h.out = h.collectRange(0, n, h.out[:0])
		}
		return h.out
	}

	h.buildWorkList()
	if h.workers > 1 && n >= h.minParallelN {
		h.out = h.runBlocks(nil)
	} else {
		h.out = h.collectBlocks(h.workList, nil, h.out[:0])
	}
	// Cell-ordered collection emits receptions grouped by receiver
	// cell; sort back to the ascending receiver order every engine
	// guarantees. Receivers are unique keys, so the order is total —
	// identical for any worker count and to the unmemoized path.
	slices.SortFunc(h.out, func(a, b Reception) int { return a.Receiver - b.Receiver })
	return h.out
}

// ResolveFor computes the receptions of one round restricted to the
// given receivers: byte-identical to Resolve(tx) filtered to the
// subset. receivers must be strictly increasing station indices.
func (h *HierEngine) ResolveFor(tx []int, receivers []int) []Reception {
	if len(tx) == 0 || len(receivers) == 0 {
		return nil
	}
	h.ensureRunState()
	checkReceivers(receivers, len(h.pts))
	h.checkTx(tx)
	h.prepareRound(tx)

	if !h.memo {
		h.out = h.resolveListDescent(receivers)
		return h.out
	}
	// Large subsets (an eighth of the network or more) pay for the
	// cell walk: mark the subset and reuse the whole-round path. Small
	// subsets iterate receivers directly — scattered cells build their
	// slabs lazily, one cell cache per worker, which never costs more
	// than the unmemoized per-receiver descent.
	if len(receivers)*8 >= len(h.pts) {
		if h.recvMask == nil {
			h.recvMask = make([]bool, len(h.pts))
		}
		for _, u := range receivers {
			h.recvMask[u] = true
		}
		h.buildWorkList()
		if h.workers > 1 && len(receivers) >= h.minParallelN {
			h.out = h.runBlocks(h.recvMask)
		} else {
			h.out = h.collectBlocks(h.workList, h.recvMask, h.out[:0])
		}
		for _, u := range receivers {
			h.recvMask[u] = false
		}
		slices.SortFunc(h.out, func(a, b Reception) int { return a.Receiver - b.Receiver })
		return h.out
	}
	if h.workers > 1 && len(receivers) >= h.minParallelN {
		ensureRunner(&h.par, h, h.workers, h.pinned)
		h.ensureChunks(h.workers)
		if h.listFn == nil {
			h.listFn = h.runChunkList
		}
		h.curRecv = receivers
		h.out = h.par.runRange(len(receivers), h.workers, h.listFn, h.out)
		h.curRecv = nil
	} else {
		h.ensureChunks(1)
		h.out = h.collectList(&h.chunks[0], receivers, h.out[:0])
	}
	return h.out
}

// resolveListDescent is the unmemoized ResolveFor body (subset loop
// over per-receiver descents), chunked like the other engines.
func (h *HierEngine) resolveListDescent(receivers []int) []Reception {
	if h.workers > 1 && len(receivers) >= h.minParallelN {
		ensureRunner(&h.par, h, h.workers, h.pinned)
		if h.descentFn == nil {
			h.descentFn = h.runChunkDescent
		}
		h.curRecv = receivers
		out := h.par.runRange(len(receivers), h.workers, h.descentFn, h.out)
		h.curRecv = nil
		return out
	}
	return h.collectListDescent(receivers, h.out[:0])
}

// runBlocks is the parallel memoized whole-round body (mask non-nil
// when a large ResolveFor restricts the round): every work-list block
// becomes one chunk, owned by worker blockID·W/nBlocks. Block ids are
// stable across rounds, so a block's owner — and therefore the worker
// whose cache holds its slabs and its receivers' far sums — never
// changes while the worker count does not; skewed block occupancy
// surfaces as queue imbalance that stealing rebalances.
func (h *HierEngine) runBlocks(mask []bool) []Reception {
	ensureRunner(&h.par, h, h.workers, h.pinned)
	if h.blockFn == nil {
		h.blockFn = h.runChunkBlock
	}
	h.par.prepare(len(h.workList))
	nBlocks := h.bcols * h.brows
	for i, b := range h.workList {
		h.par.owners[i] = int32(int(b) * h.workers / nBlocks)
	}
	h.curMask = mask
	out := h.par.runOwned(h.blockFn, h.out)
	h.curMask = nil
	return out
}

// runChunkBlock resolves the chunk-th work-list block against the
// shared per-block cache. Exactly one worker claims each chunk, so the
// block's cache entry and its receivers' far-sum entries keep a single
// writer per round even when the chunk is stolen.
func (h *HierEngine) runChunkBlock(chunk, worker int) {
	h.par.slots[chunk].out = h.collectBlocks(h.workList[chunk:chunk+1], h.curMask, h.par.slots[chunk].out[:0])
}

// runChunkRange resolves the chunk-th receiver range on the unmemoized
// whole-round path.
func (h *HierEngine) runChunkRange(chunk, worker int) {
	lo, hi := h.par.chunkRange(chunk, len(h.pts))
	h.par.slots[chunk].out = h.collectRange(lo, hi, h.par.slots[chunk].out[:0])
}

// runChunkList resolves the chunk-th contiguous slice of a small
// ResolveFor subset with the executing worker's private slabs (chunks
// from different regions may land on one worker under stealing; the
// (block, epoch) key on the private cache keeps reuse correct).
func (h *HierEngine) runChunkList(chunk, worker int) {
	lo, hi := h.par.chunkRange(chunk, len(h.curRecv))
	h.par.slots[chunk].out = h.collectList(&h.chunks[worker], h.curRecv[lo:hi], h.par.slots[chunk].out[:0])
}

// runChunkDescent resolves the chunk-th slice of an unmemoized
// ResolveFor subset.
func (h *HierEngine) runChunkDescent(chunk, worker int) {
	lo, hi := h.par.chunkRange(chunk, len(h.curRecv))
	h.par.slots[chunk].out = h.collectListDescent(h.curRecv[lo:hi], h.par.slots[chunk].out[:0])
}

// --- Frontier-memoized collection --------------------------------------

// gatherNear collects the transmitters of the block's union near box —
// the block's cell extent padded by the near-field radius, so every
// receiver in the block has its own near box covered — into the
// chunk's slabs, in (cell-row, cell-col, list) scan order. Every
// receiver of the block sums all of them exactly: a superset of its
// own near box, so the exact region only grows.
func (h *HierEngine) gatherNear(sl *blockSlabs, bx0, by0, bx1, by1 int) {
	sl.nearID = sl.nearID[:0]
	sl.nearX = sl.nearX[:0]
	sl.nearY = sl.nearY[:0]
	nc := h.nearCells
	y0, y1 := max(by0-nc, 0), min(by1+nc, h.rows-1)
	x0, x1 := max(bx0-nc, 0), min(bx1+nc, h.cols-1)
	for cy := y0; cy <= y1; cy++ {
		row := cy * h.cols
		for cx := x0; cx <= x1; cx++ {
			for _, t := range h.txInCell[row+cx] {
				sl.nearID = append(sl.nearID, t)
				sl.nearX = append(sl.nearX, h.ptsX[t])
				sl.nearY = append(sl.nearY, h.ptsY[t])
			}
		}
	}
}

// buildFrontier runs the shared Barnes–Hut descent for the receiver
// block with cell extent [bx0c,bx1c]×[by0c,by1c], emitting the
// accepted-node frontier every receiver in the block replays. A node
// wholly outside the block's union near box is accepted when θ holds
// at the point of the block's (padded) rectangle nearest to the node's
// center of mass — then it holds for every receiver position in the
// block — and descended otherwise; level-0 nodes outside the union box
// are always accepted, the leaf case of the per-receiver descent. The
// conservative test is monotone in IEEE arithmetic, so the frontier is
// a refinement of what any single receiver's own θ test would accept:
// receivers in the block share one descent and one set of
// center-of-mass divisions, at equal or better accuracy.
func (h *HierEngine) buildFrontier(sl *blockSlabs, bx0c, by0c, bx1c, by1c int) {
	sl.evX = sl.evX[:0]
	sl.evY = sl.evY[:0]
	sl.evP = sl.evP[:0]
	rx0 := h.minX + float64(bx0c)*h.cellSize - h.rectPad
	rx1 := h.minX + float64(bx1c+1)*h.cellSize + h.rectPad
	ry0 := h.minY + float64(by0c)*h.cellSize - h.rectPad
	ry1 := h.minY + float64(by1c+1)*h.cellSize + h.rectPad
	theta2 := h.theta2
	nc := h.nearCells
	var stackBuf [160]pyrNode
	stack := stackBuf[:0]
	top := len(h.levels) - 1
	if h.levels[top].pow[0] != 0 {
		stack = append(stack, pyrNode{lv: int32(top), idx: 0})
	}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lv := &h.levels[nd.lv]
		nx, ny := int(nd.idx)%lv.cols, int(nd.idx)/lv.cols
		shift := uint(nd.lv)
		bx0, by0 := nx<<shift, ny<<shift
		bx1, by1 := bx0+(1<<shift)-1, by0+(1<<shift)-1
		outsideNear := bx0 > bx1c+nc || bx1 < bx0c-nc || by0 > by1c+nc || by1 < by0c-nc
		if outsideNear {
			pow := lv.pow[nd.idx]
			cx := lv.px[nd.idx] / pow
			cy := lv.py[nd.idx] / pow
			accept := nd.lv == 0
			if !accept {
				// Nearest squared distance from the rectangle to the COM.
				dxn, dyn := 0.0, 0.0
				if cx < rx0 {
					dxn = rx0 - cx
				} else if cx > rx1 {
					dxn = cx - rx1
				}
				if cy < ry0 {
					dyn = ry0 - cy
				} else if cy > ry1 {
					dyn = cy - ry1
				}
				accept = lv.diam2 <= theta2*(dxn*dxn+dyn*dyn)
			}
			if accept {
				sl.evX = append(sl.evX, cx)
				sl.evY = append(sl.evY, cy)
				sl.evP = append(sl.evP, pow)
				continue
			}
		} else if nd.lv == 0 {
			continue // inside the near box: summed exactly already
		}
		child := &h.levels[nd.lv-1]
		cx0, cy0 := nx*2, ny*2
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				cx, cy := cx0+dx, cy0+dy
				if cx >= child.cols || cy >= child.rows {
					continue
				}
				ci := int32(cy*child.cols + cx)
				if child.pow[ci] != 0 {
					stack = append(stack, pyrNode{lv: nd.lv - 1, idx: ci})
				}
			}
		}
	}
}

// resolveReceiver resolves one receiver against the chunk's prepared
// slabs: an exact linear scan of the gathered near field (which also
// elects the decoding candidate), then the frontier replay — accepted
// nodes as flat multiply-adds, undecided subtrees by exact descent.
// Both loops normally run through the simd batch kernels (bit-exact
// unrolled scans, plus the opt-in assembly tier for the far replay);
// SetVectorized(false) restores the plain element loops below as the
// reference.
func (h *HierEngine) resolveReceiver(sl *blockSlabs, u int32, dst []Reception) []Reception {
	p := h.params
	pw := p.Power()
	kern := h.kern
	upx, upy := h.ptsX[u], h.ptsY[u]

	total := 0.0
	bestD2 := math.Inf(1)
	best := int32(-1)
	nx, ny, nid := sl.nearX, sl.nearY, sl.nearID
	if h.vec {
		// Rejection first: a pure-distance argmin with no kernel math.
		// Most stations of a hot block have no transmitter within the
		// communication range (only their block is hot, not their cell)
		// and bow out here without a single divide or square root. Only
		// decode candidates pay the kernel fold — which accumulates in
		// the same index order, so the split is bit-identical to the
		// fused scalar scan below (a rejected station's total is never
		// observed).
		bi, bd2 := simd.ArgMin(upx, upy, nx, ny, bestD2)
		if bi < 0 || bd2 > 1 {
			return dst
		}
		best, bestD2 = nid[bi], bd2
		total = kern.NearSum(pw, upx, upy, nx, ny, total)
	} else {
		for i := range nx {
			dx := upx - nx[i]
			dy := upy - ny[i]
			d2 := dx*dx + dy*dy
			total += pw * kern.FromDist2(d2)
			if d2 < bestD2 {
				bestD2 = d2
				best = nid[i]
			}
		}
	}
	if best < 0 || bestD2 > 1 {
		return dst
	}

	far := 0.0
	if h.farEpoch[u] == h.aggEpoch {
		far = h.farCache[u]
	} else {
		evX, evY, evP := sl.evX, sl.evY, sl.evP
		if h.vec {
			far = kern.FarSumFast(upx, upy, evX, evY, evP)
		} else {
			for i := range evX {
				dx := upx - evX[i]
				dy := upy - evY[i]
				far += evP[i] * kern.FromDist2(dx*dx+dy*dy)
			}
		}
		h.farCache[u] = far
		h.farEpoch[u] = h.aggEpoch
	}
	total += far

	s := pw * kern.FromDist2(bestD2)
	intf := total - s
	if intf < 0 {
		intf = 0
	}
	if p.Decodes(s, intf) {
		dst = append(dst, Reception{Receiver: int(u), Transmitter: int(best)})
	}
	return dst
}

// collectBlocks resolves every non-transmitting, unmasked station of
// the listed blocks (which are hot by construction of the work list)
// against the per-block slab cache: a block whose entry carries the
// current aggregation epoch replays its slabs as-is, otherwise the near
// gather and shared descent rebuild them — lazily, on the block's first
// eligible receiver — and restamp the entry. Each block runs in exactly
// one chunk, so each cache entry has a single writer per round.
// Receptions come out grouped by block; the caller sorts by receiver.
func (h *HierEngine) collectBlocks(blocks []int32, mask []bool, dst []Reception) []Reception {
	for _, b := range blocks {
		bc := &h.blockCache[b]
		fresh := bc.epoch == h.aggEpoch
		for si := h.blockStart[b]; si < h.blockStart[b+1]; si++ {
			u := h.blockItems[si]
			if h.isTx[u] || (mask != nil && !mask[u]) {
				continue
			}
			if !fresh {
				bx0, by0, bx1, by1 := h.blockCellRange(b)
				h.gatherNear(&bc.blockSlabs, bx0, by0, bx1, by1)
				h.buildFrontier(&bc.blockSlabs, bx0, by0, bx1, by1)
				bc.epoch = h.aggEpoch
				fresh = true
			}
			dst = h.resolveReceiver(&bc.blockSlabs, u, dst)
		}
	}
	return dst
}

// collectList resolves an explicit ascending receiver list with the
// memoized slabs. The shared per-block cache is read when its epoch is
// current (receiver-partitioned workers may visit the same block, so
// this path never writes it); on a miss the worker's private slabs are
// built and keyed by (block, epoch) — scattered small subsets degrade
// gracefully to one build per receiver, which costs about one
// unmemoized descent each.
func (h *HierEngine) collectList(ch *hierChunk, receivers []int, dst []Reception) []Reception {
	for _, u := range receivers {
		b := h.blockOfCell(h.cellOf[u])
		if h.hotCnt[b] == 0 || h.isTx[u] {
			continue
		}
		sl := &h.blockCache[b].blockSlabs
		if h.blockCache[b].epoch != h.aggEpoch {
			if ch.cachedBlock != b || ch.cachedEpoch != h.aggEpoch {
				bx0, by0, bx1, by1 := h.blockCellRange(b)
				h.gatherNear(&ch.blockSlabs, bx0, by0, bx1, by1)
				h.buildFrontier(&ch.blockSlabs, bx0, by0, bx1, by1)
				ch.cachedBlock = b
				ch.cachedEpoch = h.aggEpoch
			}
			sl = &ch.blockSlabs
		}
		dst = h.resolveReceiver(sl, int32(u), dst)
	}
	return dst
}

// --- Unmemoized reference collection -----------------------------------

func (h *HierEngine) collectRange(lo, hi int, dst []Reception) []Reception {
	for u := lo; u < hi; u++ {
		dst = h.collectOne(u, dst)
	}
	return dst
}

func (h *HierEngine) collectListDescent(receivers []int, dst []Reception) []Reception {
	for _, u := range receivers {
		dst = h.collectOne(u, dst)
	}
	return dst
}

// collectOne resolves receiver u with its own full pyramid descent —
// the unmemoized reference path (SetFrontierMemo(false)), applying the
// same block-rectangle θ classification and union near box as
// buildFrontier so its output is bit-identical to the memoized replay.
// Shared state is read-only here, so chunks run it concurrently; the
// descent order is fixed, so the accumulated float sums — and hence
// the output — are identical for every chunking.
func (h *HierEngine) collectOne(u int, dst []Reception) []Reception {
	uc := h.cellOf[u]
	if h.hotCnt[h.blockOfCell(uc)] == 0 || h.isTx[u] {
		return dst
	}
	p := h.params
	pw := p.Power()
	kern := h.kern
	nc := h.nearCells
	upx, upy := h.ptsX[u], h.ptsY[u]
	bx0, by0, bx1, by1 := h.blockCellRange(h.blockOfCell(uc))

	// Near field first: exact per-transmitter sums over the block's
	// union near box, which also finds the decoding candidate. If no
	// candidate lies within the communication range the round is over
	// for u and the far-field descent is skipped entirely.
	total := 0.0
	bestD2 := math.Inf(1)
	best := int32(-1)
	y0, y1 := max(by0-nc, 0), min(by1+nc, h.rows-1)
	x0, x1 := max(bx0-nc, 0), min(bx1+nc, h.cols-1)
	for cy := y0; cy <= y1; cy++ {
		row := cy * h.cols
		for cx := x0; cx <= x1; cx++ {
			for _, t := range h.txInCell[row+cx] {
				dx := upx - h.ptsX[t]
				dy := upy - h.ptsY[t]
				d2 := dx*dx + dy*dy
				total += pw * kern.FromDist2(d2)
				if d2 < bestD2 {
					bestD2 = d2
					best = t
				}
			}
		}
	}
	if best < 0 || bestD2 > 1 {
		return dst
	}

	total += h.farField(upx, upy, bx0, by0, bx1, by1)

	s := pw * kern.FromDist2(bestD2)
	intf := total - s
	if intf < 0 {
		intf = 0
	}
	if p.Decodes(s, intf) {
		dst = append(dst, Reception{Receiver: u, Transmitter: int(best)})
	}
	return dst
}

// farField sums the approximated interference outside the union near
// box of the receiver at (upx,upy), whose block has cell extent
// [bx0c,bx1c]×[by0c,by1c], by descending the pyramid from the root
// with buildFrontier's block-rectangle classification — one receiver's
// private replay of exactly the descent the frontier shares across the
// block. The DFS stack is bounded by 3 pending siblings per level;
// 4·levels slots leave slack for the root.
func (h *HierEngine) farField(upx, upy float64, bx0c, by0c, bx1c, by1c int) float64 {
	kern := h.kern
	theta2 := h.theta2
	nc := h.nearCells
	rx0 := h.minX + float64(bx0c)*h.cellSize - h.rectPad
	rx1 := h.minX + float64(bx1c+1)*h.cellSize + h.rectPad
	ry0 := h.minY + float64(by0c)*h.cellSize - h.rectPad
	ry1 := h.minY + float64(by1c+1)*h.cellSize + h.rectPad
	var stackBuf [160]pyrNode
	stack := stackBuf[:0]
	top := len(h.levels) - 1
	if h.levels[top].pow[0] != 0 {
		stack = append(stack, pyrNode{lv: int32(top), idx: 0})
	}
	sum := 0.0
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lv := &h.levels[nd.lv]
		nx, ny := int(nd.idx)%lv.cols, int(nd.idx)/lv.cols
		// Base-cell extent of the node: [bx0, bx1] × [by0, by1].
		shift := uint(nd.lv)
		bx0, by0 := nx<<shift, ny<<shift
		bx1, by1 := bx0+(1<<shift)-1, by0+(1<<shift)-1
		outsideNear := bx0 > bx1c+nc || bx1 < bx0c-nc || by0 > by1c+nc || by1 < by0c-nc
		if outsideNear {
			pow := lv.pow[nd.idx]
			cx := lv.px[nd.idx] / pow
			cy := lv.py[nd.idx] / pow
			accept := nd.lv == 0
			if !accept {
				dxn, dyn := 0.0, 0.0
				if cx < rx0 {
					dxn = rx0 - cx
				} else if cx > rx1 {
					dxn = cx - rx1
				}
				if cy < ry0 {
					dyn = ry0 - cy
				} else if cy > ry1 {
					dyn = cy - ry1
				}
				accept = lv.diam2 <= theta2*(dxn*dxn+dyn*dyn)
			}
			if accept {
				dx := upx - cx
				dy := upy - cy
				sum += pow * kern.FromDist2(dx*dx+dy*dy)
				continue
			}
		} else if nd.lv == 0 {
			continue // inside the near box: summed exactly already
		}
		// Recurse into the 2×2 children.
		child := &h.levels[nd.lv-1]
		cx0, cy0 := nx*2, ny*2
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				cx, cy := cx0+dx, cy0+dy
				if cx >= child.cols || cy >= child.rows {
					continue
				}
				ci := int32(cy*child.cols + cx)
				if child.pow[ci] != 0 {
					stack = append(stack, pyrNode{lv: nd.lv - 1, idx: ci})
				}
			}
		}
	}
	return sum
}
