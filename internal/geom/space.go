// Package geom models the metric spaces of the paper: stations are points
// in a metric with the bounded growth property of degree γ (§1.1). The
// Euclidean plane (γ=2) is the common case and has fast specializations;
// a line metric (γ=1) hosts the exponential-chain worst cases, and an
// explicit distance-matrix metric supports adversarial unit tests.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. Non-Euclidean spaces embed their
// points here too (the line uses X only), so simulation code can treat
// positions uniformly.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance to q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

func (p Point) String() string { return fmt.Sprintf("(%.4g,%.4g)", p.X, p.Y) }

// Space is a finite metric space over n points indexed 0..n-1.
//
// Implementations must be symmetric, satisfy the triangle inequality and
// have zero self-distance; CheckMetric verifies this for tests.
type Space interface {
	// Len returns the number of points.
	Len() int
	// Dist returns the distance between points i and j.
	Dist(i, j int) float64
	// Growth returns the bounded-growth degree γ of the space.
	Growth() float64
	// Position returns a planar embedding of point i (for visualization
	// and for the fast Euclidean path; only Euclidean implementations
	// guarantee Dist(i,j) == Position(i).Dist(Position(j))).
	Position(i int) Point
}

// Euclidean is the plane R² with γ = 2.
type Euclidean struct {
	Pts []Point
}

var _ Space = (*Euclidean)(nil)

// NewEuclidean wraps pts; the slice is used directly (not copied).
func NewEuclidean(pts []Point) *Euclidean { return &Euclidean{Pts: pts} }

// Len implements Space.
func (e *Euclidean) Len() int { return len(e.Pts) }

// Dist implements Space.
func (e *Euclidean) Dist(i, j int) float64 { return e.Pts[i].Dist(e.Pts[j]) }

// Growth implements Space. The plane has growth degree 2.
func (e *Euclidean) Growth() float64 { return 2 }

// Position implements Space.
func (e *Euclidean) Position(i int) Point { return e.Pts[i] }

// Line is the real line with γ = 1. It hosts the paper's footnote-2
// construction (station i at coordinate Σ 1/2^j) where granularity is
// exponential in n.
type Line struct {
	Coords []float64
}

var _ Space = (*Line)(nil)

// NewLine wraps coords; the slice is used directly (not copied).
func NewLine(coords []float64) *Line { return &Line{Coords: coords} }

// Len implements Space.
func (l *Line) Len() int { return len(l.Coords) }

// Dist implements Space.
func (l *Line) Dist(i, j int) float64 { return math.Abs(l.Coords[i] - l.Coords[j]) }

// Growth implements Space. The line has growth degree 1.
func (l *Line) Growth() float64 { return 1 }

// Position implements Space: the line embeds on the x-axis.
func (l *Line) Position(i int) Point { return Point{X: l.Coords[i]} }

// MatrixSpace is an explicit finite metric given by a distance matrix.
// It is intended for small adversarial tests; Growth is caller-declared.
type MatrixSpace struct {
	D      [][]float64
	Degree float64
	Embed  []Point // optional planar embedding for display; may be nil
}

var _ Space = (*MatrixSpace)(nil)

// NewMatrixSpace builds a MatrixSpace from a full symmetric matrix.
// It returns an error if the matrix is ragged, asymmetric, has nonzero
// diagonal, or violates the triangle inequality.
func NewMatrixSpace(d [][]float64, growth float64) (*MatrixSpace, error) {
	n := len(d)
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("geom: row %d has length %d, want %d", i, len(d[i]), n)
		}
		if d[i][i] != 0 {
			return nil, fmt.Errorf("geom: nonzero self-distance at %d", i)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d[i][j] != d[j][i] {
				return nil, fmt.Errorf("geom: asymmetric at (%d,%d)", i, j)
			}
			if d[i][j] < 0 {
				return nil, fmt.Errorf("geom: negative distance at (%d,%d)", i, j)
			}
		}
	}
	m := &MatrixSpace{D: d, Degree: growth}
	if err := CheckMetric(m); err != nil {
		return nil, err
	}
	return m, nil
}

// Len implements Space.
func (m *MatrixSpace) Len() int { return len(m.D) }

// Dist implements Space.
func (m *MatrixSpace) Dist(i, j int) float64 { return m.D[i][j] }

// Growth implements Space.
func (m *MatrixSpace) Growth() float64 { return m.Degree }

// Position implements Space. Without an embedding all points sit at the
// origin; distance-based code must use Dist, never Position, for metrics.
func (m *MatrixSpace) Position(i int) Point {
	if m.Embed != nil {
		return m.Embed[i]
	}
	return Point{}
}

// CheckMetric verifies symmetry, zero diagonal and the triangle
// inequality for every triple. O(n³): test use only.
func CheckMetric(s Space) error {
	n := s.Len()
	const tol = 1e-9
	for i := 0; i < n; i++ {
		if d := s.Dist(i, i); d != 0 {
			return fmt.Errorf("geom: Dist(%d,%d) = %v, want 0", i, i, d)
		}
		for j := i + 1; j < n; j++ {
			if math.Abs(s.Dist(i, j)-s.Dist(j, i)) > tol {
				return fmt.Errorf("geom: asymmetric at (%d,%d)", i, j)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if s.Dist(i, j) > s.Dist(i, k)+s.Dist(k, j)+tol {
					return fmt.Errorf("geom: triangle violated for (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	return nil
}
