package exp

import (
	"fmt"

	"sinrcast/internal/broadcast"
	"sinrcast/internal/coloring"
	"sinrcast/internal/network"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
	"sinrcast/internal/stats"
)

// E10ModelRobustness runs SBroadcast over three channel models: the
// paper's exact SINR channel, a Rayleigh-fading channel, and the
// weak-device channel of [16] (receptions beyond 1-ε dropped). The
// algorithms are unchanged — only the physical layer differs — so this
// measures how sensitive the paper's guarantees are to the channel
// abstraction.
func E10ModelRobustness(cfg Config) (*stats.Table, error) {
	net, err := genNet("uniform", cfg.Seed, map[string]float64{"n": float64(cfg.scaled(96, 32)), "density": 8})
	if err != nil {
		return nil, err
	}
	d, _ := net.Diameter()
	t := stats.NewTable(
		fmt.Sprintf("E10: SBroadcast under channel variations, uniform n=%d (D=%d)", net.N(), d),
		"channel", "median-rounds", "fails")

	channels := []struct {
		name string
		mk   func(*network.Network) (sim.Resolver, error)
	}{
		{"exact-sinr (paper)", nil},
		{"rayleigh-fading", func(n *network.Network) (sim.Resolver, error) {
			return sinr.NewFadingEngine(n.Space, n.Params, cfg.Seed+99)
		}},
		{"weak-device [16]", func(n *network.Network) (sim.Resolver, error) {
			return sinr.NewWeakDeviceEngine(n.Space, n.Params, n.Params.CommRadius())
		}},
	}
	for ci, ch := range channels {
		bc := bcastCfg(net)
		bc.Channel = ch.mk
		med, fails, err := medianRounds(cfg, 10, uint64(ci), func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunS(net, bc, seed, 0, 1)
		})
		if err != nil {
			// A channel that defeats the algorithm entirely is itself a
			// result; report it rather than failing the experiment.
			t.AddRow(ch.name, "did not complete", cfg.trials())
			continue
		}
		t.AddRow(ch.name, med, fails)
	}
	return t, nil
}

// E11ColoringAblation measures the two design choices DESIGN.md calls
// out: the Playoff scale-up cε (the "interference wall") and the
// Confirm amplification. For each variant it reports the Lemma 1 and
// Lemma 2 invariants on the dense-uniform family — the setting that
// stresses both mechanisms.
func E11ColoringAblation(cfg Config) (*stats.Table, error) {
	net, err := genNet("uniform", cfg.Seed, map[string]float64{"n": float64(cfg.scaled(256, 48)), "density": 32})
	if err != nil {
		return nil, err
	}
	base := coloring.DefaultParams(net.N(), net.Space.Growth(), net.Params.Eps)
	t := stats.NewTable(
		fmt.Sprintf("E11: coloring ablation, dense uniform n=%d", net.N()),
		"variant", "L1 maxMass", "L2 min/2pmax", "rounds")

	variants := []struct {
		name   string
		mutate func(*coloring.Params)
	}{
		{"default (ceps=144, confirm=2)", func(*coloring.Params) {}},
		{"weak wall (ceps=36)", func(p *coloring.Params) {
			p.CEps = 36
			p.PMax = 1 / (2 * p.CEps)
		}},
		{"no amplification (confirm=1)", func(p *coloring.Params) { p.Confirm = 1 }},
		{"single iteration (cprime=1, confirm=1)", func(p *coloring.Params) {
			p.CPrime = 1
			p.Confirm = 1
		}},
	}
	for vi, v := range variants {
		par := base
		v.mutate(&par)
		if err := par.Validate(); err != nil {
			return nil, fmt.Errorf("E11 %s: %w", v.name, err)
		}
		type invariants struct{ l1, l2 float64 }
		trials, err := runTrials(cfg, 11, uint64(vi), func(seed uint64) (invariants, error) {
			res, err := coloring.Run(net, par, seed)
			if err != nil {
				return invariants{}, err
			}
			return invariants{
				l1: coloring.CheckLemma1(net, res.Colors).MaxMass,
				l2: coloring.CheckLemma2(net, res.Colors).MinBestMass / par.FinalColor(),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		worstL1, worstL2 := 0.0, 1e18
		for _, inv := range trials {
			if inv.l1 > worstL1 {
				worstL1 = inv.l1
			}
			if inv.l2 < worstL2 {
				worstL2 = inv.l2
			}
		}
		t.AddRow(v.name, fmt.Sprintf("%.3f", worstL1), fmt.Sprintf("%.3f", worstL2), par.TotalRounds())
	}
	return t, nil
}
