package simd

import (
	"math"
	"testing"

	"sinrcast/internal/rng"
)

// kernelTolerance accepts a few ulps of divergence between a multiply
// chain and math.Pow: binary exponentiation of exponents ≤ 64 rounds at
// most ~log₂(64)+2 times.
const kernelTolerance = 1e-14

func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestKernelMatchesPow(t *testing.T) {
	alphas := []float64{1, 2, 2.5, 3, 3.5, 4, 4.5, 5, 6, 7, 7.5, 8, 11, 64, math.Pi, 2.0001}
	r := rng.New(42)
	for _, alpha := range alphas {
		k := NewKernel(alpha)
		if k.Alpha() != alpha {
			t.Fatalf("Alpha() = %v, want %v", k.Alpha(), alpha)
		}
		for i := 0; i < 2000; i++ {
			// Cover several magnitudes around the unit communication range.
			d := math.Exp(r.Range(math.Log(1e-3), math.Log(1e3)))
			want := math.Pow(d, -alpha)
			if e := relErr(k.FromDist(d), want); e > kernelTolerance {
				t.Fatalf("alpha=%v d=%v: FromDist err %v (got %v want %v)",
					alpha, d, e, k.FromDist(d), want)
			}
			d2 := d * d
			want2 := math.Pow(d2, -alpha/2)
			if e := relErr(k.FromDist2(d2), want2); e > kernelTolerance {
				t.Fatalf("alpha=%v d2=%v: FromDist2 err %v (got %v want %v)",
					alpha, d2, e, k.FromDist2(d2), want2)
			}
		}
	}
}

func TestKernelZeroDistanceIsInf(t *testing.T) {
	for _, alpha := range []float64{1, 2, 2.5, 3, 4, 6, math.Pi} {
		k := NewKernel(alpha)
		if !math.IsInf(k.FromDist(0), 1) {
			t.Errorf("alpha=%v: FromDist(0) = %v, want +Inf", alpha, k.FromDist(0))
		}
		if !math.IsInf(k.FromDist2(0), 1) {
			t.Errorf("alpha=%v: FromDist2(0) = %v, want +Inf", alpha, k.FromDist2(0))
		}
	}
}

func TestKernelModeSelection(t *testing.T) {
	cases := []struct {
		alpha float64
		mode  kernelMode
	}{
		{2, kernInvSq},
		{4, kernInvQuad},
		{6, kernEven},
		{3, kernOdd},
		{1, kernOdd},
		{2.5, kernHalf},
		{0.5, kernHalf},
		{math.Pi, kernPow},
		{65, kernPow}, // beyond the multiply-chain cap
		{2.0001, kernPow},
	}
	for _, c := range cases {
		if k := NewKernel(c.alpha); k.mode != c.mode {
			t.Errorf("alpha=%v: mode %d, want %d", c.alpha, k.mode, c.mode)
		}
	}
}
