package serve

import (
	"context"
	"fmt"
	"math"

	"sinrcast/internal/broadcast"
	"sinrcast/internal/exp"
	"sinrcast/internal/network"
	"sinrcast/internal/protocol"
	"sinrcast/internal/rng"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
	"sinrcast/internal/stats"
)

// PhysicsSpec overrides individual physical parameters; nil fields
// keep sinr.DefaultParams. Pointer fields distinguish "omitted" from
// an explicit zero (which would be invalid and must be reported, not
// silently defaulted).
type PhysicsSpec struct {
	Alpha *float64 `json:"alpha,omitempty"`
	Beta  *float64 `json:"beta,omitempty"`
	Noise *float64 `json:"noise,omitempty"`
	Eps   *float64 `json:"eps,omitempty"`
}

// JobRequest is the submission body of both transports (POST /v1/jobs
// and the job.submit RPC). Two kinds are accepted:
//
//   - run: Scenario and Protocol are compact specs
//     ("uniform:n=64", "decay"); the daemon generates the deployment
//     (through the warm-engine cache), runs Trials independent
//     protocol executions, and streams progress plus one result table.
//   - experiment: Experiment selects a suite runner (1–14, the same
//     map as cmd/experiments); Scenario/Protocol optionally restrict
//     the registry sweeps E12/E13 exactly like the CLI flags. The
//     result table is byte-identical to cmd/experiments with the same
//     seed, trials, scale, and engine.
type JobRequest struct {
	Scenario string       `json:"scenario,omitempty"`
	Protocol string       `json:"protocol,omitempty"`
	Engine   string       `json:"engine,omitempty"`
	Physics  *PhysicsSpec `json:"physics,omitempty"`
	Seed     uint64       `json:"seed"`
	Trials   int          `json:"trials,omitempty"`
	// ProgressEvery streams a progress event every that many resolved
	// rounds (run jobs only; 0 = the server default, < 0 = none).
	ProgressEvery int `json:"progress_every,omitempty"`
	// Experiment selects the experiment-suite job kind (1–14).
	Experiment int     `json:"experiment,omitempty"`
	Scale      float64 `json:"scale,omitempty"`
}

const maxTrials = 10000

func (r *JobRequest) isExperiment() bool { return r.Experiment != 0 }

func (r *JobRequest) engineName() string {
	if r.Engine != "" {
		return r.Engine
	}
	if r.isExperiment() {
		return "auto" // the cmd/experiments default (E14 is the only consumer)
	}
	return "exact" // the paper's model
}

func (r *JobRequest) trialCount() int {
	if r.Trials > 0 {
		return r.Trials
	}
	if r.isExperiment() {
		return 5 // the cmd/experiments default
	}
	return 1
}

func (r *JobRequest) scale() float64 {
	if r.Scale > 0 {
		return r.Scale
	}
	return 1
}

// physParams resolves the physics overrides over the defaults.
func (r *JobRequest) physParams() sinr.Params {
	p := sinr.DefaultParams()
	if r.Physics == nil {
		return p
	}
	if r.Physics.Alpha != nil {
		p.Alpha = *r.Physics.Alpha
	}
	if r.Physics.Beta != nil {
		p.Beta = *r.Physics.Beta
	}
	if r.Physics.Noise != nil {
		p.Noise = *r.Physics.Noise
	}
	if r.Physics.Eps != nil {
		p.Eps = *r.Physics.Eps
	}
	return p
}

// name is the display name shown in listings.
func (r *JobRequest) name() string {
	if r.isExperiment() {
		return fmt.Sprintf("E%d", r.Experiment)
	}
	return fmt.Sprintf("run %s alg=%s", r.Scenario, r.Protocol)
}

// validate rejects a request the daemon could never run. It is the
// 400-vs-500 boundary: everything caught here is the client's fault.
// Deployment-dependent failures (a source index beyond n, physics
// incompatible with the space's growth degree) surface later as job
// failures.
func (r *JobRequest) validate() error {
	if r.Physics != nil {
		for _, f := range []struct {
			name string
			v    *float64
		}{{"alpha", r.Physics.Alpha}, {"beta", r.Physics.Beta}, {"noise", r.Physics.Noise}, {"eps", r.Physics.Eps}} {
			if f.v != nil && (math.IsNaN(*f.v) || math.IsInf(*f.v, 0)) {
				return fmt.Errorf("physics.%s must be finite", f.name)
			}
		}
	}
	if r.Trials < 0 || r.Trials > maxTrials {
		return fmt.Errorf("trials must be in [0, %d]", maxTrials)
	}
	if _, err := protocol.NamedChannel(r.engineName()); err != nil {
		return err
	}
	if r.isExperiment() {
		if r.Experiment < 1 || r.Experiment > 14 {
			return fmt.Errorf("experiment must be in [1, 14], got %d", r.Experiment)
		}
		if r.Scenario != "" {
			if err := parseAndValidateScenario(r.Scenario); err != nil {
				return err
			}
		}
		if r.Protocol != "" {
			if err := parseAndValidateProtocol(r.Protocol); err != nil {
				return err
			}
		}
		if r.Scale < 0 {
			return fmt.Errorf("scale must be positive")
		}
		return nil
	}
	if r.Scenario == "" || r.Protocol == "" {
		return fmt.Errorf("a run job needs both scenario and protocol (or set experiment for the suite kind)")
	}
	if err := parseAndValidateScenario(r.Scenario); err != nil {
		return err
	}
	return parseAndValidateProtocol(r.Protocol)
}

func parseAndValidateScenario(s string) error {
	sp, err := scenario.Parse(s)
	if err != nil {
		return err
	}
	return scenario.Validate(sp)
}

func parseAndValidateProtocol(s string) error {
	sp, err := protocol.Parse(s)
	if err != nil {
		return err
	}
	return protocol.Validate(sp)
}

// cacheKey content-addresses a deployment plus its warmed engine: the
// canonical scenario spec, the canonical engine+physics key, and the
// generation seed. Everything that influences topology or Resolve
// output is in the key; nothing else is.
func cacheKey(spec scenario.Spec, engine string, phys sinr.Params, seed uint64) string {
	return fmt.Sprintf("%s|%s|seed=%d", spec.String(), sinr.EngineKey(engine, phys), seed)
}

// runCacheKey returns the warm-cache key a run job will touch;
// ok=false for experiment jobs (which bypass the serve cache) and for
// unparseable scenarios (validate rejects those with a better error).
func (r *JobRequest) runCacheKey() (string, bool) {
	if r.isExperiment() {
		return "", false
	}
	spec, err := scenario.Parse(r.Scenario)
	if err != nil {
		return "", false
	}
	return cacheKey(spec, r.engineName(), r.physParams(), r.Seed), true
}

// rewarm rebuilds one journaled deployment through the cache — the
// replay path's half of runSim's cache interaction, without running
// any trials. Failures are deliberately ignored: rewarming is an
// optimization, and a spec that no longer builds will be reported by
// the resubmitted job itself.
func (s *Server) rewarm(req *JobRequest) {
	scSpec, err := scenario.Parse(req.Scenario)
	if err != nil {
		return
	}
	phys := req.physParams()
	engine := req.engineName()
	key := cacheKey(scSpec, engine, phys, req.Seed)
	s.cache.Get(key,
		func() (*network.Network, error) { return scenario.Generate(scSpec, phys, req.Seed) },
		func(n *network.Network) (sim.Resolver, error) { return sinr.NewNamedEngine(engine, n.Space, n.Params) },
	)
}

// trialSeed derives the per-trial protocol seed from the request seed,
// mirroring exp.Config.trialSeed's shape (one derivation domain per
// job kind is unnecessary here: the request seed is already private to
// the job).
func trialSeed(seed uint64, trial int) uint64 {
	return rng.Derive(seed, uint64(trial))
}

// cancelPanic is the sentinel the progress observer throws to abort a
// protocol run whose job context was canceled; runTrial recovers it
// and converts it back into ctx.Err(). Resolver interfaces cannot
// return errors, so cancellation must unwind, not propagate.
type cancelPanic struct{}

// runSim executes a run job: deployment through the warm cache, then
// Trials sequential protocol executions over one request-private
// engine, each observed for progress streaming and cancellation.
func (s *Server) runSim(ctx context.Context, st *jobState, workers int) error {
	req := st.req
	scSpec, err := scenario.Parse(req.Scenario)
	if err != nil {
		return err
	}
	prSpec, err := protocol.Parse(req.Protocol)
	if err != nil {
		return err
	}
	phys := req.physParams()
	engine := req.engineName()
	key := cacheKey(scSpec, engine, phys, req.Seed)

	net, eng, hit, err := s.cache.Get(key,
		func() (*network.Network, error) { return scenario.Generate(scSpec, phys, req.Seed) },
		func(n *network.Network) (sim.Resolver, error) { return sinr.NewNamedEngine(engine, n.Space, n.Params) },
	)
	if err != nil {
		return err
	}
	st.log.append(event{Type: "cache", Job: st.id, Hit: boolp(hit), Key: key})
	if sw, ok := eng.(interface{ SetWorkers(int) }); ok {
		sw.SetWorkers(workers)
	}

	every := req.ProgressEvery
	if every == 0 {
		every = s.cfg.ProgressEvery
	}
	trials := req.trialCount()
	headers := []string{"trial", "seed", "rounds", "informed", "all", "phases", "tx", "rx"}
	tb := stats.NewTable(
		fmt.Sprintf("run %s alg=%s %s seed=%d", scSpec, prSpec, sinr.EngineKey(engine, phys), req.Seed),
		headers...)

	// Resume at the journaled high-water mark: completed-trial rows from
	// the previous incarnation are restored verbatim (AddRow already
	// stringified them, so the JSON round trip is exact) and the loop
	// starts at the first missing trial. Per-trial seeds are pure
	// derivations of the request seed, so the recomputed tail is
	// byte-identical to an uninterrupted run.
	start := 0
	if resume := st.resumeRows; len(resume) > 0 {
		if len(resume) > trials {
			resume = resume[:trials]
		}
		ok := true
		for _, row := range resume {
			if len(row) != len(headers) {
				ok = false // schema drift: recompute everything
				break
			}
		}
		if ok {
			tb.Rows = append(tb.Rows, resume...)
			start = len(resume)
			st.log.append(event{Type: "resume", Job: st.id, Trial: intp(start)})
		}
	}

	for t := start; t < trials; t++ {
		seed := trialSeed(req.Seed, t)
		res, err := runTrial(ctx, st, net, prSpec, seed, eng, t, every)
		if err != nil {
			return err
		}
		informed := 0
		for _, at := range res.InformTime {
			if at >= 0 {
				informed++
			}
		}
		tb.AddRow(t, seed, res.Rounds, informed, res.AllInformed, res.Phases,
			res.Metrics.Transmissions, res.Metrics.Receptions)
		s.journal.Append(journalRecord{Op: "trial", ID: st.id, Trial: t, Row: tb.Rows[len(tb.Rows)-1]})
	}
	st.setTable(tb)
	return nil
}

// runTrial runs one protocol execution with the observer wrapper
// installed: every resolved round checks the job context (panicking
// the cancel sentinel out of the run) and streams a progress event at
// the configured cadence.
func runTrial(ctx context.Context, st *jobState, net *network.Network, spec protocol.Spec,
	seed uint64, eng sim.Resolver, trial, every int) (res *broadcast.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(cancelPanic); ok {
				err = ctx.Err()
				if err == nil {
					err = context.Canceled
				}
				return
			}
			panic(r)
		}
	}()
	ch := func(*network.Network) (sim.Resolver, error) {
		return sim.ObserveRounds(eng, func(round, tx, rec int) {
			if ctx.Err() != nil {
				panic(cancelPanic{})
			}
			if every > 0 && round%every == 0 {
				st.log.append(event{Type: "progress", Job: st.id,
					Trial: intp(trial), Round: intp(round), Tx: intp(tx), Rec: intp(rec)})
			}
		}), nil
	}
	return protocol.RunOn(net, spec, seed, ch)
}

// expRunners mirrors cmd/experiments' runner map; the CI daemon smoke
// relies on the two producing byte-identical tables for the same
// configuration.
var expRunners = map[int]struct {
	name string
	run  func(exp.Config) (*stats.Table, error)
}{
	1:  {"E1", exp.E1NoSBroadcastVsD},
	2:  {"E2", exp.E2SBroadcastScaling},
	3:  {"E3", exp.E3Lemma1},
	4:  {"E4", exp.E4Lemma2},
	5:  {"E5", exp.E5ColoringRounds},
	6:  {"E6", exp.E6GeometryImpact},
	7:  {"E7", exp.E7BaselineComparison},
	8:  {"E8", exp.E8Applications},
	9:  {"E9", exp.E9SuccessProbability},
	10: {"E10", exp.E10ModelRobustness},
	11: {"E11", exp.E11ColoringAblation},
	12: {"E12", exp.E12CrossFamilySweep},
	13: {"E13", exp.E13ProtocolMatrix},
	14: {"E14", exp.E14LargeNScaling},
}

// runExperiment executes an experiment-suite job. Suite runners manage
// their own trial concurrency and cannot be interrupted mid-run; the
// context is honored between submission and start (the jobs layer
// skips canceled queued jobs) and checked once more here.
func (s *Server) runExperiment(ctx context.Context, st *jobState, workers int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	req := st.req
	r, ok := expRunners[req.Experiment]
	if !ok {
		return fmt.Errorf("no experiment %d", req.Experiment)
	}
	cfg := exp.Config{
		Seed:     req.Seed,
		Trials:   req.trialCount(),
		Scale:    req.scale(),
		Workers:  workers,
		Scenario: req.Scenario,
		Protocol: req.Protocol,
		Engine:   req.engineName(),
	}
	if s.journal != nil {
		// Checkpoint completed trials into the journal and restore the
		// ones the previous incarnation finished, so a crashed
		// experiment resumes at its high-water mark instead of
		// recomputing every trial.
		cfg.Checkpoint = &journalCheckpoint{journal: s.journal, id: st.id, restored: st.resumeTrials}
	}
	tb, err := r.run(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", r.name, err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st.setTable(tb)
	return nil
}

// journalCheckpoint adapts the write-ahead journal to
// exp.TrialCheckpoint: Store appends one etrial record per completed
// trial, Load answers from the records replayed at startup. restored
// is read-only after replay, and Journal.Append serializes internally,
// so concurrent trials need no extra locking here.
type journalCheckpoint struct {
	journal  *Journal
	id       string
	restored map[trialKey][]byte
}

func (jc *journalCheckpoint) Load(expID, point uint64, trial int) ([]byte, bool) {
	data, ok := jc.restored[trialKey{expID, point, trial}]
	return data, ok
}

func (jc *journalCheckpoint) Store(expID, point uint64, trial int, data []byte) {
	jc.journal.Append(journalRecord{Op: "etrial", ID: jc.id, Exp: expID, Point: point, Trial: trial, Data: data})
}
