package exp

import (
	"fmt"
	"math"
	"time"

	"sinrcast/internal/baseline"
	"sinrcast/internal/broadcast"
	"sinrcast/internal/network"
	"sinrcast/internal/protocol"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
	"sinrcast/internal/stats"
)

// E14LargeNScaling measures how far the engine stack carries the
// paper's algorithms: NoSBroadcast and the Decay flood on uniform and
// starclusters deployments at n ∈ {10⁴, 10⁵, 10⁶} (times Config.Scale),
// resolved by the engine Config.Engine selects (default "auto" — exact
// below a few thousand stations, grid at mid scale, the hierarchical
// far-field pyramid beyond; see sinr.Choose).
//
// Unlike E1–E13 this is a throughput experiment, not a completion
// experiment: each run is capped at ⌈2·lg²n⌉ rounds — enough to watch
// the broadcast wavefront move, far too few to cover a million-station
// diameter — and the table reports how far the message got (informed%)
// next to the wall-clock round throughput. That bounded budget is
// itself a finding at the top sizes: NoSBroadcast spends a Θ(lg² n)
// coloring preamble (with a constant well above 2) before its first
// data transmission, so its informed% stays ≈0 at n ≥ 10⁵ while decay
// pushes its wavefront hundreds of hops — the engine, not the
// algorithm, is what scales here. The deterministic columns
// (rounds, informed%, receptions) are bit-identical across Workers;
// the rounds/s column measures this machine and is annotated as such.
//
// Deployment shapes scale realistically: uniform holds per-ball density
// at ln(n)+3 (the connectivity threshold grows with ln n, and retrying
// a disconnected million-station sample is the real cost), and
// starclusters grows its relay arms, not its cluster blobs, so density
// stays bounded while the diameter explodes — the geometry the paper's
// granularity analysis is about.
func E14LargeNScaling(cfg Config) (*stats.Table, error) {
	engine := cfg.Engine
	if engine == "" {
		engine = "auto"
	}
	ch, err := protocol.NamedChannel(engine)
	if err != nil {
		return nil, fmt.Errorf("E14: %w", err)
	}
	t := stats.NewTable(
		fmt.Sprintf("E14: large-n scaling, engine=%s, budget 2·lg²n rounds (rounds/s is wall-clock, machine-dependent)", engine),
		"family", "n", "engine", "alg", "rounds", "informed%", "receptions", "rounds/s")
	for _, base := range []int{10000, 100000, 1000000} {
		n := cfg.scaled(base, 48)
		for _, fam := range []string{"uniform", "starclusters"} {
			spec := scalingSpec(fam, n)
			net, err := scenario.Generate(spec, physParams(), cfg.Seed+uint64(base))
			if err != nil {
				return nil, fmt.Errorf("E14 %s n=%d: %w", fam, n, err)
			}
			kind := sinrKindFor(engine, net)
			budget := int(math.Ceil(2 * lg2(net.N()) * lg2(net.N())))
			// Large points cap their trial count: a 10⁶-station trial is
			// minutes of work and the medians stabilize quickly.
			trials := cfg.trials()
			if n >= 100000 && trials > 2 {
				trials = 2
			}
			// All trials at this point share one deployment, so they
			// share one engine pool: the first trial pays the topology
			// construction, later ones clone or recycle (engine purity
			// makes reuse byte-identical; see SetEnginePooling).
			pool := newEnginePool(func() (sim.Resolver, error) {
				if ch != nil {
					return ch(net)
				}
				return sinr.NewEngine(net.Space, net.Params)
			})
			for ai, alg := range []string{"nos", "decay"} {
				point := matrixKey(fam, fmt.Sprintf("%d/%s", base, alg))
				runs, err := runNTrials(cfg, trials, 14, point+uint64(ai), func(seed uint64) (scalingRun, error) {
					phys, err := pool.get()
					if err != nil {
						return scalingRun{}, err
					}
					defer pool.put(phys)
					return scalingTrial(net, alg, seed, budget, phys)
				})
				if err != nil {
					return nil, fmt.Errorf("E14 %s n=%d %s: %w", fam, n, alg, err)
				}
				var rounds, informed, recs, rps []float64
				for _, r := range runs {
					rounds = append(rounds, float64(r.rounds))
					informed = append(informed, 100*float64(r.informed)/float64(net.N()))
					recs = append(recs, float64(r.receptions))
					rps = append(rps, r.roundsPerSec)
				}
				t.AddRow(fam, net.N(), string(kind), alg,
					fmt.Sprintf("%.0f", stats.Summarize(rounds).Median),
					fmt.Sprintf("%.1f", stats.Summarize(informed).Median),
					fmt.Sprintf("%.0f", stats.Summarize(recs).Median),
					fmt.Sprintf("%.0f", stats.Summarize(rps).Median))
			}
		}
	}
	return t, nil
}

// scalingRun is one trial's measurements.
type scalingRun struct {
	rounds       int
	informed     int
	receptions   int64
	roundsPerSec float64
}

// scalingTrial runs one bounded trial of alg on net, resolving rounds
// with the pool-provided engine phys (nil falls back to each runner's
// default exact engine).
func scalingTrial(net *network.Network, alg string, seed uint64, budget int, phys sim.Resolver) (scalingRun, error) {
	start := time.Now()
	var res *broadcast.Result
	var err error
	switch alg {
	case "nos":
		bc := bcastCfg(net)
		bc.MaxRounds = budget
		if phys != nil {
			bc.Channel = func(*network.Network) (sim.Resolver, error) { return phys, nil }
		}
		res, err = broadcast.RunNoS(net, bc, seed, 0, 1)
	case "decay":
		res, err = baseline.RunFloodOn(net, baseline.NewDecay(net.N()), seed, 0, budget, phys)
	default:
		err = fmt.Errorf("exp: unknown scaling algorithm %q", alg)
	}
	if err != nil {
		return scalingRun{}, err
	}
	elapsed := time.Since(start).Seconds()
	run := scalingRun{rounds: res.Metrics.Rounds, receptions: res.Metrics.Receptions}
	for _, it := range res.InformTime {
		if it >= 0 {
			run.informed++
		}
	}
	if elapsed > 0 {
		run.roundsPerSec = float64(res.Metrics.Rounds) / elapsed
	}
	return run, nil
}

// scalingSpec sizes one E14 family to ≈n stations.
func scalingSpec(fam string, n int) scenario.Spec {
	switch fam {
	case "uniform":
		return scenario.Spec{Family: "uniform", Params: map[string]float64{
			"n":       float64(n),
			"density": math.Ceil(math.Log(float64(n))) + 3,
		}}
	case "starclusters":
		// Fixed 5 arms and bounded cluster blobs; the arms' relay
		// chains absorb the growth, so n drives diameter, not density.
		m := n / 16
		if m > 2000 {
			m = 2000
		}
		if m < 2 {
			m = 2
		}
		hops := (n - 6*m) / 5
		if hops < 1 {
			hops = 1
		}
		return scenario.Spec{Family: "starclusters", Params: map[string]float64{
			"arms": 5, "m": float64(m), "hops": float64(hops),
		}}
	default:
		return scenario.Spec{Family: fam, Params: map[string]float64{"n": float64(n)}}
	}
}

// sinrKindFor resolves the engine kind actually used for a network
// under the given selection (what "auto" picked).
func sinrKindFor(engine string, net *network.Network) sinr.EngineKind {
	if engine == "auto" {
		return sinr.Choose(net.Space, net.Params, sinr.AccuracyBalanced)
	}
	return sinr.EngineKind(engine)
}
