// Package serve is the sinrcastd control plane: simulation as a
// service over the same registries the CLIs use. Clients submit a
// scenario spec, a protocol spec (or an experiment-suite selection),
// physics overrides, and a seed; the daemon answers job handles that
// can be polled, canceled, streamed round-by-round as NDJSON, and
// rendered as the text/CSV/JSON tables of stats.NewSink — byte-
// identical to the batch CLIs for the same configuration.
//
// Two layers do the heavy lifting. internal/jobs bounds admission: a
// fixed-depth queue that rejects with 429 + Retry-After when full, a
// fixed worker pool, per-job cancellation, and a graceful drain on
// shutdown. The warm-engine Cache content-addresses deployments by
// (scenario spec, engine+physics key, seed): a miss generates the
// topology and constructs the engine once; every request — including
// the missing one — receives a ~sub-microsecond clone sharing the
// immutable topology slabs, so repeated studies over one deployment
// pay generation and construction exactly once.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sinrcast/internal/jobs"
	"sinrcast/internal/stats"
)

// Config sizes a Server. The zero value is serviceable: jobs.Config
// defaults, a DefaultCacheBytes cache, progress every 256 rounds.
type Config struct {
	// Jobs configures the admission queue and worker pool.
	Jobs jobs.Config
	// CacheBytes is the warm-engine cache budget: 0 selects
	// DefaultCacheBytes, negative disables caching.
	CacheBytes int64
	// ProgressEvery is the default progress-event cadence in resolved
	// rounds for run jobs that do not set their own (0 selects 256,
	// negative disables progress events).
	ProgressEvery int
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = 256
	}
	return c
}

// jobState pairs a jobs.Handle with the serve-side artifacts: the
// original request, the event log feeding /stream, and the result
// table.
type jobState struct {
	id     string
	req    *JobRequest
	handle *jobs.Handle
	log    *eventLog

	mu    sync.Mutex
	table *stats.Table
}

func (st *jobState) setTable(t *stats.Table) {
	st.mu.Lock()
	st.table = t
	st.mu.Unlock()
	st.log.append(event{Type: "table", Job: st.id, Table: t})
}

func (st *jobState) getTable() *stats.Table {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.table
}

// Server is the daemon state: manager, cache, and the job registry.
type Server struct {
	cfg   Config
	mgr   *jobs.Manager
	cache *Cache

	mu     sync.Mutex
	states map[string]*jobState

	// runHook, when set by tests, runs at the start of every job body
	// with the job id; it lets tests gate job execution
	// deterministically (backpressure, cancellation, shutdown).
	runHook func(id string)
}

// New builds a Server with its own jobs.Manager and warm-engine cache.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:    cfg,
		mgr:    jobs.New(cfg.Jobs),
		cache:  NewCache(cfg.CacheBytes),
		states: make(map[string]*jobState),
	}
}

// Cache exposes the warm-engine cache (benchmarks and tests).
func (s *Server) Cache() *Cache { return s.cache }

// Shutdown drains the daemon: submissions are rejected, queued jobs
// fail cleanly, in-flight jobs finish (or are force-canceled when ctx
// expires). See jobs.Manager.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.mgr.Shutdown(ctx)
}

// Handler returns the HTTP API:
//
//	GET    /healthz              liveness
//	POST   /v1/jobs              submit a JobRequest → 202 {id, state}
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/jobs/{id}/stream  NDJSON event stream (replays history)
//	GET    /v1/jobs/{id}/result  result table; ?format=text|csv|json, ?wait=1
//	GET    /v1/cache             cache + queue statistics
//	POST   /rpc                  JSON-RPC 2.0 (job.submit/status/cancel/list, cache.stats)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/cache", s.handleCacheStats)
	mux.HandleFunc("POST /rpc", s.handleRPC)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}

// submit validates and admits a request, returning the job state or an
// admission error. Both transports (REST and RPC) route through it.
func (s *Server) submit(req *JobRequest) (*jobState, error) {
	if err := req.validate(); err != nil {
		return nil, &badRequestError{err}
	}
	st := &jobState{req: req, log: newEventLog()}
	// st.id and st.handle are assigned only after Submit returns, but a
	// worker may pick the job up immediately; ready gates the closure so
	// it never observes them half-initialized (and so the "queued" event
	// always precedes "running" in the log).
	ready := make(chan struct{})
	run := func(ctx context.Context, engineWorkers int) error {
		<-ready
		if s.runHook != nil {
			s.runHook(st.id)
		}
		st.log.append(event{Type: "state", Job: st.id, State: string(jobs.StateRunning)})
		var err error
		if req.isExperiment() {
			err = s.runExperiment(ctx, st, engineWorkers)
		} else {
			err = s.runSim(ctx, st, engineWorkers)
		}
		return err
	}
	h, err := s.mgr.Submit(req.name(), run)
	if err != nil {
		return nil, err
	}
	st.id = h.ID()
	st.handle = h
	s.mu.Lock()
	s.states[st.id] = st
	s.pruneLocked()
	s.mu.Unlock()
	st.log.append(event{Type: "state", Job: st.id, State: string(jobs.StateQueued)})
	close(ready)
	// Close the event stream with the terminal state once the job
	// finishes, whatever path it took.
	go func() {
		<-h.Done()
		state, jerr := h.State()
		e := event{Type: "state", Job: st.id, State: string(state)}
		if jerr != nil {
			e.Error = jerr.Error()
		}
		st.log.append(e)
		st.log.close()
	}()
	return st, nil
}

// maxStates mirrors the jobs layer's retention bound for the
// serve-side artifacts (event logs, tables).
const maxStates = 4096

func (s *Server) pruneLocked() {
	if len(s.states) <= maxStates {
		return
	}
	for id, st := range s.states {
		if len(s.states) <= maxStates {
			break
		}
		if state, _ := st.handle.State(); state.Terminal() {
			if _, known := s.mgr.Get(id); !known {
				delete(s.states, id)
			}
		}
	}
}

type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	st, err := s.submit(&req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	state, _ := st.handle.State()
	writeJSON(w, http.StatusAccepted, map[string]any{"id": st.id, "state": string(state)})
}

func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case isBadRequest(err):
		writeError(w, http.StatusBadRequest, "%v", err)
	case err == jobs.ErrQueueFull:
		// Backpressure, not failure: the client should retry after the
		// queue drains a little.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case err == jobs.ErrShutdown:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func isBadRequest(err error) bool {
	var bad *badRequestError
	return errors.As(err, &bad)
}

// statusJSON is the wire form of one job's status.
type statusJSON struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	Result   bool   `json:"result"`
}

func (s *Server) status(st *jobState) statusJSON {
	state, err := st.handle.State()
	created, started, finished := st.handle.Times()
	out := statusJSON{
		ID:      st.id,
		Name:    st.handle.Name(),
		State:   string(state),
		Created: created.UTC().Format(time.RFC3339Nano),
		Result:  st.getTable() != nil,
	}
	if err != nil {
		out.Error = err.Error()
	}
	if !started.IsZero() {
		out.Started = started.UTC().Format(time.RFC3339Nano)
	}
	if !finished.IsZero() {
		out.Finished = finished.UTC().Format(time.RFC3339Nano)
	}
	return out
}

func (s *Server) state(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	return st, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var out []statusJSON
	for _, h := range s.mgr.Jobs() {
		if st, ok := s.state(h.ID()); ok {
			out = append(out, s.status(st))
		}
	}
	if out == nil {
		out = []statusJSON{}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.state(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(st))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.state(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	st.handle.Cancel()
	writeJSON(w, http.StatusOK, s.status(st))
}

// handleStream replays the job's event log as NDJSON and follows it
// until the job reaches a terminal state or the client goes away. Each
// line is flushed immediately — this is the live progress feed.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	st, ok := s.state(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	offset := 0
	for {
		lines, closed, wake := st.log.next(offset)
		for _, line := range lines {
			// line is shared by every stream of this job; appending the
			// newline in place would race on the slice's spare capacity.
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
		}
		offset += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// handleResult renders the job's result table through stats.NewSink —
// the same renderer as the batch CLIs, so the bytes are directly
// comparable. ?wait=1 blocks until the job finishes; otherwise a job
// without a table yet answers 409.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, ok := s.state(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	valid := false
	for _, f := range stats.SinkFormats() {
		if f == format {
			valid = true
		}
	}
	if !valid {
		writeError(w, http.StatusBadRequest, "unknown format %q (want one of %v)", format, stats.SinkFormats())
		return
	}
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		if err := st.handle.Wait(r.Context()); err != nil && r.Context().Err() != nil {
			return // client went away
		}
	}
	state, jerr := st.handle.State()
	if jerr != nil {
		writeError(w, http.StatusUnprocessableEntity, "job %s %s: %v", st.id, state, jerr)
		return
	}
	tb := st.getTable()
	if tb == nil {
		writeError(w, http.StatusConflict, "job %s is %s; no result yet (use ?wait=1)", st.id, state)
		return
	}
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
	case "json":
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	sink, err := stats.NewSink(format, w)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := sink.Emit(tb); err == nil {
		sink.Close()
	}
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"cache": s.cache.Stats(),
		"jobs":  s.mgr.Stats(),
	})
}
