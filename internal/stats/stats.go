// Package stats provides the summary statistics, least-squares fits and
// text tables the experiment harness reports with.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds standard descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P90              float64
}

// Summarize computes a Summary; an empty sample returns the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of a sorted sample by
// linear interpolation. Panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LinFit fits y = a + b·x by least squares and returns (a, b, r²).
// Fewer than two points return zeros.
func LinFit(xs, ys []float64) (a, b, r2 float64) {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return 0, 0, 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return my, 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// PowerFit fits y = c·x^k by log-log least squares and returns (c, k,
// r²). All inputs must be positive; non-positive pairs are skipped.
func PowerFit(xs, ys []float64) (c, k, r2 float64) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	a, b, r := LinFit(lx, ly)
	return math.Exp(a), b, r
}

// Ratio returns a/b guarding against division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

// FormatSummary renders a Summary compactly.
func FormatSummary(s Summary) string {
	return fmt.Sprintf("n=%d mean=%.1f median=%.1f p90=%.1f min=%.0f max=%.0f",
		s.N, s.Mean, s.Median, s.P90, s.Min, s.Max)
}
