// Package sinrcast is a simulation library for ad hoc wireless
// communication under the SINR physical model, reproducing
//
//	"On the Impact of Geometry on Ad Hoc Communication in Wireless
//	Networks", Jurdziński, Kowalski, Różański, Stachowiak (PODC 2014).
//
// The package provides:
//
//   - an exact SINR reception engine over bounded-growth metric spaces;
//   - a scenario registry of topology families (uniform, grid, path,
//     clusters, gaussian, corridor, the paper's granularity-exponential
//     chain, annulus rings, dumbbells, perforated grids, density
//     gradients, cluster stars) built from declarative Specs
//     ("uniform:n=256,density=8" — see ParseSpec, Generate,
//     ScenarioCatalogue);
//   - the paper's distributed coloring primitive StabilizeProbability
//     (§3) with Lemma 1 / Lemma 2 invariant checkers;
//   - the broadcast algorithms NoSBroadcast (Theorem 1, non-spontaneous
//     wake-up, O(D log² n)) and SBroadcast (Theorem 2, spontaneous
//     wake-up, O(D log n + log² n));
//   - the §5 applications: ad hoc wake-up, consensus and leader
//     election;
//   - baseline algorithms (Decay, a Daum-et-al-style granularity-
//     sensitive sweep, density-oracle flooding, GPS grid TDMA);
//   - a protocol registry mirroring the scenario registry: every
//     algorithm above is a named, self-describing entry runnable from
//     a declarative ProtocolSpec ("nos:budgetmul=2,source=5" — see
//     ParseProtocol, RunProtocol, ProtocolCatalogue).
//
// Quick start:
//
//	net, err := sinrcast.GenerateUniform(sinrcast.DefaultPhysical(), 128, 8, 1)
//	if err != nil { ... }
//	res, err := sinrcast.Broadcast(net, sinrcast.Options{Seed: 7})
//	fmt.Println(res.Rounds, res.AllInformed)
//
// All randomness is seed-driven and runs reproduce bit-for-bit. See
// DESIGN.md for the architecture and EXPERIMENTS.md for the measured
// reproduction of every quantitative claim in the paper.
//
// # Performance architecture
//
// The simulation core is built to exploit all available cores without
// giving up reproducibility, at three layers:
//
//   - Kernel: path loss d^-α is evaluated by a strategy specialized at
//     engine construction for the exponent's shape (α=2 → 1/d², α=4 →
//     1/(d²·d²), integer and half-integer α → multiply chains plus at
//     most two square roots, math.Pow only for irrational α), so the
//     innermost per-pair statement is branch-free multiplies.
//   - Engine parallelism: every engine cuts a round into work chunks
//     executed by a work-stealing scheduler (internal/sinr/sched):
//     each chunk has a stable owner worker — the hier engine chunks at
//     its 16×16-cell receiver blocks, so a block's cached slabs stay
//     with one worker across rounds — and idle workers steal whole
//     chunks from other workers' queues when the load skews. Per-chunk
//     output slots merged in chunk order keep the reception list
//     byte-identical to the serial result for every worker count and
//     every steal interleaving (Engine.SetWorkers; default
//     runtime.GOMAXPROCS(0); small rounds stay serial below a
//     crossover size). Engine.SetPinned optionally pins workers to
//     CPUs, assigned NUMA-node-first from the sysfs topology
//     (internal/cputopo), for stable core-local caches on multi-socket
//     machines.
//   - Trial parallelism: the experiment suite (internal/exp) runs the
//     repetitions of each data point concurrently (exp.Config.Workers,
//     cmd/experiments -workers). Every trial's randomness derives from
//     (Seed, experiment, data point, trial) alone, so tables are
//     bit-identical for Workers=1 and Workers=N.
//
// Size Workers to physical cores for trial-dominated workloads (the
// experiment suite) and leave engine workers at the default; the two
// layers compose because engine rounds below the crossover n (~1k
// stations) never spawn shards, so small-network trials do not
// oversubscribe the machine.
//
// # Engine selection
//
// Three physical engines resolve rounds, trading accuracy for scale:
//
//   - exact (sinr.Engine): the paper's model, O(|tx|·n) per round.
//     Every experiment table (E1–E13) and every default code path uses
//     it; it is the reference the approximate engines are measured
//     against.
//   - grid (sinr.GridEngine): transmitters bucket into cells;
//     interference from cells outside the near field is aggregated at
//     the cell center. O(liveCells + nearBox) per receiver. Good to
//     tens of thousands of stations.
//   - hier (sinr.HierEngine): the grid's cells stack into a
//     power-of-two pyramid whose nodes hold aggregate power at their
//     center of mass, consumed through a θ-gated Barnes–Hut descent
//     (default θ=0.5 — the knob trades accuracy for speed), and the
//     hot path is amortized three ways. Across receivers: the descent
//     runs once per occupied 16×16-cell block — nodes accepted
//     against the block rectangle's nearest point, a conservative and
//     therefore strictly finer test — and every receiver in the block
//     replays the accepted-node frontier as a flat slab scan, with
//     the near field gathered once per block and summed exactly.
//     Across rounds, transmit side: aggregates persist between
//     Resolve calls, and when consecutive sorted transmitter sets
//     overlap, only changed cells and their O(Δ·log cells) ancestor
//     chains recompute (canonical child-order sums make the
//     incremental state bit-identical to a fresh build); beyond
//     DefaultDeltaCrossover (50%) churn the round rebuilds from
//     scratch, which a recorded decay trace shows costs nothing.
//     Across rounds, receive side: an aggregation epoch bumps only
//     when the transmitter set changes, and per-block frontier/near
//     slabs plus per-receiver far-field sums are cached by epoch —
//     unchanged rounds replay them bit-identically without
//     descending or re-folding. The folds run through the
//     internal/sinr/simd batch kernels (α-specialized 4/8-wide
//     unrolls preserving scalar summation order bit-exactly, a
//     kernel-free ArgMin rejection pass before any path-loss math,
//     and an opt-in AVX2 tier via simd.SetUseAsm with portable
//     arm64/purego fallbacks and a measured disagreement bound).
//     Receivers with no transmitter near their block are rejected
//     with one block-granular hot-table lookup, steady-state rounds
//     are allocation-free, and SetFrontierMemo(false) /
//     SetDeltaCrossover(0) / SetVectorized(false) expose the
//     bit-identical slow reference paths for debugging. Built for
//     million-station rounds.
//
// Both approximate engines keep near-field interference and the
// decoding candidate exact, so approximation only perturbs the far
// interference tail; the hierarchy's center-of-mass placement cancels
// the first-order error of the grid's fixed centers, so its measured
// disagreement against the exact engine is lower (TestHierEngineAgreement).
// sinr.AutoEngine (CLI flag -engine auto) picks by n and α: exact below
// ~4k stations or when α is within 0.5 of the growth degree (the far
// field barely converges there), grid to ~32k, hier beyond.
//
// All three engines also implement ResolveFor(tx, receivers) — subset
// resolution byte-identical to a filtered Resolve — and sim.Engine
// exposes SetReceiverActive so protocols whose quiescent stations
// cannot change state by receiving (informed flood stations,
// SBroadcast stations past the coloring, alerted alert stations) stop
// paying O(n) per round for settled receivers. Experiment E14 measures
// the resulting large-n throughput at 10⁴–10⁶ stations.
//
// The round loop around the engines is amortized the same way. A
// protocol that knows its next acting round can implement the opt-in
// sim.Sleeper capability (TickWake returns the transmit decision plus
// a wake round); the engine then parks it in a bucketed calendar
// queue and ticks only the stations due each round, waking same-round
// stations in ascending id so RNG draws and outputs stay byte-exact
// against the tick-everyone loop (sim.SetWakeSchedulingDefault and
// Engine.SetWakeScheduling keep the naive loop as the reference
// path). In NoSBroadcast's coloring preamble — where all but the
// source sleep — this takes the n=65536 round loop from ~1.2k to
// ~420k rounds/s, allocation-free in steady state. On the trial side,
// engine state is split into an immutable topology slab shared by
// pointer and lazily-allocated run state, so Engine/GridEngine/
// HierEngine Clone() costs ~350 ns against milliseconds of fresh
// construction; internal/exp pools clones per experiment point
// (exp.SetEnginePooling toggles it), so T trials pay one topology
// build. Clone reuse is sound because resolve output depends only on
// (topology, transmitter set) — a purity contract the clone tests pin;
// engines with per-trial randomness (fading, weak-device) refuse to
// clone and are rebuilt per trial.
//
// # Scenario architecture
//
// Topology construction is registry-driven (internal/scenario): each
// family registers once with typed parameter declarations (name,
// default, range, doc) and a deterministic builder from (Spec, Physical,
// Seed). Everything downstream is generated from the registry — the
// CLIs' -scenario parsing and -list catalogue, the registry-wide
// property tests (connectivity, metric validity, byte-identical
// determinism), and experiment E12, a cross-family sweep whose coverage
// grows automatically when a family is registered. internal/netgen
// remains as thin wrappers for the function-per-family call sites.
// Generators that densify-and-retry until connected report the attempt
// count and final geometry in Network.Meta. Experiment tables stream
// through pluggable sinks (internal/stats: aligned text, CSV, JSON).
//
// # Protocol architecture
//
// The algorithm axis mirrors the scenario axis (internal/protocol):
// every algorithm — NoS/S broadcast, the multi-source wake-up engine,
// the four baseline floods, and the §5 applications through a result
// adapter — registers once with typed parameter declarations and a
// deterministic runner from (Network, ProtocolSpec, Seed). The
// original entry points stay the canonical implementations; the
// registry wraps them. Everything downstream is generated from the
// registry: broadcast-sim's -alg parsing and -list catalogue, the
// registry-wide property tests (bit-determinism across runs and
// goroutines, budget-bounded termination, Metrics consistency), the
// public RunProtocol, and experiment E13 — a protocol×scenario matrix
// racing every registered protocol over every registered family at
// matched n, whose coverage grows automatically on both axes with
// each Register call.
//
// # Simulation as a service
//
// cmd/sinrcastd serves both registries over HTTP (internal/serve):
// POST a scenario spec, a protocol spec (or an experiment number),
// physics overrides and a seed to /v1/jobs; poll, cancel, stream
// round-by-round NDJSON progress, and fetch the result table in any
// stats sink format — byte-identical to the batch CLIs for the same
// configuration. A JSON-RPC 2.0 twin lives at /rpc. Admission is
// bounded (internal/jobs): a fixed-depth queue answers 429 +
// Retry-After when full instead of buffering unbounded work, a fixed
// worker pool shares the machine's resolver-worker budget so parallel
// jobs never oversubscribe the cores one batch run would use, every
// job carries its own cancellation context, and SIGTERM drains
// in-flight jobs before exiting. The perf core is a content-addressed
// warm-engine cache keyed by (scenario spec, sinr.EngineKey, seed) —
// sinr.Params.Key gives physics a canonical bit-round-tripping string
// form — that pays scenario generation plus engine construction once
// per deployment and hands every request a ~sub-microsecond engine
// clone over the shared topology, with singleflight collapse of
// concurrent misses and LRU byte-budget eviction. Because resolution
// is pure in (topology, transmitter set), result tables are
// byte-identical at any cache temperature (CI-gated).
package sinrcast
