package sinr

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
)

// Default geometry of the approximate engines: half-comm-radius cells,
// a near field covering one-and-a-half communication radii (so every
// decodable transmitter is summed exactly), and a Barnes–Hut style
// opening threshold of one node diameter per two distances. These are
// the values AutoEngine and the CLIs use; constructors accept explicit
// overrides.
const (
	// DefaultCellSize is the base-grid bucket side.
	DefaultCellSize = 0.5
	// DefaultNearRadius is the exact-summation radius.
	DefaultNearRadius = 1.5
	// DefaultTheta is the HierEngine well-separatedness threshold θ: a
	// pyramid node's aggregate is accepted when diameter/distance ≤ θ.
	// Smaller is more accurate and slower; 0.5 keeps the measured
	// disagreement against the exact Engine below GridEngine's (see
	// TestHierEngineAgreement).
	DefaultTheta = 0.5
)

// pyrLevel is one level of the far-field pyramid. Level 0 is the base
// cell grid; level ℓ+1 aggregates 2×2 blocks of level ℓ. Per node the
// level stores the aggregate transmit power and the power-weighted
// coordinate sums, so a node's center of mass is (px/pow, py/pow).
// Zero power marks a dead node; live lists the touched nodes so the
// per-round reset is O(live), not O(cells).
type pyrLevel struct {
	cols, rows int
	pow        []float64
	px, py     []float64
	live       []int32
	// diam2 is the squared node diagonal (the well-separatedness
	// numerator): (side·√2)² for nodes of side cellSize·2^ℓ.
	diam2 float64
}

// pyrNode addresses one pyramid node during descent.
type pyrNode struct {
	lv  int32
	idx int32
}

// HierEngine resolves rounds approximately for Euclidean networks with
// a hierarchical far field: transmitters are bucketed into grid cells
// (exactly like GridEngine), the cells are stacked into a power-of-two
// pyramid whose nodes aggregate their children's transmit power at the
// children's center of mass, and each receiver descends the pyramid
// instead of scanning every live cell. A node's aggregate is accepted
// when it is well separated from the receiver (node diameter / distance
// ≤ θ) and does not touch the receiver's near-field box; otherwise the
// descent recurses into its 2×2 children. Leaves inside the near box
// stay exact per-transmitter, so decoding candidates are untouched —
// approximation error only perturbs the far interference tail, and the
// center-of-mass placement cancels the first-order term of that error
// (GridEngine's fixed cell centers do not), which is why the measured
// disagreement against the exact Engine is no worse than GridEngine's.
//
// Cost per round: O(|tx| + liveCells·log cells) to build the pyramid
// and mark hot cells, then O(log cells) per receiver that can hear a
// transmitter at all — receivers whose near box holds no transmitter
// are rejected with a single table lookup. That is what makes
// million-station rounds tractable: in a large sparse network most
// stations are nowhere near a transmitter in any given round.
//
// Like the other engines, path loss goes through the specialized
// Kernel, large rounds shard by receiver across the reusable worker
// pool with byte-identical output for every worker count, and
// ResolveFor restricts a round to a receiver subset. A HierEngine is
// not safe for concurrent use by multiple goroutines.
type HierEngine struct {
	params   Params
	kern     Kernel
	pts      []geom.Point
	cellSize float64
	nearR2   float64
	theta2   float64
	// nearCells is the near-field box radius in cells (see GridEngine).
	nearCells int

	cols, rows int
	minX, minY float64
	cellOf     []int32
	levels     []pyrLevel

	workers      int
	minParallelN int
	par          shardRunner
	shardFn      func(shard int)
	shardForFn   func(shard int)

	// per-round scratch
	txInCell  [][]int32
	liveCells []int32
	// hot[c] marks base cells whose near box contains at least one live
	// cell — equivalently, cells whose stations could possibly decode
	// this round. hotList drives the O(hot) reset.
	hot     []bool
	hotList []int32
	isTx    []bool
	curRecv []int
	out     []Reception
}

// NewHierEngine builds a hierarchical engine over Euclidean points.
// cellSize is the base bucket side; nearRadius is the exact-summation
// radius and must be ≥ 1 (the normalized communication range — the
// candidate search only looks inside the near box, so the box must
// cover every decodable transmitter); theta is the well-separatedness
// threshold in (0, 1]. Grids beyond maxCellBlowup×n cells are rejected.
func NewHierEngine(eu *geom.Euclidean, p Params, cellSize, nearRadius, theta float64) (*HierEngine, error) {
	if err := p.Validate(eu.Growth()); err != nil {
		return nil, err
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("sinr: cellSize %v must be positive", cellSize)
	}
	if nearRadius < 1 {
		return nil, fmt.Errorf("sinr: nearRadius %v must be >= 1 (the normalized communication range)", nearRadius)
	}
	if theta <= 0 || theta > 1 {
		return nil, fmt.Errorf("sinr: theta %v must be in (0, 1]", theta)
	}
	pts := eu.Pts
	n := len(pts)
	cols, rows, minX, minY, err := gridDims(pts, cellSize)
	if err != nil {
		return nil, err
	}
	h := &HierEngine{
		params:    p,
		kern:      NewKernel(p.Alpha),
		pts:       pts,
		cellSize:  cellSize,
		nearR2:    nearRadius * nearRadius,
		theta2:    theta * theta,
		nearCells: int(math.Ceil(nearRadius/cellSize)) + 1,
		cols:      cols, rows: rows,
		minX: minX, minY: minY,
		workers:      resolveWorkers(0),
		minParallelN: parallelCrossover,
		cellOf:       make([]int32, n),
		txInCell:     make([][]int32, cols*rows),
		hot:          make([]bool, cols*rows),
		isTx:         make([]bool, n),
	}
	for i, q := range pts {
		h.cellOf[i] = int32(h.cellIndex(q))
	}
	// Stack levels until a single node covers the whole grid.
	lc, lr := cols, rows
	side := cellSize
	for {
		h.levels = append(h.levels, pyrLevel{
			cols: lc, rows: lr,
			pow:   make([]float64, lc*lr),
			px:    make([]float64, lc*lr),
			py:    make([]float64, lc*lr),
			diam2: 2 * side * side,
		})
		if lc == 1 && lr == 1 {
			break
		}
		lc = (lc + 1) / 2
		lr = (lr + 1) / 2
		side *= 2
	}
	return h, nil
}

func (h *HierEngine) cellIndex(q geom.Point) int {
	cx := int((q.X - h.minX) / h.cellSize)
	cy := int((q.Y - h.minY) / h.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= h.cols {
		cx = h.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= h.rows {
		cy = h.rows - 1
	}
	return cy*h.cols + cx
}

// N returns the number of stations.
func (h *HierEngine) N() int { return len(h.pts) }

// Params returns the physical parameters.
func (h *HierEngine) Params() Params { return h.params }

// Levels returns the pyramid height (for tests and diagnostics).
func (h *HierEngine) Levels() int { return len(h.levels) }

// SetWorkers sets how many goroutines Resolve may use; w ≤ 0 selects
// runtime.GOMAXPROCS(0). Output is byte-identical for every count.
func (h *HierEngine) SetWorkers(w int) { h.workers = resolveWorkers(w) }

// aggregate buckets the transmitters into base cells, builds the
// pyramid bottom-up over the live cells only, and marks the hot cells.
// Total cost O(|tx| + live·(log cells + nearBox)).
func (h *HierEngine) aggregate(tx []int) {
	pw := h.params.Power()
	l0 := &h.levels[0]
	for _, t := range tx {
		h.isTx[t] = true
		c := h.cellOf[t]
		if l0.pow[c] == 0 {
			l0.live = append(l0.live, c)
		}
		q := h.pts[t]
		l0.pow[c] += pw
		l0.px[c] += pw * q.X
		l0.py[c] += pw * q.Y
		h.txInCell[c] = append(h.txInCell[c], int32(t))
	}
	h.liveCells = l0.live
	// Propagate power and weighted positions up the pyramid: each live
	// node adds its sums into its parent, appending the parent to the
	// next level's live list on first touch.
	for lv := 0; lv+1 < len(h.levels); lv++ {
		cur, par := &h.levels[lv], &h.levels[lv+1]
		for _, c := range cur.live {
			cx, cy := int(c)%cur.cols, int(c)/cur.cols
			pc := int32((cy/2)*par.cols + cx/2)
			if par.pow[pc] == 0 {
				par.live = append(par.live, pc)
			}
			par.pow[pc] += cur.pow[c]
			par.px[pc] += cur.px[c]
			par.py[pc] += cur.py[c]
		}
	}
	// Hot cells: every base cell within the near box of a live cell. A
	// receiver in a cold cell has no transmitter inside its near box,
	// hence no decoding candidate within the communication range, hence
	// nothing to resolve.
	nc := h.nearCells
	for _, c := range h.liveCells {
		ccx, ccy := int(c)%h.cols, int(c)/h.cols
		y0, y1 := max(ccy-nc, 0), min(ccy+nc, h.rows-1)
		x0, x1 := max(ccx-nc, 0), min(ccx+nc, h.cols-1)
		for cy := y0; cy <= y1; cy++ {
			row := cy * h.cols
			for cx := x0; cx <= x1; cx++ {
				if !h.hot[row+cx] {
					h.hot[row+cx] = true
					h.hotList = append(h.hotList, int32(row+cx))
				}
			}
		}
	}
}

// reset clears all per-round aggregation in O(touched nodes).
func (h *HierEngine) reset(tx []int) {
	for _, c := range h.levels[0].live {
		h.txInCell[c] = h.txInCell[c][:0]
	}
	for lv := range h.levels {
		l := &h.levels[lv]
		for _, c := range l.live {
			l.pow[c] = 0
			l.px[c] = 0
			l.py[c] = 0
		}
		l.live = l.live[:0]
	}
	h.liveCells = nil
	for _, c := range h.hotList {
		h.hot[c] = false
	}
	h.hotList = h.hotList[:0]
	for _, t := range tx {
		h.isTx[t] = false
	}
}

// Resolve computes receptions for one round (see Engine.Resolve for
// semantics). The returned slice is owned by the engine and valid until
// the next Resolve call.
func (h *HierEngine) Resolve(tx []int) []Reception {
	if len(tx) == 0 {
		return nil
	}
	for _, t := range tx {
		if t < 0 || t >= len(h.pts) {
			panic(fmt.Sprintf("sinr: transmitter %d out of range [0,%d)", t, len(h.pts)))
		}
	}
	h.aggregate(tx)

	n := len(h.pts)
	if h.workers > 1 && n >= h.minParallelN {
		ensureRunner(&h.par, h, h.workers)
		if h.shardFn == nil {
			h.shardFn = h.runShard
		}
		h.out = h.par.runAndMerge(h.shardFn, h.out)
	} else {
		h.out = h.collectRange(0, n, h.out[:0])
	}

	h.reset(tx)
	return h.out
}

// ResolveFor computes the receptions of one round restricted to the
// given receivers: byte-identical to Resolve(tx) filtered to the
// subset. receivers must be strictly increasing station indices.
func (h *HierEngine) ResolveFor(tx []int, receivers []int) []Reception {
	if len(tx) == 0 || len(receivers) == 0 {
		return nil
	}
	checkReceivers(receivers, len(h.pts))
	for _, t := range tx {
		if t < 0 || t >= len(h.pts) {
			panic(fmt.Sprintf("sinr: transmitter %d out of range [0,%d)", t, len(h.pts)))
		}
	}
	h.aggregate(tx)

	if h.workers > 1 && len(receivers) >= h.minParallelN {
		ensureRunner(&h.par, h, h.workers)
		if h.shardForFn == nil {
			h.shardForFn = h.runShardFor
		}
		h.curRecv = receivers
		h.out = h.par.runAndMerge(h.shardForFn, h.out)
		h.curRecv = nil
	} else {
		h.out = h.collectList(receivers, h.out[:0])
	}

	h.reset(tx)
	return h.out
}

// runShard collects the shard-th contiguous receiver range.
func (h *HierEngine) runShard(shard int) {
	lo, hi := h.par.shardRange(shard, len(h.pts))
	h.par.shardOut[shard] = h.collectRange(lo, hi, h.par.shardOut[shard][:0])
}

// runShardFor collects the shard-th contiguous slice of the subset.
func (h *HierEngine) runShardFor(shard int) {
	lo, hi := h.par.shardRange(shard, len(h.curRecv))
	h.par.shardOut[shard] = h.collectList(h.curRecv[lo:hi], h.par.shardOut[shard][:0])
}

func (h *HierEngine) collectRange(lo, hi int, dst []Reception) []Reception {
	for u := lo; u < hi; u++ {
		dst = h.collectOne(u, dst)
	}
	return dst
}

func (h *HierEngine) collectList(receivers []int, dst []Reception) []Reception {
	for _, u := range receivers {
		dst = h.collectOne(u, dst)
	}
	return dst
}

// collectOne resolves receiver u. Shared state is read-only here, so
// shards run it concurrently; the descent order is fixed, so the
// accumulated float sums — and hence the output — are identical for
// every sharding.
func (h *HierEngine) collectOne(u int, dst []Reception) []Reception {
	uc := int(h.cellOf[u])
	if !h.hot[uc] || h.isTx[u] {
		return dst
	}
	p := h.params
	pw := p.Power()
	kern := h.kern
	nc := h.nearCells
	up := h.pts[u]
	ucx := uc % h.cols
	ucy := uc / h.cols

	// Near field first: exact per-transmitter sums over the near box,
	// which also finds the decoding candidate. If no candidate lies
	// within the communication range the round is over for u and the
	// far-field descent is skipped entirely.
	total := 0.0
	bestD2 := math.Inf(1)
	best := int32(-1)
	y0, y1 := max(ucy-nc, 0), min(ucy+nc, h.rows-1)
	x0, x1 := max(ucx-nc, 0), min(ucx+nc, h.cols-1)
	for cy := y0; cy <= y1; cy++ {
		row := cy * h.cols
		for cx := x0; cx <= x1; cx++ {
			for _, t := range h.txInCell[row+cx] {
				tp := h.pts[t]
				dx, dy := up.X-tp.X, up.Y-tp.Y
				d2 := dx*dx + dy*dy
				total += pw * kern.FromDist2(d2)
				if d2 < bestD2 {
					bestD2 = d2
					best = t
				}
			}
		}
	}
	if best < 0 || bestD2 > 1 {
		return dst
	}

	// Far field: descend the pyramid. A node is accepted (its aggregate
	// power placed at its center of mass) when it does not intersect the
	// near box and passes the θ test; level-0 cells outside the near box
	// are always accepted — that is exactly GridEngine's leaf
	// approximation, with the center of mass instead of the cell center.
	total += h.farField(up, ucx, ucy)

	s := pw * kern.FromDist2(bestD2)
	intf := total - s
	if intf < 0 {
		intf = 0
	}
	if p.Decodes(s, intf) {
		dst = append(dst, Reception{Receiver: u, Transmitter: int(best)})
	}
	return dst
}

// farField sums the approximated interference outside the near box of
// the receiver at up (whose base cell is (ucx,ucy)) by descending the
// pyramid from the root. The DFS stack is bounded by 3 pending siblings
// per level; 4·levels slots leave slack for the root.
func (h *HierEngine) farField(up geom.Point, ucx, ucy int) float64 {
	kern := h.kern
	theta2 := h.theta2
	nc := h.nearCells
	var stackBuf [160]pyrNode
	stack := stackBuf[:0]
	top := len(h.levels) - 1
	if h.levels[top].pow[0] != 0 {
		stack = append(stack, pyrNode{lv: int32(top), idx: 0})
	}
	sum := 0.0
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lv := &h.levels[nd.lv]
		nx, ny := int(nd.idx)%lv.cols, int(nd.idx)/lv.cols
		// Base-cell extent of the node: [bx0, bx1] × [by0, by1].
		shift := uint(nd.lv)
		bx0, by0 := nx<<shift, ny<<shift
		bx1, by1 := bx0+(1<<shift)-1, by0+(1<<shift)-1
		outsideNear := bx0 > ucx+nc || bx1 < ucx-nc || by0 > ucy+nc || by1 < ucy-nc
		if outsideNear {
			pow := lv.pow[nd.idx]
			dx := up.X - lv.px[nd.idx]/pow
			dy := up.Y - lv.py[nd.idx]/pow
			d2 := dx*dx + dy*dy
			if nd.lv == 0 || lv.diam2 <= theta2*d2 {
				sum += pow * kern.FromDist2(d2)
				continue
			}
		} else if nd.lv == 0 {
			continue // inside the near box: summed exactly already
		}
		// Recurse into the 2×2 children.
		child := &h.levels[nd.lv-1]
		cx0, cy0 := nx*2, ny*2
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				cx, cy := cx0+dx, cy0+dy
				if cx >= child.cols || cy >= child.rows {
					continue
				}
				ci := int32(cy*child.cols + cx)
				if child.pow[ci] != 0 {
					stack = append(stack, pyrNode{lv: nd.lv - 1, idx: ci})
				}
			}
		}
	}
	return sum
}
