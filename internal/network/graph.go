package network

// BFS returns the vector of hop distances from src in the communication
// graph; unreachable stations get -1.
func (net *Network) BFS(src int) []int {
	n := net.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range net.Adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Connected reports whether the communication graph is connected.
func (net *Network) Connected() bool {
	dist := net.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns the largest finite hop distance from src, and
// whether all stations were reachable.
func (net *Network) Eccentricity(src int) (ecc int, connected bool) {
	connected = true
	for _, d := range net.BFS(src) {
		if d < 0 {
			connected = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, connected
}

// Diameter returns the exact diameter D of the communication graph via
// all-sources BFS, and whether the graph is connected. Disconnected
// graphs report the largest finite eccentricity.
//
// O(n·m); fine for the simulation sizes in this repository.
func (net *Network) Diameter() (d int, connected bool) {
	connected = true
	for v := 0; v < net.N(); v++ {
		ecc, conn := net.Eccentricity(v)
		if !conn {
			connected = false
		}
		if ecc > d {
			d = ecc
		}
	}
	return d, connected
}

// DiameterApprox returns a 2-approximation of the diameter using a
// double BFS sweep (exact on trees, ≥ D/2 in general); use when n is
// large and the exact O(n·m) scan is too slow.
func (net *Network) DiameterApprox() (d int, connected bool) {
	dist := net.BFS(0)
	far := 0
	for v, dd := range dist {
		if dd < 0 {
			connected = false
		}
		if dd > dist[far] {
			far = v
		}
	}
	ecc, conn := net.Eccentricity(far)
	return ecc, conn && len(dist) > 0 && dist[0] >= 0
}

// ComponentCount returns the number of connected components.
func (net *Network) ComponentCount() int {
	n := net.N()
	seen := make([]bool, n)
	count := 0
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		count++
		stack := []int32{int32(v)}
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range net.Adj[x] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return count
}

// ShortestPath returns one shortest path from src to dst (inclusive) in
// hops, or nil if unreachable.
func (net *Network) ShortestPath(src, dst int) []int {
	n := net.N()
	prev := make([]int32, n)
	for i := range prev {
		prev[i] = -2
	}
	prev[src] = -1
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if int(v) == dst {
			break
		}
		for _, w := range net.Adj[v] {
			if prev[w] == -2 {
				prev[w] = v
				queue = append(queue, w)
			}
		}
	}
	if prev[dst] == -2 {
		return nil
	}
	var rev []int
	for v := int32(dst); v != -1; v = prev[v] {
		rev = append(rev, int(v))
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
