package broadcast

import (
	"fmt"
	"sync"
	"testing"

	"sinrcast/internal/coloring"
	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// Cached deployments and prototype engines for the sim-layer
// benchmarks: generating a 65536-station uniform deployment and its
// hier engine once per process, not once per sub-benchmark.
var (
	benchSimMu     sync.Mutex
	benchSimNets   = map[int]*network.Network{}
	benchSimEngine = map[int]sim.Resolver{}
)

func benchSimScene(b *testing.B, n int) (*network.Network, sim.Resolver) {
	b.Helper()
	benchSimMu.Lock()
	defer benchSimMu.Unlock()
	net, ok := benchSimNets[n]
	if !ok {
		net = genUniform(b, n, 8, uint64(n)+1)
		benchSimNets[n] = net
		phys, err := sinr.NewNamedEngine("hier", net.Space, net.Params)
		if err != nil {
			b.Fatal(err)
		}
		benchSimEngine[n] = phys
	}
	return net, benchSimEngine[n]
}

// benchProtos builds the per-station state machines of one protocol,
// mirroring the corresponding runner's construction (RunNoS / RunS)
// so the benchmark drives production Tick/TickWake code.
func benchProtos(b *testing.B, proto string, cfg *Config, n int, seed uint64) []sim.Protocol {
	b.Helper()
	root := rng.New(seed)
	protos := make([]sim.Protocol, n)
	switch proto {
	case "nos":
		for i := 0; i < n; i++ {
			st, err := newNOSStation(cfg, root.Split(uint64(i)), 7, i == 0)
			if err != nil {
				b.Fatal(err)
			}
			protos[i] = st
		}
	case "s":
		for i := 0; i < n; i++ {
			m, err := coloring.NewMachine(cfg.Coloring, root.Split(uint64(i)).Split(1))
			if err != nil {
				b.Fatal(err)
			}
			st := &sbStation{
				cfg:        cfg,
				machine:    m,
				rnd:        root.Split(uint64(i)),
				payload:    7,
				source:     i == 0,
				colorLen:   cfg.Coloring.TotalRounds(),
				informedAt: -1,
			}
			if st.source {
				st.informed = true
				st.informedAt = 0
			}
			protos[i] = st
		}
	default:
		b.Fatalf("unknown protocol %q", proto)
	}
	return protos
}

// BenchmarkSimRounds measures round-loop throughput through the
// coloring preamble — the sim layer's worst case before this PR: in
// NoSBroadcast every station but the source is uninformed and silent,
// yet the tick-everyone loop still paid n Tick calls per round. With
// wake scheduling the sleepers wait in the calendar queue and each
// round costs only the stations actually due. SBroadcast is the
// counterpoint: all n stations color concurrently (spontaneous
// wake-up), so scheduling can only shed post-coloring idle tails. The
// sched=off runs are the SetWakeSchedulingDefault(false) reference
// path; the acceptance gate wants nos at n=65536 ≥ 3× its off
// throughput.
func BenchmarkSimRounds(b *testing.B) {
	// s stays at the small size: with every station coloring, each
	// round is real resolver work (milliseconds at 4096 already), and
	// the point — scheduling is a wash when no one sleeps — shows at
	// any n.
	cases := []struct {
		n     int
		proto string
	}{{4096, "nos"}, {4096, "s"}, {65536, "nos"}}
	for _, tc := range cases {
		n, proto := tc.n, tc.proto
		{
			for _, sched := range []bool{false, true} {
				mode := "off"
				if sched {
					mode = "on"
				}
				b.Run(fmt.Sprintf("n=%d/proto=%s/sched=%s", n, proto, mode), func(b *testing.B) {
					net, phys := benchSimScene(b, n)
					cfg := cfgFor(net)
					rounds := cfg.Coloring.TotalRounds()
					prev := sim.SetWakeSchedulingDefault(sched)
					defer sim.SetWakeSchedulingDefault(prev)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						protos := benchProtos(b, proto, &cfg, n, uint64(i)+5)
						eng, err := sim.NewEngine(phys, protos)
						if err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
						eng.Run(rounds, nil)
					}
					el := b.Elapsed()
					b.ReportMetric(float64(el.Nanoseconds())/float64(b.N*rounds), "ns/round")
					b.ReportMetric(float64(b.N*rounds)/el.Seconds(), "rounds/s")
				})
			}
		}
	}
}
