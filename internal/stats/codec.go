package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Table encoders and decoders. The text form (Table.String) stays the
// human-facing default; CSV and JSON are the machine-readable sinks
// used by cmd/experiments -format. Both round-trip: ReadCSV/ReadJSON
// reproduce the encoded table exactly.

// titleMarker tags the CSV record carrying the table title, so a CSV
// table round-trips without colliding with ordinary two-column rows.
const titleMarker = "#table"

// WriteCSV encodes the table as CSV: an optional ["#table", title]
// record, the header record, then one record per row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if t.Title != "" {
		if err := cw.Write([]string{titleMarker, t.Title}); err != nil {
			return err
		}
	}
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes one WriteCSV-encoded table.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // ragged rows are legal in Table
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("stats: reading CSV table: %w", err)
	}
	t := &Table{}
	if len(recs) > 0 && len(recs[0]) == 2 && recs[0][0] == titleMarker {
		t.Title = recs[0][1]
		recs = recs[1:]
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("stats: CSV table missing header record")
	}
	t.Headers = recs[0]
	if len(recs) > 1 {
		t.Rows = recs[1:]
	}
	return t, nil
}

// WriteJSON encodes the table as one indented JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON decodes one WriteJSON-encoded table.
func ReadJSON(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("stats: reading JSON table: %w", err)
	}
	return &t, nil
}

// DecodeTables decodes the JSON array emitted by the JSON sink
// (cmd/experiments -format json) back into tables.
func DecodeTables(r io.Reader) ([]*Table, error) {
	var ts []*Table
	if err := json.NewDecoder(r).Decode(&ts); err != nil {
		return nil, fmt.Errorf("stats: reading JSON table stream: %w", err)
	}
	return ts, nil
}
