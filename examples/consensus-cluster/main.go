// Consensus-cluster: the §5 consensus protocol on a clustered network.
// Every station holds a sensor reading in {0..255}; the network agrees
// on the minimum, bit by bit, over the coloring backbone.
package main

import (
	"fmt"
	"log"

	"sinrcast"
)

func main() {
	net, err := sinrcast.GenerateClusters(sinrcast.DefaultPhysical(), 3, 16, 0.08, 0.6, 9)
	if err != nil {
		log.Fatal(err)
	}
	// Synthetic readings: cluster c reports values around 100-40c; one
	// outlier station holds the true minimum 17.
	msgs := make([]int64, net.N())
	for i := range msgs {
		cluster := i / 16
		msgs[i] = int64(100 - 40*cluster + (i%16)*3)
		if msgs[i] < 0 {
			msgs[i] = 0
		}
	}
	msgs[net.N()-1] = 17
	min := msgs[0]
	for _, m := range msgs[1:] {
		if m < min {
			min = m
		}
	}

	res, err := sinrcast.Consensus(net, 13, 255, msgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d stations, readings in [0,255], true minimum = %d\n", net.N(), min)
	fmt.Printf("consensus: agreed=%v value=%d correct=%v rounds=%d\n",
		res.Agreed, res.Values[0], res.Correct, res.Rounds)
}
