// Package sinrcast is a simulation library for ad hoc wireless
// communication under the SINR physical model, reproducing
//
//	"On the Impact of Geometry on Ad Hoc Communication in Wireless
//	Networks", Jurdziński, Kowalski, Różański, Stachowiak (PODC 2014).
//
// The package provides:
//
//   - an exact SINR reception engine over bounded-growth metric spaces;
//   - network generators (uniform, grid, path, clusters, gaussian,
//     corridor, and the paper's granularity-exponential chain);
//   - the paper's distributed coloring primitive StabilizeProbability
//     (§3) with Lemma 1 / Lemma 2 invariant checkers;
//   - the broadcast algorithms NoSBroadcast (Theorem 1, non-spontaneous
//     wake-up, O(D log² n)) and SBroadcast (Theorem 2, spontaneous
//     wake-up, O(D log n + log² n));
//   - the §5 applications: ad hoc wake-up, consensus and leader
//     election;
//   - baseline algorithms (Decay, a Daum-et-al-style granularity-
//     sensitive sweep, density-oracle flooding, GPS grid TDMA).
//
// Quick start:
//
//	net, err := sinrcast.GenerateUniform(sinrcast.DefaultPhysical(), 128, 8, 1)
//	if err != nil { ... }
//	res, err := sinrcast.Broadcast(net, sinrcast.Options{Seed: 7})
//	fmt.Println(res.Rounds, res.AllInformed)
//
// All randomness is seed-driven and runs reproduce bit-for-bit. See
// DESIGN.md for the architecture and EXPERIMENTS.md for the measured
// reproduction of every quantitative claim in the paper.
package sinrcast
