package exp

import (
	"fmt"
	"hash/fnv"
	"math"

	"sinrcast/internal/baseline"
	"sinrcast/internal/broadcast"
	"sinrcast/internal/network"
	"sinrcast/internal/scenario"
	"sinrcast/internal/stats"
)

// E12CrossFamilySweep races NoSBroadcast, SBroadcast and the Decay
// baseline over *every* registered scenario family at matched n,
// reporting per-family geometry (D, granularity Rs, density spread)
// next to the round counts. Its coverage grows automatically: a family
// registered with scenario.Register shows up here with no experiment
// code change. Config.Scenario optionally restricts the sweep to a
// single explicit spec.
func E12CrossFamilySweep(cfg Config) (*stats.Table, error) {
	n := cfg.scaled(64, 24)
	specs, err := cfg.scenarioSpecs(n)
	if err != nil {
		return nil, fmt.Errorf("E12: %w", err)
	}
	t := stats.NewTable(
		fmt.Sprintf("E12: cross-family sweep over %d registered scenarios, target n=%d", len(specs), n),
		"family", "n", "D", "log2(Rs)", "dens-spread", "NoS", "S", "decay")
	for _, sp := range specs {
		net, err := scenario.Generate(sp, physParams(), cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("E12 %s: %w", sp.Family, err)
		}
		d, _ := net.Diameter()
		// Data points are keyed by family name (not slice index), so a
		// family's series is stable as other families register.
		famKey := fnvHash(sp.Family)
		run := func(alg uint64, fn func(seed uint64) (*broadcast.Result, error)) string {
			med, fails, err := medianRounds(cfg, 12, famKey+alg, fn)
			if err != nil {
				return "fail"
			}
			if fails > 0 {
				return fmt.Sprintf("%.0f(%d!)", med, fails)
			}
			return fmt.Sprintf("%.0f", med)
		}
		nos := run(0, func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunNoS(net, bcastCfg(net), seed, 0, 1)
		})
		s := run(1, func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunS(net, bcastCfg(net), seed, 0, 1)
		})
		dec := run(2, func(seed uint64) (*broadcast.Result, error) {
			return baseline.RunFlood(net, baseline.NewDecay(net.N()), seed, 0, 0)
		})
		t.AddRow(sp.Family, net.N(), d,
			fmt.Sprintf("%.1f", math.Log2(net.Granularity())),
			fmt.Sprintf("%.1f", densitySpread(net)), nos, s, dec)
	}
	return t, nil
}

// scenarioSpecs returns the scenario axis of the registry sweeps (E12,
// E13): the single parsed Config.Scenario spec when set, else every
// registered family sized to ≈n stations.
func (c Config) scenarioSpecs(n int) ([]scenario.Spec, error) {
	if c.Scenario != "" {
		sp, err := scenario.Parse(c.Scenario)
		if err != nil {
			return nil, err
		}
		return []scenario.Spec{sp}, nil
	}
	var specs []scenario.Spec
	for _, f := range scenario.Families() {
		specs = append(specs, f.SpecForN(n))
	}
	return specs, nil
}

// fnvHash maps a family name to a stable data-point key; the low two
// bits stay clear so algorithm slots can be added without collisions.
func fnvHash(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64() &^ 3
}

// densitySpread is the ratio between the largest and smallest
// communication-ball population over all stations — the paper's
// non-uniformity measure (per-ball density varying by orders of
// magnitude is what geometry-sensitive algorithms pay for).
func densitySpread(net *network.Network) float64 {
	minB, maxB := math.MaxInt, 0
	for i := 0; i < net.N(); i++ {
		b := net.Degree(i) + 1
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	if minB < 1 {
		minB = 1
	}
	return float64(maxB) / float64(minB)
}
