package sinr

import "sinrcast/internal/geom"

// Test-only hooks for the external (package sinr_test) test files:
// in-package tests poke unexported fields directly, but the round-
// sequence equivalence tests live outside the package so they can
// build scenario-registry topologies (the scenario package imports
// sinr, which would cycle in-package).

// SetAlphaForTest swaps the path-loss exponent of a built engine, like
// the benches' setBenchAlpha: α=2 fails Validate on the plane, but
// only the kernel arithmetic is under test.
func SetAlphaForTest(r Resolver, alpha float64) {
	switch e := r.(type) {
	case *Engine:
		setBenchAlpha(&e.params, &e.kern, alpha)
	case *GridEngine:
		setBenchAlpha(&e.params, &e.kern, alpha)
	case *HierEngine:
		setBenchAlpha(&e.params, &e.kern, alpha)
	default:
		panic("SetAlphaForTest: unknown engine type")
	}
}

// ForceParallelForTest drops the parallel crossover so tiny test
// instances exercise the parallel path with the given worker count.
func ForceParallelForTest(r Resolver, workers int) {
	switch e := r.(type) {
	case *Engine:
		e.SetWorkers(workers)
		e.minParallelN = 0
	case *GridEngine:
		e.SetWorkers(workers)
		e.minParallelN = 0
	case *HierEngine:
		e.SetWorkers(workers)
		e.minParallelN = 0
	default:
		panic("ForceParallelForTest: unknown engine type")
	}
}

// BenchSceneForTest exposes the benches' constant-density scene
// generator to the external bench files.
func BenchSceneForTest(seed uint64, n int) *geom.Euclidean { return benchScene(seed, n) }

// runnerOf returns the engine's chunk runner.
func runnerOf(r Resolver) *chunkRunner {
	switch e := r.(type) {
	case *Engine:
		return &e.par
	case *GridEngine:
		return &e.par
	case *HierEngine:
		return &e.par
	default:
		panic("runnerOf: unknown engine type")
	}
}

// SetChunkTargetForTest overrides the per-chunk receiver target; 1
// makes every receiver its own chunk — the deterministic steal storm
// (many more chunks than workers, so thieves always find work).
func SetChunkTargetForTest(r Resolver, target int) { runnerOf(r).chunkTarget = target }

// StealsForTest reports how many chunks the engine's runner has
// executed off-owner since the runner was built (0 before any parallel
// round ran).
func StealsForTest(r Resolver) int64 {
	run := runnerOf(r).run
	if run == nil {
		return 0
	}
	return run.Steals()
}

// HoldWorkerForTest blocks the given worker of the engine's runner at
// the start of every round until release is closed; worker < 0 clears
// the hold. The runner must exist (run one parallel round first, or
// call after ForceParallelForTest + Resolve).
func HoldWorkerForTest(r Resolver, worker int, release <-chan struct{}) {
	runnerOf(r).run.SetHoldForTest(worker, release)
}

// HotStatsForTest returns the hot-table cost counters accumulated since
// construction: total block-counter bumps and live-cell transitions
// (bumpHot calls). The hardware-independent CI gate divides the two and
// compares against the (2·nearCells+1)² bumps the per-cell table paid
// per transition.
func (h *HierEngine) HotStatsForTest() (bumps, transitions int64) {
	return h.hotBumps, h.hotTransitions
}

// NearCellsForTest exposes the near-field box radius in cells, the
// input of the per-cell bump count the hot-table gate compares against.
func (h *HierEngine) NearCellsForTest() int { return h.nearCells }
