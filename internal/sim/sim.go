// Package sim runs synchronous-round simulations of distributed wireless
// protocols under the SINR model (§1.1): in each round every station
// either transmits or listens, the physical engine resolves receptions,
// and messages are delivered. Stations interact with the world only
// through the Protocol interface — they never see the network, other
// stations' state, or positions, which keeps the "ad hoc, no GPS,
// no carrier sensing" contract of the paper honest by construction.
package sim

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"sinrcast/internal/prof"
	"sinrcast/internal/sinr"
)

// Message is what a station puts on the air. The paper allows the
// broadcast message plus O(log n) extra bits (§1.1); Kind/A/B are that
// O(log n) annotation, and Round carries the global round counter used
// to synchronize non-spontaneously woken stations.
type Message struct {
	// Src is the transmitting station (filled by the engine).
	Src int
	// Round is the global round number at transmission (filled by the
	// engine; protocols read it to synchronize).
	Round int
	// Kind tags the protocol-level message type.
	Kind uint8
	// A and B are protocol-defined payload fields.
	A, B int64
}

// Protocol is the behavior of a single station. Implementations must
// only use their own local state: the engine calls Tick exactly once per
// round per station and Recv for each successful reception.
type Protocol interface {
	// Tick returns the station's action in round t: whether to transmit
	// and, if so, the message. A sleeping station returns (false, _).
	Tick(t int) (transmit bool, msg Message)
	// Recv delivers a successfully decoded message in round t. Recv is
	// called after all Tick calls of round t. A station never receives
	// in a round in which it transmitted.
	Recv(t int, msg Message)
}

// NeverWake is the wake round a Sleeper returns to sleep indefinitely:
// only a reception (or an engine reset) will tick it again.
const NeverWake = math.MaxInt

// Sleeper is the optional wake-scheduling capability of a Protocol: a
// station that knows it will be idle for a while can tell the engine how
// long, and the engine stops ticking it until then. TickWake(t) is
// Tick(t) plus the wake hint, under a strict contract: for every round
// u in the open interval (t, wake) the station asserts Tick(u) would
// return (false, _) without changing its state or consuming randomness.
// The engine may therefore skip those ticks — or not: ticking a sleeping
// station early (as SetWakeScheduling(false) and calendar resets do) is
// always safe, because those ticks are no-ops by the same contract.
// A successful reception voids the hint: the engine re-ticks the station
// from the round after the delivery.
//
// Any station may decline the capability (by not implementing Sleeper,
// or by always returning wake = t+1); mixed populations are fine, and
// tick order stays ascending by station id among the stations actually
// ticked, so runs are byte-identical with scheduling on or off.
type Sleeper interface {
	Protocol
	// TickWake acts exactly like Tick and additionally returns the next
	// round the station needs to be ticked (> t, or NeverWake).
	TickWake(t int) (transmit bool, msg Message, wake int)
}

// Resolver is the physical layer. *sinr.Engine, *sinr.GridEngine and
// *sinr.HierEngine all implement it (and SubsetResolver below).
type Resolver interface {
	Resolve(tx []int) []sinr.Reception
	N() int
}

// SubsetResolver is the optional physical-layer capability behind the
// engine's receiver-activity hook: resolving a round for an explicit
// receiver subset, byte-identical to a filtered full Resolve. All sinr
// engines implement it; wrapper channels (e.g. the fading engine, whose
// per-link randomness is drawn in full-network order) may not, in which
// case the engine transparently falls back to full resolution.
type SubsetResolver interface {
	Resolver
	ResolveFor(tx []int, receivers []int) []sinr.Reception
}

var (
	_ SubsetResolver = (*sinr.Engine)(nil)
	_ SubsetResolver = (*sinr.GridEngine)(nil)
	_ SubsetResolver = (*sinr.HierEngine)(nil)
)

// Tracer observes rounds; used by tests, stats and the CLIs.
type Tracer interface {
	// OnRound is called at the end of each round with the transmitter
	// set and the receptions. Slices are engine-owned: copy to retain.
	OnRound(t int, tx []int, rec []sinr.Reception)
}

// Metrics accumulates counters over a run.
type Metrics struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Transmissions counts station-rounds spent transmitting.
	Transmissions int64
	// Receptions counts successful deliveries.
	Receptions int64
	// BusyRounds counts rounds with at least one transmitter.
	BusyRounds int
}

// wakeSchedDefault is the package default for new engines; tests and
// benchmarks flip it to pin the tick-everyone reference path.
var wakeSchedDefault atomic.Bool

func init() { wakeSchedDefault.Store(true) }

// SetWakeSchedulingDefault sets whether newly constructed engines start
// with wake scheduling enabled (the default is true) and returns the
// previous value. Existing engines are not affected; use the per-engine
// SetWakeScheduling for those.
func SetWakeSchedulingDefault(on bool) (prev bool) {
	return wakeSchedDefault.Swap(on)
}

// calInitLen is the initial calendar ring size (a power of two).
const calInitLen = 64

// Engine drives one simulation.
type Engine struct {
	phys   Resolver
	subset SubsetResolver // phys when it supports ResolveFor, else nil
	protos []Protocol
	tracer Tracer
	msgs   []Message // per-station scratch of this round's messages
	txIDs  []int

	// Wake scheduling (see Sleeper): sleepers[i] is protos[i]'s Sleeper
	// capability or nil; nonSleepers lists the stations without it (they
	// tick every round). wake[i] is the next round sleeper i must tick;
	// cal is a power-of-two calendar ring of wake buckets indexed by
	// round & calMask, under the invariant that every scheduled wake is
	// less than len(cal) rounds ahead (schedule grows the ring to keep
	// it, so any bucket entry whose wake[id] disagrees with the current
	// round is provably stale and dropped). schedValid is false whenever
	// the calendar no longer reflects station state (engine creation,
	// scheduling toggled, or a tick-everyone Step ran); the next
	// scheduled Step then re-seeds every sleeper at the current round,
	// which is safe because ticking a sleeping station is a no-op.
	wakeSched   bool
	anySleeper  bool
	sleepers    []Sleeper
	nonSleepers []int32
	wake        []int
	cal         [][]int32
	calMask     int
	due         []int32
	schedValid  bool

	// Receiver-activity tracking (see SetReceiverActive): inactive
	// stations are excluded from reception resolution when the physical
	// layer supports subsets. activeRecv is rebuilt lazily when dirty.
	inactive    []bool
	inactiveN   int
	activeRecv  []int
	activeDirty bool

	// Metrics of the run so far.
	Metrics Metrics
	// round is the global clock; persists across Run calls so phased
	// protocols can be driven in segments.
	round int
}

// NewEngine pairs a physical resolver with one Protocol per station.
func NewEngine(phys Resolver, protos []Protocol) (*Engine, error) {
	if phys.N() != len(protos) {
		return nil, fmt.Errorf("sim: %d stations but %d protocols", phys.N(), len(protos))
	}
	subset, _ := phys.(SubsetResolver)
	e := &Engine{
		phys:      phys,
		subset:    subset,
		protos:    protos,
		msgs:      make([]Message, len(protos)),
		txIDs:     make([]int, 0, len(protos)),
		wakeSched: wakeSchedDefault.Load(),
	}
	for i, p := range protos {
		if s, ok := p.(Sleeper); ok {
			if e.sleepers == nil {
				e.sleepers = make([]Sleeper, len(protos))
			}
			e.sleepers[i] = s
			e.anySleeper = true
		}
	}
	if e.anySleeper {
		for i := range protos {
			if e.sleepers[i] == nil {
				e.nonSleepers = append(e.nonSleepers, int32(i))
			}
		}
		e.wake = make([]int, len(protos))
	}
	return e, nil
}

// SetWakeScheduling toggles the calendar-queue tick loop (default: the
// package default, normally on). Off is the reference path: every
// station ticks every round. The two paths are byte-identical — the
// toggle exists so tests can pin that, like sinr's SetFrontierMemo.
func (e *Engine) SetWakeScheduling(on bool) {
	e.wakeSched = on
	e.schedValid = false
}

// SetReceiverActive marks whether station i still needs receptions
// resolved. Runners flip a station inactive once its state can no
// longer change by receiving — an informed flood station, an SBroadcast
// station past the coloring whose Recv is a no-op once informed — so
// late rounds stop paying O(n) interference work for receivers whose
// outcome is already settled.
//
// The contract is strict: receptions delivered to the remaining active
// stations are byte-identical to a full resolution (ResolveFor
// guarantees it); an inactive station simply hears nothing, and its
// Tick keeps running, so it may still transmit. Metrics.Receptions
// consequently counts only receptions at active stations. When the
// physical layer does not implement SubsetResolver the flag is recorded
// but every round resolves in full (receptions at inactive stations are
// then still delivered — callers must only deactivate stations whose
// Recv is a no-op, which makes the two paths behaviorally identical).
func (e *Engine) SetReceiverActive(i int, active bool) {
	if i < 0 || i >= len(e.protos) {
		panic(fmt.Sprintf("sim: station %d out of range [0,%d)", i, len(e.protos)))
	}
	if e.inactive == nil {
		if active {
			return
		}
		e.inactive = make([]bool, len(e.protos))
	}
	if e.inactive[i] == !active {
		return
	}
	e.inactive[i] = !active
	if active {
		e.inactiveN--
	} else {
		e.inactiveN++
	}
	e.activeDirty = true
}

// activeReceivers returns the sorted active-station list, rebuilding it
// only after SetReceiverActive changed something.
func (e *Engine) activeReceivers() []int {
	if e.activeDirty {
		e.activeRecv = e.activeRecv[:0]
		for i, off := range e.inactive {
			if !off {
				e.activeRecv = append(e.activeRecv, i)
			}
		}
		e.activeDirty = false
	}
	return e.activeRecv
}

// SetTracer installs an observer (nil disables tracing).
func (e *Engine) SetTracer(tr Tracer) { e.tracer = tr }

// Round returns the current global round number (the next round to run).
func (e *Engine) Round() int { return e.round }

// resetCalendar re-seeds the calendar: every sleeper is scheduled at the
// current round. Ticking a mid-sleep station is a no-op by the Sleeper
// contract, so this is always safe; each station re-announces its wake
// round on that tick and the calendar is exact again.
func (e *Engine) resetCalendar() {
	if len(e.cal) == 0 {
		e.cal = make([][]int32, calInitLen)
		e.calMask = calInitLen - 1
	} else {
		for i := range e.cal {
			e.cal[i] = e.cal[i][:0]
		}
	}
	t := e.round
	idx := t & e.calMask
	for i, s := range e.sleepers {
		if s != nil {
			e.wake[i] = t
			e.cal[idx] = append(e.cal[idx], int32(i))
		}
	}
	e.schedValid = true
}

// schedule inserts sleeper id into the wake bucket of round w (> the
// current round t, finite). Grows the ring so w-t < len(cal) holds for
// every scheduled entry.
func (e *Engine) schedule(id int32, w, t int) {
	if w-t >= len(e.cal) {
		e.growCalendar(w-t+1, t)
	}
	idx := w & e.calMask
	e.cal[idx] = append(e.cal[idx], id)
}

// growCalendar rebuilds the ring at the next power-of-two size ≥ minLen
// from the authoritative wake array, dropping stale entries in passing.
// Entries for the in-progress round t are not re-added: they are already
// in the due snapshot, and re-announce themselves when ticked.
func (e *Engine) growCalendar(minLen, t int) {
	size := len(e.cal) * 2
	if size < calInitLen {
		size = calInitLen
	}
	for size < minLen {
		size *= 2
	}
	cal := make([][]int32, size)
	mask := size - 1
	for i, s := range e.sleepers {
		if s == nil {
			continue
		}
		if w := e.wake[i]; w > t && w != NeverWake {
			cal[w&mask] = append(cal[w&mask], int32(i))
		}
	}
	e.cal, e.calMask = cal, mask
}

// tickAll is the reference tick loop: every station, ascending id.
func (e *Engine) tickAll(t int) {
	for i, p := range e.protos {
		transmit, msg := p.Tick(t)
		if transmit {
			msg.Src = i
			msg.Round = t
			e.msgs[i] = msg
			e.txIDs = append(e.txIDs, i)
		}
	}
}

// tickScheduled ticks only the stations due in round t: every
// non-Sleeper plus the sleepers whose wake round arrived, merged in
// ascending station order so the transmitter set is byte-identical to
// tickAll's. The due bucket may hold stale or duplicate entries
// (stations rescheduled by a reception); sorting and checking wake[id]
// filters both.
func (e *Engine) tickScheduled(t int) {
	if !e.schedValid {
		e.resetCalendar()
	}
	idx := t & e.calMask
	b := e.cal[idx]
	if !slices.IsSorted(b) {
		slices.Sort(b)
	}
	e.due = e.due[:0]
	last := int32(-1)
	for _, id := range b {
		if id != last && e.wake[id] == t {
			e.due = append(e.due, id)
		}
		last = id
	}
	e.cal[idx] = b[:0]
	due, ns := e.due, e.nonSleepers
	di, ni := 0, 0
	for di < len(due) || ni < len(ns) {
		var id int32
		var transmit bool
		var msg Message
		if ni >= len(ns) || (di < len(due) && due[di] < ns[ni]) {
			id = due[di]
			di++
			var w int
			transmit, msg, w = e.sleepers[id].TickWake(t)
			if w <= t {
				w = t + 1
			}
			e.wake[id] = w
			if w != NeverWake {
				e.schedule(id, w, t)
			}
		} else {
			id = ns[ni]
			ni++
			transmit, msg = e.protos[id].Tick(t)
		}
		if transmit {
			msg.Src = int(id)
			msg.Round = t
			e.msgs[id] = msg
			e.txIDs = append(e.txIDs, int(id))
		}
	}
}

// resolve runs the physical layer for the current transmitter set. A
// transmitter-free round is skipped entirely when the resolver is a
// SubsetResolver: subset resolution is contractually a pure function of
// (topology, tx, receivers), and no transmitter means no reception.
// Wrapper resolvers without the capability (which may consume per-round
// randomness inside Resolve) are always called.
func (e *Engine) resolve() []sinr.Reception {
	if e.subset != nil {
		if len(e.txIDs) == 0 {
			return nil
		}
		if e.inactiveN > 0 {
			return e.subset.ResolveFor(e.txIDs, e.activeReceivers())
		}
	}
	return e.phys.Resolve(e.txIDs)
}

// deliver hands each reception to its receiver. A delivery voids the
// receiver's sleep hint: it is rescheduled for the next round, and its
// entry for the old wake round goes stale.
func (e *Engine) deliver(t int, rec []sinr.Reception) {
	sched := e.wakeSched && e.anySleeper && e.schedValid
	for _, r := range rec {
		if sched && e.sleepers[r.Receiver] != nil && e.wake[r.Receiver] > t+1 {
			e.wake[r.Receiver] = t + 1
			e.schedule(int32(r.Receiver), t+1, t)
		}
		e.protos[r.Receiver].Recv(t, e.msgs[r.Transmitter])
	}
}

// Step executes exactly one round and returns the number of successful
// receptions. The transmitter set handed to the physical layer is in
// ascending station order (stations tick in index order), and the
// active-receiver subset is ascending too — the shape sinr.HierEngine's
// cross-round delta path detects and exploits; protocol round loops get
// incremental far-field aggregation without doing anything.
//
// When prof phase labels are enabled (see prof.SetPhases), the tick /
// resolve / deliver / trace phases run under pprof labels so CPU
// profiles attribute sim-layer against resolver time.
func (e *Engine) Step() int {
	t := e.round
	e.txIDs = e.txIDs[:0]
	sched := e.wakeSched && e.anySleeper
	var rec []sinr.Reception
	if prof.PhasesEnabled() {
		prof.Phase("tick", func() {
			if sched {
				e.tickScheduled(t)
			} else {
				e.schedValid = false
				e.tickAll(t)
			}
		})
		prof.Phase("resolve", func() { rec = e.resolve() })
		prof.Phase("deliver", func() { e.deliver(t, rec) })
		if e.tracer != nil {
			prof.Phase("trace", func() { e.tracer.OnRound(t, e.txIDs, rec) })
		}
	} else {
		if sched {
			e.tickScheduled(t)
		} else {
			e.schedValid = false
			e.tickAll(t)
		}
		rec = e.resolve()
		e.deliver(t, rec)
		if e.tracer != nil {
			e.tracer.OnRound(t, e.txIDs, rec)
		}
	}
	e.Metrics.Rounds++
	e.Metrics.Transmissions += int64(len(e.txIDs))
	e.Metrics.Receptions += int64(len(rec))
	if len(e.txIDs) > 0 {
		e.Metrics.BusyRounds++
	}
	e.round++
	return len(rec)
}

// Run executes rounds until stop returns true (checked once before each
// round) or maxRounds rounds have run in this call. It returns the
// number of rounds executed by this call and whether stop fired. stop
// is evaluated at most once per round: when the budget runs out the
// last Step's outcome is not re-inspected (a side-effecting stop
// closure — a countdown, a channel poll — fires exactly rounds times).
func (e *Engine) Run(maxRounds int, stop func() bool) (rounds int, stopped bool) {
	for rounds < maxRounds {
		if stop != nil && stop() {
			return rounds, true
		}
		e.Step()
		rounds++
	}
	return rounds, false
}
