package broadcast

import (
	"fmt"

	"sinrcast/internal/network"
	"sinrcast/internal/stats"
)

// HopProgress summarizes how a broadcast swept the network: for every
// BFS layer (hop distance from the source) the inform-time statistics.
// The per-layer medians must be non-decreasing in any correct execution
// — a useful integration-test oracle and a per-hop latency measurement.
type HopProgress struct {
	// Layer[k] summarizes inform times of stations at hop distance k.
	Layer []stats.Summary
	// PerHop is the fitted rounds-per-hop slope over layer medians.
	PerHop float64
}

// Progress computes the hop-layer progress of a completed broadcast.
// Stations never informed are skipped; unreachable stations (hop -1)
// are ignored.
func Progress(net *network.Network, source int, informTime []int) (*HopProgress, error) {
	if source < 0 || source >= net.N() {
		return nil, fmt.Errorf("broadcast: source %d out of range", source)
	}
	if len(informTime) != net.N() {
		return nil, fmt.Errorf("broadcast: informTime has %d entries for %d stations", len(informTime), net.N())
	}
	dist := net.BFS(source)
	maxHop := 0
	for _, d := range dist {
		if d > maxHop {
			maxHop = d
		}
	}
	buckets := make([][]float64, maxHop+1)
	for i, d := range dist {
		if d < 0 || informTime[i] < 0 {
			continue
		}
		buckets[d] = append(buckets[d], float64(informTime[i]))
	}
	hp := &HopProgress{Layer: make([]stats.Summary, maxHop+1)}
	var xs, ys []float64
	for k, b := range buckets {
		hp.Layer[k] = stats.Summarize(b)
		if len(b) > 0 {
			xs = append(xs, float64(k))
			ys = append(ys, hp.Layer[k].Median)
		}
	}
	_, slope, _ := stats.LinFit(xs, ys)
	hp.PerHop = slope
	return hp, nil
}

// MonotoneWithin reports whether layer medians are non-decreasing up to
// the given slack in rounds (phased protocols inform whole phases at a
// time, so exact monotonicity holds only up to a phase length).
func (hp *HopProgress) MonotoneWithin(slack float64) bool {
	prev := -1.0
	for _, l := range hp.Layer {
		if l.N == 0 {
			continue
		}
		if l.Median+slack < prev {
			return false
		}
		if l.Median > prev {
			prev = l.Median
		}
	}
	return true
}

// String renders one line per layer.
func (hp *HopProgress) String() string {
	t := stats.NewTable("hop progress", "hop", "stations", "median-informed", "p90")
	for k, l := range hp.Layer {
		if l.N == 0 {
			continue
		}
		t.AddRow(k, l.N, l.Median, l.P90)
	}
	t.AddRow("slope", "", fmt.Sprintf("%.1f rounds/hop", hp.PerHop), "")
	return t.String()
}
