package sinr

import (
	"math"
	"strings"
	"testing"
)

// keyCases covers defaults, non-terminating decimals (1/3 stresses the
// shortest-round-trip formatting), subnormal-ish extremes, and values
// with long decimal expansions.
var keyCases = []Params{
	DefaultParams(),
	{Alpha: 2, Beta: 1, Noise: 1e-9, Eps: 0.5},
	{Alpha: 2.5, Beta: 1.5, Noise: 1, Eps: 1.0 / 3.0},
	{Alpha: 4, Beta: 2, Noise: 0.1, Eps: 0.9999999999999},
	{Alpha: math.Pi, Beta: math.E, Noise: math.Sqrt2, Eps: 1.0 / 7.0},
}

func TestParamsKeyRoundTrip(t *testing.T) {
	for _, p := range keyCases {
		key := p.Key()
		got, err := ParseParamsKey(key)
		if err != nil {
			t.Fatalf("ParseParamsKey(%q): %v", key, err)
		}
		if got != p {
			t.Fatalf("round trip of %q: got %+v, want %+v", key, got, p)
		}
		// The key is canonical: re-rendering the parse reproduces it.
		if got.Key() != key {
			t.Fatalf("re-render of %q gave %q", key, got.Key())
		}
	}
}

func TestParamsKeyIsCanonicalForm(t *testing.T) {
	key := DefaultParams().Key()
	want := "alpha=3,beta=1.5,noise=1,eps=" + formatKeyValue(1.0/3.0)
	if key != want {
		t.Fatalf("DefaultParams().Key() = %q, want %q", key, want)
	}
}

func TestEngineKeyRoundTrip(t *testing.T) {
	for _, engine := range []string{"exact", "grid", "hier", "auto"} {
		for _, p := range keyCases {
			key := EngineKey(engine, p)
			gotEngine, gotP, err := ParseEngineKey(key)
			if err != nil {
				t.Fatalf("ParseEngineKey(%q): %v", key, err)
			}
			if gotEngine != engine || gotP != p {
				t.Fatalf("round trip of %q: got (%q, %+v), want (%q, %+v)",
					key, gotEngine, gotP, engine, p)
			}
		}
	}
}

func TestParseParamsKeyRejects(t *testing.T) {
	bad := []string{
		"",                                     // empty
		"alpha=3",                              // missing fields
		"alpha=3,beta=1.5,noise=1,eps=x",       // not a number
		"alpha=3,beta=1.5,noise=1,eps=1,eps=2", // duplicate
		"alpha=3,beta=1.5,noise=1,gamma=2",     // unknown field
		"alpha=3,beta=1.5,noise=1,eps",         // malformed pair
	}
	for _, s := range bad {
		if _, err := ParseParamsKey(s); err == nil {
			t.Errorf("ParseParamsKey(%q) accepted malformed input", s)
		}
	}
	for _, s := range []string{"", "alpha=3,beta=1.5,noise=1,eps=0.3", "engine=,alpha=3,beta=1.5,noise=1,eps=0.3"} {
		if _, _, err := ParseEngineKey(s); err == nil {
			t.Errorf("ParseEngineKey(%q) accepted malformed input", s)
		}
	}
}

// TestKeyDistinguishesParams pins the content-addressing property the
// serve cache rests on: distinct physical configurations never collide.
func TestKeyDistinguishesParams(t *testing.T) {
	seen := map[string]Params{}
	for _, p := range keyCases {
		for _, engine := range []string{"exact", "hier"} {
			k := EngineKey(engine, p)
			if prev, dup := seen[k]; dup && prev != p {
				t.Fatalf("key %q collides: %+v vs %+v", k, prev, p)
			}
			seen[k] = p
		}
	}
	if len(seen) != 2*len(keyCases) {
		t.Fatalf("expected %d distinct keys, got %d", 2*len(keyCases), len(seen))
	}
	a := EngineKey("exact", DefaultParams())
	b := EngineKey("hier", DefaultParams())
	if a == b || !strings.Contains(a, "engine=exact") {
		t.Fatalf("engine name not part of the key: %q vs %q", a, b)
	}
}
