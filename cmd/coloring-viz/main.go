// Command coloring-viz runs StabilizeProbability on a generated network
// and prints the resulting color distribution plus the Lemma 1 and
// Lemma 2 invariant measurements — the fastest way to inspect what the
// paper's §3 procedure actually computes on a given topology.
//
// Usage:
//
//	coloring-viz -family uniform -n 128 -density 24
//	coloring-viz -family expchain -n 64 -ratio 0.7
package main

import (
	"flag"
	"fmt"
	"os"

	"sinrcast/internal/coloring"
	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
	"sinrcast/internal/stats"
)

func main() {
	var (
		family  = flag.String("family", "uniform", "uniform|path|clusters|expchain")
		n       = flag.Int("n", 128, "number of stations")
		density = flag.Float64("density", 8, "uniform density")
		ratio   = flag.Float64("ratio", 0.7, "expchain shrink ratio")
		seed    = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	p := sinr.DefaultParams()
	gen := netgen.Config{Params: p, Seed: *seed}
	var (
		net *network.Network
		err error
	)
	switch *family {
	case "uniform":
		net, err = netgen.Uniform(gen, *n, *density)
	case "path":
		net, err = netgen.Path(gen, *n, 0.9)
	case "clusters":
		net, err = netgen.Clusters(gen, 4, *n/4, 0.08, 0.6)
	case "expchain":
		net, err = netgen.ExponentialChain(gen, *n, 0.5, *ratio)
	default:
		fmt.Fprintf(os.Stderr, "coloring-viz: unknown family %q\n", *family)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "coloring-viz: %v\n", err)
		os.Exit(1)
	}

	par := coloring.DefaultParams(net.N(), net.Space.Growth(), net.Params.Eps)
	res, err := coloring.Run(net, par, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coloring-viz: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("network    %s n=%d Rs=%.3g\n", *family, net.N(), net.Granularity())
	fmt.Printf("schedule   %d rounds (%d phases × %d), palette up to %d colors\n",
		par.TotalRounds(), par.Phases(), par.PhaseLen(), par.NumColors())
	fmt.Printf("traffic    %d transmissions, %d receptions\n\n",
		res.Metrics.Transmissions, res.Metrics.Receptions)

	counts := map[float64]int{}
	for _, c := range res.Colors {
		counts[c]++
	}
	tb := stats.NewTable("color distribution", "color (prob)", "stations", "bar")
	for _, c := range coloring.Palette(res.Colors) {
		bar := ""
		for i := 0; i < counts[c]*40/net.N()+1; i++ {
			bar += "#"
		}
		tb.AddRow(fmt.Sprintf("%.6f", c), counts[c], bar)
	}
	fmt.Println(tb.String())

	l1 := coloring.CheckLemma1(net, res.Colors)
	l2 := coloring.CheckLemma2(net, res.Colors)
	fmt.Printf("Lemma 1: max per-color unit-ball mass = %.4f (station %d, color %.5f)\n",
		l1.MaxMass, l1.Station, l1.Color)
	fmt.Printf("Lemma 2: min best-color ε/2-ball mass = %.5f = %.2f×2pmax (station %d)\n",
		l2.MinBestMass, l2.MinBestMass/par.FinalColor(), l2.Station)
}
