package protocol

import (
	"sinrcast/internal/network"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// TracedChannel wraps a Channel so every physical-layer round of a run
// is recorded into log: transmitter sets and, for subset-resolved
// rounds, the receiver subsets, in call order (see sim.RoundLog). A
// nil ch records the default exact engine. The recorded trace is
// protocol-realistic transmitter churn — the round-trace benchmarks
// replay it against an engine without re-running the protocol.
func TracedChannel(ch Channel, log *sim.RoundLog) Channel {
	return func(net *network.Network) (sim.Resolver, error) {
		var (
			inner sim.Resolver
			err   error
		)
		if ch != nil {
			inner, err = ch(net)
		} else {
			inner, err = sinr.NewEngine(net.Space, net.Params)
		}
		if err != nil {
			return nil, err
		}
		return sim.RecordRounds(inner, log), nil
	}
}
