package sinr

import (
	"math"
	"testing"

	"sinrcast/internal/geom"
	"sinrcast/internal/rng"
)

func mustEngine(t *testing.T, s geom.Space, p Params) *Engine {
	t.Helper()
	e, err := NewEngine(s, p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		gamma   float64
		wantErr bool
	}{
		{"default ok", DefaultParams(), 2, false},
		{"alpha below growth", Params{Alpha: 1.5, Beta: 1, Noise: 1, Eps: 0.5}, 2, true},
		{"alpha equal growth", Params{Alpha: 2, Beta: 1, Noise: 1, Eps: 0.5}, 2, true},
		{"beta below one", Params{Alpha: 3, Beta: 0.9, Noise: 1, Eps: 0.5}, 2, true},
		{"zero noise", Params{Alpha: 3, Beta: 1, Noise: 0, Eps: 0.5}, 2, true},
		{"eps zero", Params{Alpha: 3, Beta: 1, Noise: 1, Eps: 0}, 2, true},
		{"eps one", Params{Alpha: 3, Beta: 1, Noise: 1, Eps: 1}, 2, true},
		{"line metric ok", Params{Alpha: 1.5, Beta: 1, Noise: 1, Eps: 0.5}, 1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate(tt.gamma)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRangeIsOne(t *testing.T) {
	p := DefaultParams()
	if r := p.Range(); math.Abs(r-1) > 1e-12 {
		t.Fatalf("Range = %v, want 1", r)
	}
	if p.Power() != p.Noise*p.Beta {
		t.Fatal("Power != N*beta")
	}
}

func TestSingleTransmitterInRange(t *testing.T) {
	// A lone transmitter is heard exactly up to distance 1.
	p := DefaultParams()
	tests := []struct {
		name string
		d    float64
		want bool
	}{
		{"very close", 0.1, true},
		{"mid", 0.6, true},
		{"just inside", 0.999, true},
		{"boundary", 1.0, true},
		{"just outside", 1.001, false},
		{"far", 2.0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := mustEngine(t, geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: tt.d, Y: 0}}), p)
			rec := e.Resolve([]int{0})
			got := len(rec) == 1
			if got != tt.want {
				t.Fatalf("reception at distance %v = %v, want %v", tt.d, got, tt.want)
			}
			if got && (rec[0].Receiver != 1 || rec[0].Transmitter != 0) {
				t.Fatalf("wrong reception %+v", rec[0])
			}
		})
	}
}

func TestTransmitterCannotReceive(t *testing.T) {
	e := mustEngine(t, geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 0.3, Y: 0}}), DefaultParams())
	rec := e.Resolve([]int{0, 1})
	for _, r := range rec {
		if r.Receiver == 0 || r.Receiver == 1 {
			t.Fatalf("transmitting station received: %+v", r)
		}
	}
}

func TestCollisionBlocksEquidistant(t *testing.T) {
	// Two transmitters equidistant from the receiver: SINR < beta since
	// the interferer is as strong as the signal and beta >= 1.
	e := mustEngine(t, geom.NewEuclidean([]geom.Point{
		{X: -0.5, Y: 0}, {X: 0.5, Y: 0}, {X: 0, Y: 0},
	}), DefaultParams())
	rec := e.Resolve([]int{0, 1})
	for _, r := range rec {
		if r.Receiver == 2 {
			t.Fatalf("station 2 decoded despite symmetric collision: %+v", r)
		}
	}
}

func TestCaptureEffect(t *testing.T) {
	// A much closer transmitter is decoded despite a far interferer.
	e := mustEngine(t, geom.NewEuclidean([]geom.Point{
		{X: 0, Y: 0},    // close tx
		{X: 10, Y: 0},   // far interferer
		{X: 0.05, Y: 0}, // receiver next to station 0
	}), DefaultParams())
	rec := e.Resolve([]int{0, 1})
	found := false
	for _, r := range rec {
		if r.Receiver == 2 && r.Transmitter == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("capture effect failed: close transmitter not decoded")
	}
}

func TestInterferenceShrinksRange(t *testing.T) {
	// With an active interferer, the boundary reception at distance ~1
	// must fail, while a much closer reception still succeeds.
	pts := []geom.Point{
		{X: 0, Y: 0},    // tx A
		{X: 0.95, Y: 0}, // receiver near edge of A's range
		{X: 3, Y: 0},    // tx B (interferer)
	}
	e := mustEngine(t, geom.NewEuclidean(pts), DefaultParams())
	if rec := e.Resolve([]int{0}); len(rec) != 1 || rec[0].Receiver != 1 {
		t.Fatalf("lone transmission failed: %+v", rec)
	}
	rec := e.Resolve([]int{0, 2})
	for _, r := range rec {
		if r.Receiver == 1 {
			t.Fatalf("edge reception should fail under interference, got %+v", r)
		}
	}
}

func TestEmptyTransmitSet(t *testing.T) {
	e := mustEngine(t, geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}), DefaultParams())
	if rec := e.Resolve(nil); rec != nil {
		t.Fatalf("Resolve(nil) = %v, want nil", rec)
	}
}

func TestResolvePanicsOnBadIndex(t *testing.T) {
	e := mustEngine(t, geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}}), DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on out-of-range transmitter")
		}
	}()
	e.Resolve([]int{5})
}

func TestGenericMatchesEuclidean(t *testing.T) {
	// The generic path over a Line must agree with the Euclidean path
	// over the same collinear points.
	coords := []float64{0, 0.4, 0.9, 1.5, 2.0, 2.6, 3.3}
	var pts []geom.Point
	for _, c := range coords {
		pts = append(pts, geom.Point{X: c})
	}
	pLine := DefaultParams()
	pLine.Alpha = 3 // fine for gamma=1 too
	eu := mustEngine(t, geom.NewEuclidean(pts), pLine)
	li := mustEngine(t, geom.NewLine(coords), pLine)

	r := rng.New(17)
	for trial := 0; trial < 200; trial++ {
		var tx []int
		for i := range coords {
			if r.Bernoulli(0.3) {
				tx = append(tx, i)
			}
		}
		a := eu.Resolve(tx)
		b := li.Resolve(tx)
		if len(a) != len(b) {
			t.Fatalf("trial %d: euclidean %v vs line %v", trial, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: mismatch %+v vs %+v", trial, a[i], b[i])
			}
		}
	}
}

func TestSINRAtMatchesFactTwo(t *testing.T) {
	// Fact 2: with x <= 1/2^{1/alpha}, interference <= N/(2x^alpha)
	// allows hearing from distance x. Verify numerically at the
	// boundary for several x.
	p := DefaultParams()
	for _, x := range []float64{0.2, 0.4, 0.6, 0.75} {
		if x > math.Pow(0.5, 1/p.Alpha) {
			continue
		}
		maxIntf := p.Noise / (2 * math.Pow(x, p.Alpha))
		sig := p.Signal(x)
		if !p.Decodes(sig, maxIntf-p.Noise) {
			// Decodes takes interference excluding noise; Fact 2's bound
			// is on total interference, so subtract noise which Decodes
			// re-adds.
			t.Fatalf("Fact 2 violated at x=%v", x)
		}
	}
}

func TestInterferenceAt(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	e := mustEngine(t, geom.NewEuclidean(pts), DefaultParams())
	p := e.Params()
	got := e.InterferenceAt(0, []int{1, 2})
	want := p.Signal(1) + p.Signal(2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("InterferenceAt = %v, want %v", got, want)
	}
	// Self is excluded.
	if got := e.InterferenceAt(1, []int{1}); got != 0 {
		t.Fatalf("self-interference = %v, want 0", got)
	}
}

func TestSINRAt(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 2, Y: 0}}
	e := mustEngine(t, geom.NewEuclidean(pts), DefaultParams())
	p := e.Params()
	got := e.SINRAt(0, 1, []int{0, 2})
	want := p.Signal(0.5) / (p.Noise + p.Signal(1.5))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("SINRAt = %v, want %v", got, want)
	}
}

func TestGridEngineAgreement(t *testing.T) {
	// The grid engine must agree with the exact engine on virtually all
	// receptions; disagreements are only allowed at razor-thin SINR
	// margins introduced by far-field aggregation.
	r := rng.New(99)
	n := 300
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, 12), Y: r.Range(0, 12)}
	}
	eu := geom.NewEuclidean(pts)
	p := DefaultParams()
	exact := mustEngine(t, eu, p)
	grid, err := NewGridEngine(eu, p, 1.0, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if grid.N() != n {
		t.Fatalf("grid.N = %d", grid.N())
	}
	total, differ := 0, 0
	for trial := 0; trial < 100; trial++ {
		var tx []int
		for i := 0; i < n; i++ {
			if r.Bernoulli(0.05) {
				tx = append(tx, i)
			}
		}
		a := exact.Resolve(tx)
		b := grid.Resolve(tx)
		am := map[int]int{}
		for _, x := range a {
			am[x.Receiver] = x.Transmitter
		}
		bm := map[int]int{}
		for _, x := range b {
			bm[x.Receiver] = x.Transmitter
		}
		total += len(am)
		for k, v := range am {
			if bm[k] != v {
				differ++
			}
		}
		for k := range bm {
			if _, ok := am[k]; !ok {
				differ++
			}
		}
	}
	if total == 0 {
		t.Fatal("no receptions at all; test is vacuous")
	}
	if rate := float64(differ) / float64(total); rate > 0.02 {
		t.Fatalf("grid disagreement rate %v (%d/%d) too high", rate, differ, total)
	}
}

func TestGridEngineRejectsBadArgs(t *testing.T) {
	eu := geom.NewEuclidean([]geom.Point{{X: 0, Y: 0}})
	if _, err := NewGridEngine(eu, DefaultParams(), 0, 1); err == nil {
		t.Fatal("want error for zero cell size")
	}
	if _, err := NewGridEngine(eu, DefaultParams(), 1, 0); err == nil {
		t.Fatal("want error for zero near radius")
	}
	if _, err := NewGridEngine(eu, DefaultParams(), 1, 0.5); err == nil {
		t.Fatal("want error for nearRadius below the communication range (candidate search only covers the near box)")
	}
	if _, err := NewGridEngine(geom.NewEuclidean(nil), DefaultParams(), 1, 1); err == nil {
		t.Fatal("want error for empty point set")
	}
}

func TestResolveScratchReuseIsClean(t *testing.T) {
	// Back-to-back rounds must not leak state between calls.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 5, Y: 0}, {X: 5.5, Y: 0}}
	e := mustEngine(t, geom.NewEuclidean(pts), DefaultParams())
	r1 := e.Resolve([]int{0})
	if len(r1) != 1 || r1[0].Receiver != 1 {
		t.Fatalf("round 1: %+v", r1)
	}
	r2 := e.Resolve([]int{2})
	if len(r2) != 1 || r2[0].Receiver != 3 || r2[0].Transmitter != 2 {
		t.Fatalf("round 2 leaked state: %+v", r2)
	}
}

func BenchmarkResolveSparse(b *testing.B) {
	r := rng.New(1)
	n := 1024
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, 20), Y: r.Range(0, 20)}
	}
	e, err := NewEngine(geom.NewEuclidean(pts), DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	tx := make([]int, 0, 32)
	for i := 0; i < 32; i++ {
		tx = append(tx, r.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Resolve(tx)
	}
}

func BenchmarkGridResolveSparse(b *testing.B) {
	r := rng.New(1)
	n := 1024
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, 20), Y: r.Range(0, 20)}
	}
	g, err := NewGridEngine(geom.NewEuclidean(pts), DefaultParams(), 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	tx := make([]int, 0, 32)
	for i := 0; i < 32; i++ {
		tx = append(tx, r.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Resolve(tx)
	}
}
