package simd

import (
	"math"
	"testing"

	"sinrcast/internal/rng"
)

// batchAlphas covers every kernel mode: the two reciprocal shapes, the
// specialized odd/half batch bodies (α=3, α=2.5), their generic
// siblings (α=5, α=3.5), an even chain (α=6) and the Pow fallback.
var batchAlphas = []float64{2, 2.5, 3, 3.5, 4, 5, 6, math.Pi}

// batchLens fuzzes the tail handling: every residue mod 8 below and
// above the unroll widths, plus longer slabs.
var batchLens = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 15, 16, 17, 31, 32, 33, 63, 64, 67}

func randSlabs(r *rng.Source, n int) (x, y, p []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	p = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Range(-50, 50)
		y[i] = r.Range(-50, 50)
		p[i] = r.Range(0.1, 3)
	}
	return
}

func TestFarSumBitIdenticalToScalar(t *testing.T) {
	r := rng.New(7)
	for _, alpha := range batchAlphas {
		k := NewKernel(alpha)
		for _, n := range batchLens {
			x, y, p := randSlabs(r, n)
			upx, upy := r.Range(-60, 60), r.Range(-60, 60)
			want := 0.0
			for i := 0; i < n; i++ {
				dx, dy := upx-x[i], upy-y[i]
				want += p[i] * k.FromDist2(dx*dx+dy*dy)
			}
			if got := k.FarSum(upx, upy, x, y, p); got != want {
				t.Fatalf("alpha=%v n=%d: FarSum=%v scalar=%v (diff %g)",
					alpha, n, got, want, got-want)
			}
		}
	}
}

func TestNearScanBitIdenticalToScalar(t *testing.T) {
	r := rng.New(8)
	for _, alpha := range batchAlphas {
		k := NewKernel(alpha)
		for _, n := range batchLens {
			x, y, _ := randSlabs(r, n)
			upx, upy := r.Range(-60, 60), r.Range(-60, 60)
			pw := r.Range(0.5, 2)
			// Exercise both a fresh scan and a continued one with a
			// standing best the slab may or may not beat.
			for _, start := range []float64{math.Inf(1), r.Range(100, 5000)} {
				startTotal := r.Range(0, 10)
				wTotal, wBest, wBD2 := startTotal, -1, start
				for i := 0; i < n; i++ {
					dx, dy := upx-x[i], upy-y[i]
					d2 := dx*dx + dy*dy
					wTotal += pw * k.FromDist2(d2)
					if d2 < wBD2 {
						wBD2, wBest = d2, i
					}
				}
				gTotal, gBest, gBD2 := k.NearScan(pw, upx, upy, x, y, startTotal, start)
				if gTotal != wTotal || gBest != wBest || gBD2 != wBD2 {
					t.Fatalf("alpha=%v n=%d start=%v: NearScan=(%v,%d,%v) scalar=(%v,%d,%v)",
						alpha, n, start, gTotal, gBest, gBD2, wTotal, wBest, wBD2)
				}
			}
		}
	}
}

func TestNearScanIndexedBitIdenticalToScalar(t *testing.T) {
	r := rng.New(9)
	ptsX, ptsY, _ := randSlabs(r, 200)
	for _, alpha := range batchAlphas {
		k := NewKernel(alpha)
		for _, n := range batchLens {
			ids := make([]int32, n)
			for i := range ids {
				ids[i] = int32(r.Intn(200))
			}
			upx, upy := r.Range(-60, 60), r.Range(-60, 60)
			pw := r.Range(0.5, 2)
			startTotal := r.Range(0, 10)
			start := r.Range(0.5, 3000)
			wTotal, wBest, wBD2 := startTotal, int32(-1), start
			for _, id := range ids {
				dx, dy := upx-ptsX[id], upy-ptsY[id]
				d2 := dx*dx + dy*dy
				wTotal += pw * k.FromDist2(d2)
				if d2 < wBD2 {
					wBD2, wBest = d2, id
				}
			}
			gTotal, gBest, gBD2 := k.NearScanIndexed(pw, upx, upy, ids, ptsX, ptsY, startTotal, start)
			if gTotal != wTotal || gBest != wBest || gBD2 != wBD2 {
				t.Fatalf("alpha=%v n=%d: NearScanIndexed=(%v,%d,%v) scalar=(%v,%d,%v)",
					alpha, n, gTotal, gBest, gBD2, wTotal, wBest, wBD2)
			}
		}
	}
}

func TestAccumRowBitIdenticalToScalar(t *testing.T) {
	r := rng.New(10)
	for _, alpha := range batchAlphas {
		k := NewKernel(alpha)
		for _, n := range batchLens {
			x, y, _ := randSlabs(r, n)
			isTx := make([]bool, n)
			for i := range isTx {
				isTx[i] = r.Intn(5) == 0
			}
			pw := r.Range(0.5, 2)
			tx0, ty0 := r.Range(-60, 60), r.Range(-60, 60)
			wSig := make([]float64, n)
			wBD := make([]float64, n)
			wBest := make([]int32, n)
			gSig := make([]float64, n)
			gBD := make([]float64, n)
			gBest := make([]int32, n)
			for i := 0; i < n; i++ {
				wSig[i] = r.Range(0, 5)
				gSig[i] = wSig[i]
				wBD[i] = r.Range(0.5, 4000)
				gBD[i] = wBD[i]
				wBest[i] = int32(r.Intn(50)) - 1
				gBest[i] = wBest[i]
			}
			const tid = int32(321)
			for i := 0; i < n; i++ {
				if isTx[i] {
					continue
				}
				dx := x[i] - tx0
				dy := y[i] - ty0
				d2 := dx*dx + dy*dy
				wSig[i] += pw * k.FromDist2(d2)
				if d2 < wBD[i] {
					wBD[i] = d2
					wBest[i] = tid
				}
			}
			k.AccumRow(pw, tx0, ty0, tid, x, y, isTx, gSig, gBD, gBest)
			for i := 0; i < n; i++ {
				if gSig[i] != wSig[i] || gBD[i] != wBD[i] || gBest[i] != wBest[i] {
					t.Fatalf("alpha=%v n=%d i=%d: AccumRow=(%v,%v,%d) scalar=(%v,%v,%d)",
						alpha, n, i, gSig[i], gBD[i], gBest[i], wSig[i], wBD[i], wBest[i])
				}
			}
		}
	}
}

// asmDisagreementBound is the measured-disagreement contract of the
// assembly tier: all terms are positive, so the 4-lane reorder can only
// shift the relative error by O(n·ε) with no cancellation — 1e-13
// leaves an order of magnitude of headroom over the worst case observed
// across the fuzzed slabs.
const asmDisagreementBound = 1e-13

func TestFarSumFastAsmBoundedDisagreement(t *testing.T) {
	if !AsmAvailable() {
		t.Skip("assembly tier unavailable on this CPU/build")
	}
	if !SetUseAsm(true) {
		t.Fatal("SetUseAsm(true) refused despite AsmAvailable")
	}
	defer SetUseAsm(false)
	r := rng.New(11)
	for _, alpha := range []float64{2, 4} {
		k := NewKernel(alpha)
		for _, n := range batchLens {
			x, y, p := randSlabs(r, n)
			upx, upy := r.Range(-60, 60), r.Range(-60, 60)
			want := k.FarSum(upx, upy, x, y, p)
			got := k.FarSumFast(upx, upy, x, y, p)
			if want == got {
				continue
			}
			rel := math.Abs(got-want) / math.Abs(want)
			if rel > asmDisagreementBound || math.IsNaN(rel) {
				t.Fatalf("alpha=%v n=%d: asm=%v portable=%v rel=%g exceeds %g",
					alpha, n, got, want, rel, asmDisagreementBound)
			}
		}
	}
}

func TestFarSumFastWithoutOptInIsPortable(t *testing.T) {
	SetUseAsm(false)
	r := rng.New(12)
	for _, alpha := range batchAlphas {
		k := NewKernel(alpha)
		x, y, p := randSlabs(r, 37)
		upx, upy := r.Range(-60, 60), r.Range(-60, 60)
		if got, want := k.FarSumFast(upx, upy, x, y, p), k.FarSum(upx, upy, x, y, p); got != want {
			t.Fatalf("alpha=%v: FarSumFast without opt-in = %v, want portable %v", alpha, got, want)
		}
	}
}

func TestSetUseAsmSemantics(t *testing.T) {
	defer SetUseAsm(false)
	if UsingAsm() {
		t.Fatal("asm on by default")
	}
	ok := SetUseAsm(true)
	if ok != AsmAvailable() {
		t.Fatalf("SetUseAsm(true) = %v, want AsmAvailable() = %v", ok, AsmAvailable())
	}
	if UsingAsm() != AsmAvailable() {
		t.Fatalf("UsingAsm() = %v after opt-in, want %v", UsingAsm(), AsmAvailable())
	}
	if !SetUseAsm(false) {
		t.Fatal("SetUseAsm(false) must always succeed")
	}
	if UsingAsm() {
		t.Fatal("UsingAsm() true after SetUseAsm(false)")
	}
}

func TestArgMinBitIdenticalToScalar(t *testing.T) {
	r := rng.New(13)
	for _, n := range batchLens {
		x, y, _ := randSlabs(r, n)
		upx, upy := r.Range(-60, 60), r.Range(-60, 60)
		for _, start := range []float64{math.Inf(1), r.Range(100, 5000)} {
			wBest, wBD2 := -1, start
			for i := 0; i < n; i++ {
				dx, dy := upx-x[i], upy-y[i]
				d2 := dx*dx + dy*dy
				if d2 < wBD2 {
					wBD2, wBest = d2, i
				}
			}
			gBest, gBD2 := ArgMin(upx, upy, x, y, start)
			if gBest != wBest || gBD2 != wBD2 {
				t.Fatalf("n=%d start=%v: ArgMin=(%d,%v) scalar=(%d,%v)",
					n, start, gBest, gBD2, wBest, wBD2)
			}
		}
	}
}

// TestNearSumMatchesNearScanTotal pins the rejection/accumulation split:
// NearSum's fold must be bit-identical to the total a fused NearScan
// computes over the same slab, for every kernel mode and tail length.
func TestNearSumMatchesNearScanTotal(t *testing.T) {
	r := rng.New(14)
	for _, alpha := range batchAlphas {
		k := NewKernel(alpha)
		for _, n := range batchLens {
			x, y, _ := randSlabs(r, n)
			upx, upy := r.Range(-60, 60), r.Range(-60, 60)
			pw := r.Range(0.5, 2)
			startTotal := r.Range(0, 10)
			want, _, _ := k.NearScan(pw, upx, upy, x, y, startTotal, math.Inf(1))
			if got := k.NearSum(pw, upx, upy, x, y, startTotal); got != want {
				t.Fatalf("alpha=%v n=%d: NearSum=%v NearScan total=%v (diff %g)",
					alpha, n, got, want, got-want)
			}
		}
	}
}
