//go:build purego || !amd64

package simd

import "testing"

// TestPortableFallbackSelected pins the cross-build contract: on builds
// without the assembly tier (purego tag, or any non-amd64 GOARCH) the
// portable path must be reported unavailable and the opt-in must be
// refused, so FarSumFast is exactly FarSum.
func TestPortableFallbackSelected(t *testing.T) {
	if AsmAvailable() {
		t.Fatal("AsmAvailable() = true in a build without the assembly tier")
	}
	if SetUseAsm(true) {
		t.Fatal("SetUseAsm(true) accepted without an assembly tier")
	}
	if UsingAsm() {
		t.Fatal("UsingAsm() = true after a refused opt-in")
	}
}
