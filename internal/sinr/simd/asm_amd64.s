//go:build amd64 && !purego

#include "textflag.h"

// Shared constant: 1.0, broadcast as the dividend for the reciprocal.
DATA one<>+0(SB)/8, $0x3FF0000000000000
GLOBL one<>(SB), RODATA|NOPTR, $8

// func farSumInvSqAVX2(upx, upy float64, x, y, p []float64) float64
//
// Caller guarantees len(x) == len(y) == len(p) and len(x)%4 == 0.
// One YMM accumulator (4 lanes), per iteration:
//   acc += p[i..i+3] * (1 / ((upx-x)² + (upy-y)²))
// then an in-index-order lane reduce (((l0+l1)+l2)+l3).
TEXT ·farSumInvSqAVX2(SB), NOSPLIT, $0-96
	VBROADCASTSD upx+0(FP), Y0
	VBROADCASTSD upy+8(FP), Y1
	MOVQ x_base+16(FP), SI
	MOVQ y_base+40(FP), DI
	MOVQ p_base+64(FP), DX
	MOVQ x_len+24(FP), CX
	VXORPD Y2, Y2, Y2          // acc = 0
	VBROADCASTSD one<>(SB), Y3 // 1.0 per lane
	SHRQ $2, CX
	JZ   reduce

loop:
	VMOVUPD (SI), Y4           // x
	VMOVUPD (DI), Y5           // y
	VSUBPD  Y4, Y0, Y4         // dx = upx - x
	VSUBPD  Y5, Y1, Y5         // dy = upy - y
	VMULPD  Y4, Y4, Y4         // dx²
	VMULPD  Y5, Y5, Y5         // dy²
	VADDPD  Y5, Y4, Y4         // d² = dx² + dy²
	VDIVPD  Y4, Y3, Y4         // 1/d²
	VMOVUPD (DX), Y6           // p
	VMULPD  Y6, Y4, Y4         // p/d²
	VADDPD  Y4, Y2, Y2         // acc +=
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, DX
	DECQ CX
	JNZ  loop

reduce:
	VEXTRACTF128 $1, Y2, X5    // lanes 2,3; X2 holds lanes 0,1
	VSHUFPD $1, X2, X2, X6     // lane 1
	VADDSD  X6, X2, X2         // l0 + l1
	VADDSD  X5, X2, X2         // + l2
	VSHUFPD $1, X5, X5, X6     // lane 3
	VADDSD  X6, X2, X2         // + l3
	VZEROUPPER
	MOVSD X2, ret+88(FP)
	RET

// func farSumInvQuadAVX2(upx, upy float64, x, y, p []float64) float64
//
// Same contract as farSumInvSqAVX2 with the α=4 term p/(d²·d²).
TEXT ·farSumInvQuadAVX2(SB), NOSPLIT, $0-96
	VBROADCASTSD upx+0(FP), Y0
	VBROADCASTSD upy+8(FP), Y1
	MOVQ x_base+16(FP), SI
	MOVQ y_base+40(FP), DI
	MOVQ p_base+64(FP), DX
	MOVQ x_len+24(FP), CX
	VXORPD Y2, Y2, Y2
	VBROADCASTSD one<>(SB), Y3
	SHRQ $2, CX
	JZ   reduce

loop:
	VMOVUPD (SI), Y4
	VMOVUPD (DI), Y5
	VSUBPD  Y4, Y0, Y4
	VSUBPD  Y5, Y1, Y5
	VMULPD  Y4, Y4, Y4
	VMULPD  Y5, Y5, Y5
	VADDPD  Y5, Y4, Y4         // d²
	VMULPD  Y4, Y4, Y4         // d²·d²
	VDIVPD  Y4, Y3, Y4         // 1/(d²·d²)
	VMOVUPD (DX), Y6
	VMULPD  Y6, Y4, Y4
	VADDPD  Y4, Y2, Y2
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, DX
	DECQ CX
	JNZ  loop

reduce:
	VEXTRACTF128 $1, Y2, X5
	VSHUFPD $1, X2, X2, X6
	VADDSD  X6, X2, X2
	VADDSD  X5, X2, X2
	VSHUFPD $1, X5, X5, X6
	VADDSD  X6, X2, X2
	VZEROUPPER
	MOVSD X2, ret+88(FP)
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() uint64
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET
