package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStatsConsistentUnderChurn hammers one manager with concurrent
// Submit, Cancel, and a racing Shutdown, then checks the accounting
// invariants that the serve layer's Retry-After and the chaos suite
// lean on: every admission is eventually completed, rejections are
// counted, and a drained manager holds no work.
func TestStatsConsistentUnderChurn(t *testing.T) {
	m := New(Config{QueueDepth: 8, Workers: 4})
	var accepted atomic.Int64
	var rejected atomic.Int64
	var handles sync.Map

	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				// Drawn here, not inside the body: the job runs on a
				// worker goroutine and rand.Rand is not concurrency-safe.
				nap := time.Duration(r.Intn(200)) * time.Microsecond
				h, err := m.Submit(fmt.Sprintf("g%d-%d", g, i), func(ctx context.Context, _ int) error {
					select {
					case <-time.After(nap):
						return nil
					case <-ctx.Done():
						return ctx.Err()
					}
				})
				switch {
				case err == nil:
					accepted.Add(1)
					handles.Store(h.ID(), h)
					if r.Intn(4) == 0 {
						h.Cancel()
					}
				case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShutdown):
					rejected.Add(1)
				default:
					t.Errorf("unexpected submit error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	st := m.Stats()
	if st.Submitted != accepted.Load() {
		t.Fatalf("Submitted = %d, accepted = %d", st.Submitted, accepted.Load())
	}
	if st.Rejected != rejected.Load() {
		t.Fatalf("Rejected = %d, observed %d", st.Rejected, rejected.Load())
	}
	if st.Completed != st.Submitted {
		t.Fatalf("Completed = %d != Submitted = %d: a job was lost", st.Completed, st.Submitted)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("drained manager still reports running=%d queued=%d", st.Running, st.Queued)
	}
	if st.Depth != 8 {
		t.Fatalf("Depth = %d, want the configured queue capacity 8", st.Depth)
	}
	// Every accepted handle must be terminal.
	handles.Range(func(_, v any) bool {
		h := v.(*Handle)
		if s, _ := h.State(); !s.Terminal() {
			t.Fatalf("job %s not terminal after shutdown: %s", h.ID(), s)
		}
		return true
	})
}

// TestDrainRateAndRetryAfter pins the load gauges: completions move
// the drain rate off zero, and RetryAfter stays in its documented
// [1s, 60s] envelope with the conservative 2s fallback before any
// signal exists.
func TestDrainRateAndRetryAfter(t *testing.T) {
	m := New(Config{QueueDepth: 4, Workers: 2})
	defer m.Shutdown(context.Background())

	if ra := m.RetryAfter(); ra != 2*time.Second {
		t.Fatalf("RetryAfter with no drain history = %v, want 2s", ra)
	}
	if rate := m.DrainRate(); rate != 0 {
		t.Fatalf("DrainRate with no completions = %v, want 0", rate)
	}

	var hs []*Handle
	for i := 0; i < 6; i++ {
		h, err := m.Submit("quick", func(ctx context.Context, _ int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
		h.Wait(context.Background())
	}
	if rate := m.DrainRate(); rate <= 0 {
		t.Fatalf("DrainRate after %d completions = %v, want > 0", len(hs), rate)
	}
	if ra := m.RetryAfter(); ra < time.Second || ra > 60*time.Second {
		t.Fatalf("RetryAfter = %v outside [1s, 60s]", ra)
	}
	st := m.Stats()
	if st.DrainPerSec <= 0 {
		t.Fatalf("Stats.DrainPerSec = %v, want > 0", st.DrainPerSec)
	}
}

// TestResubmitKeepsID pins the replay contract: a resubmitted job
// lives under its original id, Get finds it there, and the id counter
// skips past replayed ids so fresh submissions never collide.
func TestResubmitKeepsID(t *testing.T) {
	m := New(Config{QueueDepth: 8, Workers: 1})
	defer m.Shutdown(context.Background())

	h, err := m.Resubmit("j7", "replayed", func(ctx context.Context, _ int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != "j7" {
		t.Fatalf("resubmitted id = %s, want j7", h.ID())
	}
	if got, ok := m.Get("j7"); !ok || got != h {
		t.Fatal("Get(j7) does not find the resubmitted job")
	}
	if err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Fresh ids continue past the replayed one.
	h2, err := m.Submit("fresh", func(ctx context.Context, _ int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if h2.ID() != "j8" {
		t.Fatalf("fresh id after replaying j7 = %s, want j8", h2.ID())
	}

	// A live id cannot be replayed twice.
	if _, err := m.Resubmit("j8", "dup", func(ctx context.Context, _ int) error { return nil }); err == nil {
		t.Fatal("Resubmit over a live id succeeded")
	}
	if _, err := m.Resubmit("", "anon", func(ctx context.Context, _ int) error { return nil }); err == nil {
		t.Fatal("Resubmit with an empty id succeeded")
	}
}
