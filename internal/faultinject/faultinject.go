// Package faultinject is a deterministic fault-injection registry for
// robustness testing of the service layer. Production code calls Fire
// at named points (cache build, engine clone, journal append/fsync,
// sink flush, worker stall); tests arm a point with a seeded failure
// schedule and the hook starts returning errors (or stalling) on a
// reproducible subset of calls. Unarmed — the only state a production
// process ever runs in — Fire is a single atomic pointer load: no
// allocation, no branch on configuration, no lock
// (TestUnarmedFireZeroAlloc pins the 0-alloc contract).
//
// Determinism: whether the k-th call at a point fails is a pure
// function of (schedule seed, point name, k). Concurrency may reorder
// which goroutine draws which k, but the multiset of injected failures
// per point is fixed, so chaos tests can assert invariants ("no
// accepted job is lost", "retries are byte-identical") under a known
// failure density and reproduce a run from its seeds.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"sinrcast/internal/rng"
)

// The named injection points wired into the service layer. A point
// name is just a string — packages may define their own — but the
// chaos suite arms exactly these.
const (
	// CacheBuild fails a warm-engine cache miss's build (serve.Cache).
	CacheBuild = "cache.build"
	// EngineClone fails the clone handout of a cached engine; the
	// cache degrades to a fresh build, never to a shared engine.
	EngineClone = "engine.clone"
	// JournalAppend fails appending a record to the job journal.
	JournalAppend = "journal.append"
	// JournalSync fails the journal's batched fsync.
	JournalSync = "journal.sync"
	// SinkFlush fails result-table writes/flushes to the client.
	SinkFlush = "sink.flush"
	// WorkerStall delays a job worker between dequeue and run.
	WorkerStall = "worker.stall"
)

// ErrInjected is the sentinel wrapped by every injected failure.
var ErrInjected = errors.New("faultinject: injected failure")

// Fault is one point's seeded failure schedule. Any combination of
// triggers may be set; a call fires when any of them matches.
type Fault struct {
	// Prob injects on each call independently with this probability,
	// decided by a deterministic draw from (Seed, point, call index).
	Prob float64
	// Seed drives the Prob draws.
	Seed uint64
	// Every injects on every Every-th call (1-based call indices).
	Every int
	// First injects on calls 1..First.
	First int
	// Stall, when set, makes a firing call sleep this long and return
	// nil instead of failing — the slow-worker schedule.
	Stall time.Duration
}

type pointState struct {
	fault Fault
	hash  uint64
	calls atomic.Int64
	fired atomic.Int64
}

type registry struct {
	points map[string]*pointState
}

var (
	reg atomic.Pointer[registry]
	mu  sync.Mutex // serializes Arm/Disarm; Fire never takes it
)

func pointHash(point string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(point))
	return h.Sum64()
}

// Arm installs (or replaces) the failure schedule of one point. Call
// counters restart from zero.
func Arm(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	next := &registry{points: make(map[string]*pointState)}
	if cur := reg.Load(); cur != nil {
		for name, st := range cur.points {
			next.points[name] = st
		}
	}
	next.points[point] = &pointState{fault: f, hash: pointHash(point)}
	reg.Store(next)
}

// Disarm removes one point's schedule.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	cur := reg.Load()
	if cur == nil {
		return
	}
	if _, ok := cur.points[point]; !ok {
		return
	}
	if len(cur.points) == 1 {
		reg.Store(nil)
		return
	}
	next := &registry{points: make(map[string]*pointState)}
	for name, st := range cur.points {
		if name != point {
			next.points[name] = st
		}
	}
	reg.Store(next)
}

// DisarmAll removes every schedule, restoring the zero-cost path.
func DisarmAll() {
	mu.Lock()
	defer mu.Unlock()
	reg.Store(nil)
}

// Armed reports whether the point currently has a schedule.
func Armed(point string) bool {
	r := reg.Load()
	return r != nil && r.points[point] != nil
}

// Calls returns how many times the point fired its hook since it was
// armed (0 when unarmed).
func Calls(point string) int64 {
	if r := reg.Load(); r != nil {
		if st := r.points[point]; st != nil {
			return st.calls.Load()
		}
	}
	return 0
}

// Fired returns how many calls actually injected (failed or stalled).
func Fired(point string) int64 {
	if r := reg.Load(); r != nil {
		if st := r.points[point]; st != nil {
			return st.fired.Load()
		}
	}
	return 0
}

// Fire is the hook production code places at an injection point. It
// returns nil when the point is unarmed or the schedule passes this
// call, an ErrInjected-wrapped error when the schedule fails it, and
// sleeps (returning nil) when the schedule stalls it.
func Fire(point string) error {
	r := reg.Load()
	if r == nil {
		return nil
	}
	st := r.points[point]
	if st == nil {
		return nil
	}
	n := st.calls.Add(1)
	f := &st.fault
	hit := (f.First > 0 && n <= int64(f.First)) ||
		(f.Every > 0 && n%int64(f.Every) == 0)
	if !hit && f.Prob > 0 {
		// One deterministic uniform draw in [0,1) per (seed, point, call).
		draw := float64(rng.Derive(f.Seed, st.hash, uint64(n))>>11) / (1 << 53)
		hit = draw < f.Prob
	}
	if !hit {
		return nil
	}
	st.fired.Add(1)
	if f.Stall > 0 {
		time.Sleep(f.Stall)
		return nil
	}
	return fmt.Errorf("%w at %s (call %d)", ErrInjected, point, n)
}
