// Vectorization equivalence: the batch-kernel replay (SetVectorized,
// on by default) must be bit-identical to the plain scalar loops on the
// portable path, and the opt-in assembly tier may only perturb results
// within a tiny measured bound. Frontier and near-slab lengths vary
// freely with the topology and churn, so the sequences below also fuzz
// the unroll tails (length mod 4/8) through the engine.
package sinr_test

import (
	"fmt"
	"testing"

	"sinrcast/internal/rng"
	"sinrcast/internal/sinr"
	"sinrcast/internal/sinr/simd"
)

// TestVectorizedReplayBitIdentity drives a vectorized engine and a
// SetVectorized(false) reference through identical round sequences —
// whole rounds and ResolveFor subsets (both the small list path and the
// masked large path) — across the three topology families and the three
// bench exponents, requiring byte-identical receptions throughout.
func TestVectorizedReplayBitIdentity(t *testing.T) {
	families := []struct{ name, spec string }{
		{"uniform", "uniform:n=640,density=8"},
		{"starclusters", "starclusters:arms=4,m=60,hops=40"},
		{"gridholes", "gridholes:n=640,spacing=0.45"},
	}
	alphas := []float64{2, 2.5, 4}
	for _, fam := range families {
		for _, alpha := range alphas {
			t.Run(fmt.Sprintf("%s/alpha=%g", fam.name, alpha), func(t *testing.T) {
				eu := seqScene(t, fam.spec, 31000+uint64(alpha*10))
				n := eu.Len()
				p := sinr.DefaultParams()
				mk := func(vec bool) *sinr.HierEngine {
					h, err := sinr.NewHierEngine(eu, p, sinr.DefaultCellSize, sinr.DefaultNearRadius, sinr.DefaultTheta)
					if err != nil {
						t.Fatal(err)
					}
					sinr.SetAlphaForTest(h, alpha)
					h.SetWorkers(1)
					h.SetVectorized(vec)
					return h
				}
				vec, scalar := mk(true), mk(false)
				r := rng.New(uint64(len(fam.name))*77 + uint64(alpha*4))
				var tx []int
				for round := 0; round < 24; round++ {
					churn := []float64{0.05, 0.2, 0.6}[round%3]
					tx = evolveTx(r, n, tx, churn, 0.05)
					label := fmt.Sprintf("%s/a=%g round=%d", fam.name, alpha, round)
					switch round % 3 {
					case 2:
						pr := 0.04 // small subsets: the lazily cached collectList path
						if round%2 == 0 {
							pr = 0.5 // large subsets: the masked whole-round path
						}
						sub := sortedSubset(r, n, pr)
						if len(sub) == 0 {
							continue
						}
						want := append([]sinr.Reception(nil), scalar.ResolveFor(tx, sub)...)
						diffRec(t, label+" vecFor", want, vec.ResolveFor(tx, sub))
					default:
						want := append([]sinr.Reception(nil), scalar.Resolve(tx)...)
						diffRec(t, label+" vec", want, vec.Resolve(tx))
					}
				}
			})
		}
	}
}

// TestVectorizedAsmBoundedDisagreement turns the assembly tier on for a
// whole engine and bounds how far the decode set may drift from the
// portable reference. The AVX2 far replay reorders the frontier sum, so
// a receiver balanced exactly on the SINR threshold may flip; with
// realistic scenes that is vanishingly rare, and the gate allows only a
// fraction of a percent of receptions to differ per round.
func TestVectorizedAsmBoundedDisagreement(t *testing.T) {
	if !simd.AsmAvailable() {
		t.Skip("assembly tier unavailable on this CPU/build")
	}
	if !simd.SetUseAsm(true) {
		t.Fatal("SetUseAsm(true) refused despite AsmAvailable")
	}
	t.Cleanup(func() { simd.SetUseAsm(false) })
	for _, fam := range []struct{ name, spec string }{
		{"uniform", "uniform:n=640,density=8"},
		{"starclusters", "starclusters:arms=4,m=60,hops=40"},
		{"gridholes", "gridholes:n=640,spacing=0.45"},
	} {
		for _, alpha := range []float64{2, 4} { // the shapes with asm kernels
			t.Run(fmt.Sprintf("%s/alpha=%g", fam.name, alpha), func(t *testing.T) {
				eu := seqScene(t, fam.spec, 5200+uint64(alpha))
				n := eu.Len()
				p := sinr.DefaultParams()
				mk := func(vec bool) *sinr.HierEngine {
					h, err := sinr.NewHierEngine(eu, p, sinr.DefaultCellSize, sinr.DefaultNearRadius, sinr.DefaultTheta)
					if err != nil {
						t.Fatal(err)
					}
					sinr.SetAlphaForTest(h, alpha)
					h.SetWorkers(1)
					h.SetVectorized(vec)
					return h
				}
				asm, ref := mk(true), mk(false)
				r := rng.New(uint64(alpha) * 31)
				var tx []int
				for round := 0; round < 12; round++ {
					tx = evolveTx(r, n, tx, 0.2, 0.05)
					want := append([]sinr.Reception(nil), ref.Resolve(tx)...)
					got := asm.Resolve(tx)
					inWant := map[sinr.Reception]bool{}
					for _, rc := range want {
						inWant[rc] = true
					}
					diff := 0
					for _, rc := range got {
						if !inWant[rc] {
							diff++
						} else {
							delete(inWant, rc)
						}
					}
					diff += len(inWant)
					budget := 1 + len(want)/200 // ≤0.5% of receptions + slack for tiny rounds
					if diff > budget {
						t.Fatalf("round %d: %d receptions differ between asm and portable (budget %d, |want|=%d)",
							round, diff, budget, len(want))
					}
				}
			})
		}
	}
}

// TestHotTableBlockGranularityGate is the hardware-independent cost
// gate of the block-granularity hot table: across a churny delta-path
// sequence, the mean number of counter bumps per live-cell transition
// must stay at least 20× below the (2·nearCells+1)² bumps the per-cell
// table paid for the same transitions.
func TestHotTableBlockGranularityGate(t *testing.T) {
	eu := seqScene(t, "uniform:n=900,density=8", 13)
	n := eu.Len()
	h, err := sinr.NewHierEngine(eu, sinr.DefaultParams(), sinr.DefaultCellSize, sinr.DefaultNearRadius, sinr.DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	h.SetWorkers(1)
	r := rng.New(5)
	var tx []int
	for round := 0; round < 120; round++ {
		tx = evolveTx(r, n, tx, 0.1, 0.05)
		h.Resolve(tx)
	}
	bumps, transitions := h.HotStatsForTest()
	if transitions == 0 {
		t.Fatal("no live-cell transitions recorded — the sequence never exercised the hot table")
	}
	perTransition := float64(bumps) / float64(transitions)
	nc := h.NearCellsForTest()
	perCell := float64((2*nc + 1) * (2*nc + 1))
	t.Logf("hot table: %.2f bumps/transition (block) vs %.0f (per-cell): %.1f×",
		perTransition, perCell, perCell/perTransition)
	if perCell < 20*perTransition {
		t.Fatalf("block hot table pays %.2f bumps/transition; per-cell would pay %.0f — ratio %.1f× is below the 20× gate",
			perTransition, perCell, perCell/perTransition)
	}
}
