package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestSplitStability(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(3)
	// Drawing from the parent must not change what Split(3) yields.
	for i := 0; i < 10; i++ {
		parent.Uint64()
	}
	c2 := parent.Split(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("Split(3) not stable under parent draws at %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams collided on %d of 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(99)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(8)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	for v, c := range counts {
		p := float64(c) / draws
		if math.Abs(p-0.1) > 0.01 {
			t.Fatalf("Intn(%d) value %d frequency %v, want ~0.1", n, v, p)
		}
	}
}

func TestPerm(t *testing.T) {
	s := New(4)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestRange(t *testing.T) {
	s := New(6)
	for i := 0; i < 1000; i++ {
		v := s.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range(-3,5) = %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(10)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(12)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v", mean)
	}
}

func TestReseedRestoresStream(t *testing.T) {
	s := New(77)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(77)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Reseed = %d, want %d", i, got, first[i])
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkBernoulli(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Bernoulli(0.1)
	}
}
