package coloring

import (
	"testing"
)

// TestConstantSweep explores the (CEps, DTThresh) landscape; -v prints a
// table of worst-case invariants across network families. Diagnostic
// only: it never fails. Used to pick DefaultParams.
func TestConstantSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic sweep")
	}
	nets := calibrationNets(t, 42)
	for _, ceps := range []float64{36, 72, 144} {
		for _, dtt := range []float64{0.5, 1.0} {
			worstL1, worstL2ratio := 0.0, 1e9
			for name, net := range nets {
				par := DefaultParams(net.N(), net.Space.Growth(), net.Params.Eps)
				par.CEps = ceps
				par.PMax = 1 / (2 * ceps)
				par.DTThresh = dtt
				par.POThresh = dtt
				if par.PStart() >= par.PMax {
					t.Logf("ceps=%.0f dtt=%.2f %s: skipped (pstart>=pmax)", ceps, dtt, name)
					continue
				}
				res, err := Run(net, par, 7)
				if err != nil {
					t.Fatal(err)
				}
				l1 := CheckLemma1(net, res.Colors)
				l2 := CheckLemma2(net, res.Colors)
				ratio := l2.MinBestMass / par.FinalColor()
				if l1.MaxMass > worstL1 {
					worstL1 = l1.MaxMass
				}
				if ratio < worstL2ratio {
					worstL2ratio = ratio
				}
				t.Logf("ceps=%3.0f dtt=%.2f %-14s L1=%.3f L2/2pmax=%.3f", ceps, dtt, name, l1.MaxMass, ratio)
			}
			t.Logf("ceps=%3.0f dtt=%.2f  => worstL1=%.3f worstL2ratio=%.3f", ceps, dtt, worstL1, worstL2ratio)
		}
	}
}
