package serve

// The chaos suite: every fault point armed with seeded schedules, and
// the daemon's robustness invariants asserted under them —
//
//  1. no accepted job is ever lost: every admitted id reaches a
//     terminal state, whatever faults fire;
//  2. jobs.Stats stays consistent: after a drain, Submitted ==
//     Completed, nothing queued, nothing running;
//  3. degraded paths never change results: clone failures fall back to
//     fresh builds with byte-identical tables, journal failures only
//     degrade /healthz.
//
// Schedules are deterministic — (seed, point, call-index) draws — so a
// failing run reproduces from its seeds.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sinrcast/internal/faultinject"
	"sinrcast/internal/jobs"
)

// waitTerminal polls a job until it leaves the queue/run states.
func waitTerminal(t *testing.T, baseURL, id string) (state string, jerr string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := get(t, baseURL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: %d %s", id, resp.StatusCode, body)
		}
		var out struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if jobs.State(out.State).Terminal() {
			return out.State, out.Error
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return "", ""
}

// TestChaosNoAcceptedJobLost runs a mixed workload with every
// non-result fault point armed and asserts invariants 1 and 2.
func TestChaosNoAcceptedJobLost(t *testing.T) {
	faultinject.Arm(faultinject.CacheBuild, faultinject.Fault{Prob: 0.3, Seed: 42})
	faultinject.Arm(faultinject.EngineClone, faultinject.Fault{Prob: 0.4, Seed: 43})
	faultinject.Arm(faultinject.JournalAppend, faultinject.Fault{Prob: 0.2, Seed: 44})
	faultinject.Arm(faultinject.JournalSync, faultinject.Fault{Prob: 0.2, Seed: 45})
	faultinject.Arm(faultinject.WorkerStall, faultinject.Fault{Every: 3, Seed: 46, Stall: time.Millisecond})
	defer faultinject.DisarmAll()

	path := tempJournal(t)
	s, ts := journalServer(t, path, Config{Jobs: jobs.Config{QueueDepth: 64, Workers: 4}})
	// Keep the breaker out of this test's way: injected build failures
	// are random across keys, and an open circuit rejects at admission
	// (a different invariant, pinned separately).
	s.Cache().SetBreaker(0, 0)
	waitReplay(t, s)

	var accepted []string
	for i := 0; i < 24; i++ {
		req := quickRun
		req.Seed = uint64(100 + i%6) // a few distinct keys, shared by several jobs
		resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
		var out struct{ ID string }
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		accepted = append(accepted, out.ID)
	}

	// Invariant 1: every accepted job reaches a terminal state. Failed
	// is acceptable (the fault was injected into its build) — lost is
	// not.
	for _, id := range accepted {
		state, jerr := waitTerminal(t, ts.URL, id)
		if state == string(jobs.StateFailed) && !strings.Contains(jerr, "injected") {
			t.Fatalf("job %s failed with a non-injected error: %s", id, jerr)
		}
	}

	// Invariant 2: counters reconcile after the drain.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := s.mgr.Stats()
	if st.Submitted != int64(len(accepted)) {
		t.Fatalf("Submitted = %d, accepted %d", st.Submitted, len(accepted))
	}
	if st.Completed != st.Submitted {
		t.Fatalf("Completed = %d != Submitted = %d", st.Completed, st.Submitted)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("drained manager still has running=%d queued=%d", st.Running, st.Queued)
	}
}

// TestChaosCloneFaultByteIdentical pins invariant 3 for the clone
// path: with every other engine-clone handout failing, the cache
// degrades to fresh builds and every result stays byte-identical to an
// unarmed run.
func TestChaosCloneFaultByteIdentical(t *testing.T) {
	_, ref := testServer(t, Config{})
	refID := submitJob(t, ref, quickRun)
	wantCode, want := fetchResult(t, ref, refID, "csv")
	if wantCode != http.StatusOK {
		t.Fatalf("reference run failed: %s", want)
	}

	faultinject.Arm(faultinject.EngineClone, faultinject.Fault{Every: 2, Seed: 7})
	defer faultinject.DisarmAll()
	_, ts := testServer(t, Config{})
	for i := 0; i < 6; i++ {
		id := submitJob(t, ts, quickRun)
		code, body := fetchResult(t, ts, id, "csv")
		if code != http.StatusOK {
			t.Fatalf("run %d under clone faults: status %d: %s", i, code, body)
		}
		if body != want {
			t.Fatalf("run %d under clone faults diverged:\ngot:  %q\nwant: %q", i, body, want)
		}
	}
	if faultinject.Fired(faultinject.EngineClone) == 0 {
		t.Fatal("clone fault never fired; the test exercised nothing")
	}
}

// TestChaosRetryByteIdentical pins that a job failed by an injected
// build fault, resubmitted after the fault clears, produces the exact
// bytes of a never-faulted run.
func TestChaosRetryByteIdentical(t *testing.T) {
	_, ref := testServer(t, Config{})
	refID := submitJob(t, ref, quickRun)
	_, want := fetchResult(t, ref, refID, "json")

	s, ts := testServer(t, Config{})
	s.Cache().SetBreaker(0, 0) // retries, not breaker semantics, under test
	faultinject.Arm(faultinject.CacheBuild, faultinject.Fault{First: 1, Seed: 9})
	defer faultinject.DisarmAll()

	id := submitJob(t, ts, quickRun)
	state, jerr := waitTerminal(t, ts.URL, id)
	if state != string(jobs.StateFailed) || !strings.Contains(jerr, "injected") {
		t.Fatalf("first attempt: state %s err %q, want injected failure", state, jerr)
	}
	// The fault was First:1 — retried submissions build clean.
	retry := submitJob(t, ts, quickRun)
	code, body := fetchResult(t, ts, retry, "json")
	if code != http.StatusOK {
		t.Fatalf("retry: status %d: %s", code, body)
	}
	if body != want {
		t.Fatalf("retried job diverged from never-faulted run:\ngot:  %q\nwant: %q", body, want)
	}
}

// TestChaosJournalFaultDegradesOnly pins that journal failures never
// touch job outcomes: with every append failing, jobs still run to
// done and only /healthz reports the degradation.
func TestChaosJournalFaultDegradesOnly(t *testing.T) {
	faultinject.Arm(faultinject.JournalAppend, faultinject.Fault{First: 1 << 30, Seed: 3})
	defer faultinject.DisarmAll()

	path := tempJournal(t)
	s, ts := journalServer(t, path, Config{})
	waitReplay(t, s)
	id := submitJob(t, ts, quickRun)
	if state, jerr := waitTerminal(t, ts.URL, id); state != string(jobs.StateDone) {
		t.Fatalf("job under journal faults: state %s err %q, want done", state, jerr)
	}
	if code, body := fetchResult(t, ts, id, "text"); code != http.StatusOK {
		t.Fatalf("result under journal faults: %d %s", code, body)
	}
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz must stay 200 when degraded, got %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "journal_error") {
		t.Fatalf("/healthz does not surface the journal degradation: %s", body)
	}
	if s.Journal().Err() == nil {
		t.Fatal("journal error not sticky")
	}
}

// TestChaosSinkFlushSurfaced pins the result-path half of the error
// contract: a mid-body sink failure is counted and visible on
// /healthz, never silently swallowed.
func TestChaosSinkFlushSurfaced(t *testing.T) {
	s, ts := testServer(t, Config{})
	id := submitJob(t, ts, quickRun)
	if code, _ := fetchResult(t, ts, id, "text"); code != http.StatusOK {
		t.Fatal("setup run failed")
	}

	faultinject.Arm(faultinject.SinkFlush, faultinject.Fault{First: 1, Seed: 1})
	defer faultinject.DisarmAll()
	fetchResult(t, ts, id, "csv") // body write fails mid-render
	if n := s.RenderErrors(); n != 1 {
		t.Fatalf("RenderErrors = %d, want 1", n)
	}
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "render_errors") {
		t.Fatalf("/healthz does not surface render errors: %d %s", resp.StatusCode, body)
	}
	// The fault is spent (First:1): the same result renders cleanly.
	if code, body := fetchResult(t, ts, id, "csv"); code != http.StatusOK || !strings.Contains(body, "trial") {
		t.Fatalf("result after spent fault: %d %q", code, body)
	}
}

// TestChaosCrashMidJobResume is the in-process kill -9: a journaled
// daemon is abandoned (not drained) mid-job, a second daemon replays
// its journal, and the job finishes under its original id with the
// reference bytes.
func TestChaosCrashMidJobResume(t *testing.T) {
	req := JobRequest{Scenario: "uniform:n=32", Protocol: "decay", Seed: 21, Trials: 3}
	_, ref := testServer(t, Config{})
	refID := submitJob(t, ref, req)
	_, want := fetchResult(t, ref, refID, "csv")

	path := tempJournal(t)
	cfg := Config{JournalPath: path}
	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitReplay(t, s1)
	// Gate the job body so the "crash" happens while it is running.
	started := make(chan string, 1)
	block := make(chan struct{})
	s1.runHook = func(id string) {
		select {
		case started <- id:
		default:
		}
		<-block
	}
	ts1 := httptest.NewServer(s1.Handler())
	id := submitJob(t, ts1, req)
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started")
	}
	// "kill -9": no Shutdown, no journal Close — just stop talking to
	// the server and let the accept record (AppendSync) be the only
	// durable trace. The blocked worker goroutine leaks for the rest of
	// the test binary, exactly like a crashed process's threads.
	ts1.Close()
	if err := s1.Journal().Sync(); err != nil {
		t.Fatal(err) // the accept record must already be durable
	}

	s2, ts2 := journalServer(t, path, cfg)
	waitReplay(t, s2)
	code, body := fetchResult(t, ts2, id, "csv")
	if code != http.StatusOK {
		t.Fatalf("resumed job %s: status %d: %s", id, code, body)
	}
	if body != want {
		t.Fatalf("post-crash result diverged:\ngot:  %q\nwant: %q", body, want)
	}
	close(block)
}
