// Geometry-impact: the paper's headline claim (§1.3) as a runnable demo.
//
// On exponential-chain networks the granularity Rs (ratio of longest to
// shortest communication edge) grows exponentially with n, yet the
// paper's algorithms keep a round complexity that depends only on D and
// n. A granularity-sensitive strategy in the style of Daum et al. [5]
// must sweep Θ(log n + α·log Rs) probability levels and slows down as
// the geometry gets rougher.
package main

import (
	"fmt"
	"log"
	"math"

	"sinrcast"
)

func main() {
	// A fixed-diameter path with an exponential cluster at the source
	// end: the gap ratio controls the granularity Rs while D stays put.
	const pathLen, clusterSize = 12, 20
	fmt.Printf("clustered paths, n = %d, D fixed\n", pathLen+clusterSize)
	fmt.Printf("%10s  %12s  %14s  %12s\n", "log2(Rs)", "SBroadcast", "NoSBroadcast", "daum-style")
	for _, ratio := range []float64{0.9, 0.75, 0.6, 0.45} {
		net, err := sinrcast.GenerateClusteredPath(sinrcast.DefaultPhysical(), pathLen, clusterSize, ratio)
		if err != nil {
			log.Fatal(err)
		}
		src := net.N() - 1 // the deepest cluster station
		s, err := sinrcast.BroadcastSpontaneous(net, sinrcast.Options{Seed: 3, Source: src})
		if err != nil {
			log.Fatal(err)
		}
		nos, err := sinrcast.Broadcast(net, sinrcast.Options{Seed: 3, Source: src})
		if err != nil {
			log.Fatal(err)
		}
		daum, err := sinrcast.FloodDaumStyle(net, sinrcast.Options{Seed: 3, Source: src})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f  %12d  %14d  %12d\n",
			math.Log2(net.Granularity()), s.Rounds, nos.Rounds, daum.Rounds)
	}
	fmt.Println("\nsinrcast columns stay flat; the granularity-sensitive sweep grows with Rs.")
}
