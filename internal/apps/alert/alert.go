// Package alert implements the alert-protocol problem mentioned in
// §1.3: an adversary raises an alert at an arbitrary subset of stations
// (possibly none); by a known deadline every station must output
// whether an alert was raised anywhere in the network. The positive
// case is a one-bit flood over the coloring backbone (a single window
// of the §5 "wake-up with established coloring"); the negative case
// must stay completely silent so that no station ever reports a false
// alert. Time: O(D log n + log² n) after the O(log² n) coloring.
package alert

import (
	"errors"
	"fmt"
	"math"

	"sinrcast/internal/coloring"
	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// KindAlert tags alert-flood messages.
const KindAlert uint8 = 4

// Config parametrizes the alert protocol.
type Config struct {
	// Coloring is the backbone schedule.
	Coloring coloring.Params
	// WindowRounds is the flood window; 0 derives
	// WindowFactor·(D+4)·lg n + 2·lg² n.
	WindowRounds int
	// WindowFactor scales the derived window (default 60).
	WindowFactor float64
	// CProb and MaxTxProb shape the flood probability as in broadcast.
	CProb     float64
	MaxTxProb float64
	// Channel optionally overrides the physical layer (engine
	// selection for large-n runs). nil uses the exact SINR engine,
	// which is the paper's model.
	Channel func(net *network.Network) (sim.Resolver, error)
}

// DefaultConfig returns a calibrated configuration.
func DefaultConfig(n int, gamma, eps float64) Config {
	return Config{
		Coloring:     coloring.DefaultParams(n, gamma, eps),
		WindowFactor: 60,
		CProb:        6,
		MaxTxProb:    0.9,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	var errs []error
	if err := c.Coloring.Validate(); err != nil {
		errs = append(errs, err)
	}
	if c.WindowRounds < 0 {
		errs = append(errs, fmt.Errorf("alert: WindowRounds = %d must be >= 0", c.WindowRounds))
	}
	if c.WindowRounds == 0 && c.WindowFactor <= 0 {
		errs = append(errs, fmt.Errorf("alert: WindowFactor = %v must be > 0", c.WindowFactor))
	}
	if c.CProb <= 0 || c.MaxTxProb <= 0 || c.MaxTxProb > 1 {
		errs = append(errs, fmt.Errorf("alert: bad flood probabilities"))
	}
	return errors.Join(errs...)
}

func (c Config) lg() float64 {
	l := math.Log2(float64(c.Coloring.N))
	if l < 1 {
		l = 1
	}
	return l
}

func (c Config) window(d int) int {
	if c.WindowRounds > 0 {
		return c.WindowRounds
	}
	lg := c.lg()
	return int(math.Ceil(c.WindowFactor*float64(d+4)*lg + 2*lg*lg))
}

// station is the per-station alert state machine.
type station struct {
	cfg     *Config
	machine *coloring.Machine
	rnd     *rng.Source
	alerted bool // raised or received the alert
	txProb  float64
}

var _ sim.Protocol = (*station)(nil)

// Tick implements sim.Protocol.
func (s *station) Tick(t int) (bool, sim.Message) {
	colorLen := s.cfg.Coloring.TotalRounds()
	if t < colorLen {
		if s.machine.Tick(t) {
			return true, sim.Message{Kind: coloring.KindColoring}
		}
		return false, sim.Message{}
	}
	if t == colorLen {
		s.machine.Finish()
		s.txProb = s.machine.Color() * s.cfg.Coloring.CEps / (s.cfg.CProb * s.cfg.lg())
		if s.txProb > s.cfg.MaxTxProb {
			s.txProb = s.cfg.MaxTxProb
		}
	}
	if s.alerted && s.rnd.Bernoulli(s.txProb) {
		return true, sim.Message{Kind: KindAlert}
	}
	return false, sim.Message{}
}

var _ sim.Sleeper = (*station)(nil)

// TickWake implements sim.Sleeper.
func (s *station) TickWake(t int) (bool, sim.Message, int) {
	transmit, msg := s.Tick(t)
	return transmit, msg, s.nextWake(t)
}

// nextWake derives the sleep window from the post-Tick state: a colorer
// that quit sleeps to the backbone boundary (everyone ticks there to
// fix its flood probability), and in the flood window a non-alerted
// station draws nothing until a reception alerts it — in the negative
// case the whole window runs without a single Tick, matching the
// protocol's mandated silence.
func (s *station) nextWake(t int) int {
	colorLen := s.cfg.Coloring.TotalRounds()
	if t < colorLen {
		if s.machine.Done() {
			return colorLen
		}
		return t + 1
	}
	if s.alerted {
		return t + 1
	}
	return sim.NeverWake
}

// Recv implements sim.Protocol.
func (s *station) Recv(t int, msg sim.Message) {
	if t < s.cfg.Coloring.TotalRounds() {
		s.machine.OnRecv(t)
		return
	}
	if msg.Kind == KindAlert {
		s.alerted = true
	}
}

// tracerFunc adapts a function to sim.Tracer.
type tracerFunc func(t int, tx []int, rec []sinr.Reception)

func (f tracerFunc) OnRound(t int, tx []int, rec []sinr.Reception) { f(t, tx, rec) }

// Result reports an alert execution.
type Result struct {
	// Outputs[i] is station i's verdict at the deadline.
	Outputs []bool
	// Correct: every station's verdict equals "any alert was raised".
	Correct bool
	// Rounds is the protocol length (coloring + window).
	Rounds int
	// FloodTransmissions counts transmissions in the flood window only
	// (must be 0 in the negative case).
	FloodTransmissions int64
	// Metrics are the full-run counters.
	Metrics sim.Metrics
}

// Run executes the protocol; raised[i] marks stations at which the
// adversary raises the alert at time 0.
func Run(net *network.Network, cfg Config, seed uint64, raised []bool) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := net.N()
	if len(raised) != n {
		return nil, fmt.Errorf("alert: %d flags for %d stations", len(raised), n)
	}
	if cfg.Coloring.N != n {
		return nil, fmt.Errorf("alert: config sized for %d stations, network has %d", cfg.Coloring.N, n)
	}
	d, connected := net.DiameterApprox()
	if !connected {
		return nil, errors.New("alert: network not connected")
	}
	var phys sim.Resolver
	var err error
	if cfg.Channel != nil {
		phys, err = cfg.Channel(net)
	} else {
		phys, err = sinr.NewEngine(net.Space, net.Params)
	}
	if err != nil {
		return nil, err
	}
	root := rng.New(seed)
	stations := make([]*station, n)
	protos := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		m, err := coloring.NewMachine(cfg.Coloring, root.Split(uint64(i)).Split(1))
		if err != nil {
			return nil, err
		}
		stations[i] = &station{
			cfg:     &cfg,
			machine: m,
			rnd:     root.Split(uint64(i)),
			alerted: raised[i],
		}
		protos[i] = stations[i]
	}
	eng, err := sim.NewEngine(phys, protos)
	if err != nil {
		return nil, err
	}
	colorLen := cfg.Coloring.TotalRounds()
	eng.Run(colorLen, nil)
	preFlood := eng.Metrics.Transmissions
	// Flood window: an already-alerted station's Recv is a no-op, so
	// alerted stations stop being resolved as receivers (they still
	// transmit the alert). Receptions at the remaining listeners are
	// byte-identical to a full resolution, so verdicts are unchanged.
	for i, st := range stations {
		if st.alerted {
			eng.SetReceiverActive(i, false)
		}
	}
	eng.SetTracer(tracerFunc(func(_ int, _ []int, rec []sinr.Reception) {
		for _, rc := range rec {
			if stations[rc.Receiver].alerted {
				eng.SetReceiverActive(rc.Receiver, false)
			}
		}
	}))
	eng.Run(cfg.window(d), nil)

	any := false
	for _, r := range raised {
		if r {
			any = true
		}
	}
	res := &Result{
		Outputs:            make([]bool, n),
		Correct:            true,
		Rounds:             eng.Metrics.Rounds,
		FloodTransmissions: eng.Metrics.Transmissions - preFlood,
		Metrics:            eng.Metrics,
	}
	for i, st := range stations {
		res.Outputs[i] = st.alerted
		if st.alerted != any {
			res.Correct = false
		}
	}
	return res, nil
}
