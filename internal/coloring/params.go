// Package coloring implements the paper's central tool (§3): the
// distributed StabilizeProbability procedure (Algorithm 1) that assigns
// every station a transmission probability ("color") from the geometric
// scale {2^i·pstart}, using only message counts — no positions, no
// carrier sensing, no density knowledge.
//
// Structure is exactly the paper's: stations start at p = Θ(1/n),
// repeatedly run DensityTest (transmit with p, count receptions) and
// Playoff (transmit with p·cε, count receptions); a station that passes
// both quits with its current color, otherwise doubles p, up to pmax.
//
// The paper's constants are worst-case analysis artifacts; here they are
// explicit fields of Params, with defaults calibrated so the Lemma 1 and
// Lemma 2 invariants hold empirically on all test network families (see
// DESIGN.md, substitution 2, and the invariant tests in this package).
package coloring

import (
	"errors"
	"fmt"
	"math"
)

// Params are the knobs of Algorithm 1. The zero value is not valid; use
// DefaultParams or fill every field.
type Params struct {
	// N is the number of stations known to every node (§1.1). An upper
	// estimate ν ≥ n works too; only pstart and the log n segment
	// lengths depend on it.
	N int
	// C1 is the target per-color, per-unit-ball probability mass
	// (Lemma 1). pstart = C1/(2N) per Algorithm 1 line 1.
	C1 float64
	// CEps is the Playoff scale-up factor cε. The paper prescribes
	// cε ≈ 1/ε'^γ (ε' = ε/2) so that Playoff is DensityTest rescaled
	// to radius ε/2: DefaultParams computes it from ε and γ.
	CEps float64
	// PMax is the probability ceiling pmax; survivors end with color
	// 2·PMax. Must satisfy 2·PMax·CEps ≤ 1 so Playoff probabilities
	// stay ≤ 1.
	PMax float64
	// CPrime is c′: the number of DensityTest+Playoff iterations per
	// doubling phase.
	CPrime int
	// Confirm is the number of consecutive passing iterations (within
	// one phase) required before a station switches off. The paper's
	// single-iteration rule corresponds to Confirm=1; with the short
	// O(log n) segments practical simulations use, Confirm=2 squares
	// the fluke probability of DensityTest and keeps premature
	// switch-offs (which would break Lemma 2) negligible. Must be
	// ≤ CPrime.
	Confirm int
	// DTRounds (c0) and DTThresh (c1): DensityTest lasts
	// ceil(DTRounds·lg N) rounds and passes on ≥ ceil(DTThresh·lg N)
	// receptions.
	DTRounds, DTThresh float64
	// PORounds (c2) and POThresh (c3): same for Playoff.
	PORounds, POThresh float64
}

// DefaultParams returns calibrated parameters for a network of n
// stations in a metric of growth degree gamma with connectivity
// parameter eps (see sinr.Params.Eps).
//
// Calibration notes (see the sweep and calibration tests in this
// package): CEps must be large enough that Playoff rounds saturate the
// channel inside dense unit balls — the "interference wall" of Fact 9
// that blocks receptions from beyond ε/2 and makes Playoff a genuine
// close-density test. The paper's asymptotic choice 1/ε'^γ is the right
// scale-invariance intuition but empirically too weak for the wall at
// simulation densities; 144 (with pmax = 1/(2·cε), so pmax·cε stays 1/2
// and broadcast rates are unaffected) gives the best Lemma 1 / Lemma 2
// margins across all test families. For small networks cε is clamped to
// 2n so that pstart < pmax always holds. gamma and eps are accepted for
// interface stability and future tuning.
func DefaultParams(n int, gamma, eps float64) Params {
	_ = gamma
	_ = eps
	ceps := 144.0
	if limit := 2 * float64(n); ceps > limit {
		ceps = limit
	}
	if ceps < 4 {
		ceps = 4
	}
	return Params{
		N:        n,
		C1:       0.25,
		CEps:     ceps,
		PMax:     1 / (2 * ceps),
		CPrime:   2,
		Confirm:  2,
		DTRounds: 8,
		DTThresh: 1.0,
		PORounds: 8,
		POThresh: 1.0,
	}
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	var errs []error
	if p.N < 1 {
		errs = append(errs, fmt.Errorf("coloring: N = %d must be >= 1", p.N))
	}
	if !(p.C1 > 0) {
		errs = append(errs, fmt.Errorf("coloring: C1 = %v must be > 0", p.C1))
	}
	if !(p.CEps >= 1) {
		errs = append(errs, fmt.Errorf("coloring: CEps = %v must be >= 1", p.CEps))
	}
	if !(p.PMax > 0) || 2*p.PMax*p.CEps > 1+1e-9 {
		errs = append(errs, fmt.Errorf("coloring: PMax = %v must be in (0, 1/(2·CEps)]", p.PMax))
	}
	if p.CPrime < 1 {
		errs = append(errs, fmt.Errorf("coloring: CPrime = %d must be >= 1", p.CPrime))
	}
	if p.Confirm < 1 || p.Confirm > p.CPrime {
		errs = append(errs, fmt.Errorf("coloring: Confirm = %d must be in [1, CPrime=%d]", p.Confirm, p.CPrime))
	}
	if p.DTRounds <= 0 || p.PORounds <= 0 {
		errs = append(errs, fmt.Errorf("coloring: segment lengths must be positive"))
	}
	if p.DTThresh <= 0 || p.POThresh <= 0 {
		errs = append(errs, fmt.Errorf("coloring: thresholds must be positive"))
	}
	if p.PStart() >= p.PMax {
		errs = append(errs, fmt.Errorf("coloring: pstart %v >= pmax %v (network too small for these params)", p.PStart(), p.PMax))
	}
	return errors.Join(errs...)
}

// lg returns log2(N) clamped below at 1 so segment lengths stay positive
// for tiny networks.
func (p Params) lg() float64 {
	l := math.Log2(float64(p.N))
	if l < 1 {
		l = 1
	}
	return l
}

// PStart returns the initial probability C1/(2N) (Algorithm 1, line 1).
func (p Params) PStart() float64 { return p.C1 / (2 * float64(p.N)) }

// Phases returns the number of doubling phases: the smallest k with
// pstart·2^k ≥ pmax.
func (p Params) Phases() int {
	k := int(math.Ceil(math.Log2(p.PMax / p.PStart())))
	if k < 1 {
		k = 1
	}
	return k
}

// DTLen returns the DensityTest segment length in rounds.
func (p Params) DTLen() int { return int(math.Ceil(p.DTRounds * p.lg())) }

// POLen returns the Playoff segment length in rounds.
func (p Params) POLen() int { return int(math.Ceil(p.PORounds * p.lg())) }

// DTNeed returns the reception count DensityTest requires to pass.
func (p Params) DTNeed() int {
	v := int(math.Ceil(p.DTThresh * p.lg()))
	if v < 1 {
		v = 1
	}
	return v
}

// PONeed returns the reception count Playoff requires to pass.
func (p Params) PONeed() int {
	v := int(math.Ceil(p.POThresh * p.lg()))
	if v < 1 {
		v = 1
	}
	return v
}

// PhaseLen returns the length of one doubling phase:
// CPrime·(DTLen+POLen).
func (p Params) PhaseLen() int { return p.CPrime * (p.DTLen() + p.POLen()) }

// TotalRounds returns the full schedule length of StabilizeProbability;
// by Fact 7 it is O(log² n).
func (p Params) TotalRounds() int { return p.Phases() * p.PhaseLen() }

// FinalColor returns the color assigned to stations that never switch
// off: 2·pmax (Algorithm 1, line 8).
func (p Params) FinalColor() float64 { return 2 * p.PMax }

// NumColors returns the size of the color palette: one per phase plus
// the final color. O(log n) as the paper requires.
func (p Params) NumColors() int { return p.Phases() + 1 }

// ColorOfPhase returns the color a station quitting in the given phase
// (0-based) receives: pstart·2^phase.
func (p Params) ColorOfPhase(phase int) float64 {
	return p.PStart() * math.Pow(2, float64(phase))
}
