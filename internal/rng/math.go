package rng

import "math"

func sqrt(x float64) float64 { return math.Sqrt(x) }
func log(x float64) float64  { return math.Log(x) }
