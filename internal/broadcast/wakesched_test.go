package broadcast

import (
	"reflect"
	"testing"

	"sinrcast/internal/sim"
)

// withWakeSched runs fn twice — wake scheduling off (the tick-everyone
// reference) and on — and returns both results for comparison.
func withWakeSched[T any](t *testing.T, fn func() T) (ref, sched T) {
	t.Helper()
	prev := sim.SetWakeSchedulingDefault(false)
	ref = fn()
	sim.SetWakeSchedulingDefault(true)
	sched = fn()
	sim.SetWakeSchedulingDefault(prev)
	return ref, sched
}

func mustEqualResults(t *testing.T, name string, ref, sched *Result) {
	t.Helper()
	if !reflect.DeepEqual(ref, sched) {
		t.Fatalf("%s diverges under wake scheduling:\nref   %+v\nsched %+v", name, ref, sched)
	}
}

// TestRunNoSWakeSchedulingByteIdentical pins the tentpole contract at
// the protocol level: NoSBroadcast — coloring preamble gaps, phase
// waits, uninformed sleep — produces an identical Result (inform times,
// rounds, every metric) with the calendar queue on or off.
func TestRunNoSWakeSchedulingByteIdentical(t *testing.T) {
	for _, n := range []int{32, 64} {
		for seed := uint64(1); seed <= 3; seed++ {
			net := genUniform(t, n, 8, seed)
			ref, sched := withWakeSched(t, func() *Result {
				res, err := RunNoS(net, cfgFor(net), seed+10, 0, 7)
				if err != nil {
					t.Fatal(err)
				}
				return res
			})
			mustEqualResults(t, "RunNoS", ref, sched)
		}
	}
}

func TestRunSWakeSchedulingByteIdentical(t *testing.T) {
	net := genUniform(t, 48, 8, 5)
	ref, sched := withWakeSched(t, func() *Result {
		res, err := RunS(net, cfgFor(net), 11, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
	mustEqualResults(t, "RunS", ref, sched)
}

func TestRunNoSMultiWakeSchedulingByteIdentical(t *testing.T) {
	net := genUniform(t, 48, 8, 6)
	wakeAt := make([]int, net.N())
	for i := range wakeAt {
		wakeAt[i] = -1
	}
	// Staggered spontaneous wake-ups, including one far out so some
	// stations sleep to a distant round.
	wakeAt[0] = 0
	wakeAt[7] = 3
	wakeAt[13] = 91
	ref, sched := withWakeSched(t, func() *Result {
		res, err := RunNoSMulti(net, cfgFor(net), 13, wakeAt, 7)
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
	mustEqualResults(t, "RunNoSMulti", ref, sched)
}
