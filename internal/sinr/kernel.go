package sinr

import "sinrcast/internal/sinr/simd"

// Kernel is the α-specialized path-loss evaluator. It lives in the simd
// subpackage together with its vectorized batch forms (far-field
// frontier replay, near-field scans, exact-engine row accumulation);
// the alias keeps the sinr API unchanged — Params and the engines keep
// exposing plain Kernel values.
type Kernel = simd.Kernel

// NewKernel builds the evaluation strategy for exponent alpha. See
// simd.NewKernel.
func NewKernel(alpha float64) Kernel { return simd.NewKernel(alpha) }
