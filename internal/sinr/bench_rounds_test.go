// Cross-round benchmarks: where BenchmarkHierResolve measures one
// round in isolation, BenchmarkHierResolveRounds replays round
// *sequences*, which is what protocols actually do — so the cross-round
// delta path (incremental aggregate updates between overlapping
// transmitter sets) has a first-class number, measured against the
// rebuild-every-round reference on identical sequences.
//
// Two workloads:
//
//   - trace=decay: a recorded decay-flood round trace (tx sets and
//     shrinking uninformed-receiver subsets captured via
//     sim.RecordRounds from a real baseline.RunFloodOn run). Decay
//     resweeps probabilities every round, so consecutive transmitter
//     sets churn heavily and the engine mostly falls back to full
//     rebuilds — this series pins that the fallback costs nothing.
//
//   - churn=P/latebcast: synthetic late-broadcast rounds — a large
//     informed transmitter population (n/4, floods keep informed
//     stations transmitting) of which P% flips between rounds,
//     resolved for the tiny uninformed remnant (n/1024 receivers).
//     This is the aggregation-dominated regime the delta path exists
//     for; the delta/rebuild ratio at churn=20 is the acceptance
//     number and the CI gate.
//
// The benches live in the external test package so they can drive the
// real protocol stack for the trace.
package sinr_test

import (
	"fmt"
	"sync"
	"testing"

	"sinrcast/internal/baseline"
	"sinrcast/internal/geom"
	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

const (
	roundsBenchN      = 65536
	roundsBenchBudget = 96
)

var (
	roundsOnce  sync.Once
	roundsScene *geom.Euclidean
	decayTrace  *sim.RoundLog
)

// decayRoundTrace records one decay flood on the shared bench scene:
// every physical round's transmitter set and uninformed-receiver
// subset, captured through the production recording path.
func decayRoundTrace(b *testing.B) (*geom.Euclidean, *sim.RoundLog) {
	roundsOnce.Do(func() {
		scene := sinr.BenchSceneForTest(uint64(roundsBenchN)+1, roundsBenchN)
		net, err := network.New(scene, sinr.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		phys, err := sinr.NewHierEngine(scene, sinr.DefaultParams(), sinr.DefaultCellSize, sinr.DefaultNearRadius, sinr.DefaultTheta)
		if err != nil {
			b.Fatal(err)
		}
		log := &sim.RoundLog{}
		if _, err := baseline.RunFloodOn(net, baseline.NewDecay(roundsBenchN), 9, 0, roundsBenchBudget, sim.RecordRounds(phys, log)); err != nil {
			b.Fatal(err)
		}
		roundsScene = scene
		decayTrace = log
	})
	return roundsScene, decayTrace
}

// churnTrace synthesizes a late-broadcast round sequence: |tx| = n/4
// informed transmitters of which churnPct% flip each round, resolved
// for a fixed subset of n/1024 uninformed receivers.
func churnTrace(n, rounds, churnPct int) *sim.RoundLog {
	r := rng.New(uint64(churnPct)*31 + 5)
	member := make([]bool, n)
	size := n / 4
	for got := 0; got < size; {
		c := int(r.Uint64() % uint64(n))
		if !member[c] {
			member[c] = true
			got++
		}
	}
	var recv []int
	for i := 0; i < n; i += 1024 {
		recv = append(recv, i)
	}
	log := &sim.RoundLog{}
	f := float64(churnPct) / 100
	for round := 0; round < rounds; round++ {
		flips := int(f * float64(size))
		for done := 0; done < flips; {
			c := int(r.Uint64() % uint64(n))
			if member[c] {
				member[c] = false
				done++
			}
		}
		for done := 0; done < flips; {
			c := int(r.Uint64() % uint64(n))
			if !member[c] {
				member[c] = true
				done++
			}
		}
		var tx []int
		for i := 0; i < n; i++ {
			if member[i] {
				tx = append(tx, i)
			}
		}
		log.Tx = append(log.Tx, tx)
		log.Recv = append(log.Recv, recv)
	}
	return log
}

// replay resolves every recorded round in order.
func replay(h *sinr.HierEngine, log *sim.RoundLog) {
	for r := range log.Tx {
		if len(log.Tx[r]) == 0 {
			continue
		}
		if log.Recv[r] != nil {
			h.ResolveFor(log.Tx[r], log.Recv[r])
		} else {
			h.Resolve(log.Tx[r])
		}
	}
}

// BenchmarkHierResolveRounds replays recorded and synthetic round
// sequences in delta (cross-round incremental aggregation, the
// default) and rebuild (SetDeltaCrossover(0)) modes. ns/round is the
// comparable metric; a full warm replay precedes the timer, so
// allocs/op reports the steady state — the allocation-free contract is
// gated on the delta entries.
func BenchmarkHierResolveRounds(b *testing.B) {
	type series struct {
		name string
		log  func(b *testing.B) (*geom.Euclidean, *sim.RoundLog)
	}
	all := []series{
		{"trace=decay", decayRoundTrace},
		{"churn=5/latebcast", func(b *testing.B) (*geom.Euclidean, *sim.RoundLog) {
			scene, _ := decayRoundTrace(b)
			return scene, churnTrace(roundsBenchN, 48, 5)
		}},
		{"churn=20/latebcast", func(b *testing.B) (*geom.Euclidean, *sim.RoundLog) {
			scene, _ := decayRoundTrace(b)
			return scene, churnTrace(roundsBenchN, 48, 20)
		}},
		{"churn=50/latebcast", func(b *testing.B) (*geom.Euclidean, *sim.RoundLog) {
			scene, _ := decayRoundTrace(b)
			return scene, churnTrace(roundsBenchN, 48, 50)
		}},
	}
	for _, s := range all {
		for _, mode := range []string{"delta", "rebuild"} {
			b.Run(fmt.Sprintf("n=%d/%s/mode=%s", roundsBenchN, s.name, mode), func(b *testing.B) {
				scene, log := s.log(b)
				h, err := sinr.NewHierEngine(scene, sinr.DefaultParams(), sinr.DefaultCellSize, sinr.DefaultNearRadius, sinr.DefaultTheta)
				if err != nil {
					b.Fatal(err)
				}
				h.SetWorkers(1)
				if mode == "rebuild" {
					h.SetDeltaCrossover(0)
				}
				// Two warm replays: the first grows every scratch arena,
				// the second lets the delta path's live/hot lists reach
				// their compaction-cycle high-water capacity. Steady
				// state after that is allocation-free.
				replay(h, log)
				replay(h, log)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					replay(h, log)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(log.Tx)), "ns/round")
			})
		}
	}
}
