// Package jobs is a bounded, admission-controlled task manager: the
// execution half of the sinrcastd service. Work is admitted into a
// fixed-depth queue — a full queue rejects immediately with
// ErrQueueFull so the transport can answer 429 + Retry-After instead
// of buffering unbounded work — and executed by a fixed pool of job
// workers. Every job gets its own cancellation context, and the
// machine's resolver-worker budget (internal/sinr/sched goroutines)
// is divided across the job workers, so J concurrent jobs never
// oversubscribe the cores a single batch run would use.
//
// Shutdown is graceful and two-phased: new submissions are rejected,
// jobs still waiting in the queue fail with ErrShutdown (a clean,
// queryable error — the work never started), and in-flight jobs drain
// to completion. If the caller's context expires first, running jobs
// are cancelled through their own contexts and the manager waits for
// them to unwind.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sinrcast/internal/faultinject"
)

var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity. Transports map it to backpressure (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrShutdown rejects submissions to — and fails queued jobs of —
	// a manager that is shutting down.
	ErrShutdown = errors.New("jobs: manager shutting down")
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// RunFunc is one job's body. ctx is the job's own context — cancelled
// by Cancel, and by Shutdown once its drain deadline passes — and
// engineWorkers is the job's share of the machine's resolver-worker
// budget (pass it to sinr.Resolver.SetWorkers or exp.Config.Workers).
// Returning ctx's error marks the job canceled; any other error marks
// it failed.
type RunFunc func(ctx context.Context, engineWorkers int) error

// Config sizes a Manager. Zero values pick the documented defaults.
type Config struct {
	// QueueDepth bounds jobs admitted but not yet running (default 64).
	QueueDepth int
	// Workers is the number of jobs executing concurrently (default 2).
	Workers int
	// EngineWorkers is the total resolver-worker budget shared by the
	// running jobs (default GOMAXPROCS). Each job receives
	// max(1, EngineWorkers/Workers) — the resolver layer is already
	// parallel, so job concurrency must not multiply it.
	EngineWorkers int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// EngineWorkersPerJob returns the per-job resolver-worker share.
func (c Config) EngineWorkersPerJob() int {
	c = c.withDefaults()
	w := c.EngineWorkers / c.Workers
	if w < 1 {
		w = 1
	}
	return w
}

// Handle is one submitted job. All methods are safe for concurrent
// use.
type Handle struct {
	id   string
	name string
	run  RunFunc

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    State
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{}
}

// ID returns the manager-assigned job id.
func (h *Handle) ID() string { return h.id }

// Name returns the caller-supplied display name.
func (h *Handle) Name() string { return h.name }

// State returns the current state and, for failed/canceled jobs, the
// error.
func (h *Handle) State() (State, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state, h.err
}

// Times returns the creation, start, and finish instants; started and
// finished are zero until the corresponding transition.
func (h *Handle) Times() (created, started, finished time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.created, h.started, h.finished
}

// Done returns a channel closed when the job reaches a terminal state.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the job finishes or ctx expires, returning the
// job's terminal error (nil for done).
func (h *Handle) Wait(ctx context.Context) error {
	select {
	case <-h.done:
		_, err := h.State()
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel requests cancellation: a queued job finishes canceled without
// running; a running job has its context cancelled and finishes when
// its RunFunc returns.
func (h *Handle) Cancel() {
	h.cancel()
	h.mu.Lock()
	if h.state == StateQueued {
		h.finishLocked(StateCanceled, context.Canceled)
	}
	h.mu.Unlock()
}

// tryStart moves queued → running; false when the job was cancelled
// while queued (the worker skips it).
func (h *Handle) tryStart() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != StateQueued {
		return false
	}
	h.state = StateRunning
	h.started = time.Now()
	return true
}

// finish records the terminal state of a job that ran.
func (h *Handle) finish(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state.Terminal() {
		return
	}
	switch {
	case err == nil:
		h.finishLocked(StateDone, nil)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		h.finishLocked(StateCanceled, err)
	default:
		h.finishLocked(StateFailed, err)
	}
}

// failQueued fails a job that never ran (shutdown drain).
func (h *Handle) failQueued(err error) {
	h.mu.Lock()
	if !h.state.Terminal() {
		h.finishLocked(StateFailed, err)
	}
	h.mu.Unlock()
	h.cancel()
}

func (h *Handle) finishLocked(s State, err error) {
	h.state = s
	h.err = err
	h.finished = time.Now()
	close(h.done)
}

// Stats is a point-in-time counter snapshot. Queued/Depth and
// DrainPerSec are the load gauges behind the transport's dynamic
// Retry-After: depth says how much headroom the queue has, the drain
// rate how fast slots free up.
type Stats struct {
	Queued      int     `json:"queued"`
	Depth       int     `json:"depth"`
	Running     int     `json:"running"`
	Submitted   int64   `json:"submitted"`
	Rejected    int64   `json:"rejected"`
	Completed   int64   `json:"completed"`
	DrainPerSec float64 `json:"drain_per_sec"`
}

// Manager runs jobs from a bounded queue on a fixed worker pool.
type Manager struct {
	cfg   Config
	queue chan *Handle
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Handle
	order    []string
	nextID   int64
	shutdown bool

	running   atomic.Int64
	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64

	// drainMu guards the completion-time ring feeding DrainRate.
	drainMu   sync.Mutex
	drainRing [drainSamples]time.Time
	drainLen  int
	drainPos  int
}

// drainSamples bounds the completion-time window of the drain-rate
// estimate; drainWindow bounds its age.
const (
	drainSamples = 32
	drainWindow  = 30 * time.Second
)

// maxRetained bounds how many finished jobs stay queryable; older ones
// are pruned oldest-first so a long-running daemon does not grow
// without bound.
const maxRetained = 4096

// New starts a manager with cfg's (defaulted) queue depth and worker
// pool.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:   cfg,
		queue: make(chan *Handle, cfg.QueueDepth),
		jobs:  make(map[string]*Handle),
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Submit admits a job. It returns ErrQueueFull when the admission
// queue is at capacity and ErrShutdown after Shutdown began; both are
// immediate — Submit never blocks on the queue.
func (m *Manager) Submit(name string, run RunFunc) (*Handle, error) {
	return m.admit("", name, run)
}

// Resubmit admits a job under a caller-supplied id — the journal
// replay path, where a restarted daemon re-queues work that was
// in-flight at the crash and clients must find it under its original
// id. The id counter advances past the replayed id so fresh Submit
// ids never collide; an id already live in the manager is an error.
func (m *Manager) Resubmit(id, name string, run RunFunc) (*Handle, error) {
	if id == "" {
		return nil, fmt.Errorf("jobs: Resubmit needs an id")
	}
	return m.admit(id, name, run)
}

// ReserveThrough advances the id counter so no future Submit assigns
// "jK" for any K <= n. Journal replay calls it with the highest id
// found in the journal before any traffic is accepted, so fresh ids
// can never collide with ids Resubmit will re-queue later.
func (m *Manager) ReserveThrough(n int64) {
	m.mu.Lock()
	if n > m.nextID {
		m.nextID = n
	}
	m.mu.Unlock()
}

// RegisterFailed records a job that could not be re-queued (e.g. the
// replay of a journal whose in-flight jobs exceed the new queue depth)
// as already failed, so clients querying its id find a terminal state
// instead of a vanished job. It occupies no queue slot and never runs.
func (m *Manager) RegisterFailed(id, name string, cause error) (*Handle, error) {
	if id == "" {
		return nil, fmt.Errorf("jobs: RegisterFailed needs an id")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.jobs[id]; exists {
		return nil, fmt.Errorf("jobs: id %s already exists", id)
	}
	if n, err := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64); err == nil && n > m.nextID {
		m.nextID = n
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	now := time.Now()
	h := &Handle{
		id:       id,
		name:     name,
		ctx:      ctx,
		cancel:   cancel,
		state:    StateFailed,
		err:      cause,
		created:  now,
		finished: now,
		done:     make(chan struct{}),
	}
	close(h.done)
	m.jobs[id] = h
	m.order = append(m.order, id)
	// Submitted and Completed move together so the drain invariant
	// (Submitted == Completed after Shutdown) holds; the drain-rate ring
	// is left alone — nothing actually drained through a worker.
	m.submitted.Add(1)
	m.completed.Add(1)
	m.pruneLocked()
	return h, nil
}

func (m *Manager) admit(id, name string, run RunFunc) (*Handle, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.shutdown {
		m.rejected.Add(1)
		return nil, ErrShutdown
	}
	assigned := id == ""
	if assigned {
		m.nextID++
		id = fmt.Sprintf("j%d", m.nextID)
	} else {
		if _, exists := m.jobs[id]; exists {
			return nil, fmt.Errorf("jobs: id %s already exists", id)
		}
		if n, err := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64); err == nil && n > m.nextID {
			m.nextID = n
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &Handle{
		id:      id,
		name:    name,
		run:     run,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	select {
	case m.queue <- h:
	default:
		if assigned {
			m.nextID--
		}
		m.rejected.Add(1)
		cancel()
		return nil, ErrQueueFull
	}
	m.jobs[h.id] = h
	m.order = append(m.order, h.id)
	m.submitted.Add(1)
	m.pruneLocked()
	return h, nil
}

// pruneLocked drops the oldest finished jobs beyond maxRetained.
func (m *Manager) pruneLocked() {
	for len(m.order) > maxRetained {
		id := m.order[0]
		if h, ok := m.jobs[id]; ok {
			if s, _ := h.State(); !s.Terminal() {
				return // oldest still live; nothing older to drop
			}
			delete(m.jobs, id)
		}
		m.order = m.order[1:]
	}
}

// Get returns a submitted job by id.
func (m *Manager) Get(id string) (*Handle, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.jobs[id]
	return h, ok
}

// Jobs returns all retained handles in submission order.
func (m *Manager) Jobs() []*Handle {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Handle, 0, len(m.order))
	for _, id := range m.order {
		if h, ok := m.jobs[id]; ok {
			out = append(out, h)
		}
	}
	return out
}

// Cancel cancels the job with the given id; false if unknown.
func (m *Manager) Cancel(id string) bool {
	h, ok := m.Get(id)
	if !ok {
		return false
	}
	h.Cancel()
	return true
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Queued:      len(m.queue),
		Depth:       cap(m.queue),
		Running:     int(m.running.Load()),
		Submitted:   m.submitted.Load(),
		Rejected:    m.rejected.Load(),
		Completed:   m.completed.Load(),
		DrainPerSec: m.DrainRate(),
	}
}

// completeOne counts a job that reached a terminal state and feeds the
// drain-rate window.
func (m *Manager) completeOne() {
	m.completed.Add(1)
	now := time.Now()
	m.drainMu.Lock()
	m.drainRing[m.drainPos] = now
	m.drainPos = (m.drainPos + 1) % drainSamples
	if m.drainLen < drainSamples {
		m.drainLen++
	}
	m.drainMu.Unlock()
}

// DrainRate estimates how fast the manager currently retires jobs, in
// completions per second, from the last drainSamples completion
// instants no older than drainWindow. It returns 0 before two
// completions land in the window — callers fall back to a fixed
// Retry-After.
func (m *Manager) DrainRate() float64 {
	now := time.Now()
	m.drainMu.Lock()
	defer m.drainMu.Unlock()
	var oldest time.Time
	count := 0
	for i := 0; i < m.drainLen; i++ {
		ts := m.drainRing[i]
		if now.Sub(ts) > drainWindow {
			continue
		}
		if count == 0 || ts.Before(oldest) {
			oldest = ts
		}
		count++
	}
	if count < 2 {
		return 0
	}
	span := now.Sub(oldest).Seconds()
	if span <= 0 {
		span = 1e-3
	}
	return float64(count) / span
}

// RetryAfter translates the current queue depth and drain rate into a
// backpressure hint: roughly how long until a queue slot frees, in
// whole seconds, clamped to [1, 60]. With no drain observed yet it
// answers a conservative 2.
func (m *Manager) RetryAfter() time.Duration {
	rate := m.DrainRate()
	if rate <= 0 {
		return 2 * time.Second
	}
	secs := math.Ceil(float64(len(m.queue)+1) / rate)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for h := range m.queue {
		if !h.tryStart() {
			// Cancelled (or failed by shutdown) while queued: already
			// terminal, so count it completed just like the drain path.
			m.completeOne()
			continue
		}
		m.running.Add(1)
		err := m.invoke(h)
		h.finish(err)
		m.running.Add(-1)
		m.completeOne()
	}
}

// invoke runs a job's body, converting a panic into a failure so one
// bad job cannot take the worker pool down. The stall hook lets the
// chaos suite hold a worker between dequeue and run.
func (m *Manager) invoke(h *Handle) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job %s panicked: %v", h.id, r)
		}
	}()
	if err := faultinject.Fire(faultinject.WorkerStall); err != nil {
		return err
	}
	return h.run(h.ctx, m.cfg.EngineWorkersPerJob())
}

// Shutdown stops the manager: submissions are rejected, queued jobs
// fail with ErrShutdown without running, and in-flight jobs drain. If
// ctx expires before the drain completes, running jobs are cancelled
// through their contexts and Shutdown still waits for their RunFuncs
// to unwind, returning ctx's error to signal the drain was forced.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.shutdown {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.shutdown = true
	m.mu.Unlock()

	// Fail everything still queued. Workers may race us for entries —
	// either outcome is sound: the worker runs a job admitted before
	// shutdown, or we fail it cleanly here.
	for {
		select {
		case h := <-m.queue:
			h.failQueued(ErrShutdown)
			m.completeOne()
		default:
			close(m.queue)
			goto drained
		}
	}
drained:
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, h := range m.Jobs() {
			if s, _ := h.State(); s == StateRunning {
				h.cancel()
			}
		}
		<-done
		return ctx.Err()
	}
}
