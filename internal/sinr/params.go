// Package sinr implements the Signal-to-Interference-and-Noise-Ratio
// physical model of the paper (§1.1, Eq. 1): a receiver u decodes the
// transmission of v against the set T of simultaneous transmitters iff
//
//	SINR(v,u,T) = P·d(v,u)^-α / (N + Σ_{w∈T\{v}} P·d(w,u)^-α) ≥ β.
//
// All stations use uniform power P = N·β, which normalizes the noise-only
// communication range r = (P/(Nβ))^{1/α} to exactly 1.
package sinr

import (
	"errors"
	"fmt"
	"math"
)

// Params are the fixed physical-model parameters (§1.1).
type Params struct {
	// Alpha is the path-loss exponent; must exceed the growth degree γ
	// of the hosting metric space.
	Alpha float64
	// Beta is the decoding threshold; must be ≥ 1.
	Beta float64
	// Noise is the ambient noise N; must be > 0.
	Noise float64
	// Eps is the connectivity-graph parameter ε ∈ (0,1): the
	// communication graph keeps edges of length ≤ 1-ε.
	Eps float64
}

// DefaultParams are the parameters used throughout tests and experiments:
// a plane-friendly path loss α=3, threshold β=1.5, unit noise and ε=1/3.
func DefaultParams() Params {
	return Params{Alpha: 3, Beta: 1.5, Noise: 1, Eps: 1.0 / 3.0}
}

// Validate reports whether the parameters are admissible for a metric of
// growth degree gamma.
func (p Params) Validate(gamma float64) error {
	var errs []error
	if !(p.Alpha > gamma) {
		errs = append(errs, fmt.Errorf("sinr: alpha %v must exceed growth degree %v", p.Alpha, gamma))
	}
	if !(p.Beta >= 1) {
		errs = append(errs, fmt.Errorf("sinr: beta %v must be >= 1", p.Beta))
	}
	if !(p.Noise > 0) {
		errs = append(errs, fmt.Errorf("sinr: noise %v must be > 0", p.Noise))
	}
	if !(p.Eps > 0 && p.Eps < 1) {
		errs = append(errs, fmt.Errorf("sinr: eps %v must be in (0,1)", p.Eps))
	}
	return errors.Join(errs...)
}

// Power returns the uniform transmission power P = N·β that normalizes
// the communication range to 1.
func (p Params) Power() float64 { return p.Noise * p.Beta }

// Range returns the noise-only communication range r = (P/(Nβ))^{1/α};
// by construction this is 1.
func (p Params) Range() float64 {
	return math.Pow(p.Power()/(p.Noise*p.Beta), 1/p.Alpha)
}

// CommRadius returns the communication-graph radius 1-ε.
func (p Params) CommRadius() float64 { return 1 - p.Eps }

// Signal returns the received power P·d^-α of a transmission across
// distance d. Distance zero yields +Inf (a station hears itself; the
// engine never asks for it).
func (p Params) Signal(d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	return p.Power() * math.Pow(d, -p.Alpha)
}

// Decodes reports whether a signal of strength sig is decodable against
// total interference intf (which must exclude sig itself).
func (p Params) Decodes(sig, intf float64) bool {
	return sig >= p.Beta*(p.Noise+intf)
}
