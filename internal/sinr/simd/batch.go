package simd

import "math"

// The portable batch kernels below all follow one contract: they are
// bit-identical to the plain scalar loop they replace. Every term is
// built with the exact operation sequence Kernel.FromDist2 performs for
// the mode (the specialized bodies are unfolded copies — e.g. ipow(d,2)
// evaluates 1·(d·d), which is IEEE-identical to d*d — pinned by the
// batch equivalence tests), and terms fold into the accumulator
// strictly left to right. The unrolled bodies only widen the window of
// independent divisions/square roots the CPU can keep in flight and
// hoist the per-element mode dispatch and bounds checks out of the
// loop.

// FarSum returns Σ p[i] · k.FromDist2((upx-x[i])² + (upy-y[i])²) with
// scalar left-to-right accumulation — the far-field frontier replay of
// the hierarchical engine. x, y and p must have equal length.
func (k Kernel) FarSum(upx, upy float64, x, y, p []float64) float64 {
	switch k.mode {
	case kernInvSq:
		return farSumInvSq(upx, upy, x, y, p)
	case kernInvQuad:
		return farSumInvQuad(upx, upy, x, y, p)
	case kernOdd:
		if k.m == 1 { // α = 3: ipow(d², 1) ≡ d²
			return farSumOdd1(upx, upy, x, y, p)
		}
	case kernHalf:
		if k.m == 2 { // α = 2.5: ipow(d, 2) ≡ d·d
			return farSumHalf2(upx, upy, x, y, p)
		}
	}
	return k.farSumGeneric(upx, upy, x, y, p)
}

// farSumInvSq is the α=2 replay: 8-wide, because the loop is bound by
// division throughput and eight independent reciprocals overlap well.
func farSumInvSq(upx, upy float64, x, y, p []float64) float64 {
	n := len(x)
	y = y[:n]
	p = p[:n]
	sum := 0.0
	i := 0
	for ; i+8 <= n; i += 8 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		dx4, dy4 := upx-x[i+4], upy-y[i+4]
		dx5, dy5 := upx-x[i+5], upy-y[i+5]
		dx6, dy6 := upx-x[i+6], upy-y[i+6]
		dx7, dy7 := upx-x[i+7], upy-y[i+7]
		t0 := p[i] * (1 / (dx0*dx0 + dy0*dy0))
		t1 := p[i+1] * (1 / (dx1*dx1 + dy1*dy1))
		t2 := p[i+2] * (1 / (dx2*dx2 + dy2*dy2))
		t3 := p[i+3] * (1 / (dx3*dx3 + dy3*dy3))
		t4 := p[i+4] * (1 / (dx4*dx4 + dy4*dy4))
		t5 := p[i+5] * (1 / (dx5*dx5 + dy5*dy5))
		t6 := p[i+6] * (1 / (dx6*dx6 + dy6*dy6))
		t7 := p[i+7] * (1 / (dx7*dx7 + dy7*dy7))
		sum += t0
		sum += t1
		sum += t2
		sum += t3
		sum += t4
		sum += t5
		sum += t6
		sum += t7
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		sum += p[i] * (1 / (dx*dx + dy*dy))
	}
	return sum
}

// farSumInvQuad is the α=4 replay: 8-wide like α=2.
func farSumInvQuad(upx, upy float64, x, y, p []float64) float64 {
	n := len(x)
	y = y[:n]
	p = p[:n]
	sum := 0.0
	i := 0
	for ; i+8 <= n; i += 8 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		dx4, dy4 := upx-x[i+4], upy-y[i+4]
		dx5, dy5 := upx-x[i+5], upy-y[i+5]
		dx6, dy6 := upx-x[i+6], upy-y[i+6]
		dx7, dy7 := upx-x[i+7], upy-y[i+7]
		d20 := dx0*dx0 + dy0*dy0
		d21 := dx1*dx1 + dy1*dy1
		d22 := dx2*dx2 + dy2*dy2
		d23 := dx3*dx3 + dy3*dy3
		d24 := dx4*dx4 + dy4*dy4
		d25 := dx5*dx5 + dy5*dy5
		d26 := dx6*dx6 + dy6*dy6
		d27 := dx7*dx7 + dy7*dy7
		t0 := p[i] * (1 / (d20 * d20))
		t1 := p[i+1] * (1 / (d21 * d21))
		t2 := p[i+2] * (1 / (d22 * d22))
		t3 := p[i+3] * (1 / (d23 * d23))
		t4 := p[i+4] * (1 / (d24 * d24))
		t5 := p[i+5] * (1 / (d25 * d25))
		t6 := p[i+6] * (1 / (d26 * d26))
		t7 := p[i+7] * (1 / (d27 * d27))
		sum += t0
		sum += t1
		sum += t2
		sum += t3
		sum += t4
		sum += t5
		sum += t6
		sum += t7
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		d2 := dx*dx + dy*dy
		sum += p[i] * (1 / (d2 * d2))
	}
	return sum
}

// farSumOdd1 is the α=3 replay: 1/(d²·√d²) per term, 4-wide (the two
// long-latency ops per element — sqrt and divide — already fill the
// pipe at four in flight).
func farSumOdd1(upx, upy float64, x, y, p []float64) float64 {
	n := len(x)
	y = y[:n]
	p = p[:n]
	sum := 0.0
	i := 0
	for ; i+4 <= n; i += 4 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		d20 := dx0*dx0 + dy0*dy0
		d21 := dx1*dx1 + dy1*dy1
		d22 := dx2*dx2 + dy2*dy2
		d23 := dx3*dx3 + dy3*dy3
		t0 := p[i] * (1 / (d20 * math.Sqrt(d20)))
		t1 := p[i+1] * (1 / (d21 * math.Sqrt(d21)))
		t2 := p[i+2] * (1 / (d22 * math.Sqrt(d22)))
		t3 := p[i+3] * (1 / (d23 * math.Sqrt(d23)))
		sum += t0
		sum += t1
		sum += t2
		sum += t3
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		d2 := dx*dx + dy*dy
		sum += p[i] * (1 / (d2 * math.Sqrt(d2)))
	}
	return sum
}

// farSumHalf2 is the α=2.5 replay: d=√d², 1/((d·d)·√d) per term, 4-wide.
func farSumHalf2(upx, upy float64, x, y, p []float64) float64 {
	n := len(x)
	y = y[:n]
	p = p[:n]
	sum := 0.0
	i := 0
	for ; i+4 <= n; i += 4 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		d0 := math.Sqrt(dx0*dx0 + dy0*dy0)
		d1 := math.Sqrt(dx1*dx1 + dy1*dy1)
		d2 := math.Sqrt(dx2*dx2 + dy2*dy2)
		d3 := math.Sqrt(dx3*dx3 + dy3*dy3)
		t0 := p[i] * (1 / ((d0 * d0) * math.Sqrt(d0)))
		t1 := p[i+1] * (1 / ((d1 * d1) * math.Sqrt(d1)))
		t2 := p[i+2] * (1 / ((d2 * d2) * math.Sqrt(d2)))
		t3 := p[i+3] * (1 / ((d3 * d3) * math.Sqrt(d3)))
		sum += t0
		sum += t1
		sum += t2
		sum += t3
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		d := math.Sqrt(dx*dx + dy*dy)
		sum += p[i] * (1 / ((d * d) * math.Sqrt(d)))
	}
	return sum
}

// farSumGeneric covers the remaining kernel shapes (even/odd/half with
// large m, and the math.Pow fallback): 4-wide with the FromDist2 call
// kept per element — the callee cost dominates there, but the unroll
// still amortizes loop and bounds overhead.
func (k Kernel) farSumGeneric(upx, upy float64, x, y, p []float64) float64 {
	n := len(x)
	y = y[:n]
	p = p[:n]
	sum := 0.0
	i := 0
	for ; i+4 <= n; i += 4 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		t0 := p[i] * k.FromDist2(dx0*dx0+dy0*dy0)
		t1 := p[i+1] * k.FromDist2(dx1*dx1+dy1*dy1)
		t2 := p[i+2] * k.FromDist2(dx2*dx2+dy2*dy2)
		t3 := p[i+3] * k.FromDist2(dx3*dx3+dy3*dy3)
		sum += t0
		sum += t1
		sum += t2
		sum += t3
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		sum += p[i] * k.FromDist2(dx*dx+dy*dy)
	}
	return sum
}

// NearScan continues a uniform-power exact scan over a coordinate slab:
// starting from the running (total, bestD2) it folds
// pw·k.FromDist2(d²(u, i)) for every element in order and tracks the
// strict argmin of d² (first index wins ties). It returns the updated
// total, the index of the new best element (-1 if no element beat the
// incoming bestD2), and the updated bestD2 — bit-identical to the
// scalar near-field loop of the hierarchical block replay.
func (k Kernel) NearScan(pw, upx, upy float64, x, y []float64, total, bestD2 float64) (float64, int, float64) {
	switch k.mode {
	case kernInvSq:
		return nearScanInvSq(pw, upx, upy, x, y, total, bestD2)
	case kernInvQuad:
		return nearScanInvQuad(pw, upx, upy, x, y, total, bestD2)
	case kernHalf:
		if k.m == 2 {
			return nearScanHalf2(pw, upx, upy, x, y, total, bestD2)
		}
	}
	return k.nearScanGeneric(pw, upx, upy, x, y, total, bestD2)
}

func nearScanInvSq(pw, upx, upy float64, x, y []float64, total, bestD2 float64) (float64, int, float64) {
	n := len(x)
	y = y[:n]
	best := -1
	i := 0
	for ; i+4 <= n; i += 4 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		d20 := dx0*dx0 + dy0*dy0
		d21 := dx1*dx1 + dy1*dy1
		d22 := dx2*dx2 + dy2*dy2
		d23 := dx3*dx3 + dy3*dy3
		total += pw * (1 / d20)
		if d20 < bestD2 {
			bestD2, best = d20, i
		}
		total += pw * (1 / d21)
		if d21 < bestD2 {
			bestD2, best = d21, i+1
		}
		total += pw * (1 / d22)
		if d22 < bestD2 {
			bestD2, best = d22, i+2
		}
		total += pw * (1 / d23)
		if d23 < bestD2 {
			bestD2, best = d23, i+3
		}
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		d2 := dx*dx + dy*dy
		total += pw * (1 / d2)
		if d2 < bestD2 {
			bestD2, best = d2, i
		}
	}
	return total, best, bestD2
}

func nearScanInvQuad(pw, upx, upy float64, x, y []float64, total, bestD2 float64) (float64, int, float64) {
	n := len(x)
	y = y[:n]
	best := -1
	i := 0
	for ; i+4 <= n; i += 4 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		d20 := dx0*dx0 + dy0*dy0
		d21 := dx1*dx1 + dy1*dy1
		d22 := dx2*dx2 + dy2*dy2
		d23 := dx3*dx3 + dy3*dy3
		total += pw * (1 / (d20 * d20))
		if d20 < bestD2 {
			bestD2, best = d20, i
		}
		total += pw * (1 / (d21 * d21))
		if d21 < bestD2 {
			bestD2, best = d21, i+1
		}
		total += pw * (1 / (d22 * d22))
		if d22 < bestD2 {
			bestD2, best = d22, i+2
		}
		total += pw * (1 / (d23 * d23))
		if d23 < bestD2 {
			bestD2, best = d23, i+3
		}
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		d2 := dx*dx + dy*dy
		total += pw * (1 / (d2 * d2))
		if d2 < bestD2 {
			bestD2, best = d2, i
		}
	}
	return total, best, bestD2
}

func nearScanHalf2(pw, upx, upy float64, x, y []float64, total, bestD2 float64) (float64, int, float64) {
	n := len(x)
	y = y[:n]
	best := -1
	i := 0
	for ; i+4 <= n; i += 4 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		d20 := dx0*dx0 + dy0*dy0
		d21 := dx1*dx1 + dy1*dy1
		d22 := dx2*dx2 + dy2*dy2
		d23 := dx3*dx3 + dy3*dy3
		d0 := math.Sqrt(d20)
		d1 := math.Sqrt(d21)
		d2 := math.Sqrt(d22)
		d3 := math.Sqrt(d23)
		total += pw * (1 / ((d0 * d0) * math.Sqrt(d0)))
		if d20 < bestD2 {
			bestD2, best = d20, i
		}
		total += pw * (1 / ((d1 * d1) * math.Sqrt(d1)))
		if d21 < bestD2 {
			bestD2, best = d21, i+1
		}
		total += pw * (1 / ((d2 * d2) * math.Sqrt(d2)))
		if d22 < bestD2 {
			bestD2, best = d22, i+2
		}
		total += pw * (1 / ((d3 * d3) * math.Sqrt(d3)))
		if d23 < bestD2 {
			bestD2, best = d23, i+3
		}
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		d2 := dx*dx + dy*dy
		d := math.Sqrt(d2)
		total += pw * (1 / ((d * d) * math.Sqrt(d)))
		if d2 < bestD2 {
			bestD2, best = d2, i
		}
	}
	return total, best, bestD2
}

func (k Kernel) nearScanGeneric(pw, upx, upy float64, x, y []float64, total, bestD2 float64) (float64, int, float64) {
	n := len(x)
	y = y[:n]
	best := -1
	for i := 0; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		d2 := dx*dx + dy*dy
		total += pw * k.FromDist2(d2)
		if d2 < bestD2 {
			bestD2, best = d2, i
		}
	}
	return total, best, bestD2
}

// NearScanIndexed is NearScan over an id list with gathered
// coordinates: element i lives at (ptsX[ids[i]], ptsY[ids[i]]). It
// returns the station id of the new best element (-1 if none beat the
// incoming bestD2) — the shape of the grid engine's per-cell near
// loops, where the transmitter list is ids and coordinates live in the
// engine's station slabs.
func (k Kernel) NearScanIndexed(pw, upx, upy float64, ids []int32, ptsX, ptsY []float64, total, bestD2 float64) (float64, int32, float64) {
	best := int32(-1)
	i := 0
	n := len(ids)
	for ; i+4 <= n; i += 4 {
		id0, id1, id2, id3 := ids[i], ids[i+1], ids[i+2], ids[i+3]
		dx0, dy0 := upx-ptsX[id0], upy-ptsY[id0]
		dx1, dy1 := upx-ptsX[id1], upy-ptsY[id1]
		dx2, dy2 := upx-ptsX[id2], upy-ptsY[id2]
		dx3, dy3 := upx-ptsX[id3], upy-ptsY[id3]
		d20 := dx0*dx0 + dy0*dy0
		d21 := dx1*dx1 + dy1*dy1
		d22 := dx2*dx2 + dy2*dy2
		d23 := dx3*dx3 + dy3*dy3
		total += pw * k.FromDist2(d20)
		if d20 < bestD2 {
			bestD2, best = d20, id0
		}
		total += pw * k.FromDist2(d21)
		if d21 < bestD2 {
			bestD2, best = d21, id1
		}
		total += pw * k.FromDist2(d22)
		if d22 < bestD2 {
			bestD2, best = d22, id2
		}
		total += pw * k.FromDist2(d23)
		if d23 < bestD2 {
			bestD2, best = d23, id3
		}
	}
	for ; i < n; i++ {
		id := ids[i]
		dx, dy := upx-ptsX[id], upy-ptsY[id]
		d2 := dx*dx + dy*dy
		total += pw * k.FromDist2(d2)
		if d2 < bestD2 {
			bestD2, best = d2, id
		}
	}
	return total, best, bestD2
}

// AccumRow folds one transmitter at (tx0, ty0) into the exact engine's
// per-receiver accumulators for a contiguous receiver range: for every
// non-transmitting receiver i it adds pw·k.FromDist2(d²) to sig[i] and
// updates (bestD[i], best[i]) on a strict d² improvement. Each element
// is updated independently (no cross-element accumulation), so any
// unroll is trivially bit-exact; the win is the hoisted kernel dispatch
// and four independent divisions in flight. All slices must have the
// length of x.
func (k Kernel) AccumRow(pw, tx0, ty0 float64, t int32, x, y []float64, isTx []bool, sig, bestD []float64, best []int32) {
	n := len(x)
	y = y[:n]
	isTx = isTx[:n]
	sig = sig[:n]
	bestD = bestD[:n]
	best = best[:n]
	switch k.mode {
	case kernInvSq:
		for i := 0; i < n; i++ {
			if isTx[i] {
				continue
			}
			dx := x[i] - tx0
			dy := y[i] - ty0
			d2 := dx*dx + dy*dy
			sig[i] += pw * (1 / d2)
			if d2 < bestD[i] {
				bestD[i] = d2
				best[i] = t
			}
		}
	case kernInvQuad:
		for i := 0; i < n; i++ {
			if isTx[i] {
				continue
			}
			dx := x[i] - tx0
			dy := y[i] - ty0
			d2 := dx*dx + dy*dy
			sig[i] += pw * (1 / (d2 * d2))
			if d2 < bestD[i] {
				bestD[i] = d2
				best[i] = t
			}
		}
	case kernHalf:
		if k.m == 2 {
			for i := 0; i < n; i++ {
				if isTx[i] {
					continue
				}
				dx := x[i] - tx0
				dy := y[i] - ty0
				d2 := dx*dx + dy*dy
				d := math.Sqrt(d2)
				sig[i] += pw * (1 / ((d * d) * math.Sqrt(d)))
				if d2 < bestD[i] {
					bestD[i] = d2
					best[i] = t
				}
			}
			return
		}
		fallthrough
	default:
		for i := 0; i < n; i++ {
			if isTx[i] {
				continue
			}
			dx := x[i] - tx0
			dy := y[i] - ty0
			d2 := dx*dx + dy*dy
			sig[i] += pw * k.FromDist2(d2)
			if d2 < bestD[i] {
				bestD[i] = d2
				best[i] = t
			}
		}
	}
}

// ArgMin scans a coordinate slab for the strict argmin of squared
// distance to (upx, upy), continuing from an incoming bestD2 (first
// index wins ties; -1 when no element improves it). It involves no
// kernel math at all — subtract, multiply, compare — which makes it the
// cheap rejection pass of the hierarchical receiver loop: a station
// whose nearest transmitter sits outside the communication range is
// dismissed without paying a single divide or square root, and only
// decode candidates go on to the NearSum kernel fold.
func ArgMin(upx, upy float64, x, y []float64, bestD2 float64) (int, float64) {
	n := len(x)
	y = y[:n]
	best := -1
	i := 0
	for ; i+8 <= n; i += 8 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		dx4, dy4 := upx-x[i+4], upy-y[i+4]
		dx5, dy5 := upx-x[i+5], upy-y[i+5]
		dx6, dy6 := upx-x[i+6], upy-y[i+6]
		dx7, dy7 := upx-x[i+7], upy-y[i+7]
		d20 := dx0*dx0 + dy0*dy0
		d21 := dx1*dx1 + dy1*dy1
		d22 := dx2*dx2 + dy2*dy2
		d23 := dx3*dx3 + dy3*dy3
		d24 := dx4*dx4 + dy4*dy4
		d25 := dx5*dx5 + dy5*dy5
		d26 := dx6*dx6 + dy6*dy6
		d27 := dx7*dx7 + dy7*dy7
		if d20 < bestD2 {
			bestD2, best = d20, i
		}
		if d21 < bestD2 {
			bestD2, best = d21, i+1
		}
		if d22 < bestD2 {
			bestD2, best = d22, i+2
		}
		if d23 < bestD2 {
			bestD2, best = d23, i+3
		}
		if d24 < bestD2 {
			bestD2, best = d24, i+4
		}
		if d25 < bestD2 {
			bestD2, best = d25, i+5
		}
		if d26 < bestD2 {
			bestD2, best = d26, i+6
		}
		if d27 < bestD2 {
			bestD2, best = d27, i+7
		}
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		d2 := dx*dx + dy*dy
		if d2 < bestD2 {
			bestD2, best = d2, i
		}
	}
	return best, bestD2
}

// NearSum folds pw·k.FromDist2(d²(u, i)) over a coordinate slab in
// index order starting from total — exactly the summation NearScan
// performs, without the argmin bookkeeping. Paired with ArgMin it
// splits the near-field scan into rejection and accumulation passes
// whose combined result is bit-identical to the fused scan, because the
// argmin never feeds the float fold.
func (k Kernel) NearSum(pw, upx, upy float64, x, y []float64, total float64) float64 {
	switch k.mode {
	case kernInvSq:
		return nearSumInvSq(pw, upx, upy, x, y, total)
	case kernInvQuad:
		return nearSumInvQuad(pw, upx, upy, x, y, total)
	case kernHalf:
		if k.m == 2 {
			return nearSumHalf2(pw, upx, upy, x, y, total)
		}
	}
	return k.nearSumGeneric(pw, upx, upy, x, y, total)
}

func nearSumInvSq(pw, upx, upy float64, x, y []float64, total float64) float64 {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		d20 := dx0*dx0 + dy0*dy0
		d21 := dx1*dx1 + dy1*dy1
		d22 := dx2*dx2 + dy2*dy2
		d23 := dx3*dx3 + dy3*dy3
		total += pw * (1 / d20)
		total += pw * (1 / d21)
		total += pw * (1 / d22)
		total += pw * (1 / d23)
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		d2 := dx*dx + dy*dy
		total += pw * (1 / d2)
	}
	return total
}

func nearSumInvQuad(pw, upx, upy float64, x, y []float64, total float64) float64 {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		d20 := dx0*dx0 + dy0*dy0
		d21 := dx1*dx1 + dy1*dy1
		d22 := dx2*dx2 + dy2*dy2
		d23 := dx3*dx3 + dy3*dy3
		total += pw * (1 / (d20 * d20))
		total += pw * (1 / (d21 * d21))
		total += pw * (1 / (d22 * d22))
		total += pw * (1 / (d23 * d23))
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		d2 := dx*dx + dy*dy
		total += pw * (1 / (d2 * d2))
	}
	return total
}

func nearSumHalf2(pw, upx, upy float64, x, y []float64, total float64) float64 {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dx0, dy0 := upx-x[i], upy-y[i]
		dx1, dy1 := upx-x[i+1], upy-y[i+1]
		dx2, dy2 := upx-x[i+2], upy-y[i+2]
		dx3, dy3 := upx-x[i+3], upy-y[i+3]
		d0 := math.Sqrt(dx0*dx0 + dy0*dy0)
		d1 := math.Sqrt(dx1*dx1 + dy1*dy1)
		d2 := math.Sqrt(dx2*dx2 + dy2*dy2)
		d3 := math.Sqrt(dx3*dx3 + dy3*dy3)
		total += pw * (1 / ((d0 * d0) * math.Sqrt(d0)))
		total += pw * (1 / ((d1 * d1) * math.Sqrt(d1)))
		total += pw * (1 / ((d2 * d2) * math.Sqrt(d2)))
		total += pw * (1 / ((d3 * d3) * math.Sqrt(d3)))
	}
	for ; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		d := math.Sqrt(dx*dx + dy*dy)
		total += pw * (1 / ((d * d) * math.Sqrt(d)))
	}
	return total
}

func (k Kernel) nearSumGeneric(pw, upx, upy float64, x, y []float64, total float64) float64 {
	n := len(x)
	y = y[:n]
	for i := 0; i < n; i++ {
		dx, dy := upx-x[i], upy-y[i]
		total += pw * k.FromDist2(dx*dx+dy*dy)
	}
	return total
}
