package exp

import (
	"bytes"
	"encoding/gob"
	"reflect"
)

// TrialCheckpoint persists completed per-trial results so an
// interrupted multi-trial experiment can resume at its high-water mark
// instead of starting over. The suite stays deterministic either way:
// a trial's seed is a pure function of (Config.Seed, expID, point,
// trial), so a resumed run recomputes exactly the trials the
// checkpoint is missing and the assembled table is byte-identical to
// an uninterrupted run.
//
// Implementations must be safe for concurrent Store calls (trials run
// on Config.Workers goroutines); Load is only called before a trial
// starts. sinrcastd backs this with its write-ahead journal.
type TrialCheckpoint interface {
	// Load returns the stored encoding of (expID, point, trial), or
	// ok=false when the trial has not been checkpointed.
	Load(expID, point uint64, trial int) (data []byte, ok bool)
	// Store records the encoding of one completed trial.
	Store(expID, point uint64, trial int, data []byte)
}

// encodeTrial gob-encodes one trial result and verifies the encoding
// is faithful by decoding it back and deep-comparing. Types gob cannot
// round-trip — unexported fields are silently dropped, zero-length
// collections lose nil-ness — return ok=false and are simply not
// checkpointed: the resumed run recomputes them, trading resume speed
// for byte-identity, never the reverse.
func encodeTrial[T any](v T) (data []byte, ok bool) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, false
	}
	var back T
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		return nil, false
	}
	if !reflect.DeepEqual(v, back) {
		return nil, false
	}
	return buf.Bytes(), true
}

// decodeTrial decodes a checkpointed trial result. A decode failure
// (schema drift between daemon versions, a corrupt record) reports
// ok=false and the trial is recomputed.
func decodeTrial[T any](data []byte) (v T, ok bool) {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		var zero T
		return zero, false
	}
	return v, true
}

// runOneTrial executes (or restores) trial tr of data point
// (expID, point): a checkpointed result that decodes cleanly is
// returned as-is; otherwise fn runs with the trial's derived seed and
// a faithful encoding of its result is stored.
func runOneTrial[T any](cfg Config, expID, point uint64, tr int, fn func(seed uint64) (T, error)) (T, error) {
	cp := cfg.Checkpoint
	if cp != nil {
		if data, ok := cp.Load(expID, point, tr); ok {
			if v, ok := decodeTrial[T](data); ok {
				return v, nil
			}
		}
	}
	v, err := fn(cfg.trialSeed(expID, point, tr))
	if err == nil && cp != nil {
		if data, ok := encodeTrial(v); ok {
			cp.Store(expID, point, tr, data)
		}
	}
	return v, err
}
