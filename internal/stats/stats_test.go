package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Median != 7 || one.P90 != 7 {
		t.Fatalf("singleton = %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {-5, 10}, {105, 40},
		{50, 25}, {25, 17.5}, {75, 32.5},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Percentile(nil, 50)
}

func TestLinFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r2 := LinFit(xs, ys)
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("LinFit = %v %v %v", a, b, r2)
	}
}

func TestLinFitDegenerate(t *testing.T) {
	if a, b, r2 := LinFit([]float64{1}, []float64{2}); a != 0 || b != 0 || r2 != 0 {
		t.Fatal("single point should return zeros")
	}
	// Constant x: slope 0, intercept mean.
	a, b, _ := LinFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if b != 0 || a != 2 {
		t.Fatalf("constant-x fit = %v %v", a, b)
	}
	// Constant y: perfect horizontal fit.
	_, b2, r2 := LinFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if b2 != 0 || r2 != 1 {
		t.Fatalf("constant-y fit b=%v r2=%v", b2, r2)
	}
}

func TestPowerFit(t *testing.T) {
	// y = 3x²
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	c, k, r2 := PowerFit(xs, ys)
	if math.Abs(c-3) > 1e-6 || math.Abs(k-2) > 1e-9 || r2 < 0.999 {
		t.Fatalf("PowerFit = %v %v %v", c, k, r2)
	}
	// Non-positive values are skipped without error.
	c2, k2, _ := PowerFit([]float64{0, 1, 2, 4}, []float64{5, 2, 4, 8})
	if math.IsNaN(c2) || math.IsNaN(k2) {
		t.Fatal("PowerFit produced NaN with zero input")
	}
}

func TestLinFitProperty(t *testing.T) {
	// Property: fitting any exact line recovers it.
	if err := quick.Check(func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		xs := []float64{0, 1, 2, 5, 9}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a + b*x
		}
		ga, gb, _ := LinFit(xs, ys)
		return math.Abs(ga-a) < 1e-6 && math.Abs(gb-b) < 1e-6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio(6,3)")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Fatal("Ratio(1,0) should be +Inf")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean([2,4])")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("bb", 22)
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.50") || !strings.Contains(out, "22") {
		t.Fatalf("bad rendering:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: header and rows share the width of the widest cell.
	if !strings.HasPrefix(lines[1], "name ") {
		t.Fatalf("header misaligned: %q", lines[1])
	}
}

func TestFormatSummary(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	out := FormatSummary(s)
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "mean=2.0") {
		t.Fatalf("FormatSummary = %q", out)
	}
}
