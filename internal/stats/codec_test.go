package stats

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("E0: sample, n=4", "family", "rounds", "ok")
	t.AddRow("uniform", 12.5, true)
	t.AddRow("with,comma", 3, "quoted \"cell\"")
	t.AddRow("short-row")
	return t
}

// TestCSVGoldenRoundTrip pins the CSV encoding and checks that
// ReadCSV reproduces the table exactly, including the title record,
// ragged rows, and cells needing quoting.
func TestCSVGoldenRoundTrip(t *testing.T) {
	tb := sampleTable()
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	golden := "#table,\"E0: sample, n=4\"\n" +
		"family,rounds,ok\n" +
		"uniform,12.50,true\n" +
		"\"with,comma\",3,\"quoted \"\"cell\"\"\"\n" +
		"short-row\n"
	if buf.String() != golden {
		t.Fatalf("CSV encoding drifted:\n got: %q\nwant: %q", buf.String(), golden)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tb) {
		t.Fatalf("CSV round trip: %#v != %#v", back, tb)
	}
}

// TestCSVWithoutTitle checks the optional title record is really
// optional in both directions.
func TestCSVWithoutTitle(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), titleMarker) {
		t.Fatalf("untitled table emitted a title record: %q", buf.String())
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tb) {
		t.Fatalf("round trip: %#v != %#v", back, tb)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("want error for empty CSV input")
	}
	if _, err := ReadCSV(strings.NewReader("#table,only a title\n")); err == nil {
		t.Fatal("want error for title-only CSV input")
	}
	if _, err := ReadCSV(strings.NewReader("a,\"unterminated\n")); err == nil {
		t.Fatal("want error for malformed quoting")
	}
}

// TestJSONGoldenRoundTrip pins the JSON encoding and the decoder.
func TestJSONGoldenRoundTrip(t *testing.T) {
	tb := sampleTable()
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := `{
  "title": "E0: sample, n=4",
  "headers": [
    "family",
    "rounds",
    "ok"
  ],
  "rows": [
    [
      "uniform",
      "12.50",
      "true"
    ],
    [
      "with,comma",
      "3",
      "quoted \"cell\""
    ],
    [
      "short-row"
    ]
  ]
}
`
	if buf.String() != golden {
		t.Fatalf("JSON encoding drifted:\n got: %s\nwant: %s", buf.String(), golden)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tb) {
		t.Fatalf("JSON round trip: %#v != %#v", back, tb)
	}
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("want error for truncated JSON")
	}
}

// TestSinks exercises the three sinks over a two-table stream; the
// text sink must match the historical fmt.Println output byte for
// byte, and the JSON stream must decode with DecodeTables.
func TestSinks(t *testing.T) {
	a, b := sampleTable(), NewTable("second", "x")
	b.AddRow(1)
	emit := func(format string) string {
		var buf bytes.Buffer
		s, err := NewSink(format, &buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, tb := range []*Table{a, b} {
			if err := s.Emit(tb); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	if got, want := emit("text"), a.String()+"\n"+b.String()+"\n"; got != want {
		t.Fatalf("text sink:\n got: %q\nwant: %q", got, want)
	}

	csvOut := emit("csv")
	if !strings.Contains(csvOut, "\n\n#table,second\n") {
		t.Fatalf("csv sink missing blank-line separator: %q", csvOut)
	}

	tables, err := DecodeTables(strings.NewReader(emit("json")))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || !reflect.DeepEqual(tables[0], a) || !reflect.DeepEqual(tables[1], b) {
		t.Fatalf("json sink stream did not round trip: %#v", tables)
	}

	// Empty stream is still valid JSON.
	var buf bytes.Buffer
	s, _ := NewSink("json", &buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	tables, err = DecodeTables(&buf)
	if err != nil || len(tables) != 0 {
		t.Fatalf("empty json stream: tables=%v err=%v", tables, err)
	}

	if _, err := NewSink("yaml", &bytes.Buffer{}); err == nil {
		t.Fatal("want error for unknown format")
	}
}
