package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// journalServer builds a crash-safe server over path and registers the
// usual cleanup.
func journalServer(t *testing.T, path string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.JournalPath = path
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func waitReplay(t *testing.T, s *Server) {
	t.Helper()
	select {
	case <-s.ReplayDone():
	case <-time.After(30 * time.Second):
		t.Fatal("replay did not finish")
	}
}

// rewriteJournal filters the journal at path through keep, simulating
// a crash at a chosen instant (e.g. dropping the done record and the
// last trials of a finished run).
func rewriteJournal(t *testing.T, path string, keep func(journalRecord) bool) {
	t.Helper()
	recs, _, err := ReadJournalRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if keep(rec) {
			if err := enc.Encode(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// appendRaw appends raw bytes (e.g. a torn half-line) to the journal.
func appendRaw(t *testing.T, path, raw string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(raw); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestRunJobResumeByteIdentical is the crash-resume gate (run by name
// in CI): a run job interrupted after its first trials must, on a
// restarted daemon, keep its id, skip the completed trials, and render
// a table byte-identical to an uninterrupted run in every format.
func TestRunJobResumeByteIdentical(t *testing.T) {
	req := JobRequest{Scenario: "uniform:n=32", Protocol: "decay", Seed: 11, Trials: 4, ProgressEvery: 1}

	// Reference: an uninterrupted run on a journal-less server.
	_, ref := testServer(t, Config{})
	refID := submitJob(t, ref, req)
	want := map[string]string{}
	for _, format := range []string{"text", "csv", "json"} {
		code, body := fetchResult(t, ref, refID, format)
		if code != http.StatusOK {
			t.Fatalf("reference %s: status %d: %s", format, code, body)
		}
		want[format] = body
	}

	// Generation 1: run the same job to completion on a journaled
	// server, then rewrite the journal as if the daemon died after
	// trial 1 (keep the accept and trials 0–1; drop the rest) with a
	// torn line at the tail, as a kill -9 would leave it.
	path := tempJournal(t)
	s1, ts1 := journalServer(t, path, Config{})
	waitReplay(t, s1)
	id := submitJob(t, ts1, req)
	if code, body := fetchResult(t, ts1, id, "text"); code != http.StatusOK {
		t.Fatalf("gen1 run: status %d: %s", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	rewriteJournal(t, path, func(rec journalRecord) bool {
		if rec.ID != id {
			return false
		}
		return rec.Op == "accept" || (rec.Op == "trial" && rec.Trial <= 1)
	})
	appendRaw(t, path, `{"op":"trial","id":"`+id+`","trial":2,"row":["2`)

	// Generation 2: replay must re-queue the job under its original id
	// and resume at trial 2.
	s2, ts2 := journalServer(t, path, Config{})
	waitReplay(t, s2)
	for _, format := range []string{"text", "csv", "json"} {
		code, body := fetchResult(t, ts2, id, format)
		if code != http.StatusOK {
			t.Fatalf("resumed %s: status %d: %s", format, code, body)
		}
		if body != want[format] {
			t.Fatalf("resumed %s table differs from uninterrupted run:\nresumed:  %q\nreference: %q", format, body, want[format])
		}
	}

	// Prove the high-water mark held: with ProgressEvery=1 every
	// executed trial emits progress events, so the resumed log must
	// contain progress for trials 2..3 only, plus the resume marker.
	_, stream := get(t, ts2.URL+"/v1/jobs/"+id+"/stream")
	if !strings.Contains(string(stream), `"type":"resume"`) {
		t.Fatalf("resumed job emitted no resume event:\n%s", stream)
	}
	for _, line := range strings.Split(string(stream), "\n") {
		if !strings.Contains(line, `"type":"progress"`) {
			continue
		}
		var ev struct {
			Trial *int `json:"trial"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Trial == nil {
			t.Fatalf("bad progress line %q: %v", line, err)
		}
		if *ev.Trial < 2 {
			t.Fatalf("resumed job re-ran trial %d below the high-water mark", *ev.Trial)
		}
	}
}

// TestReplayRewarmsCache pins the rewarm half of replay: the journaled
// run job's cache key must be hot before the first post-restart
// request touches it.
func TestReplayRewarmsCache(t *testing.T) {
	path := tempJournal(t)
	s1, ts1 := journalServer(t, path, Config{})
	waitReplay(t, s1)
	id := submitJob(t, ts1, quickRun)
	if code, body := fetchResult(t, ts1, id, "text"); code != http.StatusOK {
		t.Fatalf("gen1: status %d: %s", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	s2, ts2 := journalServer(t, path, Config{})
	waitReplay(t, s2)
	if st := s2.Cache().Stats(); st.Entries == 0 {
		t.Fatalf("replay rewarmed no cache entries: %+v", st)
	}
	// The first post-restart submission of the same spec must be a hit.
	before := s2.Cache().Stats()
	id2 := submitJob(t, ts2, quickRun)
	if code, _ := fetchResult(t, ts2, id2, "text"); code != http.StatusOK {
		t.Fatalf("gen2 run failed")
	}
	after := s2.Cache().Stats()
	if after.Hits <= before.Hits {
		t.Fatalf("post-restart submission was not a cache hit: before %+v after %+v", before, after)
	}
	if after.Misses != before.Misses {
		t.Fatalf("post-restart submission missed: before %+v after %+v", before, after)
	}
}

// TestExperimentResumeByteIdentical pins trial-level resume of an
// experiment job: checkpointed trials are restored, the rest are
// recomputed, and the table matches an uninterrupted run exactly.
func TestExperimentResumeByteIdentical(t *testing.T) {
	req := JobRequest{Experiment: 13, Seed: 5, Trials: 3, Scenario: "uniform:n=24", Protocol: "decay"}

	_, ref := testServer(t, Config{})
	refID := submitJob(t, ref, req)
	want := map[string]string{}
	for _, format := range []string{"text", "csv", "json"} {
		code, body := fetchResult(t, ref, refID, format)
		if code != http.StatusOK {
			t.Fatalf("reference %s: status %d: %s", format, code, body)
		}
		want[format] = body
	}

	path := tempJournal(t)
	s1, ts1 := journalServer(t, path, Config{})
	waitReplay(t, s1)
	id := submitJob(t, ts1, req)
	if code, body := fetchResult(t, ts1, id, "text"); code != http.StatusOK {
		t.Fatalf("gen1: status %d: %s", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Crash simulation: drop the done record and every second etrial —
	// resume must restore the kept trials and recompute the dropped
	// ones to the same bytes.
	kept, dropped := 0, 0
	rewriteJournal(t, path, func(rec journalRecord) bool {
		if rec.ID != id {
			return false
		}
		switch rec.Op {
		case "accept":
			return true
		case "etrial":
			if rec.Trial%2 == 0 {
				kept++
				return true
			}
			dropped++
			return false
		default:
			return false
		}
	})
	if kept == 0 || dropped == 0 {
		t.Fatalf("journal surgery kept %d / dropped %d etrial records; experiment journaled too few trials", kept, dropped)
	}

	s2, ts2 := journalServer(t, path, Config{})
	waitReplay(t, s2)
	for _, format := range []string{"text", "csv", "json"} {
		code, body := fetchResult(t, ts2, id, format)
		if code != http.StatusOK {
			t.Fatalf("resumed %s: status %d: %s", format, code, body)
		}
		if body != want[format] {
			t.Fatalf("resumed experiment %s table differs from uninterrupted run", format)
		}
	}
}

// TestReadyzFlips pins the readiness lifecycle: 503 while replay runs,
// 200 once ready, 503 again during drain — with /healthz at 200
// throughout.
func TestReadyzFlips(t *testing.T) {
	path := tempJournal(t)
	cfg := Config{JournalPath: path}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	waitReplay(t, s)
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("ready server: /readyz %d: %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz not 200")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server: /readyz %d: %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining server: /healthz not 200")
	}

	// A fresh server over the same journal starts not-ready: observe
	// the pre-replay state via the handler before waiting.
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	// Replay may already have finished (tiny journal) — only assert the
	// invariant that readyz never reports ready before ReplayDone.
	resp, _ := get(t, ts2.URL+"/readyz")
	select {
	case <-s2.ReplayDone():
	default:
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("/readyz reported ready during replay: %d", resp.StatusCode)
		}
	}
	waitReplay(t, s2)
	if resp, _ := get(t, ts2.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz not 200 after replay")
	}
}
