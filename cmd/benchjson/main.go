// Command benchjson converts `go test -bench` output into JSON, so
// benchmark trajectories can be committed and diffed machine-readably
// (BENCH_protocols.json at the repository root is generated this way):
//
//	go test -run '^$' -bench Resolve -benchtime 3x -benchmem ./internal/sinr |
//	  benchjson -benchtime 3x
//	(go test -run '^$' -bench Resolve -benchtime 3x -benchmem ./internal/sinr
//	 go test -run '^$' -bench E13 -benchtime 2x -benchmem .) |
//	  benchjson -benchtime 3x > BENCH_protocols.json
//
// It parses the standard bench line format — name, iteration count,
// then value/unit metric pairs (B/op and allocs/op under -benchmem,
// plus custom b.ReportMetric units) — and the goos/goarch/pkg/cpu
// context headers. Multiple package blocks concatenate naturally; each
// benchmark records the package it came from. A FAIL line in the input
// is a hard error (exit 1), so a broken bench cannot serialize as an
// empty success. The -benchtime flag records the effective -benchtime
// the benches ran with so a committed baseline documents its own
// measurement budget.
//
// Baselines in which every entry ran exactly one iteration are
// rejected: single-iteration timings are startup noise, not a
// trajectory (pass a larger -benchtime to go test). A lone 1-iteration
// entry among multi-iteration ones is fine — only the all-1x case is a
// configuration error.
//
// Regression-gate mode compares fresh output against a committed
// baseline instead of emitting JSON:
//
//	go test -run '^$' -bench 'Resolve$/n=16384' -benchtime 3x ./internal/sinr |
//	  benchjson -compare BENCH_protocols.json -filter 'BenchmarkResolve/n=16384' \
//	            -metric ns/round -tolerance 0.15
//
// It exits 1 if any matching benchmark's metric exceeds the baseline by
// more than the tolerance, or if nothing matched (a silent no-op gate
// would be worse than none).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"

	"sinrcast/internal/cputopo"
	"sinrcast/internal/prof"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-bench path and the
	// -P GOMAXPROCS suffix, e.g. "BenchmarkResolve/n=1024/parallel-8".
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (from the "pkg:" header).
	Pkg string `json:"pkg,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported pair (ns/op, B/op,
	// allocs/op, and any custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the JSON document: the shared context headers plus every
// benchmark in input order.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// NumCPU/Gomaxprocs/NUMANodes record the recording machine's
	// parallel topology. benchjson stamps them at serialization time,
	// which describes the bench machine as long as the report is
	// generated on the machine the benches ran on (the
	// pipe-into-benchjson workflow every documented invocation uses).
	// Parallel speedup curves only transfer between machines with the
	// same topology; -compare uses these to skip parallel entries
	// recorded elsewhere.
	NumCPU     int `json:"num_cpu,omitempty"`
	Gomaxprocs int `json:"gomaxprocs,omitempty"`
	NUMANodes  int `json:"numa_nodes,omitempty"`
	// Benchtime documents the -benchtime the benches ran with (from the
	// -benchtime flag; go test does not echo it into its output).
	Benchtime  string      `json:"benchtime,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// sameTopology reports whether two reports were recorded on machines
// with identical parallel topology. Reports predating the topology
// fields (all zero) compare as unknown — treated as same, so old
// baselines keep gating everything.
func sameTopology(a, b *Report) bool {
	if a.NumCPU == 0 || b.NumCPU == 0 {
		return true
	}
	return a.NumCPU == b.NumCPU && a.Gomaxprocs == b.Gomaxprocs && a.NUMANodes == b.NUMANodes
}

// parallelEntry matches benchmark names whose timing depends on the
// machine's parallel topology: the explicit worker-sweep benches and
// the GOMAXPROCS-parallel engine modes.
var parallelEntry = regexp.MustCompile(`/parallel$|/parallel-\d+$|/workers=`)

// parseBench reads `go test -bench` text and returns the report. It
// tolerates unknown chatter lines (PASS, ok, test logs) but rejects
// FAIL and malformed benchmark lines.
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case line == "FAIL" || strings.HasPrefix(line, "FAIL\t") || strings.HasPrefix(line, "--- FAIL"):
			return nil, fmt.Errorf("benchjson: input contains a test failure: %q", line)
		case strings.HasPrefix(line, "Benchmark"):
			if len(strings.Fields(line)) == 1 {
				// The bare-name pre-announcement go test prints before
				// a benchmark's own output; the result line follows.
				continue
			}
			b, err := parseLine(line, pkg)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one "BenchmarkName  N  v unit  v unit ..." line.
func parseLine(line, pkg string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("benchjson: malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchjson: bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: fields[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("benchjson: odd metric fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchjson: bad metric value in %q: %v", line, err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}

// allSingleIteration reports whether every benchmark ran exactly once.
func allSingleIteration(rep *Report) bool {
	if len(rep.Benchmarks) == 0 {
		return false
	}
	for _, b := range rep.Benchmarks {
		if b.Iterations != 1 {
			return false
		}
	}
	return true
}

// procSuffix is the trailing -GOMAXPROCS marker go test appends to
// benchmark names on multi-proc runs (absent when GOMAXPROCS=1).
var procSuffix = regexp.MustCompile(`-\d+$`)

// compare gates fresh results against a baseline report: every fresh
// benchmark whose name matches filter and whose metric exists in both
// reports must stay within (1+tolerance)× the baseline value. Names
// are matched with the -GOMAXPROCS suffix stripped, so a baseline
// recorded on one core count gates runs on any other — except
// parallel entries, which are skipped entirely when the recorded
// topologies differ: a worker-sweep timing from an 8-core NUMA box
// says nothing about a 2-core runner, and gating on it would fail (or
// silently pass) on hardware, not code. It returns the number of
// comparisons made and the regressions found.
func compare(fresh, base *Report, filter *regexp.Regexp, metric string, tolerance float64, w io.Writer) (checked int, regressions int) {
	topoMatch := sameTopology(fresh, base)
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[procSuffix.ReplaceAllString(b.Name, "")] = b
	}
	for _, b := range fresh.Benchmarks {
		if filter != nil && !filter.MatchString(b.Name) {
			continue
		}
		if !topoMatch && parallelEntry.MatchString(procSuffix.ReplaceAllString(b.Name, "")) {
			fmt.Fprintf(w, "%-10s %s: parallel entry, baseline topology differs (%d/%d/%d vs %d/%d/%d cpu/procs/nodes)\n",
				"skip", b.Name,
				fresh.NumCPU, fresh.Gomaxprocs, fresh.NUMANodes,
				base.NumCPU, base.Gomaxprocs, base.NUMANodes)
			continue
		}
		old, ok := baseline[procSuffix.ReplaceAllString(b.Name, "")]
		if !ok {
			continue
		}
		newV, okNew := b.Metrics[metric]
		oldV, okOld := old.Metrics[metric]
		if !okNew || !okOld || oldV <= 0 {
			continue
		}
		checked++
		ratio := newV / oldV
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-10s %s: %s %.0f -> %.0f (%.2fx, tolerance %.0f%%)\n",
			status, b.Name, metric, oldV, newV, ratio, tolerance*100)
	}
	return checked, regressions
}

func main() {
	profiles := prof.AddFlags(flag.CommandLine)
	var (
		benchtime = flag.String("benchtime", "", "record the -benchtime the benches ran with in the report")
		compareTo = flag.String("compare", "", "baseline JSON to gate against instead of emitting JSON")
		filter    = flag.String("filter", "", "regexp restricting -compare to matching benchmark names")
		metric    = flag.String("metric", "ns/op", "metric unit compared by -compare")
		tolerance = flag.Float64("tolerance", 0.15, "allowed relative slowdown before -compare fails")
	)
	flag.Parse()

	stopProf, err := profiles.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	defer stopProf()

	rep, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	rep.Benchtime = *benchtime
	rep.NumCPU = runtime.NumCPU()
	rep.Gomaxprocs = runtime.GOMAXPROCS(0)
	rep.NUMANodes = cputopo.Detect().NumNodes()

	if *compareTo != "" {
		raw, err := os.ReadFile(*compareTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing baseline %s: %v\n", *compareTo, err)
			os.Exit(1)
		}
		var re *regexp.Regexp
		if *filter != "" {
			re, err = regexp.Compile(*filter)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad -filter: %v\n", err)
				os.Exit(1)
			}
		}
		checked, regressions := compare(rep, &base, re, *metric, *tolerance, os.Stdout)
		if checked == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched the baseline (filter %q, metric %q) — the gate compared nothing\n", *filter, *metric)
			os.Exit(1)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d of %d benchmarks regressed beyond %.0f%%\n", regressions, checked, *tolerance*100)
			os.Exit(1)
		}
		return
	}

	if allSingleIteration(rep) {
		fmt.Fprintf(os.Stderr, "benchjson: all %d benchmarks ran exactly one iteration — single-iteration timings are noise, not a baseline; rerun go test with a larger -benchtime\n",
			len(rep.Benchmarks))
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
