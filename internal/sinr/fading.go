package sinr

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
	"sinrcast/internal/rng"
)

// FadingEngine wraps the exact engine with per-round Rayleigh fading:
// every (transmitter, receiver) link's power is multiplied by an
// independent unit-mean exponential variable each round. The paper's
// model is deterministic path loss (Eq. 1); fading is a robustness
// extension used by the model-sensitivity experiments — the algorithms
// never see the difference, only the channel does.
type FadingEngine struct {
	inner *Engine
	rnd   *rng.Source
	space geom.Space
	// scratch
	sig  []float64
	best []int32
	bsig []float64
	isTx []bool
}

var _ interface {
	Resolve(tx []int) []Reception
	N() int
} = (*FadingEngine)(nil)

// NewFadingEngine builds a fading channel over the given space; seed
// drives the fading process (independent of protocol randomness).
func NewFadingEngine(s geom.Space, p Params, seed uint64) (*FadingEngine, error) {
	inner, err := NewEngine(s, p)
	if err != nil {
		return nil, err
	}
	n := s.Len()
	return &FadingEngine{
		inner: inner,
		rnd:   rng.New(seed),
		space: s,
		sig:   make([]float64, n),
		best:  make([]int32, n),
		bsig:  make([]float64, n),
		isTx:  make([]bool, n),
	}, nil
}

// Params returns the physical parameters.
func (e *FadingEngine) Params() Params { return e.inner.params }

// N returns the number of stations.
func (e *FadingEngine) N() int { return e.space.Len() }

// Resolve computes receptions with fresh Rayleigh coefficients. Under
// fading the decoded transmitter is the one with the strongest faded
// signal (not necessarily the closest).
func (e *FadingEngine) Resolve(tx []int) []Reception {
	if len(tx) == 0 {
		return nil
	}
	n := e.space.Len()
	p := e.inner.params
	for _, t := range tx {
		if t < 0 || t >= n {
			panic(fmt.Sprintf("sinr: transmitter %d out of range [0,%d)", t, n))
		}
		e.isTx[t] = true
	}
	for u := 0; u < n; u++ {
		e.sig[u] = 0
		e.best[u] = -1
		e.bsig[u] = 0
	}
	for _, t := range tx {
		for u := 0; u < n; u++ {
			if e.isTx[u] {
				continue
			}
			d := e.space.Dist(t, u)
			s := p.Signal(d) * e.rnd.ExpFloat64()
			if math.IsInf(s, 1) {
				s = math.MaxFloat64
			}
			e.sig[u] += s
			if s > e.bsig[u] {
				e.bsig[u] = s
				e.best[u] = int32(t)
			}
		}
	}
	var out []Reception
	for u := 0; u < n; u++ {
		if e.isTx[u] || e.best[u] < 0 {
			continue
		}
		s := e.bsig[u]
		intf := e.sig[u] - s
		if intf < 0 {
			intf = 0
		}
		if p.Decodes(s, intf) {
			out = append(out, Reception{Receiver: u, Transmitter: int(e.best[u])})
		}
	}
	for _, t := range tx {
		e.isTx[t] = false
	}
	return out
}

// WeakDeviceEngine implements the "weak device" reception model of
// [16] (§1.2): a station discards messages arriving from metric
// distance greater than 1-ε even when the SINR would allow decoding.
// The paper proves its model is strictly stronger than this one
// (the Ω(D·Δ) lower bound of [16] does not apply here); the engine
// exists so that the difference is measurable in experiments.
type WeakDeviceEngine struct {
	inner  *Engine
	space  geom.Space
	cutoff float64
}

var _ interface {
	Resolve(tx []int) []Reception
	N() int
} = (*WeakDeviceEngine)(nil)

// NewWeakDeviceEngine builds the filtered engine; receptions beyond
// distance cutoff are dropped (pass p.CommRadius() for the [16] model).
func NewWeakDeviceEngine(s geom.Space, p Params, cutoff float64) (*WeakDeviceEngine, error) {
	if cutoff <= 0 {
		return nil, fmt.Errorf("sinr: cutoff %v must be positive", cutoff)
	}
	inner, err := NewEngine(s, p)
	if err != nil {
		return nil, err
	}
	return &WeakDeviceEngine{inner: inner, space: s, cutoff: cutoff}, nil
}

// Params returns the physical parameters.
func (e *WeakDeviceEngine) Params() Params { return e.inner.params }

// N returns the number of stations.
func (e *WeakDeviceEngine) N() int { return e.space.Len() }

// Resolve computes SINR receptions, then drops those whose link length
// exceeds the cutoff.
func (e *WeakDeviceEngine) Resolve(tx []int) []Reception {
	rec := e.inner.Resolve(tx)
	out := rec[:0]
	for _, r := range rec {
		if e.space.Dist(r.Transmitter, r.Receiver) <= e.cutoff {
			out = append(out, r)
		}
	}
	return out
}
