package sinr

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
)

// Reception describes the outcome at one receiver in one round.
type Reception struct {
	// Receiver is the station index hearing the message.
	Receiver int
	// Transmitter is the station index whose message was decoded.
	Transmitter int
}

// Engine resolves rounds of the SINR model exactly: for every listening
// station it sums interference over all transmitters and applies Eq. (1).
// With uniform power the strongest (closest) transmitter is the only
// decoding candidate, so at most one message is delivered per receiver
// per round.
//
// Path loss is evaluated through a Kernel specialized for the exponent
// α, and rounds over networks at least as large as the parallel
// crossover are cut into receiver-range chunks executed by the
// work-stealing runner (internal/sinr/sched). Parallel resolution is
// byte-identical to serial: each receiver accumulates interference in
// the same transmitter order regardless of chunking, and chunk outputs
// are concatenated in receiver order however the chunks were placed or
// stolen.
//
// The zero value is not usable; construct with NewEngine. An Engine is
// not safe for concurrent use by multiple goroutines (it owns scratch
// state); use one Engine per goroutine instead — Clone is the cheap way
// to get one, sharing the topology-derived slabs and allocating only
// the per-run scratch.
type Engine struct {
	*engineTopo

	// workers is the resolved worker count; minParallelN is the
	// receiver count below which rounds stay serial; pinned opts the
	// runner into core placement (see SetPinned).
	workers      int
	minParallelN int
	pinned       bool
	par          chunkRunner
	chunkFn      func(chunk, worker int)
	chunkForFn   func(chunk, worker int)
	curTx        []int // transmitter set of the round being chunked
	curRecv      []int // receiver subset of the ResolveFor round being chunked

	// scratch buffers reused across rounds to stay allocation free.
	sig  []float64 // total received power per station
	best []int32   // index of closest transmitter per station
	// bestD is the distance from each station to its closest
	// transmitter, in the unit native to the resolve path: SQUARED
	// Euclidean distance on the fast path, RAW metric distance on the
	// generic path. Both paths cut off decoding at bestD > 1, which is
	// the same predicate either way because the communication range is
	// normalized to exactly 1 (d > 1 ⇔ d² > 1).
	bestD []float64
	isTx  []bool
	// out is the merged reception list returned by Resolve; the
	// chunkRunner holds per-chunk buffers so parallel rounds write
	// disjoint slices and merge deterministically.
	out []Reception
}

// engineTopo is the immutable half of an Engine: everything derived
// from the (space, params) pair alone, never written after
// construction. Clones of one engine share a single engineTopo — the
// position slabs are the bulk of an exact engine's footprint — and
// allocate only the mutable half (scratch arrays, runner, output).
type engineTopo struct {
	params Params
	kern   Kernel
	space  geom.Space
	// pts is a fast-path cache of planar positions when the space is
	// Euclidean; nil otherwise. ptsX/ptsY are the same coordinates as
	// structure-of-arrays slabs — the accumulate inner loops stream
	// through one coordinate axis at a time, and the slab layout keeps
	// those streams dense in cache.
	pts  []geom.Point
	ptsX []float64
	ptsY []float64
}

// NewEngine builds an engine for the given space and parameters. The
// worker count defaults to runtime.GOMAXPROCS(0); see SetWorkers.
func NewEngine(s geom.Space, p Params) (*Engine, error) {
	if err := p.Validate(s.Growth()); err != nil {
		return nil, err
	}
	tp := &engineTopo{
		params: p,
		kern:   NewKernel(p.Alpha),
		space:  s,
	}
	if eu, ok := s.(*geom.Euclidean); ok {
		n := s.Len()
		tp.pts = eu.Pts
		tp.ptsX = make([]float64, n)
		tp.ptsY = make([]float64, n)
		for i, q := range eu.Pts {
			tp.ptsX[i], tp.ptsY[i] = q.X, q.Y
		}
	}
	return engineFromTopo(tp), nil
}

// engineFromTopo builds the mutable per-run half of an engine over
// an already-built topology. Both NewEngine and Clone go through it, so
// a clone starts in exactly the state a fresh construction would. The
// scratch arrays are allocated lazily on first resolve (see
// ensureRunState), which keeps cloning down to pointer copies.
func engineFromTopo(tp *engineTopo) *Engine {
	return &Engine{
		engineTopo:   tp,
		workers:      resolveWorkers(0),
		minParallelN: parallelCrossover,
	}
}

// ensureRunState allocates the per-round scratch on first use; sig
// doubles as the "already allocated" sentinel (engines require at
// least one station).
func (e *Engine) ensureRunState() {
	if e.sig != nil {
		return
	}
	n := e.space.Len()
	e.sig = make([]float64, n)
	e.best = make([]int32, n)
	e.bestD = make([]float64, n)
	e.isTx = make([]bool, n)
}

// Clone returns an independent engine sharing this engine's immutable
// topology (positions, kernel, space) with fresh per-run scratch. The
// clone resolves byte-identically to a freshly constructed engine and
// may be used concurrently with the original — each engine still owns
// its scratch, so no single engine is concurrency-safe, but separate
// clones are. Tuning (workers, pinning, parallel crossover) is copied.
func (e *Engine) Clone() *Engine {
	c := engineFromTopo(e.engineTopo)
	c.workers, c.minParallelN, c.pinned = e.workers, e.minParallelN, e.pinned
	return c
}

// Params returns the physical parameters the engine was built with.
func (e *Engine) Params() Params { return e.params }

// N returns the number of stations.
func (e *Engine) N() int { return e.space.Len() }

// SetWorkers sets how many goroutines Resolve may use; w ≤ 0 selects
// runtime.GOMAXPROCS(0). Networks smaller than the parallel crossover
// still resolve serially, and output is byte-identical for every
// worker count.
func (e *Engine) SetWorkers(w int) { e.workers = resolveWorkers(w) }

// SetPinned opts the worker runner into core placement: worker
// goroutines lock their OS threads and (on Linux) pin to CPUs in
// NUMA-node-major order. Takes effect when the runner is next (re)built
// — i.e. from the next parallel round. Output is byte-identical either
// way; pinning only affects where the work runs.
func (e *Engine) SetPinned(on bool) { e.pinned = on }

// Resolve computes all successful receptions for one round in which
// exactly the stations listed in tx transmit. The returned slice is
// owned by the engine and valid until the next Resolve call.
//
// Semantics follow §1.1: a transmitting station cannot receive; a
// station decodes its closest transmitter iff the SINR threshold holds.
func (e *Engine) Resolve(tx []int) []Reception {
	if len(tx) == 0 {
		return nil
	}
	e.ensureRunState()
	n := e.space.Len()
	for _, t := range tx {
		if t < 0 || t >= n {
			panic(fmt.Sprintf("sinr: transmitter %d out of range [0,%d)", t, n))
		}
		e.isTx[t] = true
	}
	if e.workers > 1 && n >= e.minParallelN {
		e.resolveParallel(tx)
	} else {
		e.accumulate(tx, 0, n)
		e.out = e.collect(0, n, e.out[:0])
	}
	for _, t := range tx {
		e.isTx[t] = false
	}
	return e.out
}

// ResolveFor computes the receptions of one round restricted to the
// given receivers: the result is byte-identical to Resolve(tx) filtered
// to receivers in the subset — interference at a receiver depends only
// on that receiver and the transmitter set, so skipping other stations
// changes nothing for the listed ones. receivers must be strictly
// increasing station indices; the slice is only read. The cost is
// O(|tx|·|receivers|), which is what makes it worthwhile: protocols
// whose inactive stations can no longer change state (see sim.Engine's
// receiver-activity hook) stop paying O(n) per round.
func (e *Engine) ResolveFor(tx []int, receivers []int) []Reception {
	if len(tx) == 0 || len(receivers) == 0 {
		return nil
	}
	e.ensureRunState()
	n := e.space.Len()
	checkReceivers(receivers, n)
	for _, t := range tx {
		if t < 0 || t >= n {
			panic(fmt.Sprintf("sinr: transmitter %d out of range [0,%d)", t, n))
		}
		e.isTx[t] = true
	}
	if e.workers > 1 && len(receivers) >= e.minParallelN {
		ensureRunner(&e.par, e, e.workers, e.pinned)
		if e.chunkForFn == nil {
			e.chunkForFn = e.runChunkFor
		}
		e.curTx, e.curRecv = tx, receivers
		e.out = e.par.runRange(len(receivers), e.workers, e.chunkForFn, e.out)
		e.curTx, e.curRecv = nil, nil
	} else {
		e.accumulateFor(tx, receivers)
		e.out = e.collectFor(receivers, e.out[:0])
	}
	for _, t := range tx {
		e.isTx[t] = false
	}
	return e.out
}

// runChunkFor resolves one contiguous slice of the ResolveFor subset.
func (e *Engine) runChunkFor(chunk, worker int) {
	lo, hi := e.par.chunkRange(chunk, len(e.curRecv))
	recv := e.curRecv[lo:hi]
	e.accumulateFor(e.curTx, recv)
	e.par.slots[chunk].out = e.collectFor(recv, e.par.slots[chunk].out[:0])
}

// resolveParallel chunks the receiver range [0,n) across the work-
// stealing runner. Chunks touch disjoint ranges of the scratch arrays
// and append into their own output slots, which are then concatenated
// in chunk (= ascending receiver) order, so the merged result is
// byte-identical to the serial one regardless of which worker ran (or
// stole) which chunk.
func (e *Engine) resolveParallel(tx []int) {
	ensureRunner(&e.par, e, e.workers, e.pinned)
	if e.chunkFn == nil {
		e.chunkFn = e.runChunk
	}
	e.curTx = tx
	e.out = e.par.runRange(e.space.Len(), e.workers, e.chunkFn, e.out)
	e.curTx = nil
}

// runChunk resolves one contiguous receiver range.
func (e *Engine) runChunk(chunk, worker int) {
	lo, hi := e.par.chunkRange(chunk, e.space.Len())
	e.accumulate(e.curTx, lo, hi)
	e.par.slots[chunk].out = e.collect(lo, hi, e.par.slots[chunk].out[:0])
}

// accumulate fills sig/best/bestD for receivers in [lo,hi).
func (e *Engine) accumulate(tx []int, lo, hi int) {
	if e.pts != nil {
		e.accumulateEuclidean(tx, lo, hi)
	} else {
		e.accumulateGeneric(tx, lo, hi)
	}
}

// accumulateEuclidean is the hot path: flat slices, squared distances,
// kernel-specialized path loss, no interface calls in the inner loop.
// Each transmitter row runs through the batch AccumRow kernel — d^-α
// evaluated from the squared distance (no sqrt, no Pow for the common
// exponents), with the kernel dispatch hoisted out of the receiver
// loop. Per-receiver updates are independent, so the batch form is
// trivially bit-identical to the plain loop.
func (e *Engine) accumulateEuclidean(tx []int, lo, hi int) {
	pw := e.params.Power()
	kern := e.kern
	for u := lo; u < hi; u++ {
		e.sig[u] = 0
		e.best[u] = -1
		e.bestD[u] = math.Inf(1)
	}
	x, y := e.ptsX[lo:hi], e.ptsY[lo:hi]
	isTx, sig := e.isTx[lo:hi], e.sig[lo:hi]
	bestD, best := e.bestD[lo:hi], e.best[lo:hi]
	for _, t := range tx {
		kern.AccumRow(pw, e.ptsX[t], e.ptsY[t], int32(t), x, y, isTx, sig, bestD, best)
	}
}

// accumulateFor fills sig/best/bestD for exactly the listed receivers.
// The transmitter loop order matches accumulate, so every touched entry
// holds bit-identical values to a full-range pass.
func (e *Engine) accumulateFor(tx []int, receivers []int) {
	pw := e.params.Power()
	kern := e.kern
	for _, u := range receivers {
		e.sig[u] = 0
		e.best[u] = -1
		e.bestD[u] = math.Inf(1)
	}
	if e.pts != nil {
		for _, t := range tx {
			tx0, ty0 := e.ptsX[t], e.ptsY[t]
			for _, u := range receivers {
				if e.isTx[u] {
					continue
				}
				dx := e.ptsX[u] - tx0
				dy := e.ptsY[u] - ty0
				d2 := dx*dx + dy*dy
				e.sig[u] += pw * kern.FromDist2(d2)
				if d2 < e.bestD[u] {
					e.bestD[u] = d2
					e.best[u] = int32(t)
				}
			}
		}
		return
	}
	for _, t := range tx {
		for _, u := range receivers {
			if e.isTx[u] {
				continue
			}
			d := e.space.Dist(t, u)
			e.sig[u] += pw * kern.FromDist(d)
			if d < e.bestD[u] {
				e.bestD[u] = d
				e.best[u] = int32(t)
			}
		}
	}
}

// collectFor appends the receptions of exactly the listed receivers,
// in list (= ascending receiver) order.
func (e *Engine) collectFor(receivers []int, dst []Reception) []Reception {
	p := e.params
	pw := p.Power()
	euclid := e.pts != nil
	for _, u := range receivers {
		if e.isTx[u] || e.best[u] < 0 || e.bestD[u] > 1 {
			continue
		}
		var s float64
		if euclid {
			s = pw * e.kern.FromDist2(e.bestD[u])
		} else {
			s = pw * e.kern.FromDist(e.bestD[u])
		}
		intf := e.sig[u] - s
		if intf < 0 {
			intf = 0
		}
		if p.Decodes(s, intf) {
			dst = append(dst, Reception{Receiver: u, Transmitter: int(e.best[u])})
		}
	}
	return dst
}

// accumulateGeneric handles arbitrary metric spaces through the
// interface; bestD holds raw metric distances here.
func (e *Engine) accumulateGeneric(tx []int, lo, hi int) {
	pw := e.params.Power()
	kern := e.kern
	for u := lo; u < hi; u++ {
		e.sig[u] = 0
		e.best[u] = -1
		e.bestD[u] = math.Inf(1)
	}
	for _, t := range tx {
		for u := lo; u < hi; u++ {
			if e.isTx[u] {
				continue
			}
			d := e.space.Dist(t, u)
			e.sig[u] += pw * kern.FromDist(d)
			if d < e.bestD[u] {
				e.bestD[u] = d
				e.best[u] = int32(t)
			}
		}
	}
}

// collect appends the receptions of receivers in [lo,hi) to dst. The
// bestD[u] > 1 cutoff rejects receivers farther than the normalized
// communication range 1 from their closest transmitter (no signal can
// be decoded there even with zero interference); it is correct in both
// distance units because 1² = 1.
func (e *Engine) collect(lo, hi int, dst []Reception) []Reception {
	p := e.params
	pw := p.Power()
	euclid := e.pts != nil
	for u := lo; u < hi; u++ {
		if e.isTx[u] || e.best[u] < 0 || e.bestD[u] > 1 {
			continue
		}
		var s float64
		if euclid {
			s = pw * e.kern.FromDist2(e.bestD[u])
		} else {
			s = pw * e.kern.FromDist(e.bestD[u])
		}
		intf := e.sig[u] - s
		if intf < 0 {
			intf = 0
		}
		if p.Decodes(s, intf) {
			dst = append(dst, Reception{Receiver: u, Transmitter: int(e.best[u])})
		}
	}
	return dst
}

// InterferenceAt returns the total received power at station u from all
// stations in tx (excluding u itself if present). Used by invariant
// checks and tests; not on the hot path.
func (e *Engine) InterferenceAt(u int, tx []int) float64 {
	total := 0.0
	for _, t := range tx {
		if t == u {
			continue
		}
		total += e.params.Signal(e.space.Dist(t, u))
	}
	return total
}

// SINRAt returns the SINR of transmitter v at receiver u against the set
// tx (v need not be a member of tx; it is excluded from interference).
func (e *Engine) SINRAt(v, u int, tx []int) float64 {
	sig := e.params.Signal(e.space.Dist(v, u))
	intf := 0.0
	for _, t := range tx {
		if t == v || t == u {
			continue
		}
		intf += e.params.Signal(e.space.Dist(t, u))
	}
	return sig / (e.params.Noise + intf)
}
