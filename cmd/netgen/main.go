// Command netgen generates a network of the requested family and prints
// its statistics: station count, edges, degree spread, diameter,
// granularity Rs, and (optionally) an ASCII sketch of the layout.
//
// Usage:
//
//	netgen -family uniform -n 128 -density 8 -seed 1
//	netgen -family expchain -n 32 -ratio 0.6 -sketch
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
)

func main() {
	var (
		family  = flag.String("family", "uniform", "uniform|grid|path|clusters|gaussian|corridor|expchain")
		n       = flag.Int("n", 128, "number of stations")
		density = flag.Float64("density", 8, "uniform: stations per communication ball")
		spacing = flag.Float64("spacing", 0.3, "grid: lattice spacing")
		frac    = flag.Float64("frac", 0.9, "path: gap as fraction of comm radius")
		ratio   = flag.Float64("ratio", 0.6, "expchain: gap shrink ratio")
		k       = flag.Int("k", 4, "clusters: cluster count")
		sigma   = flag.Float64("sigma", 1.5, "gaussian: standard deviation")
		step    = flag.Float64("step", 0.5, "corridor: walk step")
		seed    = flag.Uint64("seed", 1, "generator seed")
		sketch  = flag.Bool("sketch", false, "print an ASCII layout sketch")
	)
	flag.Parse()

	p := sinr.DefaultParams()
	cfg := netgen.Config{Params: p, Seed: *seed}
	var (
		net *network.Network
		err error
	)
	switch *family {
	case "uniform":
		net, err = netgen.Uniform(cfg, *n, *density)
	case "grid":
		net, err = netgen.Grid(cfg, *n, *spacing)
	case "path":
		net, err = netgen.Path(cfg, *n, *frac)
	case "clusters":
		m := *n / *k
		if m < 1 {
			m = 1
		}
		net, err = netgen.Clusters(cfg, *k, m, 0.08, 0.6)
	case "gaussian":
		net, err = netgen.Gaussian(cfg, *n, *sigma)
	case "corridor":
		net, err = netgen.RandomWalkCorridor(cfg, *n, *step)
	case "expchain":
		net, err = netgen.ExponentialChain(cfg, *n, 0.5, *ratio)
	default:
		fmt.Fprintf(os.Stderr, "netgen: unknown family %q\n", *family)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netgen: %v\n", err)
		os.Exit(1)
	}

	d, connected := net.Diameter()
	minDeg, sumDeg := net.N(), 0
	for i := 0; i < net.N(); i++ {
		deg := net.Degree(i)
		sumDeg += deg
		if deg < minDeg {
			minDeg = deg
		}
	}
	fmt.Printf("family        %s\n", *family)
	fmt.Printf("stations      %d\n", net.N())
	fmt.Printf("edges         %d\n", net.EdgeCount())
	fmt.Printf("degree        min=%d mean=%.1f max=%d\n", minDeg, float64(sumDeg)/float64(net.N()), net.MaxDegree())
	fmt.Printf("connected     %v\n", connected)
	fmt.Printf("diameter      %d\n", d)
	rs := net.Granularity()
	fmt.Printf("granularity   Rs=%.4g (log2=%.1f)\n", rs, math.Log2(rs))
	fmt.Printf("phys          alpha=%.1f beta=%.1f N=%.1f eps=%.3f commRadius=%.3f\n",
		p.Alpha, p.Beta, p.Noise, p.Eps, p.CommRadius())

	if *sketch {
		fmt.Println()
		printSketch(net, 64, 20)
	}
}

// printSketch draws station positions on a character grid.
func printSketch(net *network.Network, w, h int) {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i := 0; i < net.N(); i++ {
		q := net.Space.Position(i)
		minX, maxX = math.Min(minX, q.X), math.Max(maxX, q.X)
		minY, maxY = math.Min(minY, q.Y), math.Max(maxY, q.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", w))
	}
	for i := 0; i < net.N(); i++ {
		q := net.Space.Position(i)
		x := int((q.X - minX) / (maxX - minX) * float64(w-1))
		y := int((q.Y - minY) / (maxY - minY) * float64(h-1))
		grid[y][x] = '*'
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
