//go:build amd64 && !purego

package simd

// hasAsm is fixed at init: the assembly tier exists in this build, so
// availability is purely a CPU question (AVX2 plus OS-enabled YMM
// state).
var hasAsm = detectAVX2()

// detectAVX2 runs the standard CPUID/XGETBV dance: AVX needs both the
// CPU bit and the OS to have enabled XMM+YMM state saving (OSXSAVE +
// XCR0), and AVX2 is a leaf-7 feature on top of that.
func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuidex(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c&osxsaveBit == 0 || c&avxBit == 0 {
		return false
	}
	if xgetbv0()&6 != 6 { // XCR0: XMM (bit 1) and YMM (bit 2) state
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return b&avx2Bit != 0
}

// cpuidex and xgetbv0 are implemented in asm_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() uint64

// farSumInvSqAVX2 and farSumInvQuadAVX2 (asm_amd64.s) sum the 4-aligned
// prefix in one 4-lane YMM accumulator and reduce the lanes in index
// order; the Go wrappers fold the ≤3-element tail after the reduce, so
// the asm path's summation order is fixed and reproducible — just not
// the scalar left-to-right order.
func farSumInvSqAVX2(upx, upy float64, x, y, p []float64) float64
func farSumInvQuadAVX2(upx, upy float64, x, y, p []float64) float64

func asmFarSumInvSq(upx, upy float64, x, y, p []float64) float64 {
	n := len(x) &^ 3
	sum := farSumInvSqAVX2(upx, upy, x[:n], y[:n], p[:n])
	for i := n; i < len(x); i++ {
		dx, dy := upx-x[i], upy-y[i]
		sum += p[i] * (1 / (dx*dx + dy*dy))
	}
	return sum
}

func asmFarSumInvQuad(upx, upy float64, x, y, p []float64) float64 {
	n := len(x) &^ 3
	sum := farSumInvQuadAVX2(upx, upy, x[:n], y[:n], p[:n])
	for i := n; i < len(x); i++ {
		dx, dy := upx-x[i], upy-y[i]
		d2 := dx*dx + dy*dy
		sum += p[i] * (1 / (d2 * d2))
	}
	return sum
}
