package broadcast

import (
	"fmt"

	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// RunNoSMulti executes the NoSBroadcast machinery with per-station
// spontaneous activation times: station i activates at round wakeAt[i]
// (-1 = only by reception). This is the engine of the ad-hoc wake-up
// problem (§5): every spontaneously activated station behaves as a
// source, joining the phased protocol at its next phase boundary.
//
// Result.Rounds counts from round 0 of the global clock; the wake-up
// application converts it to "time since first spontaneous wake-up".
func RunNoSMulti(net *network.Network, cfg Config, seed uint64, wakeAt []int, payload int64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := net.N()
	if len(wakeAt) != n {
		return nil, fmt.Errorf("broadcast: wakeAt has %d entries, network has %d", len(wakeAt), n)
	}
	if cfg.Coloring.N != n {
		return nil, fmt.Errorf("broadcast: config sized for %d stations, network has %d", cfg.Coloring.N, n)
	}
	anySource := false
	for i, w := range wakeAt {
		if w >= 0 {
			anySource = true
		}
		if w < -1 {
			return nil, fmt.Errorf("broadcast: wakeAt[%d] = %d invalid", i, w)
		}
	}
	if !anySource {
		return nil, fmt.Errorf("broadcast: no station wakes spontaneously")
	}
	phys, err := cfg.channel(net)
	if err != nil {
		return nil, err
	}
	root := rng.New(seed)
	stations := make([]*nosStation, n)
	protos := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		st, err := newNOSStation(&cfg, root.Split(uint64(i)), payload, false)
		if err != nil {
			return nil, err
		}
		st.wakeAt = wakeAt[i]
		if wakeAt[i] == 0 {
			st.informed = true
			st.informedAt = 0
		}
		stations[i] = st
		protos[i] = st
	}
	eng, err := sim.NewEngine(phys, protos)
	if err != nil {
		return nil, err
	}

	counted := make([]bool, n)
	remaining := 0
	for i, st := range stations {
		if st.informed {
			counted[i] = true
		} else {
			remaining++
		}
	}
	lastInform := 0
	markInformed := func(i, t int) {
		if !counted[i] {
			counted[i] = true
			remaining--
			if t+1 > lastInform {
				lastInform = t + 1
			}
		}
	}
	eng.SetTracer(tracerFunc(func(t int, _ []int, rec []sinr.Reception) {
		for _, rc := range rec {
			if stations[rc.Receiver].informedAt == t {
				markInformed(rc.Receiver, t)
			}
		}
	}))
	budget := defaultBudget(cfg, net)
	maxWake := 0
	for _, w := range wakeAt {
		if w > maxWake {
			maxWake = w
		}
	}
	budget += maxWake
	// Spontaneous wake-ups are applied inside Tick at the station's
	// wakeAt round; index them by round so each Step inspects only the
	// stations due this round instead of scanning all n. (A station
	// informed by reception before its wakeAt is counted by the tracer;
	// its informedAt then predates its slot here and the check skips it.)
	wakers := make(map[int][]int)
	for i, w := range wakeAt {
		if w > 0 {
			wakers[w] = append(wakers[w], i)
		}
	}
	for eng.Metrics.Rounds < budget && remaining > 0 {
		t := eng.Round()
		eng.Step()
		if due, ok := wakers[t]; ok {
			for _, i := range due {
				if stations[i].informedAt == t {
					markInformed(i, t)
				}
			}
			delete(wakers, t)
		}
	}

	res := &Result{
		AllInformed: remaining == 0,
		InformTime:  make([]int, n),
		Metrics:     eng.Metrics,
	}
	if res.AllInformed {
		res.Rounds = lastInform
	} else {
		res.Rounds = eng.Metrics.Rounds
	}
	res.Phases = (res.Rounds + cfg.PhaseLen() - 1) / cfg.PhaseLen()
	for i, st := range stations {
		res.InformTime[i] = st.informedAt
	}
	return res, nil
}
