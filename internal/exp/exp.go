// Package exp implements the experiment suite of EXPERIMENTS.md: one
// runner per quantitative claim of the paper (E1–E9), robustness and
// ablation studies (E10–E11), and the registry-driven sweeps — the
// cross-family broadcast sweep E12 (coverage grows with every
// scenario.Register call) and the protocol×scenario matrix E13
// (coverage grows with every scenario.Register *and* protocol.Register
// call). All topologies come from scenario.Generate specs; each runner
// returns a stats.Table; cmd/experiments streams the full-size suite
// to a text/CSV/JSON sink, bench_test.go runs reduced sizes.
package exp

import (
	"fmt"
	"math"

	"sinrcast/internal/apps/consensus"
	"sinrcast/internal/apps/leader"
	"sinrcast/internal/apps/wakeup"
	"sinrcast/internal/baseline"
	"sinrcast/internal/broadcast"
	"sinrcast/internal/coloring"
	"sinrcast/internal/network"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sinr"
	"sinrcast/internal/stats"
)

// Config sizes the experiment suite.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Trials is the number of repetitions per data point.
	Trials int
	// Scale multiplies the base network sizes (1 = the EXPERIMENTS.md
	// sizes; benches use smaller fractions).
	Scale float64
	// Workers caps how many trials run concurrently. 0 (the default)
	// uses runtime.GOMAXPROCS(0); 1 forces serial execution. Tables
	// are bit-identical for every value: trial randomness is derived
	// from (Seed, experiment, data point, trial) alone (see trials.go).
	Workers int
	// Scenario optionally restricts E12CrossFamilySweep and
	// E13ProtocolMatrix to one parsed scenario spec (e.g.
	// "annulus:n=96"). Empty sweeps every registered family.
	Scenario string
	// Protocol optionally restricts E13ProtocolMatrix to one parsed
	// protocol spec (e.g. "nos:budgetmul=2"). Empty sweeps every
	// registered protocol.
	Protocol string
	// Engine selects the physical engine of E14LargeNScaling: "exact",
	// "grid", "hier" or "auto" (empty = "auto"). E1–E13 always use each
	// protocol's default exact engine — their tables are pinned
	// byte-identical to the historical output and must not drift with
	// an engine flag.
	Engine string
	// Checkpoint, when non-nil, persists completed trial results and
	// restores them on a rerun — sinrcastd's crash-resume path. Tables
	// stay byte-identical with or without it (see TrialCheckpoint).
	Checkpoint TrialCheckpoint
}

// DefaultConfig returns the full-size configuration.
func DefaultConfig() Config { return Config{Seed: 2014, Trials: 5, Scale: 1} }

func (c Config) trials() int {
	if c.Trials < 1 {
		return 1
	}
	return c.Trials
}

// scaled returns max(lo, round(base·Scale)).
func (c Config) scaled(base, lo int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := int(math.Round(float64(base) * s))
	if v < lo {
		v = lo
	}
	return v
}

func lg2(n int) float64 {
	l := math.Log2(float64(n))
	if l < 1 {
		l = 1
	}
	return l
}

func physParams() sinr.Params { return sinr.DefaultParams() }

// genNet builds a registered scenario family with explicit parameter
// overrides — exactly the call the former netgen wrappers made, so
// every E1–E11 network is byte-identical to the pre-registry suite.
// The scenario registry is the single topology path of the experiment
// suite; internal/netgen survives only for external-style callers.
func genNet(family string, seed uint64, params map[string]float64) (*network.Network, error) {
	return scenario.Generate(scenario.Spec{Family: family, Params: params}, physParams(), seed)
}

func bcastCfg(net *network.Network) broadcast.Config {
	return broadcast.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps)
}

// medianRounds runs fn once per trial (concurrently up to cfg.workers())
// and returns the median round count, requiring at least one trial to
// complete. (expID, point) identify the data point for deterministic
// trial seeding.
func medianRounds(cfg Config, expID, point uint64, fn func(seed uint64) (*broadcast.Result, error)) (float64, int, error) {
	results, err := runTrials(cfg, expID, point, fn)
	if err != nil {
		return 0, 0, err
	}
	var rounds []float64
	fails := 0
	for _, res := range results {
		if !res.AllInformed {
			fails++
			continue
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	if len(rounds) == 0 {
		return 0, fails, fmt.Errorf("exp: all %d trials failed to complete", len(results))
	}
	return stats.Summarize(rounds).Median, fails, nil
}

// E1NoSBroadcastVsD measures Theorem 1's shape: NoSBroadcast rounds on
// corridor networks of fixed n and growing diameter D; the normalized
// column rounds/(D·lg²n) should be roughly flat.
func E1NoSBroadcastVsD(cfg Config) (*stats.Table, error) {
	n := cfg.scaled(64, 24)
	t := stats.NewTable(
		fmt.Sprintf("E1 (Theorem 1): NoSBroadcast rounds vs D, path networks, n=%d", n),
		"D", "median-rounds", "rounds/(D·lg²n)", "fails")
	for pi, frac := range []float64{0.15, 0.3, 0.5, 0.95} {
		net, err := genNet("path", cfg.Seed, map[string]float64{"n": float64(n), "frac": frac})
		if err != nil {
			return nil, err
		}
		d, _ := net.Diameter()
		med, fails, err := medianRounds(cfg, 1, uint64(pi), func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunNoS(net, bcastCfg(net), seed, 0, 1)
		})
		if err != nil {
			return nil, fmt.Errorf("E1 D=%d: %w", d, err)
		}
		norm := med / (float64(d) * lg2(n) * lg2(n))
		t.AddRow(d, med, norm, fails)
	}
	return t, nil
}

// E2SBroadcastScaling measures Theorem 2's shape: SBroadcast rounds vs D
// (fixed n) and vs n (compact networks where the additive log² n term
// dominates). The normalized column uses the theorem's own formula.
func E2SBroadcastScaling(cfg Config) (*stats.Table, error) {
	n := cfg.scaled(64, 24)
	t := stats.NewTable(
		fmt.Sprintf("E2 (Theorem 2): SBroadcast rounds, paths n=%d then uniform n sweep", n),
		"network", "D", "n", "median-rounds", "rounds/(D·lgn+lg²n)", "fails")
	for pi, frac := range []float64{0.15, 0.3, 0.5, 0.95} {
		net, err := genNet("path", cfg.Seed, map[string]float64{"n": float64(n), "frac": frac})
		if err != nil {
			return nil, err
		}
		d, _ := net.Diameter()
		med, fails, err := medianRounds(cfg, 2, uint64(pi), func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunS(net, bcastCfg(net), seed, 0, 1)
		})
		if err != nil {
			return nil, fmt.Errorf("E2 path D=%d: %w", d, err)
		}
		norm := med / (float64(d)*lg2(n) + lg2(n)*lg2(n))
		t.AddRow("path", d, n, med, norm, fails)
	}
	for pi, nn := range []int{cfg.scaled(48, 16), cfg.scaled(96, 32), cfg.scaled(192, 64)} {
		net, err := genNet("uniform", cfg.Seed+uint64(nn), map[string]float64{"n": float64(nn), "density": 10})
		if err != nil {
			return nil, err
		}
		d, _ := net.Diameter()
		med, fails, err := medianRounds(cfg, 2, uint64(4+pi), func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunS(net, bcastCfg(net), seed, 0, 1)
		})
		if err != nil {
			return nil, fmt.Errorf("E2 uniform n=%d: %w", nn, err)
		}
		norm := med / (float64(d)*lg2(nn) + lg2(nn)*lg2(nn))
		t.AddRow("uniform", d, nn, med, norm, fails)
	}
	return t, nil
}

// familyNets builds the invariant-test network families.
func familyNets(cfg Config) (map[string]*network.Network, []string, error) {
	nets := map[string]*network.Network{}
	order := []string{"uniform", "dense", "clusters", "path", "expchain"}
	var err error
	if nets["uniform"], err = genNet("uniform", cfg.Seed, map[string]float64{
		"n": float64(cfg.scaled(128, 32)), "density": 8}); err != nil {
		return nil, nil, err
	}
	if nets["dense"], err = genNet("uniform", cfg.Seed, map[string]float64{
		"n": float64(cfg.scaled(256, 48)), "density": 32}); err != nil {
		return nil, nil, err
	}
	if nets["clusters"], err = genNet("clusters", cfg.Seed, map[string]float64{
		"k": 4, "m": float64(cfg.scaled(24, 8)), "radius": 0.08, "gap": 0.6}); err != nil {
		return nil, nil, err
	}
	if nets["path"], err = genNet("path", cfg.Seed, map[string]float64{
		"n": float64(cfg.scaled(48, 16)), "frac": 0.9}); err != nil {
		return nil, nil, err
	}
	if nets["expchain"], err = genNet("expchain", cfg.Seed, map[string]float64{
		"n": float64(cfg.scaled(64, 16)), "first": 0.5, "ratio": 0.75}); err != nil {
		return nil, nil, err
	}
	return nets, order, nil
}

// E3Lemma1 measures the Lemma 1 invariant (per-color unit-ball mass
// ≤ C1-scale constant) across network families.
func E3Lemma1(cfg Config) (*stats.Table, error) {
	nets, order, err := familyNets(cfg)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("E3 (Lemma 1): max per-color unit-ball probability mass",
		"family", "n", "maxMass(worst trial)", "bound-ok(≤1.0)")
	for fi, name := range order {
		net := nets[name]
		par := coloring.DefaultParams(net.N(), net.Space.Growth(), net.Params.Eps)
		masses, err := runTrials(cfg, 3, uint64(fi), func(seed uint64) (float64, error) {
			res, err := coloring.Run(net, par, seed)
			if err != nil {
				return 0, err
			}
			return coloring.CheckLemma1(net, res.Colors).MaxMass, nil
		})
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for _, m := range masses {
			if m > worst {
				worst = m
			}
		}
		t.AddRow(name, net.N(), fmt.Sprintf("%.3f", worst), worst <= 1.0)
	}
	return t, nil
}

// E4Lemma2 measures the Lemma 2 invariant (every station has a color
// with constant ε/2-ball mass) as a fraction of 2·pmax.
func E4Lemma2(cfg Config) (*stats.Table, error) {
	nets, order, err := familyNets(cfg)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("E4 (Lemma 2): min best-color ε/2-ball mass / 2pmax",
		"family", "n", "minMass/2pmax(worst trial)", "bound-ok(≥1/8)")
	for fi, name := range order {
		net := nets[name]
		par := coloring.DefaultParams(net.N(), net.Space.Growth(), net.Params.Eps)
		ratios, err := runTrials(cfg, 4, uint64(fi), func(seed uint64) (float64, error) {
			res, err := coloring.Run(net, par, seed)
			if err != nil {
				return 0, err
			}
			return coloring.CheckLemma2(net, res.Colors).MinBestMass / par.FinalColor(), nil
		})
		if err != nil {
			return nil, err
		}
		worst := math.Inf(1)
		for _, r := range ratios {
			if r < worst {
				worst = r
			}
		}
		t.AddRow(name, net.N(), fmt.Sprintf("%.3f", worst), worst >= 1.0/8)
	}
	return t, nil
}

// E5ColoringRounds verifies Fact 7: the StabilizeProbability schedule is
// O(log² n) rounds; the normalized column rounds/lg²n should be flat.
func E5ColoringRounds(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("E5 (Fact 7): StabilizeProbability schedule length vs n",
		"n", "rounds", "rounds/lg²n")
	for _, n := range []int{64, 256, 1024, 4096, 16384} {
		par := coloring.DefaultParams(n, 2, physParams().Eps)
		rounds := par.TotalRounds()
		t.AddRow(n, rounds, float64(rounds)/(lg2(n)*lg2(n)))
	}
	return t, nil
}

// E6GeometryImpact is the headline experiment (§1.3): broadcast time vs
// granularity Rs at FIXED diameter. The topology is a clustered path: a
// constant-length path (fixing D) with an exponential cluster at the
// source end whose gap ratio controls Rs. sinrcast's algorithms must
// stay flat while the Daum-style sweep pays Θ(log Rs) extra levels per
// hop.
func E6GeometryImpact(cfg Config) (*stats.Table, error) {
	pathLen := cfg.scaled(12, 6)
	clusterSize := cfg.scaled(20, 10)
	n := pathLen + clusterSize
	t := stats.NewTable(
		fmt.Sprintf("E6 (§1.3): rounds vs granularity Rs, clustered paths, n=%d, D fixed", n),
		"log2(Rs)", "sinrcast-NoS", "sinrcast-S", "daum-style", "daum-levels")
	for ri, ratio := range []float64{0.9, 0.75, 0.6, 0.45} {
		net, err := genNet("clusteredpath", cfg.Seed, map[string]float64{
			"pathlen": float64(pathLen), "cluster": float64(clusterSize), "ratio": ratio})
		if err != nil {
			return nil, err
		}
		rs := net.Granularity()
		src := net.N() - 1 // deepest cluster station
		// Data points ri*4+{0,1,2} distinguish the three algorithms.
		nosMed, _, err := medianRounds(cfg, 6, uint64(ri*4), func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunNoS(net, bcastCfg(net), seed, src, 1)
		})
		if err != nil {
			return nil, fmt.Errorf("E6 nos ratio=%v: %w", ratio, err)
		}
		sMed, _, err := medianRounds(cfg, 6, uint64(ri*4+1), func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunS(net, bcastCfg(net), seed, src, 1)
		})
		if err != nil {
			return nil, fmt.Errorf("E6 s ratio=%v: %w", ratio, err)
		}
		daum := baseline.NewDaumStyle(net) // for the L column; trials build their own
		daumMed, _, err := medianRounds(cfg, 6, uint64(ri*4+2), func(seed uint64) (*broadcast.Result, error) {
			return baseline.RunFlood(net, baseline.NewDaumStyle(net), seed, src, 0)
		})
		if err != nil {
			return nil, fmt.Errorf("E6 daum ratio=%v: %w", ratio, err)
		}
		t.AddRow(fmt.Sprintf("%.0f", math.Log2(rs)), nosMed, sMed, daumMed, daum.L)
	}
	return t, nil
}

// E7BaselineComparison races all algorithms on three network families.
func E7BaselineComparison(cfg Config) (*stats.Table, error) {
	type fam struct {
		name string
		net  *network.Network
	}
	var fams []fam
	uni, err := genNet("uniform", cfg.Seed, map[string]float64{"n": float64(cfg.scaled(96, 32)), "density": 10})
	if err != nil {
		return nil, err
	}
	fams = append(fams, fam{"uniform", uni})
	clu, err := genNet("clusters", cfg.Seed, map[string]float64{
		"k": 4, "m": float64(cfg.scaled(20, 6)), "radius": 0.08, "gap": 0.6})
	if err != nil {
		return nil, err
	}
	fams = append(fams, fam{"clusters", clu})
	cor, err := genNet("corridor", cfg.Seed, map[string]float64{"n": float64(cfg.scaled(64, 24)), "step": 0.5})
	if err != nil {
		return nil, err
	}
	fams = append(fams, fam{"corridor", cor})

	t := stats.NewTable("E7: median broadcast rounds per algorithm and family",
		"family", "n", "D", "NoS", "S", "decay", "density-oracle", "grid-tdma")
	for fi, f := range fams {
		d, _ := f.net.Diameter()
		// Data points fi*8+{0..4} distinguish the five algorithm slots.
		run := func(alg uint64, fn func(seed uint64) (*broadcast.Result, error)) (string, error) {
			med, fails, err := medianRounds(cfg, 7, uint64(fi*8)+alg, fn)
			if err != nil {
				return "fail", nil //nolint:nilerr // a failing baseline is a data point
			}
			if fails > 0 {
				return fmt.Sprintf("%.0f(%d!)", med, fails), nil
			}
			return fmt.Sprintf("%.0f", med), nil
		}
		nos, _ := run(0, func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunNoS(f.net, bcastCfg(f.net), seed, 0, 1)
		})
		s, _ := run(1, func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunS(f.net, bcastCfg(f.net), seed, 0, 1)
		})
		dec, _ := run(2, func(seed uint64) (*broadcast.Result, error) {
			return baseline.RunFlood(f.net, baseline.NewDecay(f.net.N()), seed, 0, 0)
		})
		ora, _ := run(3, func(seed uint64) (*broadcast.Result, error) {
			return baseline.RunFlood(f.net, baseline.NewDensityOracle(f.net, 0), seed, 0, 0)
		})
		var tdma string
		if _, err := baseline.NewGridTDMA(f.net); err != nil {
			tdma = "n/a"
		} else {
			// GridTDMA keeps per-round oracle state, so every trial
			// builds its own instance.
			tdma, _ = run(4, func(seed uint64) (*broadcast.Result, error) {
				gtd, err := baseline.NewGridTDMA(f.net)
				if err != nil {
					return nil, err
				}
				return baseline.RunFlood(f.net, gtd, seed, 0, 0)
			})
		}
		t.AddRow(f.name, f.net.N(), d, nos, s, dec, ora, tdma)
	}
	return t, nil
}

// E8Applications exercises the §5 protocols and reports measured times
// against their bounds.
func E8Applications(cfg Config) (*stats.Table, error) {
	net, err := genNet("uniform", cfg.Seed, map[string]float64{"n": float64(cfg.scaled(48, 24)), "density": 8})
	if err != nil {
		return nil, err
	}
	d, _ := net.Diameter()
	t := stats.NewTable(fmt.Sprintf("E8 (§5): applications on uniform n=%d (D=%d)", net.N(), d),
		"protocol", "rounds/span", "correct", "normalized")

	// Wake-up: three adversarial spontaneous wake-ups.
	bc := bcastCfg(net)
	wake := make([]int, net.N())
	for i := range wake {
		wake[i] = -1
	}
	wake[0] = bc.PhaseLen() / 3
	wake[net.N()/2] = bc.PhaseLen()
	wres, err := wakeup.Run(net, bc, cfg.Seed+3, wakeup.Schedule{WakeAt: wake})
	if err != nil {
		return nil, err
	}
	t.AddRow("wakeup", wres.Span, wres.AllAwake,
		fmt.Sprintf("span/(D·lg²n)=%.2f", float64(wres.Span)/(float64(d)*lg2(net.N())*lg2(net.N()))))

	// Consensus over 8-bit messages.
	ccfg := consensus.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps, 255)
	msgs := make([]int64, net.N())
	for i := range msgs {
		msgs[i] = int64((i*37 + 100) % 256)
	}
	cres, err := consensus.Run(net, ccfg, cfg.Seed+5, msgs)
	if err != nil {
		return nil, err
	}
	t.AddRow("consensus(x=255)", cres.Rounds, cres.Correct,
		fmt.Sprintf("rounds/(lgx·(D·lgn+lg²n))=%.2f",
			float64(cres.Rounds)/(8*(float64(d)*lg2(net.N())+lg2(net.N())*lg2(net.N())))))

	// Leader election.
	lcfg := consensus.DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps, 1)
	lres, err := leader.Run(net, lcfg, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	t.AddRow("leader", lres.Consensus.Rounds, lres.Leader >= 0 && lres.Consensus.Correct,
		fmt.Sprintf("leader=%d unique-ids=%v", lres.Leader, lres.Unique))
	return t, nil
}

// E9SuccessProbability estimates the whp claims: fraction of independent
// runs that complete within the default budget.
func E9SuccessProbability(cfg Config) (*stats.Table, error) {
	net, err := genNet("uniform", cfg.Seed, map[string]float64{"n": float64(cfg.scaled(64, 24)), "density": 8})
	if err != nil {
		return nil, err
	}
	trials := cfg.trials() * 10
	t := stats.NewTable(fmt.Sprintf("E9: success rate over %d independent runs, uniform n=%d", trials, net.N()),
		"algorithm", "successes", "trials", "rate")
	for ai, alg := range []struct {
		name string
		run  func(seed uint64) (*broadcast.Result, error)
	}{
		{"NoSBroadcast", func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunNoS(net, bcastCfg(net), seed, 0, 1)
		}},
		{"SBroadcast", func(seed uint64) (*broadcast.Result, error) {
			return broadcast.RunS(net, bcastCfg(net), seed, 0, 1)
		}},
	} {
		completed, err := runNTrials(cfg, trials, 9, uint64(ai), func(seed uint64) (bool, error) {
			res, err := alg.run(seed)
			if err != nil {
				return false, err
			}
			return res.AllInformed, nil
		})
		if err != nil {
			return nil, err
		}
		succ := 0
		for _, ok := range completed {
			if ok {
				succ++
			}
		}
		t.AddRow(alg.name, succ, trials, float64(succ)/float64(trials))
	}
	return t, nil
}

// All runs the full suite in order.
func All(cfg Config) ([]*stats.Table, error) {
	runners := []func(Config) (*stats.Table, error){
		E1NoSBroadcastVsD,
		E2SBroadcastScaling,
		E3Lemma1,
		E4Lemma2,
		E5ColoringRounds,
		E6GeometryImpact,
		E7BaselineComparison,
		E8Applications,
		E9SuccessProbability,
		E10ModelRobustness,
		E11ColoringAblation,
		E12CrossFamilySweep,
		E13ProtocolMatrix,
		E14LargeNScaling,
	}
	var out []*stats.Table
	for i, r := range runners {
		tb, err := r(cfg)
		if err != nil {
			return out, fmt.Errorf("experiment %d: %w", i+1, err)
		}
		out = append(out, tb)
	}
	return out, nil
}
