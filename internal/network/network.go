// Package network models a wireless network: stations embedded in a
// metric space, the communication graph G with edges between stations at
// distance ≤ 1-ε (§1.1), and the graph statistics the paper's bounds are
// stated in: diameter D, maximum degree Δ, and granularity Rs.
package network

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
	"sinrcast/internal/sinr"
)

// Network is an immutable deployment of stations plus its communication
// graph. Build it with New.
type Network struct {
	Space  geom.Space
	Params sinr.Params
	// Adj is the adjacency list of the communication graph
	// (edges of metric length ≤ 1-ε), excluding self-loops.
	Adj [][]int32
	// Meta records generator-reported facts about how the deployment
	// was produced — e.g. the connectivity-retry attempt count and the
	// final side/sigma a densifying generator actually used. Nil for
	// hand-built networks; keys are generator-specific.
	Meta map[string]float64
}

// New builds the network and its communication graph. For Euclidean
// spaces edge discovery is grid-bucketed (O(n·deg)); other metrics use
// the O(n²) pairwise scan.
func New(s geom.Space, p sinr.Params) (*Network, error) {
	if err := p.Validate(s.Growth()); err != nil {
		return nil, err
	}
	n := s.Len()
	if n == 0 {
		return nil, fmt.Errorf("network: empty station set")
	}
	net := &Network{Space: s, Params: p, Adj: make([][]int32, n)}
	radius := p.CommRadius()
	if eu, ok := s.(*geom.Euclidean); ok && n > 64 {
		net.buildEuclidean(eu, radius)
	} else {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if s.Dist(i, j) <= radius {
					net.Adj[i] = append(net.Adj[i], int32(j))
					net.Adj[j] = append(net.Adj[j], int32(i))
				}
			}
		}
	}
	return net, nil
}

// buildEuclidean bucket-grids points at the comm radius so only the 3×3
// neighborhood needs pairwise checks.
func (net *Network) buildEuclidean(eu *geom.Euclidean, radius float64) {
	pts := eu.Pts
	minX, minY := math.Inf(1), math.Inf(1)
	for _, q := range pts {
		minX = math.Min(minX, q.X)
		minY = math.Min(minY, q.Y)
	}
	cell := radius
	type key struct{ x, y int32 }
	buckets := make(map[key][]int32, len(pts))
	keyOf := func(q geom.Point) key {
		return key{int32((q.X - minX) / cell), int32((q.Y - minY) / cell)}
	}
	for i, q := range pts {
		k := keyOf(q)
		buckets[k] = append(buckets[k], int32(i))
	}
	r2 := radius * radius
	for i, q := range pts {
		k := keyOf(q)
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for _, j := range buckets[key{k.x + dx, k.y + dy}] {
					if int32(i) >= j {
						continue
					}
					if q.Dist2(pts[j]) <= r2 {
						net.Adj[i] = append(net.Adj[i], j)
						net.Adj[j] = append(net.Adj[j], int32(i))
					}
				}
			}
		}
	}
}

// N returns the number of stations.
func (net *Network) N() int { return net.Space.Len() }

// Degree returns the communication-graph degree of station i.
func (net *Network) Degree(i int) int { return len(net.Adj[i]) }

// MaxDegree returns Δ, the maximum degree of the communication graph.
func (net *Network) MaxDegree() int {
	d := 0
	for i := range net.Adj {
		if len(net.Adj[i]) > d {
			d = len(net.Adj[i])
		}
	}
	return d
}

// EdgeCount returns the number of undirected edges.
func (net *Network) EdgeCount() int {
	total := 0
	for i := range net.Adj {
		total += len(net.Adj[i])
	}
	return total / 2
}

// Granularity returns Rs: the maximum ratio between metric lengths of
// communication-graph edges ([5], §1.3). Networks with < 1 edge return 1.
func (net *Network) Granularity() float64 {
	minE, maxE := math.Inf(1), 0.0
	for i := range net.Adj {
		for _, j := range net.Adj[i] {
			if int32(i) < j {
				d := net.Space.Dist(i, int(j))
				minE = math.Min(minE, d)
				maxE = math.Max(maxE, d)
			}
		}
	}
	if maxE == 0 || minE == 0 {
		return 1
	}
	return maxE / minE
}

// Neighbors returns the neighbor set N(v) of station v in G.
func (net *Network) Neighbors(v int) []int32 { return net.Adj[v] }
