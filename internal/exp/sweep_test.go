package exp

import (
	"bytes"
	"reflect"
	"testing"

	"sinrcast/internal/scenario"
	"sinrcast/internal/stats"
)

// TestE12CoversEveryFamily checks the sweep's defining property: one
// row per registered family, no experiment code named any of them.
func TestE12CoversEveryFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	cfg := smallCfg()
	cfg.Trials = 1
	tb, err := E12CrossFamilySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fams := scenario.Names()
	if len(tb.Rows) != len(fams) {
		t.Fatalf("E12 rows = %d, registered families = %d", len(tb.Rows), len(fams))
	}
	for i, name := range fams {
		if tb.Rows[i][0] != name {
			t.Errorf("row %d family = %q, want %q", i, tb.Rows[i][0], name)
		}
	}

	// The JSON sink stream of the table must round-trip through the
	// decoder — the contract behind `experiments -format json -only 12`.
	var buf bytes.Buffer
	sink, err := stats.NewSink("json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Emit(tb); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := stats.DecodeTables(&buf)
	if err != nil {
		t.Fatalf("decoding -format json stream: %v", err)
	}
	if len(back) != 1 || !reflect.DeepEqual(back[0], tb) {
		t.Fatalf("E12 table did not round trip through JSON")
	}
}

// TestE12ScenarioRestriction checks Config.Scenario narrows the sweep
// to one explicit spec.
func TestE12ScenarioRestriction(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	cfg := smallCfg()
	cfg.Trials = 1
	cfg.Scenario = "grid:n=25,spacing=0.5"
	tb, err := E12CrossFamilySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || tb.Rows[0][0] != "grid" || tb.Rows[0][1] != "25" {
		t.Fatalf("restricted sweep rows = %v", tb.Rows)
	}
	cfg.Scenario = "grid:bogus=1"
	if _, err := E12CrossFamilySweep(cfg); err == nil {
		t.Fatal("want error for invalid Config.Scenario")
	}
}
