package stats

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table used in experiment reports.
// String renders the human-facing text form; codec.go adds CSV and
// JSON encodings and sink.go streams tables to a pluggable output.
type Table struct {
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}
